(* Memoization soundness of the prefix-sharing layer, fuzzed through
   the shared testgen library:
   - trie-shared compilation is structurally identical to direct
     Pass.apply_sequence on every (program, sequence) pair, including
     under a capacity-1 trie that evicts on every step;
   - the sharing engine's outcomes (cost, cycles, code size, counters)
     are those of the no-share engine, batch and serial, so dedup can
     never change a search result;
   - the --no-share escape hatch really is the seed engine: zero trie
     traffic, one simulation per miss. *)

module Pass = Passes.Pass
module Pctrie = Engine.Pctrie

let config = Mach.Config.default

(* generated programs (fixed seed range) plus the real workload the
   sweep benchmark exercises *)
let programs =
  Workloads.program (Workloads.by_name_exn "adpcm")
  :: List.filter_map
       (fun seed ->
         match Testgen.Gen_program.compile seed with
         | Ok p -> Some p
         | Error _ -> None)
       (List.init 12 (fun i -> 7000 + i))

let sequences n seed =
  let rng = Random.State.make [| seed |] in
  Search.Space.sample_distinct rng n

(* the digest captures printed IR plus the printer-omitted state
   (fresh-name counters, global element types/initializers, main), so
   digest equality is structural identity for every later pass and the
   simulator; the printed form is checked too for a readable failure *)
let check_same_program label direct shared =
  Alcotest.(check string)
    (label ^ ": printed IR")
    (Mira.Ir.to_string direct)
    (Mira.Ir.to_string shared);
  Alcotest.(check string)
    (label ^ ": digest")
    (Pctrie.digest direct) (Pctrie.digest shared)

let test_trie_matches_direct () =
  let trie = Pctrie.create () in
  List.iteri
    (fun pi p ->
      let d0 = Pctrie.digest p in
      List.iteri
        (fun si seq ->
          let direct = Pass.apply_sequence seq p in
          let shared, dg = Pctrie.apply_sequence trie p ~digest:d0 seq in
          let label = Printf.sprintf "prog %d seq %d" pi si in
          check_same_program label direct shared;
          Alcotest.(check string)
            (label ^ ": returned digest")
            (Pctrie.digest direct) dg)
        (sequences 25 (100 + pi)))
    programs;
  (* the batch above shares prefixes for real *)
  Alcotest.(check bool) "trie was hit" true (Pctrie.hits trie > 0)

let test_trie_eviction_sound () =
  (* capacity 1: every apply evicts; results must not change *)
  let trie = Pctrie.create ~capacity:1 () in
  let p = List.hd programs in
  let d0 = Pctrie.digest p in
  List.iteri
    (fun si seq ->
      let direct = Pass.apply_sequence seq p in
      let shared, _ = Pctrie.apply_sequence trie p ~digest:d0 seq in
      check_same_program (Printf.sprintf "evicting seq %d" si) direct shared)
    (sequences 12 42);
  Alcotest.(check bool) "evictions happened" true (Pctrie.evictions trie > 0);
  Alcotest.(check bool) "capacity respected" true (Pctrie.resident trie <= 1)

let check_outcomes_match label (a : Engine.outcome array)
    (b : Engine.outcome array) =
  Alcotest.(check int) (label ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i (x : Engine.outcome) ->
      let y = b.(i) in
      if
        not
          (x.Engine.cost = y.Engine.cost
          && x.Engine.cycles = y.Engine.cycles
          && x.Engine.code_size = y.Engine.code_size
          && x.Engine.counters = y.Engine.counters)
      then Alcotest.failf "%s: outcome %d differs" label i)
    a

let test_share_outcomes_identical_batch () =
  List.iteri
    (fun pi p ->
      let seqs = sequences 40 (500 + pi) in
      let off = Engine.create ~share:false config in
      let on_ = Engine.create ~share:true config in
      let a = Engine.eval_batch off p seqs in
      let b = Engine.eval_batch on_ p seqs in
      check_outcomes_match (Printf.sprintf "prog %d" pi) a b;
      (* sharing must actually have shared on batches this size *)
      let s = Engine.stats on_ in
      Alcotest.(check int)
        (Printf.sprintf "prog %d: misses all served" pi)
        (List.length seqs)
        (s.Engine.sims + s.Engine.dedup_hits))
    programs

let test_share_outcomes_identical_serial () =
  let p = List.hd programs in
  let off = Engine.create ~share:false config in
  let on_ = Engine.create ~share:true config in
  List.iteri
    (fun i seq ->
      let a = Engine.eval off p seq in
      let b = Engine.eval on_ p seq in
      if a.Engine.cost <> b.Engine.cost then
        Alcotest.failf "serial eval %d differs" i)
    (sequences 30 9)

let test_no_share_is_seed_engine () =
  let eng = Engine.create ~share:false config in
  Alcotest.(check bool) "share off" false (Engine.share eng);
  Alcotest.(check bool) "no trie" true (Engine.trie eng = None);
  let p = List.hd programs in
  let seqs = sequences 20 3 in
  ignore (Engine.eval_batch eng p seqs);
  let s = Engine.stats eng in
  Alcotest.(check int) "one simulation per miss" (List.length seqs)
    s.Engine.sims;
  Alcotest.(check int) "no dedup" 0 s.Engine.dedup_hits

let () =
  Alcotest.run "sharing"
    [
      ( "pctrie",
        [
          Alcotest.test_case "trie = direct compilation" `Quick
            test_trie_matches_direct;
          Alcotest.test_case "eviction is sound" `Quick
            test_trie_eviction_sound;
        ] );
      ( "engine",
        [
          Alcotest.test_case "batch outcomes = no-share" `Quick
            test_share_outcomes_identical_batch;
          Alcotest.test_case "serial outcomes = no-share" `Quick
            test_share_outcomes_identical_serial;
          Alcotest.test_case "--no-share is the seed engine" `Quick
            test_no_share_is_seed_engine;
        ] );
    ]
