(* Distributed sweep orchestration:
   - Shard.plan covers the range exactly, balanced, clamped;
   - sweep_local is bit-identical to computing the costs serially, over
     fuzzed sweep shapes (n, workers, shards, chunk size) and over real
     engines on fuzzed programs;
   - a worker killed mid-shard (injected _exit after the first
     journaled chunk) is detected, its shard re-queued, a respawned
     worker resumes it from the journal, and the costs still match;
   - a skewed shard keeps one worker busy while the others drain its
     queue by stealing;
   - a worker with mismatched sweep inputs is rejected, not served;
   - Rcache.absorb merges disjoint/overlapping/corrupt donors with
     exact accounting, refuses live donors, survives reopen;
   - Journal.describe reports progress and discards are counted. *)

module Dist = Engine.Dist
module Shard = Engine.Shard
module Faults = Engine.Faults
module Journal = Engine.Journal
module Rcache = Engine.Rcache

let rec rm_rf p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p

let with_tmp_dir prefix f =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  if not (Sys.file_exists d) then Sys.mkdir d 0o755;
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let check_float_array label a b =
  Alcotest.(check int) (label ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (x = b.(i) || (Float.is_nan x && Float.is_nan b.(i))) then
        Alcotest.failf "%s: cost %d differs (%h vs %h)" label i x b.(i))
    a

(* a deterministic stand-in for "evaluate items lo..hi-1" *)
let fake_cost i =
  if i mod 11 = 4 then infinity else float_of_int (i * i mod 251) /. 3.0

let fake_eval lo hi = Array.init (hi - lo) (fun k -> fake_cost (lo + k))

(* ------------------------------------------------------------------ *)
(* Shard.plan *)

let test_shard_plan () =
  (* exact cover, in order, balanced to within one item *)
  List.iter
    (fun (n, shards) ->
      let plan = Shard.plan ~n ~shards in
      let label = Printf.sprintf "n=%d shards=%d" n shards in
      Alcotest.(check bool)
        (label ^ ": clamped") true
        (Array.length plan <= max 1 n && Array.length plan <= shards);
      let expect = ref 0 in
      Array.iteri
        (fun i s ->
          Alcotest.(check int) (label ^ ": id") i s.Shard.id;
          Alcotest.(check int) (label ^ ": contiguous") !expect s.Shard.lo;
          Alcotest.(check bool) (label ^ ": non-empty") true
            (s.Shard.hi > s.Shard.lo);
          expect := s.Shard.hi)
        plan;
      if n > 0 then Alcotest.(check int) (label ^ ": covers") n !expect;
      if Array.length plan > 0 then begin
        let sizes =
          Array.map (fun s -> s.Shard.hi - s.Shard.lo) plan |> Array.to_list
        in
        let mn = List.fold_left min max_int sizes in
        let mx = List.fold_left max 0 sizes in
        Alcotest.(check bool) (label ^ ": balanced") true (mx - mn <= 1)
      end)
    [ (0, 4); (1, 4); (7, 3); (12, 4); (13, 4); (100, 7); (5, 100) ];
  Alcotest.check_raises "negative n" (Invalid_argument
    "Shard.plan: n must be >= 0") (fun () -> ignore (Shard.plan ~n:(-1) ~shards:2));
  Alcotest.check_raises "zero shards" (Invalid_argument
    "Shard.plan: shards must be > 0") (fun () -> ignore (Shard.plan ~n:4 ~shards:0));
  (* the journal key binds the shard's identity *)
  let s0 = { Shard.id = 0; lo = 0; hi = 5 } in
  let s1 = { Shard.id = 1; lo = 0; hi = 5 } in
  Alcotest.(check bool) "key binds job" true
    (Shard.key ~job:"a" s0 <> Shard.key ~job:"b" s0);
  Alcotest.(check bool) "key binds shard id" true
    (Shard.key ~job:"a" s0 <> Shard.key ~job:"a" s1)

(* ------------------------------------------------------------------ *)
(* sweep_local ≡ serial, fuzzed shapes *)

let sweep ~dir ?max_respawns ?cache ~workers ~shards ~chunk_size ~n
    ?(eval = fake_eval) () =
  Dist.sweep_local ~workers ~dir ?max_respawns ?cache
    {
      Dist.job = Printf.sprintf "job-%d-%d-%d" n chunk_size shards;
      n;
      chunk_size;
      shards;
    }
    ~make_eval:(fun ~worker_dir:_ -> eval)

let test_local_matches_serial_fuzzed () =
  let rng = Random.State.make [| 20260808 |] in
  for case = 0 to 7 do
    let n = 1 + Random.State.int rng 40 in
    let workers = 1 + Random.State.int rng 4 in
    let shards = 1 + Random.State.int rng 10 in
    let chunk_size = 1 + Random.State.int rng 5 in
    with_tmp_dir "dist-fuzz" @@ fun dir ->
    let stats, costs = sweep ~dir ~workers ~shards ~chunk_size ~n () in
    let label =
      Printf.sprintf "case %d (n=%d w=%d s=%d c=%d)" case n workers shards
        chunk_size
    in
    check_float_array label (fake_eval 0 n) costs;
    Alcotest.(check int)
      (label ^ ": every shard served once")
      (Array.length (Shard.plan ~n ~shards))
      stats.Dist.shards_served;
    Alcotest.(check bool)
      (label ^ ": manifest written")
      true
      (Sys.file_exists (Filename.concat dir "manifest.json"))
  done

let test_manifest_contents () =
  with_tmp_dir "dist-manifest" @@ fun dir ->
  let _ = sweep ~dir ~workers:2 ~shards:4 ~chunk_size:3 ~n:10 () in
  let ic = open_in (Filename.concat dir "manifest.json") in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "manifest mentions %s" needle)
        true
        (let nl = String.length needle and cl = String.length content in
         let rec at i =
           i + nl <= cl && (String.sub content i nl = needle || at (i + 1))
         in
         at 0))
    [
      "icc-dist-manifest/1"; "git_rev"; "git_dirty"; "job-10-3-4";
      "shard_map"; "journal_key"; "\"shards\": 4"; "\"chunk_size\": 3";
    ]

(* ------------------------------------------------------------------ *)
(* worker killed mid-shard: requeue, respawn, journal resume *)

let test_worker_killed_resumes_from_journal () =
  with_tmp_dir "dist-kill" @@ fun dir ->
  let stats, costs =
    Faults.with_plan (Faults.parse_exn "dist-worker-exit@0") (fun () ->
        sweep ~dir ~max_respawns:4 ~workers:2 ~shards:4 ~chunk_size:2 ~n:12
          ())
  in
  check_float_array "killed+resumed = serial" (fake_eval 0 12) costs;
  Alcotest.(check bool) "a worker died" true (stats.Dist.worker_deaths >= 1);
  Alcotest.(check bool) "its shard was re-queued" true
    (stats.Dist.requeues >= 1);
  Alcotest.(check bool) "a worker was respawned" true
    (stats.Dist.respawns >= 1);
  Alcotest.(check bool) "no serial fallback needed" true
    (stats.Dist.serial_fallbacks = 0);
  (* the injected death landed after the first journaled chunk, so some
     worker directory holds a complete journal for shard 0 that was
     started by the victim and finished by the resumer *)
  let complete = ref false in
  Array.iter
    (fun w ->
      let path =
        Filename.concat
          (Filename.concat (Filename.concat dir "workers") w)
          "shard-0.journal"
      in
      match Journal.describe ~path with
      | Some d when d.Journal.done_chunks = d.Journal.total -> complete := true
      | _ -> ())
    (Sys.readdir (Filename.concat dir "workers"));
  Alcotest.(check bool) "shard 0 journal completed" true !complete

(* ------------------------------------------------------------------ *)
(* run telemetry under fire: a sweep that loses a worker still yields a
   mergeable trace and a rollup whose chunk counts reconcile with the
   journals on disk *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_killed_sweep_telemetry () =
  with_tmp_dir "dist-telemetry" @@ fun dir ->
  let trace_path = Filename.concat dir "trace.json" in
  let oc = open_out trace_path in
  Obs.Trace.enable_stream oc;
  Obs.Trace.set_pid (Unix.getpid ());
  let stats, costs =
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.finish ();
        Obs.Trace.disable ();
        close_out_noerr oc)
      (fun () ->
        Faults.with_plan (Faults.parse_exn "dist-worker-exit@0") (fun () ->
            sweep ~dir ~max_respawns:4 ~workers:2 ~shards:4 ~chunk_size:2
              ~n:12 ()))
  in
  check_float_array "telemetry run = serial" (fake_eval 0 12) costs;
  Alcotest.(check bool) "a worker died" true (stats.Dist.worker_deaths >= 1);
  Alcotest.(check bool) "a run id was minted" true (stats.Dist.run_id <> "");
  (* the coordinator's final rollup reconciles with the journals: for
     each shard, progress is the best journal any worker holds for it *)
  let rollup = read_file (Filename.concat dir "rollup.json") in
  let jnum key =
    match Obs.Jscan.num_field rollup key with
    | Some v -> int_of_float v
    | None -> Alcotest.failf "rollup.json lacks %S" key
  in
  let by_shard = Hashtbl.create 8 in
  Array.iter
    (fun w ->
      let wdir = Filename.concat (Filename.concat dir "workers") w in
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".journal" then
            match Journal.describe ~path:(Filename.concat wdir f) with
            | Some d ->
              let prev =
                match Hashtbl.find_opt by_shard f with
                | Some (dn, _) -> dn
                | None -> 0
              in
              if d.Journal.done_chunks >= prev then
                Hashtbl.replace by_shard f
                  (d.Journal.done_chunks, d.Journal.total)
            | None -> ())
        (Sys.readdir wdir))
    (Sys.readdir (Filename.concat dir "workers"));
  let journal_done =
    Hashtbl.fold (fun _ (dn, _) acc -> acc + dn) by_shard 0
  in
  let journal_total =
    Hashtbl.fold (fun _ (_, t) acc -> acc + t) by_shard 0
  in
  Alcotest.(check int) "rollup done = journals' best" journal_done
    (jnum "done");
  Alcotest.(check int) "rollup total = journals'" journal_total
    (jnum "total");
  Alcotest.(check bool) "run completed in the rollup" true
    (jnum "done" = jnum "total");
  (match Obs.Jscan.str_field rollup "run" with
   | Some r -> Alcotest.(check string) "rollup carries the run id"
                 stats.Dist.run_id r
   | None -> Alcotest.fail "rollup.json lacks the run id");
  (* the cold survey agrees with the file the coordinator wrote *)
  (match Dist.survey ~dir with
   | Some input ->
     let sdone =
       List.fold_left
         (fun acc (s : Obs.Rollup.shard) -> acc + s.Obs.Rollup.chunks_done)
         0 input.Obs.Rollup.shards
     in
     Alcotest.(check int) "survey done = rollup done" (jnum "done") sdone;
     Alcotest.(check string) "survey run id" stats.Dist.run_id
       input.Obs.Rollup.run
   | None -> Alcotest.fail "survey found no manifest");
  (* the scattered trace files — including the dead worker's, truncated
     by its _exit — merge into one loadable, correlated trace *)
  let sources = Dist.trace_sources ~dir in
  Alcotest.(check bool) "coordinator + both workers left traces" true
    (List.length sources >= 3);
  let merged_path = Filename.concat dir "trace-merged.json" in
  let moc = open_out merged_path in
  let mst =
    Fun.protect
      ~finally:(fun () -> close_out_noerr moc)
      (fun () -> Obs.Merge.merge_files sources moc)
  in
  Alcotest.(check bool) "merge agreed on a run id" true
    (mst.Obs.Merge.run = Some stats.Dist.run_id);
  Alcotest.(check (list string)) "no source disagreed" []
    mst.Obs.Merge.mismatched;
  Alcotest.(check bool) "events survived the merge" true
    (mst.Obs.Merge.events > 0);
  let merged = read_file merged_path in
  Alcotest.(check bool) "merged trace is a closed array" true
    (String.length merged > 2
    && merged.[0] = '['
    && String.sub merged (String.length merged - 2) 2 = "]\n");
  (* span nesting per pid never goes negative: no orphan span ends, even
     with the victim's truncated file in the mix *)
  let depth = Hashtbl.create 4 in
  String.split_on_char '\n' merged
  |> List.iter (fun line ->
         match (Obs.Jscan.str_field line "ph", Obs.Jscan.num_field line "pid")
         with
         | Some ph, Some pid ->
           let pid = int_of_float pid in
           let d =
             match Hashtbl.find_opt depth pid with
             | Some r -> r
             | None ->
               let r = ref 0 in
               Hashtbl.replace depth pid r;
               r
           in
           if ph = "B" then incr d
           else if ph = "E" then begin
             decr d;
             if !d < 0 then
               Alcotest.failf "orphan span end for pid %d" pid
           end
         | _ -> ());
  Alcotest.(check bool) "multiple pids in the merged trace" true
    (Hashtbl.length depth >= 3)

(* ------------------------------------------------------------------ *)
(* skewed shards: stealing keeps the fleet busy *)

let test_steal_heavy_skew () =
  with_tmp_dir "dist-steal" @@ fun dir ->
  let slow_eval lo hi =
    if lo = 0 then Unix.sleepf 0.4;
    fake_eval lo hi
  in
  let stats, costs =
    sweep ~dir ~workers:2 ~shards:8 ~chunk_size:2 ~n:16 ~eval:slow_eval ()
  in
  check_float_array "skewed = serial" (fake_eval 0 16) costs;
  Alcotest.(check int) "all shards served" 8 stats.Dist.shards_served;
  Alcotest.(check bool) "work was stolen" true (stats.Dist.steals >= 1);
  Alcotest.(check int) "no deaths in a clean run" 0 stats.Dist.worker_deaths

(* ------------------------------------------------------------------ *)
(* serve/work protocol: rejection of mismatched sweep inputs *)

let test_mismatched_worker_rejected () =
  with_tmp_dir "dist-reject" @@ fun dir ->
  let socket = Filename.concat dir "sock" in
  let spec = { Dist.job = "right"; n = 6; chunk_size = 2; shards = 2 } in
  let fork_worker spec' code_ok =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      let wdir = Filename.concat dir (Printf.sprintf "w-%s" spec'.Dist.job) in
      let code =
        try
          ignore (Dist.work ~socket ~dir:wdir spec' ~eval:fake_eval ());
          code_ok
        with Dist.Dist_error _ -> 7
      in
      Unix._exit code
    | pid -> pid
  in
  let wrong = fork_worker { spec with Dist.job = "wrong" } 0 in
  let right = fork_worker spec 0 in
  let _, costs = Dist.serve ~socket ~dir ~workers:2 spec in
  check_float_array "served costs" (fake_eval 0 6) costs;
  let status pid = snd (Unix.waitpid [] pid) in
  Alcotest.(check bool) "mismatched worker saw Dist_error" true
    (status wrong = Unix.WEXITED 7);
  Alcotest.(check bool) "matching worker finished cleanly" true
    (status right = Unix.WEXITED 0)

(* ------------------------------------------------------------------ *)
(* Rcache.absorb *)

let dg c = String.make 32 c

let measured seed =
  Rcache.Measured
    {
      ir_digest = dg 'a';
      cycles = 100 + seed;
      code_size = 1 + (seed mod 9);
      counters = [| seed; seed * 2 |];
    }

let build_cache dir entries =
  let c = Rcache.open_dir dir in
  List.iter (fun (k, e) -> Rcache.add c k e) entries;
  Rcache.close c

let test_absorb_fuzz () =
  let rng = Random.State.make [| 4242 |] in
  for case = 0 to 11 do
    with_tmp_dir "absorb-fuzz" @@ fun dir ->
    let primary_dir = Filename.concat dir "primary" in
    let donor_dir = Filename.concat dir "donor" in
    Sys.mkdir primary_dir 0o755;
    Sys.mkdir donor_dir 0o755;
    let key i = Printf.sprintf "k%d" i in
    let prim_n = Random.State.int rng 8 in
    let donor_n = 1 + Random.State.int rng 10 in
    let overlap = Random.State.int rng (1 + min prim_n donor_n) in
    (* primary: k0..k<prim_n>; donor: overlap keys + fresh keys, with
       donor values distinguishable from the primary's *)
    let prim_entries = List.init prim_n (fun i -> (key i, measured i)) in
    let donor_entries =
      List.init donor_n (fun j ->
          let i = if j < overlap then j else 1000 + j in
          (key i, measured (500 + i)))
    in
    build_cache primary_dir prim_entries;
    build_cache donor_dir donor_entries;
    (* corrupt lines appended to the donor must be rejected, not merged *)
    let corrupt = Random.State.int rng 3 in
    if corrupt > 0 then begin
      let oc =
        open_out_gen [ Open_append; Open_wronly ] 0o644
          (Filename.concat donor_dir "results.log")
      in
      for _ = 1 to corrupt do
        output_string oc "garbage line with no checksum\n"
      done;
      close_out oc
    end;
    let c = Rcache.open_dir primary_dir in
    let st = Rcache.absorb c donor_dir in
    let label = Printf.sprintf "case %d" case in
    Alcotest.(check int)
      (label ^ ": absorbed = donor-only keys")
      (donor_n - overlap) st.Rcache.absorbed;
    Alcotest.(check int)
      (label ^ ": duplicates = overlap") overlap st.Rcache.duplicates;
    Alcotest.(check int) (label ^ ": rejected = corrupt lines") corrupt
      st.Rcache.rejected;
    (* primary entries win on overlap; donor-only entries arrive *)
    List.iter
      (fun (k, e) ->
        Alcotest.(check bool) (label ^ ": primary kept " ^ k) true
          (Rcache.find c k = Some e))
      prim_entries;
    List.iter
      (fun (k, e) ->
        if not (List.mem_assoc k prim_entries) then
          Alcotest.(check bool) (label ^ ": donor added " ^ k) true
            (Rcache.find c k = Some e))
      donor_entries;
    Rcache.close c;
    (* the merge is durable and the log stays clean *)
    let c2 = Rcache.open_dir primary_dir in
    Alcotest.(check int) (label ^ ": reopen clean") 0 (Rcache.quarantined c2);
    Alcotest.(check int)
      (label ^ ": reopen complete")
      (prim_n + donor_n - overlap)
      (Rcache.known c2);
    Rcache.close c2
  done

let test_absorb_edge_cases () =
  with_tmp_dir "absorb-edge" @@ fun dir ->
  let primary_dir = Filename.concat dir "primary" in
  Sys.mkdir primary_dir 0o755;
  let c = Rcache.open_dir primary_dir in
  (* a missing donor is an empty merge, not an error *)
  let st = Rcache.absorb c (Filename.concat dir "nope") in
  Alcotest.(check int) "missing donor absorbs nothing" 0 st.Rcache.absorbed;
  (* a donor held by a live process is refused *)
  let live_dir = Filename.concat dir "live" in
  Sys.mkdir live_dir 0o755;
  build_cache live_dir [ ("k", measured 1) ];
  let oc = open_out (Filename.concat live_dir "cache.lock") in
  output_string oc "1";
  close_out oc;
  (match Rcache.absorb c live_dir with
   | exception Rcache.Cache_error _ -> ()
   | _ -> Alcotest.fail "live donor must raise Cache_error");
  (* an alien donor log is refused *)
  let alien_dir = Filename.concat dir "alien" in
  Sys.mkdir alien_dir 0o755;
  let oc = open_out (Filename.concat alien_dir "results.log") in
  output_string oc "my precious data\n";
  close_out oc;
  (match Rcache.absorb c alien_dir with
   | exception Rcache.Cache_error _ -> ()
   | _ -> Alcotest.fail "alien donor must raise Cache_error");
  Rcache.close c

let test_sweep_local_merges_worker_caches () =
  (* end to end with real engines: a distributed sweep over a fuzzed
     program matches Engine.costs serially, and the workers' caches are
     merged into the primary *)
  let target =
    match Testgen.Gen_program.compile 7003 with
    | Ok p -> p
    | Error e -> Alcotest.failf "testgen program: %s" e
  in
  let seqs =
    Search.Space.sample_distinct (Random.State.make [| 99 |]) 12
  in
  let seq_arr = Array.of_list seqs in
  let config = Mach.Config.default in
  with_tmp_dir "dist-engine" @@ fun dir ->
  let primary_dir = Filename.concat dir "primary-cache" in
  Sys.mkdir primary_dir 0o755;
  let primary = Rcache.open_dir primary_dir in
  let stats, costs =
    Dist.sweep_local ~workers:2 ~dir:(Filename.concat dir "run")
      ~cache:primary
      { Dist.job = "engine-fuzz"; n = 12; chunk_size = 3; shards = 4 }
      ~make_eval:(fun ~worker_dir ->
        let cache = Rcache.open_dir (Filename.concat worker_dir "cache") in
        let eng = Engine.create ~jobs:1 ~cache config in
        fun lo hi ->
          Engine.costs eng target
            (Array.to_list (Array.sub seq_arr lo (hi - lo))))
  in
  let eng = Engine.create ~jobs:1 config in
  let serial = Array.of_list (List.map (fun _ -> 0.0) seqs) in
  Array.blit (Engine.costs eng target seqs) 0 serial 0 12;
  check_float_array "distributed = serial engine" serial costs;
  Alcotest.(check bool) "worker cache entries merged" true
    (stats.Dist.absorbed > 0);
  Alcotest.(check bool) "merged entries resident" true
    (Rcache.known primary >= stats.Dist.absorbed);
  Rcache.close primary

(* ------------------------------------------------------------------ *)
(* Journal.describe + discard accounting *)

let test_journal_describe_and_discard () =
  with_tmp_dir "journal-desc" @@ fun dir ->
  let path = Filename.concat dir "sweep.log" in
  Alcotest.(check bool) "missing file: no description" true
    (Journal.describe ~path = None);
  let discarded = Obs.Metrics.counter "journal.discarded" in
  let before = Obs.Metrics.value discarded in
  ignore (Journal.run ~path ~key:"k" ~chunk_size:4 ~n:14 fake_eval);
  (match Journal.describe ~path with
   | Some d ->
     Alcotest.(check int) "all chunks done" 4 d.Journal.done_chunks;
     Alcotest.(check int) "total matches" 4 d.Journal.total
   | None -> Alcotest.fail "journal not describable");
  Alcotest.(check int) "no discard yet" before
    (Obs.Metrics.value discarded);
  (* a different key discards the journal — counted, and the journal
     describes the new sweep afterwards *)
  ignore (Journal.run ~path ~key:"other" ~chunk_size:7 ~n:14 fake_eval);
  Alcotest.(check int) "discard counted" (before + 1)
    (Obs.Metrics.value discarded);
  (match Journal.describe ~path with
   | Some d -> Alcotest.(check int) "new total" 2 d.Journal.total
   | None -> Alcotest.fail "journal not describable after rewrite");
  (* an alien file is not describable *)
  let alien = Filename.concat dir "alien" in
  let oc = open_out alien in
  output_string oc "hello\nworld\n";
  close_out oc;
  Alcotest.(check bool) "alien file: no description" true
    (Journal.describe ~path:alien = None)

let () =
  Random.self_init ();
  Alcotest.run "dist"
    [
      ( "shard",
        [
          Alcotest.test_case "plan covers, balanced, clamped" `Quick
            test_shard_plan;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "local = serial, fuzzed shapes" `Quick
            test_local_matches_serial_fuzzed;
          Alcotest.test_case "manifest contents" `Quick test_manifest_contents;
          Alcotest.test_case "killed worker resumes from journal" `Quick
            test_worker_killed_resumes_from_journal;
          Alcotest.test_case "killed sweep: mergeable trace + rollup" `Quick
            test_killed_sweep_telemetry;
          Alcotest.test_case "skewed shards are stolen" `Quick
            test_steal_heavy_skew;
          Alcotest.test_case "mismatched worker rejected" `Quick
            test_mismatched_worker_rejected;
          Alcotest.test_case "engines + cache merge, fuzzed program" `Quick
            test_sweep_local_merges_worker_caches;
        ] );
      ( "absorb",
        [
          Alcotest.test_case "disjoint/overlapping/corrupt donors" `Quick
            test_absorb_fuzz;
          Alcotest.test_case "edge cases" `Quick test_absorb_edge_cases;
        ] );
      ( "journal",
        [
          Alcotest.test_case "describe + discard accounting" `Quick
            test_journal_describe_and_discard;
        ] );
    ]
