(* Differential tests of the flat and trace-replay execution engines
   against the reference interpreter.  The contract is three-way
   bit-identity: same return value (to the bit for floats), same printed
   output, same step count, same trap message or fuel exhaustion — and,
   under the machine simulator, the same cycle count and the same value
   in every hardware counter, on every preset machine config.

   Three layers of evidence:
     - the whole workload suite, unoptimized and after the fixed
       pipelines (every field compared);
     - 1000 generated programs, bare and after a per-seed random valid
       pass sequence (failures are shrunk to minimal reproducers);
     - hand-built programs (source- and raw-IR-level) that drive every
       trap path, since the generator is trap-free by construction. *)

module Ir = Mira.Ir
module Interp = Mira.Interp

let check_agree what p =
  match Testgen.Diff.diff_all p with
  | [] -> ()
  | ds -> Alcotest.failf "%s: engines disagree: %s" what (String.concat "; " ds)

(* --- workload suite ------------------------------------------------ *)

let test_workloads_agree () =
  List.iter
    (fun (w : Workloads.t) ->
      let p = Workloads.program w in
      List.iter
        (fun (label, seq) ->
          check_agree
            (Printf.sprintf "%s after %s" w.Workloads.name label)
            (Passes.Pass.apply_sequence seq p))
        [
          ("no passes", []);
          ("O2", Passes.Pass.o2);
          ("Ofast", Passes.Pass.ofast);
        ])
    Workloads.all

(* --- fuzzing ------------------------------------------------------- *)

(* deterministic random valid pass sequence per seed (same scheme as
   tools/wl.ml, different seed salt) *)
let random_seq_for seed =
  let st = Random.State.make [| seed; 0xf1a7 |] in
  let rec pick () =
    let len = 1 + Random.State.int st 8 in
    let s =
      List.init len (fun _ ->
          Passes.Pass.of_index (Random.State.int st Passes.Pass.count))
    in
    if Passes.Pass.sequence_valid s then s else pick ()
  in
  pick ()

let fuzz_seed_base = 9000
let fuzz_count = 1000

let test_fuzz_engines () =
  let failures = ref [] in
  for i = 0 to fuzz_count - 1 do
    let seed = fuzz_seed_base + i in
    let src = Testgen.Gen_program.generate seed in
    let seq = random_seq_for seed in
    List.iter
      (fun (label, transform) ->
        if Testgen.Diff.disagrees ~transform src then
          failures :=
            Printf.sprintf "seed %d (%s):\n%s" seed label
              (Testgen.Shrink.report ~seed
                 ~fails:(fun s -> Testgen.Diff.disagrees ~transform s)
                 src)
            :: !failures)
      [
        ("bare", (fun p -> p));
        ( Printf.sprintf "after %s" (Passes.Pass.sequence_to_string seq),
          Passes.Pass.apply_sequence seq );
      ]
  done;
  match !failures with
  | [] -> ()
  | fs ->
    Alcotest.failf "%d/%d fuzz programs disagree:\n%s" (List.length fs)
      fuzz_count
      (String.concat "\n" (List.rev fs))

(* --- trap fidelity -------------------------------------------------- *)

(* The generator cannot produce traps, so every trap path is driven by a
   hand-built program.  [expect_trap] asserts the flat engine raises the
   exact reference message and that the full diff (including sim
   counters accumulated before the trap) is empty. *)
let expect_trap msg p =
  (match Mira.Decode.run_program p with
  | _ -> Alcotest.failf "expected trap %S, but program finished" msg
  | exception Interp.Trap m -> Alcotest.(check string) "trap message" msg m);
  check_agree (Printf.sprintf "trap %S" msg) p

(* raw-IR construction helpers, for programs the typechecker would
   reject (type confusion, undefined registers, unknown names) *)
let blocks_of_list bs =
  List.fold_left (fun m (l, b) -> Ir.LMap.add l b m) Ir.LMap.empty bs

let mk_func ?(params = []) ?(locals = []) ~nregs name bs =
  {
    Ir.name;
    params;
    nregs;
    entry = 0;
    blocks = blocks_of_list bs;
    nlabels = List.length bs;
    locals;
  }

let mk_prog ?(globals = []) funcs =
  {
    Ir.globals;
    funcs =
      List.fold_left
        (fun m (f : Ir.func) -> Ir.SMap.add f.Ir.name f m)
        Ir.SMap.empty funcs;
    main = "main";
  }

let main_of ?globals ?locals ~nregs bs =
  mk_prog ?globals [ mk_func ?locals ~nregs "main" bs ]

let int_glob name size =
  { Ir.gname = name; gelt = Ir.EltInt; gsize = size;
    ginit = Array.make size 0.0 }

let test_trap_type_confusion () =
  (* as_int sees a bool *)
  expect_trap "expected int, got true"
    (main_of ~nregs:1
       [ (0, Ir.block ~instrs:[ Ir.Bin (Ir.Add, 0, Ir.Cbool true, Ir.Cint 1) ]
            (Ir.Ret None)) ]);
  (* operand B converts before A is read (right-to-left) *)
  expect_trap "expected int, got 1.5"
    (main_of ~nregs:1
       [ (0, Ir.block
            ~instrs:[ Ir.Bin (Ir.Add, 0, Ir.Cbool true, Ir.Cfloat 1.5) ]
            (Ir.Ret None)) ]);
  expect_trap "ordered comparison on bool"
    (main_of ~nregs:1
       [ (0, Ir.block
            ~instrs:[ Ir.Icmp (Ir.Lt, 0, Ir.Cbool true, Ir.Cbool false) ]
            (Ir.Ret None)) ]);
  expect_trap "storing non-int into int array"
    (main_of ~globals:[ int_glob "g" 4 ] ~nregs:1
       [ (0, Ir.block
            ~instrs:[ Ir.Store (Ir.AGlob "g", Ir.Cint 0, Ir.Cfloat 1.5) ]
            (Ir.Ret None)) ])

let test_trap_undef_and_names () =
  expect_trap "main: read of undefined r1"
    (main_of ~nregs:2
       [ (0, Ir.block ~instrs:[ Ir.Mov (0, Ir.Reg 1) ] (Ir.Ret None)) ]);
  expect_trap "unknown global nope"
    (main_of ~nregs:1
       [ (0, Ir.block ~instrs:[ Ir.Load (0, Ir.AGlob "nope", Ir.Cint 0) ]
            (Ir.Ret None)) ]);
  expect_trap "unknown local array nope in main"
    (main_of ~nregs:1
       [ (0, Ir.block ~instrs:[ Ir.Load (0, Ir.ALoc "nope", Ir.Cint 0) ]
            (Ir.Ret None)) ]);
  expect_trap "call to unknown function nope"
    (main_of ~nregs:1
       [ (0, Ir.block ~instrs:[ Ir.Call (Some 0, "nope", []) ] (Ir.Ret None)) ]);
  expect_trap "arity mismatch calling f"
    (mk_prog
       [
         mk_func ~nregs:1 "main"
           [ (0, Ir.block ~instrs:[ Ir.Call (Some 0, "f", []) ] (Ir.Ret None)) ];
         mk_func ~params:[ 0 ] ~nregs:1 "f"
           [ (0, Ir.block (Ir.Ret (Some (Ir.Reg 0)))) ];
       ])

let test_trap_arith () =
  expect_trap "division by zero"
    (main_of ~nregs:1
       [ (0, Ir.block ~instrs:[ Ir.Bin (Ir.Div, 0, Ir.Cint 1, Ir.Cint 0) ]
            (Ir.Ret None)) ]);
  expect_trap "remainder by zero"
    (main_of ~nregs:1
       [ (0, Ir.block ~instrs:[ Ir.Bin (Ir.Rem, 0, Ir.Cint 1, Ir.Cint 0) ]
            (Ir.Ret None)) ]);
  expect_trap "shift count 63"
    (main_of ~nregs:1
       [ (0, Ir.block ~instrs:[ Ir.Bin (Ir.Shl, 0, Ir.Cint 1, Ir.Cint 63) ]
            (Ir.Ret None)) ]);
  expect_trap "float-to-int overflow on 1e+19"
    (main_of ~nregs:1
       [ (0, Ir.block ~instrs:[ Ir.F2i (0, Ir.Cfloat 1e19) ] (Ir.Ret None)) ])

let test_trap_memory () =
  expect_trap "load out of bounds: index 99, length 4"
    (main_of ~globals:[ int_glob "g" 4 ] ~nregs:1
       [ (0, Ir.block ~instrs:[ Ir.Load (0, Ir.AGlob "g", Ir.Cint 99) ]
            (Ir.Ret None)) ]);
  expect_trap "store out of bounds: index -1, length 4"
    (main_of ~globals:[ int_glob "g" 4 ] ~nregs:1
       [ (0, Ir.block
            ~instrs:[ Ir.Store (Ir.AGlob "g", Ir.Cint (-1), Ir.Cint 7) ]
            (Ir.Ret None)) ]);
  (* unbounded recursion with a fat frame exhausts the simulated stack *)
  expect_trap "stack overflow"
    (mk_prog
       [
         mk_func ~nregs:1 "main"
           [ (0, Ir.block ~instrs:[ Ir.Call (None, "f", []) ] (Ir.Ret None)) ];
         mk_func ~nregs:1 ~locals:[ ("buf", Ir.EltFloat, 65536) ] "f"
           [ (0, Ir.block ~instrs:[ Ir.Call (None, "f", []) ] (Ir.Ret None)) ];
       ])

(* --- semantics corners the suite underexercises -------------------- *)

let compile src =
  match Mira.Lower.compile_source src with
  | Ok p -> p
  | Error e -> Alcotest.failf "test program does not compile: %s" e

let test_packed_global () =
  (* EltInt32 globals mask stores to 32 bits; the flat engine must apply
     the same mask on its fast store path *)
  let p =
    main_of
      ~globals:
        [ { Ir.gname = "g"; gelt = Ir.EltInt32; gsize = 4;
            ginit = Array.make 4 0.0 } ]
      ~nregs:1
      [
        (0, Ir.block
           ~instrs:
             [
               Ir.Store (Ir.AGlob "g", Ir.Cint 1, Ir.Cint ((1 lsl 35) + 5));
               Ir.Load (0, Ir.AGlob "g", Ir.Cint 1);
             ]
           (Ir.Ret (Some (Ir.Reg 0))));
      ]
  in
  check_agree "packed global" p;
  let r = Mira.Decode.run_program p in
  Alcotest.(check string) "masked to 32 bits" "5"
    (Interp.value_to_string r.Interp.ret)

let test_recursion_and_floats () =
  let p =
    compile
      {|fn fib(n: int) -> int {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        fn main() -> int {
          var x: float = 1.0;
          x = x / 3.0;
          print(x);
          return fib(15);
        }|}
  in
  check_agree "recursion + float print" p;
  let r = Mira.Decode.run_program p in
  Alcotest.(check string) "fib(15)" "610" (Interp.value_to_string r.Interp.ret)

let test_fuel_boundary () =
  let p =
    compile
      {|fn main() -> int {
          var s: int = 0;
          for i = 0 to 10 { s = s + i; }
          return s;
        }|}
  in
  let steps = (Interp.run p).Interp.steps in
  (* engines agree exactly at, below, and above the exhaustion point *)
  List.iter
    (fun fuel ->
      match Testgen.Diff.diff_all ~fuel p with
      | [] -> ()
      | ds ->
        Alcotest.failf "fuel=%d: engines disagree: %s" fuel
          (String.concat "; " ds))
    [ steps - 1; steps; steps + 1 ];
  List.iter
    (fun fuel ->
      let flat_exhausts =
        match Mira.Decode.run_program ~fuel p with
        | _ -> false
        | exception Interp.Out_of_fuel -> true
      in
      let ref_exhausts =
        match Interp.run ~fuel p with
        | _ -> false
        | exception Interp.Out_of_fuel -> true
      in
      Alcotest.(check bool)
        (Printf.sprintf "exhaustion at fuel=%d" fuel)
        ref_exhausts flat_exhausts)
    [ steps - 1; steps; steps + 1 ]

let test_cycles_of_outcomes () =
  let ok =
    compile {|fn main() -> int { return 7; }|}
  in
  (match Mach.Sim.cycles_of ok with
  | Mach.Sim.Cycles n ->
    (match Mach.Sim.cycles_of ~engine:Mach.Sim.Ref ok with
    | Mach.Sim.Cycles n' -> Alcotest.(check int) "engines' cycles" n' n
    | _ -> Alcotest.fail "ref engine did not finish")
  | _ -> Alcotest.fail "expected Cycles");
  let div0 =
    main_of ~nregs:1
      [ (0, Ir.block ~instrs:[ Ir.Bin (Ir.Div, 0, Ir.Cint 1, Ir.Cint 0) ]
           (Ir.Ret None)) ]
  in
  (match Mach.Sim.cycles_of div0 with
  | Mach.Sim.Trapped m ->
    Alcotest.(check string) "trap reason" "division by zero" m
  | _ -> Alcotest.fail "expected Trapped");
  let spin =
    main_of ~nregs:0 [ (0, Ir.block (Ir.Jmp 0)) ]
  in
  match Mach.Sim.cycles_of ~fuel:1000 spin with
  | Mach.Sim.Exhausted -> ()
  | _ -> Alcotest.fail "expected Exhausted"

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    ( "flat-engine",
      [
        slow "workload suite agrees (bare/O2/Ofast)" test_workloads_agree;
        slow
          (Printf.sprintf "%d fuzz programs agree (bare + random sequences)"
             fuzz_count)
          test_fuzz_engines;
        t "trap fidelity: type confusion" test_trap_type_confusion;
        t "trap fidelity: undef + unknown names" test_trap_undef_and_names;
        t "trap fidelity: arithmetic" test_trap_arith;
        t "trap fidelity: memory + stack" test_trap_memory;
        t "packed int32 global" test_packed_global;
        t "recursion and float printing" test_recursion_and_floats;
        t "fuel exhaustion boundary" test_fuel_boundary;
        t "cycles_of outcomes" test_cycles_of_outcomes;
      ] );
  ]

let () = Alcotest.run "flat" suite
