Run-level telemetry.  A two-worker sweep leaves a run directory full
of scattered evidence: a manifest naming the run, per-worker journals
and metric exports, the coordinator's rollup, and one crash-safe trace
file per process.

  $ mkdir d2
  $ miracc search sample.mira --strategy random --budget 24 --seed 3 --distribute 2 --dist-dir d2 --trace d2/trace.json
  evaluations: 24
  best sequence: inline,cprop,strength,strength,unroll4
  cycles: 1410 -> 1002 (speedup 1.41x)

sweep-status --json renders the rollup (schema icc-rollup/1).  The run
id, wall-clock and throughput change run to run, so what is checked
here is the stable spine: chunk accounting, completeness, shard count
and the merged per-worker metrics.

  $ miracc sweep-status --dir d2 --json | grep -o '"schema": "icc-rollup/1"'
  "schema": "icc-rollup/1"
  $ miracc sweep-status --dir d2 --json | grep -o '"chunks": {[^}]*}'
  "chunks": {"total": 8, "done": 8, "torn": 0}
  $ miracc sweep-status --dir d2 --json | grep -o '"complete": true'
  "complete": true
  $ miracc sweep-status --dir d2 --json | grep -c '"shard":'
  8
  $ miracc sweep-status --dir d2 --json | grep -o '"name":"engine.evals","value":24'
  "name":"engine.evals","value":24

trace-merge stitches the coordinator's and both workers' trace files
into one Chrome trace on a shared timeline, and the merged file passes
the multi-process checks: several pids, one run id announced by all.

  $ miracc trace-merge --dir d2 | sed -e 's/run: .*/run: <id>/' -e 's/[0-9]\+/N/g'
  merged N trace files, N events -> dN/trace-merged.json
  run: <id>
  $ trace_check --merged d2/trace-merged.json | tail -1 | sed 's/run [0-9a-f]*/run <id>/'
  merged OK: run <id> announced by 3 processes

The same run id threads through every artifact — manifest, rollup and
merged trace agree:

  $ R=$(miracc sweep-status --dir d2 --json | sed -n 's/.*"run": "\([0-9a-f]*\)".*/\1/p')
  $ grep -c "\"run\": \"$R\"" d2/manifest.json
  1
  $ trace_check --merged d2/trace-merged.json | grep -c "run $R"
  1

The bench regression gate compares a fresh report against a baseline
with per-metric rules: timings tolerate a 2x factor (machines differ),
speedups must keep half the baseline, bit-identity flags and counters
are exact, machine facts like "cores" are skipped.

  $ cat > base.json <<'EOF'
  > {"schema": "icc-bench-demo/1", "total_ms": 100.0, "speedup": 4.0, "identical": true, "sims": 400, "cores": 8}
  > EOF
  $ cat > good.json <<'EOF'
  > {"schema": "icc-bench-demo/1", "total_ms": 180.0, "speedup": 2.1, "identical": true, "sims": 400, "cores": 2}
  > EOF
  $ cat > bad.json <<'EOF'
  > {"schema": "icc-bench-demo/1", "total_ms": 300.0, "speedup": 1.5, "identical": false, "sims": 399, "cores": 2}
  > EOF
  $ bench_check base.json good.json
  bench OK: good.json within tolerance of base.json (factor 2)
  $ bench_check base.json bad.json
  bench REGRESSION: bad.json vs base.json
    total_ms: timing <= 2x baseline (baseline 100, fresh 300)
    speedup: speedup >= 0.5x baseline (baseline 4, fresh 1.5)
    identical: boolean exact (baseline true, fresh false)
    sims: counter exact (baseline 400, fresh 399)
  [1]
  $ bench_check --json base.json bad.json | grep -o '"ok": false'
  "ok": false

A missing metric is a shape regression, reported with its own exit
code so CI can tell "slower" from "the report changed shape":

  $ cat > shape.json <<'EOF'
  > {"schema": "icc-bench-demo/1", "total_ms": 90.0}
  > EOF
  $ bench_check base.json shape.json
  bench REGRESSION: shape.json vs base.json
    speedup: shape: missing in fresh (baseline 4, fresh (absent))
    identical: shape: missing in fresh (baseline true, fresh (absent))
    sims: shape: missing in fresh (baseline 400, fresh (absent))
  [2]
