Cache failures are reported as one-line errors with their own exit code
(4), never stack traces, and never silent corruption.

A cache path that is not a directory:

  $ touch not-a-dir
  $ miracc search sample.mira --strategy random --budget 3 --seed 1 --cache not-a-dir
  miracc: cache error: not-a-dir: not a directory
  [4]

A file that is not a result cache is refused, not clobbered:

  $ mkdir alien
  $ echo "my precious data" > alien/results.log
  $ miracc search sample.mira --strategy random --budget 3 --seed 1 --cache alien
  miracc: cache error: alien/results.log: not a result cache (bad header "my precious data")
  [4]
  $ cat alien/results.log
  my precious data

A cache held by a live process is refused (the message names the pid, so
only the exit code is checked here):

  $ mkdir locked
  $ echo $$ > locked/cache.lock
  $ miracc search sample.mira --strategy random --budget 3 --seed 1 --cache locked 2>/dev/null
  [4]

A lock left behind by a dead process is broken and the run proceeds:

  $ echo 999999999 > locked/cache.lock
  $ miracc search sample.mira --strategy random --budget 3 --seed 1 --cache locked > /dev/null
  engine health: degraded (stale-locks-broken=1)
  $ ls locked/cache.lock
  ls: cannot access 'locked/cache.lock': No such file or directory
  [2]

A malformed --inject spec is a usage error:

  $ miracc search sample.mira --strategy random --budget 3 --seed 1 --inject bogus@1
  miracc: bad --inject spec: unknown injection point "bogus" (known: worker-crash, worker-hang, spawn-fail, torn-append, flip-append, fail-append, stale-lock, compact-crash, sweep-crash, sweep-torn, dist-worker-exit, tstore-write)
  [1]

Self-healing: tear the last cache append mid-write (as a crash would).
The torn line is quarantined at the next open, the lost result is
re-simulated, and the log is rewritten clean.  (--no-share keeps the
one-simulation-per-miss accounting these counts pin down; sharing has
its own cram in sharing.t.)

  $ miracc search sample.mira --strategy random --budget 10 --seed 3 --no-share --cache torn --cache-stats --inject torn-append@10 2>&1 | grep -E "simulations|entries|quarantined|health"
    simulations    11
    cache entries  11
    quarantined    0
  $ miracc search sample.mira --strategy random --budget 10 --seed 3 --no-share --cache torn --cache-stats 2>&1 | grep -E "simulations|entries|quarantined|health"
    simulations    1
    cache entries  11
    quarantined    1
  engine health: degraded (cache-quarantined=1)
  $ miracc search sample.mira --strategy random --budget 10 --seed 3 --no-share --cache torn --cache-stats 2>&1 | grep -E "simulations|entries|quarantined|health"
    simulations    0
    cache entries  11
    quarantined    0

A task that keeps killing its worker is quarantined as poisoned: it
costs infinity (one failure), is not cached, the pool respawns workers
and finishes everything else, and the degradation is reported:

  $ miracc search sample.mira --strategy random --budget 10 --seed 3 -j 2 --no-share --max-worker-restarts 4 --inject worker-crash@2 --cache stress --cache-stats 2>health.log | grep -E "failures|entries"
    failures       1
    cache entries  10
  $ grep -c "poisoned-tasks=1" health.log
  1

The crash was not cached as a result, so a clean warm run measures the
poisoned sequence for real:

  $ miracc search sample.mira --strategy random --budget 10 --seed 3 -j 2 --no-share --cache stress --cache-stats 2>&1 | grep -E "failures|entries|health"
    failures       0
    cache entries  11
