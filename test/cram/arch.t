Architecture-grid pricing from the CLI.  --configs prices one program
against several machine models in a single pass: the program is traced
once, then the trace is replayed through each config's machine model.
Counter characterizations are deterministic, so the table is pinned
verbatim.

  $ miracc counters sample.mira --configs amd-like,embedded
  counter        amd-like     embedded
  TOT_INS        1.000000     1.000000
  TOT_CYC        3.085339     2.474836
  LD_INS         0.109409     0.109409
  SR_INS         0.000000     0.000000
  BR_INS         0.111597     0.111597
  BR_TKN         0.109409     0.109409
  BR_MSP         0.002188     0.002188
  FP_INS         0.000000     0.000000
  INT_INS        0.778993     0.778993
  MUL_INS        0.109409     0.109409
  DIV_INS        0.002188     0.002188
  CALL_INS       0.109409     0.109409
  L1_TCA         0.109409     0.109409
  L1_TCM         0.002188     0.002188
  L1_LDM         0.002188     0.002188
  L1_STM         0.000000     0.000000
  L2_TCA         0.002188     0.002188
  L2_TCM         0.002188     0.002188
  L2_LDM         0.002188     0.002188
  L2_STM         0.000000     0.000000

The full preset grid:

  $ miracc counters sample.mira --configs amd-like,c6713-like,embedded | head -3
  counter        amd-like   c6713-like     embedded
  TOT_INS        1.000000     1.000000     1.000000
  TOT_CYC        3.085339     3.063457     2.474836

A one-config grid agrees with the plain single-config table (modulo the
header naming the config):

  $ miracc counters sample.mira --configs amd-like | tail -n +2 | awk '{print $1, $2}' > grid-one.out
  $ miracc counters sample.mira | awk '{print $1, $2}' > plain.out
  $ cmp grid-one.out plain.out

Unknown architectures are rejected with the list of known ones:

  $ miracc counters sample.mira --configs amd-like,nope
  unknown architecture "nope" (available: amd-like, c6713-like, embedded)
  [1]

An empty grid is rejected too:

  $ miracc counters sample.mira --configs ,
  miracc: --configs needs at least one architecture
  [1]

The arch benchmark sweeps the workload suite over the preset grid,
checks every grid result bit-identical to per-config full simulation,
and reports the speedups.  Wall times vary run to run, so they are
normalized here; trace sizes are deterministic.  MIRA_BENCH_REPS=1
keeps the smoke test fast (shape, not timing quality).

  $ MIRA_BENCH_REPS=1 miracc-bench arch --json \
  >   | sed -E 's/[0-9]+\.[0-9]+ms/Nms/g; s/[0-9]+\.[0-9]+x/Nx/g; s/[0-9]+\.[0-9]+s/Ns/g; s/ +$//; s/  +/ /g'
  
  ============================================================
  Architecture-grid benchmark: trace-once/model-many vs per-config simulation
  ============================================================
  18 workloads x 3 configs (amd-like, c6713-like, embedded), best of 1 runs
  workload 3x flatsim cold (gen+grid) gen warm (grid) cold speedup warm speedup trace words
  --------- ---------- --------------- ------- ----------- ------------ ------------ -----------
  adpcm Nms Nms Nms Nms Nx Nx 362260
  mcf_spars Nms Nms Nms Nms Nx Nx 1271765
  matmul Nms Nms Nms Nms Nx Nx 1387556
  fir Nms Nms Nms Nms Nx Nx 1253143
  crc32 Nms Nms Nms Nms Nx Nx 245772
  bitcount Nms Nms Nms Nms Nx Nx 1170183
  dijkstra Nms Nms Nms Nms Nx Nx 1096171
  qsort Nms Nms Nms Nms Nx Nx 417042
  histogram Nms Nms Nms Nms Nx Nx 435855
  nbody Nms Nms Nms Nms Nx Nx 811792
  stencil2d Nms Nms Nms Nms Nx Nx 1460745
  susan Nms Nms Nms Nms Nx Nx 1073027
  sha_mix Nms Nms Nms Nms Nx Nx 270156
  strsearch Nms Nms Nms Nms Nx Nx 391705
  jacobi Nms Nms Nms Nms Nx Nx 1503421
  lud Nms Nms Nms Nms Nx Nx 1101592
  blowfish Nms Nms Nms Nms Nx Nx 700107
  spmv Nms Nms Nms Nms Nx Nx 1904691
  
  all outcomes bit-identical across engines and configs
  geomean speedup: cold Nx, warm Nx (grid of 3 configs)
  
  [wrote BENCH_arch.json]
  
  [arch done in Ns]
  
  all selected experiments done in Ns (fast scale, 1 jobs)

The JSON lands next to the run for CI to archive; numbers normalized,
shape and verdict pinned:

  $ sed -E 's/[0-9]+\.[0-9]+/N/g' BENCH_arch.json
  {
    "schema": "icc-bench-arch/2",
    "configs": ["amd-like", "c6713-like", "embedded"],
    "reps": 1,
    "identical": true,
    "tstore": false,
    "workloads": [
      {"name": "adpcm", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 362260},
      {"name": "mcf_spars", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 1271765},
      {"name": "matmul", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 1387556},
      {"name": "fir", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 1253143},
      {"name": "crc32", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 245772},
      {"name": "bitcount", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 1170183},
      {"name": "dijkstra", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 1096171},
      {"name": "qsort", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 417042},
      {"name": "histogram", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 435855},
      {"name": "nbody", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 811792},
      {"name": "stencil2d", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 1460745},
      {"name": "susan", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 1073027},
      {"name": "sha_mix", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 270156},
      {"name": "strsearch", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 391705},
      {"name": "jacobi", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 1503421},
      {"name": "lud", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 1101592},
      {"name": "blowfish", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 700107},
      {"name": "spmv", "base_ms": N, "cold_ms": N, "cold_gen_ms": N, "cold_replay_ms": N, "warm_ms": N, "speedup_cold": N, "speedup_warm": N, "trace_words": 1904691}
    ],
    "geomean_speedup_cold": N,
    "geomean_speedup_warm": N,
    "total_base_ms": N,
    "total_cold_ms": N,
    "total_warm_ms": N
  }
