The two execution engines are interchangeable from the CLI and produce
identical output — same program result, same cycle count, same counter
bank.

  $ miracc run sample.mira --engine=ref > ref.out
  $ miracc run sample.mira --engine=flat > flat.out
  $ cmp ref.out flat.out && cat flat.out
  836
  return: 36
  cycles: 1410  instructions: 610  CPI: 2.31

The default is the flat engine:

  $ miracc run sample.mira > default.out && cmp default.out flat.out

The full counter bank agrees, on optimized code too:

  $ miracc run sample.mira -O Ofast --counters --engine=ref > ref-c.out
  $ miracc run sample.mira -O Ofast --counters --engine=flat > flat-c.out
  $ cmp ref-c.out flat-c.out && tail -n +4 flat-c.out | head -5
  TOT_INS  334
  TOT_CYC  729
  LD_INS   50
  SR_INS   0
  BR_INS   16

So does the -O0 counter characterization:

  $ miracc counters sample.mira --engine=ref > ref-ch.out
  $ miracc counters sample.mira --engine=flat > flat-ch.out
  $ miracc counters sample.mira --engine=trace > trace-ch.out
  $ cmp ref-ch.out flat-ch.out
  $ cmp ref-ch.out trace-ch.out

Bad engine names are rejected by the option parser:

  $ miracc run sample.mira --engine=jit 2>&1 | head -1
  miracc: option '--engine': invalid value 'jit', expected one of 'ref', 'flat'

--profile prints a one-line decode/execute wall-time split on stderr
(numbers normalized here; they are wall times):

  $ miracc run sample.mira --profile 2>&1 >/dev/null \
  >   | sed -E 's/[0-9]+\.[0-9]+/N/g'
  profile: decode N ms, execute N ms (decode N% of total)

The ref engine has no decode stage:

  $ miracc run sample.mira --profile --engine=ref 2>&1 >/dev/null \
  >   | sed -E 's/[0-9]+\.[0-9]+/N/g'
  profile: decode n/a (ref engine), execute N ms

Traps and exit codes are engine-independent:

  $ cat > div0.mira <<'EOF'
  > fn main() -> int {
  >   var z: int = 0;
  >   return 1 / z;
  > }
  > EOF
  $ miracc run div0.mira --engine=ref
  trap: division by zero
  [2]
  $ miracc run div0.mira --engine=flat
  trap: division by zero
  [2]
