Distributed sweeps.  The one-command local mode (--distribute) forks
workers, shards the planned schedule, journals every shard and merges
the results — and is bit-identical to the single-process sweep:

  $ miracc search sample.mira --strategy random --budget 16 --seed 3 > serial.txt
  $ miracc search sample.mira --strategy random --budget 16 --seed 3 --distribute 2 --dist-dir d2 > dist.txt
  $ diff serial.txt dist.txt

--distribute is a random-strategy feature; anything else is a usage
error:

  $ miracc search sample.mira --strategy hill --budget 4 --distribute 2
  miracc: --distribute requires --strategy random
  [1]

The explicit coordinator/worker pair: sweep-serve plans and serves
shards over a Unix-domain socket, sweep-work joins, evaluates and
streams costs back.  Both sides reconstruct the sweep from
(file, arch, seed, samples) independently:

  $ timeout 60 miracc sweep-serve sample.mira --samples 12 --seed 7 --workers 1 --dir run > serve.out 2>&1 &
  $ sleep 0.3
  $ miracc sweep-work sample.mira --samples 12 --seed 7 --dir run/workers/w0 --socket run/coord.sock --slot 0 --name w0
  shards completed: 4
  $ wait
  $ cat serve.out
  evaluations: 12
  best sequence: inline,cprop,cfold,dce,licm
  best cost: 1059 cycles
  workers: 1, shards: 4, steals: 0, requeues: 0, deaths: 0

A single-worker run is deterministic down to its journal layout;
sweep-status rebuilds the run view from the manifest, the worker
journals and the coordinator's rollup (the run id, git provenance, job
digest and wall-clock are environment-dependent, so they are filtered
here):

  $ miracc sweep-status --dir run | grep -v -e git -e job -e '"run"' | sed 's/elapsed [0-9.]*s/elapsed _s/'
  "schema": "icc-dist-manifest/1",
  "n": 12,
  "chunk_size": 10,
  "shards": 4,
  shard 0 (w0): 1/1 chunks
  shard 1 (w0): 1/1 chunks
  shard 2 (w0): 1/1 chunks
  shard 3 (w0): 1/1 chunks
  progress: 4/4 chunks (100%), elapsed _s
  workers: 1 seen, 0 deaths, 0 respawns, 0 steals, 0 requeues

  $ miracc sweep-status --dir nowhere
  miracc: no manifest at nowhere/manifest.json
  [1]

A worker started with different sweep inputs computes a different job
key and is rejected at hello — the typed dist exit code (5), distinct
from cache errors (4):

  $ timeout 60 miracc sweep-serve sample.mira --samples 12 --seed 7 --workers 1 --dir run2 > serve2.out 2>&1 &
  $ sleep 0.3
  $ miracc sweep-work sample.mira --samples 12 --seed 9 --dir run2/workers/bad --socket run2/coord.sock
  miracc: dist error: coordinator rejected worker: job key mismatch (different sweep inputs)
  [5]
  $ miracc sweep-work sample.mira --samples 12 --seed 7 --dir run2/workers/w0 --socket run2/coord.sock --slot 0
  shards completed: 4
  $ wait

An unusable socket path is the same typed failure:

  $ miracc sweep-serve sample.mira --samples 4 --workers 1 --dir d3 --socket /dev/null/coord.sock
  miracc: dist error: cannot listen on /dev/null/coord.sock: Not a directory
  [5]

  $ miracc sweep-serve sample.mira --samples 0
  miracc: --samples must be > 0
  [1]
