The evaluation engine behind miracc: -j sizes the worker pool, --cache
makes results persistent, --cache-stats prints the engine table.  The
wall-time line is filtered out (not reproducible); everything else is.

A cold parallel search populates the cache.  The 31 evaluations
(budget 30 plus the -O0 reference) compile through the prefix-sharing
trie; only the 16 distinct compiled programs are simulated, the other
15 misses are filled by dedup.  Entries = 31 evaluation keys + 16
simulation keys = 47:

  $ miracc search sample.mira --strategy random --budget 30 --seed 3 -j 2 --cache rc --cache-stats | grep -v "wall time"
  evaluations: 30
  best sequence: inline,cprop,strength,strength,unroll4
  cycles: 1410 -> 1002 (speedup 1.41x)
  engine stats
    evaluations    31
    cache hits     0
    cache misses   31
    dedup hits     15
    simulations    16
    trie hits      87
    trie misses    63
    trie evictions 0
    failures       0
    hit rate       0.0%
    cache entries  47
    quarantined    0

The cache directory holds an append-only, checksummed result log:

  $ head -1 rc/results.log
  mira-rescache 3

A warm re-run finds the same result without a single simulation:

  $ miracc search sample.mira --strategy random --budget 30 --seed 3 -j 2 --cache rc --cache-stats | grep -v "wall time"
  evaluations: 30
  best sequence: inline,cprop,strength,strength,unroll4
  cycles: 1410 -> 1002 (speedup 1.41x)
  engine stats
    evaluations    31
    cache hits     31
    cache misses   0
    dedup hits     0
    simulations    0
    trie hits      0
    trie misses    0
    trie evictions 0
    failures       0
    hit rate       100.0%
    cache entries  47
    quarantined    0

Parallel and serial agree on everything but the stats table:

  $ miracc search sample.mira --strategy random --budget 30 --seed 3 > par.out
  $ miracc search sample.mira --strategy random --budget 30 --seed 3 -j 4 > ser.out
  $ diff par.out ser.out

The hill-climbing and genetic strategies run through the same engine:

  $ miracc search sample.mira --strategy hill --budget 25 --seed 3 --cache rc2 --cache-stats | grep -c "engine stats"
  1
  $ miracc search sample.mira --strategy hill --budget 25 --seed 3 --cache rc2 --cache-stats | grep "simulations"
    simulations    0
