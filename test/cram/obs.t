The observability flags: --trace streams a Chrome trace, --metrics
prints a table or writes JSONL.  Both default off and must leave
stdout byte-identical to a plain run.

No-op default — a run without obs flags and a run whose flags were
never given produce the same bytes:

  $ miracc run sample.mira > plain.out
  $ cat plain.out
  836
  return: 36
  cycles: 1410  instructions: 610  CPI: 2.31

--trace alone leaves stdout untouched and writes a loadable trace:

  $ miracc run sample.mira --trace trace.json > traced.out
  $ cmp plain.out traced.out
  $ trace_check trace.json | head -1 | sed 's/: .*/: valid/'
  trace OK: valid

The trace covers the pipeline stages and ends properly (the clean-exit
path writes the closing bracket):

  $ trace_check trace.json | tail -1
  categories: decode, flatsim, frontend, passes
  $ tail -c 2 trace.json
  ]

--metrics with no file appends the table to stdout, after the run's
own output:

  $ miracc run sample.mira --metrics | head -5
  836
  return: 36
  cycles: 1410  instructions: 610  CPI: 2.31
  metrics
    decode.programs        1

Counter metrics are exact; timing histograms exist but their values
are wall-clock, so only check the shape:

  $ miracc run sample.mira --metrics | grep -c '_ms *n='
  5

--metrics=FILE writes JSONL instead of the table:

  $ miracc run sample.mira --metrics=m.jsonl > filed.out
  $ cmp plain.out filed.out
  $ grep -c '^{' m.jsonl
  8
  $ grep -o '"type":"[a-z]*"' m.jsonl | sort | uniq -c | sed 's/^ *//'
  2 "type":"counter"
  6 "type":"histogram"

search carries the same flags; the engine/search subsystems appear:

  $ miracc search sample.mira --strategy random --budget 3 --trace s.json --metrics=s.jsonl > /dev/null
  $ trace_check s.json | tail -1
  categories: decode, engine, flatsim, frontend, passes, pool, search
  $ grep -c '"name":"search.evals","value":3' s.jsonl
  1

An unwritable trace path is a hard error before any work happens:

  $ miracc run sample.mira --trace /nonexistent-dir/t.json
  miracc: cannot open trace file: /nonexistent-dir/t.json: No such file or directory
  [1]

The ref engine traces too (no decode stage in its categories):

  $ miracc run sample.mira --engine ref --trace ref.json > /dev/null
  $ trace_check ref.json | tail -1
  categories: frontend, passes, sim
