The persistent trace store from the CLI.  --tstore DIR keeps generated
traces on disk, keyed by compiled-IR digest and fuel: the first run
generates and persists, every later run — a different process — replays
straight from the store.  Both must print the same table, because the
stored trace replays bit-identically.

A cold grid run populates the store:

  $ miracc counters sample.mira --configs amd-like,embedded --tstore ts > cold.out
  $ ls ts
  store.log

The warm run, in a fresh process, answers from disk and matches the
cold run byte for byte:

  $ miracc counters sample.mira --configs amd-like,embedded --tstore ts > warm.out
  $ cmp cold.out warm.out
  $ head -3 warm.out
  counter        amd-like     embedded
  TOT_INS        1.000000     1.000000
  TOT_CYC        3.085339     2.474836

The warm run never generates a trace: the trace.generates counter stays
at zero (zero-valued counters are omitted from the metrics export), and
the store serves a hit instead.

  $ miracc counters sample.mira --configs amd-like,embedded --tstore ts --metrics m.jsonl > /dev/null
  $ grep -c '"name":"trace.generates"' m.jsonl
  0
  [1]
  $ grep -o '"name":"tstore.hits","value":1' m.jsonl
  "name":"tstore.hits","value":1

A store-backed single-config run prices through the same path:

  $ miracc counters sample.mira --tstore ts --arch embedded | head -3
  TOT_INS    1.000000
  TOT_CYC    2.474836
  LD_INS     0.109409

And a plain run accepts the flag too, replaying the stored trace under
the default machine:

  $ miracc run sample.mira --tstore ts
  836
  return: 36
  cycles: 1410  instructions: 610  CPI: 2.31

The store survives corruption: tear an append mid-payload (the
tstore-write fault point — what a crash mid-write leaves behind, run
here via MIRA_FAULTS), and the next open quarantines the torn entry and
heals the log instead of crashing.

  $ MIRA_FAULTS=tstore-write@0 miracc run sample.mira --tstore ts2
  836
  return: 36
  cycles: 1410  instructions: 610  CPI: 2.31
  $ miracc counters sample.mira --configs amd-like --tstore ts2 --metrics m2.jsonl > /dev/null
  $ grep -o '"name":"tstore.quarantined","value":1' m2.jsonl
  "name":"tstore.quarantined","value":1
