Prefix sharing and simulation dedup are pure work-savers: the engine's
trie memoizes pass applications across a batch and converging compiled
programs are simulated once, but every printed number must be the one
the no-share engine produces.

The same search with sharing on (default) and off is byte-identical on
everything a user sees:

  $ miracc search sample.mira --strategy random --budget 30 --seed 3 -j 2 > share.out
  $ miracc search sample.mira --strategy random --budget 30 --seed 3 -j 2 --no-share > noshare.out
  $ diff share.out noshare.out

The same holds for the genetic strategy and for a serial run:

  $ miracc search sample.mira --strategy genetic --budget 24 --seed 7 > g-share.out
  $ miracc search sample.mira --strategy genetic --budget 24 --seed 7 --no-share > g-noshare.out
  $ diff g-share.out g-noshare.out

Under the hood the work differs: sharing-on shows trie traffic and
dedup hits, sharing-off simulates every miss and prints no trie rows:

  $ miracc search sample.mira --strategy random --budget 30 --seed 3 --cache-stats | grep -E "dedup|trie|simulations"
    dedup hits     15
    simulations    16
    trie hits      87
    trie misses    63
    trie evictions 0
    cache entries  47
  $ miracc search sample.mira --strategy random --budget 30 --seed 3 --no-share --cache-stats | grep -E "dedup|trie|simulations"
    dedup hits     0
    simulations    31
    cache entries  31
