(* Property tests of the trace-once/model-many layer: the config
   independence of {!Mach.Mtrace} traces, the grid/singleton and
   grid/full-simulation agreements of {!Mach.Replay}, truncated-prefix
   semantics for traps and fuel exhaustion, the bounded trace cache, and
   a regression lock on {!Mach.Config.digest} covering every field. *)

module Interp = Mira.Interp
module Mtrace = Mach.Mtrace
module Replay = Mach.Replay
module Config = Mach.Config
module Flatsim = Mach.Flatsim

let fuel = Mach.Sim.default_fuel

let compile src =
  match Mira.Lower.compile_source src with
  | Ok p -> p
  | Error e -> Alcotest.failf "test program does not compile: %s" e

(* bit-identity of two simulator results; Stdlib.compare so floats match
   by bit-pattern semantics (NaN = NaN) *)
let same (a : Flatsim.result) (b : Flatsim.result) =
  Stdlib.compare
    ( a.Flatsim.cycles, a.Flatsim.counters, a.Flatsim.ret, a.Flatsim.output,
      a.Flatsim.steps )
    ( b.Flatsim.cycles, b.Flatsim.counters, b.Flatsim.ret, b.Flatsim.output,
      b.Flatsim.steps )
  = 0

let check_same what a b =
  if not (same a b) then
    Alcotest.failf "%s: cycles %d vs %d, steps %d vs %d" what a.Flatsim.cycles
      b.Flatsim.cycles a.Flatsim.steps b.Flatsim.steps

(* --- trace generation is deterministic and config-free -------------- *)

(* [Mtrace.generate] takes no config — independence from the machine
   model is structural.  What remains to check is that generation is
   deterministic (same program -> same packed words and metadata), so a
   cached trace stands for any later generation. *)
let test_generate_deterministic () =
  List.iter
    (fun (w : Workloads.t) ->
      let dp = Mira.Decode.decode (Workloads.program w) in
      let a = Mtrace.generate ~fuel dp and b = Mtrace.generate ~fuel dp in
      Alcotest.(check (array int))
        (w.Workloads.name ^ ": packed words")
        (Mtrace.words a) (Mtrace.words b);
      Alcotest.(check bool)
        (w.Workloads.name ^ ": metadata")
        true
        (Stdlib.compare
           (a.Mtrace.base, a.Mtrace.outcome, a.Mtrace.ret, a.Mtrace.output,
            a.Mtrace.steps)
           (b.Mtrace.base, b.Mtrace.outcome, b.Mtrace.ret, b.Mtrace.output,
            b.Mtrace.steps)
         = 0))
    [ List.hd Workloads.all; List.nth Workloads.all 7 ]

(* --- grid replay vs full simulation --------------------------------- *)

(* The headline property, over the whole suite: one trace, folded per
   preset config, reproduces each config's full Flatsim run
   bit-identically; and a singleton grid is exactly [Replay.run]. *)
let test_grid_matches_full_simulation () =
  let configs = Array.of_list Config.all in
  List.iter
    (fun (w : Workloads.t) ->
      let dp = Mira.Decode.decode (Workloads.program w) in
      let tr = Mtrace.generate ~fuel dp in
      let grid = Replay.run_grid ~configs tr in
      Array.iteri
        (fun i config ->
          let full = Flatsim.run ~config ~fuel dp in
          check_same
            (Printf.sprintf "%s on %s: grid vs flatsim" w.Workloads.name
               config.Config.name)
            grid.(i) full;
          let single = (Replay.run_grid ~configs:[| config |] tr).(0) in
          check_same
            (Printf.sprintf "%s on %s: singleton grid vs run"
               w.Workloads.name config.Config.name)
            single
            (Replay.run ~config tr))
        configs)
    Workloads.all

(* model states never interact, so the grid's results only depend on the
   per-slot config, not on its neighbours *)
let test_grid_order_invariance () =
  let p = Workloads.program (List.hd Workloads.all) in
  let tr = Mtrace.generate ~fuel (Mira.Decode.decode p) in
  let fwd = Array.of_list Config.all in
  let rev = Array.of_list (List.rev Config.all) in
  let rf = Replay.run_grid ~configs:fwd tr
  and rr = Replay.run_grid ~configs:rev tr in
  let n = Array.length fwd in
  for i = 0 to n - 1 do
    check_same
      (Printf.sprintf "slot %d: forward vs reversed grid" i)
      rf.(i)
      rr.(n - 1 - i)
  done

(* --- truncated-prefix semantics: traps and fuel ---------------------- *)

let test_trap_prefix () =
  let p =
    compile
      {|fn main() -> int {
          var s: int = 0;
          for i = 0 to 10 { s = s + i; }
          print(s);
          return 1 / (s - s);
        }|}
  in
  let tr = Mtrace.generate_program ~fuel p in
  (match tr.Mtrace.outcome with
  | Mtrace.Trapped m ->
    Alcotest.(check string) "trap message" "division by zero" m
  | o -> Alcotest.failf "expected Trapped, got %s" (Mtrace.outcome_repr o));
  (* the prefix accounted before the trap is kept: the print ran *)
  Alcotest.(check string) "output up to the trap" "45\n" tr.Mtrace.output;
  Alcotest.(check bool) "steps accounted" true (tr.Mtrace.steps > 0);
  (* replay re-raises the engine exception, like Flatsim would *)
  List.iter
    (fun config ->
      match Replay.run ~config tr with
      | _ -> Alcotest.fail "replay of a trapped trace must raise"
      | exception Interp.Trap m ->
        Alcotest.(check string)
          (config.Config.name ^ ": replayed trap")
          "division by zero" m)
    Config.all

let test_fuel_prefix () =
  let p =
    compile
      {|fn main() -> int {
          var s: int = 0;
          for i = 0 to 10 { s = s + i; }
          return s;
        }|}
  in
  let steps = (Interp.run p).Interp.steps in
  (* under-fueled: the trace records exhaustion and replay re-raises *)
  let tr = Mtrace.generate_program ~fuel:(steps - 1) p in
  (match tr.Mtrace.outcome with
  | Mtrace.Exhausted -> ()
  | o -> Alcotest.failf "expected Exhausted, got %s" (Mtrace.outcome_repr o));
  (match Replay.run ~config:Config.default tr with
  | _ -> Alcotest.fail "replay of an exhausted trace must raise"
  | exception Interp.Out_of_fuel -> ());
  (* at, below and above the boundary the trace engine agrees with the
     other two on every preset config (full three-way diff) *)
  List.iter
    (fun fuel ->
      match Testgen.Diff.diff_all ~fuel p with
      | [] -> ()
      | ds ->
        Alcotest.failf "fuel %d: %s" fuel (String.concat "; " ds))
    [ steps - 1; steps; steps + 1 ]

(* --- Config.digest covers every field -------------------------------- *)

(* [rebuild] lists every field of {!Config.t} as a record literal, so
   adding a field to the type breaks this test at compile time until a
   perturbation for it is added below. *)
let rebuild (c : Config.t) : Config.t =
  {
    Config.name = c.Config.name;
    issue_width = c.Config.issue_width;
    lat_mul = c.Config.lat_mul;
    lat_div = c.Config.lat_div;
    lat_fadd = c.Config.lat_fadd;
    lat_fmul = c.Config.lat_fmul;
    lat_fdiv = c.Config.lat_fdiv;
    branch_cost = c.Config.branch_cost;
    jump_cost = c.Config.jump_cost;
    mispredict_penalty = c.Config.mispredict_penalty;
    call_overhead = c.Config.call_overhead;
    print_cost = c.Config.print_cost;
    l1 = c.Config.l1;
    l1_lat = c.Config.l1_lat;
    l2 = c.Config.l2;
    l2_lat = c.Config.l2_lat;
    mem_lat = c.Config.mem_lat;
    predictor_size = c.Config.predictor_size;
  }

let perturbations : (string * (Config.t -> Config.t)) list =
  let bump_cache (cc : Mach.Cache.config) = function
    | `Size -> { cc with Mach.Cache.size_bytes = cc.Mach.Cache.size_bytes * 2 }
    | `Assoc -> { cc with Mach.Cache.assoc = cc.Mach.Cache.assoc * 2 }
    | `Line -> { cc with Mach.Cache.line_bytes = cc.Mach.Cache.line_bytes * 2 }
  in
  [
    ("name", fun c -> { c with Config.name = c.Config.name ^ "'" });
    ("issue_width", fun c -> { c with Config.issue_width = c.Config.issue_width + 1 });
    ("lat_mul", fun c -> { c with Config.lat_mul = c.Config.lat_mul + 1 });
    ("lat_div", fun c -> { c with Config.lat_div = c.Config.lat_div + 1 });
    ("lat_fadd", fun c -> { c with Config.lat_fadd = c.Config.lat_fadd + 1 });
    ("lat_fmul", fun c -> { c with Config.lat_fmul = c.Config.lat_fmul + 1 });
    ("lat_fdiv", fun c -> { c with Config.lat_fdiv = c.Config.lat_fdiv + 1 });
    ("branch_cost", fun c -> { c with Config.branch_cost = c.Config.branch_cost + 1 });
    ("jump_cost", fun c -> { c with Config.jump_cost = c.Config.jump_cost + 1 });
    ( "mispredict_penalty",
      fun c ->
        { c with Config.mispredict_penalty = c.Config.mispredict_penalty + 1 } );
    ( "call_overhead",
      fun c -> { c with Config.call_overhead = c.Config.call_overhead + 1 } );
    ("print_cost", fun c -> { c with Config.print_cost = c.Config.print_cost + 1 });
    ("l1.size_bytes", fun c -> { c with Config.l1 = bump_cache c.Config.l1 `Size });
    ("l1.assoc", fun c -> { c with Config.l1 = bump_cache c.Config.l1 `Assoc });
    ("l1.line_bytes", fun c -> { c with Config.l1 = bump_cache c.Config.l1 `Line });
    ("l1_lat", fun c -> { c with Config.l1_lat = c.Config.l1_lat + 1 });
    ("l2.size_bytes", fun c -> { c with Config.l2 = bump_cache c.Config.l2 `Size });
    ("l2.assoc", fun c -> { c with Config.l2 = bump_cache c.Config.l2 `Assoc });
    ("l2.line_bytes", fun c -> { c with Config.l2 = bump_cache c.Config.l2 `Line });
    ("l2_lat", fun c -> { c with Config.l2_lat = c.Config.l2_lat + 1 });
    ("mem_lat", fun c -> { c with Config.mem_lat = c.Config.mem_lat + 1 });
    ( "predictor_size",
      fun c -> { c with Config.predictor_size = c.Config.predictor_size * 2 } );
  ]

let test_config_digest_covers_every_field () =
  let base = Config.default in
  let d0 = Config.digest base in
  (* digest is a pure function of the fields *)
  Alcotest.(check string) "rebuild digest" d0 (Config.digest (rebuild base));
  List.iter
    (fun (field, perturb) ->
      if Config.digest (perturb base) = d0 then
        Alcotest.failf "perturbing %s does not change the digest" field)
    perturbations;
  (* perturbed digests are also pairwise distinct *)
  let ds = List.map (fun (f, p) -> (f, Config.digest (p base))) perturbations in
  List.iteri
    (fun i (fa, da) ->
      List.iteri
        (fun j (fb, db) ->
          if i < j && da = db then
            Alcotest.failf "%s and %s collide" fa fb)
        ds)
    ds;
  (* the presets are pairwise distinct too *)
  (match List.map Config.digest Config.all with
  | ds -> Alcotest.(check int) "preset digests distinct"
            (List.length Config.all)
            (List.length (List.sort_uniq compare ds)))

(* --- the bounded trace cache ----------------------------------------- *)

module Tcache = Engine.Tcache

let small_trace () =
  Mtrace.generate_program ~fuel
    (compile {|fn main() -> int { return 41 + 1; }|})

let test_tcache_hit_miss () =
  let t = Tcache.create () in
  let calls = ref 0 in
  let gen () = incr calls; small_trace () in
  let a = Tcache.find_or_generate t ~ir_digest:"p1" ~fuel gen in
  let b = Tcache.find_or_generate t ~ir_digest:"p1" ~fuel gen in
  Alcotest.(check int) "generator ran once" 1 !calls;
  Alcotest.(check bool) "same trace object" true (a == b);
  Alcotest.(check int) "hits" 1 (Tcache.hits t);
  Alcotest.(check int) "misses" 1 (Tcache.misses t);
  (* fuel is part of the key: a different budget is a different trace *)
  ignore (Tcache.find_or_generate t ~ir_digest:"p1" ~fuel:(fuel - 1) gen);
  Alcotest.(check int) "different fuel misses" 2 (Tcache.misses t)

let test_tcache_lru_eviction () =
  (* size the budget from a real trace so exactly two entries fit *)
  let probe = Tcache.create () in
  ignore
    (Tcache.find_or_generate probe ~ir_digest:"w" ~fuel (fun () ->
         small_trace ()));
  let w = Tcache.resident_words probe in
  let t = Tcache.create ~capacity_words:(2 * w) () in
  let put d =
    ignore (Tcache.find_or_generate t ~ir_digest:d ~fuel small_trace)
  in
  put "a";
  put "b";
  (* touch [a] so [b] is the least recently used *)
  Alcotest.(check bool) "a cached" true (Tcache.find t ~ir_digest:"a" ~fuel <> None);
  put "c";
  Alcotest.(check int) "one eviction" 1 (Tcache.evictions t);
  Alcotest.(check bool) "a survives" true (Tcache.find t ~ir_digest:"a" ~fuel <> None);
  Alcotest.(check bool) "b evicted" true (Tcache.find t ~ir_digest:"b" ~fuel = None);
  Alcotest.(check int) "two resident" 2 (Tcache.resident t);
  Alcotest.(check bool) "budget respected" true (Tcache.resident_words t <= 2 * w)

let test_tcache_oversized_bypass () =
  let t = Tcache.create ~capacity_words:1 () in
  let calls = ref 0 in
  let gen () = incr calls; small_trace () in
  ignore (Tcache.find_or_generate t ~ir_digest:"big" ~fuel gen);
  ignore (Tcache.find_or_generate t ~ir_digest:"big" ~fuel gen);
  Alcotest.(check int) "regenerated each time" 2 !calls;
  Alcotest.(check int) "nothing retained" 0 (Tcache.resident t);
  Alcotest.(check int) "uncached counted" 2 (Tcache.uncached t);
  Alcotest.(check int) "no evictions" 0 (Tcache.evictions t)

(* --- the engine's trace path ----------------------------------------- *)

(* Two engines for different grid configs sharing one trace cache: the
   program is traced once, and the trace engine's outcomes match the
   flat engine's bit for bit. *)
let test_engine_trace_path () =
  let p = Workloads.program (List.hd Workloads.all) in
  let saved = !Mach.Sim.default_engine in
  Fun.protect
    ~finally:(fun () -> Mach.Sim.default_engine := saved)
    (fun () ->
      Mach.Sim.default_engine := Mach.Sim.Trace;
      let tcache = Tcache.create () in
      let outcomes =
        List.map
          (fun config ->
            let eng = Engine.create ~jobs:1 ~tcache config in
            let o = Engine.eval eng p [] in
            Engine.Rcache.close (Engine.cache eng);
            o)
          Config.all
      in
      Alcotest.(check int) "traced once" 1 (Tcache.misses tcache);
      Alcotest.(check int)
        "grid hits"
        (List.length Config.all - 1)
        (Tcache.hits tcache);
      Mach.Sim.default_engine := Mach.Sim.Flat;
      List.iter2
        (fun config (o : Engine.outcome) ->
          let eng = Engine.create ~jobs:1 config in
          let f = Engine.eval eng p [] in
          Engine.Rcache.close (Engine.cache eng);
          Alcotest.(check (option int))
            (config.Config.name ^ ": cycles")
            f.Engine.cycles o.Engine.cycles;
          Alcotest.(check bool)
            (config.Config.name ^ ": counters")
            true
            (f.Engine.counters = o.Engine.counters))
        Config.all outcomes)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    ( "trace-replay",
      [
        t "trace generation is deterministic" test_generate_deterministic;
        slow "grid replay == full simulation (suite x presets)"
          test_grid_matches_full_simulation;
        t "grid is order-invariant" test_grid_order_invariance;
        t "trapped trace keeps the accounted prefix" test_trap_prefix;
        t "fuel exhaustion boundary" test_fuel_prefix;
        t "Config.digest covers every field"
          test_config_digest_covers_every_field;
      ] );
    ( "trace-cache",
      [
        t "hit/miss and fuel keying" test_tcache_hit_miss;
        t "LRU eviction under a word budget" test_tcache_lru_eviction;
        t "oversized traces bypass retention" test_tcache_oversized_bypass;
        t "engine grid shares one trace" test_engine_trace_path;
      ] );
  ]

let () = Alcotest.run "trace" suite
