(* The evaluation engine: worker pool semantics, persistent result cache,
   and the headline guarantees — parallel evaluation is bit-identical to
   serial, and a warm cache serves everything without simulating. *)

let tmp_dir prefix =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  if not (Sys.file_exists d) then Sys.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

(* ------------------------------------------------------------------ *)
(* Pool *)

let outcome_int : int Engine.Pool.outcome Alcotest.testable =
  Alcotest.testable
    (fun ppf -> function
      | Engine.Pool.Done v -> Fmt.pf ppf "Done %d" v
      | Engine.Pool.Failed e -> Fmt.pf ppf "Failed %s" e
      | Engine.Pool.Crashed -> Fmt.pf ppf "Crashed"
      | Engine.Pool.Timed_out -> Fmt.pf ppf "Timed_out")
    ( = )

let test_pool_map_order () =
  let tasks = Array.init 37 (fun i -> i) in
  let expect = Array.map (fun i -> Engine.Pool.Done (i * i)) tasks in
  let got = Engine.Pool.map ~jobs:4 (fun i -> i * i) tasks in
  Alcotest.(check (array outcome_int)) "squares in order" expect got

let test_pool_serial_matches_parallel () =
  let tasks = Array.init 23 (fun i -> i) in
  let f i = (i * 7919) mod 101 in
  Alcotest.(check (array outcome_int))
    "jobs:1 = jobs:4"
    (Engine.Pool.map ~jobs:1 f tasks)
    (Engine.Pool.map ~jobs:4 f tasks)

let test_pool_exception_is_failed () =
  let got =
    Engine.Pool.map ~jobs:3
      (fun i -> if i = 5 then failwith "boom" else i)
      (Array.init 10 (fun i -> i))
  in
  (match got.(5) with
   | Engine.Pool.Failed msg ->
     Alcotest.(check bool) "message mentions boom" true
       (String.length msg > 0)
   | o ->
     Alcotest.failf "expected Failed, got %a" (Alcotest.pp outcome_int) o);
  Array.iteri
    (fun i o ->
      if i <> 5 then
        Alcotest.(check (outcome_int)) "others done" (Engine.Pool.Done i) o)
    got

let test_pool_crash_is_contained () =
  (* one task kills its worker outright; it must be reported Crashed
     (after the retry also crashes) and every other task still done *)
  let got =
    Engine.Pool.map ~jobs:3 ~retries:1
      (fun i -> if i = 4 then Unix._exit 9 else i)
      (Array.init 12 (fun i -> i))
  in
  Alcotest.(check (outcome_int)) "crashed slot" Engine.Pool.Crashed got.(4);
  Array.iteri
    (fun i o ->
      if i <> 4 then
        Alcotest.(check (outcome_int)) "survivors" (Engine.Pool.Done i) o)
    got

let test_pool_workers_overlap () =
  (* sleeps, not CPU: even on a single-core host, concurrent worker
     processes overlap sleeping tasks.  6 x 0.25s is >= 1.5s serially;
     with 3 workers the wall clock must come in well under that. *)
  let t0 = Unix.gettimeofday () in
  let got =
    Engine.Pool.map ~jobs:3
      (fun i ->
        Unix.sleepf 0.25;
        i)
      (Array.init 6 (fun i -> i))
  in
  let wall = Unix.gettimeofday () -. t0 in
  Array.iteri
    (fun i o ->
      Alcotest.(check outcome_int) "task done" (Engine.Pool.Done i) o)
    got;
  Alcotest.(check bool)
    (Printf.sprintf "workers overlapped (%.2fs, serial >= 1.5s)" wall)
    true (wall < 1.2)

let test_pool_timeout () =
  let got =
    Engine.Pool.map ~jobs:3 ~task_timeout:0.3
      (fun i ->
        if i = 2 then Unix.sleepf 30.0;
        i)
      (Array.init 6 (fun i -> i))
  in
  Alcotest.(check (outcome_int)) "timed-out slot" Engine.Pool.Timed_out
    got.(2);
  Array.iteri
    (fun i o ->
      if i <> 2 then
        Alcotest.(check (outcome_int)) "survivors" (Engine.Pool.Done i) o)
    got

(* ------------------------------------------------------------------ *)
(* Rcache *)

let entry_eq (a : Engine.Rcache.entry) (b : Engine.Rcache.entry) = a = b

let entry : Engine.Rcache.entry Alcotest.testable =
  Alcotest.testable
    (fun ppf -> function
      | Engine.Rcache.Measured { ir_digest; cycles; code_size; counters } ->
        Fmt.pf ppf "Measured(%s,%d,%d,[%d])" ir_digest cycles code_size
          (Array.length counters)
      | Engine.Rcache.Failure { ir_digest } ->
        Fmt.pf ppf "Failure(%s)" ir_digest)
    entry_eq

(* v3 entries carry the compiled program's IR digest; tests use fixed
   32-hex placeholders *)
let dg c = String.make 32 c

let test_rcache_roundtrip () =
  let dir = tmp_dir "rcache" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let m =
        Engine.Rcache.Measured
          { ir_digest = dg 'a'; cycles = 123; code_size = 45;
            counters = [| 1; 2; 3; 0; 7 |] }
      in
      let c = Engine.Rcache.open_dir dir in
      Engine.Rcache.add c "k1" m;
      Engine.Rcache.add c "k2" (Engine.Rcache.Failure { ir_digest = dg 'b' });
      (* last line wins *)
      Engine.Rcache.add c "k2"
        (Engine.Rcache.Measured
           { ir_digest = dg 'c'; cycles = 9; code_size = 1; counters = [||] });
      Engine.Rcache.close c;
      let c2 = Engine.Rcache.open_dir dir in
      Alcotest.(check (option entry)) "k1 persists" (Some m)
        (Engine.Rcache.find c2 "k1");
      Alcotest.(check (option entry)) "k2 last write wins"
        (Some
           (Engine.Rcache.Measured
              { ir_digest = dg 'c'; cycles = 9; code_size = 1;
                counters = [||] }))
        (Engine.Rcache.find c2 "k2");
      Alcotest.(check (option entry)) "absent key" None
        (Engine.Rcache.find c2 "nope");
      Alcotest.(check int) "known" 2 (Engine.Rcache.known c2);
      Engine.Rcache.close c2;
      (* a torn final line (crash mid-append) is dropped at replay *)
      let oc =
        open_out_gen
          [ Open_append; Open_wronly ]
          0o644
          (Filename.concat dir "results.log")
      in
      output_string oc "ok|torn-key|12";
      close_out oc;
      let c3 = Engine.Rcache.open_dir dir in
      Alcotest.(check int) "torn line quarantined" 1
        (Engine.Rcache.quarantined c3);
      Alcotest.(check (option entry)) "torn line dropped" None
        (Engine.Rcache.find c3 "torn-key");
      Alcotest.(check (option entry)) "intact entries survive" (Some m)
        (Engine.Rcache.find c3 "k1");
      Engine.Rcache.close c3)

let test_rcache_lru_bound () =
  let c = Engine.Rcache.in_memory ~mem_capacity:4 () in
  let fail = Engine.Rcache.Failure { ir_digest = dg 'f' } in
  for i = 0 to 9 do
    Engine.Rcache.add c (string_of_int i) fail
  done;
  Alcotest.(check bool) "resident bounded" true (Engine.Rcache.resident c <= 4);
  Alcotest.(check int) "all keys known" 10 (Engine.Rcache.known c);
  (* the most recent keys survive *)
  Alcotest.(check (option entry)) "newest resident" (Some fail)
    (Engine.Rcache.find c "9");
  Alcotest.(check (option entry)) "oldest evicted" None
    (Engine.Rcache.find c "0")

(* ------------------------------------------------------------------ *)
(* Engine *)

let config = Mach.Config.default

let target = Workloads.program (Workloads.by_name_exn "adpcm")

let sequences n =
  let rng = Random.State.make [| 7 |] in
  Search.Space.sample_distinct rng n

let check_outcomes_equal label (a : Engine.outcome array)
    (b : Engine.outcome array) =
  Alcotest.(check int) (label ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i (x : Engine.outcome) ->
      let y = b.(i) in
      if
        not
          (x.Engine.cost = y.Engine.cost
          && x.Engine.cycles = y.Engine.cycles
          && x.Engine.code_size = y.Engine.code_size
          && x.Engine.counters = y.Engine.counters)
      then Alcotest.failf "%s: outcome %d differs" label i)
    a

let test_parallel_identical_to_serial () =
  let seqs = sequences 100 in
  let serial = Engine.create ~jobs:1 config in
  let parallel = Engine.create ~jobs:4 config in
  let a = Engine.eval_batch serial target seqs in
  let b = Engine.eval_batch parallel target seqs in
  check_outcomes_equal "jobs:1 vs jobs:4" a b;
  (* and both match the plain simulator path *)
  List.iteri
    (fun i seq ->
      Alcotest.(check (float 0.0))
        "matches eval_sequence"
        (Icc.Characterize.eval_sequence ~config target seq)
        a.(i).Engine.cost)
    seqs

let test_warm_cache_across_instances () =
  let dir = tmp_dir "engine-cache" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let seqs = sequences 60 in
      let e1 = Engine.create ~jobs:4 ~cache:(Engine.Rcache.open_dir dir) config in
      let cold = Engine.eval_batch e1 target seqs in
      (* with sharing on, converging sequences are deduped: every miss
         is either simulated or filled from a shared simulation *)
      let s1 = Engine.stats e1 in
      Alcotest.(check int) "cold run simulates or dedups every miss"
        (List.length seqs)
        (s1.Engine.sims + s1.Engine.dedup_hits);
      Alcotest.(check bool) "cold run simulates" true (s1.Engine.sims > 0);
      Engine.Rcache.close (Engine.cache e1);
      (* a second engine instance, same directory: all hits, no sims *)
      let e2 = Engine.create ~jobs:4 ~cache:(Engine.Rcache.open_dir dir) config in
      let warm = Engine.eval_batch e2 target seqs in
      check_outcomes_equal "cold vs warm" cold warm;
      let s = Engine.stats e2 in
      Alcotest.(check int) "warm run simulates nothing" 0 s.Engine.sims;
      Alcotest.(check int) "every eval is a hit" (List.length seqs)
        s.Engine.hits;
      Alcotest.(check (float 0.0)) "hit rate 100%" 1.0 (Engine.hit_rate e2);
      Alcotest.(check bool) "outcomes flagged from_cache" true
        (Array.for_all (fun o -> o.Engine.from_cache) warm);
      Engine.Rcache.close (Engine.cache e2))

let test_duplicate_sequences_simulated_once () =
  let eng = Engine.create ~jobs:4 config in
  let seq = [ Passes.Pass.Const_fold; Passes.Pass.Dce ] in
  let out = Engine.eval_batch eng target [ seq; seq; seq; [] ] in
  Alcotest.(check int) "4 evaluations" 4 (Engine.stats eng).Engine.evals;
  Alcotest.(check int) "2 simulations" 2 (Engine.stats eng).Engine.sims;
  check_outcomes_equal "duplicates agree"
    [| out.(0); out.(1) |] [| out.(1); out.(2) |]

let test_failure_is_cached () =
  let trapping =
    Mira.Lower.compile_source_exn
      "fn main() -> int { var d: int = 0; return 1 / d; }"
  in
  let eng = Engine.create config in
  let o1 = Engine.eval eng trapping [] in
  Alcotest.(check (float 0.0)) "trap costs infinity" infinity o1.Engine.cost;
  let o2 = Engine.eval eng trapping [] in
  Alcotest.(check bool) "second eval served from cache" true
    o2.Engine.from_cache;
  Alcotest.(check int) "one simulation total" 1 (Engine.stats eng).Engine.sims;
  Alcotest.(check int) "both failures counted" 2
    (Engine.stats eng).Engine.failures

let test_eval_many_across_programs () =
  (* generated programs through the shared testgen library: engine
     results match the direct simulator on every (program, seq) pair *)
  let progs =
    List.filter_map
      (fun seed ->
        match Testgen.Gen_program.compile seed with
        | Ok p -> Some p
        | Error _ -> None)
      (List.init 10 (fun i -> 4000 + i))
  in
  let pairs =
    List.concat_map
      (fun p -> [ (p, []); (p, Passes.Pass.o2) ]) progs
  in
  let eng = Engine.create ~jobs:4 config in
  let out = Engine.eval_many eng pairs in
  List.iteri
    (fun i (p, seq) ->
      Alcotest.(check (float 0.0))
        "pair matches eval_sequence"
        (Icc.Characterize.eval_sequence ~config p seq)
        out.(i).Engine.cost)
    pairs

let test_random_plan_replay_matches_random () =
  (* the batched random search (plan + engine + replay) is the serial
     Strategies.random, point for point *)
  let eng = Engine.create ~jobs:4 config in
  let eval = Icc.Characterize.eval_sequence ~config target in
  let budget = 40 in
  let reference = Search.Strategies.random ~seed:11 ~budget eval in
  let seqs = Search.Strategies.random_plan ~seed:11 ~budget () in
  let costs = Engine.costs eng target (Array.to_list seqs) in
  let replayed = Search.Strategies.replay ~seqs ~costs in
  Alcotest.(check (float 0.0))
    "best cost" reference.Search.Strategies.best_cost
    replayed.Search.Strategies.best_cost;
  Alcotest.(check bool) "best sequence" true
    (reference.Search.Strategies.best_seq
     = replayed.Search.Strategies.best_seq);
  Alcotest.(check bool) "full history" true
    (reference.Search.Strategies.history = replayed.Search.Strategies.history)

let () =
  Random.self_init ();
  Alcotest.run "engine"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "serial = parallel" `Quick
            test_pool_serial_matches_parallel;
          Alcotest.test_case "exception -> Failed" `Quick
            test_pool_exception_is_failed;
          Alcotest.test_case "crash contained" `Quick
            test_pool_crash_is_contained;
          Alcotest.test_case "workers overlap" `Quick
            test_pool_workers_overlap;
          Alcotest.test_case "timeout" `Quick test_pool_timeout;
        ] );
      ( "rcache",
        [
          Alcotest.test_case "disk round-trip" `Quick test_rcache_roundtrip;
          Alcotest.test_case "LRU bound" `Quick test_rcache_lru_bound;
        ] );
      ( "engine",
        [
          Alcotest.test_case "parallel identical to serial" `Quick
            test_parallel_identical_to_serial;
          Alcotest.test_case "warm cache across instances" `Quick
            test_warm_cache_across_instances;
          Alcotest.test_case "duplicates simulated once" `Quick
            test_duplicate_sequences_simulated_once;
          Alcotest.test_case "failures cached" `Quick test_failure_is_cached;
          Alcotest.test_case "eval_many across programs" `Quick
            test_eval_many_across_programs;
          Alcotest.test_case "plan/replay = random" `Quick
            test_random_plan_replay_matches_random;
        ] );
    ]
