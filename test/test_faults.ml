(* Fault injection and the crash-safe, self-healing engine:
   - Faults plan parsing and occurrence semantics;
   - every Pool outcome (Done/Failed/Crashed/Timed_out) from one
     deterministic injected run, poison-task quarantine, and graceful
     degradation to serial execution when (re)spawning workers fails;
   - Rcache v3 replay under injected corruption (torn final line,
     bit-flipped line, truncated header, duplicate keys), quarantine
     accounting, legacy v1/v2 quarantine, atomic compaction, absorbed
     write errors, and the single-writer lock;
   - Journal checkpoint/resume: a sweep killed mid-run (injected
     kill -9) resumes to byte-identical results. *)

module Faults = Engine.Faults
module Pool = Engine.Pool
module Rcache = Engine.Rcache
module Journal = Engine.Journal

let tmp_dir prefix =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  if not (Sys.file_exists d) then Sys.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_tmp_dir prefix f =
  let d = tmp_dir prefix in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let log_path dir = Filename.concat dir "results.log"
let lock_path dir = Filename.concat dir "cache.lock"

(* ------------------------------------------------------------------ *)
(* Faults *)

let test_faults_parse () =
  Alcotest.(check bool) "bad point rejected" true
    (Result.is_error (Faults.parse "no-such-point@1"));
  Alcotest.(check bool) "missing occurrence rejected" true
    (Result.is_error (Faults.parse "worker-crash"));
  Alcotest.(check bool) "bad occurrence rejected" true
    (Result.is_error (Faults.parse "worker-crash@x"));
  Alcotest.(check bool) "negative occurrence rejected" true
    (Result.is_error (Faults.parse "worker-crash@-1"));
  Alcotest.(check bool) "bad arg rejected" true
    (Result.is_error (Faults.parse "worker-hang@1=x"));
  Alcotest.(check bool) "empty spec rejected" true
    (Result.is_error (Faults.parse ""));
  Alcotest.(check bool) "directives parse" true
    (Result.is_ok
       (Faults.parse "worker-crash@3,worker-hang@2=60,spawn-fail@*,torn-append@4+"))

let test_faults_occurrences () =
  Faults.with_plan
    (Faults.parse_exn "torn-append@1,flip-append@2+,fail-append@*")
    (fun () ->
      (* counted occurrences: 0,1,2,... per point *)
      Alcotest.(check (list bool))
        "Nth fires exactly once" [ false; true; false; false ]
        (List.init 4 (fun _ -> Faults.fires "torn-append"));
      Alcotest.(check (list bool))
        "From fires from N on" [ false; false; true; true ]
        (List.init 4 (fun _ -> Faults.fires "flip-append"));
      Alcotest.(check (list bool))
        "Every always fires" [ true; true; true ]
        (List.init 3 (fun _ -> Faults.fires "fail-append"));
      (* explicit indices do not touch the counters *)
      Alcotest.(check bool) "explicit index, no fire" false
        (Faults.fires ~index:0 "torn-append");
      Alcotest.(check bool) "explicit index, fire" true
        (Faults.fires ~index:1 "torn-append"));
  Alcotest.(check bool) "with_plan restores" false (Faults.active ());
  (* arguments ride along *)
  Faults.with_plan
    (Faults.parse_exn "worker-hang@5=42")
    (fun () ->
      match Faults.consult ~index:5 "worker-hang" with
      | Some h ->
        Alcotest.(check (option int)) "arg carried" (Some 42) h.Faults.arg
      | None -> Alcotest.fail "directive did not fire")

(* ------------------------------------------------------------------ *)
(* Pool under injection *)

let outcome_int : int Pool.outcome Alcotest.testable =
  Alcotest.testable
    (fun ppf -> function
      | Pool.Done v -> Fmt.pf ppf "Done %d" v
      | Pool.Failed e -> Fmt.pf ppf "Failed %s" e
      | Pool.Crashed -> Fmt.pf ppf "Crashed"
      | Pool.Timed_out -> Fmt.pf ppf "Timed_out")
    ( = )

(* one run exhibiting all four outcomes, deterministically: task 2
   raises, task 4's worker dies on every attempt (poison), task 7's
   worker hangs past the timeout, everything else succeeds *)
let all_outcomes_run () =
  let h = Pool.empty_health () in
  let got =
    Faults.with_plan
      (Faults.parse_exn "worker-crash@4,worker-hang@7=600")
      (fun () ->
        Pool.map ~jobs:3 ~task_timeout:0.5 ~retries:1 ~health:h
          (fun i -> if i = 2 then failwith "boom" else i)
          (Array.init 10 Fun.id))
  in
  (got, h)

let test_pool_all_outcomes () =
  let got, h = all_outcomes_run () in
  Array.iteri
    (fun i o ->
      match i with
      | 2 -> (
        match o with
        | Pool.Failed _ -> ()
        | o ->
          Alcotest.failf "task 2: expected Failed, got %a"
            (Alcotest.pp outcome_int) o)
      | 4 ->
        Alcotest.(check outcome_int) "task 4 poisoned" Pool.Crashed o
      | 7 ->
        Alcotest.(check outcome_int) "task 7 timed out" Pool.Timed_out o
      | i -> Alcotest.(check outcome_int) "survivor" (Pool.Done i) o)
    got;
  Alcotest.(check int) "task 4 killed two workers" 2 h.Pool.crashed_workers;
  Alcotest.(check int) "poison registry has task 4" 1 h.Pool.poisoned;
  Alcotest.(check int) "one timeout" 1 h.Pool.timeouts;
  Alcotest.(check bool) "workers were respawned" true (h.Pool.respawns >= 1);
  Alcotest.(check int) "no serial fallback" 0 h.Pool.serial_fallbacks

let test_pool_injection_deterministic () =
  let a, _ = all_outcomes_run () in
  let b, _ = all_outcomes_run () in
  Alcotest.(check (array outcome_int)) "two injected runs agree" a b

let test_pool_no_workers_serial_fallback () =
  (* every fork fails: the pool must degrade to in-process serial
     execution and still complete every task *)
  let h = Pool.empty_health () in
  let got =
    Faults.with_plan (Faults.parse_exn "spawn-fail@*") (fun () ->
        Pool.map ~jobs:3 ~health:h (fun i -> i * 2) (Array.init 8 Fun.id))
  in
  Array.iteri
    (fun i o ->
      Alcotest.(check outcome_int) "done serially" (Pool.Done (i * 2)) o)
    got;
  Alcotest.(check int) "fell back to serial once" 1 h.Pool.serial_fallbacks;
  Alcotest.(check int) "three failed forks" 3 h.Pool.spawn_failures

let test_pool_respawn_exhaustion_serial_fallback () =
  (* both initial workers die on their first task and every respawn
     fails: the remaining tasks (including the ones that crashed a
     worker once) complete serially *)
  let h = Pool.empty_health () in
  let got =
    Faults.with_plan
      (Faults.parse_exn "worker-crash@0,worker-crash@1,spawn-fail@2+")
      (fun () ->
        Pool.map ~jobs:2 ~retries:1 ~health:h ~max_respawns:3
          ~respawn_backoff:0.001 Fun.id (Array.init 6 Fun.id))
  in
  Array.iteri
    (fun i o ->
      Alcotest.(check outcome_int) "completed serially" (Pool.Done i) o)
    got;
  Alcotest.(check int) "serial fallback" 1 h.Pool.serial_fallbacks;
  Alcotest.(check int) "two crashed workers" 2 h.Pool.crashed_workers;
  Alcotest.(check bool) "respawns all failed" true (h.Pool.spawn_failures >= 1);
  Alcotest.(check int) "nothing poisoned" 0 h.Pool.poisoned

(* ------------------------------------------------------------------ *)
(* Rcache corruption, quarantine, healing *)

let entry : Rcache.entry Alcotest.testable =
  Alcotest.testable
    (fun ppf -> function
      | Rcache.Measured { ir_digest; cycles; code_size; counters } ->
        Fmt.pf ppf "Measured(%s,%d,%d,[%d])" ir_digest cycles code_size
          (Array.length counters)
      | Rcache.Failure { ir_digest } -> Fmt.pf ppf "Failure(%s)" ir_digest)
    ( = )

(* v3 entries carry the compiled program's IR digest (32 hex chars) *)
let dg c = String.make 32 c

let m1 =
  Rcache.Measured
    { ir_digest = dg 'a'; cycles = 100; code_size = 7; counters = [| 1; 2 |] }

let m2 =
  Rcache.Measured
    { ir_digest = dg 'b'; cycles = 50; code_size = 3; counters = [||] }

let sealed key e = Rcache.seal_line (Rcache.entry_to_line key e) ^ "\n"

let test_entry_of_line_validation () =
  let ok l = Result.is_ok (Rcache.entry_of_line l) in
  let d = dg 'a' in
  Alcotest.(check bool) "valid ok line" true
    (ok (Printf.sprintf "ok|k|%s|5|2|1,2,3" d));
  Alcotest.(check bool) "valid empty counters" true
    (ok (Printf.sprintf "ok|k|%s|5|2|" d));
  Alcotest.(check bool) "valid fail line" true
    (ok (Printf.sprintf "fail|k|%s" d));
  Alcotest.(check bool) "negative cycles rejected" false
    (ok (Printf.sprintf "ok|k|%s|-5|2|1" d));
  Alcotest.(check bool) "negative size rejected" false
    (ok (Printf.sprintf "ok|k|%s|5|-2|1" d));
  Alcotest.(check bool) "negative counter rejected" false
    (ok (Printf.sprintf "ok|k|%s|5|2|1,-2" d));
  Alcotest.(check bool) "junk after counters rejected" false
    (ok (Printf.sprintf "ok|k|%s|5|2|1,2junk" d));
  Alcotest.(check bool) "trailing comma rejected" false
    (ok (Printf.sprintf "ok|k|%s|5|2|1,2," d));
  Alcotest.(check bool) "hex cycles rejected" false
    (ok (Printf.sprintf "ok|k|%s|0x10|2|1" d));
  Alcotest.(check bool) "extra field rejected" false
    (ok (Printf.sprintf "ok|k|%s|5|2|1|9" d));
  Alcotest.(check bool) "empty key rejected" false
    (ok (Printf.sprintf "fail||%s" d));
  Alcotest.(check bool) "overflow rejected" false
    (ok (Printf.sprintf "ok|k|%s|99999999999999999999999999|2|1" d));
  (* v3 requires the IR-digest field; v1/v2-shaped lines must not parse *)
  Alcotest.(check bool) "v2 ok shape rejected" false (ok "ok|k|5|2|1,2");
  Alcotest.(check bool) "v2 fail shape rejected" false (ok "fail|k");
  Alcotest.(check bool) "short digest rejected" false
    (ok (Printf.sprintf "ok|k|%s|5|2|1" (String.make 31 'a')));
  Alcotest.(check bool) "uppercase digest rejected" false
    (ok (Printf.sprintf "ok|k|%s|5|2|1" (String.make 32 'A')))

let test_rcache_torn_line_quarantined_and_healed () =
  with_tmp_dir "rc-torn" @@ fun dir ->
  let c = Rcache.open_dir dir in
  Rcache.add c "k1" m1;
  Rcache.add c "k2" m2;
  Rcache.close c;
  (* crash mid-append: half a line, no newline *)
  let line = Rcache.seal_line (Rcache.entry_to_line "k3" m1) in
  let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 (log_path dir) in
  output_string oc (String.sub line 0 (String.length line / 2));
  close_out oc;
  let c2 = Rcache.open_dir dir in
  Alcotest.(check int) "torn line quarantined" 1 (Rcache.quarantined c2);
  Alcotest.(check (option entry)) "k1 survives" (Some m1)
    (Rcache.find c2 "k1");
  Alcotest.(check (option entry)) "k2 survives" (Some m2)
    (Rcache.find c2 "k2");
  Alcotest.(check (option entry)) "torn key absent" None
    (Rcache.find c2 "k3");
  Rcache.close c2;
  (* the reopen healed the log: third open is clean *)
  let c3 = Rcache.open_dir dir in
  Alcotest.(check int) "log healed" 0 (Rcache.quarantined c3);
  Alcotest.(check int) "entries intact" 2 (Rcache.known c3);
  Rcache.close c3

let test_rcache_bitflip_quarantined () =
  with_tmp_dir "rc-flip" @@ fun dir ->
  (* build the log by hand: k1 intact, k2's line corrupted by one bit *)
  let good = sealed "k1" m1 in
  let bad = Bytes.of_string (sealed "k2" m2) in
  let mid = Bytes.length bad / 2 in
  Bytes.set bad mid (Char.chr (Char.code (Bytes.get bad mid) lxor 1));
  write_file (log_path dir)
    ("mira-rescache 3\n" ^ good ^ Bytes.to_string bad);
  let c = Rcache.open_dir dir in
  Alcotest.(check int) "flipped line quarantined" 1 (Rcache.quarantined c);
  Alcotest.(check (option entry)) "intact entry survives" (Some m1)
    (Rcache.find c "k1");
  Alcotest.(check (option entry)) "corrupt entry dropped" None
    (Rcache.find c "k2");
  Rcache.close c

let test_rcache_semantic_invalid_quarantined () =
  with_tmp_dir "rc-sem" @@ fun dir ->
  (* checksums valid, payloads semantically rotten *)
  write_file (log_path dir)
    ("mira-rescache 3\n"
    ^ Rcache.seal_line (Printf.sprintf "ok|bad1|%s|-5|2|1,2" (dg 'a')) ^ "\n"
    ^ Rcache.seal_line (Printf.sprintf "ok|bad2|%s|5|2|1,2junk" (dg 'a'))
    ^ "\n" ^ sealed "good" m1);
  let c = Rcache.open_dir dir in
  Alcotest.(check int) "both invalid lines quarantined" 2
    (Rcache.quarantined c);
  Alcotest.(check (option entry)) "valid entry survives" (Some m1)
    (Rcache.find c "good");
  Rcache.close c

let test_rcache_truncated_header () =
  with_tmp_dir "rc-hdr" @@ fun dir ->
  (* a crash during cache creation leaves a prefix of the magic *)
  write_file (log_path dir) "mira-resc";
  let c = Rcache.open_dir dir in
  Alcotest.(check int) "torn header quarantined" 1 (Rcache.quarantined c);
  Rcache.add c "k1" m1;
  Rcache.close c;
  let c2 = Rcache.open_dir dir in
  Alcotest.(check int) "healed" 0 (Rcache.quarantined c2);
  Alcotest.(check (option entry)) "entry persisted" (Some m1)
    (Rcache.find c2 "k1");
  Rcache.close c2

let test_rcache_alien_file_refused () =
  with_tmp_dir "rc-alien" @@ fun dir ->
  write_file (log_path dir) "definitely not a result cache\n";
  (match Rcache.open_dir dir with
   | exception Rcache.Cache_error _ -> ()
   | c ->
     Rcache.close c;
     Alcotest.fail "alien file must raise Cache_error, not be clobbered");
  (* the alien file was not touched, and no lock was leaked *)
  Alcotest.(check string) "alien file untouched"
    "definitely not a result cache\n"
    (read_file (log_path dir));
  Alcotest.(check bool) "no stale lock left" false
    (Sys.file_exists (lock_path dir))

let test_rcache_duplicate_key_last_wins () =
  with_tmp_dir "rc-dup" @@ fun dir ->
  write_file (log_path dir)
    ("mira-rescache 3\n" ^ sealed "k" m1 ^ sealed "other" m2 ^ sealed "k" m2);
  let c = Rcache.open_dir dir in
  Alcotest.(check (option entry)) "last line wins" (Some m2)
    (Rcache.find c "k");
  Alcotest.(check int) "two keys known" 2 (Rcache.known c);
  Alcotest.(check int) "nothing quarantined" 0 (Rcache.quarantined c);
  Rcache.close c

let test_rcache_legacy_quarantined () =
  (* v1/v2 entries carry no IR digest, so nothing can be carried into a
     v3 cache: every legacy data line is quarantined and the log is
     rewritten as an empty v3 log that works normally afterwards *)
  let check_legacy name header lines =
    with_tmp_dir name @@ fun dir ->
    write_file (log_path dir) (header ^ "\n" ^ lines);
    let c = Rcache.open_dir dir in
    Alcotest.(check int) "every legacy line quarantined" 3
      (Rcache.quarantined c);
    Alcotest.(check int) "nothing replayed" 0 (Rcache.known c);
    Rcache.add c "d" m2;
    Rcache.close c;
    (* the file is now v3 end to end and clean on reopen *)
    let content = read_file (log_path dir) in
    Alcotest.(check bool) "rewritten header" true
      (String.starts_with ~prefix:"mira-rescache 3\n" content);
    let c2 = Rcache.open_dir dir in
    Alcotest.(check int) "clean after rewrite" 0 (Rcache.quarantined c2);
    Alcotest.(check int) "only the fresh entry" 1 (Rcache.known c2);
    Alcotest.(check (option entry)) "post-rewrite append" (Some m2)
      (Rcache.find c2 "d");
    Rcache.close c2
  in
  check_legacy "rc-v1" "mira-rescache 1" "ok|a|100|7|1,2\nfail|b\nok|c|1";
  check_legacy "rc-v2" "mira-rescache 2"
    (Rcache.seal_line "ok|a|100|7|1,2" ^ "\n"
    ^ Rcache.seal_line "fail|b" ^ "\n"
    ^ Rcache.seal_line "ok|c|1" ^ "\n")

let test_rcache_compact () =
  with_tmp_dir "rc-compact" @@ fun dir ->
  let c = Rcache.open_dir dir in
  Rcache.add c "k" m1;
  Rcache.add c "k" m2;
  Rcache.add c "k" m1;
  Rcache.add c "j" m2;
  Rcache.compact c;
  (* collapsed to one line per key, and still appendable *)
  let lines =
    String.split_on_char '\n' (read_file (log_path dir))
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "header + one line per key" 3 (List.length lines);
  Rcache.add c "post" m1;
  Rcache.close c;
  let c2 = Rcache.open_dir dir in
  Alcotest.(check (option entry)) "latest value survived compaction"
    (Some m1) (Rcache.find c2 "k");
  Alcotest.(check (option entry)) "append after compaction persisted"
    (Some m1) (Rcache.find c2 "post");
  Alcotest.(check int) "clean" 0 (Rcache.quarantined c2);
  Rcache.close c2

let test_rcache_compact_crash_atomic () =
  with_tmp_dir "rc-atomic" @@ fun dir ->
  let c = Rcache.open_dir dir in
  Rcache.add c "k1" m1;
  Rcache.add c "k2" m2;
  (match
     Faults.with_plan (Faults.parse_exn "compact-crash@0") (fun () ->
         Rcache.compact c)
   with
   | () -> Alcotest.fail "injected compaction crash did not fire"
   | exception Faults.Injected _ -> ());
  (* the original log is intact and the handle still works *)
  Rcache.add c "k3" m1;
  Rcache.close c;
  let c2 = Rcache.open_dir dir in
  Alcotest.(check int) "nothing lost" 3 (Rcache.known c2);
  Alcotest.(check int) "nothing quarantined" 0 (Rcache.quarantined c2);
  Alcotest.(check (option entry)) "pre-crash entry" (Some m1)
    (Rcache.find c2 "k1");
  Rcache.close c2

let test_rcache_write_error_absorbed () =
  with_tmp_dir "rc-wfail" @@ fun dir ->
  let c = Rcache.open_dir dir in
  Faults.with_plan (Faults.parse_exn "fail-append@1") (fun () ->
      Rcache.add c "k1" m1;
      Rcache.add c "k2" m2;  (* this append dies on the way to disk *)
      Rcache.add c "k3" m1);
  Alcotest.(check int) "write error counted" 1 (Rcache.write_errors c);
  Alcotest.(check (option entry)) "entry still served from memory"
    (Some m2) (Rcache.find c "k2");
  Rcache.close c;
  let c2 = Rcache.open_dir dir in
  Alcotest.(check (option entry)) "k1 persisted" (Some m1)
    (Rcache.find c2 "k1");
  Alcotest.(check (option entry)) "k3 persisted" (Some m1)
    (Rcache.find c2 "k3");
  Alcotest.(check (option entry)) "k2 lost with the failed write" None
    (Rcache.find c2 "k2");
  Rcache.close c2

let test_rcache_lock_live_owner () =
  with_tmp_dir "rc-lock" @@ fun dir ->
  (* pid 1 is always alive (or at least unsignalable): a lock held by a
     live process must refuse the open *)
  write_file (lock_path dir) "1";
  match Rcache.open_dir dir with
  | exception Rcache.Cache_error _ -> ()
  | c ->
    Rcache.close c;
    Alcotest.fail "open under a live lock must raise Cache_error"

let test_rcache_lock_stale_broken () =
  with_tmp_dir "rc-stale" @@ fun dir ->
  (* a lock left by a dead pid is broken silently *)
  write_file (lock_path dir) "999999999";
  let c = Rcache.open_dir dir in
  Alcotest.(check int) "stale lock broken" 1 (Rcache.stale_locks_broken c);
  Rcache.add c "k" m1;
  Rcache.close c;
  Alcotest.(check bool) "lock released on close" false
    (Sys.file_exists (lock_path dir));
  (* the injected variant: the fault plants a dead-owner lock *)
  let c2 =
    Faults.with_plan (Faults.parse_exn "stale-lock@0") (fun () ->
        Rcache.open_dir dir)
  in
  Alcotest.(check int) "injected stale lock broken" 1
    (Rcache.stale_locks_broken c2);
  Rcache.close c2

let test_rcache_injected_torn_append_roundtrip () =
  (* end to end: tear the 2nd append in-session, reopen, quarantine,
     heal — the other entries survive *)
  with_tmp_dir "rc-tornrt" @@ fun dir ->
  let c = Rcache.open_dir dir in
  Faults.with_plan (Faults.parse_exn "torn-append@1") (fun () ->
      Rcache.add c "k1" m1;
      Rcache.add c "k2" m2;  (* torn: half the line, no newline *)
      Rcache.add c "k3" m1);
  Rcache.close c;
  let c2 = Rcache.open_dir dir in
  (* the torn k2 line glued onto k3's, costing both: corruption is
     contained to the damaged region, never spread *)
  Alcotest.(check int) "glued line quarantined" 1 (Rcache.quarantined c2);
  Alcotest.(check (option entry)) "k1 survives" (Some m1)
    (Rcache.find c2 "k1");
  Rcache.close c2;
  let c3 = Rcache.open_dir dir in
  Alcotest.(check int) "healed on second open" 0 (Rcache.quarantined c3);
  Rcache.close c3

(* ------------------------------------------------------------------ *)
(* Journal: checkpoint / resume *)

(* a deterministic stand-in for "evaluate sequences lo..hi-1" *)
let fake_costs lo hi =
  Array.init (hi - lo) (fun k ->
      let i = lo + k in
      if i mod 7 = 3 then infinity else float_of_int (i * i mod 97))

let counting_eval calls lo hi =
  incr calls;
  fake_costs lo hi

let check_float_array label a b =
  Alcotest.(check int) (label ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (x = b.(i) || (Float.is_nan x && Float.is_nan b.(i))) then
        Alcotest.failf "%s: cost %d differs (%h vs %h)" label i x b.(i))
    a

let test_journal_resume_skips_done_chunks () =
  with_tmp_dir "journal" @@ fun dir ->
  let path = Filename.concat dir "sweep.log" in
  let calls = ref 0 in
  let out1 =
    Journal.run ~path ~key:"k" ~chunk_size:4 ~n:14 (counting_eval calls)
  in
  Alcotest.(check int) "cold run evaluates every chunk" 4 !calls;
  check_float_array "cold run" (fake_costs 0 14) out1;
  calls := 0;
  let out2 =
    Journal.run ~path ~key:"k" ~chunk_size:4 ~n:14 (counting_eval calls)
  in
  Alcotest.(check int) "journaled rerun evaluates nothing" 0 !calls;
  check_float_array "rerun identical" out1 out2;
  (* a different key must not resume from this journal *)
  calls := 0;
  ignore
    (Journal.run ~path ~key:"other" ~chunk_size:4 ~n:14
       (counting_eval calls));
  Alcotest.(check int) "key mismatch discards journal" 4 !calls

let run_killed_then_resumed ~plan ~resumed_evals dir =
  (* the sweep, killed mid-run by an injected fault (in a forked child,
     so the kill is real), then resumed in this process: the result
     must be byte-identical to an uninterrupted run *)
  let path = Filename.concat dir "sweep.log" in
  flush stdout;
  flush stderr;
  (match Unix.fork () with
   | 0 ->
     (try
        Faults.install (Faults.parse_exn plan);
        ignore
          (Journal.run ~path ~key:"k" ~chunk_size:4 ~n:14 (fun lo hi ->
               fake_costs lo hi))
      with _ -> ());
     Unix._exit 99 (* only reached if the injected kill did not fire *)
   | pid -> (
     match snd (Unix.waitpid [] pid) with
     | Unix.WEXITED 21 -> () (* the injected kill -9 stand-in *)
     | st ->
       Alcotest.failf "child: expected injected exit 21, got %s"
         (match st with
          | Unix.WEXITED c -> Printf.sprintf "exit %d" c
          | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
          | Unix.WSTOPPED s -> Printf.sprintf "stop %d" s)));
  let calls = ref 0 in
  let resumed =
    Journal.run ~path ~key:"k" ~chunk_size:4 ~n:14 (counting_eval calls)
  in
  Alcotest.(check int) "resume recomputes only missing chunks"
    resumed_evals !calls;
  let uninterrupted =
    Journal.run
      ~path:(Filename.concat dir "fresh.log")
      ~key:"k" ~chunk_size:4 ~n:14
      (fun lo hi -> fake_costs lo hi)
  in
  check_float_array "killed+resumed = uninterrupted" uninterrupted resumed

let test_journal_killed_and_resumed () =
  with_tmp_dir "journal-kill" @@ fun dir ->
  (* killed right after journaling chunk 1: chunks 0,1 resume for free *)
  run_killed_then_resumed ~plan:"sweep-crash@1" ~resumed_evals:2 dir

let test_journal_torn_then_killed () =
  with_tmp_dir "journal-torn" @@ fun dir ->
  (* chunk 1's record is torn mid-write and the run then killed: chunk 0
     resumes, the torn chunk is quarantined and recomputed *)
  run_killed_then_resumed ~plan:"sweep-torn@1,sweep-crash@1"
    ~resumed_evals:3 dir

(* ------------------------------------------------------------------ *)
(* Engine end to end under injection *)

let config = Mach.Config.default
let target = Workloads.program (Workloads.by_name_exn "adpcm")

let sequences n =
  let rng = Random.State.make [| 7 |] in
  Search.Space.sample_distinct rng n

let test_engine_crash_not_cached () =
  with_tmp_dir "eng-fault" @@ fun dir ->
  (* sharing off: the exact entry/simulation counts below are the
     seed's one-simulation-per-miss accounting *)
  let eng =
    Engine.create ~jobs:2 ~share:false ~cache:(Rcache.open_dir dir) config
  in
  let seqs = sequences 6 in
  let out =
    Faults.with_plan (Faults.parse_exn "worker-crash@0") (fun () ->
        Engine.eval_batch eng target seqs)
  in
  Alcotest.(check (float 0.0)) "crashed task costs infinity" infinity
    out.(0).Engine.cost;
  Alcotest.(check bool) "not served from cache" false
    out.(0).Engine.from_cache;
  Array.iteri
    (fun i (o : Engine.outcome) ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "task %d measured" i)
          true
          (o.Engine.cost < infinity))
    out;
  let h = Engine.health eng in
  Alcotest.(check int) "poisoned task reported" 1 h.Engine.poisoned;
  Alcotest.(check bool) "engine reports degraded" false (Engine.healthy eng);
  (* a crash is not a property of the key: it was not cached, and a
     clean re-run measures it for real *)
  Alcotest.(check int) "crashed entry not cached" 5
    (Rcache.known (Engine.cache eng));
  let out2 = Engine.eval_batch eng target seqs in
  Alcotest.(check bool) "re-run measures the crashed task" true
    (out2.(0).Engine.cost < infinity);
  Alcotest.(check int) "exactly one extra simulation" 7
    (Engine.stats eng).Engine.sims;
  Engine.Rcache.close (Engine.cache eng)

let test_engine_crash_not_cached_shared () =
  (* same crash under the prefix-sharing engine: a crashed simulation
     job must poison every miss that depended on it (none cached, none
     dedup-filled from it), and a clean re-run measures them for real *)
  with_tmp_dir "eng-fault-share" @@ fun dir ->
  let eng =
    Engine.create ~jobs:2 ~share:true ~cache:(Rcache.open_dir dir) config
  in
  let seqs = sequences 6 in
  let out =
    Faults.with_plan (Faults.parse_exn "worker-crash@0") (fun () ->
        Engine.eval_batch eng target seqs)
  in
  Alcotest.(check (float 0.0)) "crashed task costs infinity" infinity
    out.(0).Engine.cost;
  Alcotest.(check bool) "not served from cache" false
    out.(0).Engine.from_cache;
  Alcotest.(check int) "poisoned task reported" 1 (Engine.health eng).Engine.poisoned;
  (* every outcome of the clean re-run is measured, including the
     crashed one, and matches the no-share engine *)
  let out2 = Engine.eval_batch eng target seqs in
  Alcotest.(check bool) "re-run measures the crashed task" true
    (out2.(0).Engine.cost < infinity);
  let ref_eng = Engine.create ~share:false config in
  let ref_out = Engine.eval_batch ref_eng target seqs in
  Array.iteri
    (fun i (r : Engine.outcome) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "re-run outcome %d matches no-share" i)
        r.Engine.cost out2.(i).Engine.cost)
    ref_out;
  Engine.Rcache.close (Engine.cache eng)

let () =
  Random.self_init ();
  Alcotest.run "faults"
    [
      ( "faults",
        [
          Alcotest.test_case "spec parsing" `Quick test_faults_parse;
          Alcotest.test_case "occurrence semantics" `Quick
            test_faults_occurrences;
        ] );
      ( "pool",
        [
          Alcotest.test_case "all four outcomes, one run" `Quick
            test_pool_all_outcomes;
          Alcotest.test_case "injected runs deterministic" `Quick
            test_pool_injection_deterministic;
          Alcotest.test_case "no workers -> serial fallback" `Quick
            test_pool_no_workers_serial_fallback;
          Alcotest.test_case "respawn exhaustion -> serial fallback" `Quick
            test_pool_respawn_exhaustion_serial_fallback;
        ] );
      ( "rcache",
        [
          Alcotest.test_case "entry_of_line validation" `Quick
            test_entry_of_line_validation;
          Alcotest.test_case "torn line quarantined + healed" `Quick
            test_rcache_torn_line_quarantined_and_healed;
          Alcotest.test_case "bit flip quarantined" `Quick
            test_rcache_bitflip_quarantined;
          Alcotest.test_case "semantic rot quarantined" `Quick
            test_rcache_semantic_invalid_quarantined;
          Alcotest.test_case "truncated header" `Quick
            test_rcache_truncated_header;
          Alcotest.test_case "alien file refused" `Quick
            test_rcache_alien_file_refused;
          Alcotest.test_case "duplicate key last wins" `Quick
            test_rcache_duplicate_key_last_wins;
          Alcotest.test_case "legacy v1/v2 logs quarantined" `Quick
            test_rcache_legacy_quarantined;
          Alcotest.test_case "compaction" `Quick test_rcache_compact;
          Alcotest.test_case "compaction crash is atomic" `Quick
            test_rcache_compact_crash_atomic;
          Alcotest.test_case "write errors absorbed" `Quick
            test_rcache_write_error_absorbed;
          Alcotest.test_case "live lock refused" `Quick
            test_rcache_lock_live_owner;
          Alcotest.test_case "stale lock broken" `Quick
            test_rcache_lock_stale_broken;
          Alcotest.test_case "injected torn append round-trip" `Quick
            test_rcache_injected_torn_append_roundtrip;
        ] );
      ( "journal",
        [
          Alcotest.test_case "resume skips done chunks" `Quick
            test_journal_resume_skips_done_chunks;
          Alcotest.test_case "killed then resumed = uninterrupted" `Quick
            test_journal_killed_and_resumed;
          Alcotest.test_case "torn record then killed" `Quick
            test_journal_torn_then_killed;
        ] );
      ( "engine",
        [
          Alcotest.test_case "worker crash: infinity, uncached, reported"
            `Quick test_engine_crash_not_cached;
          Alcotest.test_case "worker crash under sharing: poisoned, uncached"
            `Quick test_engine_crash_not_cached_shared;
        ] );
    ]
