(* Tests for the optimization passes: per-pass unit tests for the intended
   effect, and differential tests checking that every pass (and random
   sequences of passes) preserves observable behaviour on a corpus of
   programs, with the unoptimized interpreter as oracle. *)

module Ir = Mira.Ir

let compile src = Mira.Lower.compile_source_exn src

let dyn_count ?(fuel = 10_000_000) p =
  (Mira.Interp.run ~fuel p).Mira.Interp.steps

let size = Ir.program_size

(* ------------------------------------------------------------------ *)
(* corpus of programs used for differential testing *)

let corpus : (string * string) list =
  [
    ( "sumloop",
      {|fn main() -> int {
          var s: int = 0;
          for i = 0 to 100 { s = s + i * 2; }
          print(s);
          return s % 1000;
        }|} );
    ( "nested",
      {|fn main() -> int {
          var s: int = 0;
          for i = 0 to 20 {
            for j = 0 to 20 { s = s + i * j + 3 * i; }
          }
          return s % 10007;
        }|} );
    ( "arrays",
      {|fn main() -> int {
          var a: int[64];
          var b: int[64];
          for i = 0 to 64 { a[i] = i * 3; }
          for i = 0 to 64 { b[i] = a[i] + a[i]; }
          var s: int = 0;
          for i = 0 to 64 { s = s + b[i]; }
          print(s);
          return s % 997;
        }|} );
    ( "calls",
      {|fn sq(x: int) -> int { return x * x; }
        fn cube(x: int) -> int { return sq(x) * x; }
        fn main() -> int {
          var s: int = 0;
          for i = 0 to 30 { s = s + cube(i) - sq(i); }
          return s % 100003;
        }|} );
    ( "branches",
      {|fn main() -> int {
          var s: int = 0;
          for i = 0 to 200 {
            if (i % 3 == 0) { s = s + i; }
            else { if (i % 5 == 0) { s = s - i; } else { s = s + 1; } }
          }
          print(s);
          return s;
        }|} );
    ( "floats",
      {|fn main() -> int {
          var acc: float = 0.0;
          for i = 0 to 50 {
            var x: float = float(i) * 0.5;
            acc = acc + x * x - x / 2.0;
          }
          print(acc);
          return int(acc);
        }|} );
    ( "recursion",
      {|fn fib(n: int) -> int {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        fn main() -> int { return fib(12); }|} );
    ( "globals",
      {|global lut: int[8] = {1, 2, 4, 8, 16, 32, 64, 128};
        fn main() -> int {
          var s: int = 0;
          for i = 0 to 8 { s = s + lut[i]; }
          for i = 0 to 8 { lut[i] = lut[i] / 2; }
          for i = 0 to 8 { s = s + lut[i]; }
          return s;
        }|} );
    ( "whileloop",
      {|fn main() -> int {
          var n: int = 7919;
          var steps: int = 0;
          while (n != 1) {
            if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
            steps = steps + 1;
          }
          return steps;
        }|} );
    ( "early_return",
      {|fn find(a: int[], v: int) -> int {
          for i = 0 to len(a) {
            if (a[i] == v) { return i; }
          }
          return -1;
        }
        fn main() -> int {
          var a: int[32];
          for i = 0 to 32 { a[i] = i * 7 % 31; }
          return find(a, 5) + 100 * find(a, 999);
        }|} );
    ( "shortcirc",
      {|fn main() -> int {
          var a: int[4];
          a[0] = 5;
          var c: int = 0;
          for i = 0 to 100 {
            if (i < 4 && a[i] > 2) { c = c + 1; }
            if (i >= 4 || a[i] == 0) { c = c + 2; }
          }
          return c;
        }|} );
    ( "trapping",
      {|fn main() -> int {
          var d: int = 3;
          var s: int = 0;
          for i = 0 to 10 { s = s + 100 / (d - i); }
          return s;
        }|} );
  ]

let programs = List.map (fun (n, src) -> (n, compile src)) corpus

(* ------------------------------------------------------------------ *)
(* differential check helpers *)

let check_preserves name (seq : Passes.Pass.t list) p =
  let before = Mira.Interp.observe p in
  let p' = Passes.Pass.apply_sequence seq p in
  let errs = Ir.check_program p' in
  if errs <> [] then
    Alcotest.failf "%s: %s: ill-formed after passes: %s" name
      (Passes.Pass.sequence_to_string seq)
      (String.concat "; " errs);
  let after = Mira.Interp.observe p' in
  if not (Mira.Interp.equal_observation before after) then
    Alcotest.failf "%s: %s: behaviour changed: %a vs %a" name
      (Passes.Pass.sequence_to_string seq)
      Mira.Interp.pp_observation before Mira.Interp.pp_observation after


(* every single pass preserves behaviour on the whole corpus *)
let test_single_pass_preserves pass () =
  List.iter (fun (name, p) -> check_preserves name [ pass ] p) programs

(* the fixed pipelines preserve behaviour *)
let test_pipeline_preserves seq () =
  List.iter (fun (name, p) -> check_preserves name seq p) programs

(* ------------------------------------------------------------------ *)
(* per-pass unit tests: each pass has its intended effect *)

let test_const_fold_folds () =
  let p = compile "fn main() -> int { return (2 + 3) * 4; }" in
  (* folding exposes constants one layer at a time; interleave with
     propagation to reach the fixpoint (itself a phase-ordering fact) *)
  let p' =
    Passes.Pass.apply_sequence
      [ Passes.Pass.Const_fold; Passes.Pass.Const_prop; Passes.Pass.Const_fold;
        Passes.Pass.Const_prop; Passes.Pass.Const_fold ]
      p
  in
  (* after folding, main contains no Bin instructions *)
  let f = Ir.find_func p' "main" in
  let has_bin =
    Ir.LMap.exists
      (fun _ (b : Ir.block) ->
        List.exists (function Ir.Bin _ -> true | _ -> false) b.Ir.instrs)
      f.Ir.blocks
  in
  Alcotest.(check bool) "no remaining arithmetic" false has_bin

let test_const_fold_keeps_trap () =
  let src = "fn main() -> int { var z: int = 0; return 5 / (z * 1); }" in
  let p = compile src in
  let p' =
    Passes.Pass.apply_sequence
      [ Passes.Pass.Peephole; Passes.Pass.Const_prop; Passes.Pass.Const_fold ]
      p
  in
  (match Mira.Interp.observe p' with
   | Mira.Interp.Trapped _ -> ()
   | o ->
     Alcotest.failf "expected trap preserved, got %a" Mira.Interp.pp_observation
       o)

let test_const_fold_branch () =
  let p =
    compile
      {|fn main() -> int {
          if (2 < 3) { return 1; }
          return 0;
        }|}
  in
  let p' =
    Passes.Pass.apply_sequence
      [ Passes.Pass.Const_fold; Passes.Pass.Const_prop; Passes.Pass.Const_fold;
        Passes.Pass.Simplify_cfg ]
      p
  in
  (* branch folded away: no Br terminators remain *)
  let f = Ir.find_func p' "main" in
  let has_br =
    Ir.LMap.exists
      (fun _ (b : Ir.block) ->
        match b.Ir.term with Ir.Br _ -> true | _ -> false)
      f.Ir.blocks
  in
  Alcotest.(check bool) "no branches" false has_br

let test_const_prop_through_blocks () =
  let p =
    compile
      {|fn main() -> int {
          var x: int = 10;
          var y: int = 0;
          if (true) { y = x + 1; } else { y = x + 2; }
          return y + x;
        }|}
  in
  let p' =
    Passes.Pass.apply_sequence
      [ Passes.Pass.Const_prop; Passes.Pass.Const_fold; Passes.Pass.Const_prop; Passes.Pass.Const_fold ]
      p
  in
  (* x = 10 must have reached the uses: some Mov/instr now carries Cint 11 *)
  let f = Ir.find_func p' "main" in
  let mentions_11 =
    Ir.LMap.exists
      (fun _ (b : Ir.block) ->
        List.exists
          (fun i -> List.exists (fun o -> o = Ir.Cint 11) (Ir.ops_of i))
          b.Ir.instrs)
      f.Ir.blocks
  in
  Alcotest.(check bool) "constant reached use" true mentions_11

let test_copy_prop () =
  let p =
    compile
      {|fn main() -> int {
          var a: int = 5;
          var b: int = a;
          var c: int = b;
          return c + b + a;
        }|}
  in
  let before = size p in
  let p' =
    Passes.Pass.apply_sequence [ Passes.Pass.Copy_prop; Passes.Pass.Dce ] p
  in
  Alcotest.(check bool) "copies eliminated" true (size p' < before);
  check_preserves "copyprop-unit" [ Passes.Pass.Copy_prop; Passes.Pass.Dce ] p

let test_dce_removes_dead () =
  let p =
    compile
      {|fn main() -> int {
          var dead: int = 1 + 2 * 3;
          var dead2: int = dead * dead;
          var live: int = 7;
          return live;
        }|}
  in
  let p' = Passes.Pass.apply Passes.Pass.Dce p in
  Alcotest.(check bool) "smaller" true (size p' < size p);
  (* all dead chain removed: main is just the return after simplify *)
  let p'' = Passes.Pass.apply_sequence [ Passes.Pass.Simplify_cfg ] p' in
  let f = Ir.find_func p'' "main" in
  let ninstrs =
    Ir.LMap.fold (fun _ b acc -> acc + List.length b.Ir.instrs) f.Ir.blocks 0
  in
  Alcotest.(check bool) "only the live mov remains" true (ninstrs <= 1)

let test_dce_keeps_possible_trap () =
  let p =
    compile
      {|fn div(a: int, b: int) -> int { return a / b; }
        fn main() -> int {
          var z: int = 0;
          var dead: int = div(1, z);
          return 42;
        }|}
  in
  (* the call's result is dead but the call may trap: must stay *)
  let p' = Passes.Pass.apply Passes.Pass.Dce p in
  match Mira.Interp.observe p' with
  | Mira.Interp.Trapped _ -> ()
  | o -> Alcotest.failf "trap removed: %a" Mira.Interp.pp_observation o

let test_cse_dedups () =
  let p =
    compile
      {|fn main() -> int {
          var a: int = 3;
          var b: int = 7;
          var x: int = a * b + a;
          var y: int = a * b + a;
          return x + y;
        }|}
  in
  let p1 = Passes.Pass.apply_sequence [ Passes.Pass.Cse; Passes.Pass.Copy_prop; Passes.Pass.Dce ] p in
  Alcotest.(check bool) "cse shrinks straightline code" true (size p1 < size p);
  check_preserves "cse-unit" [ Passes.Pass.Cse ] p

let test_cse_load_elim_blocked_by_store () =
  let p =
    compile
      {|fn main() -> int {
          var a: int[4];
          a[0] = 1;
          var x: int = a[0];
          a[0] = 2;
          var y: int = a[0];
          return x * 10 + y;
        }|}
  in
  let p' = Passes.Pass.apply Passes.Pass.Cse p in
  let r = Mira.Interp.run p' in
  Alcotest.(check string) "store kills load CSE" "12"
    (Mira.Interp.value_to_string r.Mira.Interp.ret)

let test_licm_hoists () =
  let p =
    compile
      {|fn main() -> int {
          var a: int = 6;
          var b: int = 7;
          var s: int = 0;
          for i = 0 to 1000 { s = s + a * b; }
          return s;
        }|}
  in
  let seq = [ Passes.Pass.Const_prop; Passes.Pass.Licm ] in
  let p' = Passes.Pass.apply_sequence seq p in
  let d0 = dyn_count p and d1 = dyn_count p' in
  Alcotest.(check bool)
    (Printf.sprintf "licm reduces dynamic instructions (%d -> %d)" d0 d1)
    true (d1 < d0);
  check_preserves "licm-unit" seq p

let test_licm_zero_trip_safe () =
  (* hoisted code must not change behaviour when the loop never runs *)
  let p =
    compile
      {|fn main() -> int {
          var a: int = 6;
          var b: int = 7;
          var s: int = 99;
          var n: int = 0;
          for i = 0 to n { s = a * b; }
          return s;
        }|}
  in
  check_preserves "licm-zero-trip" [ Passes.Pass.Licm ] p;
  let p' = Passes.Pass.apply Passes.Pass.Licm p in
  let r = Mira.Interp.run p' in
  Alcotest.(check string) "value unchanged" "99"
    (Mira.Interp.value_to_string r.Mira.Interp.ret)

let test_strength_mul_to_shift () =
  let p =
    compile
      {|fn main() -> int {
          var s: int = 0;
          for i = 0 to 10 { s = s + i * 8; }
          return s;
        }|}
  in
  let p' = Passes.Pass.apply Passes.Pass.Strength p in
  let f = Ir.find_func p' "main" in
  let has_mul =
    Ir.LMap.exists
      (fun _ (b : Ir.block) ->
        List.exists
          (function Ir.Bin (Ir.Mul, _, _, _) -> true | _ -> false)
          b.Ir.instrs)
      f.Ir.blocks
  in
  Alcotest.(check bool) "mul replaced" false has_mul;
  check_preserves "strength-unit" [ Passes.Pass.Strength ] p

let test_strength_negative_operands () =
  (* x * 2^k via shift must be exact for negative x too *)
  let p =
    compile
      {|fn main() -> int {
          var s: int = 0;
          for i = -20 to 20 { s = s + i * 16 + i * 3 + i * 5 + i * 9; }
          print(s);
          return s;
        }|}
  in
  check_preserves "strength-negative" [ Passes.Pass.Strength ] p

let unroll_test_src =
  {|fn main() -> int {
      var s: int = 0;
      for i = 0 to 103 { s = s + i; }
      return s;
    }|}

let count_dyn_branches p =
  let n = ref 0 in
  let hooks =
    { Mira.Interp.no_hooks with Mira.Interp.on_branch = (fun _ _ -> incr n) }
  in
  ignore (Mira.Interp.run ~hooks p);
  !n

let test_unroll_semantics_and_benefit () =
  let p = compile unroll_test_src in
  (* unroll needs const-prop to expose the constant step *)
  let seq = [ Passes.Pass.Const_prop; Passes.Pass.Unroll4 ] in
  check_preserves "unroll4" seq p;
  let p' = Passes.Pass.apply_sequence seq p in
  let b0 = count_dyn_branches p and b1 = count_dyn_branches p' in
  Alcotest.(check bool)
    (Printf.sprintf "unroll reduces dynamic branches (%d -> %d)" b0 b1)
    true (b1 < b0)

let test_unroll_remainder () =
  (* trip count 103 not divisible by 4 or 8: remainder loop must run *)
  List.iter
    (fun pass ->
      let p = compile unroll_test_src in
      let seq = [ Passes.Pass.Const_prop; pass ] in
      let p' = Passes.Pass.apply_sequence seq p in
      let r = Mira.Interp.run p' in
      Alcotest.(check string) "sum 0..102" "5253"
        (Mira.Interp.value_to_string r.Mira.Interp.ret))
    [ Passes.Pass.Unroll2; Passes.Pass.Unroll4; Passes.Pass.Unroll8 ]

let test_unroll_without_cprop_is_noop () =
  (* the documented phase interaction: without constant propagation the
     step register hides the counted-loop shape *)
  let p = compile unroll_test_src in
  let p' = Passes.Pass.apply Passes.Pass.Unroll4 p in
  Alcotest.(check int) "same size" (size p) (size p')

let test_unroll_early_exit () =
  let p =
    compile
      {|fn main() -> int {
          var a: int[100];
          for i = 0 to 100 { a[i] = i; }
          var found: int = -1;
          for i = 0 to 100 {
            if (a[i] == 37) { found = i; }
          }
          return found;
        }|}
  in
  check_preserves "unroll-exits" [ Passes.Pass.Const_prop; Passes.Pass.Unroll8 ] p

let test_inline_removes_call () =
  let p =
    compile
      {|fn sq(x: int) -> int { return x * x; }
        fn main() -> int {
          var s: int = 0;
          for i = 0 to 10 { s = s + sq(i); }
          return s;
        }|}
  in
  let p' = Passes.Pass.apply Passes.Pass.Inline p in
  let f = Ir.find_func p' "main" in
  let has_call =
    Ir.LMap.exists
      (fun _ (b : Ir.block) ->
        List.exists (function Ir.Call _ -> true | _ -> false) b.Ir.instrs)
      f.Ir.blocks
  in
  Alcotest.(check bool) "call inlined" false has_call;
  check_preserves "inline-unit" [ Passes.Pass.Inline ] p

let test_inline_skips_recursive () =
  let p =
    compile
      {|fn f(n: int) -> int { if (n < 1) { return 0; } return n + f(n - 1); }
        fn main() -> int { return f(10); }|}
  in
  let p' = Passes.Pass.apply Passes.Pass.Inline p in
  let r = Mira.Interp.run p' in
  Alcotest.(check string) "still correct" "55"
    (Mira.Interp.value_to_string r.Mira.Interp.ret)

let test_inline_skips_local_arrays () =
  let p =
    compile
      {|fn zsum() -> int {
          var a: int[4];
          var s: int = a[0] + a[1];
          a[0] = 9;
          return s;
        }
        fn main() -> int {
          var t: int = 0;
          for i = 0 to 5 { t = t + zsum(); }
          return t;
        }|}
  in
  check_preserves "inline-local-arrays" [ Passes.Pass.Inline ] p;
  let p' = Passes.Pass.apply Passes.Pass.Inline p in
  let r = Mira.Interp.run p' in
  Alcotest.(check string) "zero-init per activation kept" "0"
    (Mira.Interp.value_to_string r.Mira.Interp.ret)

let test_simplify_merges () =
  let p =
    compile
      {|fn main() -> int {
          var s: int = 0;
          if (true) { s = 1; } else { s = 2; }
          return s;
        }|}
  in
  let p' =
    Passes.Pass.apply_sequence [ Passes.Pass.Const_fold; Passes.Pass.Simplify_cfg ] p
  in
  let f = Ir.find_func p' "main" in
  Alcotest.(check int) "merged to a single block" 1 (Ir.block_count f)

let test_peephole_identities () =
  let p =
    compile
      {|fn main() -> int {
          var x: int = 9;
          var a: int = x + 0;
          var b: int = a * 1;
          var c: int = b - 0;
          var d: int = c | 0;
          return d;
        }|}
  in
  let p' =
    Passes.Pass.apply_sequence [ Passes.Pass.Peephole; Passes.Pass.Copy_prop; Passes.Pass.Dce ] p
  in
  Alcotest.(check bool) "identities removed" true (size p' < size p);
  check_preserves "peephole-unit" [ Passes.Pass.Peephole ] p

(* ------------------------------------------------------------------ *)

let test_pack_narrows_eligible () =
  let p =
    compile
      {|global a: int[1024];
        fn main() -> int {
          var s: int = 0;
          for i = 0 to 1024 { a[i] = (i * 37) & 4095; }
          for i = 0 to 1024 { s = s + a[i]; }
          return s % 65536;
        }|}
  in
  Alcotest.(check (list string)) "a narrowed" [ "a" ]
    (Passes.Pack.narrowable_globals p);
  check_preserves "pack-unit" [ Passes.Pass.Pack ] p;
  (* packing halves the footprint, so cold misses drop *)
  let c0 = (Mach.Sim.run p).Mach.Sim.cycles in
  let c1 =
    (Mach.Sim.run (Passes.Pass.apply Passes.Pass.Pack p)).Mach.Sim.cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "packing reduces cycles (%d -> %d)" c0 c1)
    true (c1 < c0)

let test_pack_rejects_unmasked_store () =
  let p =
    compile
      {|global a: int[8];
        fn main() -> int {
          a[0] = 0 - 5;   // negative: must not be narrowed
          return a[0];
        }|}
  in
  Alcotest.(check (list string)) "nothing narrowed" []
    (Passes.Pack.narrowable_globals p);
  check_preserves "pack-negative" [ Passes.Pass.Pack ] p

let test_pack_rejects_escaping_array () =
  let p =
    compile
      {|global a: int[8];
        fn poke(x: int[]) { x[0] = 0 - 1; }
        fn main() -> int {
          a[1] = 3 & 7;
          poke(a);
          return a[0] + a[1];
        }|}
  in
  Alcotest.(check (list string)) "escaping array not narrowed" []
    (Passes.Pack.narrowable_globals p);
  check_preserves "pack-escape" [ Passes.Pass.Pack ] p

let test_pack_rejects_bad_init () =
  let p =
    compile
      {|global a: int[2] = {-1, 3};
        fn main() -> int { return a[0]; }|}
  in
  Alcotest.(check (list string)) "negative init not narrowed" []
    (Passes.Pack.narrowable_globals p)

let test_pack_chained_loads () =
  (* values loaded from a packed array and shifted stay provably narrow *)
  let p =
    compile
      {|global a: int[64];
        global b: int[64];
        fn main() -> int {
          for i = 0 to 64 { a[i] = (i * 11) & 1023; }
          for i = 0 to 64 { b[i] = a[i] >> 1; }
          var s: int = 0;
          for i = 0 to 64 { s = s + b[i]; }
          return s;
        }|}
  in
  let narrowed = List.sort compare (Passes.Pack.narrowable_globals p) in
  Alcotest.(check (list string)) "both narrowed" [ "a"; "b" ] narrowed;
  check_preserves "pack-chain" [ Passes.Pass.Pack ] p

(* ------------------------------------------------------------------ *)
(* pipelines actually optimize *)

(* weighted dynamic cost: an instruction-count proxy for cycles, so that
   strength reduction's mul -> shl+add trade (more instructions, cheaper
   ones) is measured the way the machine will measure it *)
let dyn_cost p =
  let cost = ref 0 in
  let weight (i : Ir.instr) =
    match i with
    | Ir.Bin ((Ir.Mul | Ir.Div | Ir.Rem), _, _, _) -> 5
    | Ir.Fbin _ | Ir.Fcmp _ -> 4
    | Ir.Load _ | Ir.Store _ -> 3
    | _ -> 1
  in
  let hooks =
    { Mira.Interp.no_hooks with
      Mira.Interp.on_instr = (fun i -> cost := !cost + weight i)
    }
  in
  (match Mira.Interp.run ~hooks p with
   | _ -> ()
   | exception Mira.Interp.Trap _ -> ());
  !cost

let test_o2_improves () =
  List.iter
    (fun (name, p) ->
      let d0 = dyn_cost p in
      let p' = Passes.Pass.apply_sequence Passes.Pass.o2 p in
      let d1 = dyn_cost p' in
      if d1 > d0 then
        Alcotest.failf "%s: O2 made it costlier (%d -> %d)" name d0 d1)
    programs

let test_ofast_improves_loops () =
  let p = List.assoc "nested" (List.map (fun (n, p) -> (n, p)) programs) in
  let p' = Passes.Pass.apply_sequence Passes.Pass.ofast p in
  let d0 = dyn_count p and d1 = dyn_count p' in
  Alcotest.(check bool)
    (Printf.sprintf "Ofast reduces dynamic instrs (%d -> %d)" d0 d1)
    true
    (float_of_int d1 < 0.8 *. float_of_int d0)

(* ------------------------------------------------------------------ *)
(* random-sequence differential property *)

let gen_sequence : Passes.Pass.t list QCheck.Gen.t =
 fun st ->
  let len = QCheck.Gen.int_range 1 6 st in
  let rec pick acc n unroll_used =
    if n = 0 then List.rev acc
    else
      let p = List.nth Passes.Pass.all
          (QCheck.Gen.int_range 0 (Passes.Pass.count - 1) st)
      in
      if Passes.Pass.is_unroll p && unroll_used then pick acc n true
      else pick (p :: acc) (n - 1) (unroll_used || Passes.Pass.is_unroll p)
  in
  pick [] len false

let prop_random_sequences =
  QCheck.Test.make ~name:"random pass sequences preserve behaviour" ~count:60
    (QCheck.make ~print:(fun s -> Passes.Pass.sequence_to_string s) gen_sequence)
    (fun seq ->
      List.iter (fun (name, p) -> check_preserves name seq p) programs;
      true)


(* ------------------------------------------------------------------ *)
(* fuzzing: random programs x random pass sequences *)

module Gen_program = Testgen.Gen_program

let fuzz_programs n =
  List.init n (fun i ->
      match Gen_program.compile (1000 + i) with
      | Ok p -> (Printf.sprintf "fuzz%d" i, p)
      | Error e ->
        Alcotest.failf "generator produced invalid program (seed %d): %s\n%s"
          (1000 + i) e
          (Gen_program.generate (1000 + i)))

let test_fuzz_programs_run () =
  (* every generated program compiles, is well-formed, and finishes *)
  List.iter
    (fun (name, p) ->
      (match Ir.check_program p with
       | [] -> ()
       | errs -> Alcotest.failf "%s: %s" name (String.concat "; " errs));
      match Mira.Interp.observe p with
      | Mira.Interp.Finished _ -> ()
      | o ->
        Alcotest.failf "%s: generated program did not finish: %a" name
          Mira.Interp.pp_observation o)
    (fuzz_programs 40)

let test_fuzz_differential () =
  let rng = Random.State.make [| 77 |] in
  List.iter
    (fun (name, p) ->
      (* a handful of random sequences per program *)
      for _ = 1 to 4 do
        let seq = Search.Space.random_seq rng () in
        check_preserves name seq p
      done;
      check_preserves name Passes.Pass.ofast p)
    (fuzz_programs 25)

(* ------------------------------------------------------------------ *)
(* properties over generated programs (seeds 2000..2199): pass pairs
   preserve behaviour; passes are idempotent on the IR digest *)

let n_property_programs = 200

let property_programs =
  lazy
    (List.init n_property_programs (fun i ->
         let seed = 2000 + i in
         match Gen_program.compile seed with
         | Ok p -> (seed, p)
         | Error e ->
           Alcotest.failf "generator produced invalid program (seed %d): %s"
             seed e))

(* does [seq] break [src]?  The shrinker's oracle: false on compile
   errors, true when the optimized program is ill-formed or observes
   differently. *)
let seq_breaks seq src =
  match Mira.Lower.compile_source src with
  | Error _ -> false
  | Ok p ->
    let p' = Passes.Pass.apply_sequence seq p in
    Ir.check_program p' <> []
    || not
         (Mira.Interp.equal_observation (Mira.Interp.observe p)
            (Mira.Interp.observe p'))

(* a failing (seed, seq) is reported as the shrunk minimal program *)
let fail_shrunk ~seed seq =
  Alcotest.failf "%s broke seed %d:\n%s"
    (Passes.Pass.sequence_to_string seq)
    seed
    (Testgen.Shrink.report ~seed ~fails:(seq_breaks seq)
       (Gen_program.generate seed))

let test_pass_pairs_preserve () =
  let rng = Random.State.make [| 424242 |] in
  let npass = Passes.Pass.count in
  List.iter
    (fun (seed, p) ->
      for _ = 1 to 4 do
        let a = Passes.Pass.of_index (Random.State.int rng npass) in
        let b = Passes.Pass.of_index (Random.State.int rng npass) in
        let seq = [ a; b ] in
        if Passes.Pass.sequence_valid seq then begin
          let before = Mira.Interp.observe p in
          let p' = Passes.Pass.apply_sequence seq p in
          if
            Ir.check_program p' <> []
            || not
                 (Mira.Interp.equal_observation before
                    (Mira.Interp.observe p'))
          then fail_shrunk ~seed seq
        end
      done)
    (Lazy.force property_programs)

(* Idempotence on the IR digest (the engine's cache identity): applying
   a pass twice prints the same IR as applying it once, both on the
   fresh program and at an arbitrary optimized state.

   Documented exception: the unroll family.  Unrolling leaves a residual
   counted loop, so a second application unrolls again — which is why
   Pass.sequence_valid forbids repeating an unroll in the first place.
   Every other pass must be a digest fixpoint. *)
let test_idempotent_on_digest () =
  let rng = Random.State.make [| 31337 |] in
  List.iter
    (fun (seed, p) ->
      let prefix = Search.Space.random_seq rng () in
      let states =
        [ ("fresh", p); ("prefixed", Passes.Pass.apply_sequence prefix p) ]
      in
      List.iter
        (fun pass ->
          if not (Passes.Pass.is_unroll pass) then
            List.iter
              (fun (state, q) ->
                let once = Passes.Pass.apply pass q in
                let twice = Passes.Pass.apply pass once in
                if Engine.ir_digest once <> Engine.ir_digest twice then
                  Alcotest.failf "seed %d: %s is not idempotent (%s state, \
                                  prefix %s)"
                    seed (Passes.Pass.name pass) state
                    (Passes.Pass.sequence_to_string prefix))
              states)
        Passes.Pass.all)
    (Lazy.force property_programs)

(* the exception above is real: there exists a state where unrolling
   twice keeps transforming (otherwise the documentation would be stale) *)
let test_unroll_exception_is_real () =
  let rng = Random.State.make [| 5 |] in
  let witnessed = ref false in
  List.iter
    (fun (_, p) ->
      if not !witnessed then begin
        let prefix = Search.Space.random_seq rng () in
        let q = Passes.Pass.apply_sequence prefix p in
        List.iter
          (fun u ->
            let once = Passes.Pass.apply u q in
            if Engine.ir_digest once
               <> Engine.ir_digest (Passes.Pass.apply u once)
            then witnessed := true)
          [ Passes.Pass.Unroll2; Passes.Pass.Unroll4; Passes.Pass.Unroll8 ]
      end)
    (Lazy.force property_programs);
  Alcotest.(check bool) "unroll twice keeps transforming somewhere" true
    !witnessed

(* ------------------------------------------------------------------ *)
(* the harness catches an injected miscompilation and shrinks it *)

(* a deliberately broken "pass": integer additions become subtractions *)
let miscompile (p : Ir.program) : Ir.program =
  Ir.map_funcs
    (fun f ->
      {
        f with
        Ir.blocks =
          Ir.LMap.map
            (fun (b : Ir.block) ->
              {
                b with
                Ir.instrs =
                  List.map
                    (function
                      | Ir.Bin (Ir.Add, d, x, y) -> Ir.Bin (Ir.Sub, d, x, y)
                      | i -> i)
                    b.Ir.instrs;
              })
            f.Ir.blocks;
      })
    p

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_injected_miscompile_caught_and_shrunk () =
  let fails src =
    match Mira.Lower.compile_source src with
    | Error _ -> false
    | Ok p ->
      not
        (Mira.Interp.equal_observation (Mira.Interp.observe p)
           (Mira.Interp.observe
              (miscompile (Passes.Pass.apply_sequence Passes.Pass.o2 p))))
  in
  let rec find i =
    if i >= 50 then
      Alcotest.fail "injected miscompilation never caught in 50 programs"
    else
      let seed = 3000 + i in
      let src = Gen_program.generate seed in
      if fails src then (seed, src) else find (i + 1)
  in
  let seed, src = find 0 in
  let minimal = Testgen.Shrink.minimize ~fails src in
  Alcotest.(check bool) "minimal program still fails" true (fails minimal);
  Alcotest.(check bool) "shrinker made it smaller" true
    (String.length minimal < String.length src);
  let r = Testgen.Shrink.report ~seed ~fails src in
  Alcotest.(check bool) "report names the seed" true
    (contains ~sub:(string_of_int seed) r);
  Alcotest.(check bool) "report embeds the minimal program" true
    (contains ~sub:minimal r)

let test_fuzz_per_function () =
  let rng = Random.State.make [| 99 |] in
  List.iter
    (fun (name, p) ->
      let fnames =
        List.map fst (Ir.SMap.bindings p.Ir.funcs)
      in
      let choices =
        List.map
          (fun f ->
            ( f,
              List.filter Passes.Pass.is_function_local
                (Search.Space.random_seq rng ()) ))
          fnames
      in
      let p' =
        Passes.Pass.apply_per_function (fun f -> List.assoc f choices) p
      in
      (match Ir.check_program p' with
       | [] -> ()
       | errs -> Alcotest.failf "%s: %s" name (String.concat "; " errs));
      if
        not
          (Mira.Interp.equal_observation (Mira.Interp.observe p)
             (Mira.Interp.observe p'))
      then Alcotest.failf "%s: per-function application changed behaviour" name)
    (fuzz_programs 15)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "single-pass-preserves",
      List.map
        (fun p ->
          t (Passes.Pass.name p) (test_single_pass_preserves p))
        Passes.Pass.all );
    ( "pipelines-preserve",
      [
        t "O1" (test_pipeline_preserves Passes.Pass.o1);
        t "O2" (test_pipeline_preserves Passes.Pass.o2);
        t "Ofast" (test_pipeline_preserves Passes.Pass.ofast);
      ] );
    ( "const_fold",
      [
        t "folds" test_const_fold_folds;
        t "keeps trap" test_const_fold_keeps_trap;
        t "folds branch" test_const_fold_branch;
      ] );
    ("const_prop", [ t "across blocks" test_const_prop_through_blocks ]);
    ("copy_prop", [ t "eliminates copies" test_copy_prop ]);
    ( "dce",
      [
        t "removes dead" test_dce_removes_dead;
        t "keeps trapping call" test_dce_keeps_possible_trap;
      ] );
    ( "cse",
      [
        t "dedups" test_cse_dedups;
        t "store blocks load cse" test_cse_load_elim_blocked_by_store;
      ] );
    ( "licm",
      [ t "hoists" test_licm_hoists; t "zero-trip safe" test_licm_zero_trip_safe ]
    );
    ( "strength",
      [
        t "mul to shift" test_strength_mul_to_shift;
        t "negative operands" test_strength_negative_operands;
      ] );
    ( "unroll",
      [
        t "semantics+benefit" test_unroll_semantics_and_benefit;
        t "remainder" test_unroll_remainder;
        t "needs cprop" test_unroll_without_cprop_is_noop;
        t "early exits" test_unroll_early_exit;
      ] );
    ( "inline",
      [
        t "removes call" test_inline_removes_call;
        t "skips recursive" test_inline_skips_recursive;
        t "skips local arrays" test_inline_skips_local_arrays;
      ] );
    ("simplify_cfg", [ t "merges blocks" test_simplify_merges ]);
    ("peephole", [ t "identities" test_peephole_identities ]);
    ( "pack",
      [
        t "narrows eligible" test_pack_narrows_eligible;
        t "rejects unmasked" test_pack_rejects_unmasked_store;
        t "rejects escaping" test_pack_rejects_escaping_array;
        t "rejects bad init" test_pack_rejects_bad_init;
        t "chained loads" test_pack_chained_loads;
      ] );
    ( "pipelines-optimize",
      [ t "O2 never slower" test_o2_improves; t "Ofast on loops" test_ofast_improves_loops ]
    );
    ( "properties",
      List.map QCheck_alcotest.to_alcotest [ prop_random_sequences ]
      @ [
          t "pass pairs preserve (200 programs)" test_pass_pairs_preserve;
          t "idempotent on IR digest (200 programs)"
            test_idempotent_on_digest;
          t "unroll exception is real" test_unroll_exception_is_real;
        ] );
    ( "fuzz",
      [
        t "generated programs run" test_fuzz_programs_run;
        Alcotest.test_case "differential" `Slow test_fuzz_differential;
        t "per-function differential" test_fuzz_per_function;
        t "injected miscompile caught+shrunk"
          test_injected_miscompile_caught_and_shrunk;
      ] );
  ]

let () = Alcotest.run "passes" suite
