(* The persistent trace store: codec round-trips (bit-exact, compact),
   cross-process persistence (add / close / reopen / find), torn-write
   quarantine and self-healing, absorb for distributed sweeps, the
   write-through tier under Tcache, and the parallel grid replay's
   bit-identity to the serial grid. *)

module Mtrace = Mach.Mtrace
module Replay = Mach.Replay
module Config = Mach.Config
module Flatsim = Mach.Flatsim
module Tstore = Engine.Tstore
module Tcache = Engine.Tcache
module Faults = Engine.Faults

let fuel = Mach.Sim.default_fuel

let tmp_dir prefix =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let compile src =
  match Mira.Lower.compile_source src with
  | Ok p -> p
  | Error e -> Alcotest.failf "test program does not compile: %s" e

let trap_program =
  {|fn main() -> int {
      var s: int = 0;
      for i = 0 to 10 { s = s + i; }
      print(s);
      return 1 / (s - s);
    }|}

(* bit-identity of two simulator results; Stdlib.compare so floats match
   by bit-pattern semantics (NaN = NaN) *)
let same (a : Flatsim.result) (b : Flatsim.result) =
  Stdlib.compare
    ( a.Flatsim.cycles, a.Flatsim.counters, a.Flatsim.ret, a.Flatsim.output,
      a.Flatsim.steps )
    ( b.Flatsim.cycles, b.Flatsim.counters, b.Flatsim.ret, b.Flatsim.output,
      b.Flatsim.steps )
  = 0

(* ------------------------------------------------------------------ *)
(* the codec *)

(* Round-trip over the whole workload suite plus a trapping and an
   exhausted trace: decode (encode tr) is bit-exact, a replay of the
   decoded trace is bit-identical to a replay of the original on every
   preset config, and the encoding stays compact (< 4 bytes per trace
   word — the acceptance bound; the observed average is under 2). *)
let test_codec_round_trip () =
  let check_one name (tr : Mtrace.t) =
    let s = Mtrace.encode tr in
    match Mtrace.decode s with
    | Error m -> Alcotest.failf "%s: decode failed: %s" name m
    | Ok tr' ->
      Alcotest.(check bool) (name ^ ": bit-exact") true (Mtrace.equal tr tr');
      (* the < 4 B/word bound is an amortized claim: fixed metadata
         (outcome, return value, signature table) dominates tiny traces,
         so hold real workload traces to it, not the 5-word programs *)
      if tr.Mtrace.n >= 1000 then
        Alcotest.(check bool)
          (Printf.sprintf "%s: compact (%d bytes / %d words)" name
             (String.length s) tr.Mtrace.n)
          true
          (String.length s < 4 * tr.Mtrace.n);
      List.iter
        (fun config ->
          let run tr () = Replay.run ~config tr in
          match (run tr (), run tr' ()) with
          | a, b ->
            Alcotest.(check bool)
              (Printf.sprintf "%s on %s: replay of decoded trace" name
                 config.Config.name)
              true (same a b)
          | exception Mira.Interp.Trap m -> (
            match run tr' () with
            | _ -> Alcotest.failf "%s: decoded trace does not trap" name
            | exception Mira.Interp.Trap m' ->
              Alcotest.(check string) (name ^ ": trap message") m m')
          | exception Mira.Interp.Out_of_fuel -> (
            match run tr' () with
            | _ -> Alcotest.failf "%s: decoded trace not exhausted" name
            | exception Mira.Interp.Out_of_fuel -> ()))
        Config.all
  in
  List.iter
    (fun (w : Workloads.t) ->
      check_one w.Workloads.name
        (Mtrace.generate ~fuel (Mira.Decode.decode (Workloads.program w))))
    Workloads.all;
  check_one "trap" (Mtrace.generate_program ~fuel (compile trap_program));
  check_one "exhausted"
    (Mtrace.generate_program ~fuel:10 (compile trap_program))

let test_codec_rejects_garbage () =
  let tr =
    Mtrace.generate_program ~fuel (compile {|fn main() -> int { return 7; }|})
  in
  let s = Mtrace.encode tr in
  Alcotest.(check bool) "empty" true (Result.is_error (Mtrace.decode ""));
  Alcotest.(check bool)
    "bad version" true
    (Result.is_error (Mtrace.decode ("\xff" ^ String.sub s 1 (String.length s - 1))));
  Alcotest.(check bool)
    "truncated" true
    (Result.is_error (Mtrace.decode (String.sub s 0 (String.length s / 2))));
  Alcotest.(check bool)
    "trailing bytes" true
    (Result.is_error (Mtrace.decode (s ^ "\x00")))

(* ------------------------------------------------------------------ *)
(* persistence across a process boundary (open / close / reopen) *)

let test_store_round_trip () =
  let dir = tmp_dir "tstore" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let p = Workloads.program (List.hd Workloads.all) in
  let tr = Mtrace.generate ~fuel (Mira.Decode.decode p) in
  let d = Engine.Pctrie.digest p in
  let ts = Tstore.open_dir dir in
  Alcotest.(check int) "fresh store is empty" 0 (Tstore.entries ts);
  Alcotest.(check bool) "miss before add" true
    (Tstore.find ts ~ir_digest:d ~fuel = None);
  Tstore.add ts ~ir_digest:d ~fuel tr;
  Tstore.add ts ~ir_digest:d ~fuel tr (* idempotent *);
  Alcotest.(check int) "one entry" 1 (Tstore.entries ts);
  Tstore.close ts;
  (* a new handle — the cross-run path: everything must come back from
     disk, bit for bit *)
  let ts = Tstore.open_dir dir in
  Fun.protect ~finally:(fun () -> Tstore.close ts) @@ fun () ->
  Alcotest.(check int) "entry survived the reopen" 1 (Tstore.entries ts);
  Alcotest.(check int) "nothing quarantined" 0 (Tstore.quarantined ts);
  Alcotest.(check bool) "fuel is part of the key" true
    (Tstore.find ts ~ir_digest:d ~fuel:(fuel - 1) = None);
  match Tstore.find ts ~ir_digest:d ~fuel with
  | None -> Alcotest.fail "stored trace not found after reopen"
  | Some tr' ->
    Alcotest.(check bool) "bit-exact after reopen" true (Mtrace.equal tr tr');
    List.iter
      (fun config ->
        Alcotest.(check bool)
          (config.Config.name ^ ": replay from the store")
          true
          (same (Replay.run ~config tr) (Replay.run ~config tr')))
      Config.all

(* ------------------------------------------------------------------ *)
(* torn writes: quarantine, never a crash, and self-healing *)

let test_torn_write_quarantine () =
  let dir = tmp_dir "tstore-torn" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let tr1 =
    Mtrace.generate_program ~fuel (compile {|fn main() -> int { return 1; }|})
  in
  let tr2 =
    Mtrace.generate_program ~fuel (compile {|fn main() -> int { return 2; }|})
  in
  let ts = Tstore.open_dir dir in
  Tstore.add ts ~ir_digest:"a" ~fuel tr1;
  (* the second append is torn mid-payload, as a crash would leave it
     (occurrences are 0-based: @0 tears the first append in the plan) *)
  Faults.with_plan (Faults.parse_exn "tstore-write@0") (fun () ->
      Tstore.add ts ~ir_digest:"b" ~fuel tr2);
  Alcotest.(check bool) "torn entry not indexed" true
    (not (Tstore.mem ts ~ir_digest:"b" ~fuel));
  Tstore.close ts;
  (* reopen: the intact entry is served, the torn one is quarantined and
     scrubbed from the log (self-heal), and a re-add sticks *)
  let ts = Tstore.open_dir dir in
  Alcotest.(check int) "torn entry quarantined" 1 (Tstore.quarantined ts);
  Alcotest.(check int) "intact entry survives" 1 (Tstore.entries ts);
  (match Tstore.find ts ~ir_digest:"a" ~fuel with
  | Some tr -> Alcotest.(check bool) "intact payload" true (Mtrace.equal tr1 tr)
  | None -> Alcotest.fail "intact entry lost to the tear");
  Tstore.add ts ~ir_digest:"b" ~fuel tr2;
  Tstore.close ts;
  (* the heal was written out: a third open sees a clean two-entry log *)
  let ts = Tstore.open_dir dir in
  Fun.protect ~finally:(fun () -> Tstore.close ts) @@ fun () ->
  Alcotest.(check int) "log healed" 0 (Tstore.quarantined ts);
  Alcotest.(check int) "both entries" 2 (Tstore.entries ts);
  match Tstore.find ts ~ir_digest:"b" ~fuel with
  | Some tr -> Alcotest.(check bool) "re-added payload" true (Mtrace.equal tr2 tr)
  | None -> Alcotest.fail "re-added entry lost"

(* ------------------------------------------------------------------ *)
(* absorb: the distributed-sweep merge *)

let test_absorb () =
  let dir = tmp_dir "tstore-main" and wdir = tmp_dir "tstore-worker" in
  Fun.protect ~finally:(fun () -> rm_rf dir; rm_rf wdir) @@ fun () ->
  let tr1 =
    Mtrace.generate_program ~fuel (compile {|fn main() -> int { return 1; }|})
  in
  let tr2 =
    Mtrace.generate_program ~fuel (compile {|fn main() -> int { return 2; }|})
  in
  let w = Tstore.open_dir wdir in
  Tstore.add w ~ir_digest:"shared" ~fuel tr1;
  Tstore.add w ~ir_digest:"fresh" ~fuel tr2;
  let ts = Tstore.open_dir dir in
  Fun.protect ~finally:(fun () -> Tstore.close ts) @@ fun () ->
  Tstore.add ts ~ir_digest:"shared" ~fuel tr1;
  Tstore.close w;
  (* a donor locked by a live foreign process must be refused, not
     merged (pid 1 is always alive); a dead owner's lock — the usual
     crashed-worker case — does not block *)
  let wlock = Filename.concat wdir "tstore.lock" in
  let oc = open_out wlock in
  output_string oc "1";
  close_out oc;
  (match Tstore.absorb ts wdir with
  | _ -> Alcotest.fail "absorbing a live store must raise"
  | exception Tstore.Store_error _ -> ());
  Sys.remove wlock;
  let st = Tstore.absorb ts wdir in
  Alcotest.(check int) "absorbed" 1 st.Tstore.absorbed;
  Alcotest.(check int) "duplicates" 1 st.Tstore.duplicates;
  Alcotest.(check int) "rejected" 0 st.Tstore.rejected;
  Alcotest.(check int) "merged size" 2 (Tstore.entries ts);
  (* a missing donor is an empty merge, not an error *)
  let st = Tstore.absorb ts (Filename.concat wdir "nope") in
  Alcotest.(check int) "missing donor absorbs nothing" 0 st.Tstore.absorbed;
  match Tstore.find ts ~ir_digest:"fresh" ~fuel with
  | Some tr -> Alcotest.(check bool) "merged payload" true (Mtrace.equal tr2 tr)
  | None -> Alcotest.fail "absorbed entry not found"

(* ------------------------------------------------------------------ *)
(* the write-through tier: Tcache in front of Tstore *)

let test_tcache_write_through () =
  let dir = tmp_dir "tstore-tier" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let p = compile {|fn main() -> int { return 41 + 1; }|} in
  let gen_calls = ref 0 in
  let gen () = incr gen_calls; Mtrace.generate_program ~fuel p in
  let ts = Tstore.open_dir dir in
  let tc = Tcache.create ~store:ts () in
  let tr = Tcache.find_or_generate tc ~ir_digest:"p" ~fuel gen in
  Alcotest.(check int) "generated once" 1 !gen_calls;
  Alcotest.(check int) "written through" 1 (Tstore.entries ts);
  ignore (Tcache.find_or_generate tc ~ir_digest:"p" ~fuel gen);
  Alcotest.(check int) "memory hit, no second generate" 1 !gen_calls;
  Tstore.close ts;
  (* a cold cache over the same store: the trace must come from disk,
     never from the generator *)
  let ts = Tstore.open_dir dir in
  Fun.protect ~finally:(fun () -> Tstore.close ts) @@ fun () ->
  let tc = Tcache.create ~store:ts () in
  let tr' =
    Tcache.find_or_generate tc ~ir_digest:"p" ~fuel (fun () ->
        Alcotest.fail "store-backed miss must not regenerate")
  in
  Alcotest.(check int) "store hit" 1 (Tstore.hits ts);
  Alcotest.(check bool) "bit-exact through the tier" true
    (Mtrace.equal tr tr')

(* ------------------------------------------------------------------ *)
(* parallel grid replay *)

let test_parallel_grid_bit_identical () =
  let configs = Array.of_list Config.all in
  List.iter
    (fun (w : Workloads.t) ->
      let p = Workloads.program w in
      let serial = Mach.Sim.run_grid ~configs p in
      let par = Engine.Grid.run_grid ~jobs:2 ~configs p in
      Array.iteri
        (fun i (a : Mach.Sim.result) ->
          let b = par.(i) in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s: parallel == serial grid"
               w.Workloads.name configs.(i).Config.name)
            true
            (Stdlib.compare
               (a.Mach.Sim.cycles, a.Mach.Sim.counters, a.Mach.Sim.ret,
                a.Mach.Sim.output, a.Mach.Sim.steps)
               (b.Mach.Sim.cycles, b.Mach.Sim.counters, b.Mach.Sim.ret,
                b.Mach.Sim.output, b.Mach.Sim.steps)
             = 0))
        serial)
    [ List.hd Workloads.all; List.nth Workloads.all 4 ]

let test_parallel_grid_trap () =
  let p = compile trap_program in
  let configs = Array.of_list Config.all in
  match Engine.Grid.run_grid ~jobs:2 ~configs p with
  | _ -> Alcotest.fail "grid of a trapping program must raise"
  | exception Mira.Interp.Trap m ->
    Alcotest.(check string) "trap message" "division by zero" m

(* a store-backed grid across a reopen: second run replays from disk *)
let test_grid_from_store () =
  let dir = tmp_dir "tstore-grid" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let w = List.hd Workloads.all in
  let p = Workloads.program w in
  let configs = Array.of_list Config.all in
  let run () =
    let ts = Tstore.open_dir dir in
    Fun.protect ~finally:(fun () -> Tstore.close ts) @@ fun () ->
    Engine.Grid.run_grid ~tcache:(Tcache.create ~store:ts ()) ~configs p
  in
  let cold = run () and warm = run () in
  let serial = Mach.Sim.run_grid ~configs p in
  Array.iteri
    (fun i (a : Mach.Sim.result) ->
      List.iter
        (fun ((b : Mach.Sim.result), leg) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s: %s grid == direct simulation"
               w.Workloads.name configs.(i).Config.name leg)
            true
            (Stdlib.compare
               (a.Mach.Sim.cycles, a.Mach.Sim.counters, a.Mach.Sim.ret,
                a.Mach.Sim.output, a.Mach.Sim.steps)
               (b.Mach.Sim.cycles, b.Mach.Sim.counters, b.Mach.Sim.ret,
                b.Mach.Sim.output, b.Mach.Sim.steps)
             = 0))
        [ (cold.(i), "cold"); (warm.(i), "warm") ])
    serial

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    ( "codec",
      [
        slow "round-trip: bit-exact, replayable, compact (suite + trap + fuel)"
          test_codec_round_trip;
        t "garbage is rejected, never crashes" test_codec_rejects_garbage;
      ] );
    ( "store",
      [
        t "add / close / reopen / find round-trip" test_store_round_trip;
        t "torn write: quarantined and self-healed" test_torn_write_quarantine;
        t "absorb merges worker stores" test_absorb;
        t "Tcache writes through and reads back" test_tcache_write_through;
      ] );
    ( "grid",
      [
        t "parallel grid == serial grid (bit-identical)"
          test_parallel_grid_bit_identical;
        t "parallel grid re-raises traps" test_parallel_grid_trap;
        t "store-backed grid across a reopen" test_grid_from_store;
      ] );
  ]

let () = Alcotest.run "tstore" suite
