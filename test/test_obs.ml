(* The observability layer:
   - histogram bucket and quantile math (log2 buckets, 2x-bounded
     interpolated quantiles);
   - span nesting, unbalanced-end handling, cross-process forwarding;
   - byte-deterministic trace JSON and metrics table under a fake clock;
   - a sweep killed mid-run (injected kill -9, real fork) leaves a
     loadable partial trace: the streaming sink's crash-safety claim. *)

module Clock = Obs.Clock
module Trace = Obs.Trace
module Metrics = Obs.Metrics

let reset_tracing () =
  Trace.disable ();
  Clock.set (fun () -> 0.0)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_bucket_math () =
  let b = Metrics.bucket_of_value in
  Alcotest.(check int) "zero underflows" 0 (b 0.0);
  Alcotest.(check int) "nan underflows" 0 (b Float.nan);
  Alcotest.(check int) "below lo underflows" 0 (b 1e-7);
  Alcotest.(check int) "lo bound is bucket 1" 1 (b 1e-6);
  Alcotest.(check int) "one doubling up" 2 (b 2e-6);
  Alcotest.(check int) "huge overflows" (Metrics.n_buckets + 1) (b 1e30);
  (* monotone over doublings, and each doubling moves at most 1 bucket *)
  let prev = ref (b 1e-6) in
  for i = 1 to 40 do
    let v = 1e-6 *. Float.pow 2.0 (float_of_int i) in
    let bi = b v in
    if bi < !prev || bi > !prev + 1 then
      Alcotest.failf "bucket not monotone at %g: %d after %d" v bi !prev;
    prev := bi
  done

let test_quantiles () =
  let h = Metrics.histogram "t.quant" in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Metrics.quantile h 0.5));
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum exact" 5050.0 (Metrics.hist_sum h);
  Alcotest.(check (float 1e-9)) "q0 is min" 1.0 (Metrics.quantile h 0.0);
  Alcotest.(check (float 1e-9)) "q1 is max" 100.0 (Metrics.quantile h 1.0);
  (* bucketed quantiles are within a factor of 2 of the truth *)
  List.iter
    (fun (q, truth) ->
      let v = Metrics.quantile h q in
      if v < truth /. 2.0 || v > truth *. 2.0 then
        Alcotest.failf "q%.2f = %g not within 2x of %g" q v truth)
    [ (0.5, 50.0); (0.9, 90.0); (0.99, 99.0) ]

let test_kinds () =
  let c = Metrics.counter "t.kinds" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter adds" 5 (Metrics.value c);
  let c' = Metrics.counter "t.kinds" in
  Metrics.incr c';
  Alcotest.(check int) "same name shares state" 6 (Metrics.value c);
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument
       "Obs.Metrics: \"t.kinds\" already registered with another kind")
    (fun () -> ignore (Metrics.histogram "t.kinds"))

let test_table_deterministic () =
  Metrics.reset ();
  Metrics.incr ~by:3 (Metrics.counter "t.det.count");
  Metrics.set (Metrics.gauge "t.det.g") 2.5;
  let h = Metrics.histogram "t.det.h" in
  Metrics.observe h 4.0;
  Metrics.observe h 4.0;
  Alcotest.(check string) "table is byte-deterministic"
    "metrics\n\
    \  t.det.count  3\n\
    \  t.det.g      2.5\n\
    \  t.det.h      n=2 sum=8 min=4 p50=4 p90=4 p99=4 max=4 ms\n"
    (Format.asprintf "%a" Metrics.pp_table ());
  Alcotest.(check string) "jsonl is byte-deterministic"
    "{\"type\":\"counter\",\"name\":\"t.det.count\",\"value\":3}\n\
     {\"type\":\"gauge\",\"name\":\"t.det.g\",\"value\":2.5}\n\
     {\"type\":\"histogram\",\"name\":\"t.det.h\",\"unit\":\"ms\",\"count\":2,\
      \"sum\":8,\"min\":4,\"max\":4,\"p50\":4,\"p90\":4,\"p99\":4,\
      \"buckets\":[[22,2]]}\n"
    (Metrics.to_jsonl ());
  Metrics.reset ();
  Alcotest.(check string) "empty table"
    "metrics (none recorded)\n"
    (Format.asprintf "%a" Metrics.pp_table ())

(* Cross-process merge: the documented contract is that merging two
   registries' JSONL exports is indistinguishable from one registry
   that observed the concatenation (gauges excepted: they keep the
   max).  Buckets are combined pointwise and count/sum/min/max exactly,
   so for histograms the equivalence is byte-for-byte. *)
let test_merge_equals_concat () =
  let populate obs =
    Metrics.reset ();
    Metrics.incr ~by:(List.length obs) (Metrics.counter "t.m.count");
    let h = Metrics.histogram "t.m.h" in
    List.iter (Metrics.observe h) obs;
    Metrics.to_jsonl ()
  in
  let a = [ 0.5; 3.0; 7.0; 42.0 ] in
  let b = [ 1.5; 90.0; 0.002; 7.0; 512.0 ] in
  let doc_a = populate a in
  let doc_b = populate b in
  let doc_all = populate (a @ b) in
  Metrics.reset ();
  Alcotest.(check string) "merge of two exports = export of concatenation"
    doc_all
    (Metrics.merge_jsonl [ doc_a; doc_b ])

let test_merge_kinds () =
  let export f =
    Metrics.reset ();
    f ();
    Metrics.to_jsonl ()
  in
  let doc_a =
    export (fun () ->
        Metrics.incr ~by:3 (Metrics.counter "t.mk.c");
        Metrics.set (Metrics.gauge "t.mk.g") 7.0;
        Metrics.incr (Metrics.counter "t.mk.only_a"))
  in
  let doc_b =
    export (fun () ->
        Metrics.incr ~by:4 (Metrics.counter "t.mk.c");
        Metrics.set (Metrics.gauge "t.mk.g") 2.0)
  in
  Metrics.reset ();
  Alcotest.(check string)
    "counters add, gauges keep max, singletons survive, sorted"
    "{\"type\":\"counter\",\"name\":\"t.mk.c\",\"value\":7}\n\
     {\"type\":\"gauge\",\"name\":\"t.mk.g\",\"value\":7}\n\
     {\"type\":\"counter\",\"name\":\"t.mk.only_a\",\"value\":1}\n"
    (Metrics.merge_jsonl [ doc_a; doc_b ]);
  (* torn / foreign lines are skipped, not fatal *)
  Alcotest.(check string) "garbage lines are skipped" doc_a
    (Metrics.merge_jsonl [ "not json\n" ^ doc_a; "{\"type\":\"count" ])

(* merged quantiles obey the same 2x bucket-ratio bound as a single
   registry over the concatenated samples *)
let test_merge_quantile_bound () =
  let export obs =
    Metrics.reset ();
    let h = Metrics.histogram "t.mq.h" in
    List.iter (Metrics.observe h) obs;
    Metrics.to_jsonl ()
  in
  let a = List.init 60 (fun i -> float_of_int (i + 1)) in
  let b = List.init 40 (fun i -> float_of_int ((i + 1) * 17)) in
  let doc_a = export a in
  let doc_b = export b in
  Metrics.reset ();
  let merged = Metrics.merge_jsonl [ doc_a; doc_b ] in
  let all = List.sort compare (a @ b) in
  let truth q =
    List.nth all
      (max 0
         (min (List.length all - 1)
            (int_of_float (Float.round (q *. float_of_int (List.length all - 1))))))
  in
  List.iter
    (fun (label, q) ->
      let v =
        match Obs.Jscan.num_field merged label with
        | Some v -> v
        | None -> Alcotest.failf "merged export lacks %s" label
      in
      let t = truth q in
      if v < t /. 2.0 || v > t *. 2.0 then
        Alcotest.failf "merged %s = %g not within 2x of %g" label v t)
    [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]

(* ------------------------------------------------------------------ *)
(* Trace *)

let phases_and_names () =
  List.map (fun e -> (e.Trace.ph, e.Trace.name)) (Trace.events ())

let test_span_nesting () =
  reset_tracing ();
  Clock.set (Clock.fake ());
  Trace.enable_memory ();
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner" (fun () -> ());
      Trace.instant "mark");
  Alcotest.(check int) "all spans closed" 0 (Trace.open_spans ());
  Alcotest.(check (list (pair bool string)))
    "B/E pairing nests"
    [ (true, "outer"); (true, "inner"); (false, "inner"); (false, "mark");
      (false, "outer") ]
    (List.map
       (fun (ph, n) -> (ph = Trace.B, n))
       (phases_and_names ()));
  (* timestamps from the fake clock are strictly increasing *)
  let ts = List.map (fun e -> e.Trace.ts) (Trace.events ()) in
  Alcotest.(check bool) "timestamps increase" true
    (List.sort compare ts = ts && List.sort_uniq compare ts = ts);
  Trace.disable ()

let test_unbalanced_end () =
  reset_tracing ();
  Trace.enable_memory ();
  Trace.end_span ();
  Alcotest.(check int) "stray end counted" 1 (Trace.unbalanced_ends ());
  Alcotest.(check int) "stray end dropped" 0 (List.length (Trace.events ()));
  Trace.begin_span "x";
  Trace.end_span ();
  Trace.end_span ();
  Alcotest.(check int) "second stray counted" 2 (Trace.unbalanced_ends ());
  Alcotest.(check int) "balanced pair kept" 2 (List.length (Trace.events ()));
  Trace.disable ()

let test_exception_closes_span () =
  reset_tracing ();
  Trace.enable_memory ();
  (try Trace.with_span "boom" (fun () -> failwith "no") with Failure _ -> ());
  Alcotest.(check int) "span closed on exception" 0 (Trace.open_spans ());
  (match List.rev (Trace.events ()) with
   | e :: _ ->
     Alcotest.(check bool) "end event carries error arg" true
       (List.mem_assoc "error" e.Trace.args)
   | [] -> Alcotest.fail "no events");
  Trace.disable ()

let test_forwarding () =
  reset_tracing ();
  Trace.enable_memory ();
  Trace.set_pid 1;
  (* what a forked worker does *)
  Trace.on_fork ~pid:42;
  Trace.with_span "task" (fun () -> ());
  let evs = Trace.drain () in
  Alcotest.(check int) "drained both events" 2 (Array.length evs);
  Array.iter
    (fun e ->
      Alcotest.(check int) "worker pid stamped" 42 e.Trace.pid)
    evs;
  Alcotest.(check int) "drain clears the ring" 0
    (List.length (Trace.events ()));
  (* what the parent does with the marshalled batch *)
  Trace.emit_events evs;
  Alcotest.(check int) "replayed in parent sink" 2
    (List.length (Trace.events ()));
  Trace.disable ()

let test_json_deterministic () =
  reset_tracing ();
  Clock.set (Clock.fake ());
  Trace.enable_memory ();
  Trace.set_pid 7;
  Trace.begin_span ~cat:"t" ~args:[ ("k", Trace.Int 1) ] "s";
  Trace.instant ~cat:"t" "mark";
  Trace.end_span ();
  Alcotest.(check string) "chrome trace json is byte-deterministic"
    ("[\n\
      {\"name\":\"s\",\"cat\":\"t\",\"ph\":\"B\",\"ts\":1000.000,\"pid\":7,\
       \"tid\":0,\"args\":{\"k\":1}},\n\
      {\"name\":\"mark\",\"cat\":\"t\",\"ph\":\"i\",\"ts\":2000.000,\"pid\":7,\
       \"tid\":0},\n\
      {\"name\":\"s\",\"cat\":\"t\",\"ph\":\"E\",\"ts\":3000.000,\"pid\":7,\
       \"tid\":0}\n\
      ]\n")
    (Trace.to_json ());
  Trace.disable ();
  Trace.set_pid 0

let test_ring_drops_oldest () =
  reset_tracing ();
  Trace.enable_memory ~capacity:16 ();
  for i = 1 to 20 do
    Trace.instant (Printf.sprintf "i%d" i)
  done;
  Alcotest.(check int) "ring keeps capacity" 16
    (List.length (Trace.events ()));
  Alcotest.(check int) "overwrites counted" 4 (Trace.dropped_events ());
  (match Trace.events () with
   | e :: _ -> Alcotest.(check string) "oldest survivor" "i5" e.Trace.name
   | [] -> Alcotest.fail "no events");
  Trace.disable ()

(* ------------------------------------------------------------------ *)
(* crash safety: the streaming sink under an injected mid-sweep kill *)

let substr_count hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub hay i n = needle then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_crash_leaves_valid_trace () =
  reset_tracing ();
  let dir = Filename.get_temp_dir_name () in
  let stamp = Printf.sprintf "%d-%d" (Unix.getpid ()) (Random.bits ()) in
  let trace_path = Filename.concat dir ("obs-crash-" ^ stamp ^ ".json") in
  let sweep_path = Filename.concat dir ("obs-crash-" ^ stamp ^ ".log") in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ trace_path; sweep_path ])
    (fun () ->
      flush stdout;
      flush stderr;
      (match Unix.fork () with
       | 0 ->
         (try
            Clock.set (Clock.fake ());
            let oc = open_out trace_path in
            Trace.enable_stream oc;
            Engine.Faults.install (Engine.Faults.parse_exn "sweep-crash@1");
            ignore
              (Engine.Journal.run ~path:sweep_path ~key:"k" ~chunk_size:4
                 ~n:14 (fun lo hi ->
                   Array.init (hi - lo) (fun i -> float_of_int (lo + i))))
          with _ -> ());
         Unix._exit 99 (* only reached if the injected kill did not fire *)
       | pid -> (
         match snd (Unix.waitpid [] pid) with
         | Unix.WEXITED 21 -> ()
         | st ->
           Alcotest.failf "child: expected injected exit 21, got %s"
             (match st with
              | Unix.WEXITED c -> Printf.sprintf "exit %d" c
              | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
              | Unix.WSTOPPED s -> Printf.sprintf "stop %d" s)));
      let ic = open_in_bin trace_path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* the kill skipped at_exit, so no "]": still a loadable trace —
         starts as an array, ends on a complete object *)
      Alcotest.(check bool) "starts as a JSON array" true
        (String.length s > 2 && s.[0] = '[');
      Alcotest.(check bool) "no closing bracket (crash, not exit)" false
        (String.contains s ']');
      let trimmed = String.trim s in
      Alcotest.(check bool) "ends on a complete object" true
        (trimmed <> "[" && trimmed.[String.length trimmed - 1] = '}');
      Alcotest.(check bool) "the sweep's spans were flushed" true
        (substr_count s "journal.chunk" >= 2);
      Alcotest.(check int) "every begun span also ended"
        (substr_count s "\"ph\":\"B\"")
        (substr_count s "\"ph\":\"E\""))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "bucket math" `Quick test_bucket_math;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "kinds" `Quick test_kinds;
          Alcotest.test_case "deterministic table" `Quick
            test_table_deterministic;
          Alcotest.test_case "merge = concatenated registry" `Quick
            test_merge_equals_concat;
          Alcotest.test_case "merge kinds" `Quick test_merge_kinds;
          Alcotest.test_case "merged quantile bound" `Quick
            test_merge_quantile_bound;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "unbalanced end" `Quick test_unbalanced_end;
          Alcotest.test_case "exception closes span" `Quick
            test_exception_closes_span;
          Alcotest.test_case "cross-process forwarding" `Quick
            test_forwarding;
          Alcotest.test_case "deterministic json" `Quick
            test_json_deterministic;
          Alcotest.test_case "ring drops oldest" `Quick
            test_ring_drops_oldest;
        ] );
      ( "crash safety",
        [
          Alcotest.test_case "mid-sweep kill leaves valid trace" `Quick
            test_crash_leaves_valid_trace;
        ] );
    ]
