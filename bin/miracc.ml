(* miracc — the intelligent-compiler command-line driver.

   Subcommands:
     compile    parse/typecheck/optimize a Mira file, print the IR
     run        compile and execute on the machine simulator
     features   print the static feature vector
     counters   print the -O0 performance-counter characterization
     train      build a knowledge base from the built-in workload suite
     predict    one-shot optimization prediction from a knowledge base
     search     iterative search for a good sequence (random/hill/genetic/focused)
     sweep-serve  coordinate a distributed sweep (serve shards to workers)
     sweep-work   join a distributed sweep as a worker
     sweep-status report a distributed run directory (manifest, journals)
     workloads  list the built-in benchmark suite
     dynamic    demo the dynamic optimizer on a phased workload *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_program path =
  match Mira.Lower.compile_source (read_file path) with
  | Ok p -> p
  | Error e ->
    Fmt.epr "%s: %s@." path e;
    exit 1

let arch_of_name name =
  match Mach.Config.by_name name with
  | Some c -> c
  | None ->
    Fmt.epr "unknown architecture %S (available: %s)@." name
      (String.concat ", " (List.map (fun c -> c.Mach.Config.name) Mach.Config.all));
    exit 1

let parse_seq ~level ~seq =
  match (level, seq) with
  | Some l, _ -> (
    match Passes.Pass.level_of_string l with
    | Some s -> s
    | None ->
      Fmt.epr "unknown optimization level %S@." l;
      exit 1)
  | None, Some s -> (
    match Passes.Pass.sequence_of_string s with
    | Ok s -> s
    | Error e ->
      Fmt.epr "bad sequence: %s@." e;
      exit 1)
  | None, None -> []

(* common args *)
let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mira")

let arch_arg =
  Arg.(value & opt string "amd-like" & info [ "arch" ] ~docv:"ARCH"
         ~doc:"Target machine model (amd-like, c6713-like, embedded).")

let level_arg =
  Arg.(value & opt (some string) None & info [ "O" ] ~docv:"LEVEL"
         ~doc:"Fixed pipeline: O0, O1, O2, Ofast.")

let seq_arg =
  Arg.(value & opt (some string) None & info [ "seq" ] ~docv:"P1,P2,..."
         ~doc:"Explicit optimization sequence (pass names, comma separated).")

let kb_arg =
  Arg.(required & opt (some string) None & info [ "kb" ] ~docv:"FILE"
         ~doc:"Knowledge-base file.")

(* --- observability ------------------------------------------------- *)

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE.json"
         ~doc:"Stream a Chrome trace_event JSON trace of this run to \
               $(docv); load it in chrome://tracing or Perfetto.  The \
               file is flushed per event, so a crashed run still leaves \
               a loadable trace.")

let metrics_arg =
  Arg.(value & opt ~vopt:(Some "") (some string) None
       & info [ "metrics" ] ~docv:"FILE.jsonl"
           ~doc:"Record metrics (counters, gauges, timing histograms).  \
                 Without $(docv) the table is printed to stdout at exit; \
                 with $(docv), one JSON object per metric is written \
                 there.")

(* Both sinks are finalized from [at_exit] so even error exits (trap,
   fuel, cache) report what happened up to that point.  Forked pool
   workers inherit these hooks; the pid guard keeps a worker from
   closing the parent's trace or printing its table. *)
let obs_setup trace metrics =
  (match metrics with
   | Some _ -> Obs.Metrics.timing := true
   | None -> ());
  (match trace with
   | None -> ()
   | Some path -> (
     match open_out path with
     | oc ->
       Obs.Trace.enable_stream oc;
       let owner = Unix.getpid () in
       at_exit (fun () ->
           if Unix.getpid () = owner then begin
             Obs.Trace.finish ();
             close_out_noerr oc
           end)
     | exception Sys_error e ->
       Fmt.epr "miracc: cannot open trace file: %s@." e;
       exit 1));
  match metrics with
  | None -> ()
  | Some dest ->
    let owner = Unix.getpid () in
    at_exit (fun () ->
        if Unix.getpid () = owner then
          if dest = "" then Fmt.pr "%a" Obs.Metrics.pp_table ()
          else
            match open_out dest with
            | oc ->
              output_string oc (Obs.Metrics.to_jsonl ());
              close_out_noerr oc
            | exception Sys_error e ->
              Fmt.epr "miracc: cannot write metrics file: %s@." e)

let obs_term = Cmdliner.Term.(const obs_setup $ trace_arg $ metrics_arg)

(* every command that executes programs takes --engine; the chosen
   engine is installed as the process-wide default so train/search
   evaluations inherit it too *)
let engine_conv =
  Arg.enum
    [ ("ref", Mach.Sim.Ref); ("flat", Mach.Sim.Flat);
      ("trace", Mach.Sim.Trace) ]

let engine_arg =
  Arg.(value & opt engine_conv Mach.Sim.Flat & info [ "engine" ] ~docv:"ENGINE"
         ~doc:"Execution engine: $(b,flat) (pre-decoded bytecode, the \
               default), $(b,ref) (the reference interpreter, kept as \
               the semantics oracle) or $(b,trace) (record the \
               config-independent event trace once, replay the machine \
               model over it — fastest when one program is priced \
               against many machine configs).  All three produce \
               bit-identical results.")

let set_engine e = Mach.Sim.default_engine := e

(* evaluation-engine args, shared by train/search *)
let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Evaluate sequences on $(docv) forked workers (1 = serial).")

let cache_dir_arg =
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR"
         ~doc:"Persist evaluation results under $(docv) (created if \
               missing); later runs reuse them.")

let tstore_arg =
  Arg.(value & opt (some string) None & info [ "tstore" ] ~docv:"DIR"
         ~doc:"Persist generated event traces under $(docv) (created if \
               missing); later runs, grid replays and distributed \
               workers reuse them instead of re-executing program \
               semantics.  Execution goes through the trace engine's \
               replay path (bit-identical to every other engine).")

let cache_stats_arg =
  Arg.(value & flag & info [ "cache-stats" ]
         ~doc:"Print the evaluation-engine statistics table at the end.")

let no_share_arg =
  Arg.(value & flag & info [ "no-share" ]
         ~doc:"Disable prefix-sharing compilation and simulation dedup \
               in the evaluation engine (every miss compiles and \
               simulates from scratch). Results are identical either \
               way; this is the differential baseline.")

let inject_arg =
  Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SPEC"
         ~doc:"Deterministic fault injection for testing: comma-separated \
               point@occurrence[=arg] directives (e.g. worker-crash@3, \
               torn-append@5). Also readable from \\$MIRA_FAULTS.")

let max_restarts_arg =
  Arg.(value & opt int Engine.Pool.default_max_respawns
       & info [ "max-worker-restarts" ] ~docv:"N"
           ~doc:"Give up respawning dead evaluation workers after $(docv) \
                 attempts per batch and degrade to serial execution.")

(* exit code 4: the cache directory cannot be used (locked, unreadable,
   not a cache); distinct from source errors (1), traps (2), fuel (3) *)
let cache_error_exit = 4

(* exit code 5: distributed-sweep orchestration failure (socket
   unusable, worker rejected, protocol breakdown) *)
let dist_error_exit = 5

(* trace-store failures share the cache exit code: same class of error
   (a store directory that cannot be used), same operator remedy *)
let open_tstore dir =
  match Engine.Tstore.open_dir dir with
  | ts -> ts
  | exception Engine.Tstore.Store_error e ->
    Fmt.epr "miracc: trace store error: %s@." e;
    exit cache_error_exit
  | exception Sys_error e ->
    Fmt.epr "miracc: trace store error: %s@." e;
    exit cache_error_exit

let with_tstore dir f =
  match dir with
  | None -> f None
  | Some dir ->
    let ts = open_tstore dir in
    Fun.protect
      ~finally:(fun () -> Engine.Tstore.close ts)
      (fun () -> f (Some ts))

let make_engine ~config ~jobs ~cache ~tstore ~inject ~max_restarts ~share =
  (match inject with
   | Some spec -> (
     match Engine.Faults.parse spec with
     | Ok plan -> Engine.Faults.install plan
     | Error e ->
       Fmt.epr "miracc: bad --inject spec: %s@." e;
       exit 1)
   | None -> (
     try Engine.Faults.install_from_env ()
     with Invalid_argument e ->
       Fmt.epr "miracc: bad MIRA_FAULTS: %s@." e;
       exit 1));
  let cache =
    Option.map
      (fun dir ->
        match Engine.Rcache.open_dir dir with
        | c -> c
        | exception Engine.Rcache.Cache_error e ->
          Fmt.epr "miracc: cache error: %s@." e;
          exit cache_error_exit
        | exception Sys_error e ->
          Fmt.epr "miracc: cache error: %s@." e;
          exit cache_error_exit)
      cache
  in
  let tstore = Option.map open_tstore tstore in
  Engine.create ~jobs ?cache ?tstore ~max_respawns:max_restarts ~share config

let finish_engine ~cache_stats eng =
  if cache_stats then Fmt.pr "%a" (Engine.pp_stats ~wall:true) eng;
  if not (Engine.healthy eng) then Fmt.epr "%a@." Engine.pp_health eng;
  Engine.Rcache.close (Engine.cache eng);
  match Engine.Tcache.store (Engine.tcache eng) with
  | Some ts -> Engine.Tstore.close ts
  | None -> ()

(* --- compile ------------------------------------------------------- *)

let compile_cmd =
  let doc = "Compile a Mira program and print its IR." in
  let run file level seq stats =
    let p = load_program file in
    let passes = parse_seq ~level ~seq in
    let p' = Passes.Pass.apply_sequence passes p in
    if stats then
      Fmt.pr "passes: %s@.size: %d -> %d instrs@."
        (Passes.Pass.sequence_to_string passes)
        (Mira.Ir.program_size p) (Mira.Ir.program_size p')
    else Fmt.pr "%s" (Mira.Ir.to_string p')
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print size stats instead of IR.")
  in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(const run $ file_arg $ level_arg $ seq_arg $ stats_arg)

(* --- run ----------------------------------------------------------- *)

let run_cmd =
  let doc = "Compile and execute on the cycle-level machine simulator." in
  let run file arch level seq show_counters engine tstore profile () =
    set_engine engine;
    if profile then Obs.Metrics.timing := true;
    let p = load_program file in
    let config = arch_of_name arch in
    let p' = Passes.Pass.apply_sequence (parse_seq ~level ~seq) p in
    (* with --tstore the run goes through the persisted-trace replay
       path (bit-identical by the engine oracle); without, the chosen
       engine as before *)
    let simulate () =
      match tstore with
      | None -> Mach.Sim.run ~config p'
      | Some dir ->
        with_tstore (Some dir) (fun ts ->
            let tcache = Engine.Tcache.create ?store:ts () in
            (Engine.Grid.run_grid ~tcache ~configs:[| config |] p').(0))
    in
    (* --profile: one line on stderr with the decode/execute wall-time
       split, read back from the instrumentation histograms the run
       fills (the ref engine never decodes, reported as such) *)
    let execute () =
      if not profile then simulate ()
      else begin
        let decode_h = Obs.Metrics.histogram "decode.translate_ms" in
        let execute_h = Obs.Metrics.histogram "sim.execute_ms" in
        let r = simulate () in
        let e = Obs.Metrics.hist_sum execute_h in
        (if Obs.Metrics.hist_count decode_h = 0 then
           Fmt.epr "profile: decode n/a (ref engine), execute %.3f ms@." e
         else
           let d = Obs.Metrics.hist_sum decode_h in
           Fmt.epr "profile: decode %.3f ms, execute %.3f ms (decode %.1f%% \
                    of total)@."
             d e
             (100. *. d /. Float.max 1e-9 (d +. e)));
        r
      end
    in
    match execute () with
    | r ->
      print_string r.Mach.Sim.output;
      Fmt.pr "return: %s@." (Mira.Interp.value_to_string r.Mach.Sim.ret);
      Fmt.pr "cycles: %d  instructions: %d  CPI: %.2f@." r.Mach.Sim.cycles
        r.Mach.Sim.steps
        (float_of_int r.Mach.Sim.cycles /. float_of_int (max 1 r.Mach.Sim.steps));
      if show_counters then Fmt.pr "%a" Mach.Counters.pp r.Mach.Sim.counters
    | exception Mira.Interp.Trap m ->
      Fmt.epr "trap: %s@." m;
      exit 2
    | exception Mira.Interp.Out_of_fuel ->
      Fmt.epr "out of fuel (program too long or diverging)@.";
      exit 3
  in
  let counters_flag =
    Arg.(value & flag & info [ "counters" ] ~doc:"Dump the raw counter bank.")
  in
  let profile_flag =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Print a one-line decode/execute wall-time split on stderr.")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ file_arg $ arch_arg $ level_arg $ seq_arg $ counters_flag
          $ engine_arg $ tstore_arg $ profile_flag $ obs_term)

(* --- features ------------------------------------------------------ *)

let features_cmd =
  let doc = "Print the static feature vector of a program." in
  let run file =
    let p = load_program file in
    List.iter (fun (n, v) -> Fmt.pr "%-22s %g@." n v) (Icc.Features.extract p)
  in
  Cmd.v (Cmd.info "features" ~doc) Term.(const run $ file_arg)

(* --- counters ------------------------------------------------------ *)

let counters_cmd =
  let doc = "Profile at -O0 and print per-instruction counter rates." in
  let run file arch configs engine jobs tstore () =
    set_engine engine;
    let p = load_program file in
    match configs with
    | None ->
      let config = arch_of_name arch in
      let r =
        match tstore with
        | None -> Mach.Sim.run ~config p
        | Some dir ->
          with_tstore (Some dir) (fun ts ->
              let tcache = Engine.Tcache.create ?store:ts () in
              (Engine.Grid.run_grid ~tcache ~configs:[| config |] p).(0))
      in
      List.iter
        (fun (n, v) -> Fmt.pr "%-10s %.6f@." n v)
        (Icc.Characterize.counter_assoc r.Mach.Sim.counters)
    | Some names ->
      (* architecture grid: one semantic execution (the trace — served
         from the trace store with --tstore), one model replay per
         config (forked across --jobs workers), one column per config *)
      let configs =
        names |> String.split_on_char ',' |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map arch_of_name |> Array.of_list
      in
      if Array.length configs = 0 then begin
        Fmt.epr "miracc: --configs needs at least one architecture@.";
        exit 1
      end;
      let rs =
        with_tstore tstore (fun ts ->
            let tcache =
              Option.map (fun ts -> Engine.Tcache.create ~store:ts ()) ts
            in
            Engine.Grid.run_grid ~jobs ?tcache ~configs p)
      in
      let assocs =
        Array.map
          (fun (r : Mach.Sim.result) ->
            Icc.Characterize.counter_assoc r.Mach.Sim.counters)
          rs
      in
      Fmt.pr "%-10s" "counter";
      Array.iter (fun c -> Fmt.pr " %12s" c.Mach.Config.name) configs;
      Fmt.pr "@.";
      List.iteri
        (fun i (n, _) ->
          Fmt.pr "%-10s" n;
          Array.iter (fun a -> Fmt.pr " %12.6f" (snd (List.nth a i))) assocs;
          Fmt.pr "@.")
        assocs.(0)
  in
  let configs_arg =
    Arg.(value & opt (some string) None & info [ "configs" ] ~docv:"A,B,..."
           ~doc:"Price the program against several machine configs in \
                 one pass (trace-once/model-many): the program is \
                 executed once, the recorded event trace is replayed \
                 per config, and the table gets one column per config.")
  in
  Cmd.v (Cmd.info "counters" ~doc)
    Term.(const run $ file_arg $ arch_arg $ configs_arg $ engine_arg
          $ jobs_arg $ tstore_arg $ obs_term)

(* --- workloads ----------------------------------------------------- *)

let workloads_cmd =
  let doc = "List the built-in benchmark suite." in
  let run () =
    List.iter
      (fun w ->
        Fmt.pr "%-10s %-10s %s@." w.Workloads.name
          (Workloads.family_name w.Workloads.family)
          w.Workloads.descr)
      Workloads.all
  in
  Cmd.v (Cmd.info "workloads" ~doc) Term.(const run $ const ())

(* --- train --------------------------------------------------------- *)

let train_cmd =
  let doc =
    "Build a knowledge base by exploring the built-in workload suite."
  in
  let run out arch per_program exclude jobs cache cache_stats inject
      max_restarts no_share engine () =
    set_engine engine;
    let config = arch_of_name arch in
    let programs =
      Workloads.all
      |> List.filter (fun w -> not (List.mem w.Workloads.name exclude))
      |> List.map (fun w -> (w.Workloads.name, Workloads.program w))
    in
    Fmt.pr "training on %d programs, %d sequences each (%s)...@."
      (List.length programs) per_program config.Mach.Config.name;
    let eng =
      make_engine ~config ~jobs ~cache ~tstore:None ~inject ~max_restarts
        ~share:(not no_share)
    in
    let kb =
      Icc.Characterize.build_kb ~engine:eng ~config ~per_program programs
    in
    Knowledge.Kb.save kb out;
    Fmt.pr "wrote %s: %d experiments, %d programs@." out (Knowledge.Kb.size kb)
      (List.length (Knowledge.Kb.programs kb));
    finish_engine ~cache_stats eng
  in
  let out_arg =
    Arg.(value & opt string "suite.kb" & info [ "out"; "o" ] ~docv:"FILE")
  in
  let pp_arg =
    Arg.(value & opt int 40 & info [ "per-program" ] ~docv:"N"
           ~doc:"Random sequences evaluated per training program.")
  in
  let excl_arg =
    Arg.(value & opt_all string [] & info [ "exclude" ] ~docv:"NAME"
           ~doc:"Hold a workload out of training (repeatable).")
  in
  Cmd.v (Cmd.info "train" ~doc)
    Term.(
      const run $ out_arg $ arch_arg $ pp_arg $ excl_arg $ jobs_arg
      $ cache_dir_arg $ cache_stats_arg $ inject_arg $ max_restarts_arg
      $ no_share_arg $ engine_arg $ obs_term)

(* --- predict ------------------------------------------------------- *)

let predict_cmd =
  let doc = "One-shot optimization prediction from a knowledge base." in
  let run file arch kb_path use_counters trials engine () =
    set_engine engine;
    let p = load_program file in
    let config = arch_of_name arch in
    let kb = Knowledge.Kb.load kb_path in
    let compiled =
      if use_counters then
        Icc.Controller.one_shot_counters ~config ~trials kb p
      else Icc.Controller.one_shot ~config kb p
    in
    let d = compiled.Icc.Controller.decision in
    Fmt.pr "predicted sequence: %s@."
      (Passes.Pass.sequence_to_string d.Icc.Controller.sequence);
    Fmt.pr "based on: %s@."
      (String.concat ", " d.Icc.Controller.predicted_from);
    Fmt.pr "target-system runs spent: %d@." d.Icc.Controller.evaluations;
    let c0 = Icc.Characterize.eval_sequence ~config p [] in
    let c1 =
      Icc.Characterize.eval_sequence ~config p d.Icc.Controller.sequence
    in
    Fmt.pr "cycles: %.0f -> %.0f (speedup %.2fx)@." c0 c1 (c0 /. c1)
  in
  let counters_flag =
    Arg.(value & flag & info [ "counters" ]
           ~doc:"Use the performance-counter model (one -O0 profiling run).")
  in
  let trials_arg =
    Arg.(value & opt int 1 & info [ "trials" ] ~docv:"N"
           ~doc:"Evaluate the top N counter-model candidates online.")
  in
  Cmd.v (Cmd.info "predict" ~doc)
    Term.(const run $ file_arg $ arch_arg $ kb_arg $ counters_flag
          $ trials_arg $ engine_arg $ obs_term)

(* --- search -------------------------------------------------------- *)

let search_cmd =
  let doc = "Search the optimization space for a program." in
  let run file arch strategy budget seed kb_path jobs cache tstore
      cache_stats inject max_restarts no_share engine distribute dist_dir ()
      =
    set_engine engine;
    if distribute > 1 && strategy <> "random" then begin
      Fmt.epr "miracc: --distribute requires --strategy random@.";
      exit 1
    end;
    let p = load_program file in
    let config = arch_of_name arch in
    let eng =
      make_engine ~config ~jobs ~cache ~tstore ~inject ~max_restarts
        ~share:(not no_share)
    in
    let eval = Engine.evaluator eng p in
    let result =
      match strategy with
      | "random" when distribute > 1 ->
        (* one-command local distribution: fork [distribute] workers,
           each a full engine evaluating shards of the same planned
           schedule into its own journal + cache; bit-identical to the
           batched serial walk below by construction *)
        let seqs = Search.Strategies.random_plan ~seed ~budget () in
        let job =
          Digest.to_hex
            (Digest.string
               (String.concat "\x00"
                  (Mach.Config.digest config :: Engine.ir_digest p
                   :: Printf.sprintf "seed=%d" seed
                   :: Printf.sprintf "budget=%d" budget
                   :: (Array.to_list seqs
                       |> List.map Passes.Pass.sequence_to_string))))
        in
        let n = Array.length seqs in
        let spec =
          { Engine.Dist.job; n; chunk_size = 10;
            shards = min n (distribute * 4) }
        in
        let make_eval ~worker_dir =
          let wcache =
            Engine.Rcache.open_dir (Filename.concat worker_dir "cache")
          in
          (* with --tstore each worker traces into its own store at
             <worker_dir>/tstore; the coordinator absorbs them all at
             the end, like the result caches *)
          let wtstore =
            Option.map
              (fun _ -> open_tstore (Filename.concat worker_dir "tstore"))
              tstore
          in
          let weng =
            Engine.create ~jobs:1 ~cache:wcache ?tstore:wtstore
              ~share:(not no_share) config
          in
          fun lo hi ->
            Engine.costs weng p (Array.to_list (Array.sub seqs lo (hi - lo)))
        in
        (match
           Engine.Dist.sweep_local ~workers:distribute ~dir:dist_dir
             ~cache:(Engine.cache eng)
             ?tstore:(Engine.Tcache.store (Engine.tcache eng))
             ~meta:
               [ ("program", file); ("arch", config.Mach.Config.name);
                 ("seed", string_of_int seed);
                 ("budget", string_of_int budget) ]
             spec ~make_eval
         with
         | _st, costs ->
           Search.Strategies.exhaustive_batched (Array.to_list seqs)
             (fun _ -> costs)
         | exception Engine.Dist.Dist_error e ->
           Fmt.epr "miracc: dist error: %s@." e;
           exit dist_error_exit)
      | "random" ->
        (* batched: plan the whole random schedule up front, score it in
           one engine batch (prefix sharing, simulation dedup and the
           pool see the whole sweep), and replay — identical by
           construction to the serial walk *)
        let seqs = Search.Strategies.random_plan ~seed ~budget () in
        Search.Strategies.exhaustive_batched (Array.to_list seqs)
          (Engine.costs eng p)
      | "hill" -> Search.Strategies.hill_climb ~seed ~budget eval
      | "genetic" -> Search.Strategies.genetic ~seed eval
      | "focused" -> begin
        match kb_path with
        | None ->
          Fmt.epr "focused search needs --kb@.";
          exit 1
        | Some path ->
          let kb = Knowledge.Kb.load path in
          let feats =
            Icc.Features.restrict_to_similarity (Icc.Features.extract p)
          in
          let model =
            Search.Focused.fit_model kb ~arch:config.Mach.Config.name
              ~params:Search.Focused.default_params ~target_features:feats
          in
          Search.Focused.search ~seed ~budget model eval
      end
      | s ->
        Fmt.epr "unknown strategy %S (random|hill|genetic|focused)@." s;
        exit 1
    in
    let o0 = eval [] in
    Fmt.pr "evaluations: %d@." result.Search.Strategies.evals;
    Fmt.pr "best sequence: %s@."
      (Passes.Pass.sequence_to_string result.Search.Strategies.best_seq);
    Fmt.pr "cycles: %.0f -> %.0f (speedup %.2fx)@." o0
      result.Search.Strategies.best_cost
      (o0 /. result.Search.Strategies.best_cost);
    finish_engine ~cache_stats eng
  in
  let strategy_arg =
    Arg.(value & opt string "focused" & info [ "strategy" ] ~docv:"S")
  in
  let budget_arg =
    Arg.(value & opt int 20 & info [ "budget" ] ~docv:"N")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let kb_opt =
    Arg.(value & opt (some string) None & info [ "kb" ] ~docv:"FILE")
  in
  let distribute_arg =
    Arg.(value & opt int 1 & info [ "distribute" ] ~docv:"N"
           ~doc:"Run the sweep on $(docv) forked worker processes, each \
                 a full engine with its own journal and cache, merged at \
                 the end; random strategy only.  Results are \
                 bit-identical to a single-process run.")
  in
  let search_dist_dir_arg =
    Arg.(value & opt string "mira-dist" & info [ "dist-dir" ] ~docv:"DIR"
           ~doc:"Run directory for --distribute (manifest, per-worker \
                 journals and caches).")
  in
  Cmd.v (Cmd.info "search" ~doc)
    Term.(
      const run $ file_arg $ arch_arg $ strategy_arg $ budget_arg $ seed_arg
      $ kb_opt $ jobs_arg $ cache_dir_arg $ tstore_arg $ cache_stats_arg
      $ inject_arg $ max_restarts_arg $ no_share_arg $ engine_arg
      $ distribute_arg $ search_dist_dir_arg $ obs_term)

(* --- distributed sweeps -------------------------------------------- *)

(* Both ends of a distributed sweep independently reconstruct the same
   sequence list from (file, arch, seed, samples) and fold it all into
   the job digest, so a worker launched with different inputs is
   rejected at hello instead of contributing wrong numbers. *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let sweep_inputs ~p ~config ~seed ~samples =
  let rng = Random.State.make [| seed |] in
  let seqs = Array.of_list (Search.Space.sample_distinct rng samples) in
  let job =
    Digest.to_hex
      (Digest.string
         (String.concat "\x00"
            (Mach.Config.digest config :: Engine.ir_digest p
             :: Printf.sprintf "seed=%d" seed
             :: Printf.sprintf "samples=%d" samples
             :: (Array.to_list seqs |> List.map Passes.Pass.sequence_to_string))))
  in
  (seqs, job)

let report_best seqs costs =
  let best = ref 0 in
  Array.iteri (fun i c -> if c < costs.(!best) then best := i) costs;
  Fmt.pr "evaluations: %d@." (Array.length costs);
  Fmt.pr "best sequence: %s@."
    (Passes.Pass.sequence_to_string seqs.(!best));
  Fmt.pr "best cost: %.0f cycles@." costs.(!best)

let dist_dir_arg =
  Arg.(value & opt string "mira-dist" & info [ "dir" ] ~docv:"DIR"
         ~doc:"Run directory: the manifest, the coordinator socket and \
               (for local workers) per-worker journals and caches live \
               under $(docv).")

let socket_arg =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path (default: DIR/coord.sock).")

let samples_arg =
  Arg.(value & opt int 400 & info [ "samples" ] ~docv:"N"
         ~doc:"Distinct random sequences in the sweep.")

let sweep_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Sampling seed; part of the job key.")

let chunk_arg =
  Arg.(value & opt int 10 & info [ "chunk-size" ] ~docv:"N"
         ~doc:"Journal checkpoint granularity within a shard.")

let sweep_serve_cmd =
  let doc = "Coordinate a distributed sweep: serve shards to workers." in
  let run file arch samples seed workers shards chunk dir socket cache
      cache_stats () =
    if samples <= 0 then begin
      Fmt.epr "miracc: --samples must be > 0@.";
      exit 1
    end;
    let p = load_program file in
    let config = arch_of_name arch in
    let seqs, job = sweep_inputs ~p ~config ~seed ~samples in
    let socket = Option.value socket ~default:(Filename.concat dir "coord.sock") in
    let shards = match shards with Some s -> s | None -> workers * 4 in
    let spec =
      { Engine.Dist.job; n = Array.length seqs; chunk_size = chunk; shards }
    in
    let meta =
      [ ("program", file); ("arch", config.Mach.Config.name);
        ("seed", string_of_int seed); ("samples", string_of_int samples) ]
    in
    match Engine.Dist.serve ~socket ~dir ~workers ~meta spec with
    | st, costs ->
      report_best seqs costs;
      Fmt.pr "workers: %d, shards: %d, steals: %d, requeues: %d, deaths: %d@."
        st.Engine.Dist.workers_seen st.Engine.Dist.shards_served
        st.Engine.Dist.steals st.Engine.Dist.requeues
        st.Engine.Dist.worker_deaths;
      (match cache with
       | None -> ()
       | Some cdir -> (
         (* fold whatever worker caches landed under dir/workers/ into
            the primary store, the same merge sweep_local does *)
         match Engine.Rcache.open_dir cdir with
         | primary ->
           let wroot = Filename.concat dir "workers" in
           let donors =
             match Sys.readdir wroot with
             | names ->
               Array.to_list names
               |> List.sort compare
               |> List.map (fun n ->
                      Filename.concat (Filename.concat wroot n) "cache")
               |> List.filter Sys.file_exists
             | exception Sys_error _ -> []
           in
           (* a worker that just heard [fin] may still hold its cache
              lock for a moment while it shuts down — retry briefly
              before declaring the donor unmergeable *)
           let absorb_patiently donor =
             let rec go tries =
               match Engine.Rcache.absorb primary donor with
               | s -> Some s
               | exception Engine.Rcache.Cache_error e ->
                 if tries > 0 then begin
                   ignore (Unix.select [] [] [] 0.1);
                   go (tries - 1)
                 end
                 else begin
                   Fmt.epr
                     "miracc: skipping unmergeable worker cache %s: %s@."
                     donor e;
                   None
                 end
             in
             go 30
           in
           let a, d, r =
             List.fold_left
               (fun (a, d, r) donor ->
                 match absorb_patiently donor with
                 | Some s ->
                   ( a + s.Engine.Rcache.absorbed,
                     d + s.Engine.Rcache.duplicates,
                     r + s.Engine.Rcache.rejected )
                 | None -> (a, d, r))
               (0, 0, 0) donors
           in
           Fmt.pr "cache merge: %d absorbed, %d duplicates, %d rejected@." a d r;
           if cache_stats then
             Fmt.pr "primary cache entries resident: %d@."
               (Engine.Rcache.resident primary);
           Engine.Rcache.close primary
         | exception Engine.Rcache.Cache_error e ->
           Fmt.epr "miracc: cache error: %s@." e;
           exit cache_error_exit))
    | exception Engine.Dist.Dist_error e ->
      Fmt.epr "miracc: dist error: %s@." e;
      exit dist_error_exit
  in
  let workers_arg =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
           ~doc:"Expected worker count (home-slot count for shard homing).")
  in
  let shards_arg =
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N"
           ~doc:"Shards to plan (default: workers * 4).")
  in
  Cmd.v (Cmd.info "sweep-serve" ~doc)
    Term.(
      const run $ file_arg $ arch_arg $ samples_arg $ sweep_seed_arg
      $ workers_arg $ shards_arg $ chunk_arg $ dist_dir_arg $ socket_arg
      $ cache_dir_arg $ cache_stats_arg $ obs_term)

let sweep_work_cmd =
  let doc = "Join a distributed sweep as a worker." in
  let run file arch samples seed chunk dir socket slot name jobs cache_stats
      inject max_restarts no_share engine () =
    set_engine engine;
    let p = load_program file in
    let config = arch_of_name arch in
    let seqs, job = sweep_inputs ~p ~config ~seed ~samples in
    let socket = Option.value socket ~default:(Filename.concat dir "coord.sock") in
    (* shards is the coordinator's business; the worker only needs the
       job identity and the chunking *)
    let spec =
      { Engine.Dist.job; n = Array.length seqs; chunk_size = chunk; shards = 1 }
    in
    mkdir_p dir;
    let eng =
      make_engine ~config ~jobs ~cache:(Some (Filename.concat dir "cache"))
        ~tstore:None ~inject ~max_restarts ~share:(not no_share)
    in
    let eval lo hi =
      Engine.costs eng p (Array.to_list (Array.sub seqs lo (hi - lo)))
    in
    match Engine.Dist.work ?name ~slot ~socket ~dir spec ~eval () with
    | completed ->
      Fmt.pr "shards completed: %d@." completed;
      finish_engine ~cache_stats eng
    | exception Engine.Dist.Dist_error e ->
      Fmt.epr "miracc: dist error: %s@." e;
      exit dist_error_exit
  in
  let slot_arg =
    Arg.(value & opt int (-1) & info [ "slot" ] ~docv:"N"
           ~doc:"Home slot to request ($(docv) >= 0): a rejoining worker \
                 given its old slot is offered its half-journaled shard \
                 first.")
  in
  let name_arg =
    Arg.(value & opt (some string) None & info [ "name" ] ~docv:"NAME"
           ~doc:"Worker name shown to the coordinator (default: w<pid>).")
  in
  Cmd.v (Cmd.info "sweep-work" ~doc)
    Term.(
      const run $ file_arg $ arch_arg $ samples_arg $ sweep_seed_arg
      $ chunk_arg $ dist_dir_arg $ socket_arg $ slot_arg $ name_arg
      $ jobs_arg $ cache_stats_arg $ inject_arg $ max_restarts_arg
      $ no_share_arg $ engine_arg $ obs_term)

let sweep_status_cmd =
  let doc =
    "Report a distributed run directory: progress, per-worker health, rollup."
  in
  (* one snapshot of the run, rebuilt cold from the directory (manifest
     + journals + worker metrics + any live rollup.json the coordinator
     left) — works on finished, crashed and in-flight runs alike *)
  let snapshot dir =
    match Engine.Dist.survey ~dir with
    | Some input -> input
    | None ->
      Fmt.epr "miracc: no manifest at %s@."
        (Filename.concat dir "manifest.json");
      exit 1
  in
  let totals (input : Obs.Rollup.input) =
    List.fold_left
      (fun (d, t, torn) (s : Obs.Rollup.shard) ->
        (d + s.chunks_done, t + s.chunks_total, torn + s.torn))
      (0, 0, 0) input.Obs.Rollup.shards
  in
  let progress_line (input : Obs.Rollup.input) =
    let done_, total, torn = totals input in
    let pct = if total > 0 then 100 * done_ / total else 0 in
    let b = Buffer.create 80 in
    Buffer.add_string b
      (Printf.sprintf "progress: %d/%d chunks (%d%%)" done_ total pct);
    let el = input.Obs.Rollup.elapsed_s in
    if el > 0.0 && done_ > 0 then begin
      Buffer.add_string b (Printf.sprintf ", elapsed %.1fs" el);
      if done_ < total then
        Buffer.add_string b
          (Printf.sprintf ", eta %.1fs"
             (el /. float_of_int done_ *. float_of_int (total - done_)))
    end;
    if torn > 0 then
      Buffer.add_string b
        (Printf.sprintf " [%d torn line%s skipped]" torn
           (if torn = 1 then "" else "s"));
    Buffer.contents b
  in
  let print_human dir (input : Obs.Rollup.input) =
    (* the manifest's one-line provenance fields, verbatim *)
    (match read_file (Filename.concat dir "manifest.json") with
     | s ->
       String.split_on_char '\n' s
       |> List.iter (fun line ->
              let line = String.trim line in
              let keep =
                List.exists
                  (fun k ->
                    String.length line > String.length k
                    && String.sub line 0 (String.length k) = k)
                  [ "\"schema\""; "\"run\""; "\"git_rev\""; "\"git_dirty\"";
                    "\"job\""; "\"n\""; "\"chunk_size\""; "\"shards\"" ]
              in
              if keep then Fmt.pr "%s@." line)
     | exception Sys_error _ -> ());
    List.iter
      (fun (s : Obs.Rollup.shard) ->
        Fmt.pr "shard %d%s: %d/%d chunks%s@." s.shard
          (if s.worker = "" then "" else Printf.sprintf " (%s)" s.worker)
          s.chunks_done s.chunks_total
          (if s.torn > 0 then
             Printf.sprintf " [%d torn line%s skipped]" s.torn
               (if s.torn = 1 then "" else "s")
           else ""))
      input.Obs.Rollup.shards;
    Fmt.pr "%s@." (progress_line input);
    if input.Obs.Rollup.workers_seen > 0 then
      Fmt.pr
        "workers: %d seen, %d deaths, %d respawns, %d steals, %d requeues@."
        input.Obs.Rollup.workers_seen input.Obs.Rollup.worker_deaths
        input.Obs.Rollup.respawns input.Obs.Rollup.steals
        input.Obs.Rollup.requeues
  in
  let complete (input : Obs.Rollup.input) =
    let done_, total, _ = totals input in
    total > 0 && done_ = total
  in
  let run dir follow json =
    if follow then begin
      (* tail the journals until every chunk is in; one compact line per
         refresh so the terminal shows the run converging *)
      let continue = ref true in
      while !continue do
        let input = snapshot dir in
        Fmt.pr "%s@." (progress_line input);
        if complete input then continue := false else Unix.sleepf 0.5
      done;
      if not json then print_human dir (snapshot dir)
    end;
    let input = snapshot dir in
    if json then print_string (Obs.Rollup.to_json input)
    else if not follow then print_human dir input
  in
  let dir_arg =
    Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
           ~doc:"The run directory to describe.")
  in
  let follow_arg =
    Arg.(value & flag & info [ "follow" ]
           ~doc:"Keep tailing the journals, printing a progress/ETA line \
                 per refresh, until the run completes.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the run rollup (schema icc-rollup/1) instead of \
                 the human report.")
  in
  Cmd.v (Cmd.info "sweep-status" ~doc)
    Term.(const run $ dir_arg $ follow_arg $ json_arg)

let trace_merge_cmd =
  let doc = "Merge a run's per-process trace files into one Chrome trace." in
  let run dir output =
    let sources = Engine.Dist.trace_sources ~dir in
    if sources = [] then begin
      Fmt.epr "miracc: no trace files under %s@." dir;
      exit 1
    end;
    let out_path =
      match output with
      | Some o -> o
      | None -> Filename.concat dir "trace-merged.json"
    in
    (* never merge the previous merge back in *)
    let sources = List.filter (fun (_, p) -> p <> out_path) sources in
    match open_out out_path with
    | exception Sys_error e ->
      Fmt.epr "miracc: cannot write %s: %s@." out_path e;
      exit 1
    | oc ->
      let st =
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> Obs.Merge.merge_files sources oc)
      in
      Fmt.pr "merged %d trace files, %d events -> %s@." st.Obs.Merge.files
        st.Obs.Merge.events out_path;
      (match st.Obs.Merge.run with
       | Some r -> Fmt.pr "run: %s@." r
       | None -> Fmt.pr "run: (no shared id)@.");
      if st.Obs.Merge.skipped > 0 then
        Fmt.pr "skipped %d torn line%s@." st.Obs.Merge.skipped
          (if st.Obs.Merge.skipped = 1 then "" else "s");
      List.iter
        (fun l ->
          Fmt.epr "miracc: warning: %s announced no matching run id@." l)
        st.Obs.Merge.mismatched
  in
  let dir_arg =
    Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
           ~doc:"The run directory whose trace files to merge \
                 (trace*.json at the top level is the coordinator, \
                 workers/*/trace*.json the workers).")
  in
  let output_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the merged trace to $(docv) (default: \
                 DIR/trace-merged.json).")
  in
  Cmd.v (Cmd.info "trace-merge" ~doc)
    Term.(const run $ dir_arg $ output_arg)

(* --- dynamic ------------------------------------------------------- *)

let dynamic_cmd =
  let doc = "Demo the dynamic optimizer on a phase-changing workload." in
  let run phases per_phase =
    let intervals = Icc.Dynamic.phased_intervals ~phases ~per_phase () in
    let r = Icc.Dynamic.run Icc.Dynamic.default_config intervals in
    Fmt.pr "intervals: %d, phase changes detected: %d, audited intervals: %d@."
      (List.length intervals) r.Icc.Dynamic.phase_changes_detected
      r.Icc.Dynamic.audits;
    Fmt.pr "O0 everywhere      : %d cycles@." r.Icc.Dynamic.o0_cycles;
    Fmt.pr "static best (%-6s): %d cycles@." r.Icc.Dynamic.static_best_name
      r.Icc.Dynamic.static_best_cycles;
    Fmt.pr "dynamic optimizer  : %d cycles (overhead %d)@."
      r.Icc.Dynamic.total_cycles r.Icc.Dynamic.overhead_cycles;
    Fmt.pr "oracle             : %d cycles@." r.Icc.Dynamic.oracle_cycles
  in
  let phases_arg = Arg.(value & opt int 6 & info [ "phases" ] ~docv:"N") in
  let per_arg = Arg.(value & opt int 8 & info [ "per-phase" ] ~docv:"N") in
  Cmd.v (Cmd.info "dynamic" ~doc) Term.(const run $ phases_arg $ per_arg)

let () =
  (* real time for the observability layer (Obs itself is clockless) *)
  Obs.Clock.set Unix.gettimeofday;
  Obs.Trace.set_pid (Unix.getpid ());
  (* MIRA_FAULTS applies to every command, engine-backed or not (the
     trace-store paths of run/counters have no engine); --inject, where
     offered, overrides it in make_engine *)
  (try Engine.Faults.install_from_env ()
   with Invalid_argument e ->
     Fmt.epr "miracc: bad MIRA_FAULTS: %s@." e;
     exit 1);
  let doc = "an intelligent compiler for the Mira language" in
  let info = Cmd.info "miracc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            compile_cmd; run_cmd; features_cmd; counters_cmd; workloads_cmd;
            train_cmd; predict_cmd; search_cmd; sweep_serve_cmd;
            sweep_work_cmd; sweep_status_cmd; trace_merge_cmd; dynamic_cmd;
          ]))
