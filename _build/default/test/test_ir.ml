(* Unit and property tests for the mira front end, IR and interpreter. *)

let compile src = Mira.Lower.compile_source_exn src

let run_main src =
  let p = compile src in
  Mira.Interp.run p

let check_ret src expected =
  let r = run_main src in
  Alcotest.(check string) "return value" expected
    (Mira.Interp.value_to_string r.Mira.Interp.ret)

let check_out src expected =
  let r = run_main src in
  Alcotest.(check string) "output" expected r.Mira.Interp.output

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_basic () =
  let toks = Mira.Lexer.tokenize "fn main() -> int { return 42; }" in
  let kinds = List.map fst toks in
  Alcotest.(check int) "token count" 12 (List.length kinds);
  (match kinds with
   | Mira.Lexer.KFN :: Mira.Lexer.IDENT "main" :: _ -> ()
   | _ -> Alcotest.fail "unexpected tokens")

let test_lexer_numbers () =
  let toks = Mira.Lexer.tokenize "1 23 0x10 1.5 2e3 0x1.8p1" in
  let kinds = List.map fst toks in
  match kinds with
  | [ INT 1; INT 23; INT 16; FLOAT a; FLOAT b; FLOAT c; EOF ] ->
    Alcotest.(check (float 1e-9)) "1.5" 1.5 a;
    Alcotest.(check (float 1e-9)) "2e3" 2000.0 b;
    Alcotest.(check (float 1e-9)) "hexfloat" 3.0 c
  | _ -> Alcotest.fail "unexpected number tokens"

let test_lexer_comments () =
  let toks = Mira.Lexer.tokenize "// line\n1 /* block\n across */ 2" in
  match List.map fst toks with
  | [ INT 1; INT 2; EOF ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lexer_operators () =
  let toks = Mira.Lexer.tokenize "<= >= == != && || << >> -> < >" in
  match List.map fst toks with
  | [ LE; GE; EQEQ; NE; ANDAND; OROR; SHL; SHR; ARROW; LT; GT; EOF ] -> ()
  | _ -> Alcotest.fail "operators misparsed"

let test_lexer_error () =
  match Mira.Lexer.tokenize "fn $ x" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Mira.Lexer.Error (_, pos) ->
    Alcotest.(check int) "error line" 1 pos.Mira.Ast.line

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_simple () =
  let p = Mira.Parser.parse "fn main() -> int { return 1 + 2 * 3; }" in
  Alcotest.(check int) "one function" 1 (List.length p.Mira.Ast.funcs)

let test_parse_precedence () =
  check_ret "fn main() -> int { return 1 + 2 * 3; }" "7";
  check_ret "fn main() -> int { return (1 + 2) * 3; }" "9";
  check_ret "fn main() -> int { return 10 - 3 - 2; }" "5";
  check_ret "fn main() -> int { return 1 << 3 | 2; }" "10";
  check_ret "fn main() -> int { return 7 & 3 ^ 1; }" "2"

let test_parse_error_reports_position () =
  match Mira.Parser.parse "fn main() -> int { return 1 +; }" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Mira.Parser.Error (_, pos) ->
    Alcotest.(check bool) "column recorded" true (pos.Mira.Ast.col > 0)

let test_parse_dangling_else () =
  check_ret
    {|fn main() -> int {
        var x: int = 0;
        if (true) { if (false) { x = 1; } else { x = 2; } }
        return x;
      }|}
    "2"

let test_parse_roundtrip_manual () =
  let src =
    {|global tbl: int[4] = {1, 2, 3, 4};
      fn add(a: int, b: int) -> int { return a + b; }
      fn main() -> int {
        var s: int = 0;
        for i = 0 to 4 { s = add(s, tbl[i]); }
        return s;
      }|}
  in
  let ast = Mira.Parser.parse src in
  let printed = Mira.Ast.to_string ast in
  let ast2 = Mira.Parser.parse printed in
  let printed2 = Mira.Ast.to_string ast2 in
  Alcotest.(check string) "pretty-print fixpoint" printed printed2

(* ------------------------------------------------------------------ *)
(* Typechecker *)

let expect_type_error src =
  let ast = Mira.Parser.parse src in
  match Mira.Typecheck.check ast with
  | () -> Alcotest.fail "expected type error"
  | exception Mira.Typecheck.Error _ -> ()

let test_type_errors () =
  expect_type_error "fn main() -> int { return 1.0; }";
  expect_type_error "fn main() -> int { return 1 + 1.0; }";
  expect_type_error "fn main() -> int { var x: bool = 1; return 0; }";
  expect_type_error "fn main() -> int { if (1) { } return 0; }";
  expect_type_error "fn main() -> int { return y; }";
  expect_type_error "fn main() -> int { return f(); }";
  expect_type_error
    "fn f(x: int) -> int { return x; } fn main() -> int { return f(); }";
  expect_type_error "fn f() { } fn main() -> int { return f(); }";
  expect_type_error "fn main() -> int { var a: int[4]; return a; }";
  expect_type_error "fn main() -> int { var a: int[4]; a[1.0] = 1; return 0; }";
  expect_type_error
    "fn main() -> int { var x: int = 1; var x: int = 2; return x; }";
  expect_type_error "fn nomain() -> int { return 0; }"

let test_type_ok_scopes () =
  check_ret
    {|fn main() -> int {
        var t: int = 0;
        if (true) { var x: int = 1; t = t + x; } else { var x: int = 2; t = t + x; }
        if (true) { var x: int = 5; t = t + x; }
        return t;
      }|}
    "6"

(* ------------------------------------------------------------------ *)
(* Interpreter semantics *)

let test_arith () =
  check_ret "fn main() -> int { return 7 / 2; }" "3";
  check_ret "fn main() -> int { return (0 - 7) / 2; }" "-3";
  check_ret "fn main() -> int { return 7 % 3; }" "1";
  check_ret "fn main() -> int { return ~5; }" "-6";
  check_ret "fn main() -> int { return -(3 - 10); }" "7"

let test_float_arith () =
  check_out "fn main() -> int { print(1.5 + 2.25); return 0; }" "3.75\n";
  check_out "fn main() -> int { print(float(7) / 2.0); return 0; }" "3.5\n";
  check_out "fn main() -> int { print(int(3.9)); return 0; }" "3\n"

let test_short_circuit () =
  check_ret
    {|fn main() -> int {
        var a: int[1];
        var i: int = 5;
        if (i < 1 && a[i] == 0) { return 1; }
        return 2;
      }|}
    "2";
  check_ret
    {|fn main() -> int {
        var a: int[1];
        var i: int = 5;
        if (i > 1 || a[i] == 0) { return 1; }
        return 2;
      }|}
    "1"

let test_while_loop () =
  check_ret
    {|fn main() -> int {
        var i: int = 0; var s: int = 0;
        while (i < 10) { s = s + i; i = i + 1; }
        return s;
      }|}
    "45"

let test_for_loop () =
  check_ret
    {|fn main() -> int {
        var s: int = 0;
        for i = 0 to 10 step 2 { s = s + i; }
        return s;
      }|}
    "20";
  check_ret
    {|fn main() -> int {
        var s: int = 0;
        for i = 0 to 3 { for j = 0 to 3 { s = s + i * j; } }
        return s;
      }|}
    "9"

let test_arrays () =
  check_ret
    {|fn main() -> int {
        var a: int[16];
        for i = 0 to 16 { a[i] = i * i; }
        var s: int = 0;
        for i = 0 to 16 { s = s + a[i]; }
        return s;
      }|}
    "1240";
  check_ret "fn main() -> int { var a: float[8]; return len(a); }" "8"

let test_globals () =
  check_ret
    {|global g: int[4] = {10, 20, 30};
      fn main() -> int { return g[0] + g[1] + g[2] + g[3]; }|}
    "60";
  check_ret
    {|global g: float[2] = {1.5, 2.5};
      fn main() -> int { return int(g[0] + g[1]); }|}
    "4"

let test_calls_and_recursion () =
  check_ret
    {|fn fib(n: int) -> int {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
      }
      fn main() -> int { return fib(15); }|}
    "610";
  check_ret
    {|fn fill(a: int[], v: int) {
        for i = 0 to len(a) { a[i] = v; }
      }
      fn main() -> int {
        var a: int[5];
        fill(a, 7);
        return a[0] + a[4];
      }|}
    "14"

let test_array_params_alias () =
  check_ret
    {|fn bump(a: int[]) { a[0] = a[0] + 1; }
      fn main() -> int {
        var a: int[1];
        bump(a); bump(a); bump(a);
        return a[0];
      }|}
    "3"

let expect_trap src =
  let p = compile src in
  match Mira.Interp.run p with
  | _ -> Alcotest.fail "expected trap"
  | exception Mira.Interp.Trap _ -> ()

let test_traps () =
  expect_trap "fn main() -> int { var z: int = 0; return 1 / z; }";
  expect_trap "fn main() -> int { var z: int = 0; return 1 % z; }";
  expect_trap "fn main() -> int { var a: int[2]; return a[2]; }";
  expect_trap "fn main() -> int { var a: int[2]; return a[-1]; }";
  expect_trap "fn main() -> int { var a: int[2]; a[5] = 1; return 0; }";
  expect_trap "fn main() -> int { var s: int = 64; return 1 << s; }"

let test_fuel () =
  let p = compile "fn main() -> int { while (true) { } return 0; }" in
  match Mira.Interp.run ~fuel:1000 p with
  | _ -> Alcotest.fail "expected fuel exhaustion"
  | exception Mira.Interp.Out_of_fuel -> ()

let test_print_formats () =
  check_out
    {|fn main() -> int {
        print(42); print(1.25); print(true); print(false);
        return 0;
      }|}
    "42\n1.25\ntrue\nfalse\n"

let test_local_array_zero_init () =
  check_ret
    {|fn f() -> int { var a: int[4]; var s: int = a[0] + a[3]; a[0] = 9; return s; }
      fn main() -> int {
        var x: int = f();
        var y: int = f();
        return x + y;
      }|}
    "0"

(* ------------------------------------------------------------------ *)
(* IR structural checks *)

let test_ir_well_formed () =
  let p =
    compile
      {|fn g(x: int) -> int { if (x > 0) { return x; } return -x; }
        fn main() -> int {
          var s: int = 0;
          for i = 0 to 10 { s = s + g(5 - i); }
          return s;
        }|}
  in
  Alcotest.(check (list string)) "no wf errors" [] (Mira.Ir.check_program p)

let test_ir_loop_analysis () =
  let p =
    compile
      {|fn main() -> int {
          var s: int = 0;
          for i = 0 to 4 { for j = 0 to 4 { s = s + 1; } }
          while (s > 100) { s = s - 1; }
          return s;
        }|}
  in
  let f = Mira.Ir.find_func p "main" in
  let _, loops = Mira.Analysis.natural_loops f in
  Alcotest.(check int) "three loops" 3 (List.length loops);
  let depths = List.map (fun (l : Mira.Analysis.loop) -> l.depth) loops in
  Alcotest.(check int) "max depth 2" 2 (List.fold_left max 0 depths)

let test_ir_dominators () =
  let p =
    compile
      {|fn main() -> int {
          var x: int = 0;
          if (true) { x = 1; } else { x = 2; }
          return x;
        }|}
  in
  let f = Mira.Ir.find_func p "main" in
  let cfg = Mira.Analysis.cfg_of f in
  let doms = Mira.Analysis.dominators cfg in
  Array.iter
    (fun l ->
      Alcotest.(check bool) "entry dominates" true
        (Mira.Analysis.dominates doms f.Mira.Ir.entry l))
    cfg.Mira.Analysis.rpo

let test_ir_liveness () =
  let p =
    compile
      {|fn main() -> int {
          var a: int = 1;
          var b: int = 2;
          while (a < 100) { a = a + b; }
          return a;
        }|}
  in
  let f = Mira.Ir.find_func p "main" in
  let cfg = Mira.Analysis.cfg_of f in
  let lv = Mira.Analysis.liveness f cfg in
  let nonempty =
    Mira.Ir.LMap.exists
      (fun _ s -> not (Mira.Ir.RSet.is_empty s))
      lv.Mira.Analysis.live_in
  in
  Alcotest.(check bool) "live sets nonempty" true nonempty

(* ------------------------------------------------------------------ *)
(* Packed (EltInt32) array semantics *)

let test_packed_global_semantics () =
  (* hand-pack a global and check stores mask to 32 bits, loads
     zero-extend, and addresses halve (observable via the cache hooks) *)
  let p =
    compile
      {|global g: int[8];
        fn main() -> int {
          g[0] = 5;
          g[7] = 4294967295;
          return g[0] + g[7];
        }|}
  in
  let packed =
    { p with
      Mira.Ir.globals =
        List.map
          (fun gl -> { gl with Mira.Ir.gelt = Mira.Ir.EltInt32 })
          p.Mira.Ir.globals
    }
  in
  let r = Mira.Interp.run packed in
  Alcotest.(check string) "values in range survive packing"
    "4294967300"
    (Mira.Interp.value_to_string r.Mira.Interp.ret);
  (* addresses: collect load/store addresses and compare spans *)
  let span prog =
    let lo = ref max_int and hi = ref 0 in
    let note a =
      lo := min !lo a;
      hi := max !hi a
    in
    let hooks =
      { Mira.Interp.no_hooks with
        Mira.Interp.on_load = note;
        Mira.Interp.on_store = note
      }
    in
    ignore (Mira.Interp.run ~hooks prog);
    !hi - !lo
  in
  Alcotest.(check int) "packed footprint is half" (span p / 2) (span packed)

let test_packed_masks_stores () =
  (* out-of-range values are masked — the reason the pack PASS only fires
     when it can prove values fit *)
  let p =
    compile
      {|global g: int[2];
        fn main() -> int {
          g[0] = 0 - 1;
          return g[0];
        }|}
  in
  let packed =
    { p with
      Mira.Ir.globals =
        List.map
          (fun gl -> { gl with Mira.Ir.gelt = Mira.Ir.EltInt32 })
          p.Mira.Ir.globals
    }
  in
  let r = Mira.Interp.run packed in
  Alcotest.(check string) "-1 masked to 2^32-1" "4294967295"
    (Mira.Interp.value_to_string r.Mira.Interp.ret)

(* ------------------------------------------------------------------ *)
(* Analysis edge cases *)

let test_analysis_unreachable_blocks () =
  (* code after return is unreachable; analyses must not choke *)
  let p =
    compile
      {|fn main() -> int {
          var x: int = 1;
          return x;
          x = 2;
          print(x);
          return x;
        }|}
  in
  let f = Mira.Ir.find_func p "main" in
  let cfg = Mira.Analysis.cfg_of f in
  Alcotest.(check bool) "some blocks unreachable" true
    (Mira.Ir.LSet.cardinal cfg.Mira.Analysis.reachable
     < Mira.Ir.block_count f);
  let _ = Mira.Analysis.dominators cfg in
  let _ = Mira.Analysis.liveness f cfg in
  ()

let test_analysis_self_loop () =
  (* a one-block natural loop (while with empty-ish body folded) *)
  let p =
    compile
      {|fn main() -> int {
          var n: int = 10;
          while (n > 0) { n = n - 1; }
          return n;
        }|}
  in
  let f = Mira.Ir.find_func p "main" in
  (* merge blocks so the loop may collapse; analyses must stay sound *)
  let p' = Passes.Pass.apply Passes.Pass.Simplify_cfg p in
  let f' = Mira.Ir.find_func p' "main" in
  List.iter
    (fun fn ->
      let _, loops = Mira.Analysis.natural_loops fn in
      Alcotest.(check int) "exactly one loop" 1 (List.length loops))
    [ f; f' ]

(* ------------------------------------------------------------------ *)
(* Property tests *)

let gen_small_int = QCheck.Gen.int_range (-1000) 1000

(* Random arithmetic expression over two int variables; always well-typed
   and trap-free (no div/rem/shift). *)
let rec gen_expr_str depth st =
  let open QCheck.Gen in
  if depth = 0 then
    match int_range 0 2 st with
    | 0 -> string_of_int (gen_small_int st)
    | 1 -> "x"
    | _ -> "y"
  else
    let op =
      match int_range 0 3 st with 0 -> "+" | 1 -> "-" | 2 -> "*" | _ -> "&"
    in
    Printf.sprintf "(%s %s %s)"
      (gen_expr_str (depth - 1) st)
      op
      (gen_expr_str (depth - 1) st)

let eval_expr_ref (src_expr : string) x y =
  let ast =
    Mira.Parser.parse
      (Printf.sprintf "fn main() -> int { return %s; }" src_expr)
  in
  let rec ev (e : Mira.Ast.expr) =
    match e.Mira.Ast.e with
    | Mira.Ast.Int n -> n
    | Mira.Ast.Var "x" -> x
    | Mira.Ast.Var "y" -> y
    | Mira.Ast.Bin (Mira.Ast.Add, a, b) -> ev a + ev b
    | Mira.Ast.Bin (Mira.Ast.Sub, a, b) -> ev a - ev b
    | Mira.Ast.Bin (Mira.Ast.Mul, a, b) -> ev a * ev b
    | Mira.Ast.Bin (Mira.Ast.BAnd, a, b) -> ev a land ev b
    | Mira.Ast.Un (Mira.Ast.Neg, a) -> -ev a
    | _ -> failwith "unexpected"
  in
  match ast.Mira.Ast.funcs with
  | [ { Mira.Ast.body = [ { Mira.Ast.s = Mira.Ast.SReturn (Some e); _ } ]; _ } ]
    -> ev e
  | _ -> failwith "unexpected shape"

let prop_expr_eval =
  QCheck.Test.make ~name:"interpreter agrees with reference on expressions"
    ~count:200
    QCheck.(
      triple (make (gen_expr_str 4)) (make gen_small_int) (make gen_small_int))
    (fun (es, x, y) ->
      let src =
        Printf.sprintf
          "fn main() -> int { var x: int = %d; var y: int = %d; return %s; }" x
          y es
      in
      let r = run_main src in
      Mira.Interp.value_to_string r.Mira.Interp.ret
      = string_of_int (eval_expr_ref es x y))

let prop_roundtrip =
  QCheck.Test.make ~name:"parse . print . parse is identity on printed form"
    ~count:100
    (QCheck.make (fun st ->
         let n = QCheck.Gen.int_range 1 5 st in
         let stmts =
           List.init n (fun i ->
               Printf.sprintf "var v%d: int = %s;" i (gen_expr_str 2 st))
         in
         Printf.sprintf
           "fn main() -> int { var x: int = 1; var y: int = 2; %s return x; }"
           (String.concat " " stmts)))
    (fun src ->
      let ast = Mira.Parser.parse src in
      let s1 = Mira.Ast.to_string ast in
      let s2 = Mira.Ast.to_string (Mira.Parser.parse s1) in
      s1 = s2)

let prop_lower_well_formed =
  QCheck.Test.make ~name:"lowered programs are well-formed" ~count:100
    (QCheck.make (fun st ->
         let body = gen_expr_str 3 st in
         Printf.sprintf
           {|fn main() -> int {
               var x: int = 3; var y: int = 4;
               var s: int = 0;
               for i = 0 to 8 { s = s + %s; }
               return s;
             }|}
           body))
    (fun src ->
      let p = compile src in
      Mira.Ir.check_program p = [])

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "lexer",
      [
        t "basic" test_lexer_basic;
        t "numbers" test_lexer_numbers;
        t "comments" test_lexer_comments;
        t "operators" test_lexer_operators;
        t "error" test_lexer_error;
      ] );
    ( "parser",
      [
        t "simple" test_parse_simple;
        t "precedence" test_parse_precedence;
        t "error position" test_parse_error_reports_position;
        t "dangling else" test_parse_dangling_else;
        t "roundtrip" test_parse_roundtrip_manual;
      ] );
    ( "typecheck",
      [ t "rejects ill-typed" test_type_errors; t "scopes" test_type_ok_scopes ]
    );
    ( "interp",
      [
        t "arith" test_arith;
        t "float arith" test_float_arith;
        t "short circuit" test_short_circuit;
        t "while" test_while_loop;
        t "for" test_for_loop;
        t "arrays" test_arrays;
        t "globals" test_globals;
        t "calls/recursion" test_calls_and_recursion;
        t "array aliasing" test_array_params_alias;
        t "traps" test_traps;
        t "fuel" test_fuel;
        t "print formats" test_print_formats;
        t "zero init" test_local_array_zero_init;
      ] );
    ( "ir",
      [
        t "well-formed" test_ir_well_formed;
        t "loops" test_ir_loop_analysis;
        t "dominators" test_ir_dominators;
        t "liveness" test_ir_liveness;
        t "unreachable blocks" test_analysis_unreachable_blocks;
        t "self loop" test_analysis_self_loop;
      ] );
    ( "packed-arrays",
      [
        t "semantics" test_packed_global_semantics;
        t "store masking" test_packed_masks_stores;
      ] );
    ( "properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_expr_eval; prop_roundtrip; prop_lower_well_formed ] );
  ]

let () = Alcotest.run "mira" suite
