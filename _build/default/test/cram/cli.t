The miracc driver end-to-end, on a small sample program.

Run unoptimized:

  $ miracc run sample.mira
  836
  return: 36
  cycles: 1410  instructions: 610  CPI: 2.31

Optimization levels change cycles but never behaviour:

  $ miracc run sample.mira -O Ofast | head -2
  836
  return: 36

An explicit sequence:

  $ miracc run sample.mira --seq cprop,cfold,licm,unroll4,cse,dce | head -2
  836
  return: 36

Sequences are validated:

  $ miracc run sample.mira --seq nosuchpass
  bad sequence: unknown pass "nosuchpass"
  [1]

Static features are printed name-value:

  $ miracc features sample.mira | head -4
  n_funcs                2
  n_blocks               7
  n_instrs               15
  avg_block_size         2.14286

Compile prints IR; --stats summarizes:

  $ miracc compile sample.mira -O O2 --stats
  passes: simplify,cfold,cprop,peephole,dce,copyprop,cse,licm,strength,simplify,cfold,dce
  size: 22 -> 18 instrs

The built-in workload suite is listed with families:

  $ miracc workloads | head -3
  adpcm      telecomm   IMA ADPCM encoder over a synthetic waveform (MiBench telecomm)
  mcf_spars  specint    network-simplex-style pointer chase over a 768 KiB arc structure with stores on the chase path (SPEC 181.mcf analogue)
  matmul     specfp     48x48 float matrix multiply (Polyhedron-style dense kernel)

Counter characterization at -O0:

  $ miracc counters sample.mira | head -3
  TOT_INS    1.000000
  TOT_CYC    3.085339
  LD_INS     0.109409

Unknown architectures are rejected:

  $ miracc run sample.mira --arch pdp11
  unknown architecture "pdp11" (available: amd-like, c6713-like, embedded)
  [1]
