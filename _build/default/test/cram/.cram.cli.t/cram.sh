  $ miracc run sample.mira
  $ miracc run sample.mira -O Ofast | head -2
  $ miracc run sample.mira --seq cprop,cfold,licm,unroll4,cse,dce | head -2
  $ miracc run sample.mira --seq nosuchpass
  $ miracc features sample.mira | head -4
  $ miracc compile sample.mira -O O2 --stats
  $ miracc workloads | head -3
  $ miracc counters sample.mira | head -3
  $ miracc run sample.mira --arch pdp11
