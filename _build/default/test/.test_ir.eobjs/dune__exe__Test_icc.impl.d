test/test_icc.ml: Alcotest Array Icc Knowledge Lazy List Mach Mira Passes Printf Search
