test/test_knowledge.ml: Alcotest Filename Fun Knowledge List Passes Printf QCheck QCheck_alcotest Random Search Sys
