test/test_ir.ml: Alcotest Array List Mira Passes Printf QCheck QCheck_alcotest String
