test/test_ml.ml: Alcotest Array Float Hashtbl List Mlkit Printf QCheck QCheck_alcotest Random
