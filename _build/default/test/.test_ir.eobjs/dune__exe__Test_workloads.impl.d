test/test_workloads.ml: Alcotest List Mach Mira Passes Printf String Workloads
