test/test_search.ml: Alcotest Array Knowledge List Passes Printf QCheck QCheck_alcotest Random Search
