test/test_passes.ml: Alcotest Gen_program List Mach Mira Passes Printf QCheck QCheck_alcotest Random Search String
