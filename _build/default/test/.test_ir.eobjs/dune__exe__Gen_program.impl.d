test/gen_program.ml: List Mira Printf Random String
