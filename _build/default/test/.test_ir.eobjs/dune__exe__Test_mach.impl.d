test/test_mach.ml: Alcotest List Mach Mira Passes Printf QCheck QCheck_alcotest
