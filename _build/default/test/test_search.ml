(* Tests for the search strategies and sequence models.  Expensive
   simulation is avoided: strategies are exercised against synthetic cost
   oracles whose optima are known. *)

module Pass = Passes.Pass

let valid_seq seq = Pass.sequence_valid seq

(* synthetic cost: Hamming-like distance to a planted target sequence,
   position-weighted so there is a unique optimum *)
let planted_target =
  Pass.[ Const_prop; Licm; Cse; Unroll4; Dce ]

let planted_cost (seq : Pass.t list) : float =
  let cost = ref 0.0 in
  List.iteri
    (fun i p ->
      match List.nth_opt planted_target i with
      | Some t when t = p -> ()
      | _ -> cost := !cost +. float_of_int (i + 1))
    seq;
  !cost +. float_of_int (abs (List.length seq - List.length planted_target))

(* ------------------------------------------------------------------ *)

let test_space_cardinality () =
  (* 11 non-unroll passes, 3 unroll: 11^5 + 5*3*11^4 valid length-5 seqs *)
  Alcotest.(check int) "length-5 cardinality" 380_666
    (Search.Space.cardinality ());
  Alcotest.(check int) "length-1" 14 (Search.Space.cardinality ~length:1 ())

let test_sample_distinct () =
  let rng = Random.State.make [| 3 |] in
  let seqs = Search.Space.sample_distinct rng 200 in
  Alcotest.(check int) "got 200" 200 (List.length seqs);
  let keys = List.map Pass.sequence_to_string seqs in
  Alcotest.(check int) "all distinct" 200
    (List.length (List.sort_uniq compare keys))

let test_projection_indices () =
  let seq = planted_target in
  let x = Search.Space.prefix2_index seq in
  let y = Search.Space.suffix3_index seq in
  Alcotest.(check bool) "x in range" true (x >= 0 && x < 13 * 13);
  Alcotest.(check bool) "y in range" true (y >= 0 && y < 13 * 13 * 13);
  (* distinct prefixes give distinct x *)
  let seq2 = Pass.[ Dce; Licm; Cse; Unroll4; Dce ] in
  Alcotest.(check bool) "prefix distinguishes" true
    (Search.Space.prefix2_index seq2 <> x)

let prop_random_seq_valid =
  QCheck.Test.make ~name:"random sequences are valid" ~count:200
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, len) ->
      let rng = Random.State.make [| seed |] in
      let s = Search.Space.random_seq rng ~length:len () in
      List.length s = len && valid_seq s)

let prop_mutate_valid =
  QCheck.Test.make ~name:"mutation preserves validity" ~count:200
    QCheck.small_int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let s = Search.Space.random_seq rng () in
      let s' = Search.Space.mutate rng s in
      List.length s' = List.length s && valid_seq s')

let prop_crossover_valid =
  QCheck.Test.make ~name:"crossover preserves validity" ~count:200
    QCheck.small_int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let a = Search.Space.random_seq rng () in
      let b = Search.Space.random_seq rng () in
      let c = Search.Space.crossover rng a b in
      List.length c = 5 && valid_seq c)

(* ------------------------------------------------------------------ *)

let test_history_monotone () =
  let r = Search.Strategies.random ~seed:4 ~budget:60 planted_cost in
  let mono = ref true in
  for i = 1 to Array.length r.Search.Strategies.history - 1 do
    if r.Search.Strategies.history.(i) > r.Search.Strategies.history.(i - 1)
    then mono := false
  done;
  Alcotest.(check bool) "best-so-far is non-increasing" true !mono;
  Alcotest.(check int) "one entry per eval" 60
    (Array.length r.Search.Strategies.history)

let test_random_deterministic () =
  let r1 = Search.Strategies.random ~seed:9 ~budget:30 planted_cost in
  let r2 = Search.Strategies.random ~seed:9 ~budget:30 planted_cost in
  Alcotest.(check (float 0.0)) "same seed same result"
    r1.Search.Strategies.best_cost r2.Search.Strategies.best_cost;
  let r3 = Search.Strategies.random ~seed:10 ~budget:30 planted_cost in
  Alcotest.(check bool) "different seed may differ" true
    (r3.Search.Strategies.seqs <> r1.Search.Strategies.seqs)

let test_hill_climb_improves () =
  let r = Search.Strategies.hill_climb ~seed:2 ~budget:300 planted_cost in
  let r0 = Search.Strategies.random ~seed:2 ~budget:20 planted_cost in
  Alcotest.(check bool)
    (Printf.sprintf "hill climbing (%.0f) beats tiny random (%.0f)"
       r.Search.Strategies.best_cost r0.Search.Strategies.best_cost)
    true
    (r.Search.Strategies.best_cost <= r0.Search.Strategies.best_cost)

let test_exhaustive_finds_optimum () =
  (* enumerate all length-2 sequences and check the planted length-2
     optimum is found *)
  let cost2 seq =
    match seq with
    | [ Pass.Const_prop; Pass.Licm ] -> 0.0
    | _ -> 1.0 +. float_of_int (List.length seq)
  in
  let all2 =
    List.concat_map
      (fun a -> List.map (fun b -> [ a; b ]) Pass.all)
      Pass.all
    |> List.filter valid_seq
  in
  let r = Search.Strategies.exhaustive all2 cost2 in
  Alcotest.(check (float 0.0)) "found optimum" 0.0 r.Search.Strategies.best_cost

let test_genetic_beats_its_initial_population () =
  let r = Search.Strategies.genetic ~seed:5 planted_cost in
  (* first-population best = history at index population-1 *)
  let pop = Search.Strategies.default_ga.Search.Strategies.population in
  let init_best = r.Search.Strategies.history.(pop - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "GA improved %.0f -> %.0f" init_best
       r.Search.Strategies.best_cost)
    true
    (r.Search.Strategies.best_cost < init_best)

(* ------------------------------------------------------------------ *)

let test_seqmodel_fit_and_sample () =
  (* train on many copies of the planted target: samples should mostly
     reproduce it *)
  let train = List.init 20 (fun _ -> planted_target) in
  let m = Search.Seqmodel.Markov (Search.Seqmodel.fit_markov train) in
  let rng = Random.State.make [| 6 |] in
  let hits = ref 0 in
  for _ = 1 to 50 do
    let s = Search.Seqmodel.sample rng m ~length:5 in
    Alcotest.(check bool) "sampled sequence valid" true (valid_seq s);
    if s = planted_target then incr hits
  done;
  (* with Laplace smoothing 0.5 the exact-sequence probability is ~0.2;
     require a healthy multiple of the uniform baseline (250k sequences) *)
  Alcotest.(check bool)
    (Printf.sprintf "peaked model reproduces target often (%d/50)" !hits)
    true (!hits >= 8)

let test_seqmodel_logprob_ranks () =
  let train = List.init 10 (fun _ -> planted_target) in
  let m = Search.Seqmodel.Markov (Search.Seqmodel.fit_markov train) in
  let lp_target = Search.Seqmodel.log_prob m planted_target in
  let lp_other =
    Search.Seqmodel.log_prob m Pass.[ Dce; Dce; Dce; Dce; Dce ]
  in
  Alcotest.(check bool) "target more probable" true (lp_target > lp_other)

let test_seqmodel_iid_marginals () =
  let train = [ [ Pass.Dce; Pass.Dce; Pass.Cse ] ] in
  let m = Search.Seqmodel.fit_iid train in
  let p_dce = m.Search.Seqmodel.probs.(Pass.to_index Pass.Dce) in
  let p_cse = m.Search.Seqmodel.probs.(Pass.to_index Pass.Cse) in
  let p_licm = m.Search.Seqmodel.probs.(Pass.to_index Pass.Licm) in
  Alcotest.(check bool) "dce most frequent" true (p_dce > p_cse);
  Alcotest.(check bool) "cse beats unseen" true (p_cse > p_licm)

let test_seqmodel_respects_unroll_constraint () =
  (* a pathological model that loves unrolling still yields valid seqs *)
  let train = List.init 10 (fun _ -> List.init 1 (fun _ -> Pass.Unroll8)) in
  let m = Search.Seqmodel.Iid (Search.Seqmodel.fit_iid train) in
  let rng = Random.State.make [| 8 |] in
  for _ = 1 to 100 do
    let s = Search.Seqmodel.sample rng m ~length:6 in
    Alcotest.(check bool) "at most one unroll" true (valid_seq s)
  done

let test_focused_search_beats_random_on_planted () =
  (* model trained near the planted optimum focuses the search *)
  let train =
    [
      planted_target;
      Pass.[ Const_prop; Licm; Cse; Unroll4; Peephole ];
      Pass.[ Const_prop; Licm; Dce; Unroll4; Dce ];
    ]
  in
  let m = Search.Seqmodel.Markov (Search.Seqmodel.fit_markov train) in
  let budget = 10 in
  let f = Search.Focused.search ~seed:3 ~budget m planted_cost in
  let rc =
    Search.Strategies.random_averaged ~seed:3 ~budget ~trials:10 planted_cost
  in
  Alcotest.(check bool)
    (Printf.sprintf "focused %.1f < random %.1f at budget %d"
       f.Search.Strategies.best_cost rc.(budget - 1) budget)
    true
    (f.Search.Strategies.best_cost < rc.(budget - 1))

let test_focused_empty_kb_falls_back () =
  let kb = Knowledge.Kb.create () in
  let m =
    Search.Focused.fit_model kb ~arch:"amd-like"
      ~params:Search.Focused.default_params
      ~target_features:[ ("branch_density", 0.1) ]
  in
  (* uniform fallback still produces valid samples *)
  let rng = Random.State.make [| 1 |] in
  let s = Search.Seqmodel.sample rng m ~length:5 in
  Alcotest.(check bool) "fallback sample valid" true (valid_seq s)

let test_nearest_programs_orders_by_distance () =
  let kb = Knowledge.Kb.create () in
  let add prog bd =
    Knowledge.Kb.add_characterization kb
      {
        Knowledge.Kb.prog;
        arch = "amd-like";
        o0_cycles = 1;
        features = [ ("branch_density", bd); ("fp_frac", 0.0) ];
        counters = [];
      }
  in
  add "far" 10.0;
  add "near" 1.0;
  add "mid" 4.0;
  let got =
    Search.Focused.nearest_programs kb ~arch:"amd-like"
      ~target_features:[ ("branch_density", 0.0); ("fp_frac", 0.0) ]
      ~n:3
  in
  Alcotest.(check (list string)) "ordered" [ "near"; "mid"; "far" ] got

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "space",
      [
        t "cardinality" test_space_cardinality;
        t "sample distinct" test_sample_distinct;
        t "projection" test_projection_indices;
      ] );
    ( "space-properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_random_seq_valid; prop_mutate_valid; prop_crossover_valid ] );
    ( "strategies",
      [
        t "history monotone" test_history_monotone;
        t "deterministic" test_random_deterministic;
        t "hill climb" test_hill_climb_improves;
        t "exhaustive optimum" test_exhaustive_finds_optimum;
        t "genetic improves" test_genetic_beats_its_initial_population;
      ] );
    ( "seqmodel",
      [
        t "fit and sample" test_seqmodel_fit_and_sample;
        t "logprob ranks" test_seqmodel_logprob_ranks;
        t "iid marginals" test_seqmodel_iid_marginals;
        t "unroll constraint" test_seqmodel_respects_unroll_constraint;
      ] );
    ( "focused",
      [
        t "beats random on planted" test_focused_search_beats_random_on_planted;
        t "empty kb fallback" test_focused_empty_kb_falls_back;
        t "nearest ordering" test_nearest_programs_orders_by_distance;
      ] );
  ]

let () = Alcotest.run "search" suite
