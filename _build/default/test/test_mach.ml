(* Tests for the machine simulator: cache model invariants, predictor
   behaviour, counter consistency, timing monotonicity, and microbenchmark
   characterization against ground truth. *)

module C = Mach.Counters

let compile = Mira.Lower.compile_source_exn

let sim ?config src = Mach.Sim.run ?config (compile src)

(* ------------------------------------------------------------------ *)
(* cache unit tests *)

let mk_cache ?(size = 1024) ?(assoc = 2) ?(line = 64) () =
  Mach.Cache.make { Mach.Cache.size_bytes = size; assoc; line_bytes = line }

let test_cache_basic_hit_miss () =
  let c = mk_cache () in
  let o1 = Mach.Cache.access c ~addr:0 ~write:false in
  Alcotest.(check bool) "cold miss" false o1.Mach.Cache.hit;
  let o2 = Mach.Cache.access c ~addr:8 ~write:false in
  Alcotest.(check bool) "same line hits" true o2.Mach.Cache.hit;
  let o3 = Mach.Cache.access c ~addr:64 ~write:false in
  Alcotest.(check bool) "next line misses" false o3.Mach.Cache.hit

let test_cache_lru () =
  (* 1024B, 2-way, 64B lines -> 8 sets; addresses mapping to set 0 are
     multiples of 512 *)
  let c = mk_cache () in
  let a0 = 0 and a1 = 512 and a2 = 1024 in
  ignore (Mach.Cache.access c ~addr:a0 ~write:false);
  ignore (Mach.Cache.access c ~addr:a1 ~write:false);
  (* touch a0 so a1 becomes LRU *)
  ignore (Mach.Cache.access c ~addr:a0 ~write:false);
  ignore (Mach.Cache.access c ~addr:a2 ~write:false);
  (* a1 must have been evicted, a0 retained *)
  let o0 = Mach.Cache.access c ~addr:a0 ~write:false in
  Alcotest.(check bool) "a0 retained" true o0.Mach.Cache.hit;
  let o1 = Mach.Cache.access c ~addr:a1 ~write:false in
  Alcotest.(check bool) "a1 evicted" false o1.Mach.Cache.hit

let test_cache_writeback () =
  let c = mk_cache ~assoc:1 () in
  ignore (Mach.Cache.access c ~addr:0 ~write:true);
  (* conflicting line in a direct-mapped cache: evicts the dirty line *)
  let o = Mach.Cache.access c ~addr:1024 ~write:false in
  (match o.Mach.Cache.writeback with
   | Some addr -> Alcotest.(check int) "writeback addr" 0 addr
   | None -> Alcotest.fail "expected writeback of dirty line");
  (* clean eviction produces no writeback *)
  let o2 = Mach.Cache.access c ~addr:0 ~write:false in
  Alcotest.(check bool) "miss again" false o2.Mach.Cache.hit;
  Alcotest.(check bool) "clean eviction" true (o2.Mach.Cache.writeback = None)

let test_cache_rejects_bad_config () =
  let bad size assoc line =
    match Mach.Cache.make { Mach.Cache.size_bytes = size; assoc; line_bytes = line } with
    | _ -> Alcotest.fail "expected invalid_arg"
    | exception Invalid_argument _ -> ()
  in
  bad 1000 2 48;   (* line not power of two *)
  bad 32 2 64;     (* smaller than a line *)
  bad 1024 3 64    (* assoc does not divide line count *)

let prop_cache_counts =
  QCheck.Test.make ~name:"cache: hits + misses = accesses" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_bound 4095))
    (fun addrs ->
      let c = mk_cache () in
      let hits = ref 0 in
      List.iter
        (fun a ->
          let o = Mach.Cache.access c ~addr:a ~write:(a mod 3 = 0) in
          if o.Mach.Cache.hit then incr hits)
        addrs;
      c.Mach.Cache.accesses = List.length addrs
      && c.Mach.Cache.misses + !hits = c.Mach.Cache.accesses)

let prop_cache_fits_all_hits =
  QCheck.Test.make ~name:"cache: second scan of fitting footprint all hits"
    ~count:50
    QCheck.(int_range 1 16)
    (fun nlines ->
      let c = mk_cache ~size:1024 ~assoc:2 ~line:64 () in
      (* 1024B cache = 16 lines: any footprint <= 16 lines scanned twice
         has no misses in the second scan (LRU, footprint fits) *)
      for i = 0 to nlines - 1 do
        ignore (Mach.Cache.access c ~addr:(i * 64) ~write:false)
      done;
      let second_hits = ref true in
      for i = 0 to nlines - 1 do
        let o = Mach.Cache.access c ~addr:(i * 64) ~write:false in
        if not o.Mach.Cache.hit then second_hits := false
      done;
      !second_hits)

(* ------------------------------------------------------------------ *)
(* predictor *)

let test_predictor_learns_loop () =
  let p = Mach.Predictor.make ~size:16 () in
  (* a loop branch taken 100 times then not taken: at most a couple of
     mispredictions *)
  let mis = ref 0 in
  for _ = 1 to 100 do
    if Mach.Predictor.update p 3 ~taken:true then incr mis
  done;
  if Mach.Predictor.update p 3 ~taken:false then incr mis;
  Alcotest.(check bool)
    (Printf.sprintf "few mispredictions (%d)" !mis)
    true (!mis <= 2)

let test_predictor_alternating_is_bad () =
  let p = Mach.Predictor.make ~size:16 () in
  let mis = ref 0 in
  for i = 0 to 99 do
    if Mach.Predictor.update p 5 ~taken:(i mod 2 = 0) then incr mis
  done;
  Alcotest.(check bool)
    (Printf.sprintf "alternating defeats bimodal (%d/100)" !mis)
    true
    (!mis >= 40)

(* ------------------------------------------------------------------ *)
(* simulator end-to-end *)

let loop_src n =
  Printf.sprintf
    {|fn main() -> int {
        var s: int = 0;
        for i = 0 to %d { s = s + i; }
        return s;
      }|}
    n

let test_sim_deterministic () =
  let r1 = sim (loop_src 1000) and r2 = sim (loop_src 1000) in
  Alcotest.(check int) "same cycles" r1.Mach.Sim.cycles r2.Mach.Sim.cycles

let test_sim_matches_interp_semantics () =
  let src = loop_src 500 in
  let p = compile src in
  let ri = Mira.Interp.run p in
  let rs = Mach.Sim.run p in
  Alcotest.(check string) "same result"
    (Mira.Interp.value_to_string ri.Mira.Interp.ret)
    (Mira.Interp.value_to_string rs.Mach.Sim.ret);
  Alcotest.(check int) "same step count" ri.Mira.Interp.steps rs.Mach.Sim.steps

let test_sim_cycles_scale () =
  let c1 = (sim (loop_src 1000)).Mach.Sim.cycles in
  let c2 = (sim (loop_src 2000)).Mach.Sim.cycles in
  let ratio = float_of_int c2 /. float_of_int c1 in
  Alcotest.(check bool)
    (Printf.sprintf "doubling work ~doubles cycles (%.2f)" ratio)
    true
    (ratio > 1.8 && ratio < 2.2)

let test_sim_counter_consistency () =
  let r =
    sim
      {|fn main() -> int {
          var a: int[256];
          var s: int = 0;
          for i = 0 to 256 { a[i] = i; }
          for i = 0 to 256 { if (a[i] % 2 == 0) { s = s + a[i]; } }
          return s;
        }|}
  in
  let b = r.Mach.Sim.counters in
  let g = C.get b in
  Alcotest.(check int) "tot_ins matches engine steps"
    r.Mach.Sim.steps (g C.TOT_INS + g C.BR_INS
                      + (g C.CALL_INS * 0)
                      + (r.Mach.Sim.steps - g C.TOT_INS - g C.BR_INS));
  (* structural identities *)
  Alcotest.(check int) "L1 accesses = loads + stores"
    (g C.LD_INS + g C.SR_INS) (g C.L1_TCA);
  Alcotest.(check bool) "L1 misses <= accesses" true (g C.L1_TCM <= g C.L1_TCA);
  Alcotest.(check bool) "L2 misses <= L2 accesses" true (g C.L2_TCM <= g C.L2_TCA);
  Alcotest.(check int) "L1 miss split" (g C.L1_TCM) (g C.L1_LDM + g C.L1_STM);
  Alcotest.(check bool) "branches taken <= branches" true (g C.BR_TKN <= g C.BR_INS);
  Alcotest.(check bool) "mispredicts <= branches" true (g C.BR_MSP <= g C.BR_INS);
  Alcotest.(check bool) "cycles > 0" true (g C.TOT_CYC > 0)

let test_sim_memory_bound_costs_more () =
  (* same instruction count, different locality: strided scan over a
     footprint >> L2 must cost more cycles than a small cyclic scan *)
  let mk n =
    Printf.sprintf
      {|global buf: int[%d];
        fn main() -> int {
          var s: int = 0;
          var idx: int = 0;
          for it = 0 to 65536 {
            s = s + buf[idx];
            idx = idx + 8;
            if (idx >= %d) { idx = idx - %d; }
          }
          return s;
        }|}
      n n n
  in
  let small = (sim (mk 512)).Mach.Sim.cycles in
  let big = (sim (mk 1048576)).Mach.Sim.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "thrashing costs more (%d vs %d)" small big)
    true
    (big > 3 * small)

let test_sim_issue_width_matters () =
  (* ALU-dense code benefits from the VLIW-ish preset *)
  let src =
    {|fn main() -> int {
        var s: int = 0;
        for i = 0 to 10000 {
          s = s + (i & 3) + (i ^ 5) - (i | 7) + (i & 11) + (i ^ 13) - (i | 17);
        }
        return s;
      }|}
  in
  let narrow = (sim ~config:Mach.Config.embedded src).Mach.Sim.cycles in
  let wide = (sim ~config:Mach.Config.c6713_like src).Mach.Sim.cycles in
  (* the issue model is dependence-limited, and this kernel's accumulator
     chain caps packing well below the full width; 1.3x is the honest
     expectation *)
  Alcotest.(check bool)
    (Printf.sprintf "wide issue faster (%d vs %d)" wide narrow)
    true (float_of_int wide *. 1.3 < float_of_int narrow)

let test_sim_optimization_reduces_cycles () =
  let p =
    compile
      {|fn main() -> int {
          var a: int = 6;
          var b: int = 7;
          var s: int = 0;
          for i = 0 to 5000 { s = s + a * b + i * 4; }
          return s;
        }|}
  in
  let c0 = (Mach.Sim.run p).Mach.Sim.cycles in
  let p' = Passes.Pass.apply_sequence Passes.Pass.ofast p in
  let c1 = (Mach.Sim.run p').Mach.Sim.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "Ofast reduces cycles (%d -> %d)" c0 c1)
    true
    (float_of_int c1 < 0.7 *. float_of_int c0)

(* ------------------------------------------------------------------ *)
(* microbenchmark characterization (tab4 ground truth check) *)

let test_characterize_default () =
  let cfg = Mach.Config.default in
  let r = Mach.Microbench.characterize cfg in
  let l1_true = cfg.Mach.Config.l1.Mach.Cache.size_bytes in
  let l2_true = cfg.Mach.Config.l2.Mach.Cache.size_bytes in
  let line_true = cfg.Mach.Config.l1.Mach.Cache.line_bytes in
  let within ~got ~truth = got = truth || got = truth / 2 || got = truth * 2 in
  Alcotest.(check bool)
    (Printf.sprintf "L1 recovered %d (true %d)" r.Mach.Microbench.l1_bytes l1_true)
    true
    (within ~got:r.Mach.Microbench.l1_bytes ~truth:l1_true);
  Alcotest.(check bool)
    (Printf.sprintf "L2 recovered %d (true %d)" r.Mach.Microbench.l2_bytes l2_true)
    true
    (within ~got:r.Mach.Microbench.l2_bytes ~truth:l2_true);
  Alcotest.(check bool)
    (Printf.sprintf "line recovered %d (true %d)" r.Mach.Microbench.line_bytes line_true)
    true
    (within ~got:r.Mach.Microbench.line_bytes ~truth:line_true)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "cache",
      [
        t "hit/miss" test_cache_basic_hit_miss;
        t "lru" test_cache_lru;
        t "writeback" test_cache_writeback;
        t "config validation" test_cache_rejects_bad_config;
      ] );
    ( "cache-properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_cache_counts; prop_cache_fits_all_hits ] );
    ( "predictor",
      [
        t "learns loops" test_predictor_learns_loop;
        t "alternating hard" test_predictor_alternating_is_bad;
      ] );
    ( "sim",
      [
        t "deterministic" test_sim_deterministic;
        t "semantics preserved" test_sim_matches_interp_semantics;
        t "cycles scale" test_sim_cycles_scale;
        t "counter consistency" test_sim_counter_consistency;
        t "memory-bound slower" test_sim_memory_bound_costs_more;
        t "issue width" test_sim_issue_width_matters;
        t "optimization helps" test_sim_optimization_reduces_cycles;
      ] );
    ("microbench", [ t "recovers hierarchy" test_characterize_default ]);
  ]

let () = Alcotest.run "mach" suite
