(* Tests for the intelligent-compiler core: feature extraction,
   characterization, the performance-counter model, the optimization
   controller, the tournament predictor, and the dynamic optimizer.
   Small programs keep every test fast. *)

let compile = Mira.Lower.compile_source_exn

let tiny_loop =
  compile
    {|fn main() -> int {
        var s: int = 0;
        for i = 0 to 200 { s = s + i * 3; }
        return s % 1000;
      }|}

let tiny_float =
  compile
    {|fn main() -> int {
        var acc: float = 0.0;
        for i = 0 to 100 { acc = acc + float(i) * 0.5; }
        print(acc);
        return int(acc) % 100;
      }|}

let tiny_mem =
  compile
    {|global g: int[512];
      fn main() -> int {
        for i = 0 to 512 { g[i] = i; }
        var s: int = 0;
        for i = 0 to 512 { s = s + g[i]; }
        return s % 997;
      }|}

let tiny_branchy =
  compile
    {|fn main() -> int {
        var s: int = 0;
        for i = 0 to 300 {
          if (i % 3 == 0) { s = s + 1; } else { s = s - 1; }
          if (i % 7 == 0) { s = s + 5; }
        }
        return s;
      }|}

let tiny_rec =
  compile
    {|fn f(n: int) -> int { if (n < 2) { return 1; } return f(n - 1) + n; }
      fn main() -> int { return f(40); }|}

let training =
  [
    ("tloop", tiny_loop); ("tfloat", tiny_float); ("tmem", tiny_mem);
    ("tbranchy", tiny_branchy); ("trec", tiny_rec);
  ]

let small_kb =
  lazy (Icc.Characterize.build_kb ~seed:7 ~per_program:12 training)

(* ------------------------------------------------------------------ *)
(* features *)

let test_feature_names_aligned () =
  let f = Icc.Features.extract tiny_loop in
  Alcotest.(check int) "all names produced"
    (List.length Icc.Features.names)
    (List.length f);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem_assoc n f))
    Icc.Features.names

let feat name p = List.assoc name (Icc.Features.extract p)

let test_feature_values () =
  Alcotest.(check (float 0.0)) "loop count" 1.0 (feat "n_loops" tiny_loop);
  Alcotest.(check (float 0.0)) "no fp in int loop" 0.0 (feat "fp_ops" tiny_loop);
  Alcotest.(check bool) "float prog has fp" true (feat "fp_frac" tiny_float > 0.1);
  Alcotest.(check bool) "mem prog has mem density" true
    (feat "mem_density" tiny_mem > feat "mem_density" tiny_loop);
  Alcotest.(check (float 0.0)) "recursion flag" 1.0 (feat "recursive" tiny_rec);
  Alcotest.(check (float 0.0)) "non-recursive" 0.0 (feat "recursive" tiny_loop);
  Alcotest.(check bool) "branchy density higher" true
    (feat "branch_density" tiny_branchy > feat "branch_density" tiny_mem)

let test_feature_vector_stable () =
  let v1 = Icc.Features.vector_of_program tiny_loop in
  let v2 = Icc.Features.vector_of_program tiny_loop in
  Alcotest.(check bool) "deterministic" true (v1 = v2);
  Alcotest.(check int) "dimension" (List.length Icc.Features.names)
    (Array.length v1)

(* ------------------------------------------------------------------ *)
(* characterization & KB building *)

let test_characterize_fields () =
  let c = Icc.Characterize.characterize ~prog:"tloop" tiny_loop in
  Alcotest.(check string) "prog name" "tloop" c.Knowledge.Kb.prog;
  Alcotest.(check string) "arch" "amd-like" c.Knowledge.Kb.arch;
  Alcotest.(check bool) "cycles positive" true (c.Knowledge.Kb.o0_cycles > 0);
  (* normalized counters are per-instruction rates *)
  List.iter
    (fun (n, v) ->
      if n <> "TOT_CYC" then
        Alcotest.(check bool) (n ^ " is a rate") true (v >= 0.0 && v <= 8.0))
    c.Knowledge.Kb.counters

let test_build_kb_contents () =
  let kb = Lazy.force small_kb in
  Alcotest.(check (list string)) "all programs characterized"
    [ "tbranchy"; "tfloat"; "tloop"; "tmem"; "trec" ]
    (Knowledge.Kb.programs kb);
  List.iter
    (fun (name, _) ->
      let exps = Knowledge.Kb.experiments kb ~prog:name ~arch:"amd-like" in
      (* 12 random + O0 + O2 + Ofast *)
      Alcotest.(check int) (name ^ " experiment count") 15 (List.length exps))
    training

let test_eval_sequence_traps_are_infinite () =
  let trapping = compile "fn main() -> int { var z: int = 0; return 1 / z; }" in
  Alcotest.(check bool) "trap -> infinity" true
    (Icc.Characterize.eval_sequence trapping [] = infinity)

(* ------------------------------------------------------------------ *)
(* PC model *)

let test_pcmodel_self_consistent () =
  let kb = Lazy.force small_kb in
  match Icc.Pcmodel.train kb ~arch:"amd-like" with
  | None -> Alcotest.fail "pcmodel failed to train"
  | Some model ->
    (* predicting with a training program's own counters returns that
       program as its own nearest neighbour *)
    List.iter
      (fun (name, _) ->
        match Knowledge.Kb.characterization kb ~prog:name ~arch:"amd-like" with
        | None -> Alcotest.fail "missing characterization"
        | Some c -> begin
          match Icc.Pcmodel.neighbors model c.Knowledge.Kb.counters with
          | (nearest, _, d) :: _ ->
            Alcotest.(check string) (name ^ " self-nearest") name nearest;
            Alcotest.(check bool) "distance 0" true (d < 1e-9)
          | [] -> Alcotest.fail "no neighbours"
        end)
      training

let test_pcmodel_prediction_beats_o0 () =
  let kb = Lazy.force small_kb in
  match Icc.Pcmodel.train kb ~arch:"amd-like" with
  | None -> Alcotest.fail "no model"
  | Some model ->
    (* a fresh program similar to tiny_loop *)
    let p =
      compile
        {|fn main() -> int {
            var s: int = 0;
            for i = 0 to 400 { s = s + i * 5; }
            return s % 777;
          }|}
    in
    let r = Mach.Sim.run p in
    let counters = Icc.Characterize.counter_assoc r.Mach.Sim.counters in
    let seq = Icc.Pcmodel.predict model counters in
    let c0 = Icc.Characterize.eval_sequence p [] in
    let c1 = Icc.Characterize.eval_sequence p seq in
    Alcotest.(check bool)
      (Printf.sprintf "predicted sequence helps (%.0f -> %.0f)" c0 c1)
      true (c1 <= c0)

let test_pcmodel_candidates_distinct () =
  let kb = Lazy.force small_kb in
  match Icc.Pcmodel.train kb ~arch:"amd-like" with
  | None -> Alcotest.fail "no model"
  | Some model ->
    let c =
      match Knowledge.Kb.characterization kb ~prog:"tloop" ~arch:"amd-like" with
      | Some c -> c
      | None -> Alcotest.fail "no char"
    in
    let cands = Icc.Pcmodel.candidates model ~k:5 c.Knowledge.Kb.counters in
    let keys = List.map Passes.Pass.sequence_to_string cands in
    Alcotest.(check int) "candidates are distinct"
      (List.length keys)
      (List.length (List.sort_uniq compare keys))

(* ------------------------------------------------------------------ *)
(* controller *)

let test_one_shot_behaviour_preserved () =
  let kb = Lazy.force small_kb in
  let p = tiny_branchy in
  let c = Icc.Controller.one_shot kb p in
  Alcotest.(check int) "no target runs" 0 c.Icc.Controller.decision.Icc.Controller.evaluations;
  let before = Mira.Interp.observe p in
  let after = Mira.Interp.observe c.Icc.Controller.program in
  Alcotest.(check bool) "behaviour preserved" true
    (Mira.Interp.equal_observation before after)

let test_one_shot_counters_runs_profile () =
  let kb = Lazy.force small_kb in
  let c = Icc.Controller.one_shot_counters ~trials:2 kb tiny_mem in
  Alcotest.(check bool) "profiling run counted" true
    (c.Icc.Controller.decision.Icc.Controller.evaluations >= 1);
  let before = Mira.Interp.observe tiny_mem in
  let after = Mira.Interp.observe c.Icc.Controller.program in
  Alcotest.(check bool) "behaviour preserved" true
    (Mira.Interp.equal_observation before after)

let test_iterative_improves () =
  let kb = Lazy.force small_kb in
  let p = tiny_loop in
  let compiled, result = Icc.Controller.iterative ~seed:3 ~budget:8 kb p in
  let c0 = Icc.Characterize.eval_sequence p [] in
  Alcotest.(check bool)
    (Printf.sprintf "found improvement (%.0f -> %.0f)" c0
       result.Search.Strategies.best_cost)
    true
    (result.Search.Strategies.best_cost < c0);
  let before = Mira.Interp.observe p in
  let after = Mira.Interp.observe compiled.Icc.Controller.program in
  Alcotest.(check bool) "behaviour preserved" true
    (Mira.Interp.equal_observation before after)

(* ------------------------------------------------------------------ *)
(* tournament *)

let test_tournament_instances_symmetric () =
  let insts = Icc.Tournament.gen_instances ~seed:2 ~steps:2 ~pairs_per_step:4 tiny_loop in
  (* instances come in mirrored pairs with opposite labels *)
  Alcotest.(check bool) "even count" true (List.length insts mod 2 = 0);
  let ones = List.length (List.filter (fun i -> i.Icc.Tournament.label = 1) insts) in
  Alcotest.(check int) "half are wins" (List.length insts / 2) ones

let test_tournament_orders () =
  let insts =
    List.concat_map
      (fun (_, p) ->
        Icc.Tournament.gen_instances ~seed:4 ~steps:2 ~pairs_per_step:5 p)
      [ ("a", tiny_loop); ("b", tiny_mem) ]
  in
  match Icc.Tournament.train insts with
  | None -> Alcotest.fail "no tournament model"
  | Some model ->
    let seq = Icc.Tournament.order model ~steps:5 tiny_branchy in
    Alcotest.(check int) "produces a full ordering"
      (5 + List.length Icc.Tournament.completion)
      (List.length seq);
    Alcotest.(check bool) "ordering is valid" true
      (Passes.Pass.sequence_valid seq);
    (* applying the learned ordering preserves behaviour *)
    let before = Mira.Interp.observe tiny_branchy in
    let after =
      Mira.Interp.observe (Passes.Pass.apply_sequence seq tiny_branchy)
    in
    Alcotest.(check bool) "behaviour preserved" true
      (Mira.Interp.equal_observation before after)

(* ------------------------------------------------------------------ *)
(* trip-count features *)

let test_const_trip_counts () =
  let p =
    compile
      {|fn main() -> int {
          var s: int = 0;
          for i = 0 to 3 { s = s + i; }
          for j = 5 to 100 step 2 { s = s + j; }
          var n: int = s % 7;
          for k = 0 to n { s = s + k; }
          return s;
        }|}
  in
  let f = Mira.Ir.find_func p "main" in
  let trips = List.sort compare (Icc.Features.const_trip_counts f) in
  (* the variable-bound loop contributes nothing; 3 trips and 48 trips *)
  Alcotest.(check (list int)) "literal-bound trips" [ 3; 48 ] trips

let test_trip_features_distinguish () =
  let short =
    compile
      {|fn main() -> int {
          var s: int = 0;
          for it = 0 to 1000 { for j = 0 to 2 { s = s + j; } }
          return s;
        }|}
  in
  let long =
    compile
      {|fn main() -> int {
          var s: int = 0;
          for i = 0 to 512 { s = s + i; }
          return s;
        }|}
  in
  let f name p = List.assoc name (Icc.Features.extract p) in
  Alcotest.(check bool) "short-trip fraction separates programs" true
    (f "short_trip_frac" short > f "short_trip_frac" long);
  Alcotest.(check bool) "avg trip separates programs" true
    (f "avg_const_trip" short < f "avg_const_trip" long)

(* ------------------------------------------------------------------ *)
(* per-function (method-specific) compilation *)

let hetero_prog =
  compile
    {|fn helper(k: int) -> int {
        var s: int = 0;
        for j = 0 to 2 { s = s + k * 3 + j; }
        return s & 1023;
      }
      fn kernel() -> int {
        var acc: int = 0;
        for i = 0 to 400 { acc = (acc + i * 5) & 65535; }
        return acc;
      }
      fn main() -> int {
        var t: int = 0;
        for it = 0 to 500 { t = (t + helper(it)) & 65535; }
        t = (t + kernel()) & 65535;
        return t;
      }|}

let test_apply_per_function_preserves () =
  let choice fname =
    if fname = "kernel" then
      Passes.Pass.[ Const_prop; Const_fold; Licm; Unroll4; Cse; Dce ]
    else Passes.Pass.[ Simplify_cfg; Peephole; Dce ]
  in
  let p' = Passes.Pass.apply_per_function choice hetero_prog in
  Alcotest.(check (list string)) "well-formed" [] (Mira.Ir.check_program p');
  Alcotest.(check bool) "behaviour preserved" true
    (Mira.Interp.equal_observation
       (Mira.Interp.observe hetero_prog)
       (Mira.Interp.observe p'))

let test_apply_to_function_is_local () =
  let p' =
    Passes.Pass.apply_to_function Passes.Pass.Unroll4
      (Passes.Pass.apply_to_function Passes.Pass.Const_prop hetero_prog "kernel")
      "kernel"
  in
  (* only kernel changed *)
  let same name =
    Mira.Ir.func_to_string (Mira.Ir.find_func hetero_prog name)
    = Mira.Ir.func_to_string (Mira.Ir.find_func p' name)
  in
  Alcotest.(check bool) "helper untouched" true (same "helper");
  Alcotest.(check bool) "main untouched" true (same "main");
  Alcotest.(check bool) "kernel changed" false (same "kernel")

let test_apply_to_function_rejects_global_passes () =
  (match Passes.Pass.apply_to_function Passes.Pass.Inline hetero_prog "main" with
   | _ -> Alcotest.fail "inline accepted per-function"
   | exception Invalid_argument _ -> ());
  match Passes.Pass.apply_to_function Passes.Pass.Pack hetero_prog "main" with
  | _ -> Alcotest.fail "pack accepted per-function"
  | exception Invalid_argument _ -> ()

let test_perfunc_pipeline () =
  let insts =
    Icc.Perfunc.gen_instances ~prog:"hetero" hetero_prog
  in
  Alcotest.(check bool) "some decision-relevant functions" true
    (List.length insts >= 1);
  match Icc.Perfunc.train insts with
  | None -> Alcotest.fail "no model"
  | Some model ->
    let p', choices = Icc.Perfunc.compile model hetero_prog in
    Alcotest.(check int) "choice per function" 3 (List.length choices);
    Alcotest.(check bool) "behaviour preserved" true
      (Mira.Interp.equal_observation
         (Mira.Interp.observe hetero_prog)
         (Mira.Interp.observe p'))

(* ------------------------------------------------------------------ *)
(* dynamic optimization *)

let test_dynamic_detects_phases_and_wins () =
  let intervals = Icc.Dynamic.phased_intervals ~phases:4 ~per_phase:6 () in
  let r = Icc.Dynamic.run Icc.Dynamic.default_config intervals in
  Alcotest.(check bool) "phase changes detected" true
    (r.Icc.Dynamic.phase_changes_detected >= 2);
  Alcotest.(check bool)
    (Printf.sprintf "dynamic (%d) beats O0 (%d)" r.Icc.Dynamic.total_cycles
       r.Icc.Dynamic.o0_cycles)
    true
    (r.Icc.Dynamic.total_cycles < r.Icc.Dynamic.o0_cycles);
  Alcotest.(check bool) "oracle is a lower bound" true
    (r.Icc.Dynamic.oracle_cycles <= r.Icc.Dynamic.static_best_cycles);
  Alcotest.(check bool) "dynamic >= oracle" true
    (r.Icc.Dynamic.total_cycles >= r.Icc.Dynamic.oracle_cycles)

let test_dynamic_beats_static_on_phased () =
  let intervals = Icc.Dynamic.phased_intervals ~phases:6 ~per_phase:8 () in
  let r = Icc.Dynamic.run Icc.Dynamic.default_config intervals in
  Alcotest.(check bool)
    (Printf.sprintf "dynamic (%d) <= static best %s (%d)"
       r.Icc.Dynamic.total_cycles r.Icc.Dynamic.static_best_name
       r.Icc.Dynamic.static_best_cycles)
    true
    (r.Icc.Dynamic.total_cycles < r.Icc.Dynamic.static_best_cycles)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "features",
      [
        t "names aligned" test_feature_names_aligned;
        t "values" test_feature_values;
        t "stable vector" test_feature_vector_stable;
      ] );
    ( "characterize",
      [
        t "fields" test_characterize_fields;
        t "kb contents" test_build_kb_contents;
        t "trap is infinite" test_eval_sequence_traps_are_infinite;
      ] );
    ( "pcmodel",
      [
        t "self consistent" test_pcmodel_self_consistent;
        t "prediction helps" test_pcmodel_prediction_beats_o0;
        t "candidates distinct" test_pcmodel_candidates_distinct;
      ] );
    ( "controller",
      [
        t "one shot" test_one_shot_behaviour_preserved;
        t "one shot counters" test_one_shot_counters_runs_profile;
        t "iterative" test_iterative_improves;
      ] );
    ( "tournament",
      [
        t "symmetric instances" test_tournament_instances_symmetric;
        t "orders passes" test_tournament_orders;
      ] );
    ( "trip-features",
      [
        t "const trip counts" test_const_trip_counts;
        t "distinguish programs" test_trip_features_distinguish;
      ] );
    ( "perfunc",
      [
        t "apply per function preserves" test_apply_per_function_preserves;
        t "apply to function is local" test_apply_to_function_is_local;
        t "rejects whole-program passes" test_apply_to_function_rejects_global_passes;
        t "end to end" test_perfunc_pipeline;
      ] );
    ( "dynamic",
      [
        t "phases and wins" test_dynamic_detects_phases_and_wins;
        t "beats static" test_dynamic_beats_static_on_phased;
      ] );
  ]

let () = Alcotest.run "icc" suite
