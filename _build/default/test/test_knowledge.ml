(* Tests for the knowledge base: construction, queries, the leave-one-out
   protocol, and exact save/load round-trips of the standard format. *)

module Kb = Knowledge.Kb
module Pass = Passes.Pass

let mk_char prog arch =
  {
    Kb.prog;
    arch;
    o0_cycles = 1000;
    features = [ ("branch_density", 0.125); ("fp_frac", 0.5) ];
    counters = [ ("L1_TCM", 0.01); ("BR_MSP", 0.002) ];
  }

let mk_exp ?(arch = "amd-like") prog seq cycles =
  { Kb.eprog = prog; earch = arch; seq; cycles; code_size = 100 }

let sample_kb () =
  let kb = Kb.create () in
  Kb.add_characterization kb (mk_char "p1" "amd-like");
  Kb.add_characterization kb (mk_char "p2" "amd-like");
  Kb.add_experiment kb (mk_exp "p1" [ Pass.Const_prop; Pass.Unroll4 ] 900);
  Kb.add_experiment kb (mk_exp "p1" [ Pass.Dce ] 950);
  Kb.add_experiment kb (mk_exp "p1" [] 1000);
  Kb.add_experiment kb (mk_exp "p2" [ Pass.Cse ] 800);
  Kb.add_experiment kb (mk_exp "p2" Pass.ofast 700);
  kb

let test_best () =
  let kb = sample_kb () in
  (match Kb.best kb ~prog:"p1" ~arch:"amd-like" with
   | Some e -> Alcotest.(check int) "p1 best" 900 e.Kb.cycles
   | None -> Alcotest.fail "no best for p1");
  (match Kb.best kb ~prog:"p2" ~arch:"amd-like" with
   | Some e -> Alcotest.(check int) "p2 best" 700 e.Kb.cycles
   | None -> Alcotest.fail "no best for p2");
  Alcotest.(check bool) "missing program" true
    (Kb.best kb ~prog:"nope" ~arch:"amd-like" = None)

let test_good_experiments () =
  let kb = sample_kb () in
  let good = Kb.good_experiments kb ~prog:"p1" ~arch:"amd-like" ~within:1.06 in
  Alcotest.(check int) "within 6% of 900" 2 (List.length good);
  let all = Kb.good_experiments kb ~prog:"p1" ~arch:"amd-like" ~within:1.2 in
  Alcotest.(check int) "within 20%" 3 (List.length all)

let test_top_experiments () =
  let kb = sample_kb () in
  let top = Kb.top_experiments kb ~prog:"p1" ~arch:"amd-like" ~k:2 () in
  Alcotest.(check (list int)) "ordered by cycles" [ 900; 950 ]
    (List.map (fun e -> e.Kb.cycles) top);
  (* length filter: only the length-1 sequences *)
  let l1 = Kb.top_experiments kb ~prog:"p1" ~arch:"amd-like" ~k:5 ~length:1 () in
  Alcotest.(check (list int)) "length-filtered" [ 950 ]
    (List.map (fun e -> e.Kb.cycles) l1)

let test_leave_one_out () =
  let kb = sample_kb () in
  let kb' = Kb.without_program kb ~prog:"p1" in
  Alcotest.(check bool) "p1 char gone" true
    (Kb.characterization kb' ~prog:"p1" ~arch:"amd-like" = None);
  Alcotest.(check int) "p1 exps gone" 0
    (List.length (Kb.experiments kb' ~prog:"p1" ~arch:"amd-like"));
  Alcotest.(check int) "p2 intact" 2
    (List.length (Kb.experiments kb' ~prog:"p2" ~arch:"amd-like"));
  (* original untouched *)
  Alcotest.(check int) "original intact" 3
    (List.length (Kb.experiments kb ~prog:"p1" ~arch:"amd-like"))

let test_characterization_replaces () =
  let kb = Kb.create () in
  Kb.add_characterization kb (mk_char "p" "amd-like");
  Kb.add_characterization kb
    { (mk_char "p" "amd-like") with Kb.o0_cycles = 42 };
  Alcotest.(check int) "one char kept" 1 (List.length kb.Kb.chars);
  match Kb.characterization kb ~prog:"p" ~arch:"amd-like" with
  | Some c -> Alcotest.(check int) "newest wins" 42 c.Kb.o0_cycles
  | None -> Alcotest.fail "missing"

let test_roundtrip () =
  let kb = sample_kb () in
  let s = Kb.to_string kb in
  let kb' = Kb.of_string s in
  Alcotest.(check string) "round trip is exact" s (Kb.to_string kb');
  Alcotest.(check int) "same exp count" (Kb.size kb) (Kb.size kb');
  (* feature floats survive exactly thanks to %h *)
  match Kb.characterization kb' ~prog:"p1" ~arch:"amd-like" with
  | Some c ->
    Alcotest.(check (float 0.0)) "exact float" 0.125
      (List.assoc "branch_density" c.Kb.features)
  | None -> Alcotest.fail "missing char after round trip"

let test_file_roundtrip () =
  let kb = sample_kb () in
  let path = Filename.temp_file "kbtest" ".kb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Kb.save kb path;
      let kb' = Kb.load path in
      Alcotest.(check string) "file round trip" (Kb.to_string kb)
        (Kb.to_string kb'))

let test_parse_errors () =
  let bad s =
    match Kb.of_string s with
    | _ -> Alcotest.failf "accepted malformed input: %s" s
    | exception Kb.Parse_error _ -> ()
  in
  bad "";
  bad "wrong-magic\n";
  bad "mira-kb 1\ngarbage line\n";
  bad "mira-kb 1\nexp|p|a|notapass|100|5\n";
  bad "mira-kb 1\nexp|p|a|dce|xyz|5\n";
  bad "mira-kb 1\nchar|p|a|12|f:bad|c:\n"

let prop_roundtrip_random =
  QCheck.Test.make ~name:"kb round-trips arbitrary contents" ~count:50
    QCheck.(
      list_of_size (QCheck.Gen.int_range 1 10)
        (pair (int_bound 4) (int_bound 100000)))
    (fun entries ->
      let kb = Kb.create () in
      let rng = Random.State.make [| 7 |] in
      List.iter
        (fun (pi, cycles) ->
          let prog = Printf.sprintf "prog%d" pi in
          Kb.add_experiment kb
            (mk_exp prog (Search.Space.random_seq rng ()) cycles))
        entries;
      Kb.to_string (Kb.of_string (Kb.to_string kb)) = Kb.to_string kb)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "queries",
      [
        t "best" test_best;
        t "good experiments" test_good_experiments;
        t "top experiments" test_top_experiments;
        t "leave one out" test_leave_one_out;
        t "char replacement" test_characterization_replaces;
      ] );
    ( "serialization",
      [
        t "string roundtrip" test_roundtrip;
        t "file roundtrip" test_file_roundtrip;
        t "parse errors" test_parse_errors;
      ] );
    ( "properties",
      List.map QCheck_alcotest.to_alcotest [ prop_roundtrip_random ] );
  ]

let () = Alcotest.run "knowledge" suite
