(* Tests for the benchmark suite: every workload compiles, is well-formed,
   runs deterministically, produces the pinned checksum (guarding against
   accidental behaviour changes), and survives the optimizing pipelines
   with identical observable behaviour. *)

module Ir = Mira.Ir

(* Pinned return values: regenerate with tools/wl.exe if workloads are
   intentionally changed. *)
let expected_returns =
  [
    ("adpcm", "58366");
    ("mcf_spars", "1650");
    ("matmul", "-150");
    ("fir", "441");
    ("crc32", "39827");
    ("bitcount", "48890");
    ("dijkstra", "3108");
    ("qsort", "31538");
    ("histogram", "6444");
    ("nbody", "464");
    ("stencil2d", "51167");
    ("susan", "6084");
    ("sha_mix", "29070");
    ("strsearch", "100");
    ("jacobi", "5794");
    ("lud", "12542");
    ("blowfish", "28580");
    ("spmv", "40576");
  ]

let test_all_compile () =
  List.iter
    (fun w ->
      let p = Workloads.program w in
      match Ir.check_program p with
      | [] -> ()
      | errs ->
        Alcotest.failf "%s ill-formed: %s" w.Workloads.name
          (String.concat "; " errs))
    Workloads.all

let test_expected_checksums () =
  Alcotest.(check int)
    "every workload has a pinned checksum"
    (List.length Workloads.all)
    (List.length expected_returns);
  List.iter
    (fun w ->
      let p = Workloads.program w in
      let r = Mira.Interp.run p in
      let expected = List.assoc w.Workloads.name expected_returns in
      Alcotest.(check string)
        (w.Workloads.name ^ " checksum")
        expected
        (Mira.Interp.value_to_string r.Mira.Interp.ret))
    Workloads.all

let test_deterministic_cycles () =
  List.iter
    (fun w ->
      let p = Workloads.program w in
      let c1 = (Mach.Sim.run p).Mach.Sim.cycles in
      let c2 = (Mach.Sim.run p).Mach.Sim.cycles in
      Alcotest.(check int) (w.Workloads.name ^ " cycles stable") c1 c2)
    [ Workloads.by_name_exn "adpcm"; Workloads.by_name_exn "crc32" ]

let test_mcf_is_memory_outlier () =
  (* the property Fig. 3 depends on: mcf_spars's per-instruction L2 store
     misses tower over the rest of the suite *)
  let l2stm_rate w =
    let r = Mach.Sim.run (Workloads.program w) in
    float_of_int (Mach.Counters.get r.Mach.Sim.counters Mach.Counters.L2_STM)
    /. float_of_int (Mach.Counters.get r.Mach.Sim.counters Mach.Counters.TOT_INS)
  in
  let mcf = l2stm_rate (Workloads.by_name_exn "mcf_spars") in
  let others =
    List.filter (fun w -> w.Workloads.name <> "mcf_spars") Workloads.all
  in
  let avg =
    List.fold_left (fun acc w -> acc +. l2stm_rate w) 0.0 others
    /. float_of_int (List.length others)
  in
  let ratio = mcf /. max 1e-9 avg in
  Alcotest.(check bool)
    (Printf.sprintf "mcf L2_STM/ins is %.0fx the suite average" ratio)
    true (ratio > 15.0)

let test_pipelines_preserve_workloads () =
  (* O2 and Ofast must preserve the observable behaviour of every workload *)
  List.iter
    (fun w ->
      let p = Workloads.program w in
      let before = Mira.Interp.observe p in
      List.iter
        (fun (lname, seq) ->
          let p' = Passes.Pass.apply_sequence seq p in
          (match Ir.check_program p' with
           | [] -> ()
           | errs ->
             Alcotest.failf "%s/%s ill-formed: %s" w.Workloads.name lname
               (String.concat "; " errs));
          let after = Mira.Interp.observe p' in
          if not (Mira.Interp.equal_observation before after) then
            Alcotest.failf "%s: %s changed behaviour" w.Workloads.name lname)
        [ ("O1", Passes.Pass.o1); ("O2", Passes.Pass.o2); ("Ofast", Passes.Pass.ofast) ])
    Workloads.all

let test_ofast_speeds_up_suite () =
  (* the fixed aggressive pipeline should win on the (geometric) mean —
     the baseline property the paper's -Ofast comparisons assume *)
  let logsum = ref 0.0 in
  let n = ref 0 in
  List.iter
    (fun w ->
      let p = Workloads.program w in
      let base = Mach.Sim.run p in
      let opt = Mach.Sim.run (Passes.Pass.apply_sequence Passes.Pass.ofast p) in
      let s = Mach.Sim.speedup ~base ~opt in
      logsum := !logsum +. log s;
      incr n)
    Workloads.all;
  let geomean = exp (!logsum /. float_of_int !n) in
  Alcotest.(check bool)
    (Printf.sprintf "Ofast geomean speedup %.2fx > 1.1" geomean)
    true (geomean > 1.1)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    ( "workloads",
      [
        t "all compile" test_all_compile;
        t "pinned checksums" test_expected_checksums;
        t "deterministic" test_deterministic_cycles;
        t "mcf outlier" test_mcf_is_memory_outlier;
        slow "pipelines preserve" test_pipelines_preserve_workloads;
        slow "ofast speeds up" test_ofast_speeds_up_suite;
      ] );
  ]

let () = Alcotest.run "workloads" suite
