(* Tests for the mlkit library: unit tests on small hand-checked cases and
   property tests on classifier/clustering invariants. *)

let mk = Mlkit.Dataset.make

(* two well-separated Gaussian-ish blobs, deterministic *)
let blobs ?(n = 40) ?(sep = 6.0) ?(seed = 5) () =
  let rng = Random.State.make [| seed |] in
  let xs =
    Array.init n (fun i ->
        let cls = i mod 2 in
        let cx = if cls = 0 then 0.0 else sep in
        [|
          cx +. Random.State.float rng 1.0;
          cx +. Random.State.float rng 1.0;
        |])
  in
  let ys = Array.init n (fun i -> i mod 2) in
  mk xs ys

(* XOR-ish dataset: linearly inseparable, tree-separable *)
let xor_data () =
  let pts = ref [] in
  for i = 0 to 9 do
    for j = 0 to 9 do
      let x = float_of_int i /. 10.0 and y = float_of_int j /. 10.0 in
      let label = if (x < 0.5) <> (y < 0.5) then 1 else 0 in
      pts := ([| x; y |], label) :: !pts
    done
  done;
  let xs = Array.of_list (List.map fst !pts) in
  let ys = Array.of_list (List.map snd !pts) in
  mk xs ys

(* ------------------------------------------------------------------ *)

let test_dataset_validation () =
  (match mk [| [| 1.0 |]; [| 1.0; 2.0 |] |] [| 0; 1 |] with
   | _ -> Alcotest.fail "ragged rows accepted"
   | exception Invalid_argument _ -> ());
  (match mk [| [| 1.0 |] |] [| 0; 1 |] with
   | _ -> Alcotest.fail "length mismatch accepted"
   | exception Invalid_argument _ -> ());
  (match mk [| [| 1.0 |] |] [| -1 |] with
   | _ -> Alcotest.fail "negative label accepted"
   | exception Invalid_argument _ -> ())

let test_dataset_loocv_split () =
  let d = mk [| [| 0. |]; [| 1. |]; [| 2. |] |] [| 0; 1; 0 |] in
  let tr, x, y = Mlkit.Dataset.leave_one_out d 1 in
  Alcotest.(check int) "train size" 2 (Mlkit.Dataset.size tr);
  Alcotest.(check (float 0.0)) "held-out x" 1.0 x.(0);
  Alcotest.(check int) "held-out y" 1 y

let test_kfolds_partition () =
  let d = blobs ~n:30 () in
  let folds = Mlkit.Dataset.kfolds d 5 in
  Alcotest.(check int) "5 folds" 5 (List.length folds);
  let total_test =
    List.fold_left (fun acc (_, te) -> acc + Mlkit.Dataset.size te) 0 folds
  in
  Alcotest.(check int) "test sets partition the data" 30 total_test;
  List.iter
    (fun (tr, te) ->
      Alcotest.(check int) "sizes add up" 30
        (Mlkit.Dataset.size tr + Mlkit.Dataset.size te))
    folds

(* ------------------------------------------------------------------ *)

let test_linalg_solve () =
  (* 2x + y = 5; x - y = 1  =>  x = 2, y = 1 *)
  let a = [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] in
  let x = Mlkit.Linalg.solve a [| 5.0; 1.0 |] in
  Alcotest.(check (float 1e-9)) "x" 2.0 x.(0);
  Alcotest.(check (float 1e-9)) "y" 1.0 x.(1)

let test_linalg_singular () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  match Mlkit.Linalg.solve a [| 1.0; 2.0 |] with
  | _ -> Alcotest.fail "singular system solved"
  | exception Failure _ -> ()

let test_scaling_standardizes () =
  let xs = [| [| 1.0; 10.0 |]; [| 2.0; 20.0 |]; [| 3.0; 30.0 |] |] in
  let _, scaled = Mlkit.Scaling.standardize xs in
  let col0 = Mlkit.Linalg.column scaled 0 in
  Alcotest.(check (float 1e-9)) "mean 0" 0.0 (Mlkit.Linalg.mean col0);
  Alcotest.(check (float 1e-6)) "std 1" 1.0 (Mlkit.Linalg.std col0)

let test_scaling_constant_feature () =
  let xs = [| [| 5.0 |]; [| 5.0 |] |] in
  let t, scaled = Mlkit.Scaling.standardize xs in
  Alcotest.(check (float 0.0)) "constant maps to 0" 0.0 scaled.(0).(0);
  Alcotest.(check (float 0.0)) "apply too" 0.0 (Mlkit.Scaling.apply t [| 5.0 |]).(0)

(* ------------------------------------------------------------------ *)

let test_knn_separable () =
  let d = blobs () in
  let m = Mlkit.Knn.fit ~k:3 d in
  Alcotest.(check (float 0.01)) "perfect on blobs" 1.0
    (Mlkit.Eval.accuracy (Mlkit.Knn.predict m) d)

let test_dtree_xor () =
  let d = xor_data () in
  let m = Mlkit.Dtree.fit d in
  Alcotest.(check bool) "tree handles xor" true
    (Mlkit.Eval.accuracy (Mlkit.Dtree.predict m) d > 0.95)

let test_logreg_fails_xor_but_fits_blobs () =
  let dblob = blobs () in
  let scaler, xs = Mlkit.Scaling.standardize dblob.Mlkit.Dataset.xs in
  let dblob' = mk xs dblob.Mlkit.Dataset.ys in
  let m = Mlkit.Logreg.fit dblob' in
  let acc_blob =
    Mlkit.Eval.accuracy
      (fun x -> Mlkit.Logreg.predict m (Mlkit.Scaling.apply scaler x))
      dblob
  in
  Alcotest.(check bool) "linear separable fits" true (acc_blob > 0.95);
  let dx = xor_data () in
  let mx = Mlkit.Logreg.fit dx in
  let acc_xor = Mlkit.Eval.accuracy (Mlkit.Logreg.predict mx) dx in
  Alcotest.(check bool)
    (Printf.sprintf "xor not linearly separable (%.2f)" acc_xor)
    true (acc_xor < 0.75)

let test_naive_bayes_blobs () =
  let d = blobs () in
  let m = Mlkit.Naive_bayes.fit d in
  Alcotest.(check (float 0.01)) "perfect on blobs" 1.0
    (Mlkit.Eval.accuracy (Mlkit.Naive_bayes.predict m) d)

let test_multiclass () =
  (* three blobs on a line *)
  let rng = Random.State.make [| 11 |] in
  let xs =
    Array.init 60 (fun i ->
        let c = i mod 3 in
        [| (float_of_int c *. 5.0) +. Random.State.float rng 1.0 |])
  in
  let ys = Array.init 60 (fun i -> i mod 3) in
  let d = mk xs ys in
  let knn = Mlkit.Knn.fit ~k:3 d in
  Alcotest.(check (float 0.01)) "knn multiclass" 1.0
    (Mlkit.Eval.accuracy (Mlkit.Knn.predict knn) d);
  let tree = Mlkit.Dtree.fit d in
  Alcotest.(check (float 0.01)) "tree multiclass" 1.0
    (Mlkit.Eval.accuracy (Mlkit.Dtree.predict tree) d);
  let lr = Mlkit.Logreg.fit d in
  Alcotest.(check bool) "logreg multiclass" true
    (Mlkit.Eval.accuracy (Mlkit.Logreg.predict lr) d > 0.9)

let test_loocv_reasonable () =
  let d = blobs ~n:30 () in
  let acc =
    Mlkit.Eval.loocv (fun tr -> Mlkit.Knn.predict (Mlkit.Knn.fit ~k:3 tr)) d
  in
  Alcotest.(check bool) "loocv near 1 on separable" true (acc > 0.9)

let test_linreg_exact () =
  (* y = 3x + 2 exactly *)
  let xs = Array.init 10 (fun i -> [| float_of_int i |]) in
  let ys = Array.map (fun x -> (3.0 *. x.(0)) +. 2.0) xs in
  let m = Mlkit.Linreg.fit ~l2:0.0 xs ys in
  Alcotest.(check (float 1e-6)) "slope" 3.0 m.Mlkit.Linreg.w.(0);
  Alcotest.(check (float 1e-6)) "intercept" 2.0 m.Mlkit.Linreg.b;
  Alcotest.(check (float 1e-9)) "r2" 1.0 (Mlkit.Linreg.r2 m xs ys)

let test_kmeans_blobs () =
  let d = blobs ~n:60 () in
  let m = Mlkit.Kmeans.fit ~k:2 d.Mlkit.Dataset.xs in
  (* all members of a true class end in the same cluster *)
  let c0 = Mlkit.Kmeans.predict m d.Mlkit.Dataset.xs.(0) in
  let c1 = Mlkit.Kmeans.predict m d.Mlkit.Dataset.xs.(1) in
  Alcotest.(check bool) "clusters differ" true (c0 <> c1);
  let pure = ref true in
  Array.iteri
    (fun i x ->
      let c = Mlkit.Kmeans.predict m x in
      let expect = if i mod 2 = 0 then c0 else c1 in
      if c <> expect then pure := false)
    d.Mlkit.Dataset.xs;
  Alcotest.(check bool) "clusters match classes" true !pure

let test_mutual_information_ranking () =
  (* feature 0 fully determines the label; feature 1 is noise *)
  let rng = Random.State.make [| 3 |] in
  let xs =
    Array.init 200 (fun i ->
        [| float_of_int (i mod 2); Random.State.float rng 1.0 |])
  in
  let ys = Array.init 200 (fun i -> i mod 2) in
  let d = mk xs ys in
  match Mlkit.Feature_select.rank d with
  | (0, mi0) :: (1, mi1) :: _ ->
    Alcotest.(check bool) "informative first" true (mi0 > 0.9);
    Alcotest.(check bool) "noise near zero" true (mi1 < 0.2)
  | _ -> Alcotest.fail "wrong ranking order"

let test_feature_select_top () =
  let xs = Array.init 50 (fun i -> [| 0.0; float_of_int (i mod 2); 1.0 |]) in
  let ys = Array.init 50 (fun i -> i mod 2) in
  let d = mk xs ys in
  let d', kept = Mlkit.Feature_select.select_top d ~k:1 in
  Alcotest.(check (list int)) "kept informative column" [ 1 ] kept;
  Alcotest.(check int) "one column" 1 (Mlkit.Dataset.dim d')

(* ------------------------------------------------------------------ *)
(* property tests *)

let gen_points =
  QCheck.Gen.(
    list_size (int_range 4 40)
      (pair (pair (float_bound_inclusive 10.0) (float_bound_inclusive 10.0))
         (int_bound 1)))

let prop_knn_k1_memorizes =
  QCheck.Test.make ~name:"knn k=1 memorizes training points" ~count:100
    (QCheck.make gen_points)
    (fun pts ->
      (* deduplicate identical coordinates to avoid label conflicts *)
      let seen = Hashtbl.create 16 in
      let pts =
        List.filter
          (fun ((x, y), _) ->
            if Hashtbl.mem seen (x, y) then false
            else begin
              Hashtbl.add seen (x, y) ();
              true
            end)
          pts
      in
      let xs = Array.of_list (List.map (fun ((x, y), _) -> [| x; y |]) pts) in
      let ys = Array.of_list (List.map snd pts) in
      Array.length xs = 0
      ||
      let d = mk xs ys in
      let m = Mlkit.Knn.fit ~k:1 d in
      Mlkit.Eval.accuracy (Mlkit.Knn.predict m) d = 1.0)

let prop_scaling_idempotent_shape =
  QCheck.Test.make ~name:"scaling preserves shape and is finite" ~count:100
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 2 20)
           (list_size (return 3) (float_bound_inclusive 100.0))))
    (fun rows ->
      let xs = Array.of_list (List.map Array.of_list rows) in
      let _, scaled = Mlkit.Scaling.standardize xs in
      Array.length scaled = Array.length xs
      && Array.for_all
           (fun r -> Array.for_all (fun v -> Float.is_finite v) r)
           scaled)

let prop_dtree_no_deeper_than_max =
  QCheck.Test.make ~name:"dtree respects max depth" ~count:50
    (QCheck.make gen_points)
    (fun pts ->
      let xs = Array.of_list (List.map (fun ((x, y), _) -> [| x; y |]) pts) in
      let ys = Array.of_list (List.map snd pts) in
      let d = mk xs ys in
      let params = { Mlkit.Dtree.default_params with Mlkit.Dtree.max_depth = 3 } in
      let m = Mlkit.Dtree.fit ~params d in
      Mlkit.Dtree.depth_of m.Mlkit.Dtree.root <= 3)

let prop_proba_sums_to_one =
  QCheck.Test.make ~name:"predict_proba sums to 1" ~count:50
    (QCheck.make gen_points)
    (fun pts ->
      let pts = if List.length pts < 4 then [] else pts in
      pts = []
      ||
      let xs = Array.of_list (List.map (fun ((x, y), _) -> [| x; y |]) pts) in
      let ys = Array.of_list (List.map snd pts) in
      let nclasses = Array.fold_left (fun a y -> max a (y + 1)) 1 ys in
      nclasses < 2
      ||
      let d = mk xs ys in
      let close p = Float.abs (Array.fold_left ( +. ) 0.0 p -. 1.0) < 1e-6 in
      let knn = Mlkit.Knn.fit ~k:3 d in
      let nb = Mlkit.Naive_bayes.fit d in
      List.for_all
        (fun x ->
          close (Mlkit.Knn.predict_proba knn x)
          && close (Mlkit.Naive_bayes.predict_proba nb x))
        (Array.to_list xs))

let prop_kmeans_assignment_is_nearest =
  QCheck.Test.make ~name:"kmeans assigns to nearest centroid" ~count:50
    (QCheck.make gen_points)
    (fun pts ->
      let xs = Array.of_list (List.map (fun ((x, y), _) -> [| x; y |]) pts) in
      Array.length xs < 3
      ||
      let m = Mlkit.Kmeans.fit ~k:2 xs in
      Array.for_all
        (fun x ->
          let c = Mlkit.Kmeans.predict m x in
          let dc = Mlkit.Linalg.euclidean x m.Mlkit.Kmeans.centroids.(c) in
          Array.for_all
            (fun other -> dc <= Mlkit.Linalg.euclidean x other +. 1e-9)
            m.Mlkit.Kmeans.centroids)
        xs)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    ( "dataset",
      [
        t "validation" test_dataset_validation;
        t "loocv split" test_dataset_loocv_split;
        t "kfolds partition" test_kfolds_partition;
      ] );
    ( "linalg",
      [ t "solve" test_linalg_solve; t "singular" test_linalg_singular ] );
    ( "scaling",
      [
        t "standardizes" test_scaling_standardizes;
        t "constant feature" test_scaling_constant_feature;
      ] );
    ( "classifiers",
      [
        t "knn blobs" test_knn_separable;
        t "dtree xor" test_dtree_xor;
        t "logreg linear only" test_logreg_fails_xor_but_fits_blobs;
        t "naive bayes blobs" test_naive_bayes_blobs;
        t "multiclass" test_multiclass;
        t "loocv" test_loocv_reasonable;
      ] );
    ("regression", [ t "linreg exact" test_linreg_exact ]);
    ("clustering", [ t "kmeans blobs" test_kmeans_blobs ]);
    ( "features",
      [
        t "mutual information" test_mutual_information_ranking;
        t "select top" test_feature_select_top;
      ] );
    ( "properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_knn_k1_memorizes;
          prop_scaling_idempotent_shape;
          prop_dtree_no_deeper_than_max;
          prop_proba_sums_to_one;
          prop_kmeans_assignment_is_nearest;
        ] );
  ]

let () = Alcotest.run "mlkit" suite
