examples/knowledge_workflow.ml: Filename Fmt Icc Knowledge List Mach Passes String Sys Workloads
