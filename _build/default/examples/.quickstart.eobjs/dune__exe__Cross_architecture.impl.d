examples/cross_architecture.ml: Fmt Icc List Mach Passes Search Workloads
