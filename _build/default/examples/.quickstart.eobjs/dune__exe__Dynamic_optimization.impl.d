examples/dynamic_optimization.ml: Fmt Icc List String
