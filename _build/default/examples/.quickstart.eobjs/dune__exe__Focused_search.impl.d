examples/focused_search.ml: Array Fmt Icc Knowledge List Mach Passes Search String Workloads
