examples/dynamic_optimization.mli:
