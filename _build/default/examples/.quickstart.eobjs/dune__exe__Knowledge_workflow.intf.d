examples/knowledge_workflow.mli:
