examples/focused_search.mli:
