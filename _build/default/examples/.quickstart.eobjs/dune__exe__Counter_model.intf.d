examples/counter_model.mli:
