examples/quickstart.ml: Fmt Mach Mira Passes
