examples/quickstart.mli:
