examples/counter_model.ml: Fmt Icc List Mach Passes Workloads
