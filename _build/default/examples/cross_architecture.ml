(* Architecture adaptation: the same source program wants different
   optimization decisions on different machines (the portability problem
   of the paper's introduction).  We search the same program on three
   machine models and compare the winning sequences, then recover each
   machine's memory hierarchy with microbenchmarks (Sec. III-B).

     dune exec examples/cross_architecture.exe *)

let () =
  let w = Workloads.by_name_exn "stencil2d" in
  let p = Workloads.program w in
  Fmt.pr "program: %s (%s)@.@." w.Workloads.name w.Workloads.descr;

  List.iter
    (fun config ->
      let eval = Icc.Characterize.eval_sequence ~config p in
      let o0 = eval [] in
      let r = Search.Strategies.hill_climb ~seed:11 ~budget:40 eval in
      Fmt.pr "%-12s O0 %9.0f cycles -> best %9.0f (%.2fx) via %s@."
        config.Mach.Config.name o0 r.Search.Strategies.best_cost
        (o0 /. r.Search.Strategies.best_cost)
        (Passes.Pass.sequence_to_string r.Search.Strategies.best_seq))
    Mach.Config.all;

  Fmt.pr "@.microbenchmark characterization of each target:@.";
  List.iter
    (fun config ->
      let r = Mach.Microbench.characterize config in
      Fmt.pr "%-12s recovered %a  (true L1 %d B, L2 %d B, line %d B)@."
        config.Mach.Config.name Mach.Microbench.pp_recovered r
        config.Mach.Config.l1.Mach.Cache.size_bytes
        config.Mach.Config.l2.Mach.Cache.size_bytes
        config.Mach.Config.l1.Mach.Cache.line_bytes)
    Mach.Config.all
