(* Dynamic optimization with runtime monitoring (paper Sec. III-D):
   a workload alternates between a long-trip compute phase and a zero-trip
   phase where aggressive loop optimization backfires.  The runtime monitor
   detects phase changes from counter signatures, audits the prepared code
   versions once per new phase, locks in the winner, and reuses remembered
   phases.

     dune exec examples/dynamic_optimization.exe *)

let () =
  let intervals = Icc.Dynamic.phased_intervals ~phases:6 ~per_phase:8 () in
  Fmt.pr "workload: %d intervals over 6 alternating phases@."
    (List.length intervals);
  Fmt.pr "code versions prepared: %s@."
    (String.concat ", "
       (List.map
          (fun v -> v.Icc.Dynamic.vname)
          Icc.Dynamic.default_config.Icc.Dynamic.versions));

  let r = Icc.Dynamic.run Icc.Dynamic.default_config intervals in

  Fmt.pr "@.version chosen per interval:@.";
  List.iter
    (fun (i, name) ->
      if i mod 8 = 0 then Fmt.pr "@.  phase %d: " (i / 8);
      Fmt.pr "%s " name)
    r.Icc.Dynamic.choices;
  Fmt.pr "@.@.phase changes detected: %d, audited intervals: %d@."
    r.Icc.Dynamic.phase_changes_detected r.Icc.Dynamic.audits;

  let pct a b = 100.0 *. (float_of_int b -. float_of_int a) /. float_of_int b in
  Fmt.pr "@.O0 everywhere          : %9d cycles@." r.Icc.Dynamic.o0_cycles;
  Fmt.pr "best single version (%s): %9d cycles (%.1f%% vs O0)@."
    r.Icc.Dynamic.static_best_name r.Icc.Dynamic.static_best_cycles
    (pct r.Icc.Dynamic.static_best_cycles r.Icc.Dynamic.o0_cycles);
  Fmt.pr "dynamic optimizer      : %9d cycles (%.1f%% vs static best; overhead %d)@."
    r.Icc.Dynamic.total_cycles
    (pct r.Icc.Dynamic.total_cycles r.Icc.Dynamic.static_best_cycles)
    r.Icc.Dynamic.overhead_cycles;
  Fmt.pr "oracle (per-interval)  : %9d cycles@." r.Icc.Dynamic.oracle_cycles;
  if r.Icc.Dynamic.total_cycles < r.Icc.Dynamic.static_best_cycles then
    Fmt.pr "@.=> no single static version was best for all phases; the@.";
  Fmt.pr "   runtime-adaptive binary beat the best one-size-fits-all build.@."
