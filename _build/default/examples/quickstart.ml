(* Quickstart: compile a Mira program, run it, optimize it, measure the
   difference on the simulated machine.

     dune exec examples/quickstart.exe *)

let source =
  {|
// dot product with a scaling factor that the optimizer can exploit
fn dot(a: float[], b: float[], n: int) -> float {
  var acc: float = 0.0;
  var scale: float = 2.0 * 0.5;   // constant the compiler should fold
  for i = 0 to n {
    acc = acc + a[i] * b[i] * scale;
  }
  return acc;
}

fn main() -> int {
  var a: float[256];
  var b: float[256];
  for i = 0 to 256 {
    a[i] = float(i) / 16.0;
    b[i] = float(256 - i) / 16.0;
  }
  var r: float = dot(a, b, 256);
  print(r);
  return int(r) % 1000;
}
|}

let () =
  (* 1. front end: parse, typecheck, lower to IR *)
  let program =
    match Mira.Lower.compile_source source with
    | Ok p -> p
    | Error e -> failwith e
  in
  Fmt.pr "compiled: %d IR instructions, %d functions@."
    (Mira.Ir.program_size program)
    (Mira.Ir.SMap.cardinal program.Mira.Ir.funcs);

  (* 2. reference semantics: the interpreter *)
  let r = Mira.Interp.run program in
  Fmt.pr "interpreter says: %s(output %S)@."
    (Mira.Interp.value_to_string r.Mira.Interp.ret)
    r.Mira.Interp.output;

  (* 3. cycle-level execution on the default machine model *)
  let base = Mach.Sim.run program in
  Fmt.pr "unoptimized: %d cycles (CPI %.2f)@." base.Mach.Sim.cycles
    (float_of_int base.Mach.Sim.cycles /. float_of_int base.Mach.Sim.steps);

  (* 4. optimize with the fixed -Ofast pipeline *)
  let optimized = Passes.Pass.apply_sequence Passes.Pass.ofast program in
  let opt = Mach.Sim.run optimized in
  Fmt.pr "-Ofast:      %d cycles (speedup %.2fx, size %d -> %d)@."
    opt.Mach.Sim.cycles
    (Mach.Sim.speedup ~base ~opt)
    (Mira.Ir.program_size program)
    (Mira.Ir.program_size optimized);

  (* 5. or pick your own phase ordering *)
  let custom =
    Passes.Pass.[ Const_prop; Const_fold; Licm; Unroll4; Cse; Copy_prop; Dce ]
  in
  let custom_p = Passes.Pass.apply_sequence custom program in
  let copt = Mach.Sim.run custom_p in
  Fmt.pr "custom %s: %d cycles (speedup %.2fx)@."
    (Passes.Pass.sequence_to_string custom)
    copt.Mach.Sim.cycles
    (Mach.Sim.speedup ~base ~opt:copt);

  (* 6. behaviour is preserved, always *)
  assert (
    Mira.Interp.equal_observation
      (Mira.Interp.observe program)
      (Mira.Interp.observe optimized));
  Fmt.pr "observable behaviour preserved. done.@."
