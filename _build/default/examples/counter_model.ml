(* The performance-counter model (the paper's Sec. III-B example, after
   Cavazos et al. CGO'07): characterize an unseen program with ONE -O0
   profiling run, then predict good optimizations from programs with
   similar counter signatures — here for the memory-bound mcf analogue.

     dune exec examples/counter_model.exe *)

let () =
  let config = Mach.Config.default in
  let arch = config.Mach.Config.name in
  let target_name = "mcf_spars" in
  let target = Workloads.program (Workloads.by_name_exn target_name) in

  (* train on a slice of the suite (leave-one-out); it must contain at
     least one memory-bound program for the counter signature to have a
     useful neighbour *)
  let training =
    [ "spmv"; "stencil2d"; "strsearch"; "histogram"; "crc32"; "dijkstra";
      "adpcm"; "jacobi" ]
    |> List.map (fun n -> (n, Workloads.program (Workloads.by_name_exn n)))
  in
  Fmt.pr "building knowledge base (%d programs)...@." (List.length training);
  let kb = Icc.Characterize.build_kb ~config ~per_program:25 training in

  (* one profiling run of the new program *)
  let profile = Mach.Sim.run ~config target in
  let counters = Icc.Characterize.counter_assoc profile.Mach.Sim.counters in
  Fmt.pr "@.%s -O0 characterization (events per instruction):@." target_name;
  List.iter
    (fun name ->
      Fmt.pr "  %-8s %.5f@." name (List.assoc name counters))
    [ "L1_TCM"; "L2_TCM"; "L2_STM"; "BR_MSP"; "LD_INS"; "SR_INS" ];

  match Icc.Pcmodel.train kb ~arch with
  | None -> Fmt.epr "knowledge base too small to train the PC model@."
  | Some model ->
    let nbs = Icc.Pcmodel.neighbors model counters in
    Fmt.pr "@.programs with the most similar counter signatures:@.";
    List.iteri
      (fun i (prog, _, d) ->
        if i < 3 then Fmt.pr "  %-10s (distance %.2f)@." prog d)
      nbs;

    let seq = Icc.Pcmodel.predict model counters in
    Fmt.pr "@.PCModel predicts: %s@." (Passes.Pass.sequence_to_string seq);

    let eval = Icc.Characterize.eval_sequence ~config target in
    let c0 = eval [] in
    let cfast = eval Passes.Pass.ofast in
    let cpred = eval seq in
    Fmt.pr "@.cycles at -O0    : %.0f@." c0;
    Fmt.pr "cycles at -Ofast : %.0f (speedup %.2fx)@." cfast (c0 /. cfast);
    Fmt.pr "cycles at PCModel: %.0f (speedup %.2fx)@." cpred (c0 /. cpred);

    (* the paper also lets the model spend a few online trials *)
    let seq3, c3 = Icc.Pcmodel.predict_and_pick model ~trials:3 counters eval in
    Fmt.pr "PCModel top-3    : %.0f (speedup %.2fx) via %s@." c3 (c0 /. c3)
      (Passes.Pass.sequence_to_string seq3)
