(* Focused iterative search (the paper's Sec. III-A example): build a
   knowledge base from a few training workloads, fit a sequence model for
   an unseen program, and compare model-focused search with random search
   under the same evaluation budget.

     dune exec examples/focused_search.exe

   This is a scaled-down version of the Fig. 2(b) experiment in
   bench/main.exe (which uses the full suite and averages more trials). *)

let () =
  let config = Mach.Config.default in
  let arch = config.Mach.Config.name in

  (* leave one program out as the "new, unseen" program *)
  let target_name = "histogram" in
  let target = Workloads.program (Workloads.by_name_exn target_name) in
  let training =
    Workloads.all
    |> List.filter (fun w -> w.Workloads.name <> target_name)
    |> List.filteri (fun i _ -> i < 6)   (* a small KB is enough for a demo *)
    |> List.map (fun w -> (w.Workloads.name, Workloads.program w))
  in

  Fmt.pr "building knowledge base from %d programs...@." (List.length training);
  let kb = Icc.Characterize.build_kb ~config ~per_program:25 training in
  Fmt.pr "knowledge base: %d experiments@." (Knowledge.Kb.size kb);

  let eval = Icc.Characterize.eval_sequence ~config target in
  let o0 = eval [] in

  (* which training programs look like the target? *)
  let feats = Icc.Features.restrict_to_similarity (Icc.Features.extract target) in
  let neighbours =
    Search.Focused.nearest_programs kb ~arch ~target_features:feats ~n:3
  in
  Fmt.pr "programs most similar to %s: %s@." target_name
    (String.concat ", " neighbours);

  (* focused search with a 10-evaluation budget *)
  let model =
    Search.Focused.fit_model kb ~arch
      ~params:Search.Focused.default_params ~target_features:feats
  in
  let budget = 10 in
  let focused = Search.Focused.search ~seed:1 ~budget model eval in

  (* random search, same budget, averaged over 5 seeds *)
  let random =
    Search.Strategies.random_averaged ~seed:1 ~budget ~trials:5 eval
  in

  Fmt.pr "@.%s on %s: O0 = %.0f cycles@." arch target_name o0;
  Fmt.pr "evals | random (avg) | focused@.";
  List.iter
    (fun i ->
      Fmt.pr "%5d | %12.0f | %7.0f@." (i + 1) random.(i)
        focused.Search.Strategies.history.(i))
    [ 0; 1; 4; 9 ];
  Fmt.pr "focused best sequence: %s (speedup %.2fx over O0)@."
    (Passes.Pass.sequence_to_string focused.Search.Strategies.best_seq)
    (o0 /. focused.Search.Strategies.best_cost);

  (* the controller wraps all of this behind one call *)
  let compiled, _ = Icc.Controller.iterative ~config ~budget:10 kb target in
  Fmt.pr "controller chose: %s@."
    (Passes.Pass.sequence_to_string
       compiled.Icc.Controller.decision.Icc.Controller.sequence)
