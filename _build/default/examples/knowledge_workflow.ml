(* The knowledge-base workflow (paper Sec. III-E): build it once, save it
   in the standard format, reload it in a later "session", query it, and
   let a new program benefit from everything the compiler has ever
   measured.

     dune exec examples/knowledge_workflow.exe *)

let () =
  let config = Mach.Config.default in
  let arch = config.Mach.Config.name in

  (* session 1: a training run populates the knowledge base *)
  let training =
    Workloads.all
    |> List.filteri (fun i _ -> i < 5)
    |> List.map (fun w -> (w.Workloads.name, Workloads.program w))
  in
  Fmt.pr "session 1: exploring %d programs...@." (List.length training);
  let kb = Icc.Characterize.build_kb ~config ~per_program:15 training in
  let path = Filename.temp_file "intelligent-compiler" ".kb" in
  Knowledge.Kb.save kb path;
  Fmt.pr "saved %d experiments + %d characterizations to %s@."
    (Knowledge.Kb.size kb)
    (List.length (Knowledge.Kb.programs kb))
    path;

  (* session 2: a fresh process reloads the knowledge *)
  let kb = Knowledge.Kb.load path in
  Fmt.pr "@.session 2: reloaded; programs known: %s@."
    (String.concat ", " (Knowledge.Kb.programs kb));

  (* what does the KB know about each program? *)
  List.iter
    (fun prog ->
      match Knowledge.Kb.best kb ~prog ~arch with
      | Some e ->
        Fmt.pr "  %-10s best %8d cycles via %s@." prog e.Knowledge.Kb.cycles
          (Passes.Pass.sequence_to_string e.Knowledge.Kb.seq)
      | None -> ())
    (Knowledge.Kb.programs kb);

  (* a new, unseen program asks the controller for a one-shot decision *)
  let newbie = Workloads.program (Workloads.by_name_exn "histogram") in
  let compiled = Icc.Controller.one_shot ~config kb newbie in
  let d = compiled.Icc.Controller.decision in
  Fmt.pr "@.new program 'histogram': predicted %s (based on %s), %d target \
          runs spent@."
    (Passes.Pass.sequence_to_string d.Icc.Controller.sequence)
    (String.concat ", " d.Icc.Controller.predicted_from)
    d.Icc.Controller.evaluations;
  let c0 = Icc.Characterize.eval_sequence ~config newbie [] in
  let c1 =
    Icc.Characterize.eval_sequence ~config newbie d.Icc.Controller.sequence
  in
  Fmt.pr "cycles %.0f -> %.0f (%.2fx) with zero measurements of the new \
          program@."
    c0 c1 (c0 /. c1);
  Sys.remove path
