module Ir = Mira.Ir

(* Strength reduction: replace expensive integer operations by cheaper
   equivalent sequences.

   - x * 2^k        ->  x << k           (exact for wrap-around ints)
   - x * 3/5/9      ->  t = x << k; d = t + x   (one extra register)
   - x * -1         ->  0 - x
   - x % 2^k, x / 2^k are NOT rewritten: the IR's div/rem truncate toward
     zero while shifts floor, so the shift form is wrong for negative
     operands and we have no range analysis to prove non-negativity.

   The pass may allocate fresh registers (for the shift+add forms). *)

let log2_exact n =
  if n <= 0 then None
  else
    let rec go k v = if v = n then Some k else if v > n then None else go (k + 1) (v * 2) in
    go 0 1

(* rewrite one instruction; may produce several and allocate registers *)
let rewrite nregs (i : Ir.instr) : int * Ir.instr list =
  match i with
  | Ir.Bin (Ir.Mul, d, x, Ir.Cint c) | Ir.Bin (Ir.Mul, d, Ir.Cint c, x) -> begin
    match log2_exact c with
    | Some k when k <= 62 -> (nregs, [ Ir.Bin (Ir.Shl, d, x, Ir.Cint k) ])
    | _ -> (
      match c with
      | -1 -> (nregs, [ Ir.Bin (Ir.Sub, d, Ir.Cint 0, x) ])
      | 3 | 5 | 9 ->
        let k = match c with 3 -> 1 | 5 -> 2 | _ -> 3 in
        let t = nregs in
        ( nregs + 1,
          [ Ir.Bin (Ir.Shl, t, x, Ir.Cint k); Ir.Bin (Ir.Add, d, Ir.Reg t, x) ]
        )
      | _ -> (nregs, [ i ]))
  end
  | _ -> (nregs, [ i ])

let run_func (f : Ir.func) : Ir.func =
  let nregs = ref f.Ir.nregs in
  let blocks =
    Ir.LMap.map
      (fun (b : Ir.block) ->
        let instrs =
          List.concat_map
            (fun i ->
              let n', is = rewrite !nregs i in
              nregs := n';
              is)
            b.Ir.instrs
        in
        { b with Ir.instrs })
      f.Ir.blocks
  in
  { f with Ir.blocks; nregs = !nregs }

let run (p : Ir.program) : Ir.program = Ir.map_funcs run_func p
