module Ir = Mira.Ir

(* Loop-invariant code motion.

   For each natural loop (processed outermost-last so hoisted code can keep
   moving outwards on repeated application), pure non-trapping instructions
   whose operands are constants or registers with no definition inside the
   loop are moved to a freshly created preheader.

   Soundness conditions for hoisting an instruction [d <- op(...)]:
     1. op is pure and cannot trap (no loads, stores, calls, prints,
        div/rem by non-constant, out-of-range shifts);
     2. every register operand has no definition inside the loop, or is
        defined only by an instruction already hoisted this round;
     3. d has exactly one definition inside the loop;
     4. d is not live-in at the loop header (so no use of the pre-loop
        value of d can be reached from the loop, including the zero-trip
        path through the header's exit edge).

   Condition 4 subsumes the usual "dominates all exits or dead at exits"
   check for this IR: if some path from the header reached a use of d
   without passing the (unique) definition, d would be live-in at the
   header. *)

module LMap = Ir.LMap
module LSet = Ir.LSet
module RSet = Ir.RSet

let pure_nontrapping (i : Ir.instr) : bool =
  match i with
  | Ir.Bin ((Ir.Div | Ir.Rem), _, _, Ir.Cint n) -> n <> 0
  | Ir.Bin ((Ir.Div | Ir.Rem), _, _, _) -> false
  | Ir.Bin ((Ir.Shl | Ir.Shr), _, _, Ir.Cint n) -> n >= 0 && n <= 62
  | Ir.Bin ((Ir.Shl | Ir.Shr), _, _, _) -> false
  | Ir.Bin _ | Ir.Fbin _ | Ir.Icmp _ | Ir.Fcmp _ | Ir.Not _ | Ir.Mov _
  | Ir.I2f _ | Ir.Alen _ ->
    true
  | Ir.F2i _ | Ir.Load _ | Ir.Store _ | Ir.Call _ | Ir.Print _ -> false

(* all registers defined anywhere in the loop, with their definition count *)
let loop_defs (f : Ir.func) (body : LSet.t) : (int, int) Hashtbl.t =
  let defs = Hashtbl.create 32 in
  LSet.iter
    (fun l ->
      let b = Ir.find_block f l in
      List.iter
        (fun i ->
          match Ir.def_of i with
          | Some d ->
            Hashtbl.replace defs d
              (1 + Option.value ~default:0 (Hashtbl.find_opt defs d))
          | None -> ())
        b.Ir.instrs)
    body;
  defs

let hoist_one_loop (f : Ir.func) (loop : Mira.Analysis.loop) : Ir.func option =
  let header = loop.Mira.Analysis.header in
  let body = loop.Mira.Analysis.body in
  let cfg = Mira.Analysis.cfg_of f in
  let lv = Mira.Analysis.liveness f cfg in
  let live_in_header =
    match LMap.find_opt header lv.Mira.Analysis.live_in with
    | Some s -> s
    | None -> RSet.empty
  in
  let defs = loop_defs f body in
  let hoisted_defs = ref RSet.empty in
  let invariant_operand (o : Ir.operand) =
    match o with
    | Ir.Reg r -> (not (Hashtbl.mem defs r)) || RSet.mem r !hoisted_defs
    | _ -> true
  in
  let hoistable (i : Ir.instr) =
    pure_nontrapping i
    && List.for_all invariant_operand (Ir.ops_of i)
    &&
    match Ir.def_of i with
    | Some d ->
      Hashtbl.find_opt defs d = Some 1
      && (not (RSet.mem d live_in_header))
      && not (RSet.mem d !hoisted_defs)
    | None -> false
  in
  (* iterate: collect hoistable instructions in program order until fixpoint *)
  let hoisted = ref [] in
  let blocks = ref f.Ir.blocks in
  let changed = ref true in
  while !changed do
    changed := false;
    LSet.iter
      (fun l ->
        let b = LMap.find l !blocks in
        let keep =
          List.filter
            (fun i ->
              if hoistable i then begin
                hoisted := i :: !hoisted;
                (match Ir.def_of i with
                 | Some d -> hoisted_defs := RSet.add d !hoisted_defs
                 | None -> ());
                changed := true;
                false
              end
              else true)
            b.Ir.instrs
        in
        blocks := LMap.add l { b with Ir.instrs = keep } !blocks)
      body
  done;
  if !hoisted = [] then None
  else begin
    (* create preheader holding the hoisted code, redirect entry edges *)
    let f = { f with Ir.blocks = !blocks } in
    let f, pre = Ir.fresh_label f in
    let preheader = { Ir.instrs = List.rev !hoisted; term = Ir.Jmp header } in
    let redirect l = if l = header then pre else l in
    let blocks =
      LMap.mapi
        (fun l (b : Ir.block) ->
          if LSet.mem l body then b   (* keep back edges pointing at header *)
          else
            { b with
              Ir.term = Ir.map_term ~fo:(fun o -> o) ~fl:redirect b.Ir.term
            })
        f.Ir.blocks
    in
    let blocks = LMap.add pre preheader blocks in
    let entry = if f.Ir.entry = header then pre else f.Ir.entry in
    Some { f with Ir.blocks; entry }
  end

(* Process loops innermost-first, recomputing the loop forest after every
   change: hoisting into an inner preheader creates a block that belongs to
   the enclosing loop, and the enclosing loop's invariance analysis must see
   the definitions it contains. *)
let run_func (f : Ir.func) : Ir.func =
  let processed = ref LSet.empty in
  let rec go f =
    let _, loops = Mira.Analysis.natural_loops f in
    let cands =
      loops
      |> List.filter (fun (l : Mira.Analysis.loop) ->
             not (LSet.mem l.Mira.Analysis.header !processed))
      |> List.sort (fun (a : Mira.Analysis.loop) b ->
             compare b.Mira.Analysis.depth a.Mira.Analysis.depth)
    in
    match cands with
    | [] -> f
    | loop :: _ ->
      processed := LSet.add loop.Mira.Analysis.header !processed;
      (match hoist_one_loop f loop with Some f' -> go f' | None -> go f)
  in
  go f

let run (p : Ir.program) : Ir.program = Ir.map_funcs run_func p
