module Ir = Mira.Ir

(* Constant folding: evaluate instructions whose operands are all constants,
   and turn conditional branches on constant conditions into jumps.

   Folding must preserve traps: division/remainder with a constant zero
   divisor and out-of-range constant shifts are left in place so they still
   trap at run time.  Float-to-int conversion folds only when the value is
   convertible. *)

let shift_ok n = n >= 0 && n <= 62

let fold_arith (op : Ir.arith) a b : int option =
  match op with
  | Ir.Add -> Some (a + b)
  | Ir.Sub -> Some (a - b)
  | Ir.Mul -> Some (a * b)
  | Ir.Div -> if b = 0 then None else Some (a / b)
  | Ir.Rem -> if b = 0 then None else Some (a mod b)
  | Ir.And -> Some (a land b)
  | Ir.Or -> Some (a lor b)
  | Ir.Xor -> Some (a lxor b)
  | Ir.Shl -> if shift_ok b then Some (a lsl b) else None
  | Ir.Shr -> if shift_ok b then Some (a asr b) else None

let fold_farith (op : Ir.farith) a b : float =
  match op with
  | Ir.FAdd -> a +. b
  | Ir.FSub -> a -. b
  | Ir.FMul -> a *. b
  | Ir.FDiv -> a /. b

let fold_cmp (op : Ir.cmp) c : bool =
  match op with
  | Ir.Eq -> c = 0
  | Ir.Ne -> c <> 0
  | Ir.Lt -> c < 0
  | Ir.Le -> c <= 0
  | Ir.Gt -> c > 0
  | Ir.Ge -> c >= 0

let fold_instr (i : Ir.instr) : Ir.instr =
  match i with
  | Ir.Bin (op, d, Ir.Cint a, Ir.Cint b) -> begin
    match fold_arith op a b with
    | Some v -> Ir.Mov (d, Ir.Cint v)
    | None -> i
  end
  | Ir.Fbin (op, d, Ir.Cfloat a, Ir.Cfloat b) ->
    Ir.Mov (d, Ir.Cfloat (fold_farith op a b))
  | Ir.Icmp (op, d, Ir.Cint a, Ir.Cint b) ->
    Ir.Mov (d, Ir.Cbool (fold_cmp op (compare a b)))
  | Ir.Icmp (op, d, Ir.Cbool a, Ir.Cbool b) -> begin
    match op with
    | Ir.Eq -> Ir.Mov (d, Ir.Cbool (a = b))
    | Ir.Ne -> Ir.Mov (d, Ir.Cbool (a <> b))
    | _ -> i
  end
  | Ir.Fcmp (op, d, Ir.Cfloat a, Ir.Cfloat b) ->
    (* NaN-correct: use float comparisons directly *)
    let v =
      match op with
      | Ir.Eq -> a = b
      | Ir.Ne -> a <> b
      | Ir.Lt -> a < b
      | Ir.Le -> a <= b
      | Ir.Gt -> a > b
      | Ir.Ge -> a >= b
    in
    Ir.Mov (d, Ir.Cbool v)
  | Ir.Not (d, Ir.Cbool b) -> Ir.Mov (d, Ir.Cbool (not b))
  | Ir.I2f (d, Ir.Cint n) -> Ir.Mov (d, Ir.Cfloat (float_of_int n))
  | Ir.F2i (d, Ir.Cfloat f) ->
    if Float.is_nan f || Float.abs f > 4.6e18 then i
    else Ir.Mov (d, Ir.Cint (int_of_float f))
  | _ -> i

let fold_block (b : Ir.block) : Ir.block =
  let instrs = List.map fold_instr b.Ir.instrs in
  let term =
    match b.Ir.term with
    | Ir.Br (Ir.Cbool true, t, _) -> Ir.Jmp t
    | Ir.Br (Ir.Cbool false, _, e) -> Ir.Jmp e
    | t -> t
  in
  { Ir.instrs; term }

let run_func (f : Ir.func) : Ir.func =
  { f with Ir.blocks = Ir.LMap.map fold_block f.Ir.blocks }

let run (p : Ir.program) : Ir.program = Ir.map_funcs run_func p
