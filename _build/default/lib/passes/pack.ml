module Ir = Mira.Ir

(* Array packing: narrow global int arrays from 8-byte to 4-byte elements
   when every value ever stored into them is provably in [0, 2^32).

   This models the paper's Sec. III-B example, where the learned
   performance-counter model discovered that converting 64-bit pointers to
   32-bit was the key optimization for the memory-bound 181.mcf — an
   optimization the fixed -Ofast pipeline does not perform.  Like pointer
   narrowing, packing halves the footprint of the affected data and doubles
   the effective cache capacity and spatial locality, without changing any
   observable value.

   Safety analysis (whole-program, conservative):
   - only global int arrays are considered;
   - the array handle must never escape: it may not be passed as a call
     argument anywhere (a callee could store unproven values through the
     alias);
   - every initializer must be in [0, 2^32);
   - for every `store g[i] <- v`, the value operand must be *narrow*:
       - a constant in range,
       - a register whose every definition in the enclosing function is a
         narrow instruction:
           x & m        with m a constant in [0, 2^32)
           x >> k       with k a constant >= 1 and x narrow
           mov narrow
           load from a narrowable candidate (fixpoint)
   The candidate set shrinks to a fixpoint; survivors are rewritten to
   EltInt32. *)

module SMap = Ir.SMap
module LMap = Ir.LMap

let in_range32_const n = n >= 0 && n < 4294967296

(* all defining instructions of each register in a function *)
let defs_table (f : Ir.func) : (int, Ir.instr list) Hashtbl.t =
  let t = Hashtbl.create 64 in
  LMap.iter
    (fun _ (b : Ir.block) ->
      List.iter
        (fun i ->
          match Ir.def_of i with
          | Some d ->
            Hashtbl.replace t d
              (i :: Option.value ~default:[] (Hashtbl.find_opt t d))
          | None -> ())
        b.Ir.instrs)
    f.Ir.blocks;
  t

(* is operand [o] provably in [0, 2^32) given the candidate set? *)
let rec narrow_operand ~fuel (candidates : unit SMap.t) defs (o : Ir.operand) :
    bool =
  fuel > 0
  &&
  match o with
  | Ir.Cint n -> in_range32_const n
  | Ir.Reg r -> begin
    match Hashtbl.find_opt defs r with
    | None | Some [] -> false   (* parameter or undefined: unknown *)
    | Some ds ->
      List.for_all (narrow_instr ~fuel:(fuel - 1) candidates defs) ds
  end
  | _ -> false

and narrow_instr ~fuel candidates defs (i : Ir.instr) : bool =
  match i with
  | Ir.Bin (Ir.And, _, _, Ir.Cint m) | Ir.Bin (Ir.And, _, Ir.Cint m, _) ->
    in_range32_const m
  | Ir.Bin (Ir.Shr, _, x, Ir.Cint k) when k >= 1 ->
    narrow_operand ~fuel candidates defs x
  | Ir.Mov (_, src) -> narrow_operand ~fuel candidates defs src
  | Ir.Load (_, Ir.AGlob g, _) -> SMap.mem g candidates
  | _ -> false

(* does the candidate [g] survive one checking round? *)
let check_candidate (p : Ir.program) (candidates : unit SMap.t) (g : string) :
    bool =
  Ir.SMap.for_all
    (fun _ (f : Ir.func) ->
      let defs = defs_table f in
      LMap.for_all
        (fun _ (b : Ir.block) ->
          List.for_all
            (fun i ->
              match i with
              | Ir.Call (_, _, args) ->
                (* handle must not escape *)
                not (List.mem (Ir.AGlob g) args)
              | Ir.Store (Ir.AGlob g', _, v) when g' = g ->
                narrow_operand ~fuel:8 candidates defs v
              | _ -> true)
            b.Ir.instrs)
        f.Ir.blocks)
    p.Ir.funcs

let narrowable_globals (p : Ir.program) : string list =
  let init_candidates =
    List.fold_left
      (fun acc (g : Ir.global) ->
        if
          g.Ir.gelt = Ir.EltInt
          && Array.for_all
               (fun v ->
                 Float.is_integer v && in_range32_const (int_of_float v))
               g.Ir.ginit
        then SMap.add g.Ir.gname () acc
        else acc)
      SMap.empty p.Ir.globals
  in
  let rec fixpoint cands =
    let survivors =
      SMap.filter (fun g () -> check_candidate p cands g) cands
    in
    if SMap.cardinal survivors = SMap.cardinal cands then cands
    else fixpoint survivors
  in
  List.map fst (SMap.bindings (fixpoint init_candidates))

let run (p : Ir.program) : Ir.program =
  let narrow = narrowable_globals p in
  if narrow = [] then p
  else
    {
      p with
      Ir.globals =
        List.map
          (fun (g : Ir.global) ->
            if List.mem g.Ir.gname narrow then { g with Ir.gelt = Ir.EltInt32 }
            else g)
          p.Ir.globals;
    }
