module Ir = Mira.Ir

(* Dead-code elimination: liveness-driven removal of instructions whose
   result is never used.

   Traps are observable, so an instruction with a dead result is removable
   only if it provably cannot trap:
     - any pure non-trapping op (arith except div/rem, moves, compares,
       casts except f2i, len);
     - div/rem with a non-zero constant divisor, shifts with in-range
       constant counts;
     - loads from a local or global array with a constant in-bounds index.
   Calls, prints and stores are never removed. *)

module LMap = Ir.LMap
module RSet = Ir.RSet

let removable (sizes : (string, int) Hashtbl.t) (i : Ir.instr) : bool =
  match i with
  | Ir.Call _ | Ir.Print _ | Ir.Store _ -> false
  | Ir.Bin ((Ir.Div | Ir.Rem), _, _, Ir.Cint n) -> n <> 0
  | Ir.Bin ((Ir.Div | Ir.Rem), _, _, _) -> false
  | Ir.Bin ((Ir.Shl | Ir.Shr), _, _, Ir.Cint n) -> n >= 0 && n <= 62
  | Ir.Bin ((Ir.Shl | Ir.Shr), _, _, _) -> false
  | Ir.Bin _ | Ir.Fbin _ | Ir.Icmp _ | Ir.Fcmp _ | Ir.Not _ | Ir.Mov _
  | Ir.I2f _ | Ir.Alen _ ->
    true
  | Ir.F2i (_, Ir.Cfloat f) -> not (Float.is_nan f || Float.abs f > 4.6e18)
  | Ir.F2i _ -> false
  | Ir.Load (_, arr, Ir.Cint ix) -> begin
    match arr with
    | Ir.ALoc n | Ir.AGlob n -> (
      match Hashtbl.find_opt sizes n with
      | Some size -> ix >= 0 && ix < size
      | None -> false)
    | _ -> false
  end
  | Ir.Load _ -> false

(* One backwards sweep over a block given its live-out set; returns the
   kept instructions and whether anything was removed. *)
let sweep_block sizes (b : Ir.block) (live_out : RSet.t) : Ir.block * bool =
  let removed = ref false in
  let live = ref (RSet.union live_out (RSet.of_list (Ir.term_uses b.Ir.term))) in
  let kept =
    List.fold_left
      (fun acc i ->
        let dead =
          match Ir.def_of i with
          | Some d -> not (RSet.mem d !live)
          | None -> false
        in
        if dead && removable sizes i then begin
          removed := true;
          acc
        end
        else begin
          (match Ir.def_of i with
           | Some d -> live := RSet.remove d !live
           | None -> ());
          List.iter (fun r -> live := RSet.add r !live) (Ir.uses_of i);
          i :: acc
        end)
      []
      (List.rev b.Ir.instrs)
  in
  ({ b with Ir.instrs = kept }, !removed)

let array_sizes (globals : Ir.global list) (f : Ir.func) =
  let sizes = Hashtbl.create 8 in
  List.iter (fun (g : Ir.global) -> Hashtbl.replace sizes g.Ir.gname g.Ir.gsize) globals;
  (* local names can shadow globals in the table; locals win, matching the
     operand constructors (ALoc vs AGlob) — keyed by name is fine because a
     name is only ever used with one constructor within a function *)
  List.iter (fun (n, _, sz) -> Hashtbl.replace sizes n sz) f.Ir.locals;
  sizes

let run_func (globals : Ir.global list) (f : Ir.func) : Ir.func =
  let sizes = array_sizes globals f in
  let rec fix f =
    let cfg = Mira.Analysis.cfg_of f in
    let lv = Mira.Analysis.liveness f cfg in
    let changed = ref false in
    let blocks =
      LMap.mapi
        (fun l b ->
          match LMap.find_opt l lv.Mira.Analysis.live_out with
          | None -> b
          | Some out ->
            let b', r = sweep_block sizes b out in
            if r then changed := true;
            b')
        f.Ir.blocks
    in
    let f = { f with Ir.blocks } in
    if !changed then fix f else f
  in
  fix f

let run (p : Ir.program) : Ir.program =
  Ir.map_funcs (run_func p.Ir.globals) p
