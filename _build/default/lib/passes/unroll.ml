module Ir = Mira.Ir

(* Loop unrolling for canonical counted loops, by a factor k ∈ {2,4,8}.
   The three factors are registered as three distinct passes, matching the
   paper's footnote 1 (unroll factors counted as individual optimizations,
   allowed at most once per sequence — the sequence generator enforces the
   at-most-once rule).

   Recognized shape (produced by `for` lowering, possibly after
   const-prop/folding):

     H:  c = icmp.lt i, B        (exactly this one instruction)
         br c, BODY, EXIT        (BODY inside the loop, EXIT outside)
     ... body blocks ...
     L:  ...; i = add i, S       (last instruction of the unique latch)
         jmp H

   with S a positive integer constant, B a constant or a register with no
   definition in the loop, i defined exactly once in the loop (the
   increment) and c used only by H's branch.  Note the phase interaction:
   `for` lowering materializes the step as a register, so unrolling
   typically only fires after constant propagation has substituted it —
   sequences that run `unroll` before `cprop` get no benefit, exactly the
   kind of ordering effect the paper studies.

   Transformation (guard + k-fold body + original remainder loop):

     UH: [t = sub B, (k-1)*S]          (elided when B is constant)
         g = icmp.lt i, t
         br g, COPY1, H
     COPYj: clone of the body; the latch edge goes to COPYj+1, the last
            copy jumps back to UH; early exits keep their original targets.

   All outside edges into H are redirected to UH.  Since the guard ensures
   i + j*S < B for all j < k, the k copies run without re-testing; the
   original loop handles the remainder.  Caveat (documented in DESIGN.md):
   computing B - (k-1)*S wraps if B is within (k-1)*S of min_int; bounds
   that extreme do not occur in generated code. *)

module LMap = Ir.LMap
module LSet = Ir.LSet

type counted = {
  header : Ir.label;
  body_entry : Ir.label;
  exit : Ir.label;
  latch : Ir.label;
  ivar : Ir.reg;           (* induction variable *)
  cmp_dst : Ir.reg;
  bound : Ir.operand;      (* Cint or invariant Reg *)
  step : int;              (* positive constant *)
}

(* count definitions of each register across a set of blocks *)
let defs_in (f : Ir.func) (body : LSet.t) : (int, int) Hashtbl.t =
  let defs = Hashtbl.create 32 in
  LSet.iter
    (fun l ->
      List.iter
        (fun i ->
          match Ir.def_of i with
          | Some d ->
            Hashtbl.replace defs d
              (1 + Option.value ~default:0 (Hashtbl.find_opt defs d))
          | None -> ())
        (Ir.find_block f l).Ir.instrs)
    body;
  defs

(* uses of register r anywhere in the function, excluding header's branch *)
let used_outside_branch (f : Ir.func) (header : Ir.label) r =
  LMap.exists
    (fun l (b : Ir.block) ->
      List.exists (fun i -> List.mem r (Ir.uses_of i)) b.Ir.instrs
      || (l <> header && List.mem r (Ir.term_uses b.Ir.term)))
    f.Ir.blocks

let recognize (f : Ir.func) (loop : Mira.Analysis.loop) : counted option =
  let header = loop.Mira.Analysis.header in
  let body = loop.Mira.Analysis.body in
  let hb = Ir.find_block f header in
  match (hb.Ir.instrs, hb.Ir.term, loop.Mira.Analysis.latches) with
  | ( [ Ir.Icmp (Ir.Lt, c, Ir.Reg i, bound) ],
      Ir.Br (Ir.Reg c', body_entry, exit),
      [ latch ] )
    when c = c'
         && body_entry <> header
         && LSet.mem body_entry body
         && not (LSet.mem exit body) -> begin
    let lb = Ir.find_block f latch in
    if lb.Ir.term <> Ir.Jmp header then None
    else
      match List.rev lb.Ir.instrs with
      | Ir.Bin (Ir.Add, i', Ir.Reg i'', Ir.Cint s) :: _
        when i' = i && i'' = i && s > 0 -> begin
        let defs = defs_in f body in
        let inv_bound =
          match bound with
          | Ir.Cint _ -> true
          | Ir.Reg b -> not (Hashtbl.mem defs b)
          | _ -> false
        in
        if
          inv_bound
          && Hashtbl.find_opt defs i = Some 1
          && Hashtbl.find_opt defs c = Some 1
          && not (used_outside_branch f header c)
        then Some { header; body_entry; exit; latch; ivar = i; cmp_dst = c; bound; step = s }
        else None
      end
      | _ -> None
  end
  | _ -> None

let body_size (f : Ir.func) (body : LSet.t) =
  LSet.fold (fun l acc -> acc + List.length (Ir.find_block f l).Ir.instrs) body 0

let unroll_loop (f : Ir.func) (loop : Mira.Analysis.loop) (c : counted)
    ~(k : int) : Ir.func * Ir.label =
  let body = loop.Mira.Analysis.body in
  let clone_set = LSet.remove c.header body in
  (* fresh labels for k copies of every body block *)
  let f = ref f in
  let copy_maps =
    Array.init k (fun _ ->
        LSet.fold
          (fun l acc ->
            let f', nl = Ir.fresh_label !f in
            f := f';
            LMap.add l nl acc)
          clone_set LMap.empty)
  in
  let fn = !f in
  let guard_label, fn =
    let fn, l = Ir.fresh_label fn in
    (l, fn)
  in
  (* destination of the latch edge for copy j *)
  let next_of j =
    if j = k - 1 then guard_label
    else LMap.find c.body_entry copy_maps.(j + 1)
  in
  let remap j l =
    if l = c.header then next_of j
    else match LMap.find_opt l copy_maps.(j) with Some nl -> nl | None -> l
  in
  let blocks = ref fn.Ir.blocks in
  (* materialize the k copies *)
  for j = 0 to k - 1 do
    LSet.iter
      (fun l ->
        let b = Ir.find_block fn l in
        let nb =
          {
            Ir.instrs = b.Ir.instrs;
            term = Ir.map_term ~fo:(fun o -> o) ~fl:(remap j) b.Ir.term;
          }
        in
        blocks := LMap.add (LMap.find l copy_maps.(j)) nb !blocks)
      clone_set
  done;
  (* guard block *)
  let d = (k - 1) * c.step in
  let fn = { fn with Ir.blocks = !blocks } in
  let fn, guard_instrs, guard_cond =
    match c.bound with
    | Ir.Cint b ->
      let fn, g = Ir.fresh_reg fn in
      (fn, [ Ir.Icmp (Ir.Lt, g, Ir.Reg c.ivar, Ir.Cint (b - d)) ], g)
    | bound ->
      let fn, t = Ir.fresh_reg fn in
      let fn, g = Ir.fresh_reg fn in
      ( fn,
        [
          Ir.Bin (Ir.Sub, t, bound, Ir.Cint d);
          Ir.Icmp (Ir.Lt, g, Ir.Reg c.ivar, Ir.Reg t);
        ],
        g )
  in
  let guard_block =
    {
      Ir.instrs = guard_instrs;
      term =
        Ir.Br (Ir.Reg guard_cond, LMap.find c.body_entry copy_maps.(0), c.header);
    }
  in
  let blocks = LMap.add guard_label guard_block fn.Ir.blocks in
  (* redirect outside edges into the header to the guard *)
  let blocks =
    LMap.mapi
      (fun l (b : Ir.block) ->
        if l = guard_label || LSet.mem l body then b
        else
          let in_copies =
            Array.exists (fun m -> LMap.exists (fun _ nl -> nl = l) m) copy_maps
          in
          if in_copies then b
          else
            { b with
              Ir.term =
                Ir.map_term ~fo:(fun o -> o)
                  ~fl:(fun t -> if t = c.header then guard_label else t)
                  b.Ir.term
            })
      blocks
  in
  let entry = if fn.Ir.entry = c.header then guard_label else fn.Ir.entry in
  ({ fn with Ir.blocks; entry }, guard_label)

let max_copy_size = 80

let run_with_factor ~(k : int) (p : Ir.program) : Ir.program =
  let run_func (f : Ir.func) : Ir.func =
    (* unroll each matching innermost loop once; recompute the loop forest
       after each transformation *)
    let processed = ref LSet.empty in
    let rec go f =
      let _, loops = Mira.Analysis.natural_loops f in
      let innermost (l : Mira.Analysis.loop) =
        not
          (List.exists
             (fun (l' : Mira.Analysis.loop) ->
               l'.Mira.Analysis.header <> l.Mira.Analysis.header
               && LSet.mem l'.Mira.Analysis.header l.Mira.Analysis.body)
             loops)
      in
      let cand =
        List.find_opt
          (fun (l : Mira.Analysis.loop) ->
            (not (LSet.mem l.Mira.Analysis.header !processed))
            && innermost l
            && body_size f l.Mira.Analysis.body <= max_copy_size)
          loops
      in
      match cand with
      | None -> f
      | Some loop -> begin
        processed := LSet.add loop.Mira.Analysis.header !processed;
        match recognize f loop with
        | Some c ->
          (* the unrolled copies + guard form a new counted loop themselves;
             mark its header as processed so one pass application unrolls
             each source loop exactly once *)
          let f', guard = unroll_loop f loop c ~k in
          processed := LSet.add guard !processed;
          go f'
        | None -> go f
      end
    in
    go f
  in
  Ir.map_funcs run_func p

let run2 p = run_with_factor ~k:2 p
let run4 p = run_with_factor ~k:4 p
let run8 p = run_with_factor ~k:8 p
