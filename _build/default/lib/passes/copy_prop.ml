module Ir = Mira.Ir

(* Global copy propagation: forward dataflow on "available copies".
   State maps a register d to the register s it is known to currently copy
   (d = mov s, with neither redefined since).  Join is map intersection.
   Uses of d are replaced by the root of its copy chain. *)

module RMap = Map.Make (Int)
module LMap = Ir.LMap

(* chase the copy chain to its root *)
let rec root (st : int RMap.t) r =
  match RMap.find_opt r st with
  | Some s when s <> r -> root st s
  | _ -> r

(* kill every pair mentioning register x (as source or destination) *)
let kill (st : int RMap.t) x =
  RMap.filter (fun d s -> d <> x && s <> x) st

let transfer_instr (st : int RMap.t) (i : Ir.instr) : int RMap.t =
  match i with
  | Ir.Mov (d, Ir.Reg s) when d <> s ->
    let s = root st s in
    let st = kill st d in
    if s = d then st else RMap.add d s st
  | _ -> (
    match Ir.def_of i with Some d -> kill st d | None -> st)

let transfer_block st (b : Ir.block) = List.fold_left transfer_instr st b.Ir.instrs

(* Intersection join; [None] stands for "all pairs" (unvisited). *)
let join a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some m1, Some m2 ->
    Some
      (RMap.merge
         (fun _ x y ->
           match (x, y) with Some a, Some b when a = b -> Some a | _ -> None)
         m1 m2)

let run_func (f : Ir.func) : Ir.func =
  let cfg = Mira.Analysis.cfg_of f in
  let preds = Mira.Analysis.preds cfg in
  let ins : (int, int RMap.t option) Hashtbl.t = Hashtbl.create 16 in
  Array.iter (fun l -> Hashtbl.replace ins l None) cfg.Mira.Analysis.rpo;
  Hashtbl.replace ins f.Ir.entry (Some RMap.empty);
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun l ->
        let in_st =
          if l = f.Ir.entry then Some RMap.empty
          else
            List.fold_left
              (fun acc p ->
                let out =
                  match Hashtbl.find ins p with
                  | None -> None
                  | Some st -> Some (transfer_block st (Ir.find_block f p))
                in
                join acc out)
              None (preds l)
        in
        let cur = Hashtbl.find ins l in
        let eq =
          match (cur, in_st) with
          | None, None -> true
          | Some a, Some b -> RMap.equal ( = ) a b
          | _ -> false
        in
        if not eq then begin
          Hashtbl.replace ins l in_st;
          changed := true
        end)
      cfg.Mira.Analysis.rpo
  done;
  let subst st (o : Ir.operand) : Ir.operand =
    match o with
    | Ir.Reg r ->
      let r' = root st r in
      if r' = r then o else Ir.Reg r'
    | _ -> o
  in
  let rewrite_block l (b : Ir.block) : Ir.block =
    match Hashtbl.find_opt ins l with
    | None | Some None -> b
    | Some (Some st0) ->
      let st = ref st0 in
      let instrs =
        List.map
          (fun i ->
            let i' = Ir.map_instr ~fo:(subst !st) ~fd:(fun d -> d) i in
            st := transfer_instr !st i';
            i')
          b.Ir.instrs
      in
      let term = Ir.map_term ~fo:(subst !st) ~fl:(fun l -> l) b.Ir.term in
      { Ir.instrs; term }
  in
  { f with Ir.blocks = LMap.mapi rewrite_block f.Ir.blocks }

let run (p : Ir.program) : Ir.program = Ir.map_funcs run_func p
