lib/passes/peephole.ml: List Mira
