lib/passes/strength.ml: List Mira
