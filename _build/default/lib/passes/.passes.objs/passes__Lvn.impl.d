lib/passes/lvn.ml: Hashtbl List Mira
