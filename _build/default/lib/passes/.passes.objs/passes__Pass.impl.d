lib/passes/pass.ml: Const_fold Const_prop Copy_prop Dce Inline Licm List Lvn Mira Pack Peephole Printf Simplify_cfg Strength String Unroll
