lib/passes/const_prop.ml: Array Hashtbl Int List Map Mira
