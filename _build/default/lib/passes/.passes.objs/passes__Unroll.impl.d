lib/passes/unroll.ml: Array Hashtbl List Mira Option
