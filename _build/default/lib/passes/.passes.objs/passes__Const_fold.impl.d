lib/passes/const_fold.ml: Float List Mira
