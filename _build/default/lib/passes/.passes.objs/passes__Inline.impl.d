lib/passes/inline.ml: List Mira
