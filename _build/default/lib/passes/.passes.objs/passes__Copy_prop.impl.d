lib/passes/copy_prop.ml: Array Hashtbl Int List Map Mira
