lib/passes/dce.ml: Float Hashtbl List Mira
