lib/passes/licm.ml: Hashtbl List Mira Option
