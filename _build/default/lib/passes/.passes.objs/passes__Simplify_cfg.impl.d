lib/passes/simplify_cfg.ml: Mira
