lib/passes/pass.mli: Mira
