lib/passes/pack.ml: Array Float Hashtbl List Mira Option
