module Ir = Mira.Ir

(* Function inlining.  A call site is inlined when the callee is
   non-recursive (does not call itself, directly or through the functions it
   transitively calls), small (at most [max_callee_size] instructions), and
   has no local arrays (frame arrays are zero-initialized per activation,
   and inlining into a loop would lose the re-initialization, so such
   callees are excluded rather than emitting explicit zeroing code).

   The callee body is cloned with registers and labels shifted past the
   caller's, parameter registers are seeded with moves from the argument
   operands, every `ret v` becomes `mov dst, v; jmp continuation`, and the
   call block is split around the call site. *)

module LMap = Ir.LMap
module SMap = Ir.SMap

let max_callee_size = 40
let max_caller_growth = 400

(* functions (transitively) reachable from f's calls *)
let callees_of (f : Ir.func) : string list =
  LMap.fold
    (fun _ (b : Ir.block) acc ->
      List.fold_left
        (fun acc i ->
          match i with Ir.Call (_, g, _) -> g :: acc | _ -> acc)
        acc b.Ir.instrs)
    f.Ir.blocks []

(* [name] is recursive iff it is reachable from itself in the call graph *)
let is_recursive (p : Ir.program) (name : string) : bool =
  let rec visit seen g =
    if List.mem g seen then false
    else
      match SMap.find_opt g p.Ir.funcs with
      | None -> false
      | Some fg ->
        List.exists (fun h -> h = name || visit (g :: seen) h) (callees_of fg)
  in
  visit [] name

let inlinable (p : Ir.program) (g : string) : bool =
  match SMap.find_opt g p.Ir.funcs with
  | None -> false
  | Some fg ->
    fg.Ir.locals = []
    && Ir.func_size fg <= max_callee_size
    && not (is_recursive p g)

(* Inline the first eligible call site found in [f]; None if none. *)
let inline_one (p : Ir.program) (f : Ir.func) : Ir.func option =
  let site =
    LMap.fold
      (fun l (b : Ir.block) acc ->
        match acc with
        | Some _ -> acc
        | None ->
          let rec find before = function
            | [] -> None
            | (Ir.Call (dst, g, args) as _i) :: rest when inlinable p g ->
              Some (l, List.rev before, dst, g, args, rest)
            | i :: rest -> find (i :: before) rest
          in
          find [] b.Ir.instrs)
      f.Ir.blocks None
  in
  match site with
  | None -> None
  | Some (l, before, dst, g, args, after) ->
    let callee = Ir.find_func p g in
    let reg_off = f.Ir.nregs in
    let lab_off = f.Ir.nlabels in
    let cont = lab_off + callee.Ir.nlabels in
    let fo (o : Ir.operand) =
      match o with
      | Ir.Reg r -> Ir.Reg (r + reg_off)
      | Ir.ALoc _ ->
        (* unreachable: callees with locals are not inlinable *)
        assert false
      | _ -> o
    in
    let fl lab = lab + lab_off in
    let call_block = Ir.find_block f l in
    (* clone callee blocks, rewriting rets into mov+jmp continuation *)
    let cloned =
      LMap.fold
        (fun cl (cb : Ir.block) acc ->
          let instrs =
            List.map (Ir.map_instr ~fo ~fd:(fun d -> d + reg_off)) cb.Ir.instrs
          in
          let block =
            match cb.Ir.term with
            | Ir.Ret v ->
              let extra =
                match (dst, v) with
                | Some d, Some v -> [ Ir.Mov (d, fo v) ]
                | Some d, None ->
                  (* calling a void function for a value cannot happen in
                     well-typed code; keep a defined value anyway *)
                  [ Ir.Mov (d, Ir.Cint 0) ]
                | None, _ -> []
              in
              { Ir.instrs = instrs @ extra; term = Ir.Jmp cont }
            | t -> { Ir.instrs; term = Ir.map_term ~fo ~fl t }
          in
          LMap.add (fl cl) block acc)
        callee.Ir.blocks LMap.empty
    in
    (* parameter setup in the call block, then jump into the clone *)
    let setup =
      List.map2 (fun pr a -> Ir.Mov (pr + reg_off, a)) callee.Ir.params args
    in
    let entry_block =
      { Ir.instrs = before @ setup; term = Ir.Jmp (fl callee.Ir.entry) }
    in
    let cont_block = { Ir.instrs = after; term = call_block.Ir.term } in
    let blocks =
      f.Ir.blocks
      |> LMap.add l entry_block
      |> LMap.union (fun _ a _ -> Some a) cloned
      |> LMap.add cont cont_block
    in
    Some
      {
        f with
        Ir.blocks;
        nregs = f.Ir.nregs + callee.Ir.nregs;
        nlabels = f.Ir.nlabels + callee.Ir.nlabels + 1;
      }

let run (p : Ir.program) : Ir.program =
  let inline_func fname (f : Ir.func) : Ir.func =
    let budget = Ir.func_size f + max_caller_growth in
    let rec go f =
      if Ir.func_size f > budget then f
      else
        match inline_one p f with
        | Some f' -> go f'
        | None -> f
    in
    if fname = "" then f else go f
  in
  (* inline against the ORIGINAL callee bodies to keep growth predictable *)
  { p with Ir.funcs = SMap.mapi inline_func p.Ir.funcs }
