module Ir = Mira.Ir

(* Peephole simplification: algebraic identities and trivially-known
   comparison results, applied instruction-locally.

   Float identities are restricted to those exact under IEEE semantics
   (x *. 1.0 and x /. 1.0 preserve NaN payloads, signed zeros and
   infinities; x +. 0.0 does NOT, because -0.0 +. 0.0 = 0.0). *)

let simpl (i : Ir.instr) : Ir.instr =
  match i with
  (* additive / subtractive identities *)
  | Ir.Bin (Ir.Add, d, x, Ir.Cint 0) | Ir.Bin (Ir.Add, d, Ir.Cint 0, x) ->
    Ir.Mov (d, x)
  | Ir.Bin (Ir.Sub, d, x, Ir.Cint 0) -> Ir.Mov (d, x)
  | Ir.Bin (Ir.Sub, d, Ir.Reg a, Ir.Reg b) when a = b -> Ir.Mov (d, Ir.Cint 0)
  (* multiplicative identities *)
  | Ir.Bin (Ir.Mul, d, x, Ir.Cint 1) | Ir.Bin (Ir.Mul, d, Ir.Cint 1, x) ->
    Ir.Mov (d, x)
  | Ir.Bin (Ir.Mul, d, _, Ir.Cint 0) | Ir.Bin (Ir.Mul, d, Ir.Cint 0, _) ->
    Ir.Mov (d, Ir.Cint 0)
  | Ir.Bin (Ir.Div, d, x, Ir.Cint 1) -> Ir.Mov (d, x)
  | Ir.Bin (Ir.Rem, d, _, Ir.Cint 1) -> Ir.Mov (d, Ir.Cint 0)
  (* bitwise identities *)
  | Ir.Bin (Ir.And, d, _, Ir.Cint 0) | Ir.Bin (Ir.And, d, Ir.Cint 0, _) ->
    Ir.Mov (d, Ir.Cint 0)
  | Ir.Bin (Ir.And, d, x, Ir.Cint -1) | Ir.Bin (Ir.And, d, Ir.Cint -1, x) ->
    Ir.Mov (d, x)
  | Ir.Bin (Ir.And, d, Ir.Reg a, Ir.Reg b) when a = b -> Ir.Mov (d, Ir.Reg a)
  | Ir.Bin (Ir.Or, d, x, Ir.Cint 0) | Ir.Bin (Ir.Or, d, Ir.Cint 0, x) ->
    Ir.Mov (d, x)
  | Ir.Bin (Ir.Or, d, Ir.Reg a, Ir.Reg b) when a = b -> Ir.Mov (d, Ir.Reg a)
  | Ir.Bin (Ir.Xor, d, x, Ir.Cint 0) | Ir.Bin (Ir.Xor, d, Ir.Cint 0, x) ->
    Ir.Mov (d, x)
  | Ir.Bin (Ir.Xor, d, Ir.Reg a, Ir.Reg b) when a = b -> Ir.Mov (d, Ir.Cint 0)
  (* shifts by zero *)
  | Ir.Bin (Ir.Shl, d, x, Ir.Cint 0) | Ir.Bin (Ir.Shr, d, x, Ir.Cint 0) ->
    Ir.Mov (d, x)
  (* integer comparisons of a register with itself *)
  | Ir.Icmp ((Ir.Eq | Ir.Le | Ir.Ge), d, Ir.Reg a, Ir.Reg b) when a = b ->
    Ir.Mov (d, Ir.Cbool true)
  | Ir.Icmp ((Ir.Ne | Ir.Lt | Ir.Gt), d, Ir.Reg a, Ir.Reg b) when a = b ->
    Ir.Mov (d, Ir.Cbool false)
  (* exact float identities *)
  | Ir.Fbin (Ir.FMul, d, x, Ir.Cfloat 1.0) | Ir.Fbin (Ir.FMul, d, Ir.Cfloat 1.0, x)
    -> Ir.Mov (d, x)
  | Ir.Fbin (Ir.FDiv, d, x, Ir.Cfloat 1.0) -> Ir.Mov (d, x)
  | _ -> i

(* Remove self-moves (r = mov r), which other rewrites can create. *)
let cleanup instrs =
  List.filter
    (function Ir.Mov (d, Ir.Reg s) when d = s -> false | _ -> true)
    instrs

let run_block (b : Ir.block) : Ir.block =
  { b with Ir.instrs = cleanup (List.map simpl b.Ir.instrs) }

let run_func (f : Ir.func) : Ir.func =
  { f with Ir.blocks = Ir.LMap.map run_block f.Ir.blocks }

let run (p : Ir.program) : Ir.program = Ir.map_funcs run_func p
