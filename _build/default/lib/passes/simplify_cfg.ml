module Ir = Mira.Ir

(* CFG simplification: constant-branch elimination, jump threading through
   empty blocks, straight-line block merging, same-target branch collapse,
   and unreachable-block removal.  Iterates to a fixpoint. *)

module LMap = Ir.LMap
module LSet = Ir.LSet

(* Collapse br with identical targets; fold constant branches (again — other
   passes may have exposed new constants since const_fold last ran). *)
let simplify_terms (f : Ir.func) : Ir.func =
  let blocks =
    LMap.map
      (fun (b : Ir.block) ->
        let term =
          match b.Ir.term with
          | Ir.Br (_, t, e) when t = e -> Ir.Jmp t
          | Ir.Br (Ir.Cbool true, t, _) -> Ir.Jmp t
          | Ir.Br (Ir.Cbool false, _, e) -> Ir.Jmp e
          | t -> t
        in
        { b with Ir.term })
      f.Ir.blocks
  in
  { f with Ir.blocks }

(* Redirect edges through empty forwarding blocks (an empty block whose
   terminator is [Jmp t] forwards to t).  Cycles of empty blocks (infinite
   empty loops) are left alone: forwarding resolution stops if it would
   loop. *)
let thread_jumps (f : Ir.func) : Ir.func =
  let forward l =
    let rec chase seen l =
      if LSet.mem l seen then l
      else
        match LMap.find_opt l f.Ir.blocks with
        | Some { Ir.instrs = []; term = Ir.Jmp t } when t <> l ->
          chase (LSet.add l seen) t
        | _ -> l
    in
    chase LSet.empty l
  in
  let blocks =
    LMap.map
      (fun (b : Ir.block) ->
        let term =
          match b.Ir.term with
          | Ir.Jmp t -> Ir.Jmp (forward t)
          | Ir.Br (c, t, e) ->
            let t' = forward t and e' = forward e in
            if t' = e' then Ir.Jmp t' else Ir.Br (c, t', e')
          | t -> t
        in
        { b with Ir.term })
      f.Ir.blocks
  in
  let entry = forward f.Ir.entry in
  { f with Ir.blocks; entry }

let remove_unreachable (f : Ir.func) : Ir.func =
  let cfg = Mira.Analysis.cfg_of f in
  let blocks =
    LMap.filter (fun l _ -> LSet.mem l cfg.Mira.Analysis.reachable) f.Ir.blocks
  in
  { f with Ir.blocks }

(* Merge b into a when a ends with [Jmp b] and b's only predecessor is a. *)
let merge_blocks (f : Ir.func) : Ir.func =
  let cfg = Mira.Analysis.cfg_of f in
  let preds l = Mira.Analysis.preds cfg l in
  let merged = ref f.Ir.blocks in
  let changed = ref true in
  while !changed do
    changed := false;
    LMap.iter
      (fun a (ba : Ir.block) ->
        match ba.Ir.term with
        | Ir.Jmp b when b <> a && b <> f.Ir.entry -> begin
          match LMap.find_opt b !merged with
          | Some bb when preds b = [ a ] && LMap.mem a !merged ->
            (* re-read a: it may have been extended already this round *)
            let ba = LMap.find a !merged in
            if ba.Ir.term = Ir.Jmp b then begin
              merged :=
                LMap.add a
                  { Ir.instrs = ba.Ir.instrs @ bb.Ir.instrs; term = bb.Ir.term }
                  !merged;
              merged := LMap.remove b !merged;
              changed := true
            end
          | _ -> ()
        end
        | _ -> ())
      !merged
  done;
  { f with Ir.blocks = !merged }

let run_func (f : Ir.func) : Ir.func =
  let rec fix n f =
    if n = 0 then f
    else begin
      let f' =
        f |> simplify_terms |> thread_jumps |> remove_unreachable
        |> merge_blocks
      in
      if f'.Ir.blocks == f.Ir.blocks || Ir.func_to_string f' = Ir.func_to_string f
      then f'
      else fix (n - 1) f'
    end
  in
  fix 8 f

let run (p : Ir.program) : Ir.program = Ir.map_funcs run_func p
