module Ir = Mira.Ir

(* Global constant propagation: forward iterative dataflow on the standard
   three-level lattice (Top = no definition seen yet, Const c, Bottom =
   varies).  Uses whose in-state is Const are replaced with the constant;
   folding the resulting all-constant instructions is Const_fold's job, so
   the classic const_fold/const_prop phase interaction is preserved as an
   object of study. *)

module RMap = Map.Make (Int)
module LMap = Ir.LMap

type cval = Top | Const of Ir.operand | Bottom

let join a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Const x, Const y when x = y -> Const x
  | _ -> Bottom

let join_maps (m1 : cval RMap.t) (m2 : cval RMap.t) : cval RMap.t =
  RMap.merge
    (fun _ a b ->
      match (a, b) with
      | None, x | x, None -> x   (* absent = Top *)
      | Some a, Some b -> Some (join a b))
    m1 m2

let equal_maps m1 m2 = RMap.equal (fun a b -> a = b) m1 m2

let is_const_operand = function
  | Ir.Cint _ | Ir.Cfloat _ | Ir.Cbool _ -> true
  | _ -> false

(* Transfer of a single instruction over the state (no rewriting). *)
let transfer_instr (st : cval RMap.t) (i : Ir.instr) : cval RMap.t =
  match i with
  | Ir.Mov (d, src) when is_const_operand src -> RMap.add d (Const src) st
  | Ir.Mov (d, Ir.Reg s) ->
    RMap.add d (match RMap.find_opt s st with Some v -> v | None -> Top) st
  | _ -> (
    match Ir.def_of i with
    | Some d -> RMap.add d Bottom st
    | None -> st)

let transfer_block (st : cval RMap.t) (b : Ir.block) : cval RMap.t =
  List.fold_left transfer_instr st b.Ir.instrs

let run_func (f : Ir.func) : Ir.func =
  let cfg = Mira.Analysis.cfg_of f in
  let preds = Mira.Analysis.preds cfg in
  (* entry state: parameters are Bottom (unknown) *)
  let entry_state =
    List.fold_left (fun m r -> RMap.add r Bottom m) RMap.empty f.Ir.params
  in
  let ins = Hashtbl.create 16 in
  Array.iter (fun l -> Hashtbl.replace ins l RMap.empty) cfg.Mira.Analysis.rpo;
  Hashtbl.replace ins f.Ir.entry entry_state;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun l ->
        let in_st =
          if l = f.Ir.entry then entry_state
          else
            match preds l with
            | [] -> RMap.empty
            | ps ->
              List.fold_left
                (fun acc p ->
                  let out =
                    transfer_block (Hashtbl.find ins p) (Ir.find_block f p)
                  in
                  join_maps acc out)
                RMap.empty ps
        in
        if not (equal_maps in_st (Hashtbl.find ins l)) then begin
          Hashtbl.replace ins l in_st;
          changed := true
        end)
      cfg.Mira.Analysis.rpo
  done;
  (* rewrite, walking each block with its in-state *)
  let subst st (o : Ir.operand) : Ir.operand =
    match o with
    | Ir.Reg r -> (
      match RMap.find_opt r st with Some (Const c) -> c | _ -> o)
    | _ -> o
  in
  let rewrite_block l (b : Ir.block) : Ir.block =
    match Hashtbl.find_opt ins l with
    | None -> b   (* unreachable: leave as-is *)
    | Some st0 ->
      let st = ref st0 in
      let instrs =
        List.map
          (fun i ->
            let i' = Ir.map_instr ~fo:(subst !st) ~fd:(fun d -> d) i in
            st := transfer_instr !st i';
            i')
          b.Ir.instrs
      in
      let term = Ir.map_term ~fo:(subst !st) ~fl:(fun l -> l) b.Ir.term in
      { Ir.instrs; term }
  in
  { f with Ir.blocks = LMap.mapi rewrite_block f.Ir.blocks }

let run (p : Ir.program) : Ir.program = Ir.map_funcs run_func p
