module Ir = Mira.Ir

(* Local value numbering (the CSE pass): within each basic block, detect
   recomputations of available expressions and replace them with a move
   from the register already holding the value.  Also performs redundant
   load elimination within the block: a load from the same array and index
   value-number as an earlier one, with no intervening store or call, reuses
   the earlier result — stores and calls bump a memory epoch that is part of
   every load's key.

   Commutative operators are canonicalized by ordering their operand value
   numbers.  Calls and prints are barriers only for memory, not for scalar
   value numbers. *)

type key =
  | KBin of Ir.arith * int * int
  | KFbin of Ir.farith * int * int
  | KIcmp of Ir.cmp * int * int
  | KFcmp of Ir.cmp * int * int
  | KNot of int
  | KI2f of int
  | KF2i of int
  | KLoad of int * int * int   (* array vn, index vn, memory epoch *)
  | KAlen of int
  | KConst of Ir.operand

type st = {
  vn_of_reg : (int, int) Hashtbl.t;
  vn_of_key : (key, int) Hashtbl.t;
  holder : (int, int) Hashtbl.t;      (* vn -> register currently holding it *)
  held_by : (int, int) Hashtbl.t;     (* register -> vn it holds *)
  mutable next : int;
  mutable epoch : int;
}

let mk () =
  {
    vn_of_reg = Hashtbl.create 32;
    vn_of_key = Hashtbl.create 32;
    holder = Hashtbl.create 32;
    held_by = Hashtbl.create 32;
    next = 0;
    epoch = 0;
  }

let fresh st =
  let v = st.next in
  st.next <- v + 1;
  v

let vn_of_operand st (o : Ir.operand) : int =
  match o with
  | Ir.Reg r -> (
    match Hashtbl.find_opt st.vn_of_reg r with
    | Some v -> v
    | None ->
      let v = fresh st in
      Hashtbl.replace st.vn_of_reg r v;
      (* the register itself holds this unknown value *)
      Hashtbl.replace st.holder v r;
      Hashtbl.replace st.held_by r v;
      v)
  | _ -> (
    let k = KConst o in
    match Hashtbl.find_opt st.vn_of_key k with
    | Some v -> v
    | None ->
      let v = fresh st in
      Hashtbl.replace st.vn_of_key k v;
      v)

(* register [d] is being overwritten: clear any vn it used to hold *)
let clobber st d =
  match Hashtbl.find_opt st.held_by d with
  | Some v ->
    (match Hashtbl.find_opt st.holder v with
     | Some r when r = d -> Hashtbl.remove st.holder v
     | _ -> ());
    Hashtbl.remove st.held_by d
  | None -> ()

let set_reg_vn st d v =
  clobber st d;
  Hashtbl.replace st.vn_of_reg d v;
  if not (Hashtbl.mem st.holder v) then begin
    Hashtbl.replace st.holder v d;
    Hashtbl.replace st.held_by d v
  end

let commutative : Ir.arith -> bool = function
  | Ir.Add | Ir.Mul | Ir.And | Ir.Or | Ir.Xor -> true
  | _ -> false

let fcommutative : Ir.farith -> bool = function
  | Ir.FAdd | Ir.FMul -> true
  | _ -> false

let norm2 comm a b = if comm && b < a then (b, a) else (a, b)

let key_of st (i : Ir.instr) : (Ir.reg * key) option =
  match i with
  | Ir.Bin (op, d, a, b) ->
    let va = vn_of_operand st a and vb = vn_of_operand st b in
    let va, vb = norm2 (commutative op) va vb in
    Some (d, KBin (op, va, vb))
  | Ir.Fbin (op, d, a, b) ->
    let va = vn_of_operand st a and vb = vn_of_operand st b in
    let va, vb = norm2 (fcommutative op) va vb in
    Some (d, KFbin (op, va, vb))
  | Ir.Icmp (op, d, a, b) ->
    Some (d, KIcmp (op, vn_of_operand st a, vn_of_operand st b))
  | Ir.Fcmp (op, d, a, b) ->
    Some (d, KFcmp (op, vn_of_operand st a, vn_of_operand st b))
  | Ir.Not (d, a) -> Some (d, KNot (vn_of_operand st a))
  | Ir.I2f (d, a) -> Some (d, KI2f (vn_of_operand st a))
  | Ir.F2i (d, a) -> Some (d, KF2i (vn_of_operand st a))
  | Ir.Load (d, arr, ix) ->
    Some (d, KLoad (vn_of_operand st arr, vn_of_operand st ix, st.epoch))
  | Ir.Alen (d, a) -> Some (d, KAlen (vn_of_operand st a))
  | Ir.Mov _ | Ir.Store _ | Ir.Call _ | Ir.Print _ -> None

let run_block (b : Ir.block) : Ir.block =
  let st = mk () in
  let instrs =
    List.map
      (fun i ->
        match i with
        | Ir.Mov (d, src) ->
          (* moves transfer the value number *)
          let v = vn_of_operand st src in
          set_reg_vn st d v;
          i
        | Ir.Store _ ->
          st.epoch <- st.epoch + 1;
          i
        | Ir.Call (dopt, _, _) ->
          st.epoch <- st.epoch + 1;
          (match dopt with
           | Some d ->
             let v = fresh st in
             set_reg_vn st d v
           | None -> ());
          i
        | Ir.Print _ -> i
        | _ -> begin
          match key_of st i with
          | None -> i
          | Some (d, k) -> begin
            match Hashtbl.find_opt st.vn_of_key k with
            | Some v -> begin
              match Hashtbl.find_opt st.holder v with
              | Some r when r <> d ->
                set_reg_vn st d v;
                Ir.Mov (d, Ir.Reg r)
              | Some _ ->
                set_reg_vn st d v;
                i
              | None ->
                (* value known but no live holder: recompute *)
                set_reg_vn st d v;
                i
            end
            | None ->
              let v = fresh st in
              Hashtbl.replace st.vn_of_key k v;
              set_reg_vn st d v;
              i
          end
        end)
      b.Ir.instrs
  in
  { b with Ir.instrs }

let run_func (f : Ir.func) : Ir.func =
  { f with Ir.blocks = Ir.LMap.map run_block f.Ir.blocks }

let run (p : Ir.program) : Ir.program = Ir.map_funcs run_func p
