module Ir = Mira.Ir

(* Dynamic optimization and runtime monitoring (paper Sec. III-D).

   The application is modelled as a stream of intervals; each interval is
   one invocation of a kernel whose behaviour depends on the current
   program phase (e.g. long-trip compute phases vs short-trip call-heavy
   phases).  The compiler prepares several versions of the kernel
   (different optimization sequences); at run time the monitor

   - collects the normalized counter signature of every interval,
   - detects stable phases (successive signatures within a distance
     threshold — Fursin et al. [36]'s phase detection),
   - during a stable phase runs *performance auditing* (Lau et al. [37]):
     each version is tried once, timed, and the winner locked in until the
     signature shifts, at which point auditing restarts.

   Recompilation/auditing overheads are charged in cycles.  The simulator
   is re-entered per interval, so microarchitectural state does not persist
   across intervals — a documented simplification (DESIGN.md): it biases
   *against* the dynamic optimizer by re-paying cold misses, so the
   reported gains are conservative. *)

type interval = {
  phase_id : int;         (* ground truth, used only for reporting *)
  source : string;        (* Mira source of this interval's kernel run *)
}

type version = {
  vname : string;
  vseq : Passes.Pass.t list;
}

type config = {
  mach : Mach.Config.t;
  versions : version list;
  phase_threshold : float;     (* signature distance that ends a phase *)
  compile_overhead : int;      (* cycles charged per compilation *)
  audit_overhead : int;        (* cycles charged per audited interval *)
}

let default_versions =
  [
    { vname = "O1"; vseq = Passes.Pass.o1 };
    { vname = "O2"; vseq = Passes.Pass.o2 };
    { vname = "Ofast"; vseq = Passes.Pass.ofast };
    {
      vname = "unroll-heavy";
      vseq =
        Passes.Pass.
          [ Const_prop; Const_fold; Licm; Unroll8; Simplify_cfg; Cse; Copy_prop; Dce ];
    };
  ]

let default_config =
  {
    mach = Mach.Config.default;
    versions = default_versions;
    phase_threshold = 0.25;
    compile_overhead = 30_000;
    audit_overhead = 2_000;
  }

(* signature of an interval: selected per-instruction counter rates *)
let signature (r : Mach.Sim.result) : float array =
  let g c = float_of_int (Mach.Counters.get r.Mach.Sim.counters c) in
  let tot = max 1.0 (g Mach.Counters.TOT_INS) in
  [|
    g Mach.Counters.L1_TCM /. tot;
    g Mach.Counters.L2_TCM /. tot;
    g Mach.Counters.BR_MSP /. tot;
    g Mach.Counters.LD_INS /. tot;
    g Mach.Counters.FP_INS /. tot;
    g Mach.Counters.DIV_INS /. tot;
    float_of_int r.Mach.Sim.cycles /. tot;   (* CPI *)
  |]

let run_interval (cfg : config) (cache : (string * string, Ir.program) Hashtbl.t)
    (itv : interval) (seq : Passes.Pass.t list) : Mach.Sim.result =
  let key = (itv.source, Passes.Pass.sequence_to_string seq) in
  let p =
    match Hashtbl.find_opt cache key with
    | Some p -> p
    | None ->
      let p =
        Passes.Pass.apply_sequence seq (Mira.Lower.compile_source_exn itv.source)
      in
      Hashtbl.replace cache key p;
      p
  in
  Mach.Sim.run ~config:cfg.mach p

type report = {
  total_cycles : int;          (* dynamic optimizer, overheads included *)
  overhead_cycles : int;
  static_best_cycles : int;    (* best single version applied everywhere *)
  static_best_name : string;
  o0_cycles : int;
  oracle_cycles : int;         (* best version per interval, no overhead *)
  phase_changes_detected : int;
  audits : int;
  choices : (int * string) list;  (* interval index -> version chosen *)
}

type mode =
  | Auditing of int * (int * int) list  (* next version idx, (version, cycles) measured *)
  | Locked of int                        (* committed version idx *)

let run (cfg : config) (intervals : interval list) : report =
  let cache = Hashtbl.create 64 in
  let versions = Array.of_list cfg.versions in
  let nv = Array.length versions in
  if nv = 0 then invalid_arg "Dynamic.run: no versions";
  (* --- dynamic optimizer ---------------------------------------- *)
  let total = ref 0 and overhead = ref 0 in
  let audits = ref 0 and phase_changes = ref 0 in
  let choices = ref [] in
  let mode = ref (Auditing (0, [])) in
  let compiled = Hashtbl.create 8 in   (* version idx -> charged once *)
  let last_sig = ref None in
  (* phase memory: signatures of phases already audited, with their
     winning version — a recurring phase locks immediately instead of
     re-auditing (the knowledge-base reuse the paper advocates) *)
  let phase_memory : (float array * int) list ref = ref [] in
  let recall s =
    List.find_opt
      (fun (sig_, _) -> Mlkit.Linalg.euclidean sig_ s <= cfg.phase_threshold)
      !phase_memory
  in
  List.iteri
    (fun i itv ->
      (* pick the version for this interval *)
      let vidx =
        match !mode with Auditing (v, _) -> v | Locked v -> v
      in
      (* charge one-time compilation of this version *)
      if not (Hashtbl.mem compiled vidx) then begin
        Hashtbl.replace compiled vidx ();
        overhead := !overhead + cfg.compile_overhead
      end;
      let r = run_interval cfg cache itv versions.(vidx).vseq in
      total := !total + r.Mach.Sim.cycles;
      choices := (i, versions.(vidx).vname) :: !choices;
      let s = signature r in
      (* phase-change detection against the previous interval *)
      let changed =
        match !last_sig with
        | None -> false
        | Some prev -> Mlkit.Linalg.euclidean prev s > cfg.phase_threshold
      in
      last_sig := Some s;
      (match (!mode, changed) with
       | _, true -> begin
         (* signature shifted: a new phase begins *)
         incr phase_changes;
         match recall s with
         | Some (_, v) -> mode := Locked v   (* seen this phase before *)
         | None -> mode := Auditing (0, [])
       end
       | Auditing (v, measured), false ->
         incr audits;
         overhead := !overhead + cfg.audit_overhead;
         let measured = (v, r.Mach.Sim.cycles) :: measured in
         if v + 1 < nv then mode := Auditing (v + 1, measured)
         else begin
           (* all versions auditioned: lock the measured winner and
              remember this phase's signature *)
           let bestv, _ =
             List.fold_left
               (fun (bv, bc) (v', c) -> if c < bc then (v', c) else (bv, bc))
               (List.hd measured) measured
           in
           phase_memory := (s, bestv) :: !phase_memory;
           mode := Locked bestv
         end
       | Locked _, false -> ()))
    intervals;
  (* --- baselines -------------------------------------------------- *)
  let per_version_totals =
    Array.map
      (fun v ->
        List.fold_left
          (fun acc itv -> acc + (run_interval cfg cache itv v.vseq).Mach.Sim.cycles)
          0 intervals)
      versions
  in
  let static_best_idx =
    let best = ref 0 in
    Array.iteri
      (fun i c -> if c < per_version_totals.(!best) then best := i)
      per_version_totals;
    !best
  in
  let o0_cycles =
    List.fold_left
      (fun acc itv -> acc + (run_interval cfg cache itv []).Mach.Sim.cycles)
      0 intervals
  in
  let oracle_cycles =
    List.fold_left
      (fun acc itv ->
        let best =
          Array.fold_left
            (fun b v -> min b (run_interval cfg cache itv v.vseq).Mach.Sim.cycles)
            max_int versions
        in
        acc + best)
      0 intervals
  in
  {
    total_cycles = !total + !overhead;
    overhead_cycles = !overhead;
    static_best_cycles = per_version_totals.(static_best_idx);
    static_best_name = versions.(static_best_idx).vname;
    o0_cycles;
    oracle_cycles;
    phase_changes_detected = !phase_changes;
    audits = !audits;
    choices = List.rev !choices;
  }

(* ------------------------------------------------------------------ *)
(* A phase-changing workload generator exhibiting the situation the paper
   argues is common (Sec. III-D): no single statically compiled version is
   best for all runtime contexts.

   The kernel's inner loop has a body expression (a + r) * b that is
   invariant with respect to the *inner* loop only.  In the long-trip
   phase, LICM's hoist and unrolling pay off handsomely.  In the
   zero-trip phase the inner loop is entered thousands of times but never
   iterates: the hoisted multiply in the preheader and the unroll guard
   now execute on every entry for nothing, so the aggressively optimized
   versions are genuinely *slower* than a light pipeline — the classic
   zero-trip pathology of speculative loop optimization, driven purely by
   runtime data. *)

let kernel_source ~(trips : int) ~(reps : int) : string =
  Printf.sprintf
    {|global buf: int[2048];
fn main() -> int {
  var acc: int = 0;
  var a: int = 6;
  var b: int = 7;
  var n: int = %d;
  for r = 0 to %d {
    acc = acc + (r & 15);
    for i = 0 to n {
      var v: int = (a + r) * b + buf[(i * 7) & 2047];
      acc = (acc + v) & 1048575;
      buf[(i * 13) & 2047] = acc;
    }
  }
  print(acc);
  return acc;
}|}
    trips reps

let phased_intervals ?(phases = 4) ?(per_phase = 6) () : interval list =
  List.concat
    (List.init phases (fun ph ->
         let compute_phase = ph mod 2 = 0 in
         List.init per_phase (fun _ ->
             if compute_phase then
               { phase_id = ph; source = kernel_source ~trips:500 ~reps:20 }
             else
               { phase_id = ph; source = kernel_source ~trips:0 ~reps:20000 })))
