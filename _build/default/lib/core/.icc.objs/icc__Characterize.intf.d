lib/core/characterize.mli: Knowledge Mach Mira Passes
