lib/core/pcmodel.ml: Array Hashtbl Knowledge List Mach Mlkit Passes
