lib/core/controller.mli: Knowledge Mach Mira Passes Search
