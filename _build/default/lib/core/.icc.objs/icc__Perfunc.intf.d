lib/core/perfunc.mli: Mach Mira Mlkit Passes
