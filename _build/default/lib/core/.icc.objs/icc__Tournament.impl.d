lib/core/tournament.ml: Array Characterize Features Float Hashtbl List Mach Mira Mlkit Passes Random
