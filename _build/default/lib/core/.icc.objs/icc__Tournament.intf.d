lib/core/tournament.mli: Mach Mira Mlkit Passes
