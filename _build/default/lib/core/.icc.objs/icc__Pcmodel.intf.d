lib/core/pcmodel.mli: Knowledge Mlkit Passes
