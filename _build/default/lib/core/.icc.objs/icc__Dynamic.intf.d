lib/core/dynamic.mli: Hashtbl Mach Mira Passes
