lib/core/characterize.ml: Array Features Knowledge List Mach Mira Passes Random Search
