lib/core/features.mli: Mira
