lib/core/perfunc.ml: Array Features List Mach Mira Mlkit Passes
