lib/core/controller.ml: Characterize Features Knowledge List Mach Mira Passes Pcmodel Search
