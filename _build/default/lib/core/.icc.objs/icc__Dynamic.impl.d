lib/core/dynamic.ml: Array Hashtbl List Mach Mira Mlkit Passes Printf
