lib/core/features.ml: Array Hashtbl List Mira Option
