module Ir = Mira.Ir

(* Static program characterization (paper Sec. III-B/III-E): a named
   feature vector extracted from the IR by compiler analysis — instruction
   mix, control-flow shape, loop structure, memory behaviour proxies.
   These are the inputs to the performance prediction models and the
   similarity metric used to correlate a new program with the knowledge
   base. *)

type t = (string * float) list

let names =
  [
    "n_funcs"; "n_blocks"; "n_instrs"; "avg_block_size"; "max_block_size";
    "cfg_edges"; "branch_count"; "branch_density"; "n_loops";
    "max_loop_depth"; "loop_instr_frac"; "loads"; "stores"; "mem_density";
    "load_store_ratio"; "int_ops"; "fp_ops"; "fp_frac"; "mul_count";
    "div_count"; "shift_count"; "cmp_count"; "mov_frac"; "calls";
    "call_density"; "const_operand_frac"; "n_arrays"; "global_bytes";
    "local_bytes"; "reg_per_instr"; "recursive"; "print_count";
    "avg_const_trip"; "short_trip_frac";
  ]

(* Static trip-count estimation for counted loops whose bounds and step
   are compile-time literals (Milepost-style "loop trip count" features):
   recognizes the canonical `for` shape (header = one Icmp.lt against
   registers/constants whose every definition is a literal move) and
   computes the trip count.  Loops with unknown bounds contribute
   nothing. *)
let const_trip_counts (f : Ir.func) : int list =
  (* all defining instructions of each register *)
  let defs = Hashtbl.create 32 in
  Ir.LMap.iter
    (fun _ (b : Ir.block) ->
      List.iter
        (fun i ->
          match Ir.def_of i with
          | Some d ->
            Hashtbl.replace defs d
              (i :: Option.value ~default:[] (Hashtbl.find_opt defs d))
          | None -> ())
        b.Ir.instrs)
    f.Ir.blocks;
  let const_of (o : Ir.operand) ~(allow_one_incr : Ir.reg option) =
    match o with
    | Ir.Cint n -> Some n
    | Ir.Reg r -> begin
      match Hashtbl.find_opt defs r with
      | Some ds ->
        (* the bound/step registers must be defined only by one literal
           move; the induction variable additionally has its increment *)
        let literal_moves, others =
          List.partition (function Ir.Mov (_, Ir.Cint _) -> true | _ -> false) ds
        in
        let others_ok =
          match allow_one_incr with
          | Some iv ->
            List.for_all
              (function
                | Ir.Bin (Ir.Add, d, Ir.Reg s, _) -> d = iv && s = iv
                | _ -> false)
              others
          | None -> others = []
        in
        (match literal_moves with
         | [ Ir.Mov (_, Ir.Cint n) ] when others_ok -> Some n
         | _ -> None)
      | None -> None
    end
    | _ -> None
  in
  let _, loops = Mira.Analysis.natural_loops f in
  List.filter_map
    (fun (l : Mira.Analysis.loop) ->
      let hb = Ir.find_block f l.Mira.Analysis.header in
      match (hb.Ir.instrs, hb.Ir.term, l.Mira.Analysis.latches) with
      | ( [ Ir.Icmp (Ir.Lt, _, Ir.Reg iv, hi) ], Ir.Br (_, _, _), [ latch ] )
        -> begin
        let lb = Ir.find_block f latch in
        match List.rev lb.Ir.instrs with
        | Ir.Bin (Ir.Add, iv', Ir.Reg iv'', step) :: _
          when iv' = iv && iv'' = iv -> begin
          let lo = const_of (Ir.Reg iv) ~allow_one_incr:(Some iv) in
          let hi = const_of hi ~allow_one_incr:None in
          let st =
            match step with
            | Ir.Cint s -> Some s
            | _ -> const_of step ~allow_one_incr:None
          in
          match (lo, hi, st) with
          | Some lo, Some hi, Some st when st > 0 ->
            Some (max 0 ((hi - lo + st - 1) / st))
          | _ -> None
        end
        | _ -> None
      end
      | _ -> None)
    loops

(* The subset used for program-similarity distances: scale-invariant
   densities and shape features.  Absolute counts (n_instrs, loads, ...)
   say how *big* a program is, not how it behaves, and would dominate the
   Euclidean metric; the paper's methodology (Sec. III-E) calls for
   exactly this kind of feature curation. *)
let similarity_names =
  [
    "avg_block_size"; "branch_density"; "max_loop_depth"; "loop_instr_frac";
    "mem_density"; "load_store_ratio"; "fp_frac"; "mov_frac"; "call_density";
    "const_operand_frac"; "reg_per_instr"; "recursive";
  ]

let restrict_to_similarity (t : t) : t =
  List.filter (fun (n, _) -> List.mem n similarity_names) t

let is_recursive (p : Ir.program) : bool =
  let callees f =
    Ir.LMap.fold
      (fun _ (b : Ir.block) acc ->
        List.fold_left
          (fun acc i -> match i with Ir.Call (_, g, _) -> g :: acc | _ -> acc)
          acc b.Ir.instrs)
      f.Ir.blocks []
  in
  let reachable_from start =
    let seen = Hashtbl.create 8 in
    let rec go g =
      if not (Hashtbl.mem seen g) then begin
        Hashtbl.replace seen g ();
        match Ir.SMap.find_opt g p.Ir.funcs with
        | Some f -> List.iter go (callees f)
        | None -> ()
      end
    in
    (match Ir.SMap.find_opt start p.Ir.funcs with
     | Some f -> List.iter go (callees f)
     | None -> ());
    seen
  in
  Ir.SMap.exists
    (fun name _ -> Hashtbl.mem (reachable_from name) name)
    p.Ir.funcs

let extract (p : Ir.program) : t =
  let n_funcs = ref 0 in
  let n_blocks = ref 0 in
  let n_instrs = ref 0 in
  let max_block = ref 0 in
  let cfg_edges = ref 0 in
  let branches = ref 0 in
  let loads = ref 0 and stores = ref 0 in
  let int_ops = ref 0 and fp_ops = ref 0 in
  let muls = ref 0 and divs = ref 0 and shifts = ref 0 in
  let cmps = ref 0 and movs = ref 0 in
  let calls = ref 0 and prints = ref 0 in
  let const_operands = ref 0 and total_operands = ref 0 in
  let n_loops = ref 0 and max_depth = ref 0 in
  let loop_instrs = ref 0 in
  let nregs = ref 0 in
  Ir.SMap.iter
    (fun _ (f : Ir.func) ->
      incr n_funcs;
      nregs := !nregs + f.Ir.nregs;
      let depths = Mira.Analysis.loop_depths f in
      let _, loops = Mira.Analysis.natural_loops f in
      n_loops := !n_loops + List.length loops;
      List.iter
        (fun (l : Mira.Analysis.loop) ->
          max_depth := max !max_depth l.Mira.Analysis.depth)
        loops;
      Ir.LMap.iter
        (fun label (b : Ir.block) ->
          incr n_blocks;
          let sz = List.length b.Ir.instrs in
          n_instrs := !n_instrs + sz;
          max_block := max !max_block sz;
          cfg_edges := !cfg_edges + List.length (Ir.successors b.Ir.term);
          (match b.Ir.term with Ir.Br _ -> incr branches | _ -> ());
          (match Ir.LMap.find_opt label depths with
           | Some d when d > 0 -> loop_instrs := !loop_instrs + sz
           | _ -> ());
          List.iter
            (fun i ->
              List.iter
                (fun o ->
                  incr total_operands;
                  match o with
                  | Ir.Cint _ | Ir.Cfloat _ | Ir.Cbool _ ->
                    incr const_operands
                  | _ -> ())
                (Ir.ops_of i);
              match i with
              | Ir.Load _ -> incr loads
              | Ir.Store _ -> incr stores
              | Ir.Bin (op, _, _, _) -> begin
                incr int_ops;
                match op with
                | Ir.Mul -> incr muls
                | Ir.Div | Ir.Rem -> incr divs
                | Ir.Shl | Ir.Shr -> incr shifts
                | _ -> ()
              end
              | Ir.Fbin _ -> incr fp_ops
              | Ir.Icmp _ ->
                incr int_ops;
                incr cmps
              | Ir.Fcmp _ ->
                incr fp_ops;
                incr cmps
              | Ir.Mov _ ->
                incr int_ops;
                incr movs
              | Ir.Not _ | Ir.Alen _ -> incr int_ops
              | Ir.I2f _ | Ir.F2i _ -> incr fp_ops
              | Ir.Call _ -> incr calls
              | Ir.Print _ -> incr prints)
            b.Ir.instrs)
        f.Ir.blocks)
    p.Ir.funcs;
  let local_bytes =
    Ir.SMap.fold
      (fun _ (f : Ir.func) acc ->
        List.fold_left (fun acc (_, _, sz) -> acc + (sz * 8)) acc f.Ir.locals)
      p.Ir.funcs 0
  in
  let global_bytes =
    List.fold_left (fun acc g -> acc + (g.Ir.gsize * 8)) 0 p.Ir.globals
  in
  let n_arrays =
    List.length p.Ir.globals
    + Ir.SMap.fold
        (fun _ (f : Ir.func) acc -> acc + List.length f.Ir.locals)
        p.Ir.funcs 0
  in
  let fi = float_of_int in
  let instrs = max 1 !n_instrs in
  let mem = !loads + !stores in
  [
    ("n_funcs", fi !n_funcs);
    ("n_blocks", fi !n_blocks);
    ("n_instrs", fi !n_instrs);
    ("avg_block_size", fi !n_instrs /. fi (max 1 !n_blocks));
    ("max_block_size", fi !max_block);
    ("cfg_edges", fi !cfg_edges);
    ("branch_count", fi !branches);
    ("branch_density", fi !branches /. fi instrs);
    ("n_loops", fi !n_loops);
    ("max_loop_depth", fi !max_depth);
    ("loop_instr_frac", fi !loop_instrs /. fi instrs);
    ("loads", fi !loads);
    ("stores", fi !stores);
    ("mem_density", fi mem /. fi instrs);
    ("load_store_ratio", fi !loads /. fi (max 1 !stores));
    ("int_ops", fi !int_ops);
    ("fp_ops", fi !fp_ops);
    ("fp_frac", fi !fp_ops /. fi instrs);
    ("mul_count", fi !muls);
    ("div_count", fi !divs);
    ("shift_count", fi !shifts);
    ("cmp_count", fi !cmps);
    ("mov_frac", fi !movs /. fi instrs);
    ("calls", fi !calls);
    ("call_density", fi !calls /. fi instrs);
    ("const_operand_frac", fi !const_operands /. fi (max 1 !total_operands));
    ("n_arrays", fi n_arrays);
    ("global_bytes", fi global_bytes);
    ("local_bytes", fi local_bytes);
    ("reg_per_instr", fi !nregs /. fi instrs);
    ("recursive", if is_recursive p then 1.0 else 0.0);
    ("print_count", fi !prints);
    ("avg_const_trip",
     let trips =
       Ir.SMap.fold (fun _ f acc -> const_trip_counts f @ acc) p.Ir.funcs []
     in
     (match trips with
      | [] -> 256.0   (* unknown bounds: assume long *)
      | ts ->
        min 1024.0
          (fi (List.fold_left ( + ) 0 ts) /. fi (List.length ts))));
    ("short_trip_frac",
     let trips =
       Ir.SMap.fold (fun _ f acc -> const_trip_counts f @ acc) p.Ir.funcs []
     in
     let short = List.length (List.filter (fun t -> t <= 8) trips) in
     fi short /. fi (max 1 !n_loops));
  ]

(* Per-function characterization: the same extraction applied to a
   program containing only that function (callees are irrelevant to the
   static features; self-recursion is still detected).  This is the input
   of the method-specific (per-function) models. *)
let extract_func (p : Ir.program) (fname : string) : t =
  let f = Ir.find_func p fname in
  extract
    { p with Ir.funcs = Ir.SMap.singleton fname f }

(* align a named feature list to the canonical [names] order *)
let to_vector (t : t) : float array =
  Array.of_list
    (List.map
       (fun n -> match List.assoc_opt n t with Some v -> v | None -> 0.0)
       names)

let vector_of_program p = to_vector (extract p)
