(* The performance-counter model of the paper's Sec. III-B example
   (Cavazos et al., CGO'07 [3]): characterize a new program by the
   normalized hardware-counter vector of one -O0 profiling run, find the
   most similar training programs in counter space, and predict the
   optimization sequence most likely to speed the new program up — in one
   shot, no search.

   Counter vectors are standardized across the training set before the
   distance computation; the candidate sequences come from the neighbours'
   best recorded experiments and the prediction is the candidate with the
   best *predicted* rank (nearest neighbour first).  [predict_and_pick]
   additionally allows a small online budget: evaluate the top candidates
   and keep the real winner, mirroring the paper's one-or-few-trials
   usage. *)

module Kb = Knowledge.Kb

type t = {
  arch : string;
  schema : string list;              (* counter names, canonical order *)
  scaler : Mlkit.Scaling.t;
  progs : string array;
  vectors : float array array;       (* standardized, by program *)
  best_seqs : Passes.Pass.t list array;
}

let vector_of_schema (schema : string list) (counters : (string * float) list)
    : float array =
  Array.of_list
    (List.map
       (fun n -> match List.assoc_opt n counters with Some v -> v | None -> 0.0)
       schema)

(* counters used for similarity: per-instruction event rates (drop TOT_INS,
   which is constant 1 after normalization) *)
let default_schema =
  List.filter_map
    (fun c ->
      match c with
      | Mach.Counters.TOT_INS -> None
      | c -> Some (Mach.Counters.name c))
    Mach.Counters.all

let train ?(schema = default_schema) (kb : Kb.t) ~(arch : string) : t option =
  let chars = List.filter (fun c -> c.Kb.arch = arch) kb.Kb.chars in
  (* only programs that also have experiments to recommend from *)
  let usable =
    List.filter_map
      (fun c ->
        match Kb.best kb ~prog:c.Kb.prog ~arch with
        | Some b -> Some (c, b.Kb.seq)
        | None -> None)
      chars
  in
  match usable with
  | [] -> None
  | _ ->
    let raw =
      Array.of_list
        (List.map (fun (c, _) -> vector_of_schema schema c.Kb.counters) usable)
    in
    let scaler = Mlkit.Scaling.fit raw in
    Some
      {
        arch;
        schema;
        scaler;
        progs = Array.of_list (List.map (fun (c, _) -> c.Kb.prog) usable);
        vectors = Mlkit.Scaling.apply_all scaler raw;
        best_seqs = Array.of_list (List.map snd usable);
      }

(* nearest training programs for a new counter vector, closest first *)
let neighbors (t : t) (counters : (string * float) list) :
    (string * Passes.Pass.t list * float) list =
  let x = Mlkit.Scaling.apply t.scaler (vector_of_schema t.schema counters) in
  let dists =
    Array.mapi
      (fun i v -> (t.progs.(i), t.best_seqs.(i), Mlkit.Linalg.euclidean x v))
      t.vectors
  in
  Array.sort
    (fun (p1, _, d1) (p2, _, d2) ->
      match compare d1 d2 with 0 -> compare p1 p2 | c -> c)
    dists;
  Array.to_list dists

(* one-shot prediction: the nearest neighbour's best sequence *)
let predict (t : t) (counters : (string * float) list) : Passes.Pass.t list =
  match neighbors t counters with
  | (_, seq, _) :: _ -> seq
  | [] -> []

(* candidate list: distinct best sequences of the k nearest neighbours *)
let candidates (t : t) ?(k = 5) (counters : (string * float) list) :
    Passes.Pass.t list list =
  let seen = Hashtbl.create 8 in
  neighbors t counters
  |> List.filteri (fun i _ -> i < k)
  |> List.filter_map (fun (_, seq, _) ->
         let key = Passes.Pass.sequence_to_string seq in
         if Hashtbl.mem seen key then None
         else begin
           Hashtbl.replace seen key ();
           Some seq
         end)

(* predict, optionally evaluating up to [trials] top candidates with the
   supplied cost oracle and keeping the measured winner *)
let predict_and_pick (t : t) ?(trials = 1) (counters : (string * float) list)
    (eval : Passes.Pass.t list -> float) : Passes.Pass.t list * float =
  let cands = candidates t ~k:(max 1 trials) counters in
  let cands = List.filteri (fun i _ -> i < max 1 trials) cands in
  match cands with
  | [] -> ([], eval [])
  | _ ->
    List.fold_left
      (fun (bseq, bc) seq ->
        let c = eval seq in
        if c < bc then (seq, c) else (bseq, bc))
      ([], infinity) cands
