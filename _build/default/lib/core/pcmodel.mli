(** The performance-counter model of the paper's Sec. III-B example
    (after Cavazos et al., CGO'07): characterize a new program with ONE
    -O0 profiling run, find the training programs with the most similar
    counter signatures, and predict the optimization sequence most likely
    to help — in one shot, without search. *)

type t = {
  arch : string;
  schema : string list;
  scaler : Mlkit.Scaling.t;
  progs : string array;
  vectors : float array array;
  best_seqs : Passes.Pass.t list array;
}

val vector_of_schema : string list -> (string * float) list -> float array

(** per-instruction event-rate counters (TOT_INS excluded: it is 1 after
    normalization) *)
val default_schema : string list

(** [None] when no training program has both a characterization and at
    least one experiment *)
val train : ?schema:string list -> Knowledge.Kb.t -> arch:string -> t option

(** training programs ranked by counter-space distance, closest first,
    each with its best known sequence *)
val neighbors :
  t -> (string * float) list -> (string * Passes.Pass.t list * float) list

(** the nearest neighbour's best sequence *)
val predict : t -> (string * float) list -> Passes.Pass.t list

(** distinct best sequences of the [k] nearest neighbours *)
val candidates :
  t -> ?k:int -> (string * float) list -> Passes.Pass.t list list

(** evaluate up to [trials] top candidates with the cost oracle and keep
    the measured winner (the paper's one-or-few-online-trials usage) *)
val predict_and_pick :
  t -> ?trials:int -> (string * float) list ->
  (Passes.Pass.t list -> float) -> Passes.Pass.t list * float
