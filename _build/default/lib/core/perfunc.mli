(** Method-specific compilation (an implemented extension, after the
    paper's ref [53], Cavazos & O'Boyle OOPSLA'06): choose an optimization
    pipeline per {e function} with a learned multiclass model, instead of
    one pipeline for the whole program. *)

(** the per-function pipeline classes the model chooses between
    (all function-local passes) *)
val classes : (string * Passes.Pass.t list) list

val nclasses : int
val class_seq : int -> Passes.Pass.t list
val class_name : int -> string
val function_names : Mira.Ir.program -> string list

(** cycles charged per (IR instruction x pass applied) — the JIT tiering
    knob: the objective everywhere is compile cycles + run cycles *)
val compile_cost_per_instr_pass : int

val compile_cost : Mira.Ir.program -> string -> int -> int
val total_compile_cost : Mira.Ir.program -> (string -> int) -> int

type instance = {
  iprog : string;
  ifunc : string;
  feats : float array;
  label : int;          (** measured winning class *)
  costs : float array;  (** cycles per class *)
}

(** label every function of a training program by actually trying each
    class on it (the rest of the program held at the light pipeline);
    functions where the choice does not matter are skipped *)
val gen_instances :
  ?config:Mach.Config.t -> prog:string -> Mira.Ir.program -> instance list

type t = { model : Mlkit.Dtree.t }

(** [None] on an empty instance list *)
val train : instance list -> t option

(** predicted class for one function *)
val choose : t -> Mira.Ir.program -> string -> int

(** optimize every function with its predicted pipeline; also returns the
    per-function choices for reporting *)
val compile :
  ?config:Mach.Config.t -> t -> Mira.Ir.program ->
  Mira.Ir.program * (string * string) list
