(** Dynamic optimization with runtime monitoring (paper Sec. III-D).

    The application is a stream of kernel intervals.  The monitor reads
    each interval's counter signature, detects phase changes by signature
    distance, audits each prepared code version once per new phase
    (performance auditing, Lau et al.), locks in the measured winner, and
    recognizes recurring phases from a phase memory so they skip
    re-auditing (Fursin-style knowledge reuse).  Compilation and auditing
    overheads are charged in cycles. *)

type interval = {
  phase_id : int;   (** ground truth, used only for reporting *)
  source : string;  (** Mira source of this interval's kernel run *)
}

type version = {
  vname : string;
  vseq : Passes.Pass.t list;
}

type config = {
  mach : Mach.Config.t;
  versions : version list;
  phase_threshold : float;  (** signature distance that ends a phase *)
  compile_overhead : int;   (** cycles charged per compilation *)
  audit_overhead : int;     (** cycles charged per audited interval *)
}

val default_versions : version list
val default_config : config

(** per-interval counter signature (miss rates, branch behaviour, CPI) *)
val signature : Mach.Sim.result -> float array

(** simulate one interval compiled under [seq]; compilations memoized *)
val run_interval :
  config -> (string * string, Mira.Ir.program) Hashtbl.t -> interval ->
  Passes.Pass.t list -> Mach.Sim.result

type report = {
  total_cycles : int;        (** dynamic optimizer, overheads included *)
  overhead_cycles : int;
  static_best_cycles : int;  (** best single version everywhere *)
  static_best_name : string;
  o0_cycles : int;
  oracle_cycles : int;       (** best version per interval, no overhead *)
  phase_changes_detected : int;
  audits : int;
  choices : (int * string) list;  (** interval index -> version chosen *)
}

(** @raise Invalid_argument when [config.versions] is empty *)
val run : config -> interval list -> report

(** a kernel whose behaviour depends on the trip count: long-trip phases
    reward aggressive loop optimization, zero-trip phases punish it *)
val kernel_source : trips:int -> reps:int -> string

(** alternating long-trip / zero-trip phases *)
val phased_intervals : ?phases:int -> ?per_phase:int -> unit -> interval list
