module Ir = Mira.Ir

(* Application characterization + knowledge-base population (Fig. 1's
   "static and dynamic process characterization" feeding the knowledge
   base):

   - static: the Features vector of the unoptimized program;
   - dynamic: the normalized performance-counter vector of a profiling run
     at -O0 on the target machine model;
   - experiments: measured cycles and code size for each optimization
     sequence tried, appended to the KB for the prediction models to learn
     from. *)

let counter_assoc (bank : Mach.Counters.bank) : (string * float) list =
  let norm = Mach.Counters.normalized bank in
  List.mapi (fun i c -> (Mach.Counters.name c, norm.(i))) Mach.Counters.all

(* profile at -O0: static features + normalized counters + base cycles *)
let characterize ?(config = Mach.Config.default) ~(prog : string)
    (p : Ir.program) : Knowledge.Kb.characterization =
  let r = Mach.Sim.run ~config p in
  {
    Knowledge.Kb.prog;
    arch = config.Mach.Config.name;
    o0_cycles = r.Mach.Sim.cycles;
    features = Features.extract p;
    counters = counter_assoc r.Mach.Sim.counters;
  }

(* evaluate one sequence: compile + simulate; infinity on trap/divergence
   so broken sequences lose every comparison *)
let eval_sequence ?(config = Mach.Config.default) (p : Ir.program)
    (seq : Passes.Pass.t list) : float =
  let p' = Passes.Pass.apply_sequence seq p in
  match Mach.Sim.run ~config p' with
  | r -> float_of_int r.Mach.Sim.cycles
  | exception (Mira.Interp.Trap _ | Mira.Interp.Out_of_fuel) -> infinity

(* evaluate and record into the KB *)
let record_experiment ?(config = Mach.Config.default) (kb : Knowledge.Kb.t)
    ~(prog : string) (p : Ir.program) (seq : Passes.Pass.t list) : float =
  let p' = Passes.Pass.apply_sequence seq p in
  match Mach.Sim.run ~config p' with
  | r ->
    Knowledge.Kb.add_experiment kb
      {
        Knowledge.Kb.eprog = prog;
        earch = config.Mach.Config.name;
        seq;
        cycles = r.Mach.Sim.cycles;
        code_size = Ir.program_size p';
      };
    float_of_int r.Mach.Sim.cycles
  | exception (Mira.Interp.Trap _ | Mira.Interp.Out_of_fuel) -> infinity

(* Populate a knowledge base by random exploration of each training
   program's sequence space — the "significant training period" of
   Sec. III-C.  [per_program] sequences are tried per program; the O0 and
   fixed-pipeline points are always included so every program has a sane
   floor. *)
let build_kb ?(config = Mach.Config.default) ?(seed = 42) ?(per_program = 40)
    ?(length = Search.Space.default_length)
    (programs : (string * Ir.program) list) : Knowledge.Kb.t =
  let kb = Knowledge.Kb.create () in
  List.iteri
    (fun i (name, p) ->
      Knowledge.Kb.add_characterization kb (characterize ~config ~prog:name p);
      let rng = Random.State.make [| seed + i |] in
      ignore (record_experiment ~config kb ~prog:name p []);
      ignore (record_experiment ~config kb ~prog:name p Passes.Pass.o2);
      ignore (record_experiment ~config kb ~prog:name p Passes.Pass.ofast);
      List.iter
        (fun seq -> ignore (record_experiment ~config kb ~prog:name p seq))
        (Search.Space.sample_distinct rng ~length per_program))
    programs;
  kb
