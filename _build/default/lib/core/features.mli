(** Static program characterization (paper Sec. III-B/III-E): a named
    feature vector extracted from the IR — instruction mix, control-flow
    shape, loop structure, memory-behaviour proxies.  These are the inputs
    of the prediction models and of the program-similarity metric. *)

type t = (string * float) list

(** the canonical feature names, in vector order *)
val names : string list

(** the scale-invariant subset used for program-similarity distances
    (densities and shape only; absolute counts would make the metric
    measure program size) *)
val similarity_names : string list

val restrict_to_similarity : t -> t

(** is any function reachable from itself in the call graph? *)
val is_recursive : Mira.Ir.program -> bool

(** static trip counts of the counted loops whose bounds and step are
    compile-time literals (one entry per such loop) *)
val const_trip_counts : Mira.Ir.func -> int list

(** extract all features of a program *)
val extract : Mira.Ir.program -> t

(** features of a single function (same schema; program-level counts
    reduce to that function's) *)
val extract_func : Mira.Ir.program -> string -> t

(** align a named feature list to [names] order (missing entries are 0) *)
val to_vector : t -> float array

val vector_of_program : Mira.Ir.program -> float array
