module Ir = Mira.Ir

(* Method-specific compilation: choose an optimization level per FUNCTION
   with a learned classifier, instead of one level for the whole program.
   This extends the reproduction with the paper author's own follow-on
   ("Method-specific dynamic compilation using logistic regression",
   OOPSLA'06, the paper's ref [53]): there, a logistic-regression model
   picked the JIT optimization level per method from cheap method
   features; here, a multiclass model picks one of a few per-function
   pipelines from the function's static features.

   As in that JIT setting, the objective is TOTAL cost: compilation
   cycles (proportional to function size times pipeline length) plus
   execution cycles.  Aggressively optimizing a cold function wastes more
   compile time than it recovers at run time; under-optimizing a hot
   loop leaves cycles on the table.  The model must learn which functions
   deserve which tier from their static features alone.

   Training data generation follows the Sec. II-A recipe: for every
   function of every training program, every class is actually tried
   (the rest of the program held at the light pipeline) and the instance
   is labelled with the winner on total cost. *)

module Pass = Passes.Pass

(* the per-function pipeline classes the model chooses between; all
   function-local *)
let classes : (string * Pass.t list) list =
  [
    ("light", Pass.[ Simplify_cfg; Const_fold; Const_prop; Peephole; Dce ]);
    ( "loop-heavy",
      Pass.[ Const_prop; Const_fold; Licm; Unroll4; Cse; Copy_prop; Dce;
             Simplify_cfg ] );
    ( "cleanup",
      Pass.[ Copy_prop; Cse; Peephole; Dce; Simplify_cfg ] );
  ]

let nclasses = List.length classes

let class_seq i = snd (List.nth classes i)
let class_name i = fst (List.nth classes i)

(* compile-time charge: cycles per (IR instruction x pass applied), the
   knob that creates the JIT tiering trade-off *)
let compile_cost_per_instr_pass = 80

let compile_cost (p : Ir.program) (fname : string) (cls : int) : int =
  let f = Ir.find_func p fname in
  compile_cost_per_instr_pass * Ir.func_size f * List.length (class_seq cls)

(* total compile cost of a per-function assignment *)
let total_compile_cost (p : Ir.program) (choice : string -> int) : int =
  Ir.SMap.fold
    (fun fname _ acc -> acc + compile_cost p fname (choice fname))
    p.Ir.funcs 0

(* all function names of a program *)
let function_names (p : Ir.program) : string list =
  List.map fst (Ir.SMap.bindings p.Ir.funcs)

type instance = {
  iprog : string;
  ifunc : string;
  feats : float array;
  label : int;              (* winning class *)
  costs : float array;      (* measured cycles per class *)
}

(* label every function of [p] by trying each class on it (the rest of
   the program compiled with the light pipeline) *)
let gen_instances ?(config = Mach.Config.default) ~(prog : string)
    (p : Ir.program) : instance list =
  let light = class_seq 0 in
  let names = function_names p in
  List.filter_map
    (fun fname ->
      let base =
        List.fold_left
          (fun acc g ->
            if g = fname then acc
            else Pass.apply_sequence_to_function light acc g)
          p names
      in
      let costs =
        Array.init nclasses (fun c ->
            let p' = Pass.apply_sequence_to_function (class_seq c) base fname in
            match Mach.Sim.run ~config p' with
            | r ->
              float_of_int (r.Mach.Sim.cycles + compile_cost p fname c)
            | exception (Mira.Interp.Trap _ | Mira.Interp.Out_of_fuel) ->
              infinity)
      in
      let label = Mlkit.Linalg.argmin costs in
      (* skip functions where the choice does not matter (all ties):
         they teach the model nothing *)
      let lo = Array.fold_left min infinity costs in
      let hi = Array.fold_left max neg_infinity costs in
      if hi -. lo < 0.0005 *. lo then None
      else
        Some
          {
            iprog = prog;
            ifunc = fname;
            feats = Features.to_vector (Features.extract_func p fname);
            label;
            costs;
          })
    names

type t = { model : Mlkit.Dtree.t }

let train (instances : instance list) : t option =
  match instances with
  | [] -> None
  | _ ->
    let xs = Array.of_list (List.map (fun i -> i.feats) instances) in
    let ys = Array.of_list (List.map (fun i -> i.label) instances) in
    let d0 = Mlkit.Dataset.make xs ys in
    (* force the class count so classes unseen in this training set keep
       their identity in predictions *)
    let d = { d0 with Mlkit.Dataset.nclasses = max d0.Mlkit.Dataset.nclasses nclasses } in
    Some { model = Mlkit.Dtree.fit d }

(* choose a class for one function *)
let choose (t : t) (p : Ir.program) (fname : string) : int =
  Mlkit.Dtree.predict t.model (Features.to_vector (Features.extract_func p fname))

(* compile: every function gets its predicted pipeline *)
let compile ?(config = Mach.Config.default) (t : t) (p : Ir.program) :
    Ir.program * (string * string) list =
  ignore config;
  let choicemap =
    List.map (fun fname -> (fname, choose t p fname)) (function_names p)
  in
  let p' =
    Pass.apply_per_function
      (fun fname -> class_seq (List.assoc fname choicemap))
      p
  in
  (p', List.map (fun (f, c) -> (f, class_name c)) choicemap)
