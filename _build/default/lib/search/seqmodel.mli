(** Probability models over optimization sequences (after Agakov et al.,
    "Using machine learning to focus iterative optimization"): fitted to
    the good sequences of training programs, then sampled to bias a new
    program's search towards promising regions. *)

type iid = { probs : float array }
(** independent per-position distribution over the passes *)

type markov = {
  init : float array;
  trans : float array array;
}
(** first-order chain: initial distribution + transition matrix, able to
    express pass-pair interactions (e.g. "unroll only after cprop") *)

type t = Iid of iid | Markov of markov

(** Laplace smoothing constant applied to every count *)
val smoothing : float

val normalize : float array -> float array
val fit_iid : Passes.Pass.t list list -> iid
val fit_markov : Passes.Pass.t list list -> markov

(** draw a valid sequence (at most one unroll pass) of the given length *)
val sample : Random.State.t -> t -> length:int -> Passes.Pass.t list

(** log-probability of a sequence under the model; defines the
    "predicted good region" of the Fig. 2(a) reproduction *)
val log_prob : t -> Passes.Pass.t list -> float

(** the uniform model: focused search degenerates to random search *)
val uniform : t
