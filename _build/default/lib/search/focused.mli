(** Model-focused iterative search (the FOCUSSED line of the paper's
    Fig. 2(b)): find the training programs most similar to the target,
    fit a sequence model to their best sequences, sample-and-evaluate. *)

type model_kind = Iid | Markov

type params = {
  neighbors : int;      (** training programs consulted *)
  per_neighbor : int;   (** top sequences taken from each neighbour *)
  length : int;         (** sequence length of the searched space *)
  kind : model_kind;
}

val default_params : params

(** training programs nearest to the target in standardized static-feature
    space, closest first.  Features are matched by name against the
    target's schema. *)
val nearest_programs :
  Knowledge.Kb.t -> arch:string -> target_features:(string * float) list ->
  n:int -> string list

(** fit the sequence model from the neighbours' best recorded experiments;
    degenerates to {!Seqmodel.uniform} when the knowledge base has nothing
    relevant (so the caller transparently gets random search) *)
val fit_model :
  Knowledge.Kb.t -> arch:string -> params:params ->
  target_features:(string * float) list -> Seqmodel.t

(** sample the model without replacement (bounded rejection) and evaluate *)
val search :
  ?seed:int -> ?length:int -> budget:int -> Seqmodel.t -> Strategies.eval ->
  Strategies.result
