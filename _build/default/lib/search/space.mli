(** The optimization-sequence space every strategy searches: sequences of
    [length] passes with at most one unroll pass (the paper's footnote-1
    constraint).  The paper's Fig. 2 space uses length 5, the default. *)

val default_length : int

(** number of valid sequences of the given length *)
val cardinality : ?length:int -> unit -> int

(** the non-unroll passes *)
val non_unroll : Passes.Pass.t list

(** uniform random valid sequence *)
val random_seq : Random.State.t -> ?length:int -> unit -> Passes.Pass.t list

(** point mutation preserving validity *)
val mutate : Random.State.t -> Passes.Pass.t list -> Passes.Pass.t list

(** one-point crossover; children are repaired to stay valid *)
val crossover :
  Random.State.t -> Passes.Pass.t list -> Passes.Pass.t list ->
  Passes.Pass.t list

(** Fig. 2(a)'s plot projection: x-position encoding of the length-2
    prefix of a sequence.  @raise Invalid_argument if too short. *)
val prefix2_index : Passes.Pass.t list -> int

(** y-position encoding of the length-3 suffix *)
val suffix3_index : Passes.Pass.t list -> int

(** up to [n] distinct random sequences (deterministic given the state) *)
val sample_distinct :
  Random.State.t -> ?length:int -> int -> Passes.Pass.t list list
