lib/search/space.ml: Array Hashtbl List Passes Random
