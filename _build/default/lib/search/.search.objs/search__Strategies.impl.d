lib/search/strategies.ml: Array Hashtbl List Passes Random Space
