lib/search/space.mli: Passes Random
