lib/search/seqmodel.ml: Array List Passes Random
