lib/search/focused.mli: Knowledge Seqmodel Strategies
