lib/search/seqmodel.mli: Passes Random
