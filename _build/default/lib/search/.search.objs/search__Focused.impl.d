lib/search/focused.ml: Array Hashtbl Knowledge List Mlkit Passes Random Seqmodel Space Strategies
