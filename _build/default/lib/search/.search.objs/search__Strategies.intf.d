lib/search/strategies.mli: Passes
