(* Probability models over optimization sequences, after Agakov et al. [1]
   ("Using machine learning to focus iterative optimization"): fit a
   distribution to the good sequences of training programs, then bias a
   new program's search towards high-probability regions.

   Two model families, both with Laplace smoothing:
   - IID: an independent per-position distribution over passes;
   - Markov: an initial distribution plus first-order transition matrix,
     capturing pass-pair interactions (e.g. "unroll is only useful after
     constant propagation") that the IID model cannot express. *)

module Pass = Passes.Pass

let npass = Pass.count

type iid = { probs : float array }           (* length npass, sums to 1 *)

type markov = {
  init : float array;                        (* npass *)
  trans : float array array;                 (* npass x npass *)
}

type t = Iid of iid | Markov of markov

let smoothing = 0.5

let normalize (a : float array) : float array =
  let s = Array.fold_left ( +. ) 0.0 a in
  if s <= 0.0 then Array.make (Array.length a) (1.0 /. float_of_int (Array.length a))
  else Array.map (fun v -> v /. s) a

let fit_iid (seqs : Pass.t list list) : iid =
  let counts = Array.make npass smoothing in
  List.iter
    (fun seq ->
      List.iter (fun p -> counts.(Pass.to_index p) <- counts.(Pass.to_index p) +. 1.0) seq)
    seqs;
  { probs = normalize counts }

let fit_markov (seqs : Pass.t list list) : markov =
  let init = Array.make npass smoothing in
  let trans = Array.make_matrix npass npass smoothing in
  List.iter
    (fun seq ->
      match seq with
      | [] -> ()
      | first :: rest ->
        init.(Pass.to_index first) <- init.(Pass.to_index first) +. 1.0;
        ignore
          (List.fold_left
             (fun prev p ->
               trans.(Pass.to_index prev).(Pass.to_index p) <-
                 trans.(Pass.to_index prev).(Pass.to_index p) +. 1.0;
               p)
             first rest))
    seqs;
  { init = normalize init; trans = Array.map normalize trans }

(* draw an index from a discrete distribution, optionally masking out the
   unroll passes (to honour the at-most-one-unroll constraint) *)
let draw (rng : Random.State.t) (probs : float array) ~(mask_unroll : bool) :
    int =
  let probs =
    if mask_unroll then
      normalize
        (Array.mapi
           (fun i p -> if Pass.is_unroll (Pass.of_index i) then 0.0 else p)
           probs)
    else probs
  in
  let r = Random.State.float rng 1.0 in
  let acc = ref 0.0 and chosen = ref (npass - 1) in
  (try
     Array.iteri
       (fun i p ->
         acc := !acc +. p;
         if !acc >= r then begin
           chosen := i;
           raise Exit
         end)
       probs
   with Exit -> ());
  !chosen

let sample (rng : Random.State.t) (t : t) ~(length : int) : Pass.t list =
  let out = ref [] in
  let unroll_used = ref false in
  let prev = ref None in
  for _pos = 0 to length - 1 do
    let dist =
      match (t, !prev) with
      | Iid m, _ -> m.probs
      | Markov m, None -> m.init
      | Markov m, Some p -> m.trans.(Pass.to_index p)
    in
    let i = draw rng dist ~mask_unroll:!unroll_used in
    let p = Pass.of_index i in
    if Pass.is_unroll p then unroll_used := true;
    out := p :: !out;
    prev := Some p
  done;
  List.rev !out

(* log-probability of a sequence under the model (useful for defining the
   "predicted good region" contours of Fig. 2a) *)
let log_prob (t : t) (seq : Pass.t list) : float =
  match t with
  | Iid m ->
    List.fold_left
      (fun acc p -> acc +. log (max 1e-12 m.probs.(Pass.to_index p)))
      0.0 seq
  | Markov m -> (
    match seq with
    | [] -> 0.0
    | first :: rest ->
      let acc = log (max 1e-12 m.init.(Pass.to_index first)) in
      fst
        (List.fold_left
           (fun (acc, prev) p ->
             ( acc
               +. log (max 1e-12 m.trans.(Pass.to_index prev).(Pass.to_index p)),
               p ))
           (acc, first) rest))

let uniform : t = Iid { probs = Array.make npass (1.0 /. float_of_int npass) }
