(* Model-focused iterative search (the FOCUSSED line of Fig. 2b):

   1. find the training programs nearest to the target in static-feature
      space (the knowledge base holds each program's characterization);
   2. fit a sequence distribution (IID or Markov) to those programs'
      good sequences (within [quality] of their respective best);
   3. sample candidate sequences from the model — without replacement —
      and evaluate them, tracking the best-so-far curve.

   Degenerate knowledge bases (no neighbours, no good sequences) fall back
   to the uniform model, i.e. random search, which is also the correct
   scientific control. *)

module Pass = Passes.Pass

type model_kind = Iid | Markov

type params = {
  neighbors : int;        (* training programs consulted *)
  per_neighbor : int;     (* top sequences taken from each neighbour *)
  length : int;           (* the searched space's sequence length *)
  kind : model_kind;
}

let default_params =
  { neighbors = 5; per_neighbor = 5; length = Space.default_length; kind = Markov }

(* nearest programs by Euclidean distance over standardized static
   features; returns closest first *)
let nearest_programs (kb : Knowledge.Kb.t) ~(arch : string)
    ~(target_features : (string * float) list) ~(n : int) : string list =
  let chars =
    List.filter (fun c -> c.Knowledge.Kb.arch = arch) kb.Knowledge.Kb.chars
  in
  match chars with
  | [] -> []
  | _ ->
    (* align features by name against the target's schema *)
    let names = List.map fst target_features in
    let vec_of feats =
      Array.of_list
        (List.map
           (fun name ->
             match List.assoc_opt name feats with Some v -> v | None -> 0.0)
           names)
    in
    let rows = List.map (fun c -> vec_of c.Knowledge.Kb.features) chars in
    let scaler = Mlkit.Scaling.fit (Array.of_list rows) in
    let target = Mlkit.Scaling.apply scaler (vec_of target_features) in
    chars
    |> List.map (fun c ->
           ( c.Knowledge.Kb.prog,
             Mlkit.Linalg.euclidean target
               (Mlkit.Scaling.apply scaler (vec_of c.Knowledge.Kb.features)) ))
    |> List.sort (fun (p1, d1) (p2, d2) ->
           match compare d1 d2 with 0 -> compare p1 p2 | c -> c)
    |> List.filteri (fun i _ -> i < n)
    |> List.map fst

(* fit the sequence model from the neighbours' good experiments *)
let fit_model (kb : Knowledge.Kb.t) ~(arch : string) ~(params : params)
    ~(target_features : (string * float) list) : Seqmodel.t =
  let neighbors =
    nearest_programs kb ~arch ~target_features ~n:params.neighbors
  in
  let good =
    List.concat_map
      (fun prog ->
        List.map
          (fun e -> e.Knowledge.Kb.seq)
          (Knowledge.Kb.top_experiments kb ~prog ~arch ~k:params.per_neighbor
             ~length:params.length ()))
      neighbors
  in
  if good = [] then Seqmodel.uniform
  else
    match params.kind with
    | Iid -> Seqmodel.Iid (Seqmodel.fit_iid good)
    | Markov -> Seqmodel.Markov (Seqmodel.fit_markov good)

(* focused search: sample-without-replacement from the model *)
let search ?(seed = 1) ?(length = Space.default_length) ~budget
    (model : Seqmodel.t) (eval : Strategies.eval) : Strategies.result =
  let rng = Random.State.make [| seed |] in
  let seen = Hashtbl.create (4 * budget) in
  let fresh_sample () =
    (* reject duplicates a bounded number of times, then accept repeats
       (the model may be too peaked to provide [budget] distinct samples) *)
    let rec go tries =
      let s = Seqmodel.sample rng model ~length in
      let key = Pass.sequence_to_string s in
      if Hashtbl.mem seen key && tries < 50 then go (tries + 1)
      else begin
        Hashtbl.replace seen key ();
        s
      end
    in
    go 0
  in
  Strategies.run_budgeted ~budget ~next:(fun _ -> fresh_sample ()) eval
