(* The optimization-sequence space searched by every strategy: sequences of
   [length] passes drawn from the 13-pass set, with at most one unroll pass
   per sequence (the paper's footnote-1 constraint).  Fig. 2 uses length 5,
   which is also our default. *)

module Pass = Passes.Pass

let default_length = 5

(* number of valid sequences of the given length *)
let cardinality ?(length = default_length) () =
  let n = Pass.count in
  let u = List.length (List.filter Pass.is_unroll Pass.all) in
  let nu = n - u in
  (* sequences with no unroll + sequences with exactly one unroll *)
  let pow b e =
    let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
    go 1 e
  in
  pow nu length + (length * u * pow nu (length - 1))

let non_unroll = List.filter (fun p -> not (Pass.is_unroll p)) Pass.all

(* uniform random valid sequence *)
let random_seq (rng : Random.State.t) ?(length = default_length) () :
    Pass.t list =
  let rec pick acc n unroll_used =
    if n = 0 then List.rev acc
    else begin
      let p = List.nth Pass.all (Random.State.int rng Pass.count) in
      if Pass.is_unroll p && unroll_used then pick acc n true
      else pick (p :: acc) (n - 1) (unroll_used || Pass.is_unroll p)
    end
  in
  pick [] length false

(* point mutation preserving validity: if another position already holds an
   unroll pass, the mutated slot may only receive a non-unroll pass *)
let mutate (rng : Random.State.t) (seq : Pass.t list) : Pass.t list =
  let arr = Array.of_list seq in
  let i = Random.State.int rng (Array.length arr) in
  let other_unroll =
    List.exists Pass.is_unroll (List.filteri (fun j _ -> j <> i) seq)
  in
  let choices = if other_unroll then non_unroll else Pass.all in
  arr.(i) <- List.nth choices (Random.State.int rng (List.length choices));
  Array.to_list arr

(* one-point crossover; repairs double-unroll children by replacing later
   unrolls with a non-unroll pass *)
let crossover (rng : Random.State.t) (a : Pass.t list) (b : Pass.t list) :
    Pass.t list =
  let aa = Array.of_list a and bb = Array.of_list b in
  let n = min (Array.length aa) (Array.length bb) in
  let cut = 1 + Random.State.int rng (max 1 (n - 1)) in
  let child =
    Array.init n (fun i -> if i < cut then aa.(i) else bb.(i))
  in
  let seen_unroll = ref false in
  Array.iteri
    (fun i p ->
      if Pass.is_unroll p then begin
        if !seen_unroll then
          child.(i) <- List.nth non_unroll (Random.State.int rng (List.length non_unroll))
        else seen_unroll := true
      end)
    child;
  Array.to_list child

(* Fig. 2(a)'s projection of a length-5 sequence onto a 2-D plot position:
   x encodes the length-2 prefix, y the length-3 suffix. *)
let prefix2_index (seq : Pass.t list) : int =
  match seq with
  | a :: b :: _ -> (Pass.to_index a * Pass.count) + Pass.to_index b
  | _ -> invalid_arg "Space.prefix2_index: sequence too short"

let suffix3_index (seq : Pass.t list) : int =
  match List.rev seq with
  | c :: b :: a :: _ ->
    (Pass.to_index a * Pass.count * Pass.count)
    + (Pass.to_index b * Pass.count)
    + Pass.to_index c
  | _ -> invalid_arg "Space.suffix3_index: sequence too short"

(* deterministic enumeration of [n] distinct sequences by stratified
   sampling when full enumeration is too large; with replacement=false the
   caller gets unique sequences *)
let sample_distinct (rng : Random.State.t) ?(length = default_length) n :
    Pass.t list list =
  let seen = Hashtbl.create (2 * n) in
  let out = ref [] in
  let tries = ref 0 in
  while Hashtbl.length seen < n && !tries < 100 * n do
    incr tries;
    let s = random_seq rng ~length () in
    let key = Pass.sequence_to_string s in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      out := s :: !out
    end
  done;
  List.rev !out
