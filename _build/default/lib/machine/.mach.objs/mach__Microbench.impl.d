lib/machine/microbench.ml: Cache Config Fmt List Mira Printf Sim
