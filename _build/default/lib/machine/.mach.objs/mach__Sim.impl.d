lib/machine/sim.ml: Array Cache Config Counters List Mira Predictor
