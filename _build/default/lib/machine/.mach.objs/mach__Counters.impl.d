lib/machine/counters.ml: Array Fmt List
