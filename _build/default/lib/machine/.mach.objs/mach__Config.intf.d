lib/machine/config.mli: Cache
