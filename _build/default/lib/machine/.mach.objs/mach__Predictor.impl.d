lib/machine/predictor.ml: Array
