lib/machine/config.ml: Cache List
