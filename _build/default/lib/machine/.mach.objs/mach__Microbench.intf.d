lib/machine/microbench.mli: Config Format
