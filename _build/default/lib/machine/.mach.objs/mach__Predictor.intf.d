lib/machine/predictor.mli:
