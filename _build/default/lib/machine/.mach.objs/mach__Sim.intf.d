lib/machine/sim.mli: Config Counters Mira
