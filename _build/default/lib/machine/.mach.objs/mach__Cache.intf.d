lib/machine/cache.mli:
