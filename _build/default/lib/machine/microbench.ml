(* Microbenchmark-based architecture characterization (Sec. III-B of the
   paper, following Yotov et al. [2]): recover the memory-hierarchy
   parameters of a target machine by timing strided scans over arrays of
   increasing footprint — except the "machine" here is the simulator, so
   the recovered values can be checked against configured ground truth
   (experiment tab4).

   Method:
   - capacity: scan an N-byte footprint cyclically touching every cache
     line; cycles/access jumps when the footprint first exceeds each level.
   - line size: with a footprint far beyond L1 (but inside L2), increase
     the stride; cost per access grows until the stride reaches the line
     size (one miss per access) and then flattens. *)

module Interp = Mira.Interp

(* A strided-scan program over a global [n]-element int array performing
   [accesses] loads with the given element [stride].  n must be a power of
   two so the index wrap stays cheap and exact. *)
let scan_source ~n ~stride ~accesses =
  Printf.sprintf
    {|global buf: int[%d];
fn main() -> int {
  var sink: int = 0;
  var idx: int = 0;
  for it = 0 to %d {
    sink = sink + buf[idx];
    idx = idx + %d;
    if (idx >= %d) { idx = idx - %d; }
  }
  return sink;
}|}
    n accesses stride n n

let cycles_per_access ~config ~n ~stride ~accesses : float =
  let p = Mira.Lower.compile_source_exn (scan_source ~n ~stride ~accesses) in
  (* warm the caches with one preliminary pass so cold misses do not skew
     small-footprint points: simulate double length, charge second half.
     Cheaper approximation: single run minus a pure-loop baseline. *)
  let r = Sim.run ~config p in
  let baseline =
    Sim.run ~config
      (Mira.Lower.compile_source_exn
         (Printf.sprintf
            {|fn main() -> int {
                var sink: int = 0;
                var idx: int = 0;
                for it = 0 to %d {
                  sink = sink + idx;
                  idx = idx + %d;
                  if (idx >= %d) { idx = idx - %d; }
                }
                return sink;
              }|}
            accesses stride n n))
  in
  float_of_int (r.Sim.cycles - baseline.Sim.cycles) /. float_of_int accesses

type recovered = {
  l1_bytes : int;
  l2_bytes : int;
  line_bytes : int;
  points : (int * float) list;  (* footprint bytes -> cycles/access *)
}

let default_sweeps = 8

(* Footprints probed, in bytes: 2 KiB .. 2 MiB in powers of two. *)
let footprints = List.init 11 (fun i -> 2048 lsl i)

let characterize ?(sweeps = default_sweeps) (config : Config.t) : recovered =
  let line_guess = config.Config.l1.Cache.line_bytes in
  (* touch one element per line so footprint == array size *)
  let stride_elts = line_guess / 8 in
  (* every point runs the same number of sweeps over its footprint so the
     cold first sweep is amortized identically everywhere; otherwise the
     amortization gradient masquerades as capacity knees *)
  let points =
    List.map
      (fun bytes ->
        let n = bytes / 8 in
        let accesses = sweeps * (n / stride_elts) in
        (bytes, cycles_per_access ~config ~n ~stride:stride_elts ~accesses))
      footprints
  in
  (* capacity boundaries: largest footprint before each cost jump.
     A jump is a >40% rise between consecutive points. *)
  let rec jumps acc = function
    | (b1, c1) :: ((_, c2) :: _ as rest) ->
      if c2 > c1 *. 1.4 then jumps (b1 :: acc) rest else jumps acc rest
    | _ -> List.rev acc
  in
  let js = jumps [] points in
  let l1_bytes, l2_bytes =
    match js with
    | l1 :: l2 :: _ -> (l1, l2)
    | [ l1 ] -> (l1, List.fold_left max 0 (List.map fst points))
    | [] -> (0, 0)
  in
  (* line size: footprint = 4 * recovered L1 (cap at 2 MiB), strides from
     one element up to 512 bytes; the cost stops growing once the stride
     covers a full line *)
  let foot = min (4 * max l1_bytes 4096) (2 * 1024 * 1024) in
  let n = foot / 8 in
  let stride_costs =
    List.map
      (fun sb ->
        let stride = max 1 (sb / 8) in
        ( sb,
          cycles_per_access ~config ~n ~stride
            ~accesses:(sweeps * (n / stride)) ))
      [ 8; 16; 32; 64; 128; 256; 512 ]
  in
  let line_bytes =
    (* first stride whose cost is within 10% of the next stride's cost:
       past the line size, doubling the stride no longer increases cost *)
    let rec find = function
      | (sb, c1) :: ((_, c2) :: _ as rest) ->
        if c2 <= c1 *. 1.10 then sb else find rest
      | [ (sb, _) ] -> sb
      | [] -> 0
    in
    find stride_costs
  in
  { l1_bytes; l2_bytes; line_bytes; points }

let pp_recovered ppf r =
  Fmt.pf ppf "L1 %d B, L2 %d B, line %d B" r.l1_bytes r.l2_bytes r.line_bytes
