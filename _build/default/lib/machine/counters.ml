(* PAPI-style hardware performance counter bank, mirroring the counters the
   paper reads on the AMD machine (Fig. 3/4): totals, branch events, memory
   events split per cache level and access kind. *)

type counter =
  | TOT_INS   (* total instructions *)
  | TOT_CYC   (* total cycles *)
  | LD_INS    (* load instructions *)
  | SR_INS    (* store instructions *)
  | BR_INS    (* branch instructions (conditional) *)
  | BR_TKN    (* branches taken *)
  | BR_MSP    (* branches mispredicted *)
  | FP_INS    (* floating-point instructions *)
  | INT_INS   (* integer ALU instructions *)
  | MUL_INS   (* integer multiplies *)
  | DIV_INS   (* integer divides/remainders *)
  | CALL_INS  (* calls executed *)
  | L1_TCA    (* L1D total cache accesses *)
  | L1_TCM    (* L1D total cache misses *)
  | L1_LDM    (* L1D load misses *)
  | L1_STM    (* L1D store misses *)
  | L2_TCA    (* L2 total accesses *)
  | L2_TCM    (* L2 total misses *)
  | L2_LDM    (* L2 load misses *)
  | L2_STM    (* L2 store misses *)

let all =
  [
    TOT_INS; TOT_CYC; LD_INS; SR_INS; BR_INS; BR_TKN; BR_MSP; FP_INS; INT_INS;
    MUL_INS; DIV_INS; CALL_INS; L1_TCA; L1_TCM; L1_LDM; L1_STM; L2_TCA;
    L2_TCM; L2_LDM; L2_STM;
  ]

let count = List.length all

let to_index = function
  | TOT_INS -> 0 | TOT_CYC -> 1 | LD_INS -> 2 | SR_INS -> 3 | BR_INS -> 4
  | BR_TKN -> 5 | BR_MSP -> 6 | FP_INS -> 7 | INT_INS -> 8 | MUL_INS -> 9
  | DIV_INS -> 10 | CALL_INS -> 11 | L1_TCA -> 12 | L1_TCM -> 13
  | L1_LDM -> 14 | L1_STM -> 15 | L2_TCA -> 16 | L2_TCM -> 17 | L2_LDM -> 18
  | L2_STM -> 19

let name = function
  | TOT_INS -> "TOT_INS" | TOT_CYC -> "TOT_CYC" | LD_INS -> "LD_INS"
  | SR_INS -> "SR_INS" | BR_INS -> "BR_INS" | BR_TKN -> "BR_TKN"
  | BR_MSP -> "BR_MSP" | FP_INS -> "FP_INS" | INT_INS -> "INT_INS"
  | MUL_INS -> "MUL_INS" | DIV_INS -> "DIV_INS" | CALL_INS -> "CALL_INS"
  | L1_TCA -> "L1_TCA" | L1_TCM -> "L1_TCM" | L1_LDM -> "L1_LDM"
  | L1_STM -> "L1_STM" | L2_TCA -> "L2_TCA" | L2_TCM -> "L2_TCM"
  | L2_LDM -> "L2_LDM" | L2_STM -> "L2_STM"

let of_name s = List.find_opt (fun c -> name c = s) all

type bank = int array

let make () : bank = Array.make count 0

let get (b : bank) c = b.(to_index c)
let set (b : bank) c v = b.(to_index c) <- v
let incr (b : bank) c = b.(to_index c) <- b.(to_index c) + 1
let add (b : bank) c n = b.(to_index c) <- b.(to_index c) + n

(* Events per instruction — the normalization the paper applies before
   comparing programs (Fig. 3 plots counters relative to per-instruction
   averages).  TOT_INS and TOT_CYC are reported as CPI-style ratios. *)
let normalized (b : bank) : float array =
  let tot = float_of_int (max 1 (get b TOT_INS)) in
  Array.of_list
    (List.map
       (fun c ->
         match c with
         | TOT_INS -> 1.0
         | _ -> float_of_int (get b c) /. tot)
       all)

let pp ppf (b : bank) =
  List.iter (fun c -> Fmt.pf ppf "%-8s %d@\n" (name c) (get b c)) all

let to_assoc (b : bank) = List.map (fun c -> (name c, get b c)) all
