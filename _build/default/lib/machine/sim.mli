(** Cycle-level machine simulator.

    Semantics come from the shared execution engine ({!Mira.Interp});
    this module attaches hooks that account time and hardware events:
    dependence-limited multiple issue for simple ALU ops, configured
    latencies for multiplies/divides/FP, an L1D/L2 hierarchy for memory
    accesses, a bimodal predictor for conditional branches, and fixed
    linkage overheads for calls.  Deterministic: same program and config
    always give the same cycle count. *)

type result = {
  cycles : int;
  counters : Counters.bank;
  ret : Mira.Interp.value;
  output : string;
  steps : int;   (** dynamic instructions incl. terminators *)
}

val default_fuel : int

(** Run a program on the simulated machine.
    @raise Mira.Interp.Trap on runtime errors
    @raise Mira.Interp.Out_of_fuel when the step budget is exhausted *)
val run : ?config:Config.t -> ?fuel:int -> Mira.Ir.program -> result

(** cycles, or [None] if the program trapped or ran out of fuel *)
val cycles_of : ?config:Config.t -> ?fuel:int -> Mira.Ir.program -> int option

(** [speedup ~base ~opt] = base cycles / opt cycles *)
val speedup : base:result -> opt:result -> float
