(** Microbenchmark-based architecture characterization (paper Sec. III-B,
    after Yotov et al.): recover the memory-hierarchy parameters of a
    target machine by timing strided scans of increasing footprint.
    Because the "machine" is the simulator, the recovered values can be
    checked against configured ground truth. *)

(** Mira source of a strided-scan kernel (exposed for tests) *)
val scan_source : n:int -> stride:int -> accesses:int -> string

(** average cycles per access of a strided scan, loop overhead deducted *)
val cycles_per_access :
  config:Config.t -> n:int -> stride:int -> accesses:int -> float

type recovered = {
  l1_bytes : int;
  l2_bytes : int;
  line_bytes : int;
  points : (int * float) list;  (** footprint bytes -> cycles/access *)
}

val default_sweeps : int

(** footprints probed, in bytes *)
val footprints : int list

(** recover L1/L2 capacity and the line size of [config]'s memory system;
    [sweeps] controls how often each footprint is traversed *)
val characterize : ?sweeps:int -> Config.t -> recovered

val pp_recovered : Format.formatter -> recovered -> unit
