(** PAPI-style hardware performance-counter bank, mirroring the counters
    the paper reads in its Fig. 3/4 experiments. *)

type counter =
  | TOT_INS   (** total instructions retired *)
  | TOT_CYC   (** total cycles *)
  | LD_INS    (** load instructions *)
  | SR_INS    (** store instructions *)
  | BR_INS    (** conditional branch instructions *)
  | BR_TKN    (** branches taken *)
  | BR_MSP    (** branches mispredicted *)
  | FP_INS    (** floating-point instructions *)
  | INT_INS   (** integer ALU instructions *)
  | MUL_INS   (** integer multiplies *)
  | DIV_INS   (** integer divides / remainders *)
  | CALL_INS  (** calls executed *)
  | L1_TCA    (** L1D total cache accesses *)
  | L1_TCM    (** L1D total cache misses *)
  | L1_LDM    (** L1D load misses *)
  | L1_STM    (** L1D store misses *)
  | L2_TCA    (** L2 total accesses *)
  | L2_TCM    (** L2 total misses *)
  | L2_LDM    (** L2 load misses *)
  | L2_STM    (** L2 store misses *)

(** every counter, in canonical order *)
val all : counter list

val count : int
val to_index : counter -> int
val name : counter -> string
val of_name : string -> counter option

type bank = int array

val make : unit -> bank
val get : bank -> counter -> int
val set : bank -> counter -> int -> unit
val incr : bank -> counter -> unit
val add : bank -> counter -> int -> unit

(** events per retired instruction, in [all] order — the normalization the
    paper applies before comparing programs *)
val normalized : bank -> float array

val pp : Format.formatter -> bank -> unit
val to_assoc : bank -> (string * int) list
