(* Bimodal branch predictor: a table of 2-bit saturating counters indexed by
   branch-site id.  Counters start weakly-taken (2), matching the usual
   backward-taken bias of loop branches. *)

type t = {
  table : int array;
  mutable lookups : int;
  mutable mispredicts : int;
}

let make ?(size = 1024) () =
  if size <= 0 then invalid_arg "Predictor.make: size must be positive";
  { table = Array.make size 2; lookups = 0; mispredicts = 0 }

let reset t =
  Array.fill t.table 0 (Array.length t.table) 2;
  t.lookups <- 0;
  t.mispredicts <- 0

let slot t site =
  let n = Array.length t.table in
  let i = site mod n in
  if i < 0 then i + n else i

let predict t site = t.table.(slot t site) >= 2

(* record the outcome; returns whether the prediction was wrong *)
let update t site ~(taken : bool) : bool =
  t.lookups <- t.lookups + 1;
  let i = slot t site in
  let predicted = t.table.(i) >= 2 in
  let mis = predicted <> taken in
  if mis then t.mispredicts <- t.mispredicts + 1;
  t.table.(i) <-
    (if taken then min 3 (t.table.(i) + 1) else max 0 (t.table.(i) - 1));
  mis
