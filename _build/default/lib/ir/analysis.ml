(* Control-flow analyses over IR functions: predecessors, reverse postorder,
   dominators (Cooper-Harvey-Kennedy), natural loops, loop nesting depth,
   and liveness.  All results are plain data so passes can consume them
   without recomputation hazards. *)

module LMap = Ir.LMap
module LSet = Ir.LSet
module RSet = Ir.RSet

type cfg = {
  preds : Ir.label list LMap.t;
  succs : Ir.label list LMap.t;
  rpo : Ir.label array;          (* reachable blocks in reverse postorder *)
  rpo_index : int LMap.t;        (* label -> position in rpo *)
  reachable : LSet.t;
}

let cfg_of (f : Ir.func) : cfg =
  let succs =
    LMap.map (fun (b : Ir.block) -> Ir.successors b.Ir.term) f.Ir.blocks
  in
  (* DFS postorder from entry *)
  let visited = Hashtbl.create 64 in
  let post = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.replace visited l ();
      List.iter dfs (try LMap.find l succs with Not_found -> []);
      post := l :: !post
    end
  in
  dfs f.Ir.entry;
  let rpo = Array.of_list !post in
  let rpo_index =
    Array.to_list rpo
    |> List.mapi (fun i l -> (l, i))
    |> List.fold_left (fun m (l, i) -> LMap.add l i m) LMap.empty
  in
  let reachable =
    Array.fold_left (fun s l -> LSet.add l s) LSet.empty rpo
  in
  let preds =
    LMap.fold
      (fun l ss acc ->
        if LSet.mem l reachable then
          List.fold_left
            (fun acc s ->
              let cur = try LMap.find s acc with Not_found -> [] in
              LMap.add s (l :: cur) acc)
            acc ss
        else acc)
      succs
      (LMap.map (fun _ -> []) f.Ir.blocks)
  in
  { preds; succs; rpo; rpo_index; reachable }

let preds cfg l = try LMap.find l cfg.preds with Not_found -> []
let succs cfg l = try LMap.find l cfg.succs with Not_found -> []

(* ------------------------------------------------------------------ *)
(* Dominators: Cooper, Harvey & Kennedy "A Simple, Fast Dominance
   Algorithm".  idom.(i) is the rpo index of the immediate dominator of the
   block at rpo index i; entry maps to itself. *)

type doms = {
  idom : int array;              (* by rpo index *)
  cfg : cfg;
}

let dominators (cfg : cfg) : doms =
  let n = Array.length cfg.rpo in
  let idom = Array.make n (-1) in
  if n > 0 then begin
    idom.(0) <- 0;
    let index l = LMap.find l cfg.rpo_index in
    let intersect b1 b2 =
      let f1 = ref b1 and f2 = ref b2 in
      while !f1 <> !f2 do
        while !f1 > !f2 do f1 := idom.(!f1) done;
        while !f2 > !f1 do f2 := idom.(!f2) done
      done;
      !f1
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 1 to n - 1 do
        let l = cfg.rpo.(i) in
        let ps =
          preds cfg l
          |> List.filter (fun p -> LSet.mem p cfg.reachable)
          |> List.map index
          |> List.filter (fun p -> idom.(p) >= 0 || p = 0)
        in
        match ps with
        | [] -> ()
        | first :: rest ->
          let new_idom =
            List.fold_left
              (fun acc p -> if idom.(p) >= 0 then intersect acc p else acc)
              first rest
          in
          if idom.(i) <> new_idom then begin
            idom.(i) <- new_idom;
            changed := true
          end
      done
    done
  end;
  { idom; cfg }

(* Does [a] dominate [b]?  Both must be reachable. *)
let dominates (d : doms) a b =
  let ia = LMap.find a d.cfg.rpo_index and ib = LMap.find b d.cfg.rpo_index in
  let rec up i = if i = ia then true else if i = 0 then ia = 0 else up d.idom.(i) in
  up ib

(* ------------------------------------------------------------------ *)
(* Natural loops.  A back edge is an edge t -> h where h dominates t.
   The loop body is computed by the usual backward reachability from the
   tail, stopping at the header. *)

type loop = {
  header : Ir.label;
  body : LSet.t;           (* includes header *)
  latches : Ir.label list; (* sources of back edges into header *)
  depth : int;             (* nesting depth, 1 = outermost *)
}

let natural_loops (f : Ir.func) : cfg * loop list =
  let cfg = cfg_of f in
  let doms = dominators cfg in
  let back_edges = ref [] in
  LSet.iter
    (fun l ->
      List.iter
        (fun s ->
          if LSet.mem s cfg.reachable && dominates doms s l then
            back_edges := (l, s) :: !back_edges)
        (succs cfg l))
    cfg.reachable;
  (* group back edges by header *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (t, h) ->
      let cur = try Hashtbl.find tbl h with Not_found -> [] in
      Hashtbl.replace tbl h (t :: cur))
    !back_edges;
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
        let body = ref (LSet.singleton header) in
        let stack = ref latches in
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | x :: rest ->
            stack := rest;
            if not (LSet.mem x !body) then begin
              body := LSet.add x !body;
              List.iter (fun p -> stack := p :: !stack) (preds cfg x)
            end
        done;
        { header; body = !body; latches; depth = 1 } :: acc)
      tbl []
  in
  (* nesting depth: loop A contains loop B if A.body ⊇ B.body and A ≠ B *)
  let loops =
    List.map
      (fun l ->
        let depth =
          1
          + List.length
              (List.filter
                 (fun l' ->
                   l'.header <> l.header && LSet.subset l.body l'.body)
                 loops)
        in
        { l with depth })
      loops
  in
  (cfg, loops)

(* Map from block label to its innermost loop depth (0 = not in a loop). *)
let loop_depths (f : Ir.func) : int LMap.t =
  let _, loops = natural_loops f in
  LMap.mapi
    (fun l _ ->
      List.fold_left
        (fun acc lo -> if LSet.mem l lo.body then max acc lo.depth else acc)
        0 loops)
    f.Ir.blocks

(* ------------------------------------------------------------------ *)
(* Liveness: backwards iterative dataflow on registers. *)

type liveness = {
  live_in : RSet.t LMap.t;
  live_out : RSet.t LMap.t;
}

let block_use_def (b : Ir.block) : RSet.t * RSet.t =
  (* use = registers read before any write in the block *)
  let use = ref RSet.empty and def = ref RSet.empty in
  List.iter
    (fun i ->
      List.iter
        (fun r -> if not (RSet.mem r !def) then use := RSet.add r !use)
        (Ir.uses_of i);
      match Ir.def_of i with
      | Some d -> def := RSet.add d !def
      | None -> ())
    b.Ir.instrs;
  List.iter
    (fun r -> if not (RSet.mem r !def) then use := RSet.add r !use)
    (Ir.term_uses b.Ir.term);
  (!use, !def)

let liveness (f : Ir.func) (cfg : cfg) : liveness =
  let use_def = LMap.map block_use_def f.Ir.blocks in
  let live_in = ref (LMap.map (fun _ -> RSet.empty) f.Ir.blocks) in
  let live_out = ref (LMap.map (fun _ -> RSet.empty) f.Ir.blocks) in
  let changed = ref true in
  while !changed do
    changed := false;
    (* iterate in reverse rpo for fast convergence *)
    for i = Array.length cfg.rpo - 1 downto 0 do
      let l = cfg.rpo.(i) in
      let out =
        List.fold_left
          (fun acc s -> RSet.union acc (LMap.find s !live_in))
          RSet.empty (succs cfg l)
      in
      let use, def = LMap.find l use_def in
      let inn = RSet.union use (RSet.diff out def) in
      if not (RSet.equal out (LMap.find l !live_out)) then begin
        live_out := LMap.add l out !live_out;
        changed := true
      end;
      if not (RSet.equal inn (LMap.find l !live_in)) then begin
        live_in := LMap.add l inn !live_in;
        changed := true
      end
    done
  done;
  { live_in = !live_in; live_out = !live_out }
