(** Hand-written lexer for Mira. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KFN | KVAR | KGLOBAL | KIF | KELSE | KWHILE | KFOR | KTO | KSTEP
  | KRETURN | KPRINT | KTRUE | KFALSE | KLEN
  | TINT | TFLOAT | TBOOL
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACK | RBRACK
  | COMMA | SEMI | COLON | ARROW
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQEQ | NE | ASSIGN
  | ANDAND | OROR | BANG
  | AMP | PIPE | CARET | TILDE | SHL | SHR
  | EOF

exception Error of string * Ast.pos

type t

val make : string -> t

(** next token with its source position; returns [EOF] at the end.
    @raise Error on lexical errors *)
val next : t -> token * Ast.pos

(** the whole token stream, [EOF]-terminated *)
val tokenize : string -> (token * Ast.pos) list

val string_of_token : token -> string
