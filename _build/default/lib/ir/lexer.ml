(* Hand-written lexer for Mira.  Produces a token stream with positions;
   errors are reported through the [Error] exception carrying a message and
   the offending position. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  (* keywords *)
  | KFN | KVAR | KGLOBAL | KIF | KELSE | KWHILE | KFOR | KTO | KSTEP
  | KRETURN | KPRINT | KTRUE | KFALSE | KLEN
  | TINT | TFLOAT | TBOOL
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACK | RBRACK
  | COMMA | SEMI | COLON | ARROW
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQEQ | NE | ASSIGN
  | ANDAND | OROR | BANG
  | AMP | PIPE | CARET | TILDE | SHL | SHR
  | EOF

exception Error of string * Ast.pos

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make src = { src; pos = 0; line = 1; col = 1 }

let cur_pos lx : Ast.pos = { line = lx.line; col = lx.col }

let peek lx = if lx.pos >= String.length lx.src then '\000' else lx.src.[lx.pos]

let peek2 lx =
  if lx.pos + 1 >= String.length lx.src then '\000' else lx.src.[lx.pos + 1]

let advance lx =
  if lx.pos < String.length lx.src then begin
    (if lx.src.[lx.pos] = '\n' then begin
       lx.line <- lx.line + 1;
       lx.col <- 1
     end
     else lx.col <- lx.col + 1);
    lx.pos <- lx.pos + 1
  end

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_ws_and_comments lx =
  match peek lx with
  | ' ' | '\t' | '\r' | '\n' ->
    advance lx;
    skip_ws_and_comments lx
  | '/' when peek2 lx = '/' ->
    while peek lx <> '\n' && peek lx <> '\000' do advance lx done;
    skip_ws_and_comments lx
  | '/' when peek2 lx = '*' ->
    let start = cur_pos lx in
    advance lx; advance lx;
    let rec loop () =
      match peek lx with
      | '\000' -> raise (Error ("unterminated comment", start))
      | '*' when peek2 lx = '/' -> advance lx; advance lx
      | _ -> advance lx; loop ()
    in
    loop ();
    skip_ws_and_comments lx
  | _ -> ()

let keyword = function
  | "fn" -> Some KFN
  | "var" -> Some KVAR
  | "global" -> Some KGLOBAL
  | "if" -> Some KIF
  | "else" -> Some KELSE
  | "while" -> Some KWHILE
  | "for" -> Some KFOR
  | "to" -> Some KTO
  | "step" -> Some KSTEP
  | "return" -> Some KRETURN
  | "print" -> Some KPRINT
  | "true" -> Some KTRUE
  | "false" -> Some KFALSE
  | "len" -> Some KLEN
  | "int" -> Some TINT
  | "float" -> Some TFLOAT
  | "bool" -> Some TBOOL
  | _ -> None

let lex_number lx =
  let start = lx.pos in
  let pos = cur_pos lx in
  while is_digit (peek lx) do advance lx done;
  let is_float =
    (peek lx = '.' && is_digit (peek2 lx))
    || peek lx = 'e' || peek lx = 'E'
    || ((peek lx = 'x' || peek lx = 'X') && lx.pos = start + 1
        && lx.src.[start] = '0')
  in
  if not is_float then begin
    let s = String.sub lx.src start (lx.pos - start) in
    match int_of_string_opt s with
    | Some n -> INT n
    | None -> raise (Error (Printf.sprintf "invalid integer literal %S" s, pos))
  end
  else if peek lx = 'x' || peek lx = 'X' then begin
    advance lx;
    while is_alnum (peek lx) do advance lx done;
    let s = String.sub lx.src start (lx.pos - start) in
    match int_of_string_opt s with
    | Some n -> INT n
    | None -> raise (Error (Printf.sprintf "invalid hex literal %S" s, pos))
  end
  else begin
    if peek lx = '.' then begin
      advance lx;
      while is_digit (peek lx) do advance lx done
    end;
    if peek lx = 'e' || peek lx = 'E' then begin
      advance lx;
      if peek lx = '+' || peek lx = '-' then advance lx;
      while is_digit (peek lx) do advance lx done
    end;
    let s = String.sub lx.src start (lx.pos - start) in
    match float_of_string_opt s with
    | Some f -> FLOAT f
    | None -> raise (Error (Printf.sprintf "invalid float literal %S" s, pos))
  end

(* Float literals may also be written in OCaml hex-float form (%h output of
   the pretty-printer), e.g. 0x1.8p+1; those start with 0x and contain a dot
   or a p exponent and are caught by [lex_number]'s hex path falling back to
   [float_of_string]. *)

let next lx : token * Ast.pos =
  skip_ws_and_comments lx;
  let pos = cur_pos lx in
  let tok1 t = advance lx; t in
  let tok2 t = advance lx; advance lx; t in
  let t =
    match peek lx with
    | '\000' -> EOF
    | c when is_digit c ->
      (* hex floats like 0x1.8p1 need a combined scan *)
      if c = '0' && (peek2 lx = 'x' || peek2 lx = 'X') then begin
        let start = lx.pos in
        advance lx; advance lx;
        while is_alnum (peek lx) || peek lx = '.'
              || ((peek lx = '+' || peek lx = '-')
                  && (lx.src.[lx.pos - 1] = 'p' || lx.src.[lx.pos - 1] = 'P'))
        do advance lx done;
        let s = String.sub lx.src start (lx.pos - start) in
        if String.contains s '.' || String.contains s 'p'
           || String.contains s 'P'
        then
          match float_of_string_opt s with
          | Some f -> FLOAT f
          | None -> raise (Error (Printf.sprintf "bad hex float %S" s, pos))
        else begin
          match int_of_string_opt s with
          | Some n -> INT n
          | None -> raise (Error (Printf.sprintf "bad hex literal %S" s, pos))
        end
      end
      else lex_number lx
    | c when is_alpha c ->
      let start = lx.pos in
      while is_alnum (peek lx) do advance lx done;
      let s = String.sub lx.src start (lx.pos - start) in
      (match keyword s with Some k -> k | None -> IDENT s)
    | '(' -> tok1 LPAREN
    | ')' -> tok1 RPAREN
    | '{' -> tok1 LBRACE
    | '}' -> tok1 RBRACE
    | '[' -> tok1 LBRACK
    | ']' -> tok1 RBRACK
    | ',' -> tok1 COMMA
    | ';' -> tok1 SEMI
    | ':' -> tok1 COLON
    | '+' -> tok1 PLUS
    | '-' -> if peek2 lx = '>' then tok2 ARROW else tok1 MINUS
    | '*' -> tok1 STAR
    | '/' -> tok1 SLASH
    | '%' -> tok1 PERCENT
    | '<' ->
      if peek2 lx = '=' then tok2 LE
      else if peek2 lx = '<' then tok2 SHL
      else tok1 LT
    | '>' ->
      if peek2 lx = '=' then tok2 GE
      else if peek2 lx = '>' then tok2 SHR
      else tok1 GT
    | '=' -> if peek2 lx = '=' then tok2 EQEQ else tok1 ASSIGN
    | '!' -> if peek2 lx = '=' then tok2 NE else tok1 BANG
    | '&' -> if peek2 lx = '&' then tok2 ANDAND else tok1 AMP
    | '|' -> if peek2 lx = '|' then tok2 OROR else tok1 PIPE
    | '^' -> tok1 CARET
    | '~' -> tok1 TILDE
    | c -> raise (Error (Printf.sprintf "unexpected character %C" c, pos))
  in
  (t, pos)

let tokenize src =
  let lx = make src in
  let rec loop acc =
    let t, p = next lx in
    if t = EOF then List.rev ((t, p) :: acc) else loop ((t, p) :: acc)
  in
  loop []

let string_of_token = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KFN -> "fn" | KVAR -> "var" | KGLOBAL -> "global" | KIF -> "if"
  | KELSE -> "else" | KWHILE -> "while" | KFOR -> "for" | KTO -> "to"
  | KSTEP -> "step" | KRETURN -> "return" | KPRINT -> "print"
  | KTRUE -> "true" | KFALSE -> "false" | KLEN -> "len"
  | TINT -> "int" | TFLOAT -> "float" | TBOOL -> "bool"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACK -> "[" | RBRACK -> "]" | COMMA -> "," | SEMI -> ";"
  | COLON -> ":" | ARROW -> "->"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQEQ -> "=="
  | NE -> "!=" | ASSIGN -> "="
  | ANDAND -> "&&" | OROR -> "||" | BANG -> "!"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~"
  | SHL -> "<<" | SHR -> ">>"
  | EOF -> "<eof>"
