(* Type checker for Mira.  Produces per-expression type information used by
   lowering (the lowering pass re-runs inference locally, so the checker's
   job is to reject ill-typed programs with useful messages). *)

exception Error of string * Ast.pos

let err pos fmt = Fmt.kstr (fun s -> raise (Error (s, pos))) fmt

type fsig = { fparams : Ast.ty list; fret : Ast.ty option }

type env = {
  vars : (string, Ast.ty) Hashtbl.t;
  funcs : (string, fsig) Hashtbl.t;
  ret : Ast.ty option;
}

let ty_eq (a : Ast.ty) (b : Ast.ty) = a = b

let lookup_var env pos v =
  match Hashtbl.find_opt env.vars v with
  | Some ty -> ty
  | None -> err pos "unbound variable %s" v

(* Argument expressions may be arrays (passed by reference); any other
   expression position rejects arrays. *)
let rec check_arg env (arg : Ast.expr) : Ast.ty =
  match arg.e with
  | Ast.Var v -> lookup_var env arg.epos v
  | _ -> check_expr env arg

and check_call env pos f args =
  match Hashtbl.find_opt env.funcs f with
  | None -> err pos "call to unknown function %s" f
  | Some fs ->
    let na = List.length args and np = List.length fs.fparams in
    if na <> np then err pos "%s expects %d arguments, got %d" f np na;
    List.iteri
      (fun i (arg, pty) ->
        let aty = check_arg env arg in
        if not (ty_eq aty pty) then
          err pos "argument %d of %s: expected %s, got %s" (i + 1) f
            (Ast.string_of_ty pty) (Ast.string_of_ty aty))
      (List.combine args fs.fparams);
    fs.fret

and check_expr env (x : Ast.expr) : Ast.ty =
  let pos = x.epos in
  match x.e with
  | Ast.Int _ -> Ast.TInt
  | Ast.Float _ -> Ast.TFloat
  | Ast.Bool _ -> Ast.TBool
  | Ast.Var v -> begin
    match lookup_var env pos v with
    | Ast.TArr _ -> err pos "array %s used as a scalar" v
    | ty -> ty
  end
  | Ast.Index (a, i) -> begin
    let ity = check_expr env i in
    if not (ty_eq ity Ast.TInt) then
      err pos "index of %s must be int, got %s" a (Ast.string_of_ty ity);
    match lookup_var env pos a with
    | Ast.TArr Ast.EltInt -> Ast.TInt
    | Ast.TArr Ast.EltFloat -> Ast.TFloat
    | ty -> err pos "%s is not an array (has type %s)" a (Ast.string_of_ty ty)
  end
  | Ast.Len a -> begin
    match lookup_var env pos a with
    | Ast.TArr _ -> Ast.TInt
    | ty -> err pos "len applied to non-array %s: %s" a (Ast.string_of_ty ty)
  end
  | Ast.Un (op, e) -> begin
    let t = check_expr env e in
    match (op, t) with
    | Ast.Neg, (Ast.TInt | Ast.TFloat) -> t
    | Ast.Neg, _ -> err pos "- applied to %s" (Ast.string_of_ty t)
    | Ast.Not, Ast.TBool -> Ast.TBool
    | Ast.Not, _ -> err pos "! applied to %s" (Ast.string_of_ty t)
    | Ast.BNot, Ast.TInt -> Ast.TInt
    | Ast.BNot, _ -> err pos "~ applied to %s" (Ast.string_of_ty t)
    | Ast.FloatOfInt, Ast.TInt -> Ast.TFloat
    | Ast.FloatOfInt, _ -> err pos "float() applied to %s" (Ast.string_of_ty t)
    | Ast.IntOfFloat, Ast.TFloat -> Ast.TInt
    | Ast.IntOfFloat, _ -> err pos "int() applied to %s" (Ast.string_of_ty t)
  end
  | Ast.Bin (op, l, r) -> begin
    let tl = check_expr env l in
    let tr = check_expr env r in
    let same () =
      if not (ty_eq tl tr) then
        err pos "operands of %s have different types: %s vs %s"
          (Ast.string_of_binop op) (Ast.string_of_ty tl) (Ast.string_of_ty tr)
    in
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
      same ();
      (match tl with
       | Ast.TInt | Ast.TFloat -> tl
       | _ ->
         err pos "arithmetic %s on %s" (Ast.string_of_binop op)
           (Ast.string_of_ty tl))
    | Ast.Rem | Ast.BAnd | Ast.BOr | Ast.BXor | Ast.Shl | Ast.Shr ->
      same ();
      if ty_eq tl Ast.TInt then Ast.TInt
      else
        err pos "integer operator %s on %s" (Ast.string_of_binop op)
          (Ast.string_of_ty tl)
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      same ();
      (match tl with
       | Ast.TInt | Ast.TFloat -> Ast.TBool
       | _ ->
         err pos "comparison %s on %s" (Ast.string_of_binop op)
           (Ast.string_of_ty tl))
    | Ast.Eq | Ast.Ne ->
      same ();
      (match tl with
       | Ast.TInt | Ast.TFloat | Ast.TBool -> Ast.TBool
       | _ ->
         err pos "equality on %s" (Ast.string_of_ty tl))
    | Ast.LAnd | Ast.LOr ->
      same ();
      if ty_eq tl Ast.TBool then Ast.TBool
      else
        err pos "logical %s on %s" (Ast.string_of_binop op)
          (Ast.string_of_ty tl)
  end
  | Ast.Call (f, args) -> begin
    match check_call env pos f args with
    | Some ty -> ty
    | None -> err pos "call to void function %s in expression" f
  end

let rec check_stmt env (x : Ast.stmt) : unit =
  let pos = x.spos in
  match x.s with
  | Ast.SDecl (v, ty, e) ->
    if Hashtbl.mem env.vars v then err pos "redeclaration of %s" v;
    let te = check_expr env e in
    if not (ty_eq te ty) then
      err pos "initializer of %s has type %s, expected %s" v
        (Ast.string_of_ty te) (Ast.string_of_ty ty);
    Hashtbl.replace env.vars v ty
  | Ast.SArrDecl (v, elt, n) ->
    if Hashtbl.mem env.vars v then err pos "redeclaration of %s" v;
    if n <= 0 then err pos "array %s has non-positive size %d" v n;
    Hashtbl.replace env.vars v (Ast.TArr elt)
  | Ast.SAssign (v, e) ->
    let tv = lookup_var env pos v in
    (match tv with
     | Ast.TArr _ -> err pos "cannot assign to array %s" v
     | _ -> ());
    let te = check_expr env e in
    if not (ty_eq te tv) then
      err pos "assigning %s to %s of type %s" (Ast.string_of_ty te) v
        (Ast.string_of_ty tv)
  | Ast.SStore (a, i, e) -> begin
    let ti = check_expr env i in
    if not (ty_eq ti Ast.TInt) then err pos "store index must be int";
    let te = check_expr env e in
    match lookup_var env pos a with
    | Ast.TArr Ast.EltInt ->
      if not (ty_eq te Ast.TInt) then err pos "storing %s into int array %s"
          (Ast.string_of_ty te) a
    | Ast.TArr Ast.EltFloat ->
      if not (ty_eq te Ast.TFloat) then
        err pos "storing %s into float array %s" (Ast.string_of_ty te) a
    | ty -> err pos "%s is not an array: %s" a (Ast.string_of_ty ty)
  end
  | Ast.SIf (c, t, e) ->
    let tc = check_expr env c in
    if not (ty_eq tc Ast.TBool) then
      err pos "if condition must be bool, got %s" (Ast.string_of_ty tc);
    check_scope env t;
    check_scope env e
  | Ast.SWhile (c, b) ->
    let tc = check_expr env c in
    if not (ty_eq tc Ast.TBool) then
      err pos "while condition must be bool, got %s" (Ast.string_of_ty tc);
    check_scope env b
  | Ast.SFor (v, lo, hi, step, b) ->
    let check_int what e =
      let t = check_expr env e in
      if not (ty_eq t Ast.TInt) then
        err pos "for %s must be int, got %s" what (Ast.string_of_ty t)
    in
    check_int "lower bound" lo;
    check_int "upper bound" hi;
    check_int "step" step;
    if Hashtbl.mem env.vars v then err pos "for variable %s shadows" v;
    Hashtbl.replace env.vars v Ast.TInt;
    check_scope env b;
    Hashtbl.remove env.vars v
  | Ast.SReturn None ->
    if env.ret <> None then err pos "missing return value"
  | Ast.SReturn (Some e) -> begin
    let te = check_expr env e in
    match env.ret with
    | None -> err pos "returning a value from a void function"
    | Some ty ->
      if not (ty_eq te ty) then
        err pos "return type mismatch: %s vs %s" (Ast.string_of_ty te)
          (Ast.string_of_ty ty)
  end
  | Ast.SExpr e -> begin
    (* Permit both value-returning and void calls as statements. *)
    match e.e with
    | Ast.Call (f, args) -> ignore (check_call env pos f args)
    | _ -> ignore (check_expr env e)
  end
  | Ast.SPrint e -> begin
    match check_expr env e with
    | Ast.TInt | Ast.TFloat | Ast.TBool -> ()
    | ty -> err pos "cannot print %s" (Ast.string_of_ty ty)
  end

(* Blocks introduce a scope: declarations inside are dropped on exit. *)
and check_scope env stmts =
  let saved = Hashtbl.copy env.vars in
  List.iter (check_stmt env) stmts;
  Hashtbl.reset env.vars;
  Hashtbl.iter (Hashtbl.replace env.vars) saved

let check_func funcs (f : Ast.func) globals =
  let vars = Hashtbl.create 16 in
  List.iter
    (fun (g : Ast.global) ->
      Hashtbl.replace vars g.Ast.gname (Ast.TArr g.Ast.gelt))
    globals;
  List.iter
    (fun (n, ty) ->
      if Hashtbl.mem vars n && not (List.exists (fun (g : Ast.global) ->
           g.Ast.gname = n) globals)
      then err f.Ast.fpos "duplicate parameter %s in %s" n f.Ast.fname;
      Hashtbl.replace vars n ty)
    f.Ast.params;
  let env = { vars; funcs; ret = f.Ast.ret } in
  List.iter (check_stmt env) f.Ast.body

let check (p : Ast.program) : unit =
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem funcs f.Ast.fname then
        err f.Ast.fpos "duplicate function %s" f.Ast.fname;
      Hashtbl.replace funcs f.Ast.fname
        { fparams = List.map snd f.Ast.params; fret = f.Ast.ret })
    p.funcs;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (g : Ast.global) ->
      if Hashtbl.mem seen g.Ast.gname then
        err Ast.dummy_pos "duplicate global %s" g.Ast.gname;
      if g.Ast.gsize <= 0 then
        err Ast.dummy_pos "global %s has non-positive size" g.Ast.gname;
      if List.length g.Ast.ginit > g.Ast.gsize then
        err Ast.dummy_pos "global %s has too many initializers" g.Ast.gname;
      Hashtbl.replace seen g.Ast.gname ())
    p.globals;
  (match Hashtbl.find_opt funcs "main" with
   | None -> err Ast.dummy_pos "program has no main function"
   | Some { fparams = []; fret = (Some Ast.TInt | None) } -> ()
   | Some _ -> err Ast.dummy_pos "main must take no parameters and return int");
  List.iter (fun f -> check_func funcs f p.globals) p.funcs

let check_result p =
  match check p with
  | () -> Ok ()
  | exception Error (msg, pos) ->
    Error (Printf.sprintf "type error at %d:%d: %s" pos.line pos.col msg)
