(* Abstract syntax of Mira, the small imperative source language used as the
   compiler substrate for the intelligent-compiler experiments.

   Mira is deliberately C-like: scalar ints/floats/bools, one-dimensional
   arrays (locals, globals and by-reference parameters), structured control
   flow, and calls.  It is rich enough that the 13 optimization passes have
   real work to do, while staying small enough to lower and simulate
   deterministically. *)

type ty =
  | TInt
  | TFloat
  | TBool
  | TArr of elt

and elt =
  | EltInt
  | EltFloat

type binop =
  | Add | Sub | Mul | Div | Rem
  | Lt | Le | Gt | Ge | Eq | Ne
  | LAnd | LOr                          (* short-circuit *)
  | BAnd | BOr | BXor | Shl | Shr

type unop =
  | Neg
  | Not
  | BNot
  | FloatOfInt
  | IntOfFloat

(* Source position, for error messages. *)
type pos = { line : int; col : int }

let dummy_pos = { line = 0; col = 0 }

type expr = { e : expr_desc; epos : pos }

and expr_desc =
  | Int of int
  | Float of float
  | Bool of bool
  | Var of string
  | Index of string * expr              (* a[i] *)
  | Len of string                       (* len(a) *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list

type stmt = { s : stmt_desc; spos : pos }

and stmt_desc =
  | SDecl of string * ty * expr               (* var x: int = e *)
  | SArrDecl of string * elt * int            (* var a: int[64] *)
  | SAssign of string * expr
  | SStore of string * expr * expr            (* a[i] = e *)
  | SIf of expr * stmt list * stmt list
  | SWhile of expr * stmt list
  | SFor of string * expr * expr * expr * stmt list
      (* for x = lo to hi step s { ... }: iterates while x < hi *)
  | SReturn of expr option
  | SExpr of expr
  | SPrint of expr

type func = {
  fname : string;
  params : (string * ty) list;
  ret : ty option;
  body : stmt list;
  fpos : pos;
}

type global = {
  gname : string;
  gelt : elt;
  gsize : int;
  ginit : float list;  (* leading initializers; remainder zero-filled *)
}

type program = {
  globals : global list;
  funcs : func list;
}

let mk_e ?(pos = dummy_pos) e = { e; epos = pos }
let mk_s ?(pos = dummy_pos) s = { s; spos = pos }

let string_of_ty = function
  | TInt -> "int"
  | TFloat -> "float"
  | TBool -> "bool"
  | TArr EltInt -> "int[]"
  | TArr EltFloat -> "float[]"

let string_of_binop = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | LAnd -> "&&" | LOr -> "||"
  | BAnd -> "&" | BOr -> "|" | BXor -> "^" | Shl -> "<<" | Shr -> ">>"

let string_of_unop = function
  | Neg -> "-" | Not -> "!" | BNot -> "~"
  | FloatOfInt -> "float" | IntOfFloat -> "int"

(* Pretty printer: emits valid Mira concrete syntax, used by the
   parser round-trip property tests. *)

let rec pp_expr ppf (x : expr) =
  match x.e with
  | Int n -> if n < 0 then Fmt.pf ppf "(%d)" n else Fmt.int ppf n
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Fmt.pf ppf "%.1f" f
    else Fmt.pf ppf "%h" f
  | Bool b -> Fmt.bool ppf b
  | Var v -> Fmt.string ppf v
  | Index (a, i) -> Fmt.pf ppf "%s[%a]" a pp_expr i
  | Len a -> Fmt.pf ppf "len(%s)" a
  | Bin (op, l, r) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr l (string_of_binop op) pp_expr r
  | Un ((FloatOfInt | IntOfFloat) as op, x) ->
    Fmt.pf ppf "%s(%a)" (string_of_unop op) pp_expr x
  | Un (op, x) -> Fmt.pf ppf "(%s%a)" (string_of_unop op) pp_expr x
  | Call (f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp_expr) args

let rec pp_stmt ind ppf (x : stmt) =
  let pad = String.make ind ' ' in
  match x.s with
  | SDecl (v, ty, e) ->
    Fmt.pf ppf "%svar %s: %s = %a;" pad v (string_of_ty ty) pp_expr e
  | SArrDecl (v, elt, n) ->
    let t = match elt with EltInt -> "int" | EltFloat -> "float" in
    Fmt.pf ppf "%svar %s: %s[%d];" pad v t n
  | SAssign (v, e) -> Fmt.pf ppf "%s%s = %a;" pad v pp_expr e
  | SStore (a, i, e) -> Fmt.pf ppf "%s%s[%a] = %a;" pad a pp_expr i pp_expr e
  | SIf (c, t, []) ->
    Fmt.pf ppf "%sif (%a) {@\n%a@\n%s}" pad pp_expr c (pp_body (ind + 2)) t pad
  | SIf (c, t, e) ->
    Fmt.pf ppf "%sif (%a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad pp_expr c
      (pp_body (ind + 2)) t pad (pp_body (ind + 2)) e pad
  | SWhile (c, b) ->
    Fmt.pf ppf "%swhile (%a) {@\n%a@\n%s}" pad pp_expr c (pp_body (ind + 2)) b pad
  | SFor (v, lo, hi, step, b) ->
    Fmt.pf ppf "%sfor %s = %a to %a step %a {@\n%a@\n%s}" pad v pp_expr lo
      pp_expr hi pp_expr step (pp_body (ind + 2)) b pad
  | SReturn None -> Fmt.pf ppf "%sreturn;" pad
  | SReturn (Some e) -> Fmt.pf ppf "%sreturn %a;" pad pp_expr e
  | SExpr e -> Fmt.pf ppf "%s%a;" pad pp_expr e
  | SPrint e -> Fmt.pf ppf "%sprint(%a);" pad pp_expr e

and pp_body ind ppf stmts =
  Fmt.(list ~sep:(any "@\n") (pp_stmt ind)) ppf stmts

let pp_func ppf (f : func) =
  let pp_param ppf (n, ty) = Fmt.pf ppf "%s: %s" n (string_of_ty ty) in
  let pp_ret ppf = function
    | None -> ()
    | Some ty -> Fmt.pf ppf " -> %s" (string_of_ty ty)
  in
  Fmt.pf ppf "fn %s(%a)%a {@\n%a@\n}" f.fname
    Fmt.(list ~sep:(any ", ") pp_param)
    f.params pp_ret f.ret (pp_body 2) f.body

let pp_global ppf (g : global) =
  let t = match g.gelt with EltInt -> "int" | EltFloat -> "float" in
  match g.ginit with
  | [] -> Fmt.pf ppf "global %s: %s[%d];" g.gname t g.gsize
  | init ->
    let pp_v ppf v =
      match g.gelt with
      | EltInt -> Fmt.pf ppf "%d" (int_of_float v)
      | EltFloat -> Fmt.pf ppf "%h" v
    in
    Fmt.pf ppf "global %s: %s[%d] = {%a};" g.gname t g.gsize
      Fmt.(list ~sep:(any ", ") pp_v)
      init

let pp_program ppf (p : program) =
  Fmt.pf ppf "%a%a%a"
    Fmt.(list ~sep:(any "@\n") pp_global)
    p.globals
    Fmt.(if p.globals = [] then nop else any "@\n@\n")
    ()
    Fmt.(list ~sep:(any "@\n@\n") pp_func)
    p.funcs

let to_string (p : program) = Fmt.str "%a@." pp_program p
