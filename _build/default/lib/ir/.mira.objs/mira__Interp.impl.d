lib/ir/interp.ml: Array Buffer Float Fmt Hashtbl Ir List Printf
