lib/ir/lower.mli: Ast Ir
