lib/ir/ir.ml: Fmt Int List Map Option Printf Set String
