lib/ir/ast.ml: Float Fmt String
