lib/ir/typecheck.ml: Ast Fmt Hashtbl List Printf
