lib/ir/interp.mli: Format Hashtbl Ir
