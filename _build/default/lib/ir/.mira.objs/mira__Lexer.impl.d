lib/ir/lexer.ml: Ast List Printf String
