lib/ir/ast.mli: Format
