lib/ir/analysis.mli: Ir
