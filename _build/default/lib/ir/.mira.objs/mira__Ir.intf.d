lib/ir/ir.mli: Format Map Set
