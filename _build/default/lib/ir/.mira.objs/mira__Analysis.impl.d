lib/ir/analysis.ml: Array Hashtbl Ir List
