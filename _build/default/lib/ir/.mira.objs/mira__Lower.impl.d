lib/ir/lower.ml: Array Ast Hashtbl Ir List Map Parser Printf String Typecheck
