lib/ir/lexer.mli: Ast
