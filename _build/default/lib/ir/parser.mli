(** Recursive-descent parser for Mira with precedence climbing.  See the
    grammar summary in the implementation header. *)

exception Error of string * Ast.pos

(** @raise Error on lexical or syntactic errors, with position *)
val parse : string -> Ast.program

(** error message includes ["parse error at line:col"] *)
val parse_result : string -> (Ast.program, string) result
