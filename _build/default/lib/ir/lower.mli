(** Lowering from the Mira AST to the three-address IR, and the front-end
    convenience entry points (parse + typecheck + lower). *)

exception Error of string

(** lower a type-checked program.  Behaviour on ill-typed input is
    unspecified (may raise {!Error}); run {!Typecheck.check} first. *)
val lower : Ast.program -> Ir.program

(** parse, typecheck and lower source text *)
val compile_source : string -> (Ir.program, string) result

(** @raise Failure with the error message on any front-end error *)
val compile_source_exn : string -> Ir.program
