(** Abstract syntax of Mira, the small imperative source language.
    C-like: scalar ints/floats/bools, one-dimensional arrays (locals,
    globals and by-reference parameters), structured control flow, calls.
    The pretty-printer emits valid concrete syntax (used by the parser
    round-trip tests). *)

type ty =
  | TInt
  | TFloat
  | TBool
  | TArr of elt

and elt = EltInt | EltFloat

type binop =
  | Add | Sub | Mul | Div | Rem
  | Lt | Le | Gt | Ge | Eq | Ne
  | LAnd | LOr      (** short-circuit *)
  | BAnd | BOr | BXor | Shl | Shr

type unop = Neg | Not | BNot | FloatOfInt | IntOfFloat

type pos = { line : int; col : int }

val dummy_pos : pos

type expr = { e : expr_desc; epos : pos }

and expr_desc =
  | Int of int
  | Float of float
  | Bool of bool
  | Var of string
  | Index of string * expr   (** a[i] *)
  | Len of string            (** len(a) *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list

type stmt = { s : stmt_desc; spos : pos }

and stmt_desc =
  | SDecl of string * ty * expr
  | SArrDecl of string * elt * int
  | SAssign of string * expr
  | SStore of string * expr * expr
  | SIf of expr * stmt list * stmt list
  | SWhile of expr * stmt list
  | SFor of string * expr * expr * expr * stmt list
      (** for x = lo to hi step s: iterates while x < hi *)
  | SReturn of expr option
  | SExpr of expr
  | SPrint of expr

type func = {
  fname : string;
  params : (string * ty) list;
  ret : ty option;
  body : stmt list;
  fpos : pos;
}

type global = {
  gname : string;
  gelt : elt;
  gsize : int;
  ginit : float list;  (** leading initializers; remainder zero-filled *)
}

type program = {
  globals : global list;
  funcs : func list;
}

val mk_e : ?pos:pos -> expr_desc -> expr
val mk_s : ?pos:pos -> stmt_desc -> stmt
val string_of_ty : ty -> string
val string_of_binop : binop -> string
val string_of_unop : unop -> string
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : int -> Format.formatter -> stmt -> unit
val pp_body : int -> Format.formatter -> stmt list -> unit
val pp_func : Format.formatter -> func -> unit
val pp_global : Format.formatter -> global -> unit
val pp_program : Format.formatter -> program -> unit
val to_string : program -> string
