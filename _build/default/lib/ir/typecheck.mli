(** Type checker for Mira: scalar/array typing, scoping, call signatures,
    and program-level rules (unique globals/functions, a parameterless
    [main] returning [int] or nothing). *)

exception Error of string * Ast.pos

(** @raise Error on the first type error *)
val check : Ast.program -> unit

val check_result : Ast.program -> (unit, string) result
