(* Reference execution engine for the IR.

   The engine is shared between the functional interpreter (the semantics
   oracle used by differential tests) and the cycle-level machine simulator:
   the simulator supplies [hooks] that observe every executed instruction,
   every memory access (with its byte address) and every conditional branch
   (with a stable site id), and accumulates timing on the side.  With the
   default no-op hooks this is a plain interpreter.

   Semantics notes:
   - integers are native OCaml ints (wrap-around arithmetic);
   - division/remainder by zero, out-of-bounds array accesses, and
     out-of-range shift counts (not in [0,62]) trap — traps are observable
     behaviour that optimization passes must preserve;
   - reading a register that was never written traps (this catches
     miscompilations in differential testing; well-typed lowered code never
     does it);
   - local arrays are zero-initialized, as are globals beyond their
     initializers. *)

type payload = IA of int array | FA of float array

type arr = {
  payload : payload;
  base : int;      (* byte address *)
  esize : int;     (* element size in bytes: 8, or 4 when packed *)
  mask32 : bool;   (* packed: stores keep only the low 32 bits *)
}

type value =
  | VUndef
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VArr of arr

exception Trap of string
exception Out_of_fuel

let trap fmt = Fmt.kstr (fun s -> raise (Trap s)) fmt

type hooks = {
  on_instr : Ir.instr -> unit;
  on_load : int -> unit;               (* byte address *)
  on_store : int -> unit;
  on_branch : int -> bool -> unit;     (* site id, taken *)
  on_jump : unit -> unit;              (* unconditional jmp / ret *)
}

let no_hooks =
  {
    on_instr = (fun _ -> ());
    on_load = (fun _ -> ());
    on_store = (fun _ -> ());
    on_branch = (fun _ _ -> ());
    on_jump = (fun () -> ());
  }

(* Stable ids for conditional-branch sites, used by the branch predictor.
   Ids are assigned per function in label order, offset so that different
   functions never collide. *)
type site_table = { sites : (string * int, int) Hashtbl.t; mutable count : int }

let build_sites (p : Ir.program) : site_table =
  let t = { sites = Hashtbl.create 64; count = 0 } in
  Ir.SMap.iter
    (fun fname (f : Ir.func) ->
      Ir.LMap.iter
        (fun l (b : Ir.block) ->
          match b.Ir.term with
          | Ir.Br _ ->
            Hashtbl.replace t.sites (fname, l) t.count;
            t.count <- t.count + 1
          | _ -> ())
        f.Ir.blocks)
    p.funcs;
  t

type result = {
  ret : value;
  output : string;
  steps : int;   (* dynamic instruction count, terminators included *)
}

let global_base = 0x10000
let stack_base = 0x4000000

type state = {
  prog : Ir.program;
  hooks : hooks;
  sites : site_table;
  globals : (string, arr) Hashtbl.t;
  buf : Buffer.t;
  mutable fuel : int;
  mutable steps : int;
  mutable sp : int;   (* next free stack byte address *)
}

let value_to_string = function
  | VInt n -> string_of_int n
  | VFloat f -> Printf.sprintf "%.6g" f
  | VBool b -> string_of_bool b
  | VArr _ -> "<array>"
  | VUndef -> "<undef>"

let arr_len a =
  match a.payload with IA x -> Array.length x | FA x -> Array.length x

let as_int = function
  | VInt n -> n
  | v -> trap "expected int, got %s" (value_to_string v)

let as_float = function
  | VFloat f -> f
  | v -> trap "expected float, got %s" (value_to_string v)

let as_bool = function
  | VBool b -> b
  | v -> trap "expected bool, got %s" (value_to_string v)

let as_arr = function
  | VArr a -> a
  | v -> trap "expected array, got %s" (value_to_string v)

let shift_ok n = n >= 0 && n <= 62

let eval_arith op a b =
  match (op : Ir.arith) with
  | Ir.Add -> a + b
  | Ir.Sub -> a - b
  | Ir.Mul -> a * b
  | Ir.Div -> if b = 0 then trap "division by zero" else a / b
  | Ir.Rem -> if b = 0 then trap "remainder by zero" else a mod b
  | Ir.And -> a land b
  | Ir.Or -> a lor b
  | Ir.Xor -> a lxor b
  | Ir.Shl -> if shift_ok b then a lsl b else trap "shift count %d" b
  | Ir.Shr -> if shift_ok b then a asr b else trap "shift count %d" b

let eval_farith op a b =
  match (op : Ir.farith) with
  | Ir.FAdd -> a +. b
  | Ir.FSub -> a -. b
  | Ir.FMul -> a *. b
  | Ir.FDiv -> a /. b   (* IEEE: yields inf/nan, does not trap *)

let eval_icmp op a b =
  match (op : Ir.cmp) with
  | Ir.Eq -> a = b
  | Ir.Ne -> a <> b
  | Ir.Lt -> a < b
  | Ir.Le -> a <= b
  | Ir.Gt -> a > b
  | Ir.Ge -> a >= b

let eval_fcmp op a b =
  match (op : Ir.cmp) with
  | Ir.Eq -> a = b
  | Ir.Ne -> a <> b
  | Ir.Lt -> a < b
  | Ir.Le -> a <= b
  | Ir.Gt -> a > b
  | Ir.Ge -> (a : float) >= b

(* Equality used by Icmp on potentially mixed bool/int registers: lowering
   only compares same-typed scalars, so plain comparisons above suffice. *)

let align64 n = (n + 63) land lnot 63

let alloc_local st (elt : Ir.elt) size =
  let base = st.sp in
  st.sp <- st.sp + align64 (size * 8);
  if st.sp > stack_base + 0x8000000 then trap "stack overflow";
  let payload =
    match elt with
    | Ir.EltInt | Ir.EltInt32 -> IA (Array.make size 0)
    | Ir.EltFloat -> FA (Array.make size 0.0)
  in
  { payload; base; esize = 8; mask32 = false }

let do_load st (a : arr) idx =
  if idx < 0 || idx >= arr_len a then
    trap "load out of bounds: index %d, length %d" idx (arr_len a);
  st.hooks.on_load (a.base + (idx * a.esize));
  match a.payload with
  | IA x -> VInt (Array.unsafe_get x idx)
  | FA x -> VFloat (Array.unsafe_get x idx)

let do_store st (a : arr) idx v =
  if idx < 0 || idx >= arr_len a then
    trap "store out of bounds: index %d, length %d" idx (arr_len a);
  st.hooks.on_store (a.base + (idx * a.esize));
  match (a.payload, v) with
  | IA x, VInt n ->
    Array.unsafe_set x idx (if a.mask32 then n land 0xFFFFFFFF else n)
  | FA x, VFloat f -> Array.unsafe_set x idx f
  | IA _, _ -> trap "storing non-int into int array"
  | FA _, _ -> trap "storing non-float into float array"

let rec eval_call st fname (args : value list) : value =
  let f =
    match Ir.SMap.find_opt fname st.prog.funcs with
    | Some f -> f
    | None -> trap "call to unknown function %s" fname
  in
  if List.length args <> List.length f.Ir.params then
    trap "arity mismatch calling %s" fname;
  let regs = Array.make (max 1 f.Ir.nregs) VUndef in
  List.iter2 (fun r v -> regs.(r) <- v) f.Ir.params args;
  (* allocate frame arrays *)
  let saved_sp = st.sp in
  let locals = Hashtbl.create 4 in
  List.iter
    (fun (n, elt, size) -> Hashtbl.replace locals n (alloc_local st elt size))
    f.Ir.locals;
  let operand (o : Ir.operand) : value =
    match o with
    | Ir.Reg r ->
      let v = regs.(r) in
      if v == VUndef then trap "%s: read of undefined r%d" fname r else v
    | Ir.Cint n -> VInt n
    | Ir.Cfloat f -> VFloat f
    | Ir.Cbool b -> VBool b
    | Ir.AGlob g -> (
      match Hashtbl.find_opt st.globals g with
      | Some a -> VArr a
      | None -> trap "unknown global %s" g)
    | Ir.ALoc n -> (
      match Hashtbl.find_opt locals n with
      | Some a -> VArr a
      | None -> trap "unknown local array %s in %s" n fname)
  in
  let exec_instr (i : Ir.instr) : unit =
    st.hooks.on_instr i;
    match i with
    | Ir.Bin (op, d, a, b) ->
      regs.(d) <- VInt (eval_arith op (as_int (operand a)) (as_int (operand b)))
    | Ir.Fbin (op, d, a, b) ->
      regs.(d) <-
        VFloat (eval_farith op (as_float (operand a)) (as_float (operand b)))
    | Ir.Icmp (op, d, a, b) -> begin
      (* int or bool equality; lowering emits Icmp Eq/Ne on bools too *)
      match (operand a, operand b) with
      | VBool x, VBool y ->
        regs.(d) <-
          VBool
            (match op with
             | Ir.Eq -> x = y
             | Ir.Ne -> x <> y
             | _ -> trap "ordered comparison on bool")
      | va, vb -> regs.(d) <- VBool (eval_icmp op (as_int va) (as_int vb))
    end
    | Ir.Fcmp (op, d, a, b) ->
      regs.(d) <- VBool (eval_fcmp op (as_float (operand a)) (as_float (operand b)))
    | Ir.Not (d, a) -> regs.(d) <- VBool (not (as_bool (operand a)))
    | Ir.Mov (d, a) -> regs.(d) <- operand a
    | Ir.I2f (d, a) -> regs.(d) <- VFloat (float_of_int (as_int (operand a)))
    | Ir.F2i (d, a) ->
      let f = as_float (operand a) in
      if Float.is_nan f || Float.abs f > 4.6e18 then
        trap "float-to-int overflow on %g" f
      else regs.(d) <- VInt (int_of_float f)
    | Ir.Load (d, a, ix) ->
      regs.(d) <- do_load st (as_arr (operand a)) (as_int (operand ix))
    | Ir.Store (a, ix, v) ->
      do_store st (as_arr (operand a)) (as_int (operand ix)) (operand v)
    | Ir.Alen (d, a) -> regs.(d) <- VInt (arr_len (as_arr (operand a)))
    | Ir.Call (d, g, cargs) ->
      let vs = List.map operand cargs in
      let rv = eval_call st g vs in
      (match d with
       | Some d -> regs.(d) <- rv
       | None -> ())
    | Ir.Print a ->
      Buffer.add_string st.buf (value_to_string (operand a));
      Buffer.add_char st.buf '\n'
  in
  let site l =
    match Hashtbl.find_opt st.sites.sites (fname, l) with
    | Some s -> s
    | None -> -1
  in
  let rec run_block label : value =
    let b = Ir.find_block f label in
    List.iter
      (fun i ->
        st.fuel <- st.fuel - 1;
        st.steps <- st.steps + 1;
        if st.fuel <= 0 then raise Out_of_fuel;
        exec_instr i)
      b.Ir.instrs;
    st.fuel <- st.fuel - 1;
    st.steps <- st.steps + 1;
    if st.fuel <= 0 then raise Out_of_fuel;
    match b.Ir.term with
    | Ir.Jmp l ->
      st.hooks.on_jump ();
      run_block l
    | Ir.Br (c, t, e) ->
      let taken = as_bool (operand c) in
      st.hooks.on_branch (site label) taken;
      run_block (if taken then t else e)
    | Ir.Ret None ->
      st.hooks.on_jump ();
      VUndef
    | Ir.Ret (Some v) ->
      st.hooks.on_jump ();
      operand v
  in
  let rv = run_block f.Ir.entry in
  st.sp <- saved_sp;
  rv

let init_globals (p : Ir.program) : (string, arr) Hashtbl.t =
  let globals = Hashtbl.create 8 in
  let addr = ref global_base in
  List.iter
    (fun (g : Ir.global) ->
      let payload =
        match g.Ir.gelt with
        | Ir.EltInt | Ir.EltInt32 -> IA (Array.map int_of_float g.Ir.ginit)
        | Ir.EltFloat -> FA (Array.copy g.Ir.ginit)
      in
      let esize = match g.Ir.gelt with Ir.EltInt32 -> 4 | _ -> 8 in
      let mask32 = g.Ir.gelt = Ir.EltInt32 in
      Hashtbl.replace globals g.Ir.gname { payload; base = !addr; esize; mask32 };
      addr := !addr + align64 (g.Ir.gsize * esize))
    p.globals;
  globals

let default_fuel = 100_000_000

(* Run [p] from its main function.  Raises [Trap] / [Out_of_fuel]. *)
let run ?(fuel = default_fuel) ?(hooks = no_hooks) (p : Ir.program) : result =
  let st =
    {
      prog = p;
      hooks;
      sites = build_sites p;
      globals = init_globals p;
      buf = Buffer.create 256;
      fuel;
      steps = 0;
      sp = stack_base;
    }
  in
  let ret = eval_call st p.main [] in
  { ret; output = Buffer.contents st.buf; steps = st.steps }

(* Observable behaviour for differential testing: either a normal outcome
   (return value as string + printed output) or a trap message.  Fuel
   exhaustion is reported distinctly since an optimization may legitimately
   change instruction counts. *)
type observation =
  | Finished of string * string   (* return value, output *)
  | Trapped of string
  | Diverged

let observe ?(fuel = default_fuel) (p : Ir.program) : observation =
  match run ~fuel p with
  | r -> Finished (value_to_string r.ret, r.output)
  | exception Trap m -> Trapped m
  | exception Out_of_fuel -> Diverged

let equal_observation a b =
  match (a, b) with
  | Finished (r1, o1), Finished (r2, o2) -> r1 = r2 && o1 = o2
  | Trapped _, Trapped _ ->
    (* trap messages may differ in detail after optimization; the *fact*
       of trapping is the observable *)
    true
  | Diverged, Diverged -> true
  | _ -> false

let pp_observation ppf = function
  | Finished (r, o) -> Fmt.pf ppf "Finished(ret=%s, out=%S)" r o
  | Trapped m -> Fmt.pf ppf "Trapped(%s)" m
  | Diverged -> Fmt.pf ppf "Diverged"
