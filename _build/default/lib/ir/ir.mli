(** Three-address intermediate representation.

    A function is a control-flow graph of basic blocks over an unbounded
    set of virtual registers.  The IR is deliberately {e not} SSA:
    registers are mutable cells, which keeps phase-ordering effects (the
    object of study in the reproduced paper) directly visible to the
    passes.  Memory consists solely of one-dimensional arrays: local
    frame slots, global symbols, or array-typed parameters, all referred
    to through runtime handles. *)

type reg = int
type label = int

module LMap : Map.S with type key = int
module LSet : Set.S with type elt = int
module RSet : Set.S with type elt = int
module SMap : Map.S with type key = string

type operand =
  | Reg of reg
  | Cint of int
  | Cfloat of float
  | Cbool of bool
  | AGlob of string  (** handle of a global array *)
  | ALoc of string   (** handle of a local (frame) array *)

type arith = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type farith = FAdd | FSub | FMul | FDiv
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type instr =
  | Bin of arith * reg * operand * operand
  | Fbin of farith * reg * operand * operand
  | Icmp of cmp * reg * operand * operand
  | Fcmp of cmp * reg * operand * operand
  | Not of reg * operand                  (** boolean negation *)
  | Mov of reg * operand
  | I2f of reg * operand
  | F2i of reg * operand
  | Load of reg * operand * operand       (** dst <- arr[idx] *)
  | Store of operand * operand * operand  (** arr[idx] <- value *)
  | Alen of reg * operand                 (** dst <- len arr *)
  | Call of reg option * string * operand list
  | Print of operand

type term =
  | Jmp of label
  | Br of operand * label * label  (** cond, then, else *)
  | Ret of operand option

type block = { instrs : instr list; term : term }

type elt =
  | EltInt
  | EltFloat
  | EltInt32
      (** packed 4-byte unsigned element, produced by the array-packing
          optimization: stores are masked to 32 bits, loads zero-extend;
          only used for global arrays whose stored values are provably in
          [0, 2^32), so packing is observation-equivalent *)

type func = {
  name : string;
  params : reg list;
  nregs : int;    (** registers 0..nregs-1 are in use *)
  entry : label;
  blocks : block LMap.t;
  nlabels : int;  (** labels 0..nlabels-1 may be in use *)
  locals : (string * elt * int) list;  (** local arrays: name, elt, size *)
}

type global = {
  gname : string;
  gelt : elt;
  gsize : int;
  ginit : float array;  (** leading initializers (ints stored as floats) *)
}

type program = { globals : global list; funcs : func SMap.t; main : string }

(** {2 Construction helpers} *)

val block : ?instrs:instr list -> term -> block

(** @raise Invalid_argument when the label does not exist *)
val find_block : func -> label -> block

val set_block : func -> label -> block -> func
val fresh_reg : func -> func * reg
val fresh_label : func -> func * label

(** @raise Invalid_argument when the function does not exist *)
val find_func : program -> string -> func

val update_func : program -> func -> program
val map_funcs : (func -> func) -> program -> program

(** {2 Structural queries} *)

(** the register defined by an instruction, if any *)
val def_of : instr -> reg option

(** all operands of an instruction, in order *)
val ops_of : instr -> operand list

(** the registers read by an instruction *)
val uses_of : instr -> reg list

(** the registers read by a terminator *)
val term_uses : term -> reg list

(** successor labels (deduplicated for [Br] with equal targets) *)
val successors : term -> label list

(** rebuild an instruction with operands mapped through [fo] and the
    defined register through [fd] *)
val map_instr : fo:(operand -> operand) -> fd:(reg -> reg) -> instr -> instr

val map_term : fo:(operand -> operand) -> fl:(label -> label) -> term -> term

(** calls, prints and stores *)
val has_side_effect : instr -> bool

(** conservatively, may the instruction trap at run time? *)
val can_trap : instr -> bool

(** static instruction count + one per terminator: the code-size metric *)
val func_size : func -> int

val program_size : program -> int
val block_count : func -> int

(** {2 Pretty printing} *)

val pp_operand : Format.formatter -> operand -> unit
val string_of_arith : arith -> string
val string_of_farith : farith -> string
val string_of_cmp : cmp -> string
val pp_instr : Format.formatter -> instr -> unit
val pp_term : Format.formatter -> term -> unit
val pp_func : Format.formatter -> func -> unit
val pp_program : Format.formatter -> program -> unit
val func_to_string : func -> string
val to_string : program -> string

(** {2 Well-formedness}

    Every referenced label/register/array must resolve.  Passes must
    preserve well-formedness; the test suite checks it after every pass
    on every workload. *)

type wf_error = string

val check_func : global list -> func -> wf_error list
val check_program : program -> wf_error list
