(* Three-address intermediate representation.

   A function is a control-flow graph of basic blocks over an unbounded set
   of virtual registers.  The IR is deliberately *not* SSA: registers are
   mutable cells, which makes phase-ordering effects (the object of study in
   the paper) directly visible to the passes.  All dataflow passes therefore
   run classic iterative analyses.

   Memory: the only memory objects are one-dimensional arrays.  An array
   value is a runtime handle (base address + length); handles come from
   local-array slots, global symbols, or array-typed parameters. *)

type reg = int
type label = int

module LMap = Map.Make (Int)
module LSet = Set.Make (Int)
module RSet = Set.Make (Int)
module SMap = Map.Make (String)

type operand =
  | Reg of reg
  | Cint of int
  | Cfloat of float
  | Cbool of bool
  | AGlob of string   (* handle of a global array *)
  | ALoc of string    (* handle of a local (frame) array *)

type arith = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type farith = FAdd | FSub | FMul | FDiv
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type instr =
  | Bin of arith * reg * operand * operand
  | Fbin of farith * reg * operand * operand
  | Icmp of cmp * reg * operand * operand
  | Fcmp of cmp * reg * operand * operand
  | Not of reg * operand                       (* boolean negation *)
  | Mov of reg * operand
  | I2f of reg * operand
  | F2i of reg * operand
  | Load of reg * operand * operand            (* dst <- arr[idx] *)
  | Store of operand * operand * operand       (* arr[idx] <- value *)
  | Alen of reg * operand                      (* dst <- len arr *)
  | Call of reg option * string * operand list
  | Print of operand

type term =
  | Jmp of label
  | Br of operand * label * label              (* cond, then, else *)
  | Ret of operand option

type block = { instrs : instr list; term : term }

type elt =
  | EltInt
  | EltFloat
  | EltInt32
      (* packed 4-byte unsigned element, produced by the array-packing
         optimization; stores are masked to 32 bits, loads zero-extend.
         Only global arrays whose stored values are provably in [0, 2^32)
         are narrowed, so packing is observation-equivalent. *)

type func = {
  name : string;
  params : reg list;
  nregs : int;                 (* registers 0..nregs-1 are in use *)
  entry : label;
  blocks : block LMap.t;
  nlabels : int;               (* labels 0..nlabels-1 may be in use *)
  locals : (string * elt * int) list;  (* local arrays: name, elt, size *)
}

type global = { gname : string; gelt : elt; gsize : int; ginit : float array }

type program = { globals : global list; funcs : func SMap.t; main : string }

(* ------------------------------------------------------------------ *)
(* Construction helpers *)

let block ?(instrs = []) term = { instrs; term }

let find_block f l =
  match LMap.find_opt l f.blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Ir.find_block: no block %d in %s" l f.name)

let set_block f l b = { f with blocks = LMap.add l b f.blocks }

let fresh_reg f = ({ f with nregs = f.nregs + 1 }, f.nregs)

let fresh_label f = ({ f with nlabels = f.nlabels + 1 }, f.nlabels)

let find_func p name =
  match SMap.find_opt name p.funcs with
  | Some f -> f
  | None -> invalid_arg ("Ir.find_func: no function " ^ name)

let update_func p f = { p with funcs = SMap.add f.name f p.funcs }

let map_funcs fn p = { p with funcs = SMap.map fn p.funcs }

(* ------------------------------------------------------------------ *)
(* Structural queries *)

let def_of = function
  | Bin (_, d, _, _) | Fbin (_, d, _, _) | Icmp (_, d, _, _)
  | Fcmp (_, d, _, _) | Not (d, _) | Mov (d, _) | I2f (d, _) | F2i (d, _)
  | Load (d, _, _) | Alen (d, _) ->
    Some d
  | Call (d, _, _) -> d
  | Store _ | Print _ -> None

let ops_of = function
  | Bin (_, _, a, b) | Fbin (_, _, a, b) | Icmp (_, _, a, b)
  | Fcmp (_, _, a, b) ->
    [ a; b ]
  | Not (_, a) | Mov (_, a) | I2f (_, a) | F2i (_, a) | Alen (_, a) -> [ a ]
  | Load (_, a, i) -> [ a; i ]
  | Store (a, i, v) -> [ a; i; v ]
  | Call (_, _, args) -> args
  | Print a -> [ a ]

let uses_of i =
  List.filter_map (function Reg r -> Some r | _ -> None) (ops_of i)

let term_uses = function
  | Jmp _ -> []
  | Br (Reg r, _, _) -> [ r ]
  | Br (_, _, _) -> []
  | Ret (Some (Reg r)) -> [ r ]
  | Ret _ -> []

let successors = function
  | Jmp l -> [ l ]
  | Br (_, t, e) -> if t = e then [ t ] else [ t; e ]
  | Ret _ -> []

(* Rebuild an instruction with operands mapped through [fo] and the defined
   register mapped through [fd]. *)
let map_instr ~fo ~fd = function
  | Bin (op, d, a, b) -> Bin (op, fd d, fo a, fo b)
  | Fbin (op, d, a, b) -> Fbin (op, fd d, fo a, fo b)
  | Icmp (op, d, a, b) -> Icmp (op, fd d, fo a, fo b)
  | Fcmp (op, d, a, b) -> Fcmp (op, fd d, fo a, fo b)
  | Not (d, a) -> Not (fd d, fo a)
  | Mov (d, a) -> Mov (fd d, fo a)
  | I2f (d, a) -> I2f (fd d, fo a)
  | F2i (d, a) -> F2i (fd d, fo a)
  | Load (d, a, i) -> Load (fd d, fo a, fo i)
  | Store (a, i, v) -> Store (fo a, fo i, fo v)
  | Alen (d, a) -> Alen (fd d, fo a)
  | Call (d, f, args) -> Call (Option.map fd d, f, List.map fo args)
  | Print a -> Print (fo a)

let map_term ~fo ~fl = function
  | Jmp l -> Jmp (fl l)
  | Br (c, t, e) -> Br (fo c, fl t, fl e)
  | Ret r -> Ret (Option.map fo r)

let has_side_effect = function
  | Call _ | Print _ | Store _ -> true
  (* Div/Rem can trap on zero; Load can trap on out-of-bounds.  They are
     side-effect free for reordering *within* straight-line code but must
     not be deleted if their value is used; DCE may delete them only when
     the result is dead AND the operation provably cannot trap.  We take
     the conservative stance: traps are observable, so Div/Rem/Load with a
     dead result are removable only when provably safe (see Passes.Dce). *)
  | _ -> false

let can_trap = function
  | Bin ((Div | Rem), _, _, Cint 0) -> true
  | Bin ((Div | Rem), _, _, (Cint _ | Cfloat _ | Cbool _)) -> false
  | Bin ((Div | Rem), _, _, _) -> true
  | Load _ | Store _ -> true   (* bounds *)
  | Call _ -> true
  | _ -> false

(* Number of static instructions, a proxy for code size (used by the
   code-size experiments, cf. Cooper et al.). *)
let func_size f =
  LMap.fold (fun _ b acc -> acc + List.length b.instrs + 1) f.blocks 0

let program_size p = SMap.fold (fun _ f acc -> acc + func_size f) p.funcs 0

let block_count f = LMap.cardinal f.blocks

(* ------------------------------------------------------------------ *)
(* Pretty printing *)

let pp_operand ppf = function
  | Reg r -> Fmt.pf ppf "r%d" r
  | Cint n -> Fmt.pf ppf "%d" n
  | Cfloat f -> Fmt.pf ppf "%h" f
  | Cbool b -> Fmt.pf ppf "%b" b
  | AGlob s -> Fmt.pf ppf "@%s" s
  | ALoc s -> Fmt.pf ppf "%%%s" s

let string_of_arith = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"

let string_of_farith = function
  | FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv"

let string_of_cmp = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let pp_instr ppf i =
  let op = pp_operand in
  match i with
  | Bin (o, d, a, b) ->
    Fmt.pf ppf "r%d = %s %a, %a" d (string_of_arith o) op a op b
  | Fbin (o, d, a, b) ->
    Fmt.pf ppf "r%d = %s %a, %a" d (string_of_farith o) op a op b
  | Icmp (o, d, a, b) ->
    Fmt.pf ppf "r%d = icmp.%s %a, %a" d (string_of_cmp o) op a op b
  | Fcmp (o, d, a, b) ->
    Fmt.pf ppf "r%d = fcmp.%s %a, %a" d (string_of_cmp o) op a op b
  | Not (d, a) -> Fmt.pf ppf "r%d = not %a" d op a
  | Mov (d, a) -> Fmt.pf ppf "r%d = mov %a" d op a
  | I2f (d, a) -> Fmt.pf ppf "r%d = i2f %a" d op a
  | F2i (d, a) -> Fmt.pf ppf "r%d = f2i %a" d op a
  | Load (d, a, ix) -> Fmt.pf ppf "r%d = load %a[%a]" d op a op ix
  | Store (a, ix, v) -> Fmt.pf ppf "store %a[%a] <- %a" op a op ix op v
  | Alen (d, a) -> Fmt.pf ppf "r%d = len %a" d op a
  | Call (None, f, args) ->
    Fmt.pf ppf "call %s(%a)" f Fmt.(list ~sep:(any ", ") op) args
  | Call (Some d, f, args) ->
    Fmt.pf ppf "r%d = call %s(%a)" d f Fmt.(list ~sep:(any ", ") op) args
  | Print a -> Fmt.pf ppf "print %a" op a

let pp_term ppf = function
  | Jmp l -> Fmt.pf ppf "jmp L%d" l
  | Br (c, t, e) -> Fmt.pf ppf "br %a, L%d, L%d" pp_operand c t e
  | Ret None -> Fmt.pf ppf "ret"
  | Ret (Some v) -> Fmt.pf ppf "ret %a" pp_operand v

let pp_func ppf f =
  Fmt.pf ppf "func %s(%a) entry=L%d@\n" f.name
    Fmt.(list ~sep:(any ", ") (fun ppf r -> Fmt.pf ppf "r%d" r))
    f.params f.entry;
  List.iter
    (fun (n, elt, sz) ->
      Fmt.pf ppf "  local %s: %s[%d]@\n" n
        (match elt with
         | EltInt -> "int"
         | EltInt32 -> "int32"
         | EltFloat -> "float")
        sz)
    f.locals;
  LMap.iter
    (fun l b ->
      Fmt.pf ppf "L%d:@\n" l;
      List.iter (fun i -> Fmt.pf ppf "  %a@\n" pp_instr i) b.instrs;
      Fmt.pf ppf "  %a@\n" pp_term b.term)
    f.blocks

let pp_program ppf p =
  List.iter
    (fun g ->
      Fmt.pf ppf "global %s[%d]@\n" g.gname g.gsize)
    p.globals;
  SMap.iter (fun _ f -> Fmt.pf ppf "%a@\n" pp_func f) p.funcs

let func_to_string f = Fmt.str "%a" pp_func f
let to_string p = Fmt.str "%a" pp_program p

(* ------------------------------------------------------------------ *)
(* Well-formedness check: every referenced label exists, entry exists,
   register indices are within bounds, local/global array references
   resolve.  Passes are required to preserve well-formedness; the test
   suite checks this after every pass on every workload. *)

type wf_error = string

let check_func (globals : global list) (f : func) : wf_error list =
  let errs = ref [] in
  let add fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  if not (LMap.mem f.entry f.blocks) then
    add "%s: entry L%d missing" f.name f.entry;
  let locals = List.map (fun (n, _, _) -> n) f.locals in
  let globs = List.map (fun g -> g.gname) globals in
  let check_op where = function
    | Reg r ->
      if r < 0 || r >= f.nregs then add "%s: %s: bad reg r%d" f.name where r
    | ALoc n ->
      if not (List.mem n locals) then
        add "%s: %s: unknown local array %s" f.name where n
    | AGlob n ->
      if not (List.mem n globs) then
        add "%s: %s: unknown global array %s" f.name where n
    | Cint _ | Cfloat _ | Cbool _ -> ()
  in
  LMap.iter
    (fun l b ->
      let where = Printf.sprintf "L%d" l in
      List.iter
        (fun i ->
          List.iter (check_op where) (ops_of i);
          match def_of i with
          | Some d when d < 0 || d >= f.nregs ->
            add "%s: %s: bad def r%d" f.name where d
          | _ -> ())
        b.instrs;
      (match b.term with
       | Br (c, _, _) -> check_op where c
       | Ret (Some v) -> check_op where v
       | _ -> ());
      List.iter
        (fun s ->
          if not (LMap.mem s f.blocks) then
            add "%s: %s: successor L%d missing" f.name where s)
        (successors b.term))
    f.blocks;
  List.rev !errs

let check_program (p : program) : wf_error list =
  let errs =
    SMap.fold (fun _ f acc -> check_func p.globals f @ acc) p.funcs []
  in
  let errs =
    if SMap.mem p.main p.funcs then errs
    else Printf.sprintf "main function %s missing" p.main :: errs
  in
  errs
