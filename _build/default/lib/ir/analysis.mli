(** Control-flow analyses over IR functions: predecessors/successors,
    reverse postorder, dominators (Cooper-Harvey-Kennedy), natural loops
    with nesting depth, and liveness. *)

module LMap = Ir.LMap
module LSet = Ir.LSet
module RSet = Ir.RSet

type cfg = {
  preds : Ir.label list LMap.t;
  succs : Ir.label list LMap.t;
  rpo : Ir.label array;      (** reachable blocks in reverse postorder *)
  rpo_index : int LMap.t;
  reachable : LSet.t;
}

val cfg_of : Ir.func -> cfg
val preds : cfg -> Ir.label -> Ir.label list
val succs : cfg -> Ir.label -> Ir.label list

type doms = {
  idom : int array;  (** by rpo index; the entry maps to itself *)
  cfg : cfg;
}

val dominators : cfg -> doms

(** does [a] dominate [b]?  Both must be reachable. *)
val dominates : doms -> Ir.label -> Ir.label -> bool

type loop = {
  header : Ir.label;
  body : LSet.t;            (** includes the header *)
  latches : Ir.label list;  (** sources of back edges into the header *)
  depth : int;              (** nesting depth, 1 = outermost *)
}

val natural_loops : Ir.func -> cfg * loop list

(** block label -> innermost loop depth (0 = not in any loop) *)
val loop_depths : Ir.func -> int LMap.t

type liveness = {
  live_in : RSet.t LMap.t;
  live_out : RSet.t LMap.t;
}

(** registers read before written in a block, and registers written *)
val block_use_def : Ir.block -> RSet.t * RSet.t

val liveness : Ir.func -> cfg -> liveness
