(* Recursive-descent parser for Mira with precedence climbing for
   expressions.  Grammar (informal):

     program  ::= (global | fn)*
     global   ::= "global" ident ":" elt "[" int "]" ("=" "{" lit,* "}")? ";"
     fn       ::= "fn" ident "(" params? ")" ("->" type)? block
     params   ::= ident ":" type ("," ident ":" type)*
     type     ::= "int" | "float" | "bool" | elt "[" "]"
     block    ::= "{" stmt* "}"
     stmt     ::= "var" ident ":" elt "[" int "]" ";"
                | "var" ident ":" type "=" expr ";"
                | ident "=" expr ";"
                | ident "[" expr "]" "=" expr ";"
                | "if" "(" expr ")" block ("else" (block | ifstmt))?
                | "while" "(" expr ")" block
                | "for" ident "=" expr "to" expr ("step" expr)? block
                | "return" expr? ";"
                | "print" "(" expr ")" ";"
                | expr ";"
*)

exception Error of string * Ast.pos

type t = {
  toks : (Lexer.token * Ast.pos) array;
  mutable i : int;
}

let make toks = { toks = Array.of_list toks; i = 0 }

let peek p = fst p.toks.(p.i)
let peek_pos p = snd p.toks.(p.i)
let peek2 p =
  if p.i + 1 < Array.length p.toks then fst p.toks.(p.i + 1) else Lexer.EOF

let advance p = if p.i < Array.length p.toks - 1 then p.i <- p.i + 1

let fail p msg =
  raise
    (Error
       ( Printf.sprintf "%s (found %s)" msg (Lexer.string_of_token (peek p)),
         peek_pos p ))

let expect p tok msg =
  if peek p = tok then advance p else fail p msg

let ident p =
  match peek p with
  | Lexer.IDENT s -> advance p; s
  | _ -> fail p "expected identifier"

let elt_ty p : Ast.elt =
  match peek p with
  | Lexer.TINT -> advance p; Ast.EltInt
  | Lexer.TFLOAT -> advance p; Ast.EltFloat
  | _ -> fail p "expected element type (int or float)"

let parse_type p : Ast.ty =
  match peek p with
  | Lexer.TBOOL -> advance p; Ast.TBool
  | Lexer.TINT | Lexer.TFLOAT ->
    let elt = elt_ty p in
    if peek p = Lexer.LBRACK then begin
      advance p;
      expect p Lexer.RBRACK "expected ] in array type";
      Ast.TArr elt
    end
    else (match elt with Ast.EltInt -> Ast.TInt | Ast.EltFloat -> Ast.TFloat)
  | _ -> fail p "expected type"

(* Binary operator precedence; higher binds tighter. *)
let prec : Lexer.token -> (Ast.binop * int) option = function
  | Lexer.OROR -> Some (Ast.LOr, 1)
  | Lexer.ANDAND -> Some (Ast.LAnd, 2)
  | Lexer.PIPE -> Some (Ast.BOr, 3)
  | Lexer.CARET -> Some (Ast.BXor, 4)
  | Lexer.AMP -> Some (Ast.BAnd, 5)
  | Lexer.EQEQ -> Some (Ast.Eq, 6)
  | Lexer.NE -> Some (Ast.Ne, 6)
  | Lexer.LT -> Some (Ast.Lt, 7)
  | Lexer.LE -> Some (Ast.Le, 7)
  | Lexer.GT -> Some (Ast.Gt, 7)
  | Lexer.GE -> Some (Ast.Ge, 7)
  | Lexer.SHL -> Some (Ast.Shl, 8)
  | Lexer.SHR -> Some (Ast.Shr, 8)
  | Lexer.PLUS -> Some (Ast.Add, 9)
  | Lexer.MINUS -> Some (Ast.Sub, 9)
  | Lexer.STAR -> Some (Ast.Mul, 10)
  | Lexer.SLASH -> Some (Ast.Div, 10)
  | Lexer.PERCENT -> Some (Ast.Rem, 10)
  | _ -> None

let rec parse_expr p = parse_bin p 0

and parse_bin p min_prec =
  let lhs = parse_unary p in
  let rec loop lhs =
    match prec (peek p) with
    | Some (op, pr) when pr >= min_prec ->
      let pos = peek_pos p in
      advance p;
      let rhs = parse_bin p (pr + 1) in
      loop (Ast.mk_e ~pos (Ast.Bin (op, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and parse_unary p =
  let pos = peek_pos p in
  match peek p with
  | Lexer.MINUS ->
    advance p;
    let x = parse_unary p in
    Ast.mk_e ~pos (Ast.Un (Ast.Neg, x))
  | Lexer.BANG ->
    advance p;
    let x = parse_unary p in
    Ast.mk_e ~pos (Ast.Un (Ast.Not, x))
  | Lexer.TILDE ->
    advance p;
    let x = parse_unary p in
    Ast.mk_e ~pos (Ast.Un (Ast.BNot, x))
  | _ -> parse_atom p

and parse_atom p =
  let pos = peek_pos p in
  match peek p with
  | Lexer.INT n -> advance p; Ast.mk_e ~pos (Ast.Int n)
  | Lexer.FLOAT f -> advance p; Ast.mk_e ~pos (Ast.Float f)
  | Lexer.KTRUE -> advance p; Ast.mk_e ~pos (Ast.Bool true)
  | Lexer.KFALSE -> advance p; Ast.mk_e ~pos (Ast.Bool false)
  | Lexer.LPAREN ->
    advance p;
    let e = parse_expr p in
    expect p Lexer.RPAREN "expected )";
    e
  | Lexer.KLEN ->
    advance p;
    expect p Lexer.LPAREN "expected ( after len";
    let a = ident p in
    expect p Lexer.RPAREN "expected ) after len";
    Ast.mk_e ~pos (Ast.Len a)
  | Lexer.TFLOAT ->
    (* float(e): int -> float cast *)
    advance p;
    expect p Lexer.LPAREN "expected ( after float";
    let e = parse_expr p in
    expect p Lexer.RPAREN "expected )";
    Ast.mk_e ~pos (Ast.Un (Ast.FloatOfInt, e))
  | Lexer.TINT ->
    advance p;
    expect p Lexer.LPAREN "expected ( after int";
    let e = parse_expr p in
    expect p Lexer.RPAREN "expected )";
    Ast.mk_e ~pos (Ast.Un (Ast.IntOfFloat, e))
  | Lexer.IDENT name -> begin
    advance p;
    match peek p with
    | Lexer.LBRACK ->
      advance p;
      let i = parse_expr p in
      expect p Lexer.RBRACK "expected ]";
      Ast.mk_e ~pos (Ast.Index (name, i))
    | Lexer.LPAREN ->
      advance p;
      let args = parse_args p in
      Ast.mk_e ~pos (Ast.Call (name, args))
    | _ -> Ast.mk_e ~pos (Ast.Var name)
  end
  | _ -> fail p "expected expression"

and parse_args p =
  if peek p = Lexer.RPAREN then begin advance p; [] end
  else begin
    let rec loop acc =
      let e = parse_expr p in
      match peek p with
      | Lexer.COMMA -> advance p; loop (e :: acc)
      | Lexer.RPAREN -> advance p; List.rev (e :: acc)
      | _ -> fail p "expected , or ) in argument list"
    in
    loop []
  end

let rec parse_stmt p : Ast.stmt =
  let pos = peek_pos p in
  match peek p with
  | Lexer.KVAR -> begin
    advance p;
    let name = ident p in
    expect p Lexer.COLON "expected : in var declaration";
    match peek p with
    | Lexer.TBOOL ->
      advance p;
      expect p Lexer.ASSIGN "expected = in var declaration";
      let e = parse_expr p in
      expect p Lexer.SEMI "expected ;";
      Ast.mk_s ~pos (Ast.SDecl (name, Ast.TBool, e))
    | Lexer.TINT | Lexer.TFLOAT ->
      let elt = elt_ty p in
      if peek p = Lexer.LBRACK then begin
        advance p;
        let n =
          match peek p with
          | Lexer.INT n -> advance p; n
          | _ -> fail p "expected array size"
        in
        expect p Lexer.RBRACK "expected ]";
        expect p Lexer.SEMI "expected ;";
        Ast.mk_s ~pos (Ast.SArrDecl (name, elt, n))
      end
      else begin
        expect p Lexer.ASSIGN "expected = in var declaration";
        let e = parse_expr p in
        expect p Lexer.SEMI "expected ;";
        let ty =
          match elt with Ast.EltInt -> Ast.TInt | Ast.EltFloat -> Ast.TFloat
        in
        Ast.mk_s ~pos (Ast.SDecl (name, ty, e))
      end
    | _ -> fail p "expected type in var declaration"
  end
  | Lexer.KIF ->
    advance p;
    expect p Lexer.LPAREN "expected ( after if";
    let c = parse_expr p in
    expect p Lexer.RPAREN "expected )";
    let t = parse_block p in
    let e =
      if peek p = Lexer.KELSE then begin
        advance p;
        if peek p = Lexer.KIF then [ parse_stmt p ] else parse_block p
      end
      else []
    in
    Ast.mk_s ~pos (Ast.SIf (c, t, e))
  | Lexer.KWHILE ->
    advance p;
    expect p Lexer.LPAREN "expected ( after while";
    let c = parse_expr p in
    expect p Lexer.RPAREN "expected )";
    let b = parse_block p in
    Ast.mk_s ~pos (Ast.SWhile (c, b))
  | Lexer.KFOR ->
    advance p;
    let v = ident p in
    expect p Lexer.ASSIGN "expected = in for";
    let lo = parse_expr p in
    expect p Lexer.KTO "expected 'to' in for";
    let hi = parse_expr p in
    let step =
      if peek p = Lexer.KSTEP then begin
        advance p;
        parse_expr p
      end
      else Ast.mk_e ~pos (Ast.Int 1)
    in
    let b = parse_block p in
    Ast.mk_s ~pos (Ast.SFor (v, lo, hi, step, b))
  | Lexer.KRETURN ->
    advance p;
    if peek p = Lexer.SEMI then begin
      advance p;
      Ast.mk_s ~pos (Ast.SReturn None)
    end
    else begin
      let e = parse_expr p in
      expect p Lexer.SEMI "expected ;";
      Ast.mk_s ~pos (Ast.SReturn (Some e))
    end
  | Lexer.KPRINT ->
    advance p;
    expect p Lexer.LPAREN "expected ( after print";
    let e = parse_expr p in
    expect p Lexer.RPAREN "expected )";
    expect p Lexer.SEMI "expected ;";
    Ast.mk_s ~pos (Ast.SPrint e)
  | Lexer.IDENT name when peek2 p = Lexer.ASSIGN ->
    advance p; advance p;
    let e = parse_expr p in
    expect p Lexer.SEMI "expected ;";
    Ast.mk_s ~pos (Ast.SAssign (name, e))
  | Lexer.IDENT name when peek2 p = Lexer.LBRACK ->
    (* could be a store `a[i] = e;` or an expression statement `a[i];` —
       parse the index then decide *)
    advance p; advance p;
    let i = parse_expr p in
    expect p Lexer.RBRACK "expected ]";
    if peek p = Lexer.ASSIGN then begin
      advance p;
      let e = parse_expr p in
      expect p Lexer.SEMI "expected ;";
      Ast.mk_s ~pos (Ast.SStore (name, i, e))
    end
    else begin
      expect p Lexer.SEMI "expected ;";
      Ast.mk_s ~pos (Ast.SExpr (Ast.mk_e ~pos (Ast.Index (name, i))))
    end
  | _ ->
    let e = parse_expr p in
    expect p Lexer.SEMI "expected ;";
    Ast.mk_s ~pos (Ast.SExpr e)

and parse_block p =
  expect p Lexer.LBRACE "expected {";
  let rec loop acc =
    if peek p = Lexer.RBRACE then begin
      advance p;
      List.rev acc
    end
    else loop (parse_stmt p :: acc)
  in
  loop []

let parse_params p =
  expect p Lexer.LPAREN "expected ( in function definition";
  if peek p = Lexer.RPAREN then begin advance p; [] end
  else begin
    let one () =
      let n = ident p in
      expect p Lexer.COLON "expected : in parameter";
      let ty = parse_type p in
      (n, ty)
    in
    let rec loop acc =
      let prm = one () in
      match peek p with
      | Lexer.COMMA -> advance p; loop (prm :: acc)
      | Lexer.RPAREN -> advance p; List.rev (prm :: acc)
      | _ -> fail p "expected , or ) in parameter list"
    in
    loop []
  end

let parse_fn p : Ast.func =
  let pos = peek_pos p in
  expect p Lexer.KFN "expected fn";
  let name = ident p in
  let params = parse_params p in
  let ret =
    if peek p = Lexer.ARROW then begin
      advance p;
      Some (parse_type p)
    end
    else None
  in
  let body = parse_block p in
  { Ast.fname = name; params; ret; body; fpos = pos }

let parse_global p : Ast.global =
  expect p Lexer.KGLOBAL "expected global";
  let name = ident p in
  expect p Lexer.COLON "expected : in global";
  let elt = elt_ty p in
  expect p Lexer.LBRACK "expected [ in global";
  let size =
    match peek p with
    | Lexer.INT n -> advance p; n
    | _ -> fail p "expected array size"
  in
  expect p Lexer.RBRACK "expected ]";
  let init =
    if peek p = Lexer.ASSIGN then begin
      advance p;
      expect p Lexer.LBRACE "expected { in global initializer";
      let lit () =
        let neg = peek p = Lexer.MINUS in
        if neg then advance p;
        match peek p with
        | Lexer.INT n ->
          advance p;
          float_of_int (if neg then -n else n)
        | Lexer.FLOAT f -> advance p; (if neg then -.f else f)
        | _ -> fail p "expected literal in global initializer"
      in
      if peek p = Lexer.RBRACE then begin advance p; [] end
      else begin
        let rec loop acc =
          let v = lit () in
          match peek p with
          | Lexer.COMMA -> advance p; loop (v :: acc)
          | Lexer.RBRACE -> advance p; List.rev (v :: acc)
          | _ -> fail p "expected , or } in global initializer"
        in
        loop []
      end
    end
    else []
  in
  expect p Lexer.SEMI "expected ;";
  { Ast.gname = name; gelt = elt; gsize = size; ginit = init }

let parse_program_tokens toks : Ast.program =
  let p = make toks in
  let rec loop globals funcs =
    match peek p with
    | Lexer.EOF -> { Ast.globals = List.rev globals; funcs = List.rev funcs }
    | Lexer.KGLOBAL -> loop (parse_global p :: globals) funcs
    | Lexer.KFN -> loop globals (parse_fn p :: funcs)
    | _ -> fail p "expected fn or global at top level"
  in
  loop [] []

(* Parse a full program from source text.  Lexer errors are re-raised as
   parser errors so callers have a single exception to handle. *)
let parse (src : string) : Ast.program =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error (msg, pos) -> raise (Error (msg, pos))
  in
  parse_program_tokens toks

let parse_result src =
  match parse src with
  | p -> Ok p
  | exception Error (msg, pos) ->
    Error (Printf.sprintf "parse error at %d:%d: %s" pos.line pos.col msg)
