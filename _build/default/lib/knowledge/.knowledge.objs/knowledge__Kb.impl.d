lib/knowledge/kb.ml: Buffer Fun List Passes Printf String
