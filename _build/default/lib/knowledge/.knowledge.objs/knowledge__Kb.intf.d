lib/knowledge/kb.mli: Passes
