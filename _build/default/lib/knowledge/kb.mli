(** The knowledge base (paper Sec. III-E): a standardized store for program
    characterizations and optimization experiments, with a documented
    line-oriented text format that round-trips exactly.

    Format:
    {v
    mira-kb 1
    char|<prog>|<arch>|<o0_cycles>|f:name=v,...|c:name=v,...
    exp|<prog>|<arch>|<pass,pass,...>|<cycles>|<code_size>
    v}
    Floats are printed with [%h] so values survive save/load bit-exactly. *)

type characterization = {
  prog : string;
  arch : string;
  o0_cycles : int;
  features : (string * float) list;  (** static code features *)
  counters : (string * float) list;  (** per-instruction counter rates *)
}

type experiment = {
  eprog : string;
  earch : string;
  seq : Passes.Pass.t list;
  cycles : int;
  code_size : int;
}

type t = {
  mutable chars : characterization list;
  mutable exps : experiment list;
}

val create : unit -> t

(** add/replace the characterization for its (prog, arch) *)
val add_characterization : t -> characterization -> unit

val add_experiment : t -> experiment -> unit
val characterization : t -> prog:string -> arch:string -> characterization option
val experiments : t -> prog:string -> arch:string -> experiment list

(** distinct characterized program names, sorted *)
val programs : t -> string list

(** number of stored experiments *)
val size : t -> int

(** lowest-cycle experiment for a program *)
val best : t -> prog:string -> arch:string -> experiment option

(** experiments within [within] (e.g. [1.05] = 5%) of the program's best *)
val good_experiments :
  t -> prog:string -> arch:string -> within:float -> experiment list

(** the [k] best experiments, optionally restricted to sequences of a
    given length (so long fixed pipelines do not crowd out the searchable
    space) *)
val top_experiments :
  t -> prog:string -> arch:string -> k:int -> ?length:int -> unit ->
  experiment list

(** a copy with one program's records removed: the leave-one-out protocol *)
val without_program : t -> prog:string -> t

exception Parse_error of string

val to_string : t -> string

(** @raise Parse_error on malformed input *)
val of_string : string -> t

val save : t -> string -> unit

(** @raise Parse_error on malformed input, [Sys_error] on IO failure *)
val load : string -> t
