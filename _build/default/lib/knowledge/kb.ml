(* The knowledge base (paper Sec. III-E): a standardized store for
   characterizations (static feature vectors + dynamic performance-counter
   vectors per program/architecture) and optimization experiments
   (program, architecture, optimization sequence, measured cycles and code
   size).  The paper argues for a documented standard format so tools can
   interoperate; ours is the line-oriented text format described below.

   File format (version header, then one record per line, '|' separated,
   ',' separated key=value pairs inside fields):

     mira-kb 1
     char|<prog>|<arch>|<o0_cycles>|f:name=v,...|c:name=v,...
     exp|<prog>|<arch>|<pass,pass,...>|<cycles>|<code_size>

   Values are printed with %h (hex floats) so save/load round-trips
   exactly. *)

type characterization = {
  prog : string;
  arch : string;
  o0_cycles : int;
  features : (string * float) list;   (* static code features *)
  counters : (string * float) list;   (* per-instruction normalized *)
}

type experiment = {
  eprog : string;
  earch : string;
  seq : Passes.Pass.t list;
  cycles : int;
  code_size : int;
}

type t = {
  mutable chars : characterization list;
  mutable exps : experiment list;
}

let create () = { chars = []; exps = [] }

let add_characterization t c =
  (* newest wins for the same (prog, arch) *)
  t.chars <-
    c :: List.filter (fun c' -> not (c'.prog = c.prog && c'.arch = c.arch)) t.chars

let add_experiment t e = t.exps <- e :: t.exps

let characterization t ~prog ~arch =
  List.find_opt (fun c -> c.prog = prog && c.arch = arch) t.chars

let experiments t ~prog ~arch =
  List.filter (fun e -> e.eprog = prog && e.earch = arch) t.exps

let programs t =
  List.sort_uniq compare (List.map (fun c -> c.prog) t.chars)

let size t = List.length t.exps

(* best (lowest-cycles) experiment for a program/arch *)
let best t ~prog ~arch : experiment option =
  match experiments t ~prog ~arch with
  | [] -> None
  | es ->
    Some
      (List.fold_left
         (fun acc e -> if e.cycles < acc.cycles then e else acc)
         (List.hd es) es)

(* experiments within [within] (e.g. 1.05 = 5%) of the best for a program *)
let good_experiments t ~prog ~arch ~within : experiment list =
  match best t ~prog ~arch with
  | None -> []
  | Some b ->
    List.filter
      (fun e ->
        float_of_int e.cycles
        <= within *. float_of_int b.cycles)
      (experiments t ~prog ~arch)

(* the [k] best experiments for a program, optionally restricted to
   sequences of a given length (so fixed long pipelines in the KB do not
   crowd out the searchable space) *)
let top_experiments t ~prog ~arch ~k ?length () : experiment list =
  let es = experiments t ~prog ~arch in
  let es =
    match length with
    | Some l -> List.filter (fun e -> List.length e.seq = l) es
    | None -> es
  in
  es
  |> List.sort (fun a b -> compare a.cycles b.cycles)
  |> List.filteri (fun i _ -> i < k)

(* a knowledge base with one program held out: the leave-one-out protocol *)
let without_program t ~prog : t =
  {
    chars = List.filter (fun c -> c.prog <> prog) t.chars;
    exps = List.filter (fun e -> e.eprog <> prog) t.exps;
  }

(* ------------------------------------------------------------------ *)
(* serialization *)

exception Parse_error of string

let esc (s : string) =
  if String.contains s '|' || String.contains s '\n' || String.contains s ','
  then raise (Parse_error ("illegal character in name: " ^ s))
  else s

let kvs_to_string kvs =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=%h" (esc k) v) kvs)

let kvs_of_string s =
  if String.trim s = "" then []
  else
    List.map
      (fun part ->
        match String.index_opt part '=' with
        | Some i ->
          let k = String.sub part 0 i in
          let v = String.sub part (i + 1) (String.length part - i - 1) in
          (match float_of_string_opt v with
           | Some f -> (k, f)
           | None -> raise (Parse_error ("bad float: " ^ v)))
        | None -> raise (Parse_error ("bad key=value: " ^ part)))
      (String.split_on_char ',' s)

let char_to_line c =
  Printf.sprintf "char|%s|%s|%d|f:%s|c:%s" (esc c.prog) (esc c.arch)
    c.o0_cycles
    (kvs_to_string c.features)
    (kvs_to_string c.counters)

let exp_to_line e =
  Printf.sprintf "exp|%s|%s|%s|%d|%d" (esc e.eprog) (esc e.earch)
    (Passes.Pass.sequence_to_string e.seq)
    e.cycles e.code_size

let strip_prefix ~prefix s =
  if String.length s >= String.length prefix
     && String.sub s 0 (String.length prefix) = prefix
  then String.sub s (String.length prefix) (String.length s - String.length prefix)
  else raise (Parse_error ("expected prefix " ^ prefix ^ " in: " ^ s))

let line_of_string (line : string) : [ `Char of characterization | `Exp of experiment | `Skip ] =
  if String.trim line = "" then `Skip
  else
    match String.split_on_char '|' line with
    | [ "char"; prog; arch; cyc; f; c ] ->
      let o0_cycles =
        match int_of_string_opt cyc with
        | Some n -> n
        | None -> raise (Parse_error ("bad cycles: " ^ cyc))
      in
      `Char
        {
          prog;
          arch;
          o0_cycles;
          features = kvs_of_string (strip_prefix ~prefix:"f:" f);
          counters = kvs_of_string (strip_prefix ~prefix:"c:" c);
        }
    | [ "exp"; prog; arch; seq; cyc; sz ] ->
      let seq =
        match Passes.Pass.sequence_of_string seq with
        | Ok s -> s
        | Error e -> raise (Parse_error e)
      in
      let int_of s =
        match int_of_string_opt s with
        | Some n -> n
        | None -> raise (Parse_error ("bad int: " ^ s))
      in
      `Exp { eprog = prog; earch = arch; seq; cycles = int_of cyc; code_size = int_of sz }
    | _ -> raise (Parse_error ("unrecognized line: " ^ line))

let magic = "mira-kb 1"

let to_string (t : t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun c ->
      Buffer.add_string buf (char_to_line c);
      Buffer.add_char buf '\n')
    (List.rev t.chars);
  List.iter
    (fun e ->
      Buffer.add_string buf (exp_to_line e);
      Buffer.add_char buf '\n')
    (List.rev t.exps);
  Buffer.contents buf

let of_string (s : string) : t =
  match String.split_on_char '\n' s with
  | [] -> raise (Parse_error "empty knowledge base")
  | header :: rest ->
    if String.trim header <> magic then
      raise (Parse_error ("bad header: " ^ header));
    let t = create () in
    (* lists are stored newest-first and written via List.rev, so loading
       must prepend to preserve file order across round trips *)
    List.iter
      (fun line ->
        match line_of_string line with
        | `Char c -> t.chars <- c :: t.chars
        | `Exp e -> t.exps <- e :: t.exps
        | `Skip -> ())
      rest;
    t

let save (t : t) (path : string) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load (path : string) : t =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      of_string s)
