(** Feature usefulness ranking by mutual information between a discretized
    feature and the class label — the "standard statistical techniques,
    such as mutual information" of the paper's Sec. III-E. *)

val default_bins : int

(** equal-width discretization; constant columns map to bucket 0 *)
val discretize : ?bins:int -> float array -> int array

(** I(X;Y) in bits.  @raise Invalid_argument on mismatched lengths. *)
val mutual_information : ?bins:int -> float array -> int array -> float

(** features ranked by MI with the label, most informative first *)
val rank : Dataset.t -> (int * float) list

(** dataset restricted to the [k] most informative features, plus the
    kept column indices (ascending) *)
val select_top : Dataset.t -> k:int -> Dataset.t * int list
