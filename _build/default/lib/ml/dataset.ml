(* Supervised-learning datasets: rows of float features with integer class
   labels (classification) or float targets (regression), plus the split
   utilities the methodology section of the paper calls for
   (leave-one-out and k-fold cross-validation). *)

type t = {
  xs : float array array;
  ys : int array;
  feature_names : string array;   (* may be empty *)
  nclasses : int;
}

let make ?(feature_names = [||]) xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Dataset.make: xs/ys length mismatch";
  if n > 0 then begin
    let d = Array.length xs.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> d then
          invalid_arg "Dataset.make: ragged feature rows")
      xs;
    if feature_names <> [||] && Array.length feature_names <> d then
      invalid_arg "Dataset.make: feature_names length mismatch"
  end;
  Array.iter
    (fun y -> if y < 0 then invalid_arg "Dataset.make: negative label")
    ys;
  let nclasses = Array.fold_left (fun acc y -> max acc (y + 1)) 0 ys in
  { xs; ys; feature_names; nclasses }

let size d = Array.length d.xs
let dim d = if size d = 0 then 0 else Array.length d.xs.(0)

let subset d (idxs : int list) =
  let xs = Array.of_list (List.map (fun i -> d.xs.(i)) idxs) in
  let ys = Array.of_list (List.map (fun i -> d.ys.(i)) idxs) in
  { d with xs; ys }

(* leave index [i] out: (train, test-point) *)
let leave_one_out d i =
  let n = size d in
  if i < 0 || i >= n then invalid_arg "Dataset.leave_one_out: bad index";
  let keep = List.filter (fun j -> j <> i) (List.init n Fun.id) in
  (subset d keep, d.xs.(i), d.ys.(i))

(* deterministic shuffled k folds *)
let kfolds ?(seed = 42) d k =
  let n = size d in
  if k < 2 || k > n then invalid_arg "Dataset.kfolds: bad k";
  let rng = Random.State.make [| seed |] in
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  List.init k (fun fold ->
      let test = ref [] and train = ref [] in
      Array.iteri
        (fun pos idx ->
          if pos mod k = fold then test := idx :: !test
          else train := idx :: !train)
        perm;
      (subset d (List.rev !train), subset d (List.rev !test)))

(* class frequency distribution *)
let class_counts d =
  let counts = Array.make (max 1 d.nclasses) 0 in
  Array.iter (fun y -> counts.(y) <- counts.(y) + 1) d.ys;
  counts

let majority_class d =
  let counts = class_counts d in
  let best = ref 0 in
  Array.iteri (fun i c -> if c > counts.(!best) then best := i) counts;
  !best
