(** Model evaluation: accuracy, confusion matrices, and the
    cross-validation protocols the paper's methodology recommends.
    Generic over a trainer function so every classifier plugs in. *)

type classifier = float array -> int
type trainer = Dataset.t -> classifier

(** @raise Invalid_argument on an empty dataset *)
val accuracy : classifier -> Dataset.t -> float

(** [confusion predict d] is indexed [true_class][predicted_class] *)
val confusion : classifier -> Dataset.t -> int array array

(** leave-one-out cross-validated accuracy (paper Sec. II-A).
    @raise Invalid_argument with fewer than two points *)
val loocv : trainer -> Dataset.t -> float

(** mean accuracy over [k] shuffled folds *)
val kfold_cv : ?seed:int -> trainer -> Dataset.t -> k:int -> float

val pp_confusion : Format.formatter -> int array array -> unit
