(** Small dense linear-algebra helpers over plain [float array]s. *)

(** dot product.  @raise Invalid_argument on dimension mismatch. *)
val dot : float array -> float array -> float

val norm2 : float array -> float
val sub : float array -> float array -> float array
val add : float array -> float array -> float array
val scale : float -> float array -> float array

(** Euclidean distance.  @raise Invalid_argument on dimension mismatch. *)
val euclidean : float array -> float array -> float

val mean : float array -> float

(** population variance *)
val variance : float array -> float

val std : float array -> float

(** column [j] of a row-major matrix *)
val column : float array array -> int -> float array

(** Solve [A x = b] by Gaussian elimination with partial pivoting.
    [A] is destroyed.
    @raise Failure on a (near-)singular system
    @raise Invalid_argument on bad shapes *)
val solve : float array array -> float array -> float array

(** index of the maximum element.  @raise Invalid_argument on empty. *)
val argmax : float array -> int

val argmin : float array -> int
