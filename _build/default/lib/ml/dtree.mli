(** CART-style decision-tree classifier: binary threshold splits, Gini or
    entropy impurity, pre-pruning by depth and leaf size.  Ties between
    equal-gain splits break towards the most balanced split, which lets
    XOR-like targets (zero single-split gain) still be separated. *)

type impurity = Gini | Entropy

type node =
  | Leaf of int * float array           (** class, class distribution *)
  | Split of int * float * node * node  (** feature, threshold, <=, > *)

type t = { root : node; nclasses : int }

type params = {
  max_depth : int;
  min_leaf : int;
  impurity : impurity;
}

val default_params : params

(** @raise Invalid_argument on an empty dataset *)
val fit : ?params:params -> Dataset.t -> t

val predict : t -> float array -> int
val predict_proba : t -> float array -> float array
val depth_of : node -> int
val size_of : node -> int

(** readable nested if-then rendering — the paper's "integration of the
    induced heuristic" as code *)
val to_string : ?feature_names:string array -> t -> string
