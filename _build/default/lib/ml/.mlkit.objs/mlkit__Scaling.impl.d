lib/ml/scaling.ml: Array Linalg
