lib/ml/kmeans.mli:
