lib/ml/linalg.mli:
