lib/ml/feature_select.mli: Dataset
