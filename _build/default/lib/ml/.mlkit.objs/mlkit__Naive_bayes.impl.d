lib/ml/naive_bayes.ml: Array Dataset Float Linalg List
