lib/ml/feature_select.ml: Array Dataset Linalg List
