lib/ml/dtree.mli: Dataset
