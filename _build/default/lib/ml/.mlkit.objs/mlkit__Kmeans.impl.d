lib/ml/kmeans.ml: Array Linalg List Random
