lib/ml/eval.mli: Dataset Format
