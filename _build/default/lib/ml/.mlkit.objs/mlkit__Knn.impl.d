lib/ml/knn.ml: Array Dataset Linalg List
