lib/ml/scaling.mli:
