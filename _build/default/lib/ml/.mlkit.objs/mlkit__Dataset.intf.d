lib/ml/dataset.mli:
