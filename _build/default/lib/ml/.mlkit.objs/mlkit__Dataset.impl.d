lib/ml/dataset.ml: Array Fun List Random
