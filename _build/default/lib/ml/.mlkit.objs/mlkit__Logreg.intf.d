lib/ml/logreg.mli: Dataset
