lib/ml/linreg.mli:
