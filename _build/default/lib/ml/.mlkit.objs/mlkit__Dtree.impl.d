lib/ml/dtree.ml: Array Buffer Dataset Float Linalg List Printf String
