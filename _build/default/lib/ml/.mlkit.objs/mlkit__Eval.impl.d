lib/ml/eval.ml: Array Dataset Fmt List
