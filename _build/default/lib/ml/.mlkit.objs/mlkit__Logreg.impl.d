lib/ml/logreg.ml: Array Dataset Fun Linalg Random
