(* Ridge regression via the normal equations (X'X + λI) w = X'y, solved by
   Gaussian elimination.  Used for cycle-count regression models. *)

type t = { w : float array; b : float }

let fit ?(l2 = 1e-6) (xs : float array array) (ys : float array) : t =
  let n = Array.length xs in
  if n = 0 || n <> Array.length ys then invalid_arg "Linreg.fit: bad data";
  let d = Array.length xs.(0) in
  (* augment with a bias column *)
  let da = d + 1 in
  let xtx = Array.make_matrix da da 0.0 in
  let xty = Array.make da 0.0 in
  Array.iteri
    (fun i x ->
      let xa = Array.append x [| 1.0 |] in
      for r = 0 to da - 1 do
        for c = 0 to da - 1 do
          xtx.(r).(c) <- xtx.(r).(c) +. (xa.(r) *. xa.(c))
        done;
        xty.(r) <- xty.(r) +. (xa.(r) *. ys.(i))
      done)
    xs;
  for r = 0 to da - 2 do
    xtx.(r).(r) <- xtx.(r).(r) +. l2   (* do not regularize the bias *)
  done;
  let sol = Linalg.solve xtx xty in
  { w = Array.sub sol 0 d; b = sol.(d) }

let predict (t : t) (x : float array) : float = Linalg.dot t.w x +. t.b

(* coefficient of determination on a dataset *)
let r2 (t : t) (xs : float array array) (ys : float array) : float =
  let preds = Array.map (predict t) xs in
  let mean_y = Linalg.mean ys in
  let ss_res =
    Array.fold_left ( +. ) 0.0
      (Array.mapi (fun i y -> (y -. preds.(i)) ** 2.0) ys)
  in
  let ss_tot =
    Array.fold_left ( +. ) 0.0 (Array.map (fun y -> (y -. mean_y) ** 2.0) ys)
  in
  if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot)
