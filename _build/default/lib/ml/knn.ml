(* k-nearest-neighbour classification and regression with optional inverse
   distance weighting — the "correlate the new program with previous
   knowledge" workhorse of the intelligent compiler (nearest programs in
   feature space contribute their known-good optimizations). *)

type t = {
  xs : float array array;
  ys : int array;
  k : int;
  weighted : bool;
  nclasses : int;
}

let fit ?(k = 3) ?(weighted = false) (d : Dataset.t) : t =
  if Dataset.size d = 0 then invalid_arg "Knn.fit: empty dataset";
  if k <= 0 then invalid_arg "Knn.fit: k must be positive";
  { xs = d.Dataset.xs; ys = d.Dataset.ys; k; weighted; nclasses = d.Dataset.nclasses }

(* indices of the k nearest training points, nearest first; ties broken by
   index so results are deterministic *)
let neighbors (t : t) (x : float array) : (int * float) list =
  let dists =
    Array.mapi (fun i xi -> (i, Linalg.euclidean x xi)) t.xs
  in
  Array.sort
    (fun (i1, d1) (i2, d2) ->
      match compare d1 d2 with 0 -> compare i1 i2 | c -> c)
    dists;
  Array.to_list (Array.sub dists 0 (min t.k (Array.length dists)))

let class_scores (t : t) (x : float array) : float array =
  let votes = Array.make (max 1 t.nclasses) 0.0 in
  List.iter
    (fun (i, d) ->
      let w = if t.weighted then 1.0 /. (d +. 1e-9) else 1.0 in
      let y = t.ys.(i) in
      votes.(y) <- votes.(y) +. w)
    (neighbors t x);
  votes

let predict (t : t) (x : float array) : int =
  Linalg.argmax (class_scores t x)

(* probability-like normalized vote shares *)
let predict_proba (t : t) (x : float array) : float array =
  let votes = class_scores t x in
  let total = Array.fold_left ( +. ) 0.0 votes in
  if total <= 0.0 then votes else Array.map (fun v -> v /. total) votes

(* regression over float targets with the same neighbourhood logic *)
type regressor = {
  rxs : float array array;
  rys : float array;
  rk : int;
  rweighted : bool;
}

let fit_regressor ?(k = 3) ?(weighted = true) xs ys : regressor =
  if Array.length xs = 0 || Array.length xs <> Array.length ys then
    invalid_arg "Knn.fit_regressor: bad data";
  { rxs = xs; rys = ys; rk = k; rweighted = weighted }

let predict_value (r : regressor) (x : float array) : float =
  let dists = Array.mapi (fun i xi -> (i, Linalg.euclidean x xi)) r.rxs in
  Array.sort
    (fun (i1, d1) (i2, d2) ->
      match compare d1 d2 with 0 -> compare i1 i2 | c -> c)
    dists;
  let k = min r.rk (Array.length dists) in
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to k - 1 do
    let idx, d = dists.(i) in
    let w = if r.rweighted then 1.0 /. (d +. 1e-9) else 1.0 in
    num := !num +. (w *. r.rys.(idx));
    den := !den +. w
  done;
  !num /. !den
