(** Gaussian naive Bayes: per-class per-feature normal densities with
    Laplace-smoothed priors and a variance floor. *)

type t = {
  priors : float array;        (** log priors *)
  means : float array array;   (** class x feature *)
  vars : float array array;
  nclasses : int;
}

val var_floor : float

(** @raise Invalid_argument on an empty dataset *)
val fit : Dataset.t -> t

val log_likelihood : t -> int -> float array -> float
val scores : t -> float array -> float array
val predict : t -> float array -> int

(** softmax-normalized class probabilities (sums to 1) *)
val predict_proba : t -> float array -> float array
