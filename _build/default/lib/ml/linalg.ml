(* Small dense linear-algebra helpers over float arrays.  Everything is
   plain [float array] / [float array array] so callers can build vectors
   without wrapper types. *)

let dot (a : float array) (b : float array) : float =
  if Array.length a <> Array.length b then
    invalid_arg "Linalg.dot: dimension mismatch";
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let norm2 a = sqrt (dot a a)

let sub a b =
  if Array.length a <> Array.length b then
    invalid_arg "Linalg.sub: dimension mismatch";
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let add a b =
  if Array.length a <> Array.length b then
    invalid_arg "Linalg.add: dimension mismatch";
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let scale k a = Array.map (fun x -> k *. x) a

let euclidean a b =
  if Array.length a <> Array.length b then
    invalid_arg "Linalg.euclidean: dimension mismatch";
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    s := !s +. (d *. d)
  done;
  sqrt !s

let mean (xs : float array) : float =
  if Array.length xs = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance (xs : float array) : float =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let m = mean xs in
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
    /. float_of_int n
  end

let std xs = sqrt (variance xs)

(* column [j] of a row-major matrix *)
let column (m : float array array) j = Array.map (fun row -> row.(j)) m

(* Solve A x = b by Gaussian elimination with partial pivoting.
   A is destroyed; raises [Failure] on a (near-)singular system. *)
let solve (a : float array array) (b : float array) : float array =
  let n = Array.length a in
  if n = 0 || Array.length b <> n then invalid_arg "Linalg.solve: bad shapes";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Linalg.solve: not square")
    a;
  let b = Array.copy b in
  for col = 0 to n - 1 do
    (* pivot *)
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!piv).(col) then piv := r
    done;
    if Float.abs a.(!piv).(col) < 1e-12 then failwith "Linalg.solve: singular";
    if !piv <> col then begin
      let t = a.(col) in
      a.(col) <- a.(!piv);
      a.(!piv) <- t;
      let tb = b.(col) in
      b.(col) <- b.(!piv);
      b.(!piv) <- tb
    end;
    for r = col + 1 to n - 1 do
      let f = a.(r).(col) /. a.(col).(col) in
      if f <> 0.0 then begin
        for c = col to n - 1 do
          a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
        done;
        b.(r) <- b.(r) -. (f *. b.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for r = n - 1 downto 0 do
    let s = ref b.(r) in
    for c = r + 1 to n - 1 do
      s := !s -. (a.(r).(c) *. x.(c))
    done;
    x.(r) <- !s /. a.(r).(r)
  done;
  x

let argmax (xs : float array) : int =
  if Array.length xs = 0 then invalid_arg "Linalg.argmax: empty";
  let best = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) > xs.(!best) then best := i
  done;
  !best

let argmin (xs : float array) : int =
  if Array.length xs = 0 then invalid_arg "Linalg.argmin: empty";
  let best = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) < xs.(!best) then best := i
  done;
  !best
