(* Logistic regression trained with mini-batchless SGD + L2 regularization.
   Multiclass is handled one-vs-rest.  Inputs should be standardized (see
   Scaling); training is deterministic given the seed. *)

type binary = { w : float array; b : float }

type t = {
  models : binary array;   (* one per class (one-vs-rest); size 1 if binary *)
  nclasses : int;
}

type params = {
  epochs : int;
  lr : float;
  l2 : float;
  seed : int;
}

let default_params = { epochs = 200; lr = 0.1; l2 = 1e-4; seed = 1 }

let sigmoid z =
  if z >= 0.0 then 1.0 /. (1.0 +. exp (-.z))
  else begin
    let e = exp z in
    e /. (1.0 +. e)
  end

let train_binary params (xs : float array array) (labels : bool array) : binary
    =
  let n = Array.length xs in
  let d = if n = 0 then 0 else Array.length xs.(0) in
  let w = Array.make d 0.0 in
  let b = ref 0.0 in
  let rng = Random.State.make [| params.seed |] in
  let order = Array.init n Fun.id in
  for _epoch = 1 to params.epochs do
    (* shuffle visit order *)
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- t
    done;
    Array.iter
      (fun i ->
        let x = xs.(i) in
        let y = if labels.(i) then 1.0 else 0.0 in
        let z = Linalg.dot w x +. !b in
        let p = sigmoid z in
        let g = p -. y in
        for j = 0 to d - 1 do
          w.(j) <- w.(j) -. (params.lr *. ((g *. x.(j)) +. (params.l2 *. w.(j))))
        done;
        b := !b -. (params.lr *. g))
      order
  done;
  { w; b = !b }

let fit ?(params = default_params) (d : Dataset.t) : t =
  if Dataset.size d = 0 then invalid_arg "Logreg.fit: empty dataset";
  let nclasses = max 2 d.Dataset.nclasses in
  if nclasses = 2 then
    let labels = Array.map (fun y -> y = 1) d.Dataset.ys in
    { models = [| train_binary params d.Dataset.xs labels |]; nclasses }
  else
    {
      models =
        Array.init nclasses (fun c ->
            let labels = Array.map (fun y -> y = c) d.Dataset.ys in
            train_binary { params with seed = params.seed + c } d.Dataset.xs
              labels);
      nclasses;
    }

let predict_proba (t : t) (x : float array) : float array =
  if t.nclasses = 2 then begin
    let p = sigmoid (Linalg.dot t.models.(0).w x +. t.models.(0).b) in
    [| 1.0 -. p; p |]
  end
  else begin
    let raw =
      Array.map (fun m -> sigmoid (Linalg.dot m.w x +. m.b)) t.models
    in
    let z = max 1e-12 (Array.fold_left ( +. ) 0.0 raw) in
    Array.map (fun p -> p /. z) raw
  end

let predict (t : t) (x : float array) : int = Linalg.argmax (predict_proba t x)
