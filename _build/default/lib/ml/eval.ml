(* Model evaluation: accuracy, confusion matrices, k-fold and leave-one-out
   cross-validation (the paper's recommended protocol, Sec. II-A).  All
   evaluators are generic over a trainer function so every classifier in
   the kit plugs in uniformly. *)

type classifier = float array -> int

(* trainer: dataset -> prediction function *)
type trainer = Dataset.t -> classifier

let accuracy (predict : classifier) (d : Dataset.t) : float =
  let n = Dataset.size d in
  if n = 0 then invalid_arg "Eval.accuracy: empty dataset";
  let correct = ref 0 in
  Array.iteri
    (fun i x -> if predict x = d.Dataset.ys.(i) then incr correct)
    d.Dataset.xs;
  float_of_int !correct /. float_of_int n

let confusion (predict : classifier) (d : Dataset.t) : int array array =
  let k = max 1 d.Dataset.nclasses in
  let m = Array.make_matrix k k 0 in
  Array.iteri
    (fun i x ->
      let p = predict x in
      let y = d.Dataset.ys.(i) in
      if p < k then m.(y).(p) <- m.(y).(p) + 1)
    d.Dataset.xs;
  m

(* leave-one-out cross-validated accuracy *)
let loocv (train : trainer) (d : Dataset.t) : float =
  let n = Dataset.size d in
  if n < 2 then invalid_arg "Eval.loocv: need at least 2 points";
  let correct = ref 0 in
  for i = 0 to n - 1 do
    let tr, x, y = Dataset.leave_one_out d i in
    (* the held-out point may remove the only instance of a class; the
       trained model then simply cannot predict it, which counts against
       accuracy, as it should *)
    let predict = train tr in
    if predict x = y then incr correct
  done;
  float_of_int !correct /. float_of_int n

let kfold_cv ?(seed = 42) (train : trainer) (d : Dataset.t) ~k : float =
  let folds = Dataset.kfolds ~seed d k in
  let accs =
    List.map
      (fun (tr, te) ->
        let predict = train tr in
        accuracy predict te)
      folds
  in
  List.fold_left ( +. ) 0.0 accs /. float_of_int (List.length accs)

let pp_confusion ppf (m : int array array) =
  Array.iteri
    (fun i row ->
      Fmt.pf ppf "true %d |" i;
      Array.iter (fun c -> Fmt.pf ppf " %4d" c) row;
      Fmt.pf ppf "@\n")
    m
