(** Supervised-learning datasets: rows of float features with non-negative
    integer class labels, plus the split utilities the paper's methodology
    calls for (leave-one-out and k-fold cross-validation). *)

type t = {
  xs : float array array;
  ys : int array;
  feature_names : string array;  (** may be empty *)
  nclasses : int;
}

(** Validates shapes and labels.
    @raise Invalid_argument on ragged rows, length mismatch or negative
    labels. *)
val make : ?feature_names:string array -> float array array -> int array -> t

val size : t -> int
val dim : t -> int
val subset : t -> int list -> t

(** [(train, held-out x, held-out y)].
    @raise Invalid_argument on a bad index. *)
val leave_one_out : t -> int -> t * float array * int

(** deterministic shuffled folds; the test sets partition the data.
    @raise Invalid_argument when [k] is out of range. *)
val kfolds : ?seed:int -> t -> int -> (t * t) list

val class_counts : t -> int array
val majority_class : t -> int
