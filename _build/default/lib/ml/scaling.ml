(* Feature standardization: fit z-score parameters on training data, apply
   to any vector.  Constant features scale to zero rather than dividing by
   a zero deviation. *)

type t = { means : float array; stds : float array }

let fit (xs : float array array) : t =
  if Array.length xs = 0 then invalid_arg "Scaling.fit: empty data";
  let d = Array.length xs.(0) in
  let means =
    Array.init d (fun j -> Linalg.mean (Linalg.column xs j))
  in
  let stds = Array.init d (fun j -> Linalg.std (Linalg.column xs j)) in
  { means; stds }

let apply (t : t) (x : float array) : float array =
  if Array.length x <> Array.length t.means then
    invalid_arg "Scaling.apply: dimension mismatch";
  Array.mapi
    (fun j v ->
      if t.stds.(j) < 1e-12 then 0.0 else (v -. t.means.(j)) /. t.stds.(j))
    x

let apply_all t xs = Array.map (apply t) xs

(* fit + transform convenience *)
let standardize xs =
  let t = fit xs in
  (t, apply_all t xs)
