(* Gaussian naive Bayes classifier: per-class, per-feature normal densities
   with Laplace-smoothed class priors and a variance floor for constant
   features. *)

type t = {
  priors : float array;        (* log priors *)
  means : float array array;   (* class x feature *)
  vars : float array array;
  nclasses : int;
}

let var_floor = 1e-6

let fit (d : Dataset.t) : t =
  let n = Dataset.size d in
  if n = 0 then invalid_arg "Naive_bayes.fit: empty dataset";
  let dim = Dataset.dim d in
  let nclasses = d.Dataset.nclasses in
  let priors = Array.make nclasses 0.0 in
  let means = Array.make_matrix nclasses dim 0.0 in
  let vars = Array.make_matrix nclasses dim 0.0 in
  for c = 0 to nclasses - 1 do
    let rows =
      Array.to_list d.Dataset.xs
      |> List.filteri (fun i _ -> d.Dataset.ys.(i) = c)
      |> Array.of_list
    in
    let nc = Array.length rows in
    priors.(c) <-
      log
        ((float_of_int nc +. 1.0) /. (float_of_int n +. float_of_int nclasses));
    if nc > 0 then
      for j = 0 to dim - 1 do
        let col = Linalg.column rows j in
        means.(c).(j) <- Linalg.mean col;
        vars.(c).(j) <- max var_floor (Linalg.variance col)
      done
    else
      for j = 0 to dim - 1 do
        vars.(c).(j) <- 1.0
      done
  done;
  { priors; means; vars; nclasses }

let log_likelihood (t : t) c (x : float array) : float =
  let ll = ref t.priors.(c) in
  for j = 0 to Array.length x - 1 do
    let m = t.means.(c).(j) and v = t.vars.(c).(j) in
    let d = x.(j) -. m in
    ll := !ll -. (0.5 *. (log (2.0 *. Float.pi *. v) +. (d *. d /. v)))
  done;
  !ll

let scores (t : t) (x : float array) : float array =
  Array.init t.nclasses (fun c -> log_likelihood t c x)

let predict (t : t) (x : float array) : int = Linalg.argmax (scores t x)

let predict_proba (t : t) (x : float array) : float array =
  let s = scores t x in
  let m = Array.fold_left max neg_infinity s in
  let exps = Array.map (fun v -> exp (v -. m)) s in
  let z = Array.fold_left ( +. ) 0.0 exps in
  Array.map (fun e -> e /. z) exps
