(** Logistic regression trained with SGD + L2; multiclass one-vs-rest.
    Standardize inputs first ({!Scaling}).  Deterministic given the seed. *)

type binary = { w : float array; b : float }

type t = {
  models : binary array;  (** one per class; a single model when binary *)
  nclasses : int;
}

type params = {
  epochs : int;
  lr : float;
  l2 : float;
  seed : int;
}

val default_params : params

(** numerically stable sigmoid *)
val sigmoid : float -> float

(** @raise Invalid_argument on an empty dataset *)
val fit : ?params:params -> Dataset.t -> t

val predict_proba : t -> float array -> float array
val predict : t -> float array -> int
