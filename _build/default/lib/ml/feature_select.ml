(* Feature usefulness ranking by mutual information between a discretized
   feature and the class label — the "standard statistical techniques, such
   as mutual information" the paper suggests for evaluating candidate
   features (Sec. III-E). *)

let default_bins = 8

(* equal-width discretization of a column into [bins] buckets *)
let discretize ?(bins = default_bins) (col : float array) : int array =
  let lo = Array.fold_left min infinity col in
  let hi = Array.fold_left max neg_infinity col in
  if hi -. lo < 1e-12 then Array.map (fun _ -> 0) col
  else
    Array.map
      (fun v ->
        let b =
          int_of_float (float_of_int bins *. (v -. lo) /. (hi -. lo))
        in
        min (bins - 1) (max 0 b))
      col

(* mutual information I(X;Y) in bits between a discretized feature and the
   labels *)
let mutual_information ?(bins = default_bins) (col : float array)
    (ys : int array) : float =
  let n = Array.length col in
  if n = 0 || n <> Array.length ys then
    invalid_arg "Feature_select.mutual_information: bad data";
  let xb = discretize ~bins col in
  let nclasses = Array.fold_left (fun a y -> max a (y + 1)) 1 ys in
  let joint = Array.make_matrix bins nclasses 0.0 in
  let px = Array.make bins 0.0 in
  let py = Array.make nclasses 0.0 in
  let nf = float_of_int n in
  Array.iteri
    (fun i b ->
      let y = ys.(i) in
      joint.(b).(y) <- joint.(b).(y) +. (1.0 /. nf);
      px.(b) <- px.(b) +. (1.0 /. nf);
      py.(y) <- py.(y) +. (1.0 /. nf))
    xb;
  let mi = ref 0.0 in
  for b = 0 to bins - 1 do
    for y = 0 to nclasses - 1 do
      let j = joint.(b).(y) in
      if j > 0.0 && px.(b) > 0.0 && py.(y) > 0.0 then
        mi := !mi +. (j *. (log (j /. (px.(b) *. py.(y))) /. log 2.0))
    done
  done;
  !mi

(* rank features of a dataset by MI with the label, best first *)
let rank (d : Dataset.t) : (int * float) list =
  let dim = Dataset.dim d in
  List.init dim (fun j ->
      (j, mutual_information (Linalg.column d.Dataset.xs j) d.Dataset.ys))
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(* keep the [k] most informative features *)
let select_top (d : Dataset.t) ~k : Dataset.t * int list =
  let ranked = rank d in
  let keep = List.filteri (fun i _ -> i < k) ranked |> List.map fst in
  let keep = List.sort compare keep in
  let xs =
    Array.map
      (fun row -> Array.of_list (List.map (fun j -> row.(j)) keep))
      d.Dataset.xs
  in
  let feature_names =
    if d.Dataset.feature_names = [||] then [||]
    else
      Array.of_list (List.map (fun j -> d.Dataset.feature_names.(j)) keep)
  in
  (Dataset.make ~feature_names xs d.Dataset.ys, keep)
