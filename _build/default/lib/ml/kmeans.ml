(* k-means clustering with k-means++ seeding, used by the knowledge base to
   group programs with similar characterizations.  Deterministic given the
   seed. *)

type t = { centroids : float array array }

let assign (centroids : float array array) (x : float array) : int =
  Linalg.argmin (Array.map (fun c -> Linalg.euclidean x c) centroids)

let plus_plus_init rng k (xs : float array array) : float array array =
  let n = Array.length xs in
  let centroids = Array.make k xs.(Random.State.int rng n) in
  for c = 1 to k - 1 do
    (* distance to nearest existing centroid, squared *)
    let d2 =
      Array.map
        (fun x ->
          let m = ref infinity in
          for j = 0 to c - 1 do
            m := min !m (Linalg.euclidean x centroids.(j))
          done;
          !m *. !m)
        xs
    in
    let total = Array.fold_left ( +. ) 0.0 d2 in
    if total <= 0.0 then centroids.(c) <- xs.(Random.State.int rng n)
    else begin
      let r = Random.State.float rng total in
      let acc = ref 0.0 and chosen = ref (n - 1) in
      (try
         Array.iteri
           (fun i v ->
             acc := !acc +. v;
             if !acc >= r then begin
               chosen := i;
               raise Exit
             end)
           d2
       with Exit -> ());
      centroids.(c) <- xs.(!chosen)
    end
  done;
  centroids

let fit ?(seed = 7) ?(max_iter = 100) ~k (xs : float array array) : t =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Kmeans.fit: empty data";
  if k <= 0 || k > n then invalid_arg "Kmeans.fit: bad k";
  let rng = Random.State.make [| seed |] in
  let centroids = Array.map Array.copy (plus_plus_init rng k xs) in
  let d = Array.length xs.(0) in
  let assignment = Array.make n (-1) in
  let changed = ref true in
  let iter = ref 0 in
  while !changed && !iter < max_iter do
    changed := false;
    incr iter;
    Array.iteri
      (fun i x ->
        let a = assign centroids x in
        if a <> assignment.(i) then begin
          assignment.(i) <- a;
          changed := true
        end)
      xs;
    (* recompute centroids; empty clusters keep their position *)
    for c = 0 to k - 1 do
      let members = ref [] in
      Array.iteri (fun i a -> if a = c then members := i :: !members) assignment;
      match !members with
      | [] -> ()
      | ms ->
        let m = float_of_int (List.length ms) in
        let acc = Array.make d 0.0 in
        List.iter
          (fun i ->
            for j = 0 to d - 1 do
              acc.(j) <- acc.(j) +. xs.(i).(j)
            done)
          ms;
        centroids.(c) <- Array.map (fun v -> v /. m) acc
    done
  done;
  { centroids }

let predict (t : t) x = assign t.centroids x

(* total within-cluster sum of squared distances *)
let inertia (t : t) (xs : float array array) : float =
  Array.fold_left
    (fun acc x ->
      let c = t.centroids.(assign t.centroids x) in
      let d = Linalg.euclidean x c in
      acc +. (d *. d))
    0.0 xs
