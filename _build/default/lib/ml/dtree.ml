(* CART-style decision-tree classifier: binary splits on feature
   thresholds, impurity by Gini or entropy, pre-pruning by depth and
   minimum leaf size.  Deterministic: candidate thresholds are midpoints
   of sorted distinct feature values, ties resolved by (feature, threshold)
   order. *)

type impurity = Gini | Entropy

type node =
  | Leaf of int * float array          (* class, class distribution *)
  | Split of int * float * node * node (* feature, threshold, <=, > *)

type t = { root : node; nclasses : int }

type params = {
  max_depth : int;
  min_leaf : int;
  impurity : impurity;
}

let default_params = { max_depth = 8; min_leaf = 2; impurity = Gini }

let distribution nclasses (ys : int array) =
  let d = Array.make nclasses 0.0 in
  Array.iter (fun y -> d.(y) <- d.(y) +. 1.0) ys;
  let n = float_of_int (max 1 (Array.length ys)) in
  Array.map (fun c -> c /. n) d

let impurity_of imp (dist : float array) : float =
  match imp with
  | Gini -> 1.0 -. Array.fold_left (fun acc p -> acc +. (p *. p)) 0.0 dist
  | Entropy ->
    -.Array.fold_left
        (fun acc p -> if p > 0.0 then acc +. (p *. log p /. log 2.0) else acc)
        0.0 dist

let majority dist =
  let best = ref 0 in
  Array.iteri (fun i p -> if p > dist.(!best) then best := i) dist;
  !best

(* candidate thresholds for a feature: midpoints between consecutive
   distinct sorted values *)
let thresholds (vals : float array) : float list =
  let v = Array.copy vals in
  Array.sort compare v;
  let out = ref [] in
  for i = 0 to Array.length v - 2 do
    if v.(i) < v.(i + 1) then out := ((v.(i) +. v.(i + 1)) /. 2.0) :: !out
  done;
  List.rev !out

let rec build params nclasses (xs : float array array) (ys : int array) depth :
    node =
  let n = Array.length ys in
  let dist = distribution nclasses ys in
  let here = impurity_of params.impurity dist in
  let leaf () = Leaf (majority dist, dist) in
  if depth >= params.max_depth || n < 2 * params.min_leaf || here <= 1e-12
  then leaf ()
  else begin
    let d = Array.length xs.(0) in
    (* best split by (gain, balance): XOR-like targets have zero single-split
       gain everywhere, so ties are broken towards the most balanced split,
       which lets deeper levels finish the separation *)
    let best = ref None in
    for j = 0 to d - 1 do
      List.iter
        (fun thr ->
          let li = ref [] and ri = ref [] in
          Array.iteri
            (fun i x -> if x.(j) <= thr then li := i :: !li else ri := i :: !ri)
            xs;
          let nl = List.length !li and nr = List.length !ri in
          if nl >= params.min_leaf && nr >= params.min_leaf then begin
            let dl =
              distribution nclasses
                (Array.of_list (List.map (fun i -> ys.(i)) !li))
            and dr =
              distribution nclasses
                (Array.of_list (List.map (fun i -> ys.(i)) !ri))
            in
            let w = float_of_int nl /. float_of_int n in
            let gain =
              here
              -. ((w *. impurity_of params.impurity dl)
                  +. ((1.0 -. w) *. impurity_of params.impurity dr))
            in
            let balance = -.Float.abs (float_of_int (nl - nr)) in
            match !best with
            | Some (g, bal, _, _, _, _)
              when g > gain +. 1e-12
                   || (Float.abs (g -. gain) <= 1e-12 && bal >= balance) ->
              ()
            | _ -> best := Some (gain, balance, j, thr, List.rev !li, List.rev !ri)
          end)
        (thresholds (Linalg.column xs j))
    done;
    match !best with
    | Some (gain, _, j, thr, li, ri) when gain > -1e-9 ->
      let sub idxs =
        ( Array.of_list (List.map (fun i -> xs.(i)) idxs),
          Array.of_list (List.map (fun i -> ys.(i)) idxs) )
      in
      let xl, yl = sub li and xr, yr = sub ri in
      Split
        ( j,
          thr,
          build params nclasses xl yl (depth + 1),
          build params nclasses xr yr (depth + 1) )
    | _ -> leaf ()
  end

let fit ?(params = default_params) (d : Dataset.t) : t =
  if Dataset.size d = 0 then invalid_arg "Dtree.fit: empty dataset";
  {
    root = build params d.Dataset.nclasses d.Dataset.xs d.Dataset.ys 0;
    nclasses = d.Dataset.nclasses;
  }

let rec predict_node node (x : float array) =
  match node with
  | Leaf (c, dist) -> (c, dist)
  | Split (j, thr, l, r) ->
    if x.(j) <= thr then predict_node l x else predict_node r x

let predict (t : t) x = fst (predict_node t.root x)
let predict_proba (t : t) x = snd (predict_node t.root x)

let rec depth_of = function
  | Leaf _ -> 0
  | Split (_, _, l, r) -> 1 + max (depth_of l) (depth_of r)

let rec size_of = function
  | Leaf _ -> 1
  | Split (_, _, l, r) -> 1 + size_of l + size_of r

(* human-readable rendering, useful for "integration of the induced
   heuristic": the tree is directly readable as nested if-thens *)
let to_string ?(feature_names = [||]) (t : t) : string =
  let buf = Buffer.create 256 in
  let fname j =
    if j < Array.length feature_names then feature_names.(j)
    else Printf.sprintf "f%d" j
  in
  let rec go ind node =
    let pad = String.make ind ' ' in
    match node with
    | Leaf (c, dist) ->
      Buffer.add_string buf
        (Printf.sprintf "%sclass %d (p=%.2f)\n" pad c dist.(c))
    | Split (j, thr, l, r) ->
      Buffer.add_string buf (Printf.sprintf "%sif %s <= %g:\n" pad (fname j) thr);
      go (ind + 2) l;
      Buffer.add_string buf (Printf.sprintf "%selse:\n" pad);
      go (ind + 2) r
  in
  go 0 t.root;
  Buffer.contents buf
