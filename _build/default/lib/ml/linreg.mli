(** Ridge regression via the normal equations; the bias term is not
    regularized. *)

type t = { w : float array; b : float }

(** @raise Invalid_argument on empty/mismatched data
    @raise Failure when the normal equations are singular (only possible
    with [l2 = 0.]) *)
val fit : ?l2:float -> float array array -> float array -> t

val predict : t -> float array -> float

(** coefficient of determination on a dataset *)
val r2 : t -> float array array -> float array -> float
