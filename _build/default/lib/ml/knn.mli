(** k-nearest-neighbour classification and regression with optional
    inverse-distance weighting.  Deterministic: distance ties break by
    training index. *)

type t = {
  xs : float array array;
  ys : int array;
  k : int;
  weighted : bool;
  nclasses : int;
}

(** @raise Invalid_argument on an empty dataset or non-positive [k] *)
val fit : ?k:int -> ?weighted:bool -> Dataset.t -> t

(** the k nearest training indices with distances, nearest first *)
val neighbors : t -> float array -> (int * float) list

val class_scores : t -> float array -> float array
val predict : t -> float array -> int

(** normalized vote shares (sums to 1) *)
val predict_proba : t -> float array -> float array

type regressor = {
  rxs : float array array;
  rys : float array;
  rk : int;
  rweighted : bool;
}

val fit_regressor :
  ?k:int -> ?weighted:bool -> float array array -> float array -> regressor

val predict_value : regressor -> float array -> float
