(** Z-score feature standardization with saved parameters.  Constant
    features map to zero instead of dividing by a zero deviation. *)

type t = { means : float array; stds : float array }

(** @raise Invalid_argument on empty data *)
val fit : float array array -> t

(** @raise Invalid_argument on dimension mismatch *)
val apply : t -> float array -> float array

val apply_all : t -> float array array -> float array array

(** fit then transform *)
val standardize : float array array -> t * float array array
