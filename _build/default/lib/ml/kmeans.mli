(** k-means clustering with k-means++ seeding.  Deterministic given the
    seed; empty clusters keep their previous centroid. *)

type t = { centroids : float array array }

(** @raise Invalid_argument on empty data or [k] out of range *)
val fit : ?seed:int -> ?max_iter:int -> k:int -> float array array -> t

(** index of the nearest centroid *)
val predict : t -> float array -> int

(** total within-cluster sum of squared distances *)
val inertia : t -> float array array -> float
