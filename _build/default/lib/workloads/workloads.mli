(** The benchmark suite: 18 Mira programs standing in for the suites the
    paper draws on (MiBench, SPECINT, SPECFP, Polyhedron).  All are
    deterministic, generate their own inputs, print a checksum (observable
    output for the differential tests) and finish in ~0.1–2M dynamic
    instructions at -O0.

    Two members are the specific subjects of the paper's figures:
    [adpcm] (Fig. 2, with the real IMA step tables) and [mcf_spars]
    (Figs. 3–4, the memory-bound 181.mcf analogue). *)

type family =
  | Telecomm
  | Automotive
  | Network
  | Office
  | Security
  | SpecInt
  | SpecFp
  | Kernel

val family_name : family -> string

type t = {
  name : string;
  family : family;
  descr : string;
  source : string;  (** Mira source text *)
}

val adpcm : t
val mcf_spars : t
val all : t list
val names : string list
val by_name : string -> t option

(** @raise Invalid_argument on an unknown name *)
val by_name_exn : string -> t

(** compile (memoized).  @raise Failure if the source does not compile,
    which the test suite rules out. *)
val program : t -> Mira.Ir.program
