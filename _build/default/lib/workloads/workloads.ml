(* The benchmark suite: 16 Mira programs standing in for the suites the
   paper draws on (MiBench, SPECINT, SPECFP, Polyhedron).  Two of them are
   the specific subjects of the paper's figures:

   - [adpcm]: the MiBench telecomm ADPCM encoder (Fig. 2's subject on the
     TI C6713), including the real IMA step-size tables;
   - [mcf_spars]: a network-simplex-flavoured pointer chaser standing in
     for SPEC 181.mcf (Fig. 3/4's subject) — a large multi-array footprint
     traversed data-dependently, with stores on the chase path, giving the
     same extreme per-instruction L2 store-miss signature the paper shows.

   All programs are deterministic, generate their own inputs (LCG), print a
   checksum (observable output for differential testing) and finish in
   ~0.1-1.5M dynamic instructions at -O0. *)

type family = Telecomm | Automotive | Network | Office | Security | SpecInt | SpecFp | Kernel

let family_name = function
  | Telecomm -> "telecomm"
  | Automotive -> "automotive"
  | Network -> "network"
  | Office -> "office"
  | Security -> "security"
  | SpecInt -> "specint"
  | SpecFp -> "specfp"
  | Kernel -> "kernel"

type t = {
  name : string;
  family : family;
  descr : string;
  source : string;
}

let ima_index_table = "{-1, -1, -1, -1, 2, 4, 6, 8}"

let ima_step_table =
  "{7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, \
   45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, \
   209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658, 724, \
   796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272, \
   2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, \
   7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, \
   22385, 24623, 27086, 29794, 32767}"

(* --------------------------------------------------------------- *)

let adpcm =
  {
    name = "adpcm";
    family = Telecomm;
    descr = "IMA ADPCM encoder over a synthetic waveform (MiBench telecomm)";
    source =
      Printf.sprintf
        {|global index_table: int[8] = %s;
global step_table: int[89] = %s;
global pcm: int[8192];

fn gen_input() {
  // synthetic speech-ish waveform: sum of two sawtooths + noise
  var x: int = 12345;
  for i = 0 to 8192 {
    x = (x * 1103515245 + 12345) & 1073741823;
    var saw1: int = ((i * 37) & 4095) - 2048;
    var saw2: int = ((i * 11) & 1023) - 512;
    pcm[i] = saw1 + saw2 + (x & 127) - 64;
  }
}

fn encode() -> int {
  var valpred: int = 0;
  var index: int = 0;
  var checksum: int = 0;
  for i = 0 to 8192 {
    var val: int = pcm[i];
    var stepv: int = step_table[index];
    var diff: int = val - valpred;
    var sign: int = 0;
    if (diff < 0) { sign = 8; diff = 0 - diff; }
    var delta: int = 0;
    var vpdiff: int = stepv >> 3;
    if (diff >= stepv) { delta = 4; diff = diff - stepv; vpdiff = vpdiff + stepv; }
    stepv = stepv >> 1;
    if (diff >= stepv) { delta = delta | 2; diff = diff - stepv; vpdiff = vpdiff + stepv; }
    stepv = stepv >> 1;
    if (diff >= stepv) { delta = delta | 1; vpdiff = vpdiff + stepv; }
    if (sign > 0) { valpred = valpred - vpdiff; }
    else { valpred = valpred + vpdiff; }
    if (valpred > 32767) { valpred = 32767; }
    else { if (valpred < -32768) { valpred = -32768; } }
    delta = delta | sign;
    index = index + index_table[delta & 7];
    if (index < 0) { index = 0; }
    if (index > 88) { index = 88; }
    checksum = (checksum + delta * 31 + valpred) & 16777215;
  }
  return checksum;
}

fn main() -> int {
  gen_input();
  var c: int = encode();
  print(c);
  return c %% 65536;
}|}
        ima_index_table ima_step_table;
  }

let mcf_spars =
  {
    name = "mcf_spars";
    family = SpecInt;
    descr =
      "network-simplex-style pointer chase over a 768 KiB arc structure \
       with stores on the chase path (SPEC 181.mcf analogue)";
    source =
      {|global arc_next: int[32768];
global arc_cost: int[32768];
global arc_flow: int[32768];

fn build_network() {
  // next[] is a full-cycle affine permutation: stride odd => bijection
  // on the power-of-two index space; consecutive hops land ~1.5 MiB
  // apart in the flat address space, defeating both cache levels
  for i = 0 to 32768 {
    arc_next[i] = (i + 12289) & 32767;
    arc_cost[i] = (i * 97 + 13) & 4095;
    arc_flow[i] = 0;
  }
}

fn chase(iters: int) -> int {
  var x: int = 0;
  var total: int = 0;
  var neg: int = 0;
  for it = 0 to iters {
    var nx: int = arc_next[x];
    var c: int = arc_cost[x] + (arc_flow[nx] >> 2);
    if (c > 2048) { c = c - 4096; }
    if (c < 0) { neg = neg + 1; c = 0 - c; }
    arc_flow[x] = c & 8191;
    // price update on a distant arc: a second store that lands on a cold
    // line, as the simplex price sweeps do in the real mcf
    arc_flow[(x + 16384) & 32767] = (c >> 1) & 8191;
    total = (total + c) & 1073741823;
    x = nx;
  }
  print(neg);
  return total;
}

fn main() -> int {
  build_network();
  var t: int = chase(52000);
  print(t);
  return t % 65536;
}|};
  }

let matmul =
  {
    name = "matmul";
    family = SpecFp;
    descr = "48x48 float matrix multiply (Polyhedron-style dense kernel)";
    source =
      {|global a: float[2304];
global b: float[2304];
global c: float[2304];

fn init() {
  for i = 0 to 2304 {
    a[i] = float((i * 7) % 100) / 10.0;
    b[i] = float((i * 13) % 100) / 10.0 - 5.0;
  }
}

fn mm(n: int) {
  for i = 0 to n {
    for j = 0 to n {
      var s: float = 0.0;
      for k = 0 to n {
        s = s + a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = s;
    }
  }
}

fn main() -> int {
  init();
  mm(48);
  var check: float = 0.0;
  for i = 0 to 2304 step 97 { check = check + c[i]; }
  print(check);
  return int(check) % 65536;
}|};
  }

let fir =
  {
    name = "fir";
    family = Telecomm;
    descr = "32-tap FIR filter over 8k samples (MiBench telecomm kernel)";
    source =
      {|global taps: float[32];
global signal: float[4096];
global out: float[4096];

fn init() {
  for i = 0 to 32 {
    taps[i] = float(16 - i) / 64.0;
  }
  var x: int = 99;
  for i = 0 to 4096 {
    x = (x * 1103515245 + 12345) & 1073741823;
    signal[i] = float(x % 2048) / 1024.0 - 1.0;
  }
}

fn filter() {
  for i = 32 to 4096 {
    var acc: float = 0.0;
    for t = 0 to 32 {
      acc = acc + taps[t] * signal[i - t];
    }
    out[i] = acc;
  }
}

fn main() -> int {
  init();
  filter();
  var check: float = 0.0;
  for i = 0 to 4096 step 31 { check = check + out[i]; }
  print(check);
  return int(check * 100.0) % 65536;
}|};
  }

let crc32 =
  {
    name = "crc32";
    family = Telecomm;
    descr = "bitwise CRC-32 over a 24 KiB message (MiBench telecomm)";
    source =
      {|global msg: int[3072];

fn main() -> int {
  var x: int = 7;
  for i = 0 to 3072 {
    x = (x * 1103515245 + 12345) & 1073741823;
    msg[i] = x & 255;
  }
  var crc: int = 4294967295;
  for i = 0 to 3072 {
    crc = crc ^ msg[i];
    for bit = 0 to 8 {
      if ((crc & 1) == 1) { crc = (crc >> 1) ^ 3988292384; }
      else { crc = crc >> 1; }
    }
  }
  crc = crc ^ 4294967295;
  print(crc);
  return crc % 65536;
}|};
  }

let bitcount =
  {
    name = "bitcount";
    family = Automotive;
    descr = "population-count microkernels over 40k words (MiBench)";
    source =
      {|fn pop_naive(v: int) -> int {
  var c: int = 0;
  var x: int = v;
  while (x != 0) {
    c = c + (x & 1);
    x = x >> 1;
  }
  return c;
}

fn pop_kernighan(v: int) -> int {
  var c: int = 0;
  var x: int = v;
  while (x != 0) {
    x = x & (x - 1);
    c = c + 1;
  }
  return c;
}

fn main() -> int {
  var x: int = 31;
  var total: int = 0;
  for i = 0 to 6000 {
    x = (x * 1103515245 + 12345) & 1073741823;
    total = total + pop_naive(x) + pop_kernighan(x);
  }
  print(total);
  return total % 65536;
}|};
  }

let dijkstra =
  {
    name = "dijkstra";
    family = Network;
    descr = "single-source shortest paths on a 96-node dense graph (MiBench)";
    source =
      {|global adj: int[9216];
global dist: int[96];
global done_: int[96];

fn main() -> int {
  var n: int = 96;
  var x: int = 5;
  for i = 0 to 9216 {
    x = (x * 1103515245 + 12345) & 1073741823;
    adj[i] = (x % 100) + 1;
  }
  var total: int = 0;
  // run from 5 different sources
  for src = 0 to 5 {
    for i = 0 to n { dist[i] = 1000000; done_[i] = 0; }
    dist[src * 11] = 0;
    for round = 0 to n {
      var best: int = -1;
      var bestd: int = 1000001;
      for i = 0 to n {
        if (done_[i] == 0 && dist[i] < bestd) { best = i; bestd = dist[i]; }
      }
      if (best >= 0) {
        done_[best] = 1;
        for j = 0 to n {
          var nd: int = dist[best] + adj[best * n + j];
          if (nd < dist[j]) { dist[j] = nd; }
        }
      }
    }
    for i = 0 to n { total = total + dist[i]; }
  }
  print(total);
  return total % 65536;
}|};
  }

let qsort_bench =
  {
    name = "qsort";
    family = Automotive;
    descr = "recursive quicksort of 3000 pseudo-random ints (MiBench qsort)";
    source =
      {|global data: int[3000];

fn swap(i: int, j: int) {
  var t: int = data[i];
  data[i] = data[j];
  data[j] = t;
}

fn qsort_rec(lo: int, hi: int) {
  if (lo < hi) {
    var pivot: int = data[(lo + hi) / 2];
    var i: int = lo;
    var j: int = hi;
    while (i <= j) {
      while (data[i] < pivot) { i = i + 1; }
      while (data[j] > pivot) { j = j - 1; }
      if (i <= j) {
        swap(i, j);
        i = i + 1;
        j = j - 1;
      }
    }
    qsort_rec(lo, j);
    qsort_rec(i, hi);
  }
}

fn main() -> int {
  var x: int = 1234;
  for i = 0 to 3000 {
    x = (x * 1103515245 + 12345) & 1073741823;
    data[i] = x % 100000;
  }
  qsort_rec(0, 2999);
  // verify sortedness and checksum
  var bad: int = 0;
  var check: int = 0;
  for i = 1 to 3000 {
    if (data[i - 1] > data[i]) { bad = bad + 1; }
    check = (check + data[i] * i) & 16777215;
  }
  print(bad);
  print(check);
  return check % 65536;
}|};
  }

let histogram =
  {
    name = "histogram";
    family = Office;
    descr = "256-bin histogram + cumulative equalization over 48k samples";
    source =
      {|global hist: int[256];
global cdf: int[256];

fn main() -> int {
  var x: int = 42;
  for it = 0 to 48000 {
    x = (x * 1103515245 + 12345) & 1073741823;
    var bin: int = (x >> 8) & 255;
    hist[bin] = hist[bin] + 1;
  }
  var acc: int = 0;
  for i = 0 to 256 {
    acc = acc + hist[i];
    cdf[i] = acc * 255 / 48000;
  }
  var check: int = 0;
  for i = 0 to 256 { check = (check + cdf[i] * i) & 16777215; }
  print(check);
  return check % 65536;
}|};
  }

let nbody =
  {
    name = "nbody";
    family = SpecFp;
    descr = "O(n^2) gravitational n-body, 48 bodies x 12 steps (SPECFP-style)";
    source =
      {|global px: float[48]; global py: float[48];
global vx: float[48]; global vy: float[48];
global fx: float[48]; global fy: float[48];

fn main() -> int {
  for i = 0 to 48 {
    px[i] = float((i * 37) % 100) / 10.0;
    py[i] = float((i * 61) % 100) / 10.0;
    vx[i] = 0.0; vy[i] = 0.0;
  }
  for tstep = 0 to 12 {
    for i = 0 to 48 { fx[i] = 0.0; fy[i] = 0.0; }
    for i = 0 to 48 {
      for j = 0 to 48 {
        if (i != j) {
          var dx: float = px[j] - px[i];
          var dy: float = py[j] - py[i];
          var d2: float = dx * dx + dy * dy + 0.25;
          var inv: float = 1.0 / (d2 * d2);
          fx[i] = fx[i] + dx * inv;
          fy[i] = fy[i] + dy * inv;
        }
      }
    }
    for i = 0 to 48 {
      vx[i] = vx[i] + fx[i] * 0.01;
      vy[i] = vy[i] + fy[i] * 0.01;
      px[i] = px[i] + vx[i] * 0.01;
      py[i] = py[i] + vy[i] * 0.01;
    }
  }
  var check: float = 0.0;
  for i = 0 to 48 { check = check + px[i] + py[i]; }
  print(check);
  return int(check) % 65536;
}|};
  }

let stencil2d =
  {
    name = "stencil2d";
    family = Kernel;
    descr = "5-point Jacobi stencil on a 96x96 grid, 10 sweeps";
    source =
      {|global grid: float[9216];
global next: float[9216];

fn main() -> int {
  var n: int = 96;
  for i = 0 to 9216 { grid[i] = float((i * 31) % 97) / 97.0; }
  for sweep = 0 to 5 {
    for i = 1 to 95 {
      for j = 1 to 95 {
        var idx: int = i * n + j;
        next[idx] = 0.2 * (grid[idx] + grid[idx - 1] + grid[idx + 1]
                           + grid[idx - n] + grid[idx + n]);
      }
    }
    for i = 1 to 95 {
      for j = 1 to 95 {
        grid[i * n + j] = next[i * n + j];
      }
    }
  }
  var check: float = 0.0;
  for i = 0 to 9216 step 89 { check = check + grid[i]; }
  print(check);
  return int(check * 1000.0) % 65536;
}|};
  }

let susan_edge =
  {
    name = "susan";
    family = Automotive;
    descr = "SUSAN-style edge response over a synthetic 80x80 image (MiBench)";
    source =
      {|global img: int[6400];
global edge: int[6400];

fn main() -> int {
  var n: int = 80;
  var x: int = 17;
  for i = 0 to 6400 {
    x = (x * 1103515245 + 12345) & 1073741823;
    // blocky image with noise: strong edges every 16 pixels
    var block: int = ((i / 16) % 2) * 128;
    img[i] = block + (x % 32);
  }
  var edges: int = 0;
  for i = 1 to 79 {
    for j = 1 to 79 {
      var c: int = img[i * n + j];
      var usan: int = 0;
      for di = -1 to 2 {
        for dj = -1 to 2 {
          var v: int = img[(i + di) * n + (j + dj)];
          var diff: int = v - c;
          if (diff < 0) { diff = 0 - diff; }
          if (diff < 20) { usan = usan + 1; }
        }
      }
      if (usan < 6) { edge[i * n + j] = 1; edges = edges + 1; }
    }
  }
  print(edges);
  return edges % 65536;
}|};
  }

let sha_mix =
  {
    name = "sha_mix";
    family = Security;
    descr = "SHA-flavoured integer mixing rounds over a 4 KiB block (MiBench)";
    source =
      {|global block: int[512];

fn rotl(v: int, r: int) -> int {
  return ((v << r) | (v >> (32 - r))) & 4294967295;
}

fn main() -> int {
  var x: int = 0x1234;
  for i = 0 to 512 {
    x = (x * 1103515245 + 12345) & 1073741823;
    block[i] = x & 4294967295;
  }
  var h0: int = 0x67452301;
  var h1: int = 0xEFCDAB89;
  var h2: int = 0x98BADCFE;
  var h3: int = 0x10325476;
  for round_ = 0 to 40 {
    for i = 0 to 512 {
      var w: int = block[i];
      var f: int = (h1 & h2) | ((h3 ^ 4294967295) & h1);
      var tmp: int = (rotl(h0, 5) + f + w + 0x5A827999) & 4294967295;
      h3 = h2;
      h2 = rotl(h1, 30);
      h1 = h0;
      h0 = tmp;
    }
  }
  var digest: int = (h0 ^ h1 ^ h2 ^ h3) & 4294967295;
  print(digest);
  return digest % 65536;
}|};
  }

let strsearch =
  {
    name = "strsearch";
    family = Office;
    descr = "naive + bad-character substring search over 16k chars (MiBench)";
    source =
      {|global text: int[8192];
global pat: int[8];
global shift: int[64];

fn main() -> int {
  var x: int = 313;
  for i = 0 to 8192 {
    x = (x * 1103515245 + 12345) & 1073741823;
    text[i] = x % 64;
  }
  for i = 0 to 8 { pat[i] = (i * 13 + 5) % 64; }
  // plant a few needles
  for k = 0 to 10 {
    var at: int = k * 790 + 37;
    for i = 0 to 8 { text[at + i] = pat[i]; }
  }
  // bad-character table
  for c = 0 to 64 { shift[c] = 8; }
  for i = 0 to 7 { shift[pat[i]] = 7 - i; }
  var found: int = 0;
  // several passes amortize the input-generation cost, as repeated
  // queries over the same document would
  for pass = 0 to 10 {
    var pos: int = 0;
    while (pos <= 8184) {
      var j: int = 7;
      var ok: bool = true;
      while (j >= 0 && ok) {
        if (text[pos + j] != pat[j]) { ok = false; }
        else { j = j - 1; }
      }
      if (ok) {
        found = found + 1;
        pos = pos + 1;
      } else {
        var s: int = shift[text[pos + 7]];
        if (s < 1) { s = 1; }
        pos = pos + s;
      }
    }
  }
  print(found);
  return found;
}|};
  }

let jacobi =
  {
    name = "jacobi";
    family = SpecFp;
    descr = "Jacobi iteration solving a 64-unknown diagonally dominant system";
    source =
      {|global a: float[4096];
global bvec: float[64];
global xv: float[64];
global xn: float[64];

fn main() -> int {
  var n: int = 64;
  for i = 0 to n {
    for j = 0 to n {
      if (i == j) { a[i * n + j] = float(n) + 1.0; }
      else { a[i * n + j] = 1.0 / float(i + j + 1); }
    }
    bvec[i] = float((i * 7) % 13);
    xv[i] = 0.0;
  }
  for iter = 0 to 25 {
    for i = 0 to n {
      var s: float = bvec[i];
      for j = 0 to n {
        if (i != j) { s = s - a[i * n + j] * xv[j]; }
      }
      xn[i] = s / a[i * n + i];
    }
    for i = 0 to n { xv[i] = xn[i]; }
  }
  var check: float = 0.0;
  for i = 0 to n { check = check + xv[i]; }
  print(check);
  return int(check * 1000.0) % 65536;
}|};
  }

let lud =
  {
    name = "lud";
    family = Kernel;
    descr = "LU decomposition (Doolittle, no pivoting) of a 56x56 matrix";
    source =
      {|global m: float[3136];

fn main() -> int {
  var n: int = 56;
  for i = 0 to n {
    for j = 0 to n {
      if (i == j) { m[i * n + j] = float(n * 4); }
      else { m[i * n + j] = float(((i * 13 + j * 7) % 19)) / 19.0; }
    }
  }
  for k = 0 to n {
    for i = k + 1 to n {
      m[i * n + k] = m[i * n + k] / m[k * n + k];
      for j = k + 1 to n {
        m[i * n + j] = m[i * n + j] - m[i * n + k] * m[k * n + j];
      }
    }
  }
  var check: float = 0.0;
  for i = 0 to n { check = check + m[i * n + i]; }
  print(check);
  return int(check) % 65536;
}|};
  }

let blowfish_mix =
  {
    name = "blowfish";
    family = Security;
    descr = "Feistel rounds with table lookups (MiBench blowfish analogue)";
    source =
      {|global sbox0: int[256];
global sbox1: int[256];
global sbox2: int[256];
global sbox3: int[256];

fn f(x: int) -> int {
  var a: int = (x >> 24) & 255;
  var b: int = (x >> 16) & 255;
  var c: int = (x >> 8) & 255;
  var d: int = x & 255;
  return (((sbox0[a] + sbox1[b]) ^ sbox2[c]) + sbox3[d]) & 4294967295;
}

fn main() -> int {
  var x: int = 777;
  for i = 0 to 256 {
    x = (x * 1103515245 + 12345) & 1073741823;
    sbox0[i] = x & 4294967295;
    x = (x * 1103515245 + 12345) & 1073741823;
    sbox1[i] = x & 4294967295;
    x = (x * 1103515245 + 12345) & 1073741823;
    sbox2[i] = x & 4294967295;
    x = (x * 1103515245 + 12345) & 1073741823;
    sbox3[i] = x & 4294967295;
  }
  var l: int = 0x01234567;
  var r: int = 0x89ABCDE;
  var check: int = 0;
  for blockn = 0 to 3000 {
    l = l ^ blockn;
    for round_ = 0 to 16 {
      l = l ^ f(r);
      var t: int = l;
      l = r;
      r = t;
    }
    check = (check + l + r) & 16777215;
  }
  print(check);
  return check % 65536;
}|};
  }

let spmv =
  {
    name = "spmv";
    family = Kernel;
    descr =
      "sparse matrix-vector product in CSR form over a 640 KiB index \
       structure (OSKI-style memory-bound kernel)";
    source =
      {|global col_idx: int[40960];
global row_start: int[2048];
global vals: int[40960];
global xvec: int[16384];
global yvec: int[2048];

fn main() -> int {
  // 2048 rows x 20 nonzeros, pseudo-random scattered columns
  var seed: int = 91;
  for r = 0 to 2048 { row_start[r] = r * 20; }
  for i = 0 to 40960 {
    seed = (seed * 1103515245 + 12345) & 1073741823;
    col_idx[i] = seed & 16383;
    vals[i] = (seed >> 8) & 255;
  }
  for i = 0 to 16384 { xvec[i] = (i * 31) & 1023; }
  // several products amortize setup, as iterative solvers do
  var total: int = 0;
  for rep = 0 to 4 {
    for r = 0 to 2048 {
      var acc: int = 0;
      var lo: int = row_start[r];
      for k = lo to lo + 20 {
        acc = acc + vals[k] * xvec[col_idx[k]];
      }
      yvec[r] = acc & 1048575;
      total = (total + acc) & 1073741823;
    }
  }
  print(total);
  return total % 65536;
}|};
  }

let all : t list =
  [
    adpcm; mcf_spars; matmul; fir; crc32; bitcount; dijkstra; qsort_bench;
    histogram; nbody; stencil2d; susan_edge; sha_mix; strsearch; jacobi; lud;
    blowfish_mix; spmv;
  ]

let names = List.map (fun w -> w.name) all

let by_name n = List.find_opt (fun w -> w.name = n) all

let by_name_exn n =
  match by_name n with
  | Some w -> w
  | None -> invalid_arg ("Workloads.by_name_exn: unknown workload " ^ n)

(* compiled programs, memoized *)
let cache : (string, Mira.Ir.program) Hashtbl.t = Hashtbl.create 16

let program (w : t) : Mira.Ir.program =
  match Hashtbl.find_opt cache w.name with
  | Some p -> p
  | None ->
    let p =
      match Mira.Lower.compile_source w.source with
      | Ok p -> p
      | Error e -> failwith (Printf.sprintf "workload %s: %s" w.name e)
    in
    Hashtbl.replace cache w.name p;
    p
