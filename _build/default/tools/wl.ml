(* Maintenance utility: run every workload on the simulator and print the
   per-program stats (steps, CPI, memory-miss rates, return value).  Use it
   to regenerate the pinned checksums in test/test_workloads.ml after an
   intentional workload change. *)
let () =
  List.iter
    (fun (w : Workloads.t) ->
      let p = Workloads.program w in
      match Mach.Sim.run p with
      | r ->
        let g c = float_of_int (Mach.Counters.get r.Mach.Sim.counters c) in
        let tot = g Mach.Counters.TOT_INS in
        Printf.printf
          "%-10s steps=%8d cpi=%.2f l1stm/ki=%6.2f l2stm/ki=%6.3f ret=%s\n"
          w.Workloads.name r.Mach.Sim.steps
          (float_of_int r.Mach.Sim.cycles /. float_of_int r.Mach.Sim.steps)
          (1000. *. g Mach.Counters.L1_STM /. tot)
          (1000. *. g Mach.Counters.L2_STM /. tot)
          (Mira.Interp.value_to_string r.Mach.Sim.ret)
      | exception e ->
        Printf.printf "%-10s FAILED: %s\n" w.Workloads.name
          (Printexc.to_string e))
    Workloads.all
