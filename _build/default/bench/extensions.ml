(* Extension experiments beyond the paper's own figures, implementing two
   of the research directions it points at:

   tab6 — method-specific compilation (the paper's ref [53]): a learned
   model picks an optimization pipeline per FUNCTION.

   tab7 — unroll-factor prediction (the paper's ref [25], Stephenson &
   Amarasinghe): supervised multiclass classification of the best unroll
   factor from static features. *)

let amd = Mach.Config.default

(* ------------------------------------------------------------------ *)
(* Function-heterogeneous programs for the method-specific experiment:
   each has a long-trip numeric kernel (aggressive loop optimization pays)
   and a hot helper whose loops have literal short trip counts (the unroll
   guard and extra loop blocks are pure overhead there, so the light
   pipeline wins).  The paper's ref [53] observed exactly this shape in
   Java methods: optimization levels must be chosen per method. *)

let mixed_source ~seed ~short_trips ~helper_calls ~kernel_iters =
  Printf.sprintf
    {|global data: int[4096];
global table: int[256];

// hot helper: literal %d-trip loop, called %d times
fn probe(k: int) -> int {
  var s: int = 0;
  for j = 0 to %d {
    s = s + data[(k * 7 + j * 13) & 4095] * 3;
  }
  return s & 65535;
}

// cold reporting helper: sizeable, called once; aggressive compilation
// of this function is wasted compile time
fn report(seed: int) -> int {
  var h: int = seed;
  for i = 0 to 256 {
    var t: int = table[i & 255];
    h = (h * 31 + t) & 1048575;
    h = h ^ (t << 3);
    h = (h + (t * 7)) & 1048575;
    h = h ^ (h >> 5);
    h = (h + (t & 63)) & 1048575;
  }
  return h;
}

// numeric kernel: long counted loops, unroll/licm-friendly
fn smooth(rounds: int) -> int {
  var acc: int = 0;
  for r = 0 to rounds {
    for i = 0 to %d {
      var v: int = data[i & 4095] + data[(i + 64) & 4095];
      acc = (acc + v * 5 + r * 3) & 1048575;
    }
  }
  return acc;
}

fn main() -> int {
  var x: int = %d;
  for i = 0 to 4096 {
    x = (x * 1103515245 + 12345) & 1073741823;
    data[i] = x & 8191;
  }
  for i = 0 to 256 { table[i] = (i * 17) & 255; }
  var total: int = 0;
  for it = 0 to %d {
    total = (total + probe(it + table[it & 255])) & 16777215;
  }
  total = (total + smooth(2)) & 16777215;
  total = (total + report(total)) & 16777215;
  print(total);
  return total %% 65536;
}|}
    short_trips helper_calls short_trips kernel_iters seed helper_calls

let mixed_programs =
  List.map
    (fun (name, seed, st, hc, ki) ->
      (name, Mira.Lower.compile_source_exn (mixed_source ~seed ~short_trips:st ~helper_calls:hc ~kernel_iters:ki)))
    [
      ("mixed1", 11, 2, 9000, 2048);
      ("mixed2", 23, 3, 8000, 1536);
      ("mixed3", 37, 2, 10000, 1024);
      ("mixed4", 51, 4, 7000, 2048);
      ("mixed5", 77, 2, 8500, 1792);
      ("mixed6", 93, 3, 9500, 1280);
    ]

let tab6 () =
  Util.header
    "Tab 6 (extension): method-specific compilation — a pipeline per function";
  let workload name = (name, Workloads.program (Workloads.by_name_exn name)) in
  let train_progs =
    List.filteri (fun i _ -> i < 4) mixed_programs
    @ List.map workload
        [ "adpcm"; "crc32"; "dijkstra"; "qsort"; "histogram"; "sha_mix";
          "stencil2d"; "fir"; "blowfish" ]
  in
  let test_progs =
    List.filteri (fun i _ -> i >= 4) mixed_programs
    @ List.map workload [ "bitcount"; "susan"; "lud"; "matmul" ]
  in
  Fmt.pr "labelling functions of %d training programs (each class tried)...@."
    (List.length train_progs);
  let instances =
    List.concat_map
      (fun (name, p) -> Icc.Perfunc.gen_instances ~config:amd ~prog:name p)
      train_progs
  in
  Fmt.pr "%d decision-relevant function instances; class distribution: %s@."
    (List.length instances)
    (String.concat ", "
       (List.mapi
          (fun c (cname, _) ->
            Printf.sprintf "%s=%d" cname
              (List.length
                 (List.filter (fun i -> i.Icc.Perfunc.label = c) instances)))
          Icc.Perfunc.classes));
  match Icc.Perfunc.train instances with
  | None -> Fmt.epr "no model@."
  | Some model ->
    (* the JIT objective everywhere: compile cycles + run cycles *)
    let run_cycles q =
      match Mach.Sim.run ~config:amd q with
      | r -> float_of_int r.Mach.Sim.cycles
      | exception _ -> infinity
    in
    let class_index name =
      let rec idx i = function
        | [] -> 0
        | (n, _) :: rest -> if n = name then i else idx (i + 1) rest
      in
      idx 0 Icc.Perfunc.classes
    in
    let rows, ratios =
      List.fold_left
        (fun (rows, ratios) (name, p) ->
          let c0 = run_cycles p in
          let per_fn, choices = Icc.Perfunc.compile model p in
          let cm =
            run_cycles per_fn
            +. float_of_int
                 (Icc.Perfunc.total_compile_cost p (fun f ->
                      class_index (List.assoc f choices)))
          in
          (* best single class applied uniformly, same objective *)
          let uniform_costs =
            List.mapi
              (fun ci (cname, seq) ->
                ( cname,
                  run_cycles (Passes.Pass.apply_per_function (fun _ -> seq) p)
                  +. float_of_int
                       (Icc.Perfunc.total_compile_cost p (fun _ -> ci)) ))
              Icc.Perfunc.classes
          in
          let best_uni_name, best_uni =
            List.fold_left
              (fun (bn, bc) (n', c) -> if c < bc then (n', c) else (bn, bc))
              ("", infinity) uniform_costs
          in
          let chosen =
            String.concat " "
              (List.map (fun (f, c) -> Printf.sprintf "%s:%s" f c) choices)
          in
          ( [
              name;
              Printf.sprintf "%.2fx" (c0 /. cm);
              Printf.sprintf "%.2fx (%s)" (c0 /. best_uni) best_uni_name;
              chosen;
            ]
            :: rows,
            (cm, best_uni) :: ratios ))
        ([], []) test_progs
    in
    Util.print_table
      [ "program"; "per-function model"; "best uniform class"; "choices" ]
      (List.rev rows);
    Fmt.pr
      "(speedups are total-cost: compile cycles + run cycles, over an O0 \
       baseline that compiles for free)@.";
    let g f = Util.geomean (List.map f ratios) in
    let rel = g (fun (cm, bu) -> bu /. cm) in
    Fmt.pr
      "@.headline: learned per-function tiering is %.1f%% %s the best \
       whole-program pipeline on unseen programs (the ref-[53] result: \
       choose where to spend compile time)@."
      (Float.abs (100.0 *. (rel -. 1.0)))
      (if rel >= 1.0 then "faster than" else "slower than")

(* ------------------------------------------------------------------ *)

let unroll_classes =
  [ ("none", None); ("x2", Some Passes.Pass.Unroll2);
    ("x4", Some Passes.Pass.Unroll4); ("x8", Some Passes.Pass.Unroll8) ]

let unroll_seq = function
  | None -> Passes.Pass.[ Const_prop; Const_fold; Cse; Copy_prop; Dce ]
  | Some u -> Passes.Pass.[ Const_prop; Const_fold; u; Cse; Copy_prop; Dce ]

let tab7 () =
  Util.header
    "Tab 7 (extension): predicting the unroll factor (Stephenson-style)";
  let progs =
    List.map (fun w -> (w.Workloads.name, Workloads.program w)) Workloads.all
  in
  Fmt.pr "measuring all %d unroll factors on %d programs...@."
    (List.length unroll_classes) (List.length progs);
  let measured =
    List.map
      (fun (name, p) ->
        let costs =
          Array.of_list
            (List.map
               (fun (_, u) ->
                 Icc.Characterize.eval_sequence ~config:amd p (unroll_seq u))
               unroll_classes)
        in
        (name, Icc.Features.vector_of_program p, costs))
      progs
  in
  (* leave-one-program-out: predict the factor, score realized cycles *)
  let results =
    List.map
      (fun (held, feats, costs) ->
        let tr = List.filter (fun (n, _, _) -> n <> held) measured in
        let xs = Array.of_list (List.map (fun (_, f, _) -> f) tr) in
        let ys =
          Array.of_list
            (List.map (fun (_, _, c) -> Mlkit.Linalg.argmin c) tr)
        in
        let d0 = Mlkit.Dataset.make xs ys in
        let d = { d0 with Mlkit.Dataset.nclasses = List.length unroll_classes } in
        let tree = Mlkit.Dtree.fit d in
        let pred = Mlkit.Dtree.predict tree feats in
        let best = Mlkit.Linalg.argmin costs in
        (held, pred, best, costs))
      measured
  in
  let correct =
    List.length (List.filter (fun (_, p, b, _) -> p = b) results)
  in
  (* realized performance: predicted factor vs best and vs always-x4 *)
  let realized f =
    Util.geomean
      (List.map
         (fun (_, pred, best, costs) ->
           costs.(f (pred, best, costs)) /. costs.(best))
         results)
  in
  let pred_gap = realized (fun (p, _, _) -> p) in
  let fixed4_gap = realized (fun _ -> 2 (* index of x4 *)) in
  let none_gap = realized (fun _ -> 0) in
  Util.print_table
    [ "program"; "predicted"; "best"; "hit" ]
    (List.map
       (fun (n, p, b, _) ->
         [
           n;
           fst (List.nth unroll_classes p);
           fst (List.nth unroll_classes b);
           (if p = b then "*" else "");
         ])
       results);
  Fmt.pr
    "@.prediction accuracy (LOPO): %d/%d = %.0f%% (majority class would get \
     %.0f%%)@."
    correct (List.length results)
    (100.0 *. float_of_int correct /. float_of_int (List.length results))
    (let counts = Array.make (List.length unroll_classes) 0 in
     List.iter (fun (_, _, b, _) -> counts.(b) <- counts.(b) + 1) results;
     100.0
     *. float_of_int (Array.fold_left max 0 counts)
     /. float_of_int (List.length results));
  Fmt.pr
    "realized cycles vs per-program best factor: predicted %.1f%% worse | \
     always-x4 %.1f%% worse | never-unroll %.1f%% worse@."
    (100.0 *. (pred_gap -. 1.0))
    (100.0 *. (fixed4_gap -. 1.0))
    (100.0 *. (none_gap -. 1.0));
  Fmt.pr
    "headline: on this machine model (no instruction cache) large factors \
     almost always win, so the task is easier than on real hardware; the \
     predictor still matches the per-program oracle more closely than any \
     fixed policy (cf. Stephenson & Amarasinghe, the paper's ref [25], who \
     report similarly modest wins)@."


(* ------------------------------------------------------------------ *)
(* tab8 — cross-architecture adaptation (Sec. IV: "intelligent compilers
   will not only use program characteristics, but will use architecture
   features to adapt to new computing systems").

   A new machine (the embedded target) appears.  WITHOUT any training on
   it, the compiler predicts optimization sequences for each program by
   (1) describing every known machine with the architecture feature
   vector (Mach.Config.features), (2) transferring knowledge from the
   machine most similar to the new one, and (3) inside that machine's
   knowledge base, using program-feature nearest neighbours as usual.
   The realized speedups on the new machine are compared against the
   fixed pipelines and against the skyline of training directly on the
   new machine. *)

let tab8 () =
  Util.header
    "Tab 8 (extension): adapting to a new architecture from its features";
  let new_arch = Mach.Config.embedded in
  let known = [ Mach.Config.amd_like; Mach.Config.c6713_like ] in
  (* architecture similarity from the standardized feature vectors *)
  let arch_vec c = Array.of_list (List.map snd (Mach.Config.features c)) in
  let all_vecs = Array.of_list (List.map arch_vec (new_arch :: known)) in
  let scaler = Mlkit.Scaling.fit all_vecs in
  let dist c =
    Mlkit.Linalg.euclidean
      (Mlkit.Scaling.apply scaler (arch_vec new_arch))
      (Mlkit.Scaling.apply scaler (arch_vec c))
  in
  let source =
    List.fold_left
      (fun best c -> if dist c < dist best then c else best)
      (List.hd known) (List.tl known)
  in
  List.iter
    (fun c ->
      Fmt.pr "architecture distance %s -> %s: %.2f@."
        new_arch.Mach.Config.name c.Mach.Config.name (dist c))
    known;
  Fmt.pr "transferring from the most similar known machine: %s@."
    source.Mach.Config.name;
  let kb_src = Util.kb_for source in
  let kb_new = Util.kb_for new_arch in    (* used only for the skyline *)
  let test_names = [ "adpcm"; "histogram"; "dijkstra"; "lud"; "stencil2d"; "spmv" ] in
  let rows, gaps =
    List.fold_left
      (fun (rows, gaps) name ->
        let p = Workloads.program (Workloads.by_name_exn name) in
        let eval = Icc.Characterize.eval_sequence ~config:new_arch p in
        let c0 = eval [] in
        (* prediction transferred from the source machine, leave-one-out *)
        let kb_loo = Knowledge.Kb.without_program kb_src ~prog:name in
        let feats =
          Icc.Features.restrict_to_similarity (Icc.Features.extract p)
        in
        (* candidates: the top sequence of each of the 3 nearest source
           programs; transfer the one with the strongest relative
           improvement on ITS OWN program (most confident evidence) —
           all decided from source-machine data only *)
        let nbs =
          Search.Focused.nearest_programs kb_loo
            ~arch:source.Mach.Config.name ~target_features:feats ~n:3
        in
        let candidates =
          List.filter_map
            (fun nb ->
              match
                ( Knowledge.Kb.top_experiments kb_loo ~prog:nb
                    ~arch:source.Mach.Config.name ~k:1 ~length:5 (),
                  Knowledge.Kb.characterization kb_loo ~prog:nb
                    ~arch:source.Mach.Config.name )
              with
              | e :: _, Some ch ->
                let rel =
                  float_of_int ch.Knowledge.Kb.o0_cycles
                  /. float_of_int e.Knowledge.Kb.cycles
                in
                Some (rel, e.Knowledge.Kb.seq)
              | _ -> None)
            nbs
        in
        let seq =
          match List.sort (fun (a, _) (b, _) -> compare b a) candidates with
          | (_, s) :: _ -> s
          | [] -> Passes.Pass.o2
        in
        let ct = eval seq in
        let c2 = eval Passes.Pass.o2 in
        let rnd =
          (* average of 5 random length-5 sequences: uninformed baseline *)
          let rng = Random.State.make [| 2026 |] in
          let cs = List.map eval (Search.Space.sample_distinct rng 5) in
          List.fold_left ( +. ) 0.0 cs /. 5.0
        in
        (* skyline: the best length-5 sequence the new machine's own KB
           knows for this program *)
        let csky =
          match
            Knowledge.Kb.top_experiments kb_new ~prog:name
              ~arch:new_arch.Mach.Config.name ~k:1 ~length:5 ()
          with
          | e :: _ -> float_of_int e.Knowledge.Kb.cycles
          | [] -> ct
        in
        ( [
            name;
            Printf.sprintf "%.2fx" (c0 /. ct);
            Printf.sprintf "%.2fx" (c0 /. rnd);
            Printf.sprintf "%.2fx" (c0 /. c2);
            Printf.sprintf "%.2fx" (c0 /. csky);
            Passes.Pass.sequence_to_string seq;
          ]
          :: rows,
          (ct, rnd, c2, csky) :: gaps ))
      ([], []) test_names
  in
  Util.print_table
    [ "program"; "transferred"; "random-5 avg"; "O2"; "native skyline";
      "sequence" ]
    (List.rev rows);
  let g f = Util.geomean (List.map f gaps) in
  let gap x = 100.0 *. (x -. 1.0) in
  Fmt.pr
    "@.geomean gap to the native-trained length-5 skyline on the NEW \
     machine: transferred %.1f%% | random %.1f%% | O2 %.1f%%@."
    (gap (g (fun (ct, _, _, sky) -> ct /. sky)))
    (gap (g (fun (_, r, _, sky) -> r /. sky)))
    (gap (g (fun (_, _, c2, sky) -> c2 /. sky)));
  Fmt.pr
    "headline: architecture features route the transfer to the most \
     similar known machine; the transferred predictions recover most of \
     the native skyline with zero experiments on the new system@."
