(* Figures 3 and 4 of the paper: performance-counter characterization and
   the counter-based optimization model (PCModel), on the AMD-like machine.

   Fig 3: the counter values of the mcf analogue at -O0, relative to the
   per-counter average over the rest of the suite (events normalized per
   instruction).  The paper's headline: up to 38x more L2 store misses
   than average.

   Fig 4: counters and speedup of mcf under -Ofast and under the sequence
   selected by the performance-counter model (trained leave-one-out),
   both relative to -O0.  Paper: -Ofast 1.24x with no effect on the cache
   counters; PCModel 2.33x with ~20% fewer L1 misses. *)

let config = Mach.Config.default (* amd-like *)
let target_name = "mcf_spars"

let interesting_counters =
  [ "L1_TCM"; "L1_TCA"; "L2_TCM"; "L2_TCA"; "L2_STM"; "L2_LDM"; "BR_MSP";
    "LD_INS"; "SR_INS"; "DIV_INS"; "FP_INS" ]

let fig3 () =
  Util.header
    "Fig 3: counter values of mcf_spars at -O0 relative to the suite average";
  let kb = Util.kb_for config in
  let arch = config.Mach.Config.name in
  let char_of prog =
    match Knowledge.Kb.characterization kb ~prog ~arch with
    | Some c -> c.Knowledge.Kb.counters
    | None -> failwith ("missing characterization for " ^ prog)
  in
  let mcf = char_of target_name in
  let others =
    List.filter (fun w -> w.Workloads.name <> target_name) Workloads.all
    |> List.map (fun w -> char_of w.Workloads.name)
  in
  let avg name =
    let vals = List.map (fun c -> List.assoc name c) others in
    List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals)
  in
  let rows =
    List.map
      (fun name ->
        let m = List.assoc name mcf in
        let a = avg name in
        let ratio = if a < 1e-12 then Float.nan else m /. a in
        [
          name;
          Printf.sprintf "%.5f" m;
          Printf.sprintf "%.5f" a;
          (if Float.is_nan ratio then "-" else Printf.sprintf "%.1fx" ratio);
        ])
      interesting_counters
  in
  Util.print_table
    [ "counter"; "mcf (/ins)"; "suite avg (/ins)"; "ratio" ]
    rows;
  let l2stm_ratio =
    List.assoc "L2_STM" mcf /. max 1e-12 (avg "L2_STM")
  in
  Fmt.pr
    "@.headline: mcf_spars has %.0fx more L2 store misses per instruction \
     than the suite average (paper: up to 38x)@."
    l2stm_ratio

let fig4 () =
  Util.header
    "Fig 4: mcf_spars under -Ofast vs the performance-counter model (PCModel)";
  let kb = Util.kb_for config in
  let arch = config.Mach.Config.name in
  (* leave-one-out: the model must not have seen mcf *)
  let kb_loo = Knowledge.Kb.without_program kb ~prog:target_name in
  let target = Workloads.program (Workloads.by_name_exn target_name) in
  match Icc.Pcmodel.train kb_loo ~arch with
  | None -> Fmt.epr "PCModel training failed (empty knowledge base?)@."
  | Some model ->
    (* one -O0 profiling run characterizes the new program *)
    let profile = Mach.Sim.run ~config target in
    let counters = Icc.Characterize.counter_assoc profile.Mach.Sim.counters in
    let nbs = Icc.Pcmodel.neighbors model counters in
    Fmt.pr "nearest programs by counter signature: %s@."
      (String.concat ", "
         (List.map (fun (p, _, _) -> p) (List.filteri (fun i _ -> i < 3) nbs)));
    let seq = Icc.Pcmodel.predict model counters in
    Fmt.pr "PCModel selects: %s@." (Passes.Pass.sequence_to_string seq);

    let run_with tag sequence =
      let p' = Passes.Pass.apply_sequence sequence target in
      let r = Mach.Sim.run ~config p' in
      (tag, r)
    in
    let _, r0 = run_with "O0" [] in
    let _, rfast = run_with "FAST" Passes.Pass.ofast in
    let _, rpc = run_with "PCModel" seq in
    let counter_ratio (r : Mach.Sim.result) name =
      (* events per instruction relative to O0, as the paper plots *)
      let rate (res : Mach.Sim.result) =
        let c =
          match Mach.Counters.of_name name with
          | Some c -> c
          | None -> failwith name
        in
        float_of_int (Mach.Counters.get res.Mach.Sim.counters c)
        /. float_of_int
             (max 1 (Mach.Counters.get res.Mach.Sim.counters Mach.Counters.TOT_INS))
      in
      let base = rate r0 in
      if base < 1e-12 then Float.nan else rate r /. base
    in
    Util.subheader "counter rates relative to -O0 (1.00 = unchanged)";
    Util.print_table
      [ "counter"; "FAST"; "PCModel" ]
      (List.map
         (fun name ->
           let f v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" v in
           [ name; f (counter_ratio rfast name); f (counter_ratio rpc name) ])
         [ "L1_TCM"; "L1_TCA"; "L2_TCA"; "L2_TCM"; "L2_STM"; "BR_MSP" ]);
    let s_fast = Mach.Sim.speedup ~base:r0 ~opt:rfast in
    let s_pc = Mach.Sim.speedup ~base:r0 ~opt:rpc in
    Fmt.pr "@.cycles: O0 %d | FAST %d | PCModel %d@." r0.Mach.Sim.cycles
      rfast.Mach.Sim.cycles rpc.Mach.Sim.cycles;
    Fmt.pr
      "speedup over O0: FAST %.2fx, PCModel %.2fx (PCModel %.2fx over FAST)@."
      s_fast s_pc (s_pc /. s_fast);
    Fmt.pr "(paper: FAST 1.24x, PCModel 2.33x, i.e. 1.88x over FAST)@."

let run () =
  fig3 ();
  fig4 ()
