(* Bechamel microbenchmarks of the hot paths: front end, pass application,
   simulation, feature extraction, model queries.  One Test.make per
   component; throughput sanity rather than paper reproduction. *)

open Bechamel
open Toolkit

let adpcm_src = (Workloads.by_name_exn "adpcm").Workloads.source

let small_src =
  {|fn main() -> int {
      var s: int = 0;
      for i = 0 to 64 { s = s + i * 3; }
      return s;
    }|}

let small_prog = Mira.Lower.compile_source_exn small_src
let adpcm_prog = Workloads.program (Workloads.by_name_exn "adpcm")

let knn_model =
  let rng = Random.State.make [| 4 |] in
  let xs =
    Array.init 64 (fun _ -> Array.init 32 (fun _ -> Random.State.float rng 1.0))
  in
  let ys = Array.init 64 (fun i -> i mod 3) in
  Mlkit.Knn.fit ~k:3 (Mlkit.Dataset.make xs ys)

let probe = Array.init 32 (fun i -> float_of_int i /. 32.0)

let tests =
  [
    Test.make ~name:"frontend: parse+typecheck+lower adpcm"
      (Staged.stage (fun () -> Mira.Lower.compile_source_exn adpcm_src));
    Test.make ~name:"passes: O2 pipeline on adpcm"
      (Staged.stage (fun () -> Passes.Pass.apply_sequence Passes.Pass.o2 adpcm_prog));
    Test.make ~name:"passes: unroll4 on adpcm"
      (Staged.stage (fun () ->
           Passes.Pass.apply_sequence
             Passes.Pass.[ Const_prop; Unroll4 ]
             adpcm_prog));
    Test.make ~name:"interp: small loop (~500 steps)"
      (Staged.stage (fun () -> Mira.Interp.run small_prog));
    Test.make ~name:"sim: small loop with caches+predictor"
      (Staged.stage (fun () -> Mach.Sim.run small_prog));
    Test.make ~name:"features: extract from adpcm"
      (Staged.stage (fun () -> Icc.Features.extract adpcm_prog));
    Test.make ~name:"mlkit: knn predict (64x32)"
      (Staged.stage (fun () -> Mlkit.Knn.predict knn_model probe));
  ]

let run () =
  Util.header "Microbenchmarks (bechamel)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let test = Test.make_grouped ~name:"icc" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] ->
        let ns = est in
        let human =
          if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
          else Printf.sprintf "%.0f ns" ns
        in
        rows := [ name; human ] :: !rows
      | _ -> rows := [ name; "-" ] :: !rows)
    clock;
  Util.print_table [ "benchmark"; "time/run" ]
    (List.sort compare !rows)
