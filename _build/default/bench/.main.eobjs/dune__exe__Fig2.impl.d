bench/fig2.ml: Array Fmt Hashtbl Icc Knowledge List Mach Passes Printf Random Search String Util Workloads
