bench/micro.ml: Analyze Array Bechamel Benchmark Hashtbl Icc Instance List Mach Measure Mira Mlkit Passes Printf Random Staged Test Time Toolkit Util Workloads
