bench/main.ml: Array Extensions Fig2 Fig34 Fmt List Micro String Sys Tables Unix Util
