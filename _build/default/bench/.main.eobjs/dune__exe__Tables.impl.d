bench/tables.ml: Array Fmt Icc List Mach Mira Mlkit Passes Printf Search String Util Workloads
