bench/fig34.ml: Float Fmt Icc Knowledge List Mach Passes Printf String Util Workloads
