bench/main.mli:
