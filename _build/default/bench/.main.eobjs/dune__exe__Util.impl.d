bench/util.ml: Array Fmt Icc Knowledge List Mach Printf String Sys Unix Workloads
