bench/extensions.ml: Array Float Fmt Icc Knowledge List Mach Mira Mlkit Passes Printf Random Search String Util Workloads
