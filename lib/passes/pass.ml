module Ir = Mira.Ir

(* The pass registry: the paper's "set of 13 optimizations" (unroll factors
   counted individually, per its footnote 1) plus [Pack], our analogue of
   the 64->32-bit pointer narrowing that the paper's counter model
   discovered for 181.mcf — a specialized transformation deliberately
   absent from the fixed O1/O2/Ofast pipelines, exactly as PathScale's
   -Ofast did not narrow pointers.  Sequence application and the fixed
   pipelines live here too. *)

type t =
  | Const_fold
  | Const_prop
  | Copy_prop
  | Dce
  | Cse
  | Licm
  | Strength
  | Unroll2
  | Unroll4
  | Unroll8
  | Inline
  | Simplify_cfg
  | Peephole
  | Pack

let all : t list =
  [
    Const_fold; Const_prop; Copy_prop; Dce; Cse; Licm; Strength; Unroll2;
    Unroll4; Unroll8; Inline; Simplify_cfg; Peephole; Pack;
  ]

let count = List.length all

let name = function
  | Const_fold -> "cfold"
  | Const_prop -> "cprop"
  | Copy_prop -> "copyprop"
  | Dce -> "dce"
  | Cse -> "cse"
  | Licm -> "licm"
  | Strength -> "strength"
  | Unroll2 -> "unroll2"
  | Unroll4 -> "unroll4"
  | Unroll8 -> "unroll8"
  | Inline -> "inline"
  | Simplify_cfg -> "simplify"
  | Peephole -> "peephole"
  | Pack -> "pack"

let of_name s =
  match List.find_opt (fun p -> name p = s) all with
  | Some p -> Some p
  | None -> None

let of_name_exn s =
  match of_name s with
  | Some p -> p
  | None -> invalid_arg ("Pass.of_name_exn: unknown pass " ^ s)

let is_unroll = function Unroll2 | Unroll4 | Unroll8 -> true | _ -> false

(* stable integer encoding, used by feature vectors and the knowledge base *)
let to_index (p : t) : int =
  let rec idx i = function
    | [] -> assert false
    | x :: rest -> if x = p then i else idx (i + 1) rest
  in
  idx 0 all

let of_index i = List.nth all i

let apply_raw (pass : t) (p : Ir.program) : Ir.program =
  match pass with
  | Const_fold -> Const_fold.run p
  | Const_prop -> Const_prop.run p
  | Copy_prop -> Copy_prop.run p
  | Dce -> Dce.run p
  | Cse -> Lvn.run p
  | Licm -> Licm.run p
  | Strength -> Strength.run p
  | Unroll2 -> Unroll.run2 p
  | Unroll4 -> Unroll.run4 p
  | Unroll8 -> Unroll.run8 p
  | Inline -> Inline.run p
  | Simplify_cfg -> Simplify_cfg.run p
  | Peephole -> Peephole.run p
  | Pack -> Pack.run p

(* Observability: one applications counter plus a per-pass duration
   histogram (index-aligned with [all]); each application is a trace
   span (cat "passes") whose end event carries the resulting program
   size.  The un-instrumented path is a counter bump and one branch. *)
let applied_count = Obs.Metrics.counter "passes.applied"

let pass_ms =
  Array.of_list
    (List.map (fun p -> Obs.Metrics.histogram ("passes." ^ name p ^ "_ms")) all)

let apply (pass : t) (p : Ir.program) : Ir.program =
  Obs.Metrics.incr applied_count;
  if not (Obs.Trace.enabled () || !Obs.Metrics.timing) then apply_raw pass p
  else
    Obs.span_with ~cat:"passes" ~hist:pass_ms.(to_index pass)
      ("pass." ^ name pass)
      ~end_args:(fun p' -> [ ("size", Obs.Trace.Int (Ir.program_size p')) ])
      (fun () -> apply_raw pass p)

(* Whole-program passes cannot be applied to a single function: inlining
   rewrites callers and packing retypes globals shared by everyone. *)
let is_function_local = function
  | Inline | Pack -> false
  | Const_fold | Const_prop | Copy_prop | Dce | Cse | Licm | Strength
  | Unroll2 | Unroll4 | Unroll8 | Simplify_cfg | Peephole ->
    true

(* Apply a pass to one function only, leaving every other function (and
   the globals) untouched — the substrate of method-specific compilation.
   Only valid for function-local passes. *)
let apply_to_function (pass : t) (p : Ir.program) (fname : string) : Ir.program
    =
  if not (is_function_local pass) then
    invalid_arg
      (Printf.sprintf "Pass.apply_to_function: %s is whole-program" (name pass));
  let p' = apply pass p in
  { p with Ir.funcs = Ir.SMap.add fname (Ir.find_func p' fname) p.Ir.funcs }

let apply_sequence_to_function (seq : t list) (p : Ir.program)
    (fname : string) : Ir.program =
  List.fold_left (fun p pass -> apply_to_function pass p fname) p seq

(* Apply a per-function choice of sequences across the whole program. *)
let apply_per_function (choice : string -> t list) (p : Ir.program) :
    Ir.program =
  Ir.SMap.fold
    (fun fname _ acc -> apply_sequence_to_function (choice fname) acc fname)
    p.Ir.funcs p

(* A sequence is valid when it contains at most one unroll pass (the paper's
   footnote 1 constraint). *)
let sequence_valid (seq : t list) : bool =
  List.length (List.filter is_unroll seq) <= 1

let sequence_to_string seq = String.concat "," (List.map name seq)

(* lexicographic by pass index: sorting a batch by this order clusters
   sequences that share a prefix, which is what keeps the engine's
   compilation-trie LRU window walking one subtree at a time *)
let compare_sequence (a : t list) (b : t list) : int =
  let rec go a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: a', y :: b' ->
      let c = Int.compare (to_index x) (to_index y) in
      if c <> 0 then c else go a' b'
  in
  go a b

let apply_sequence (seq : t list) (p : Ir.program) : Ir.program =
  let go () = List.fold_left (fun p pass -> apply pass p) p seq in
  if not (Obs.Trace.enabled ()) then go ()
  else
    Obs.Trace.with_span ~cat:"passes"
      ~args:[ ("seq", Obs.Trace.Str (sequence_to_string seq)) ]
      "passes.sequence" go

(* Version tag mixed into every persistent evaluation-cache key.  Bump the
   leading number whenever any pass's observable behaviour changes (a bug
   fix, a strength-reduction pattern added, ...): that is the cache
   invalidation rule, and it is deliberately manual — pass behaviour is
   code, and code changes are what code review sees.  The pass roster is
   included so adding or renaming a pass invalidates automatically. *)
let version = "1:" ^ String.concat "," (List.map name all)

let sequence_of_string s =
  if String.trim s = "" then Ok []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: rest -> (
        match of_name (String.trim x) with
        | Some p -> go (p :: acc) rest
        | None -> Error (Printf.sprintf "unknown pass %S" x))
    in
    go [] parts

(* ------------------------------------------------------------------ *)
(* Fixed pipelines (the traditional compiler's hand-ordered levels).
   [ofast] plays the role of the paper's PathScale -Ofast baseline. *)

let o0 : t list = []

let o1 : t list = [ Simplify_cfg; Const_fold; Const_prop; Peephole; Dce ]

let o2 : t list =
  o1 @ [ Copy_prop; Cse; Licm; Strength; Simplify_cfg; Const_fold; Dce ]

let ofast : t list =
  [
    Inline; Simplify_cfg; Const_fold; Const_prop; Copy_prop; Cse; Licm;
    Strength; Unroll4; Simplify_cfg; Const_fold; Const_prop; Copy_prop; Cse;
    Peephole; Dce; Simplify_cfg;
  ]

let level_of_string = function
  | "O0" | "o0" -> Some o0
  | "O1" | "o1" -> Some o1
  | "O2" | "o2" -> Some o2
  | "Ofast" | "ofast" | "O3" | "o3" -> Some ofast
  | _ -> None
