(** The optimization-pass registry: the paper's "set of 13 optimizations"
    (unroll factors counted individually, per its footnote 1) plus
    {!Pack}, the analogue of the pointer narrowing its counter model
    discovered for 181.mcf.  Sequences of these passes form the
    phase-ordering space that every experiment searches. *)

type t =
  | Const_fold     (** evaluate constant expressions; fold constant branches *)
  | Const_prop     (** forward dataflow constant propagation *)
  | Copy_prop      (** forward dataflow copy propagation *)
  | Dce            (** liveness-driven dead-code elimination *)
  | Cse            (** local value numbering incl. redundant-load elimination *)
  | Licm           (** loop-invariant code motion into preheaders *)
  | Strength       (** multiplies to shifts / shift-add sequences *)
  | Unroll2        (** counted-loop unrolling, factor 2 *)
  | Unroll4        (** counted-loop unrolling, factor 4 *)
  | Unroll8        (** counted-loop unrolling, factor 8 *)
  | Inline         (** inlining of small non-recursive callees *)
  | Simplify_cfg   (** branch folding, jump threading, block merging *)
  | Peephole       (** algebraic identities *)
  | Pack           (** global-array packing (8 -> 4 byte elements) *)

(** all passes, in canonical order *)
val all : t list

val count : int
val name : t -> string
val of_name : string -> t option

(** @raise Invalid_argument on an unknown name *)
val of_name_exn : string -> t

val is_unroll : t -> bool

(** stable integer encoding used by feature vectors and the knowledge base *)
val to_index : t -> int

val of_index : int -> t

(** apply one pass to a whole program; always semantics-preserving *)
val apply : t -> Mira.Ir.program -> Mira.Ir.program

(** a sequence is valid when it contains at most one unroll pass *)
val sequence_valid : t list -> bool

(** left-to-right application of a pass sequence *)
val apply_sequence : t list -> Mira.Ir.program -> Mira.Ir.program

(** [false] for whole-program passes (inlining, packing) *)
val is_function_local : t -> bool

(** apply a pass to one function, leaving the rest of the program alone —
    the substrate of method-specific (per-function) compilation.
    @raise Invalid_argument for whole-program passes *)
val apply_to_function : t -> Mira.Ir.program -> string -> Mira.Ir.program

val apply_sequence_to_function :
  t list -> Mira.Ir.program -> string -> Mira.Ir.program

(** optimize every function with its own sequence *)
val apply_per_function :
  (string -> t list) -> Mira.Ir.program -> Mira.Ir.program

val sequence_to_string : t list -> string

(** total order on sequences, lexicographic by {!to_index}: sorting by
    it clusters shared prefixes (the engine's batch scheduler uses this
    to keep its compilation-trie LRU local) *)
val compare_sequence : t list -> t list -> int

(** Version tag of the pass set, mixed into persistent evaluation-cache
    keys.  Bump its leading number whenever any pass's observable
    behaviour changes; the pass roster is included, so adding or renaming
    a pass invalidates cached results automatically. *)
val version : string

(** inverse of {!sequence_to_string}; [Error] names the unknown pass *)
val sequence_of_string : string -> (t list, string) result

(** {2 Fixed pipelines}

    Hand-ordered baselines.  [ofast] plays the role of the paper's
    PathScale [-Ofast]; none of them include {!Pack}. *)

val o0 : t list
val o1 : t list
val o2 : t list
val ofast : t list

(** ["O0" | "O1" | "O2" | "Ofast" | "O3"] (case-insensitive first letter) *)
val level_of_string : string -> t list option
