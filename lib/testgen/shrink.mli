(** Greedy counterexample minimization for Mira sources.

    Given a failing program (one where [fails source] is [true]), repeat
    until a fixpoint: try every single-step simplification — drop a
    helper function or global, delete a statement, splice a branch or
    loop body in place of the construct, replace an expression by one of
    its subexpressions or a constant — and restart from the first
    variant that still fails.  Big deletions are tried before small
    rewrites, so the descent is steep.

    [fails] is only ever applied to sources that parse and compile;
    variants the front end rejects (a deleted declaration whose uses
    remain, an ill-typed constant) are discarded without consulting it.
    The predicate must therefore treat its argument as a valid program
    and answer "does the bug still reproduce?". *)

(** [minimize ~fails src] is the minimized source, or [src] itself when
    it does not parse or nothing smaller still fails.  [max_steps]
    bounds the total number of candidate variants tried (default
    4000). *)
val minimize : ?max_steps:int -> fails:(string -> bool) -> string -> string

(** [report ~seed ~fails src] minimizes and formats the block test
    failures should print: the generator seed and the minimal failing
    program *)
val report : seed:int -> fails:(string -> bool) -> string -> string
