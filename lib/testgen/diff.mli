(** Differential testing of the execution engines.

    All three simulator engines must be bit-identical: the flat engine
    ({!Mira.Decode} / [Mach.Flatsim]) and the trace engine
    ([Mach.Mtrace] generation + [Mach.Replay]) are each held to the
    reference interpreter — same return value (to the bit, for floats),
    same printed output, same [steps], same trap message or fuel
    exhaustion, same cycle count and the same value in every counter of
    the bank, on every preset machine config.  This module runs a
    program through the engines and reports every field that disagrees,
    as human-readable one-line strings (tagged with the config and the
    disagreeing engine) suitable for test-failure messages and shrinker
    reports. *)

(** plain interpretation: [Interp.run] vs [Decode.run] (ret, output,
    steps, outcome kind incl. exact trap message) *)
val diff_plain : ?fuel:int -> Mira.Ir.program -> string list

(** Under the machine simulator, on one config: [Sim.run ~engine:Ref]
    as the oracle against [Flat] and [Trace] (ret, output, steps,
    cycles, the full counter bank, outcome kind incl. exact trap
    message), plus the persisted-trace leg: the trace is round-tripped
    through [Mtrace.encode]/[decode] (bit-exactness checked) and the
    decoded trace replayed against the same oracle, so the on-disk
    codec [Engine.Tstore] relies on sits inside the fuzzed surface *)
val diff_sim :
  ?config:Mach.Config.t -> ?fuel:int -> Mira.Ir.program -> string list

(** {!diff_sim} on every preset config ({!Mach.Config.all}) *)
val diff_sim_presets : ?fuel:int -> Mira.Ir.program -> string list

(** {!diff_plain} @ {!diff_sim_presets}: the full engine oracle (ref /
    flat / trace / persisted trace) the fuzzer and the shrinker run *)
val diff_all : ?fuel:int -> Mira.Ir.program -> string list

(** Shrinker oracle: does compiling [src] (and applying [transform],
    default identity — pass a pass-sequence application here) yield a
    program on which the engines disagree?  Sources that fail to
    compile return [false], as {!Shrink.minimize} requires. *)
val disagrees :
  ?transform:(Mira.Ir.program -> Mira.Ir.program) -> string -> bool
