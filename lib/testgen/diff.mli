(** Differential testing of the two execution engines.

    The flat engine ({!Mira.Decode} / [Mach.Flatsim]) must be
    bit-identical to the reference interpreter: same return value (to
    the bit, for floats), same printed output, same [steps], same trap
    message or fuel exhaustion, and — under the machine simulator — the
    same cycle count and the same value in every counter of the bank.
    This module runs a program through both engines and reports every
    field that disagrees, as human-readable one-line strings suitable
    for test-failure messages and shrinker reports. *)

(** plain interpretation: [Interp.run] vs [Decode.run] (ret, output,
    steps, outcome kind incl. exact trap message) *)
val diff_plain : ?fuel:int -> Mira.Ir.program -> string list

(** under the machine simulator: [Sim.run ~engine:Ref] vs [~engine:Flat]
    (everything above plus cycles and the full counter bank) *)
val diff_sim :
  ?config:Mach.Config.t -> ?fuel:int -> Mira.Ir.program -> string list

(** {!diff_plain} @ {!diff_sim} on the default machine config *)
val diff_all : ?fuel:int -> Mira.Ir.program -> string list

(** Shrinker oracle: does compiling [src] (and applying [transform],
    default identity — pass a pass-sequence application here) yield a
    program on which the engines disagree?  Sources that fail to
    compile return [false], as {!Shrink.minimize} requires. *)
val disagrees :
  ?transform:(Mira.Ir.program -> Mira.Ir.program) -> string -> bool
