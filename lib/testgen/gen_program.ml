(* Random Mira program generator for differential testing.

   Generated programs are trap-free by construction (array indices are
   masked to the array size, divisors are non-zero constants, shift counts
   are literal and in range) and always terminate (loops are counted with
   literal bounds), so the observation of the unoptimized program is always
   [Finished] and every optimization pass must reproduce it exactly.
   Floats may legitimately overflow to inf/nan — that is deterministic and
   must also be preserved. *)

type ctx = {
  rng : Random.State.t;
  mutable depth : int;   (* remaining statement-nesting budget *)
  mutable vars : int;    (* v0..v(vars-1) int variables in scope *)
  mutable fvars : int;   (* g0..g(fvars-1) float variables in scope *)
  mutable loopn : int;   (* unique loop-variable counter (never reused,
                            so nested loops cannot shadow) *)
}

let pick ctx xs = List.nth xs (Random.State.int ctx.rng (List.length xs))

let int_const ctx = string_of_int (Random.State.int ctx.rng 41 - 20)

(* integer expressions; [d] bounds the tree depth *)
let rec int_expr ctx d =
  if d = 0 then
    match Random.State.int ctx.rng 3 with
    | 0 -> int_const ctx
    | 1 when ctx.vars > 0 ->
      Printf.sprintf "v%d" (Random.State.int ctx.rng ctx.vars)
    | _ -> Printf.sprintf "arr[%s & 15]" (if ctx.vars > 0 then Printf.sprintf "v%d" (Random.State.int ctx.rng ctx.vars) else int_const ctx)
  else
    match Random.State.int ctx.rng 8 with
    | 0 -> Printf.sprintf "(%s + %s)" (int_expr ctx (d - 1)) (int_expr ctx (d - 1))
    | 1 -> Printf.sprintf "(%s - %s)" (int_expr ctx (d - 1)) (int_expr ctx (d - 1))
    | 2 -> Printf.sprintf "(%s * %s)" (int_expr ctx (d - 1)) (int_expr ctx (d - 1))
    | 3 -> Printf.sprintf "(%s & %s)" (int_expr ctx (d - 1)) (int_expr ctx (d - 1))
    | 4 -> Printf.sprintf "(%s | %s)" (int_expr ctx (d - 1)) (int_expr ctx (d - 1))
    | 5 -> Printf.sprintf "(%s ^ %s)" (int_expr ctx (d - 1)) (int_expr ctx (d - 1))
    | 6 ->
      (* trap-free division/remainder: literal non-zero divisor *)
      let divisor = 1 + Random.State.int ctx.rng 7 in
      let op = pick ctx [ "/"; "%" ] in
      Printf.sprintf "(%s %s %d)" (int_expr ctx (d - 1)) op divisor
    | _ ->
      let count = Random.State.int ctx.rng 5 in
      let op = pick ctx [ "<<"; ">>" ] in
      Printf.sprintf "(%s %s %d)" (int_expr ctx (d - 1)) op count

let bool_expr ctx d =
  let cmp = pick ctx [ "<"; "<="; ">"; ">="; "=="; "!=" ] in
  let base = Printf.sprintf "(%s %s %s)" (int_expr ctx d) cmp (int_expr ctx d) in
  match Random.State.int ctx.rng 4 with
  | 0 ->
    let cmp2 = pick ctx [ "<"; ">" ] in
    Printf.sprintf "(%s && (%s %s %s))" base (int_expr ctx d) cmp2 (int_expr ctx d)
  | 1 ->
    let cmp2 = pick ctx [ "=="; "!=" ] in
    Printf.sprintf "(%s || (%s %s %s))" base (int_expr ctx d) cmp2 (int_expr ctx d)
  | 2 -> Printf.sprintf "(!%s)" base
  | _ -> base

let float_expr ctx d =
  let atom () =
    if ctx.fvars > 0 && Random.State.int ctx.rng 2 = 0 then
      Printf.sprintf "g%d" (Random.State.int ctx.rng ctx.fvars)
    else Printf.sprintf "%d.%d" (Random.State.int ctx.rng 9) (Random.State.int ctx.rng 10)
  in
  let rec go d =
    if d = 0 then atom ()
    else
      match Random.State.int ctx.rng 4 with
      | 0 -> Printf.sprintf "(%s + %s)" (go (d - 1)) (go (d - 1))
      | 1 -> Printf.sprintf "(%s - %s)" (go (d - 1)) (go (d - 1))
      | 2 -> Printf.sprintf "(%s * %s)" (go (d - 1)) (go (d - 1))
      | _ -> Printf.sprintf "(%s / 2.0)" (go (d - 1))
  in
  go d

let rec stmt ctx : string =
  let choice =
    if ctx.depth = 0 then Random.State.int ctx.rng 5
    else Random.State.int ctx.rng 8
  in
  match choice with
  | 0 when ctx.vars > 0 ->
    Printf.sprintf "v%d = %s;" (Random.State.int ctx.rng ctx.vars)
      (int_expr ctx 2)
  | 0 | 1 ->
    (* the initializer must not see the variable being declared *)
    let init = int_expr ctx 2 in
    let v = ctx.vars in
    ctx.vars <- ctx.vars + 1;
    Printf.sprintf "var v%d: int = %s;" v init
  | 2 ->
    Printf.sprintf "arr[%s & 15] = %s;" (int_expr ctx 1) (int_expr ctx 2)
  | 3 -> Printf.sprintf "print(%s);" (int_expr ctx 2)
  | 4 ->
    if ctx.fvars = 0 then begin
      let init = float_expr ctx 1 in
      ctx.fvars <- 1;
      Printf.sprintf "var g0: float = %s;" init
    end
    else
      Printf.sprintf "g%d = %s;" (Random.State.int ctx.rng ctx.fvars)
        (float_expr ctx 2)
  | 5 ->
    (* declarations inside branches go out of scope at the brace: the
       generator must forget them too *)
    ctx.depth <- ctx.depth - 1;
    let saved_vars = ctx.vars and saved_fvars = ctx.fvars in
    let t = block ctx in
    ctx.vars <- saved_vars;
    ctx.fvars <- saved_fvars;
    let e = if Random.State.int ctx.rng 2 = 0 then block ctx else "" in
    ctx.vars <- saved_vars;
    ctx.fvars <- saved_fvars;
    ctx.depth <- ctx.depth + 1;
    if e = "" then Printf.sprintf "if (%s) { %s }" (bool_expr ctx 1) t
    else Printf.sprintf "if (%s) { %s } else { %s }" (bool_expr ctx 1) t e
  | 6 ->
    (* counted loop with literal bounds: always terminates *)
    ctx.depth <- ctx.depth - 1;
    let saved_vars = ctx.vars and saved_fvars = ctx.fvars in
    let body = block ctx in
    ctx.vars <- saved_vars;
    ctx.fvars <- saved_fvars;
    ctx.depth <- ctx.depth + 1;
    let lo = Random.State.int ctx.rng 3 in
    let hi = lo + Random.State.int ctx.rng 7 in
    let v = ctx.loopn in
    ctx.loopn <- ctx.loopn + 1;
    Printf.sprintf "for lv%d = %d to %d { %s }" v lo hi body
  | _ ->
    (* accumulating inner computation *)
    let init = int_expr ctx 2 in
    let v = ctx.vars in
    ctx.vars <- ctx.vars + 1;
    Printf.sprintf "var v%d: int = %s; v%d = (v%d * 3) & 1023;" v init v v

and block ctx : string =
  let n = 1 + Random.State.int ctx.rng 3 in
  String.concat " " (List.init n (fun _ -> stmt ctx))

(* one generated helper function (non-recursive, pure int math) *)
let helper ctx i =
  let body =
    String.concat " "
      (List.init
         (1 + Random.State.int ctx.rng 2)
         (fun _ ->
           Printf.sprintf "x = (x %s %s) & 4095;"
             (pick ctx [ "+"; "*"; "^" ])
             (int_const ctx)))
  in
  Printf.sprintf "fn h%d(x: int) -> int { %s return x; }" i body

(* generate a full program from a seed *)
let generate (seed : int) : string =
  let ctx =
    { rng = Random.State.make [| seed |]; depth = 2; vars = 2; fvars = 0;
      loopn = 0 }
  in
  let nhelpers = Random.State.int ctx.rng 3 in
  let helpers = List.init nhelpers (helper ctx) in
  let body = String.concat "\n  " (List.init 6 (fun _ -> stmt ctx)) in
  let calls =
    String.concat " "
      (List.init nhelpers (fun i ->
           Printf.sprintf "acc = (acc + h%d(v0)) & 65535;" i))
  in
  Printf.sprintf
    {|%s
fn main() -> int {
  var arr: int[16];
  var v0: int = 3;
  var v1: int = 7;
  var acc: int = 0;
  %s
  %s
  var sum: int = 0;
  for i = 0 to 16 { sum = (sum + arr[i]) & 65535; }
  print(sum);
  return (acc + sum + v0 + v1) & 65535;
}|}
    (String.concat "\n" helpers)
    body calls

(* generate + compile; None when the generator produced something the
   front end rejects (which itself would be a generator bug worth seeing
   in test failures, so callers treat None as a failure) *)
let compile (seed : int) : (Mira.Ir.program, string) result =
  Mira.Lower.compile_source (generate seed)
