(** Random Mira program generator for differential and property testing.

    Generated programs are trap-free by construction (array indices are
    masked, divisors are non-zero literals, shift counts are literal and
    in range) and always terminate (loops are counted with literal
    bounds), so the observation of the unoptimized program is always
    [Finished] and every optimization pass must reproduce it exactly.
    Floats may legitimately overflow to inf/nan — that is deterministic
    and must also be preserved.

    The same seed always yields the same program: test failures are
    reported as seeds, and [generate seed] reproduces them. *)

(** the Mira source text for [seed] *)
val generate : int -> string

(** [generate] + front end; [Error] means the generator itself produced
    an invalid program — a generator bug, which callers should surface *)
val compile : int -> (Mira.Ir.program, string) result
