(* Greedy counterexample minimization over the Mira AST.  One round
   enumerates every single-step simplification of the program, biggest
   first; the driver restarts from the first variant that still compiles
   and still fails, and stops at a fixpoint (or the step bound). *)

open Mira.Ast

(* --- expression shrinks ------------------------------------------- *)

(* variants of [e], in decreasing order of ambition: a subexpression
   replaces the whole node, then a constant does, then a child shrinks
   in place.  Ill-typed variants are harmless — the compile gate in the
   driver discards them. *)
let rec shrink_expr (e : expr) : expr list =
  let mk d = { e with e = d } in
  let subexprs =
    match e.e with
    | Bin (_, a, b) -> [ a; b ]
    | Un (_, a) -> [ a ]
    | Index (_, i) -> [ i ]
    | Call (_, args) -> args
    | _ -> []
  in
  let consts =
    match e.e with
    | Int _ | Float _ | Bool _ -> []
    | _ -> [ mk (Int 0); mk (Int 1); mk (Bool true); mk (Float 0.0) ]
  in
  let in_place =
    match e.e with
    | Bin (op, a, b) ->
      List.map (fun a' -> mk (Bin (op, a', b))) (shrink_expr a)
      @ List.map (fun b' -> mk (Bin (op, a, b'))) (shrink_expr b)
    | Un (op, a) -> List.map (fun a' -> mk (Un (op, a'))) (shrink_expr a)
    | Index (x, i) -> List.map (fun i' -> mk (Index (x, i'))) (shrink_expr i)
    | Call (f, args) ->
      List.concat
        (List.mapi
           (fun k a ->
             List.map
               (fun a' ->
                 mk (Call (f, List.mapi (fun j x -> if j = k then a' else x) args)))
               (shrink_expr a))
           args)
    | _ -> []
  in
  subexprs @ consts @ in_place

(* --- statement shrinks -------------------------------------------- *)

let rec shrink_stmt (s : stmt) : stmt list =
  let mk d = { s with s = d } in
  let on_expr rebuild e = List.map (fun e' -> mk (rebuild e')) (shrink_expr e) in
  match s.s with
  | SDecl (x, ty, e) -> on_expr (fun e' -> SDecl (x, ty, e')) e
  | SArrDecl _ -> []
  | SAssign (x, e) -> on_expr (fun e' -> SAssign (x, e')) e
  | SStore (a, i, e) ->
    List.map (fun i' -> mk (SStore (a, i', e))) (shrink_expr i)
    @ List.map (fun e' -> mk (SStore (a, i, e'))) (shrink_expr e)
  | SIf (c, t, el) ->
    (if el <> [] then [ mk (SIf (c, t, [])) ] else [])
    @ List.map (fun t' -> mk (SIf (c, t', el))) (shrink_body t)
    @ List.map (fun el' -> mk (SIf (c, t, el'))) (shrink_body el)
    @ on_expr (fun c' -> SIf (c', t, el)) c
  | SWhile (c, b) ->
    List.map (fun b' -> mk (SWhile (c, b'))) (shrink_body b)
    @ on_expr (fun c' -> SWhile (c', b)) c
  | SFor (x, lo, hi, st, b) ->
    List.map (fun b' -> mk (SFor (x, lo, hi, st, b'))) (shrink_body b)
    @ List.map (fun lo' -> mk (SFor (x, lo', hi, st, b))) (shrink_expr lo)
    @ List.map (fun hi' -> mk (SFor (x, lo, hi', st, b))) (shrink_expr hi)
  | SReturn (Some e) -> on_expr (fun e' -> SReturn (Some e')) e
  | SReturn None -> []
  | SExpr e -> on_expr (fun e' -> SExpr e') e
  | SPrint e -> on_expr (fun e' -> SPrint e') e

(* variants of a body: drop a statement, splice a nested body in place
   of its construct, then shrink a statement in place *)
and shrink_body (body : stmt list) : stmt list list =
  match body with
  | [] -> []
  | s :: rest ->
    [ rest ]
    @ (match s.s with
       | SIf (_, t, el) ->
         (if t <> [] then [ t @ rest ] else [])
         @ if el <> [] then [ el @ rest ] else []
       | SWhile (_, b) | SFor (_, _, _, _, b) ->
         if b <> [] then [ b @ rest ] else []
       | _ -> [])
    @ List.map (fun s' -> s' :: rest) (shrink_stmt s)
    @ List.map (fun rest' -> s :: rest') (shrink_body rest)

(* --- program shrinks ---------------------------------------------- *)

let drop_nth xs n = List.filteri (fun i _ -> i <> n) xs

let shrink_program (p : program) : program list =
  let drop_funcs =
    List.filteri (fun _ f -> f.fname <> "main") p.funcs
    |> List.map (fun f ->
           { p with funcs = List.filter (fun g -> g.fname <> f.fname) p.funcs })
  in
  let drop_globals =
    List.mapi (fun i _ -> { p with globals = drop_nth p.globals i }) p.globals
  in
  let body_variants =
    List.concat
      (List.mapi
         (fun i f ->
           List.map
             (fun body' ->
               {
                 p with
                 funcs =
                   List.mapi
                     (fun j g -> if j = i then { f with body = body' } else g)
                     p.funcs;
               })
             (shrink_body f.body))
         p.funcs)
  in
  drop_funcs @ drop_globals @ body_variants

(* --- driver -------------------------------------------------------- *)

let compiles src = Result.is_ok (Mira.Lower.compile_source src)

let minimize ?(max_steps = 4000) ~(fails : string -> bool) (src : string) :
    string =
  match Mira.Parser.parse_result src with
  | Error _ -> src
  | Ok ast ->
    let steps = ref 0 in
    let try_one ast' =
      if !steps >= max_steps then None
      else begin
        incr steps;
        let s = to_string ast' in
        if compiles s && fails s then Some ast' else None
      end
    in
    let rec go ast =
      if !steps >= max_steps then ast
      else
        match List.find_map try_one (shrink_program ast) with
        | Some ast' -> go ast'
        | None -> ast
    in
    to_string (go ast)

let report ~seed ~fails src =
  let minimal = minimize ~fails src in
  Printf.sprintf
    "seed %d; minimal failing program (%d bytes, from %d):\n%s" seed
    (String.length minimal) (String.length src) minimal
