module Interp = Mira.Interp

(* Strict value representation: floats by bit pattern, so an engine that
   returns -0.0 where the other returns 0.0 (or a different NaN payload)
   is caught even though both print the same. *)
let value_repr (v : Interp.value) : string =
  match v with
  | Interp.VFloat f ->
    Printf.sprintf "%s[bits %Lx]" (Interp.value_to_string v)
      (Int64.bits_of_float f)
  | _ -> Interp.value_to_string v

let field name ref_v flat_v acc =
  if ref_v = flat_v then acc
  else Printf.sprintf "%s: ref=%s flat=%s" name ref_v flat_v :: acc

(* ------------------------------------------------------------------ *)
(* Plain interpretation *)

type 'a outcome = Done of 'a | Trapped of string | Exhausted

let outcome_repr = function
  | Done _ -> "finished"
  | Trapped m -> Printf.sprintf "trap %S" m
  | Exhausted -> "out of fuel"

let catching f =
  match f () with
  | r -> Done r
  | exception Interp.Trap m -> Trapped m
  | exception Interp.Out_of_fuel -> Exhausted

let diff_plain ?fuel (p : Mira.Ir.program) : string list =
  let a = catching (fun () -> Interp.run ?fuel p) in
  let b = catching (fun () -> Mira.Decode.run_program ?fuel p) in
  match (a, b) with
  | Done ra, Done rb ->
    []
    |> field "ret" (value_repr ra.Interp.ret) (value_repr rb.Interp.ret)
    |> field "output"
         (Printf.sprintf "%S" ra.Interp.output)
         (Printf.sprintf "%S" rb.Interp.output)
    |> field "steps"
         (string_of_int ra.Interp.steps)
         (string_of_int rb.Interp.steps)
    |> List.rev
  | a, b ->
    if outcome_repr a = outcome_repr b then []
    else [ Printf.sprintf "outcome: ref=%s flat=%s" (outcome_repr a)
             (outcome_repr b) ]

(* ------------------------------------------------------------------ *)
(* Under the machine simulator *)

let diff_sim ?(config = Mach.Config.default) ?fuel (p : Mira.Ir.program) :
    string list =
  let a =
    catching (fun () -> Mach.Sim.run ~engine:Mach.Sim.Ref ~config ?fuel p)
  in
  let b =
    catching (fun () -> Mach.Sim.run ~engine:Mach.Sim.Flat ~config ?fuel p)
  in
  match (a, b) with
  | Done ra, Done rb ->
    let counters acc =
      List.fold_left
        (fun acc c ->
          field
            (Printf.sprintf "counter %s" (Mach.Counters.name c))
            (string_of_int (Mach.Counters.get ra.Mach.Sim.counters c))
            (string_of_int (Mach.Counters.get rb.Mach.Sim.counters c))
            acc)
        acc Mach.Counters.all
    in
    []
    |> field "ret" (value_repr ra.Mach.Sim.ret) (value_repr rb.Mach.Sim.ret)
    |> field "output"
         (Printf.sprintf "%S" ra.Mach.Sim.output)
         (Printf.sprintf "%S" rb.Mach.Sim.output)
    |> field "steps"
         (string_of_int ra.Mach.Sim.steps)
         (string_of_int rb.Mach.Sim.steps)
    |> field "cycles"
         (string_of_int ra.Mach.Sim.cycles)
         (string_of_int rb.Mach.Sim.cycles)
    |> counters
    |> List.rev
  | a, b ->
    if outcome_repr a = outcome_repr b then []
    else [ Printf.sprintf "sim outcome: ref=%s flat=%s" (outcome_repr a)
             (outcome_repr b) ]

let diff_all ?fuel p = diff_plain ?fuel p @ diff_sim ?fuel p

let disagrees ?(transform = fun p -> p) (src : string) : bool =
  match Mira.Lower.compile_source src with
  | Error _ -> false
  | Ok p -> (
    match transform p with
    | p -> diff_all p <> []
    (* a transform that itself crashes is a pass bug, not an engine
       mismatch; the pass-oracle fuzz line covers those *)
    | exception _ -> false)
