module Interp = Mira.Interp

(* Strict value representation: floats by bit pattern, so an engine that
   returns -0.0 where the other returns 0.0 (or a different NaN payload)
   is caught even though both print the same. *)
let value_repr (v : Interp.value) : string =
  match v with
  | Interp.VFloat f ->
    Printf.sprintf "%s[bits %Lx]" (Interp.value_to_string v)
      (Int64.bits_of_float f)
  | _ -> Interp.value_to_string v

let field name ref_v flat_v acc =
  if ref_v = flat_v then acc
  else Printf.sprintf "%s: ref=%s flat=%s" name ref_v flat_v :: acc

(* ------------------------------------------------------------------ *)
(* Plain interpretation *)

type 'a outcome = Done of 'a | Trapped of string | Exhausted

let outcome_repr = function
  | Done _ -> "finished"
  | Trapped m -> Printf.sprintf "trap %S" m
  | Exhausted -> "out of fuel"

let catching f =
  match f () with
  | r -> Done r
  | exception Interp.Trap m -> Trapped m
  | exception Interp.Out_of_fuel -> Exhausted

let diff_plain ?fuel (p : Mira.Ir.program) : string list =
  let a = catching (fun () -> Interp.run ?fuel p) in
  let b = catching (fun () -> Mira.Decode.run_program ?fuel p) in
  match (a, b) with
  | Done ra, Done rb ->
    []
    |> field "ret" (value_repr ra.Interp.ret) (value_repr rb.Interp.ret)
    |> field "output"
         (Printf.sprintf "%S" ra.Interp.output)
         (Printf.sprintf "%S" rb.Interp.output)
    |> field "steps"
         (string_of_int ra.Interp.steps)
         (string_of_int rb.Interp.steps)
    |> List.rev
  | a, b ->
    if outcome_repr a = outcome_repr b then []
    else [ Printf.sprintf "outcome: ref=%s flat=%s" (outcome_repr a)
             (outcome_repr b) ]

(* ------------------------------------------------------------------ *)
(* Under the machine simulator: three-way, with the hooked reference
   interpreter as the semantics-and-model oracle.  Flat (the fused
   production engine) and Trace (Mtrace generation + Replay) are each
   compared field-by-field against Ref; a trace-only disagreement means
   the event encoding or the replay accounting drifted from the fused
   loop, a both-engines disagreement points at the shared decode.
   Messages carry the config name and the disagreeing engine, e.g.
   "cycles[c6713_like]: ref=412 trace=409". *)

let alt_engines = [ Mach.Sim.Flat; Mach.Sim.Trace ]

let diff_sim ?(config = Mach.Config.default) ?fuel (p : Mira.Ir.program) :
    string list =
  let tag = config.Mach.Config.name in
  let run e = catching (fun () -> Mach.Sim.run ~engine:e ~config ?fuel p) in
  let a = run Mach.Sim.Ref in
  let against ename b =
    let fieldt name ref_v alt_v acc =
      if ref_v = alt_v then acc
      else
        Printf.sprintf "%s[%s]: ref=%s %s=%s" name tag ref_v ename alt_v
        :: acc
    in
    match (a, b) with
    | Done ra, Done rb ->
      let counters acc =
        List.fold_left
          (fun acc c ->
            fieldt
              (Printf.sprintf "counter %s" (Mach.Counters.name c))
              (string_of_int (Mach.Counters.get ra.Mach.Sim.counters c))
              (string_of_int (Mach.Counters.get rb.Mach.Sim.counters c))
              acc)
          acc Mach.Counters.all
      in
      []
      |> fieldt "ret" (value_repr ra.Mach.Sim.ret)
           (value_repr rb.Mach.Sim.ret)
      |> fieldt "output"
           (Printf.sprintf "%S" ra.Mach.Sim.output)
           (Printf.sprintf "%S" rb.Mach.Sim.output)
      |> fieldt "steps"
           (string_of_int ra.Mach.Sim.steps)
           (string_of_int rb.Mach.Sim.steps)
      |> fieldt "cycles"
           (string_of_int ra.Mach.Sim.cycles)
           (string_of_int rb.Mach.Sim.cycles)
      |> counters
      |> List.rev
    | a, b ->
      if outcome_repr a = outcome_repr b then []
      else
        [ Printf.sprintf "sim outcome[%s]: ref=%s %s=%s" tag
            (outcome_repr a) ename (outcome_repr b) ]
  in
  (* fourth leg: the persisted-trace path.  Encode/decode the trace
     through Mtrace's on-disk codec (what Engine.Tstore stores, minus
     the store's framing/checksums, which its own tests cover) and
     replay the decoded trace — a disagreement here means the codec
     dropped or distorted something the round-trip equality below
     missed, or vice versa. *)
  let store_leg () =
    let tr = Mach.Mtrace.generate_program ?fuel p in
    match Mach.Mtrace.decode (Mach.Mtrace.encode tr) with
    | Error m ->
      [ Printf.sprintf "trace codec[%s]: decode failed: %s" tag m ]
    | Ok tr' ->
      if not (Mach.Mtrace.equal tr tr') then
        [ Printf.sprintf "trace codec[%s]: round-trip not bit-exact" tag ]
      else
        against "store"
          (catching (fun () ->
               Mach.Sim.of_flatsim (Mach.Replay.run ~config tr')))
  in
  List.concat_map
    (fun e -> against (Mach.Sim.engine_name e) (run e))
    alt_engines
  @ store_leg ()

(* every preset config: the issue widths, cache geometries and predictor
   sizes differ enough that a model bug rarely hides on all three *)
let diff_sim_presets ?fuel (p : Mira.Ir.program) : string list =
  List.concat_map (fun c -> diff_sim ~config:c ?fuel p) Mach.Config.all

let diff_all ?fuel p = diff_plain ?fuel p @ diff_sim_presets ?fuel p

let disagrees ?(transform = fun p -> p) (src : string) : bool =
  match Mira.Lower.compile_source src with
  | Error _ -> false
  | Ok p -> (
    match transform p with
    | p -> diff_all p <> []
    (* a transform that itself crashes is a pass bug, not an engine
       mismatch; the pass-oracle fuzz line covers those *)
    | exception _ -> false)
