module Ir = Mira.Ir

(* Application characterization + knowledge-base population (Fig. 1's
   "static and dynamic process characterization" feeding the knowledge
   base):

   - static: the Features vector of the unoptimized program;
   - dynamic: the normalized performance-counter vector of a profiling run
     at -O0 on the target machine model;
   - experiments: measured cycles and code size for each optimization
     sequence tried, appended to the KB for the prediction models to learn
     from. *)

let counter_assoc (bank : Mach.Counters.bank) : (string * float) list =
  let norm = Mach.Counters.normalized bank in
  List.mapi (fun i c -> (Mach.Counters.name c, norm.(i))) Mach.Counters.all

(* profile at -O0: static features + normalized counters + base cycles *)
let characterize ?(config = Mach.Config.default) ~(prog : string)
    (p : Ir.program) : Knowledge.Kb.characterization =
  let r = Mach.Sim.run ~config p in
  {
    Knowledge.Kb.prog;
    arch = config.Mach.Config.name;
    o0_cycles = r.Mach.Sim.cycles;
    features = Features.extract p;
    counters = counter_assoc r.Mach.Sim.counters;
  }

(* evaluate one sequence: compile + simulate; infinity on trap/divergence
   so broken sequences lose every comparison *)
let eval_sequence ?(config = Mach.Config.default) (p : Ir.program)
    (seq : Passes.Pass.t list) : float =
  let p' = Passes.Pass.apply_sequence seq p in
  match Mach.Sim.run ~config p' with
  | r -> float_of_int r.Mach.Sim.cycles
  | exception (Mira.Interp.Trap _ | Mira.Interp.Out_of_fuel) -> infinity

(* The cost oracle handed to search strategies and prediction models.
   With an engine this is the cached path (the program is digested once);
   without, it degrades to the direct simulator call above.  When both
   are supplied the engine's machine configuration wins — an engine is
   always built for one specific machine. *)
let evaluator ?engine ?(config = Mach.Config.default) (p : Ir.program) :
    Passes.Pass.t list -> float =
  match engine with
  | Some eng -> Engine.evaluator eng p
  | None -> eval_sequence ~config p

(* evaluate and record into the KB *)
let record_experiment ?(config = Mach.Config.default) (kb : Knowledge.Kb.t)
    ~(prog : string) (p : Ir.program) (seq : Passes.Pass.t list) : float =
  let p' = Passes.Pass.apply_sequence seq p in
  match Mach.Sim.run ~config p' with
  | r ->
    Knowledge.Kb.add_experiment kb
      {
        Knowledge.Kb.eprog = prog;
        earch = config.Mach.Config.name;
        seq;
        cycles = r.Mach.Sim.cycles;
        code_size = Ir.program_size p';
      };
    float_of_int r.Mach.Sim.cycles
  | exception (Mira.Interp.Trap _ | Mira.Interp.Out_of_fuel) -> infinity

(* Populate a knowledge base by random exploration of each training
   program's sequence space — the "significant training period" of
   Sec. III-C.  [per_program] sequences are tried per program; the O0 and
   fixed-pipeline points are always included so every program has a sane
   floor.

   With an engine, every (program, sequence) pair of the whole build goes
   into one batch: the worker pool simulates the misses in parallel and
   warm caches skip them entirely.  Experiments land in the KB in the
   same order as the serial path, and with identical measurements. *)
let build_kb ?engine ?(config = Mach.Config.default) ?(seed = 42)
    ?(per_program = 40) ?(length = Search.Space.default_length)
    (programs : (string * Ir.program) list) : Knowledge.Kb.t =
  let kb = Knowledge.Kb.create () in
  let plan_for i (_, p) =
    let rng = Random.State.make [| seed + i |] in
    List.map
      (fun seq -> (p, seq))
      (([] : Passes.Pass.t list) :: Passes.Pass.o2 :: Passes.Pass.ofast
       :: Search.Space.sample_distinct rng ~length per_program)
  in
  match engine with
  | None ->
    List.iteri
      (fun i ((name, p) as entry) ->
        Knowledge.Kb.add_characterization kb
          (characterize ~config ~prog:name p);
        List.iter
          (fun (_, seq) -> ignore (record_experiment ~config kb ~prog:name p seq))
          (plan_for i entry))
      programs;
    kb
  | Some eng ->
    let config = Engine.config eng in
    let arch = config.Mach.Config.name in
    let plans = List.mapi plan_for programs in
    let outcomes = Engine.eval_many eng (List.concat plans) in
    let cursor = ref 0 in
    List.iter2
      (fun (name, p) plan ->
        let first = !cursor in
        cursor := !cursor + List.length plan;
        (* the O0 point is the first task of this program's plan: its
           counter bank doubles as the dynamic characterization, so no
           separate profiling run is needed *)
        (match outcomes.(first) with
         | { Engine.cycles = Some o0_cycles; counters = Some bank; _ } ->
           Knowledge.Kb.add_characterization kb
             {
               Knowledge.Kb.prog = name;
               arch;
               o0_cycles;
               features = Features.extract p;
               counters = counter_assoc bank;
             }
         | _ ->
           (* O0 failed (out of fuel?): fall back to the direct profile *)
           Knowledge.Kb.add_characterization kb
             (characterize ~config ~prog:name p));
        List.iteri
          (fun j (_, seq) ->
            match outcomes.(first + j) with
            | { Engine.cycles = Some cycles; code_size = Some code_size; _ }
              ->
              Knowledge.Kb.add_experiment kb
                {
                  Knowledge.Kb.eprog = name;
                  earch = arch;
                  seq;
                  cycles;
                  code_size;
                }
            | _ -> (* failed sequences are not recorded, as before *) ())
          plan)
      programs plans;
    kb
