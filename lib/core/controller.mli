(** The intelligent optimization controller (paper Sec. III-A): given a
    program and the knowledge base, decide how to optimize it. *)

type decision = {
  sequence : Passes.Pass.t list;
  predicted_from : string list;  (** training programs consulted *)
  evaluations : int;             (** target-system runs spent *)
}

type compiled = {
  program : Mira.Ir.program;
  decision : decision;
}

(** one-shot from static features: nearest training program's best
    sequence; no target-system runs.  Falls back to O2 on an empty KB. *)
val one_shot :
  ?config:Mach.Config.t -> Knowledge.Kb.t -> Mira.Ir.program -> compiled

(** one-shot from performance counters (the paper's PCModel): spends one
    -O0 profiling run; [trials > 1] additionally evaluates the top
    candidates online and keeps the winner.  With [engine] the candidate
    evaluations go through the cached engine (its machine configuration
    overrides [config]). *)
val one_shot_counters :
  ?engine:Engine.t -> ?config:Mach.Config.t -> ?trials:int ->
  Knowledge.Kb.t -> Mira.Ir.program -> compiled

(** iterative mode: fit a focused sequence model from the KB and spend an
    evaluation [budget] searching; returns the compiled program and the
    full search trace.  With [engine] the budgeted evaluations go through
    the cached engine (its machine configuration overrides [config]). *)
val iterative :
  ?engine:Engine.t -> ?config:Mach.Config.t -> ?seed:int -> ?budget:int ->
  ?params:Search.Focused.params -> Knowledge.Kb.t -> Mira.Ir.program ->
  compiled * Search.Strategies.result
