module Ir = Mira.Ir

(* The paper's Sec. II-A worked phrasing of phase ordering as a learning
   problem: "given certain optimizations already applied and two possible
   optimizations to apply next, choose which of the two to perform", used
   to run a tournament among all passes at every step.

   Training instances are generated exactly as the methodology prescribes:
   at each decision point (a partially optimized program), both choices
   are pursued — each candidate pass is applied and the result evaluated
   with the machine model — and the instance is labelled with the winner.
   Features are the current program's static features plus the one-hot
   identities of the two candidate passes.  A decision tree is the
   learner (cheap, and its output is integrable as code, per Sec. II-A).

   At compile time, [order] runs a single-elimination tournament over all
   13 passes at each step, applies the winner, and repeats for
   [steps] rounds — producing a program-specific phase ordering without
   any target runs. *)

module Pass = Passes.Pass

(* "To evaluate a given choice, you need to schedule the rest of the
   block... you can run to the end of the problem using one or more
   heuristics already known to be competent" (Sec. II-A).  Our completion
   heuristic is a generic cleanup pipeline; candidate passes are compared
   by the cost of candidate-then-completion, which gives enabling passes
   (cprop before unroll, etc.) their true value instead of zero. *)
let completion : Pass.t list =
  Pass.[ Const_fold; Const_prop; Copy_prop; Cse; Dce; Simplify_cfg ]

type instance = { feats : float array; label : int (* 1 = first wins *) }

(* observability: training-data generation and compile-time ordering are
   the two tournament phases worth seeing in a trace *)
let m_instances = Obs.Metrics.counter "tournament.instances"

let npass = Pass.count

let instance_features (p : Ir.program) (a : Pass.t) (b : Pass.t) : float array
    =
  let base = Features.vector_of_program p in
  let onehot x =
    Array.init npass (fun i -> if i = Pass.to_index x then 1.0 else 0.0)
  in
  Array.concat [ base; onehot a; onehot b ]

(* Generate training instances from one program.  Decision points are the
   program states reached by *random* pass prefixes (length 0..steps-1):
   greedy rollouts would concentrate all instances on already-optimized
   states, while the tournament at compile time must decide well from
   arbitrary intermediate states.  At each state both candidate choices
   are pursued and evaluated, per the methodology; near-ties (< 0.2%
   apart) are discarded as label noise. *)
let gen_instances ?engine ?(config = Mach.Config.default) ?(seed = 1)
    ?(steps = 4) ?(pairs_per_step = 6) (p : Ir.program) : instance list =
  let rng = Random.State.make [| seed |] in
  let out = ref [] in
  (* candidates are evaluated as (state, candidate :: completion) so the
     engine sees the shared state: its trie compiles the completion tail
     once per distinct intermediate IR, and candidates whose pass is a
     no-op on this state dedup to a single simulation.  The measured
     program is apply_sequence (candidate :: completion) state — exactly
     what pre-compiling by hand measured. *)
  let cost p seq =
    match engine with
    | Some eng -> (Engine.eval eng p seq).Engine.cost
    | None -> Characterize.eval_sequence ~config p seq
  in
  for step = 0 to steps - 1 do
    (if not (Obs.Trace.enabled ()) then fun f -> f ()
     else
       Obs.Trace.with_span ~cat:"search"
         ~args:[ ("step", Obs.Trace.Int step) ]
         "tournament.step")
    @@ fun () ->
    (* a fresh random decision point of prefix length [step] *)
    let prefix =
      List.init step (fun _ -> List.nth Pass.all (Random.State.int rng npass))
    in
    let state = Pass.apply_sequence prefix p in
    let costs = Hashtbl.create npass in
    (* with a parallel engine, score every candidate of this decision
       point in one batch: a few eagerly evaluated losers buy a
       pool-wide fan-out (and a warm cache makes them free anyway) *)
    (match engine with
     | Some eng when Engine.jobs eng > 1 ->
       let candidates =
         List.map (fun pass -> (state, pass :: completion)) Pass.all
       in
       let outs = Engine.eval_many eng candidates in
       List.iteri
         (fun i pass -> Hashtbl.replace costs pass outs.(i).Engine.cost)
         Pass.all
     | _ -> ());
    let cost_of pass =
      match Hashtbl.find_opt costs pass with
      | Some c -> c
      | None ->
        let c = cost state (pass :: completion) in
        Hashtbl.replace costs pass c;
        c
    in
    for _k = 1 to pairs_per_step do
      let a = List.nth Pass.all (Random.State.int rng npass) in
      let b = List.nth Pass.all (Random.State.int rng npass) in
      if a <> b then begin
        let ca = cost_of a and cb = cost_of b in
        if Float.abs (ca -. cb) > 0.002 *. Float.min ca cb then begin
          (* symmetric pair of instances *)
          out :=
            { feats = instance_features state a b;
              label = (if ca < cb then 1 else 0) }
            :: { feats = instance_features state b a;
                 label = (if cb < ca then 1 else 0) }
            :: !out
        end
      end
    done
  done;
  Obs.Metrics.incr ~by:(List.length !out) m_instances;
  !out

type t = { tree : Mlkit.Dtree.t }

let train (instances : instance list) : t option =
  match instances with
  | [] -> None
  | _ ->
    let xs = Array.of_list (List.map (fun i -> i.feats) instances) in
    let ys = Array.of_list (List.map (fun i -> i.label) instances) in
    let d = Mlkit.Dataset.make xs ys in
    let params =
      { Mlkit.Dtree.default_params with Mlkit.Dtree.max_depth = 10 }
    in
    Some { tree = Mlkit.Dtree.fit ~params d }

(* does the model prefer [a] over [b] on program [p]? *)
let prefers (t : t) (p : Ir.program) (a : Pass.t) (b : Pass.t) : bool =
  Mlkit.Dtree.predict t.tree (instance_features p a b) = 1

(* Derive a phase ordering by running a tournament at each step; the
   returned sequence ends with the completion cleanup the labels assumed. *)
let order (t : t) ?(steps = 5) (p : Ir.program) : Pass.t list =
  Obs.span ~cat:"search" "tournament.order" @@ fun () ->
  let current = ref p in
  let chosen = ref [] in
  let unroll_used = ref false in
  for _ = 1 to steps do
    let candidates =
      if !unroll_used then
        List.filter (fun x -> not (Pass.is_unroll x)) Pass.all
      else Pass.all
    in
    let winner =
      List.fold_left
        (fun champ cand ->
          if prefers t !current cand champ then cand else champ)
        (List.hd candidates) (List.tl candidates)
    in
    if Pass.is_unroll winner then unroll_used := true;
    chosen := winner :: !chosen;
    current := Pass.apply winner !current
  done;
  List.rev_append !chosen completion
