module Ir = Mira.Ir

(* The intelligent optimization controller (paper Sec. III-A): given a
   program and the knowledge base, choose how to optimize it.

   - [one_shot]: predict a single sequence from prior knowledge (static
     features -> nearest training programs -> their best sequence), apply
     it, produce the executable.  No target-system runs needed.
   - [one_shot_counters]: like the paper's PCModel — spend one -O0
     profiling run, predict from the counter characterization.
   - [iterative]: fit a focused sequence model from the knowledge base and
     spend an evaluation budget searching; converges to the best sequence
     found.  This is the "iterate until the selection converges" mode. *)

module Kb = Knowledge.Kb

type decision = {
  sequence : Passes.Pass.t list;
  predicted_from : string list;     (* training programs consulted *)
  evaluations : int;                (* target-system runs spent *)
}

type compiled = {
  program : Ir.program;
  decision : decision;
}

(* --- one-shot from static features ------------------------------- *)

let one_shot ?(config = Mach.Config.default) (kb : Kb.t) (p : Ir.program) :
    compiled =
  let arch = config.Mach.Config.name in
  let feats = Features.restrict_to_similarity (Features.extract p) in
  let neighbors =
    Search.Focused.nearest_programs kb ~arch ~target_features:feats ~n:1
  in
  let sequence =
    match neighbors with
    | prog :: _ -> (
      match Kb.best kb ~prog ~arch with
      | Some e -> e.Kb.seq
      | None -> Passes.Pass.o2)
    | [] -> Passes.Pass.o2
  in
  {
    program = Passes.Pass.apply_sequence sequence p;
    decision = { sequence; predicted_from = neighbors; evaluations = 0 };
  }

(* --- one-shot from performance counters (PCModel) ----------------- *)

let one_shot_counters ?engine ?(config = Mach.Config.default) ?(trials = 1)
    (kb : Kb.t) (p : Ir.program) : compiled =
  let config =
    match engine with Some eng -> Engine.config eng | None -> config
  in
  let arch = config.Mach.Config.name in
  match Pcmodel.train kb ~arch with
  | None ->
    {
      program = Passes.Pass.apply_sequence Passes.Pass.o2 p;
      decision =
        { sequence = Passes.Pass.o2; predicted_from = []; evaluations = 0 };
    }
  | Some model ->
    let r = Mach.Sim.run ~config p in
    let counters = Characterize.counter_assoc r.Mach.Sim.counters in
    let sequence, evals =
      if trials <= 1 then (Pcmodel.predict model counters, 0)
      else begin
        let seq, _ =
          Pcmodel.predict_and_pick model ~trials counters
            (Characterize.evaluator ?engine ~config p)
        in
        (seq, trials)
      end
    in
    let predicted_from =
      Pcmodel.neighbors model counters
      |> List.filteri (fun i _ -> i < 3)
      |> List.map (fun (prog, _, _) -> prog)
    in
    {
      program = Passes.Pass.apply_sequence sequence p;
      decision = { sequence; predicted_from; evaluations = 1 + evals };
    }

(* --- iterative (model-focused search) ----------------------------- *)

let iterative ?engine ?(config = Mach.Config.default) ?(seed = 1)
    ?(budget = 20) ?(params = Search.Focused.default_params) (kb : Kb.t)
    (p : Ir.program) : compiled * Search.Strategies.result =
  let config =
    match engine with Some eng -> Engine.config eng | None -> config
  in
  let arch = config.Mach.Config.name in
  let feats = Features.restrict_to_similarity (Features.extract p) in
  let model =
    Search.Focused.fit_model kb ~arch ~params ~target_features:feats
  in
  let result =
    Search.Focused.search ~seed ~budget model
      (Characterize.evaluator ?engine ~config p)
  in
  let neighbors =
    Search.Focused.nearest_programs kb ~arch ~target_features:feats
      ~n:params.Search.Focused.neighbors
  in
  ( {
      program = Passes.Pass.apply_sequence result.Search.Strategies.best_seq p;
      decision =
        {
          sequence = result.Search.Strategies.best_seq;
          predicted_from = neighbors;
          evaluations = budget;
        };
    },
    result )
