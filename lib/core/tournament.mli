(** The paper's Sec. II-A phrasing of phase ordering as a learning
    problem: "given certain optimizations already applied and two possible
    optimizations to apply next, choose which of the two to perform",
    used to run a tournament among all passes at every step. *)

(** the "run to the end with a competent heuristic" cleanup (Sec. II-A)
    appended when labelling choices and to every derived ordering *)
val completion : Passes.Pass.t list

type instance = { feats : float array; label : int (** 1 = first wins *) }

(** static features of the current program + one-hot pass identities *)
val instance_features :
  Mira.Ir.program -> Passes.Pass.t -> Passes.Pass.t -> float array

(** Generate labelled instances from one program, pursuing both choices
    at each decision point and evaluating them on the machine model, as
    the methodology prescribes.  Instances come in mirrored pairs.
    With [engine], candidate evaluations go through the cached engine
    (and, when its pool is parallel, each decision point is scored as
    one batch); the generated instances are identical either way. *)
val gen_instances :
  ?engine:Engine.t -> ?config:Mach.Config.t -> ?seed:int -> ?steps:int ->
  ?pairs_per_step:int -> Mira.Ir.program -> instance list

type t = { tree : Mlkit.Dtree.t }

(** [None] on an empty instance list *)
val train : instance list -> t option

(** does the model prefer pass [a] over [b] for this program state? *)
val prefers : t -> Mira.Ir.program -> Passes.Pass.t -> Passes.Pass.t -> bool

(** derive a program-specific phase ordering: a tournament over all
    passes at each of [steps] rounds, applying each round's winner; the
    result ends with {!completion} *)
val order : t -> ?steps:int -> Mira.Ir.program -> Passes.Pass.t list
