(** Application characterization and knowledge-base population: the
    "static and dynamic process characterization" feeding the knowledge
    base in the paper's Fig. 1. *)

(** normalized (per-instruction) counter rates as a named list *)
val counter_assoc : Mach.Counters.bank -> (string * float) list

(** profile a program at -O0 on the given machine: static features +
    counter rates + base cycles *)
val characterize :
  ?config:Mach.Config.t -> prog:string -> Mira.Ir.program ->
  Knowledge.Kb.characterization

(** compile with [seq] and simulate; [infinity] when the optimized program
    traps or diverges, so broken sequences lose every comparison *)
val eval_sequence :
  ?config:Mach.Config.t -> Mira.Ir.program -> Passes.Pass.t list -> float

(** The cost oracle handed to search strategies and prediction models.
    With [engine] it is the cached engine path (program digested once);
    without, the direct {!eval_sequence}.  If both [engine] and [config]
    are given, the engine's machine configuration wins. *)
val evaluator :
  ?engine:Engine.t -> ?config:Mach.Config.t -> Mira.Ir.program ->
  Passes.Pass.t list -> float

(** like {!eval_sequence}, also appending the experiment to the KB *)
val record_experiment :
  ?config:Mach.Config.t -> Knowledge.Kb.t -> prog:string -> Mira.Ir.program ->
  Passes.Pass.t list -> float

(** Build a knowledge base by random exploration of each training
    program's sequence space (the paper's "significant training period").
    [per_program] random sequences plus the O0/O2/Ofast points are
    evaluated per program.  With [engine], the whole build is one batch —
    parallel across the worker pool, cached across runs — and produces a
    KB identical to the serial path's. *)
val build_kb :
  ?engine:Engine.t -> ?config:Mach.Config.t -> ?seed:int ->
  ?per_program:int -> ?length:int ->
  (string * Mira.Ir.program) list -> Knowledge.Kb.t
