(* Persistent on-disk trace store: the cross-run / cross-worker tier
   below Engine.Tcache (see DESIGN.md "Trace store").

   Log format (binary, header first):

     mira-tstore 1
     \nTSE1|<sum8>|<key32>|<len>\n<len payload bytes>\n
     ...

   <sum8> = first 8 hex chars of MD5(payload); <key32> = MD5 hex of
   (compiled-IR digest, fuel) — same identity Tcache keys on, hashed so
   the marker line needs no quoting.  The payload is Mtrace.encode's
   varint/delta form, so a trace costs a couple of bytes per event word
   instead of the in-memory array's eight.  Each entry starts with its
   own '\n': a torn payload (crash mid-write) then never glues onto the
   next entry's marker line, so the scanner resynchronizes at the first
   intact marker after the tear.

   Crash-safety mirrors Rcache: entries failing frame/checksum
   validation are quarantined (counted, dropped) and the log rewritten
   clean (self-heal); compaction is atomic (temp file + rename);
   a pid lock file rejects concurrent writers and breaks stale locks
   of dead ones; [absorb] merges a worker's store read-only, last donor
   entry per key wins, recipient keys untouched.  The last entry for a
   key wins on replay, so re-recording is just appending.

   Injection points consulted here (see Faults): tstore-write,
   stale-lock, compact-crash. *)

module Mtrace = Mach.Mtrace

exception Store_error of string

let magic = "mira-tstore 1"

type loc = { off : int; len : int }

type t = {
  dir : string;
  index : (string, loc) Hashtbl.t; (* key32 -> payload location *)
  mutable order : string list; (* first-seen key order, reversed *)
  mutable log : out_channel option;
  mutable quarantined : int;
  mutable write_errors : int;
  mutable stale_locks : int;
  mutable hits : int;
  mutable misses : int;
}

(* ------------------------------------------------------------------ *)
(* observability *)

let m_hits = Obs.Metrics.counter "tstore.hits"
let m_misses = Obs.Metrics.counter "tstore.misses"
let m_adds = Obs.Metrics.counter "tstore.adds"
let m_quarantined = Obs.Metrics.counter "tstore.quarantined"
let m_write_errors = Obs.Metrics.counter "tstore.write_errors"
let m_stale_locks = Obs.Metrics.counter "tstore.stale_locks_broken"
let m_compactions = Obs.Metrics.counter "tstore.compactions"
let m_absorbed = Obs.Metrics.counter "tstore.absorbed"
let m_absorb_dups = Obs.Metrics.counter "tstore.absorb_duplicates"
let m_absorb_rejected = Obs.Metrics.counter "tstore.absorb_rejected"

let bytes_per_word =
  Obs.Metrics.histogram ~unit_:"B/word" "tstore.bytes_per_word"

let note_quarantined t =
  t.quarantined <- t.quarantined + 1;
  Obs.Metrics.incr m_quarantined;
  Obs.Trace.instant ~cat:"tstore" "tstore.quarantine"

let note_write_error t =
  t.write_errors <- t.write_errors + 1;
  Obs.Metrics.incr m_write_errors;
  Obs.Trace.instant ~cat:"tstore" "tstore.write-error"

let note_stale_lock t =
  t.stale_locks <- t.stale_locks + 1;
  Obs.Metrics.incr m_stale_locks;
  Obs.Trace.instant ~cat:"tstore" "tstore.stale-lock-broken"

(* ------------------------------------------------------------------ *)
(* keys and entry framing *)

let checksum payload =
  String.sub (Digest.to_hex (Digest.string payload)) 0 8

let key ~ir_digest ~fuel =
  Digest.to_hex (Digest.string (ir_digest ^ "\x00" ^ string_of_int fuel))

let dec s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let hex n s =
  String.length s = n
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

(* "TSE1|<sum8>|<key32>|<len>" *)
let parse_marker line =
  match String.split_on_char '|' line with
  | [ "TSE1"; sum; k; len ] when hex 8 sum && hex 32 k && dec len -> (
    match int_of_string_opt len with
    | Some l -> Some (sum, k, l)
    | None -> None)
  | _ -> None

let marker_line ~sum ~key:k ~len = Printf.sprintf "TSE1|%s|%s|%d\n" sum k len

(* ------------------------------------------------------------------ *)
(* the single-writer advisory lock (Rcache's protocol, own file) *)

let lock_path dir = Filename.concat dir "tstore.lock"

let pid_alive pid =
  if pid <= 0 then false
  else
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception _ -> true (* EPERM and friends: someone is there *)

let read_small_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        Some (really_input_string ic (min 64 (in_channel_length ic))))

let lock_owner path =
  match read_small_file path with
  | None -> None
  | Some content ->
    let content = String.trim content in
    Some (if dec content then int_of_string content else -1)

let acquire_lock t dir =
  let path = lock_path dir in
  if Faults.fires "stale-lock" then begin
    let oc = open_out path in
    output_string oc "0";
    close_out oc
  end;
  (match lock_owner path with
   | None -> ()
   | Some owner ->
     if owner = Unix.getpid () then ()
     else if pid_alive owner then
       raise
         (Store_error
            (Printf.sprintf
               "%s: trace store is in use by running process %d (remove \
                the lock file if that process is gone)"
               path owner))
     else begin
       (try Sys.remove path with Sys_error _ -> ());
       note_stale_lock t
     end);
  let oc = open_out path in
  output_string oc (string_of_int (Unix.getpid ()));
  close_out oc

let release_lock dir =
  let path = lock_path dir in
  match lock_owner path with
  | Some owner when owner = Unix.getpid () ->
    (try Sys.remove path with Sys_error _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* scanning *)

let log_file dir = Filename.concat dir "store.log"

let open_append path =
  open_out_gen [ Open_append; Open_creat; Open_wronly; Open_binary ] 0o644
    path

(* Stream every framed entry of [path] in file order:
   [f key loc payload].  Frame or checksum failures call
   [bad] once and the scan resynchronizes line by line — each entry's
   leading '\n' guarantees an intact marker starts a line even after a
   torn predecessor. *)
let scan_log path ~on_bad_header ~bad f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let size = in_channel_length ic in
      (match input_line ic with
       | h when h = magic -> ()
       | h
         when String.length h < String.length magic
              && String.starts_with ~prefix:h magic ->
         (* a header torn by a crash during store creation *)
         bad ()
       | h ->
         on_bad_header h (* caller decides: hard error or ignore *)
       | exception End_of_file -> ());
      (* after a bad frame the scan is resynchronizing: the residue of
         a torn payload parses as so many garbage lines, all part of the
         one lost entry — count the frame once, skip the residue *)
      let skipping = ref false in
      try
        while true do
          let line = input_line ic in
          if line <> "" then
            match parse_marker line with
            | Some (sum, k, len) when pos_in ic + len <= size ->
              let off = pos_in ic in
              let payload = really_input_string ic len in
              let term =
                match input_char ic with
                | '\n' -> true
                | _ -> false
                | exception End_of_file -> false
              in
              if term && String.equal (checksum payload) sum then begin
                skipping := false;
                f k { off; len } payload
              end
              else begin
                bad ();
                skipping := true
              end
            | Some _ ->
              (* payload overruns the file: torn tail *)
              bad ();
              skipping := true
            | None ->
              if not !skipping then begin
                bad ();
                skipping := true
              end
        done
      with End_of_file -> ())

(* ------------------------------------------------------------------ *)
(* reading entries *)

let read_payload t loc =
  let ic = open_in_bin (log_file t.dir) in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      seek_in ic loc.off;
      really_input_string ic loc.len)

let find t ~ir_digest ~fuel =
  let k = key ~ir_digest ~fuel in
  match Hashtbl.find_opt t.index k with
  | None ->
    t.misses <- t.misses + 1;
    Obs.Metrics.incr m_misses;
    None
  | Some loc ->
    let corrupt () =
      (* checksum-valid but undecodable (or unreadable): drop it and
         let the caller regenerate; the log heals at the next open *)
      Hashtbl.remove t.index k;
      note_quarantined t;
      t.misses <- t.misses + 1;
      Obs.Metrics.incr m_misses;
      None
    in
    (match Mtrace.decode (read_payload t loc) with
    | Ok tr ->
      t.hits <- t.hits + 1;
      Obs.Metrics.incr m_hits;
      Some tr
    | Error _ -> corrupt ()
    | exception Sys_error _ -> corrupt ()
    | exception End_of_file -> corrupt ())

let mem t ~ir_digest ~fuel = Hashtbl.mem t.index (key ~ir_digest ~fuel)

(* ------------------------------------------------------------------ *)
(* writing *)

let record t k loc =
  if not (Hashtbl.mem t.index k) then t.order <- k :: t.order;
  Hashtbl.replace t.index k loc

let append_entry t k payload =
  match t.log with
  | None -> ()
  | Some oc -> (
    match
      let len = String.length payload in
      let header = marker_line ~sum:(checksum payload) ~key:k ~len in
      let start = out_channel_length oc in
      if Faults.fires "tstore-write" then begin
        (* the marker and roughly half the payload, no terminator:
           exactly what a crash mid-write leaves behind *)
        output_char oc '\n';
        output_string oc header;
        output_substring oc payload 0 (len / 2);
        flush oc;
        None
      end
      else begin
        output_char oc '\n';
        output_string oc header;
        output_string oc payload;
        output_char oc '\n';
        flush oc;
        Some { off = start + 1 + String.length header; len }
      end
    with
    | Some loc -> record t k loc
    | None -> () (* torn: the entry is lost; the next open self-heals *)
    | exception _ -> note_write_error t)

let add t ~ir_digest ~fuel tr =
  let k = key ~ir_digest ~fuel in
  (* traces are deterministic per key: re-adding would only duplicate *)
  if not (Hashtbl.mem t.index k) then begin
    let payload = Mtrace.encode tr in
    Obs.Metrics.incr m_adds;
    Obs.Metrics.observe bytes_per_word
      (float_of_int (String.length payload)
      /. float_of_int (max 1 tr.Mtrace.n));
    append_entry t k payload
  end

(* ------------------------------------------------------------------ *)
(* compaction *)

(* Rewrite [path] as a clean log: one entry per key, last value wins,
   corruption scrubbed.  Atomic: temp file + rename. *)
let rewrite_log path =
  let order = ref [] in
  let latest : (string, string) Hashtbl.t = Hashtbl.create 64 in
  (if Sys.file_exists path then
     scan_log path
       ~on_bad_header:(fun _ -> ())
       ~bad:(fun () -> ())
       (fun k _loc payload ->
         if not (Hashtbl.mem latest k) then order := k :: !order;
         Hashtbl.replace latest k payload));
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  output_string oc magic;
  output_char oc '\n';
  List.iter
    (fun k ->
      let payload = Hashtbl.find latest k in
      output_char oc '\n';
      output_string oc
        (marker_line ~sum:(checksum payload) ~key:k
           ~len:(String.length payload));
      output_string oc payload;
      output_char oc '\n')
    (List.rev !order);
  close_out oc;
  if Faults.fires "compact-crash" then begin
    (try Sys.remove tmp with Sys_error _ -> ());
    raise (Faults.Injected "compact-crash")
  end;
  Sys.rename tmp path

(* re-scan a just-rewritten (clean) log to rebuild the offset index *)
let rebuild_index t =
  Hashtbl.reset t.index;
  t.order <- [];
  let path = log_file t.dir in
  if Sys.file_exists path then
    scan_log path
      ~on_bad_header:(fun _ -> ())
      ~bad:(fun () -> ())
      (fun k loc _payload -> record t k loc)

let compact t =
  match t.log with
  | None -> ()
  | Some oc ->
    Obs.Metrics.incr m_compactions;
    Obs.Trace.with_span ~cat:"tstore" "tstore.compact" (fun () ->
        let path = log_file t.dir in
        (* close before rename so no buffered bytes chase the old inode *)
        flush oc;
        close_out_noerr oc;
        t.log <- None;
        Fun.protect
          ~finally:(fun () ->
            t.log <- Some (open_append path);
            rebuild_index t)
          (fun () -> rewrite_log path))

(* ------------------------------------------------------------------ *)
(* absorbing another store's log — the merge primitive of distributed
   sweeps, mirroring Rcache.absorb: read-only on the donor, frame +
   checksum validation per entry, last donor entry per key wins, keys
   the recipient already holds are left untouched (traces are
   content-addressed and deterministic).  The absorbed appends are
   folded into one clean log by the atomic compact. *)

type absorb_stats = { absorbed : int; duplicates : int; rejected : int }

let absorb_raw t donor_dir =
  let zero = { absorbed = 0; duplicates = 0; rejected = 0 } in
  if not (Sys.file_exists donor_dir) then zero
  else if not (Sys.is_directory donor_dir) then
    raise (Store_error (donor_dir ^ ": not a directory"))
  else begin
    (* refuse a donor a live process is still writing; a lock left by a
       dead worker is the expected case and does not block the merge *)
    (match lock_owner (lock_path donor_dir) with
     | Some owner when owner <> Unix.getpid () && pid_alive owner ->
       raise
         (Store_error
            (Printf.sprintf
               "%s: donor trace store is in use by running process %d"
               donor_dir owner))
     | _ -> ());
    let path = log_file donor_dir in
    if not (Sys.file_exists path) then zero
    else begin
      let rejected = ref 0 in
      let order = ref [] in
      let latest : (string, string) Hashtbl.t = Hashtbl.create 64 in
      (try
         scan_log path
           ~on_bad_header:(fun h ->
             raise
               (Store_error
                  (Printf.sprintf "%s: not a trace store (bad header %S)"
                     path h)))
           ~bad:(fun () -> incr rejected)
           (fun k _loc payload ->
             if not (Hashtbl.mem latest k) then order := k :: !order;
             Hashtbl.replace latest k payload)
       with Sys_error e ->
         raise (Store_error ("cannot open donor log: " ^ e)));
      let absorbed = ref 0 and duplicates = ref 0 in
      List.iter
        (fun k ->
          if Hashtbl.mem t.index k then incr duplicates
          else begin
            append_entry t k (Hashtbl.find latest k);
            incr absorbed
          end)
        (List.rev !order);
      if !absorbed > 0 then compact t;
      Obs.Metrics.incr ~by:!absorbed m_absorbed;
      Obs.Metrics.incr ~by:!duplicates m_absorb_dups;
      Obs.Metrics.incr ~by:!rejected m_absorb_rejected;
      { absorbed = !absorbed; duplicates = !duplicates;
        rejected = !rejected }
    end
  end

let absorb t donor_dir =
  Obs.span_with ~cat:"tstore" "tstore.absorb"
    ~end_args:(fun s ->
      [
        ("absorbed", Obs.Trace.Int s.absorbed);
        ("duplicates", Obs.Trace.Int s.duplicates);
        ("rejected", Obs.Trace.Int s.rejected);
      ])
    (fun () -> absorb_raw t donor_dir)

(* ------------------------------------------------------------------ *)
(* opening *)

let open_dir_raw dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      raise (Store_error (dir ^ ": not a directory"))
  end
  else begin
    match Sys.mkdir dir 0o755 with
    | () -> ()
    | exception Sys_error e ->
      raise (Store_error ("cannot create trace-store directory: " ^ e))
  end;
  let t =
    {
      dir;
      index = Hashtbl.create 64;
      order = [];
      log = None;
      quarantined = 0;
      write_errors = 0;
      stale_locks = 0;
      hits = 0;
      misses = 0;
    }
  in
  acquire_lock t dir;
  match
    let path = log_file dir in
    let fresh = not (Sys.file_exists path) in
    if not fresh then begin
      (try
         scan_log path
           ~on_bad_header:(fun h ->
             raise
               (Store_error
                  (Printf.sprintf "%s: not a trace store (bad header %S)"
                     path h)))
           ~bad:(fun () -> note_quarantined t)
           (fun k loc _payload -> record t k loc)
       with Sys_error e -> raise (Store_error ("cannot open log: " ^ e)));
      (* self-heal: a log that quarantined anything is scrubbed, also
         re-terminating any torn tail so later appends cannot glue onto
         it; the rewrite invalidates offsets, so the index is rebuilt *)
      if t.quarantined > 0 then begin
        rewrite_log path;
        rebuild_index t
      end
    end;
    let oc = open_append path in
    if
      fresh
      || (Unix.fstat (Unix.descr_of_out_channel oc)).Unix.st_size = 0
    then begin
      output_string oc magic;
      output_char oc '\n';
      flush oc
    end;
    t.log <- Some oc
  with
  | () -> t
  | exception e ->
    (* do not leave the lock behind on a failed open *)
    release_lock dir;
    raise e

(* opening replays (checksums) the whole log — one of the visible
   startup stalls on a warm store, so it is a span *)
let open_dir dir =
  Obs.span_with ~cat:"tstore" "tstore.open"
    ~end_args:(fun t ->
      [
        ("entries", Obs.Trace.Int (Hashtbl.length t.index));
        ("quarantined", Obs.Trace.Int t.quarantined);
      ])
    (fun () -> open_dir_raw dir)

(* ------------------------------------------------------------------ *)

let entries t = Hashtbl.length t.index
let quarantined t = t.quarantined
let write_errors t = t.write_errors
let stale_locks_broken t = t.stale_locks
let hits t = t.hits
let misses t = t.misses

let bytes_on_disk t =
  match t.log with
  | Some oc -> out_channel_length oc
  | None -> (
    try (Unix.stat (log_file t.dir)).Unix.st_size with Unix.Unix_error _ -> 0)

let payload_bytes t =
  Hashtbl.fold (fun _ loc acc -> acc + loc.len) t.index 0

let directory t = t.dir

let close t =
  (match t.log with
   | None -> ()
   | Some oc -> ( try close_out oc with Sys_error _ -> ()));
  t.log <- None;
  release_lock t.dir
