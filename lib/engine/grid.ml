(* Parallel architecture-grid replay: Sim.run_grid's pricing loop
   lifted into the engine layer, where Pool and the trace tiers live
   (lib/machine cannot depend on lib/engine).

   One trace fetch in the parent — through Tcache (and its Tstore tier)
   when one is attached, a plain generation otherwise — then one
   Replay.run per config, forked across Pool workers.  The trace
   reaches the children by fork inheritance, so nothing is shipped out;
   only the per-config Flatsim.result comes back.  Replay is
   deterministic, so any non-Done outcome (a killed or wedged worker)
   is simply replayed in the parent, keeping the result array
   bit-identical to the serial path by construction.

   A non-Finished trace re-raises its engine exception (Trap /
   Out_of_fuel) before any worker forks, exactly like Sim.run_grid. *)

module Mtrace = Mach.Mtrace
module Replay = Mach.Replay
module Sim = Mach.Sim

let runs = Obs.Metrics.counter "grid.runs"
let fallbacks = Obs.Metrics.counter "grid.serial_fallbacks"

let reraise_outcome (tr : Mtrace.t) =
  match tr.Mtrace.outcome with
  | Mtrace.Finished -> ()
  | Mtrace.Trapped m -> raise (Mira.Interp.Trap m)
  | Mtrace.Exhausted -> raise Mira.Interp.Out_of_fuel

let replay_grid ?(jobs = 1) ~(configs : Mach.Config.t array) (tr : Mtrace.t)
    : Sim.result array =
  reraise_outcome tr;
  let n = Array.length configs in
  if jobs <= 1 || n <= 1 then
    Array.map Sim.of_flatsim (Replay.run_grid ~configs tr)
  else begin
    let outcomes =
      Pool.map ~jobs:(min jobs n)
        (fun i -> Replay.run ~config:configs.(i) tr)
        (Array.init n Fun.id)
    in
    Array.mapi
      (fun i outcome ->
        match outcome with
        | Pool.Done r -> Sim.of_flatsim r
        | Pool.Failed _ | Pool.Crashed | Pool.Timed_out ->
          Obs.Metrics.incr fallbacks;
          Sim.of_flatsim (Replay.run ~config:configs.(i) tr))
      outcomes
  end

let run_grid ?jobs ?(fuel = Sim.default_fuel) ?tcache
    ~(configs : Mach.Config.t array) (p : Mira.Ir.program) :
    Sim.result array =
  Obs.Metrics.incr runs;
  Obs.span_with ~cat:"grid" "grid.run"
    ~end_args:(fun _ ->
      [
        ("configs", Obs.Trace.Int (Array.length configs));
        ("jobs", Obs.Trace.Int (match jobs with Some j -> j | None -> 1));
      ])
    (fun () ->
      let tr =
        match tcache with
        | None -> Mtrace.generate_program ~fuel p
        | Some tc ->
          Tcache.find_or_generate tc ~ir_digest:(Pctrie.digest p) ~fuel
            (fun () -> Mtrace.generate_program ~fuel p)
      in
      replay_grid ?jobs ~configs tr)
