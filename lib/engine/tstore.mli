(** Persistent on-disk trace store: the durable tier below {!Tcache}
    (see DESIGN.md "Trace store").

    One append-only checksummed log per directory holds
    {!Mach.Mtrace.encode}d traces keyed by (compiled-IR digest, fuel) —
    the same config-free identity {!Tcache} uses — so a warm store lets
    every later run, and every distributed worker, replay architecture
    grids without executing program semantics again.

    Crash-safety mirrors {!Rcache}: per-entry MD5 checksums; torn or
    corrupt entries are quarantined (counted, dropped) and the log
    rewritten clean (self-heal); compaction is atomic (temp file +
    rename); an advisory pid lock rejects concurrent writers and breaks
    stale locks of dead ones; {!absorb} merges a worker's store
    read-only, exactly like result caches merge in distributed sweeps.

    Fault-injection points consulted (see {!Faults}): ["tstore-write"]
    (a torn entry append), ["stale-lock"], ["compact-crash"]. *)

type t

(** lock conflicts, unreadable/foreign logs, failed directory creation;
    callers treat it like {!Rcache.Cache_error} *)
exception Store_error of string

val magic : string
(** first line of a store log *)

(** Open (creating if needed) the store in [dir], replaying and
    checksum-validating its log.  Quarantines corrupt entries and
    self-heals the log; raises {!Store_error} on a lock held by a live
    process or a non-store file. *)
val open_dir : string -> t

(** [find] decodes the stored trace for the key, or [None]; an
    undecodable (yet checksum-valid) entry is dropped and counted as
    quarantined rather than raising. *)
val find : t -> ir_digest:string -> fuel:int -> Mach.Mtrace.t option

val mem : t -> ir_digest:string -> fuel:int -> bool

(** [add] encodes and appends the trace; a no-op if the key is already
    stored (traces are deterministic per key).  Write failures degrade
    to memory-only (counted), they never kill the run. *)
val add : t -> ir_digest:string -> fuel:int -> Mach.Mtrace.t -> unit

(** atomically rewrite the log: one entry per key, corruption
    scrubbed *)
val compact : t -> unit

type absorb_stats = { absorbed : int; duplicates : int; rejected : int }

(** [absorb t donor_dir] merges the donor store's entries into [t]:
    read-only on the donor, frame + checksum validation per entry
    (failures counted as [rejected]), last donor entry per key wins,
    keys [t] already holds are left untouched ([duplicates]).  A lock
    left by a dead donor process is broken; a live one raises
    {!Store_error}.  A missing donor directory or log is an empty
    merge. *)
val absorb : t -> string -> absorb_stats

val entries : t -> int
val quarantined : t -> int
val write_errors : t -> int
val stale_locks_broken : t -> int
val hits : t -> int
val misses : t -> int

val bytes_on_disk : t -> int
(** current size of the log file *)

val payload_bytes : t -> int
(** summed encoded size of the live entries (excludes framing) *)

val directory : t -> string

(** close the log and release the lock (entries already on disk stay) *)
val close : t -> unit
