(* The evaluation engine: content-addressed caching + forked parallelism
   over the one hot operation of the whole system, "apply sequence, run
   the simulator, read cycles and counters". *)

module Rcache = Rcache
module Pool = Pool
module Faults = Faults
module Journal = Journal
module Pctrie = Pctrie
module Tcache = Tcache
module Tstore = Tstore
module Grid = Grid
module Shard = Shard
module Dist = Dist
module Ir = Mira.Ir
module Pass = Passes.Pass

type outcome = {
  cost : float;
  cycles : int option;
  code_size : int option;
  counters : int array option;
  from_cache : bool;
}

type stats = {
  mutable evals : int;
  mutable hits : int;
  mutable sims : int;
  mutable dedup_hits : int;
  mutable failures : int;
  mutable wall : float;
}

(* Observability: the per-engine [stats] record stays (pp_stats output is
   pinned by the cram tests and callers can hold several engines), but
   every increment is mirrored into the global registry so `--metrics`
   shows engine traffic next to pool/cache health in one table. *)
let m_evals = Obs.Metrics.counter "engine.evals"
let m_hits = Obs.Metrics.counter "engine.cache.hits"
let m_misses = Obs.Metrics.counter "engine.cache.misses"
let m_dedup = Obs.Metrics.counter "engine.dedup_hits"
let m_failures = Obs.Metrics.counter "engine.failures"
let eval_ms = Obs.Metrics.histogram "engine.eval_ms"

type t = {
  config : Mach.Config.t;
  config_digest : string;
  jobs : int;
  fuel : int;
  task_timeout : float;
  retries : int;
  max_respawns : int;
  respawn_backoff : float;
  cache : Rcache.t;
  trie : Pctrie.t option;  (* None = sharing disabled (--no-share) *)
  tcache : Tcache.t;       (* traces, used when the trace engine is on *)
  stats : stats;
  pool_health : Pool.health;
}

let create ?(jobs = 1) ?cache ?(fuel = Mach.Sim.default_fuel)
    ?(task_timeout = Pool.default_task_timeout) ?(retries = 1)
    ?(max_respawns = Pool.default_max_respawns)
    ?(respawn_backoff = Pool.default_respawn_backoff) ?(share = true)
    ?trie_capacity ?tcache ?tstore config =
  let cache =
    match cache with Some c -> c | None -> Rcache.in_memory ()
  in
  let tcache =
    (* an explicit tcache keeps its own store wiring; tstore only
       shapes the default one *)
    match tcache with
    | Some c -> c
    | None -> Tcache.create ?store:tstore ()
  in
  {
    config;
    config_digest = Mach.Config.digest config;
    jobs = max 1 jobs;
    fuel;
    task_timeout;
    retries;
    max_respawns;
    respawn_backoff;
    cache;
    trie = (if share then Some (Pctrie.create ?capacity:trie_capacity ()) else None);
    tcache;
    stats =
      { evals = 0; hits = 0; sims = 0; dedup_hits = 0; failures = 0;
        wall = 0.0 };
    pool_health = Pool.empty_health ();
  }

let config t = t.config
let jobs t = t.jobs
let cache t = t.cache
let tcache t = t.tcache
let stats t = t.stats
let share t = Option.is_some t.trie
let trie t = t.trie

let reset_stats t =
  let s = t.stats in
  s.evals <- 0;
  s.hits <- 0;
  s.sims <- 0;
  s.dedup_hits <- 0;
  s.failures <- 0;
  s.wall <- 0.0

let hit_rate t =
  if t.stats.evals = 0 then 0.0
  else float_of_int t.stats.hits /. float_of_int t.stats.evals

let ir_digest = Pctrie.digest

(* The cache key binds everything the measurement depends on: program
   text (via its printed IR), sequence, machine configuration, fuel, and
   the pass-set version (DESIGN.md: bump Pass.version when any pass's
   behaviour changes — that is the invalidation rule). *)
let key_of t ~prog_digest seq =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            prog_digest;
            Pass.sequence_to_string seq;
            t.config_digest;
            string_of_int t.fuel;
            Pass.version;
          ]))

let key t p seq = key_of t ~prog_digest:(ir_digest p) seq

(* The simulation-dedup key: everything the simulator's verdict depends
   on once the code is fixed — the compiled IR, the machine, the fuel.
   The "sim" prefix keeps these entries in their own namespace next to
   the (program, sequence) keys in the same Rcache, so a dedup hit
   survives across runs like any other cached result. *)
let sim_key t ~ir_digest =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ "sim"; ir_digest; t.config_digest; string_of_int t.fuel ]))

(* Run the simulator on already-compiled code.  On the trace engine the
   trace cache sits in front: the config-independent event trace is
   generated (or found) under its (ir digest, fuel) key and replayed
   against this engine's config — so re-measuring known code on a new
   machine config costs one model fold, no semantic re-execution.
   Replay re-raises the traced run's Trap/Out_of_fuel, landing in the
   same Failure arm as a live run's. *)
let run_sim t p' ~ir_digest : Rcache.entry =
  let go () =
    match !Mach.Sim.default_engine with
    | Mach.Sim.Trace ->
      let tr =
        Tcache.find_or_generate t.tcache ~ir_digest ~fuel:t.fuel
          (fun () -> Mach.Mtrace.generate_program ~fuel:t.fuel p')
      in
      let r = Mach.Replay.run ~config:t.config tr in
      Rcache.Measured
        {
          ir_digest;
          cycles = r.Mach.Flatsim.cycles;
          code_size = Ir.program_size p';
          counters = Array.copy r.Mach.Flatsim.counters;
        }
    | Mach.Sim.Ref | Mach.Sim.Flat ->
      let r = Mach.Sim.run ~config:t.config ~fuel:t.fuel p' in
      Rcache.Measured
        {
          ir_digest;
          cycles = r.Mach.Sim.cycles;
          code_size = Ir.program_size p';
          counters = Array.copy r.Mach.Sim.counters;
        }
  in
  match go () with
  | e -> e
  | exception (Mira.Interp.Trap _ | Mira.Interp.Out_of_fuel) ->
    Rcache.Failure { ir_digest }

(* the no-share measurement: compile under [seq] from scratch, simulate,
   read the bank — the differential baseline for the sharing paths *)
let simulate t p seq : Rcache.entry =
  let p' = Pass.apply_sequence seq p in
  run_sim t p' ~ir_digest:(ir_digest p')

(* Measure one missed key through the sharing layers: compile via the
   trie (each distinct prefix once), then consult the dedup entry for
   the compiled code before paying for a simulator run.  Returns the
   entry to record under the (program, sequence) key. *)
let measure_shared t trie p ~prog_digest seq : Rcache.entry =
  let p', d = Pctrie.apply_sequence trie p ~digest:prog_digest seq in
  let sk = sim_key t ~ir_digest:d in
  match Rcache.find t.cache sk with
  | Some e ->
    t.stats.dedup_hits <- t.stats.dedup_hits + 1;
    Obs.Metrics.incr m_dedup;
    e
  | None ->
    t.stats.sims <- t.stats.sims + 1;
    let e = run_sim t p' ~ir_digest:d in
    Rcache.add t.cache sk e;
    e

let outcome_of_entry ~from_cache = function
  | Rcache.Measured { ir_digest = _; cycles; code_size; counters } ->
    {
      cost = float_of_int cycles;
      cycles = Some cycles;
      code_size = Some code_size;
      counters = Some counters;
      from_cache;
    }
  | Rcache.Failure _ ->
    {
      cost = infinity;
      cycles = None;
      code_size = None;
      counters = None;
      from_cache;
    }

let failed_outcome =
  { cost = infinity; cycles = None; code_size = None; counters = None;
    from_cache = false }

let count_failure t o =
  if o.cost = infinity then begin
    t.stats.failures <- t.stats.failures + 1;
    Obs.Metrics.incr m_failures
  end

let eval_digested t p ~prog_digest seq =
  let go () =
    let t0 = Unix.gettimeofday () in
    let k = key_of t ~prog_digest seq in
    t.stats.evals <- t.stats.evals + 1;
    Obs.Metrics.incr m_evals;
    let o =
      match Rcache.find t.cache k with
      | Some e ->
        t.stats.hits <- t.stats.hits + 1;
        Obs.Metrics.incr m_hits;
        outcome_of_entry ~from_cache:true e
      | None ->
        Obs.Metrics.incr m_misses;
        let e =
          match t.trie with
          | Some trie -> measure_shared t trie p ~prog_digest seq
          | None ->
            t.stats.sims <- t.stats.sims + 1;
            simulate t p seq
        in
        Rcache.add t.cache k e;
        outcome_of_entry ~from_cache:false e
    in
    count_failure t o;
    t.stats.wall <- t.stats.wall +. (Unix.gettimeofday () -. t0);
    o
  in
  Obs.span_with ~cat:"engine" ~hist:eval_ms "engine.eval"
    ~end_args:(fun o ->
      [ ("from_cache", Obs.Trace.Bool o.from_cache);
        ("cost", Obs.Trace.Float o.cost) ])
    go

let eval t p seq = eval_digested t p ~prog_digest:(ir_digest p) seq

let evaluator t p =
  let prog_digest = ir_digest p in
  fun seq -> (eval_digested t p ~prog_digest seq).cost

(* the shared batch core: tasks are (program, sequence) pairs with their
   source digests and cache keys already computed *)
let eval_tasks t (tasks : (Ir.program * Pass.t list) array)
    (digests : string array) (keys : string array) : outcome array =
  let go () =
  let t0 = Unix.gettimeofday () in
  let n = Array.length tasks in
  t.stats.evals <- t.stats.evals + n;
  Obs.Metrics.incr ~by:n m_evals;
  (* resolve cache hits; collect the unique misses in first-seen order so
     the task list (and thus worker count effects) is deterministic *)
  let resolved : (string, Rcache.entry) Hashtbl.t = Hashtbl.create n in
  let missed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let miss_slots = ref [] in
  let placeholder = Rcache.Failure { ir_digest = String.make 32 '0' } in
  Array.iteri
    (fun i k ->
      if not (Hashtbl.mem resolved k) then
        match Rcache.find t.cache k with
        | Some e -> Hashtbl.replace resolved k e
        | None ->
          Hashtbl.replace resolved k placeholder;
          Hashtbl.replace missed k ();
          miss_slots := i :: !miss_slots)
    keys;
  let miss_slots = Array.of_list (List.rev !miss_slots) in
  let nmiss = Array.length miss_slots in
  t.stats.hits <- t.stats.hits + (n - nmiss);
  Obs.Metrics.incr ~by:nmiss m_misses;
  Obs.Metrics.incr ~by:(n - nmiss) m_hits;
  (* crashed / timed-out work costs infinity for this run but is never
     persisted: it is not known to reproduce *)
  let unreliable : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  (match t.trie with
   | None ->
     (* no sharing: each worker compiles and simulates its own miss,
        exactly the serial simulate path *)
     t.stats.sims <- t.stats.sims + nmiss;
     let computed =
       Pool.map ~jobs:t.jobs ~task_timeout:t.task_timeout
         ~retries:t.retries ~health:t.pool_health
         ~max_respawns:t.max_respawns ~respawn_backoff:t.respawn_backoff
         (fun i ->
           let p, seq = tasks.(i) in
           simulate t p seq)
         miss_slots
     in
     Array.iteri
       (fun j r ->
         let k = keys.(miss_slots.(j)) in
         match r with
         | Pool.Done e ->
           Hashtbl.replace resolved k e;
           Rcache.add t.cache k e
         | Pool.Failed _ | Pool.Crashed | Pool.Timed_out ->
           Hashtbl.replace unreliable k ())
       computed
   | Some trie ->
     (* Sharing: compile the misses in the parent through the trie, in
        prefix-lexicographic order so the LRU window walks one subtree
        at a time, then ship only the distinct compiled programs to the
        pool.  Workers inherit them by fork, so nothing is marshalled,
        and results are keyed by sim key — output order stays task
        order, bit-identical to the serial path. *)
     let order = Array.copy miss_slots in
     Array.sort
       (fun a b ->
         let c = Pass.compare_sequence (snd tasks.(a)) (snd tasks.(b)) in
         if c <> 0 then c else compare a b)
       order;
     let compiled : (int, Ir.program * string) Hashtbl.t =
       Hashtbl.create (max 16 nmiss)
     in
     Array.iter
       (fun i ->
         let p, seq = tasks.(i) in
         Hashtbl.replace compiled i
           (Pctrie.apply_sequence trie p ~digest:digests.(i) seq))
       order;
     (* one simulation job per distinct, uncached sim key, collected in
        first-seen task order (determinism); every other miss is a
        dedup hit served by that job or by a persisted sim entry *)
     let sk_of : (int, string) Hashtbl.t = Hashtbl.create (max 16 nmiss) in
     let sim_entries : (string, Rcache.entry) Hashtbl.t =
       Hashtbl.create 16
     in
     let job_of_sk : (string, int) Hashtbl.t = Hashtbl.create 16 in
     let jobs_rev = ref [] and njobs = ref 0 and ndedup = ref 0 in
     Array.iter
       (fun i ->
         let p', d = Hashtbl.find compiled i in
         let sk = sim_key t ~ir_digest:d in
         Hashtbl.replace sk_of i sk;
         if Hashtbl.mem job_of_sk sk || Hashtbl.mem sim_entries sk then
           incr ndedup
         else
           match Rcache.find t.cache sk with
           | Some e ->
             Hashtbl.replace sim_entries sk e;
             incr ndedup
           | None ->
             Hashtbl.replace job_of_sk sk !njobs;
             jobs_rev := (sk, p', d) :: !jobs_rev;
             incr njobs)
       miss_slots;
     let sim_jobs = Array.of_list (List.rev !jobs_rev) in
     t.stats.sims <- t.stats.sims + !njobs;
     t.stats.dedup_hits <- t.stats.dedup_hits + !ndedup;
     Obs.Metrics.incr ~by:!ndedup m_dedup;
     (* dispatch in the prefix-local order induced by the jobs' first
        needing sequence: neighbours in the queue share compile state *)
     let sched_rev = ref [] in
     let scheduled = Array.make (max 1 !njobs) false in
     Array.iter
       (fun i ->
         match Hashtbl.find_opt job_of_sk (Hashtbl.find sk_of i) with
         | Some j when not scheduled.(j) ->
           scheduled.(j) <- true;
           sched_rev := j :: !sched_rev
         | _ -> ())
       order;
     let schedule = Array.of_list (List.rev !sched_rev) in
     let computed =
       Pool.map ~jobs:t.jobs ~task_timeout:t.task_timeout
         ~retries:t.retries ~health:t.pool_health
         ~max_respawns:t.max_respawns ~respawn_backoff:t.respawn_backoff
         ~schedule
         (fun j ->
           let _, p', d = sim_jobs.(j) in
           run_sim t p' ~ir_digest:d)
         (Array.init !njobs Fun.id)
     in
     let unreliable_sk : (string, unit) Hashtbl.t = Hashtbl.create 4 in
     Array.iteri
       (fun j r ->
         let sk, _, _ = sim_jobs.(j) in
         match r with
         | Pool.Done e ->
           Hashtbl.replace sim_entries sk e;
           Rcache.add t.cache sk e
         | Pool.Failed _ | Pool.Crashed | Pool.Timed_out ->
           Hashtbl.replace unreliable_sk sk ())
       computed;
     (* fill each missed (program, sequence) key from its sim entry *)
     Array.iter
       (fun i ->
         let k = keys.(i) in
         let sk = Hashtbl.find sk_of i in
         if Hashtbl.mem unreliable_sk sk then
           Hashtbl.replace unreliable k ()
         else begin
           let e = Hashtbl.find sim_entries sk in
           Hashtbl.replace resolved k e;
           Rcache.add t.cache k e
         end)
       miss_slots);
  let out =
    Array.map
      (fun k ->
        if Hashtbl.mem unreliable k then failed_outcome
        else
          outcome_of_entry
            ~from_cache:(not (Hashtbl.mem missed k))
            (Hashtbl.find resolved k))
      keys
  in
  Array.iter (count_failure t) out;
  t.stats.wall <- t.stats.wall +. (Unix.gettimeofday () -. t0);
  (n, nmiss, out)
  in
  if not (Obs.Trace.enabled ()) then
    let _, _, out = go () in
    out
  else
    let n, nmiss, out =
      Obs.Trace.with_span ~cat:"engine" "engine.batch" go
    in
    Obs.Trace.instant ~cat:"engine"
      ~args:
        [ ("tasks", Obs.Trace.Int n); ("misses", Obs.Trace.Int nmiss) ]
      "engine.batch-done";
    out

let eval_batch t p seqs =
  let prog_digest = ir_digest p in
  let tasks = Array.of_list (List.map (fun s -> (p, s)) seqs) in
  let digests = Array.map (fun _ -> prog_digest) tasks in
  let keys = Array.map (fun (_, s) -> key_of t ~prog_digest s) tasks in
  eval_tasks t tasks digests keys

let eval_many t pairs =
  let tasks = Array.of_list pairs in
  (* digest each distinct program once (physical identity is enough: the
     same program value flows through a batch) *)
  let seen : (Ir.program * string) list ref = ref [] in
  let digest_of p =
    match List.find_opt (fun (q, _) -> q == p) !seen with
    | Some (_, d) -> d
    | None ->
      let d = ir_digest p in
      seen := (p, d) :: !seen;
      d
  in
  let digests = Array.map (fun (p, _) -> digest_of p) tasks in
  let keys =
    Array.mapi
      (fun i (_, s) -> key_of t ~prog_digest:digests.(i) s)
      tasks
  in
  eval_tasks t tasks digests keys

let costs t p seqs = Array.map (fun o -> o.cost) (eval_batch t p seqs)

(* ------------------------------------------------------------------ *)
(* health: everything the run survived, pool- and cache-side *)

type health = {
  respawns : int;
  spawn_failures : int;
  crashed_workers : int;
  timeouts : int;
  poisoned : int;
  serial_fallbacks : int;
  cache_quarantined : int;
  cache_write_errors : int;
  stale_locks_broken : int;
}

let health t =
  let h = t.pool_health in
  {
    respawns = h.Pool.respawns;
    spawn_failures = h.Pool.spawn_failures;
    crashed_workers = h.Pool.crashed_workers;
    timeouts = h.Pool.timeouts;
    poisoned = h.Pool.poisoned;
    serial_fallbacks = h.Pool.serial_fallbacks;
    cache_quarantined = Rcache.quarantined t.cache;
    cache_write_errors = Rcache.write_errors t.cache;
    stale_locks_broken = Rcache.stale_locks_broken t.cache;
  }

let healthy t =
  Pool.is_healthy t.pool_health
  && Rcache.quarantined t.cache = 0
  && Rcache.write_errors t.cache = 0
  && Rcache.stale_locks_broken t.cache = 0

let pp_health ppf t =
  if healthy t then Fmt.pf ppf "engine health: ok"
  else begin
    let z = health t in
    let fields =
      [
        ("respawns", z.respawns);
        ("spawn-failures", z.spawn_failures);
        ("crashed-workers", z.crashed_workers);
        ("timeouts", z.timeouts);
        ("poisoned-tasks", z.poisoned);
        ("serial-fallbacks", z.serial_fallbacks);
        ("cache-quarantined", z.cache_quarantined);
        ("cache-write-errors", z.cache_write_errors);
        ("stale-locks-broken", z.stale_locks_broken);
      ]
      |> List.filter (fun (_, v) -> v > 0)
    in
    Fmt.pf ppf "engine health: degraded (%s)"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) fields))
  end

let pp_stats ?(wall = true) ppf t =
  let s = t.stats in
  let row k v = Fmt.pf ppf "  %-14s %s@." k v in
  Fmt.pf ppf "engine stats@.";
  row "evaluations" (string_of_int s.evals);
  row "cache hits" (string_of_int s.hits);
  row "cache misses" (string_of_int (s.evals - s.hits));
  row "dedup hits" (string_of_int s.dedup_hits);
  row "simulations" (string_of_int s.sims);
  (match t.trie with
   | None -> ()
   | Some trie ->
     row "trie hits" (string_of_int (Pctrie.hits trie));
     row "trie misses" (string_of_int (Pctrie.misses trie));
     row "trie evictions" (string_of_int (Pctrie.evictions trie)));
  (* trace-cache rows only when the trace engine actually ran: the
     existing flat/ref output shape is pinned by the cram tests *)
  if Tcache.hits t.tcache + Tcache.misses t.tcache > 0 then begin
    row "trace hits" (string_of_int (Tcache.hits t.tcache));
    row "trace misses" (string_of_int (Tcache.misses t.tcache));
    row "trace evictions" (string_of_int (Tcache.evictions t.tcache));
    (* store rows only when a durable tier is attached (keeps the
       cram-pinned shapes of store-less runs intact) *)
    match Tcache.store t.tcache with
    | None -> ()
    | Some store ->
      row "store hits" (string_of_int (Tstore.hits store));
      row "store misses" (string_of_int (Tstore.misses store));
      row "store entries" (string_of_int (Tstore.entries store))
  end;
  row "failures" (string_of_int s.failures);
  row "hit rate" (Printf.sprintf "%.1f%%" (100.0 *. hit_rate t));
  row "cache entries" (string_of_int (Rcache.known t.cache));
  row "quarantined" (string_of_int (Rcache.quarantined t.cache));
  if wall then row "wall time" (Printf.sprintf "%.3fs" s.wall)
