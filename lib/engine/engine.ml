(* The evaluation engine: content-addressed caching + forked parallelism
   over the one hot operation of the whole system, "apply sequence, run
   the simulator, read cycles and counters". *)

module Rcache = Rcache
module Pool = Pool
module Faults = Faults
module Journal = Journal
module Ir = Mira.Ir
module Pass = Passes.Pass

type outcome = {
  cost : float;
  cycles : int option;
  code_size : int option;
  counters : int array option;
  from_cache : bool;
}

type stats = {
  mutable evals : int;
  mutable hits : int;
  mutable sims : int;
  mutable failures : int;
  mutable wall : float;
}

(* Observability: the per-engine [stats] record stays (pp_stats output is
   pinned by the cram tests and callers can hold several engines), but
   every increment is mirrored into the global registry so `--metrics`
   shows engine traffic next to pool/cache health in one table. *)
let m_evals = Obs.Metrics.counter "engine.evals"
let m_hits = Obs.Metrics.counter "engine.cache.hits"
let m_misses = Obs.Metrics.counter "engine.cache.misses"
let m_failures = Obs.Metrics.counter "engine.failures"
let eval_ms = Obs.Metrics.histogram "engine.eval_ms"

type t = {
  config : Mach.Config.t;
  config_digest : string;
  jobs : int;
  fuel : int;
  task_timeout : float;
  retries : int;
  max_respawns : int;
  respawn_backoff : float;
  cache : Rcache.t;
  stats : stats;
  pool_health : Pool.health;
}

let create ?(jobs = 1) ?cache ?(fuel = Mach.Sim.default_fuel)
    ?(task_timeout = Pool.default_task_timeout) ?(retries = 1)
    ?(max_respawns = Pool.default_max_respawns)
    ?(respawn_backoff = Pool.default_respawn_backoff) config =
  let cache =
    match cache with Some c -> c | None -> Rcache.in_memory ()
  in
  {
    config;
    config_digest = Mach.Config.digest config;
    jobs = max 1 jobs;
    fuel;
    task_timeout;
    retries;
    max_respawns;
    respawn_backoff;
    cache;
    stats = { evals = 0; hits = 0; sims = 0; failures = 0; wall = 0.0 };
    pool_health = Pool.empty_health ();
  }

let config t = t.config
let jobs t = t.jobs
let cache t = t.cache
let stats t = t.stats

let reset_stats t =
  let s = t.stats in
  s.evals <- 0;
  s.hits <- 0;
  s.sims <- 0;
  s.failures <- 0;
  s.wall <- 0.0

let hit_rate t =
  if t.stats.evals = 0 then 0.0
  else float_of_int t.stats.hits /. float_of_int t.stats.evals

let ir_digest p = Digest.to_hex (Digest.string (Ir.to_string p))

(* The cache key binds everything the measurement depends on: program
   text (via its printed IR), sequence, machine configuration, fuel, and
   the pass-set version (DESIGN.md: bump Pass.version when any pass's
   behaviour changes — that is the invalidation rule). *)
let key_of t ~prog_digest seq =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            prog_digest;
            Pass.sequence_to_string seq;
            t.config_digest;
            string_of_int t.fuel;
            Pass.version;
          ]))

let key t p seq = key_of t ~prog_digest:(ir_digest p) seq

(* the actual measurement: compile under [seq], simulate, read the bank *)
let simulate t p seq : Rcache.entry =
  let p' = Pass.apply_sequence seq p in
  match Mach.Sim.run ~config:t.config ~fuel:t.fuel p' with
  | r ->
    Rcache.Measured
      {
        cycles = r.Mach.Sim.cycles;
        code_size = Ir.program_size p';
        counters = Array.copy r.Mach.Sim.counters;
      }
  | exception (Mira.Interp.Trap _ | Mira.Interp.Out_of_fuel) -> Rcache.Failure

let outcome_of_entry ~from_cache = function
  | Rcache.Measured { cycles; code_size; counters } ->
    {
      cost = float_of_int cycles;
      cycles = Some cycles;
      code_size = Some code_size;
      counters = Some counters;
      from_cache;
    }
  | Rcache.Failure ->
    {
      cost = infinity;
      cycles = None;
      code_size = None;
      counters = None;
      from_cache;
    }

let failed_outcome =
  { cost = infinity; cycles = None; code_size = None; counters = None;
    from_cache = false }

let count_failure t o =
  if o.cost = infinity then begin
    t.stats.failures <- t.stats.failures + 1;
    Obs.Metrics.incr m_failures
  end

let eval_digested t p ~prog_digest seq =
  let go () =
    let t0 = Unix.gettimeofday () in
    let k = key_of t ~prog_digest seq in
    t.stats.evals <- t.stats.evals + 1;
    Obs.Metrics.incr m_evals;
    let o =
      match Rcache.find t.cache k with
      | Some e ->
        t.stats.hits <- t.stats.hits + 1;
        Obs.Metrics.incr m_hits;
        outcome_of_entry ~from_cache:true e
      | None ->
        t.stats.sims <- t.stats.sims + 1;
        Obs.Metrics.incr m_misses;
        let e = simulate t p seq in
        Rcache.add t.cache k e;
        outcome_of_entry ~from_cache:false e
    in
    count_failure t o;
    t.stats.wall <- t.stats.wall +. (Unix.gettimeofday () -. t0);
    o
  in
  Obs.span_with ~cat:"engine" ~hist:eval_ms "engine.eval"
    ~end_args:(fun o ->
      [ ("from_cache", Obs.Trace.Bool o.from_cache);
        ("cost", Obs.Trace.Float o.cost) ])
    go

let eval t p seq = eval_digested t p ~prog_digest:(ir_digest p) seq

let evaluator t p =
  let prog_digest = ir_digest p in
  fun seq -> (eval_digested t p ~prog_digest seq).cost

(* the shared batch core: tasks are (program, sequence) pairs with their
   cache keys already computed *)
let eval_tasks t (tasks : (Ir.program * Pass.t list) array)
    (keys : string array) : outcome array =
  let go () =
  let t0 = Unix.gettimeofday () in
  let n = Array.length tasks in
  t.stats.evals <- t.stats.evals + n;
  Obs.Metrics.incr ~by:n m_evals;
  (* resolve cache hits; collect the unique misses in first-seen order so
     the task list (and thus worker count effects) is deterministic *)
  let resolved : (string, Rcache.entry) Hashtbl.t = Hashtbl.create n in
  let missed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let miss_slots = ref [] in
  Array.iteri
    (fun i k ->
      if not (Hashtbl.mem resolved k) then
        match Rcache.find t.cache k with
        | Some e -> Hashtbl.replace resolved k e
        | None ->
          Hashtbl.replace resolved k Rcache.Failure (* placeholder *);
          Hashtbl.replace missed k ();
          miss_slots := i :: !miss_slots)
    keys;
  let miss_slots = Array.of_list (List.rev !miss_slots) in
  let nmiss = Array.length miss_slots in
  t.stats.sims <- t.stats.sims + nmiss;
  t.stats.hits <- t.stats.hits + (n - nmiss);
  Obs.Metrics.incr ~by:nmiss m_misses;
  Obs.Metrics.incr ~by:(n - nmiss) m_hits;
  (* simulate the misses, forking when the batch and jobs warrant it *)
  let computed =
    Pool.map ~jobs:t.jobs ~task_timeout:t.task_timeout ~retries:t.retries
      ~health:t.pool_health ~max_respawns:t.max_respawns
      ~respawn_backoff:t.respawn_backoff
      (fun i ->
        let p, seq = tasks.(i) in
        simulate t p seq)
      miss_slots
  in
  let unreliable : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  Array.iteri
    (fun j r ->
      let k = keys.(miss_slots.(j)) in
      match r with
      | Pool.Done e ->
        Hashtbl.replace resolved k e;
        Rcache.add t.cache k e
      | Pool.Failed _ | Pool.Crashed | Pool.Timed_out ->
        (* cost infinity for this run, but never persisted: a crash or
           timeout is not known to reproduce *)
        Hashtbl.replace unreliable k ())
    computed;
  let out =
    Array.map
      (fun k ->
        if Hashtbl.mem unreliable k then failed_outcome
        else
          outcome_of_entry
            ~from_cache:(not (Hashtbl.mem missed k))
            (Hashtbl.find resolved k))
      keys
  in
  Array.iter (count_failure t) out;
  t.stats.wall <- t.stats.wall +. (Unix.gettimeofday () -. t0);
  (n, nmiss, out)
  in
  if not (Obs.Trace.enabled ()) then
    let _, _, out = go () in
    out
  else
    let n, nmiss, out =
      Obs.Trace.with_span ~cat:"engine" "engine.batch" go
    in
    Obs.Trace.instant ~cat:"engine"
      ~args:
        [ ("tasks", Obs.Trace.Int n); ("misses", Obs.Trace.Int nmiss) ]
      "engine.batch-done";
    out

let eval_batch t p seqs =
  let prog_digest = ir_digest p in
  let tasks = Array.of_list (List.map (fun s -> (p, s)) seqs) in
  let keys = Array.map (fun (_, s) -> key_of t ~prog_digest s) tasks in
  eval_tasks t tasks keys

let eval_many t pairs =
  let tasks = Array.of_list pairs in
  (* digest each distinct program once (physical identity is enough: the
     same program value flows through a batch) *)
  let seen : (Ir.program * string) list ref = ref [] in
  let digest_of p =
    match List.find_opt (fun (q, _) -> q == p) !seen with
    | Some (_, d) -> d
    | None ->
      let d = ir_digest p in
      seen := (p, d) :: !seen;
      d
  in
  let keys =
    Array.map (fun (p, s) -> key_of t ~prog_digest:(digest_of p) s) tasks
  in
  eval_tasks t tasks keys

let costs t p seqs = Array.map (fun o -> o.cost) (eval_batch t p seqs)

(* ------------------------------------------------------------------ *)
(* health: everything the run survived, pool- and cache-side *)

type health = {
  respawns : int;
  spawn_failures : int;
  crashed_workers : int;
  timeouts : int;
  poisoned : int;
  serial_fallbacks : int;
  cache_quarantined : int;
  cache_write_errors : int;
  stale_locks_broken : int;
}

let health t =
  let h = t.pool_health in
  {
    respawns = h.Pool.respawns;
    spawn_failures = h.Pool.spawn_failures;
    crashed_workers = h.Pool.crashed_workers;
    timeouts = h.Pool.timeouts;
    poisoned = h.Pool.poisoned;
    serial_fallbacks = h.Pool.serial_fallbacks;
    cache_quarantined = Rcache.quarantined t.cache;
    cache_write_errors = Rcache.write_errors t.cache;
    stale_locks_broken = Rcache.stale_locks_broken t.cache;
  }

let healthy t =
  Pool.is_healthy t.pool_health
  && Rcache.quarantined t.cache = 0
  && Rcache.write_errors t.cache = 0
  && Rcache.stale_locks_broken t.cache = 0

let pp_health ppf t =
  if healthy t then Fmt.pf ppf "engine health: ok"
  else begin
    let z = health t in
    let fields =
      [
        ("respawns", z.respawns);
        ("spawn-failures", z.spawn_failures);
        ("crashed-workers", z.crashed_workers);
        ("timeouts", z.timeouts);
        ("poisoned-tasks", z.poisoned);
        ("serial-fallbacks", z.serial_fallbacks);
        ("cache-quarantined", z.cache_quarantined);
        ("cache-write-errors", z.cache_write_errors);
        ("stale-locks-broken", z.stale_locks_broken);
      ]
      |> List.filter (fun (_, v) -> v > 0)
    in
    Fmt.pf ppf "engine health: degraded (%s)"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) fields))
  end

let pp_stats ?(wall = true) ppf t =
  let s = t.stats in
  let row k v = Fmt.pf ppf "  %-14s %s@." k v in
  Fmt.pf ppf "engine stats@.";
  row "evaluations" (string_of_int s.evals);
  row "cache hits" (string_of_int s.hits);
  row "cache misses" (string_of_int s.sims);
  row "simulations" (string_of_int s.sims);
  row "failures" (string_of_int s.failures);
  row "hit rate" (Printf.sprintf "%.1f%%" (100.0 *. hit_rate t));
  row "cache entries" (string_of_int (Rcache.known t.cache));
  row "quarantined" (string_of_int (Rcache.quarantined t.cache));
  if wall then row "wall time" (Printf.sprintf "%.3fs" s.wall)
