(** Crash-safe progress journal for long evaluation sweeps.

    A sweep over [n] items is cut into fixed-size chunks; as each chunk
    of costs is computed it is appended to a journal file through the
    same checksummed-line discipline as {!Rcache} (format
    [mira-journal 2|<key>|<total-chunks>], lines
    [<sum>|chunk|<index>|<costs>], costs as lossless [%h] hex floats).
    A run that is killed — power cut, OOM, ^C — leaves at worst one
    torn line; resuming replays the valid chunks, quarantines anything
    torn, recomputes only what is missing, and returns results
    byte-identical to an uninterrupted run.

    The [key] names the sweep's inputs (program, configuration,
    sequence list, chunking); a journal written under a different key
    is discarded rather than resumed, so stale progress can never leak
    into a changed experiment.  A discard is counted in the
    [journal.discarded] metric and warned about on stderr — it means a
    checkpoint someone paid for is about to be recomputed.

    The header carries the chunk total, so {!describe} reports
    progress (key, chunks done / total) straight from the file —
    that is how the distributed-sweep coordinator and
    [miracc sweep-status] render shard progress without re-deriving
    the chunking. *)

type t

(** [open_ ~path ~key ~total] replays (or creates) the journal at
    [path] for a sweep of [total] chunks.  An existing file with a
    different key or total, or an alien header, is discarded (with a
    warning and a [journal.discarded] metric tick) and started fresh. *)
val open_ : path:string -> key:string -> total:int -> t

(** the chunk's recorded costs, if validly journaled *)
val find : t -> int -> float array option

(** journal a chunk (checksummed append, flushed); last record wins.
    Consults the [sweep-torn] fault point (occurrence = chunk index). *)
val record : t -> int -> float array -> unit

(** torn/corrupt lines dropped at replay *)
val quarantined : t -> int

val close : t -> unit

(** delete a journal file (e.g. to force a fresh sweep); missing is fine *)
val remove : string -> unit

(** what {!describe} reads out of a journal file; [torn] counts lines
    that failed the checksum or chunk parse — a worker killed mid-append
    leaves exactly one *)
type description = { key : string; total : int; done_chunks : int; torn : int }

(** [describe ~path] — the journal's key and chunks done / total,
    read-only and lock-free ([None] if [path] is missing or not a
    journal).  Safe to call on a journal another process is appending
    to: at worst the count is one chunk behind.  Torn lines are skipped
    and counted (in [torn] and the [journal.torn_tail] metric), never
    fatal: progress reports over crashed runs are the point. *)
val describe : path:string -> description option

(** the key {!run} actually stamps in the journal header: the caller's
    key folded with the chunking parameters.  Exposed so a progress
    reader can match a journal file on disk against a manifest's
    per-shard key without resuming it. *)
val derived_key : key:string -> chunk_size:int -> n:int -> string

(** [run ~path ~key ~chunk_size ~n eval] — the checkpointed sweep
    driver.  Computes [eval lo hi] (costs of items [lo..hi-1], in
    order) for every chunk not already journaled under [key] at [path],
    journaling each as it completes, and returns all [n] costs.  After
    journaling a chunk it consults the [sweep-crash] fault point
    (occurrence = chunk index) and [_exit]s — simulating [kill -9] —
    when it fires; surviving that, [on_chunk] (if given) is called with
    the chunk index — the distributed worker uses it to inject
    mid-shard deaths at chunk granularity.
    @raise Invalid_argument if [chunk_size <= 0], [n < 0], or [eval]
    returns the wrong number of costs *)
val run :
  ?on_chunk:(int -> unit) ->
  path:string ->
  key:string ->
  chunk_size:int ->
  n:int ->
  (int -> int -> float array) ->
  float array
