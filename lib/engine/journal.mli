(** Crash-safe progress journal for long evaluation sweeps.

    A sweep over [n] items is cut into fixed-size chunks; as each chunk
    of costs is computed it is appended to a journal file through the
    same checksummed-line discipline as {!Rcache} (format
    [mira-journal 1|<key>], lines [<sum>|chunk|<index>|<costs>], costs
    as lossless [%h] hex floats).  A run that is killed — power cut,
    OOM, ^C — leaves at worst one torn line; resuming replays the valid
    chunks, quarantines anything torn, recomputes only what is missing,
    and returns results byte-identical to an uninterrupted run.

    The [key] names the sweep's inputs (program, configuration,
    sequence list, chunking); a journal written under a different key is
    discarded rather than resumed, so stale progress can never leak
    into a changed experiment. *)

type t

(** [open_ ~path ~key] replays (or creates) the journal at [path].
    An existing file with a different key, or an alien header, is
    discarded and started fresh. *)
val open_ : path:string -> key:string -> t

(** the chunk's recorded costs, if validly journaled *)
val find : t -> int -> float array option

(** journal a chunk (checksummed append, flushed); last record wins.
    Consults the [sweep-torn] fault point (occurrence = chunk index). *)
val record : t -> int -> float array -> unit

(** torn/corrupt lines dropped at replay *)
val quarantined : t -> int

val close : t -> unit

(** delete a journal file (e.g. to force a fresh sweep); missing is fine *)
val remove : string -> unit

(** [run ~path ~key ~chunk_size ~n eval] — the checkpointed sweep
    driver.  Computes [eval lo hi] (costs of items [lo..hi-1], in
    order) for every chunk not already journaled under [key] at [path],
    journaling each as it completes, and returns all [n] costs.  After
    journaling a chunk it consults the [sweep-crash] fault point
    (occurrence = chunk index) and [_exit]s — simulating [kill -9] —
    when it fires.
    @raise Invalid_argument if [chunk_size <= 0], [n < 0], or [eval]
    returns the wrong number of costs *)
val run :
  path:string ->
  key:string ->
  chunk_size:int ->
  n:int ->
  (int -> int -> float array) ->
  float array
