(* Append-only persistent result store with a bounded LRU in front.

   Log format v3 (one record per line, header first):
     mira-rescache 3
     <sum>|ok|<key>|<ir>|<cycles>|<code_size>|<c0,c1,...>
     <sum>|fail|<key>|<ir>
   <sum> = first 8 hex chars of MD5(payload); <ir> is the 32-hex digest
   of the compiled (post-pipeline) IR the measurement came from, which
   is what lets the engine dedup simulator runs across sequences that
   converge to identical code.  The last line for a key wins, so
   re-recording is just appending.  Lines that fail the checksum or
   semantic validation are quarantined (counted, dropped), and the log
   is then rewritten clean (self-healing).  Legacy v1/v2 logs carry no
   IR digest, so their lines cannot be promoted: every line is
   quarantined and the log rewritten as an empty v3 store (the entries
   are re-measured on demand).

   Injection points consulted here (see Faults): torn-append,
   flip-append, fail-append, stale-lock, compact-crash. *)

type entry =
  | Measured of {
      ir_digest : string;
      cycles : int;
      code_size : int;
      counters : int array;
    }
  | Failure of { ir_digest : string }

exception Cache_error of string

(* LRU bookkeeping: every touch pushes (key, stamp) and records the stamp
   as the key's newest; eviction pops until it finds a pair whose stamp is
   still current (stale pairs are skipped). *)
type t = {
  tbl : (string, entry * int) Hashtbl.t;
  order : (string * int) Queue.t;
  mutable stamp : int;
  mutable known : int;
  capacity : int;
  mutable log : out_channel option;
  dir : string option;
  mutable quarantined : int;
  mutable write_errors : int;
  mutable stale_locks : int;
}

let magic = "mira-rescache 3"
let magic_v2 = "mira-rescache 2"
let magic_v1 = "mira-rescache 1"
let default_capacity = 262_144

(* observability: per-instance fields mirrored into the global registry,
   plus spans around the two structural operations (open, compact) *)
let m_quarantined = Obs.Metrics.counter "rcache.quarantined"
let m_write_errors = Obs.Metrics.counter "rcache.write_errors"
let m_stale_locks = Obs.Metrics.counter "rcache.stale_locks_broken"
let m_compactions = Obs.Metrics.counter "rcache.compactions"
let m_absorbed = Obs.Metrics.counter "rcache.absorbed"
let m_absorb_dups = Obs.Metrics.counter "rcache.absorb_duplicates"
let m_absorb_rejected = Obs.Metrics.counter "rcache.absorb_rejected"

let note_quarantined t =
  t.quarantined <- t.quarantined + 1;
  Obs.Metrics.incr m_quarantined;
  Obs.Trace.instant ~cat:"rcache" "rcache.quarantine"

let note_write_error t =
  t.write_errors <- t.write_errors + 1;
  Obs.Metrics.incr m_write_errors;
  Obs.Trace.instant ~cat:"rcache" "rcache.write-error"

let note_stale_lock t =
  t.stale_locks <- t.stale_locks + 1;
  Obs.Metrics.incr m_stale_locks;
  Obs.Trace.instant ~cat:"rcache" "rcache.stale-lock-broken"

(* ------------------------------------------------------------------ *)
(* checksummed lines *)

let checksum payload =
  String.sub (Digest.to_hex (Digest.string payload)) 0 8

let seal_line payload = checksum payload ^ "|" ^ payload

let unseal_line line =
  if String.length line >= 9 && line.[8] = '|' then begin
    let sum = String.sub line 0 8 in
    let payload = String.sub line 9 (String.length line - 9) in
    if String.equal sum (checksum payload) then Some payload else None
  end
  else None

(* ------------------------------------------------------------------ *)
(* the LRU front *)

let touch t key entry =
  t.stamp <- t.stamp + 1;
  if not (Hashtbl.mem t.tbl key) then t.known <- t.known + 1;
  Hashtbl.replace t.tbl key (entry, t.stamp);
  Queue.add (key, t.stamp) t.order;
  while Hashtbl.length t.tbl > t.capacity do
    match Queue.take_opt t.order with
    | None -> Hashtbl.reset t.tbl (* unreachable: order covers tbl *)
    | Some (k, s) -> (
      match Hashtbl.find_opt t.tbl k with
      | Some (_, s') when s' = s -> Hashtbl.remove t.tbl k
      | _ -> () (* stale pair *))
  done

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some (e, _) ->
    touch t key e;
    Some e

(* ------------------------------------------------------------------ *)
(* line payloads *)

let entry_to_line key = function
  | Measured { ir_digest; cycles; code_size; counters } ->
    Printf.sprintf "ok|%s|%s|%d|%d|%s" key ir_digest cycles code_size
      (String.concat "," (List.map string_of_int (Array.to_list counters)))
  | Failure { ir_digest } -> Printf.sprintf "fail|%s|%s" key ir_digest

(* strictly decimal, so int_of_string cannot be tricked into accepting
   "0x10", "1_0" or a sign *)
let dec s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

(* exactly what Digest.to_hex produces: 32 lowercase hex characters *)
let hex32 s =
  String.length s = 32
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

let entry_of_line line =
  let invalid why = Error (Printf.sprintf "%s: %S" why line) in
  match String.split_on_char '|' line with
  | [ "fail"; key; ir ] ->
    if key = "" then invalid "empty key"
    else if not (hex32 ir) then invalid "malformed IR digest"
    else Ok (key, Failure { ir_digest = ir })
  | [ "ok"; key; ir; cycles; code_size; counters ] ->
    if key = "" then invalid "empty key"
    else if not (hex32 ir) then invalid "malformed IR digest"
    else if not (dec cycles && dec code_size) then
      invalid "non-decimal cycles or size"
    else begin
      let fields =
        if counters = "" then []
        else String.split_on_char ',' counters
      in
      if not (List.for_all dec fields) then invalid "non-decimal counter"
      else
        match
          ( int_of_string cycles,
            int_of_string code_size,
            List.map int_of_string fields )
        with
        | cycles, code_size, counters ->
          Ok
            ( key,
              Measured
                {
                  ir_digest = ir;
                  cycles;
                  code_size;
                  counters = Array.of_list counters;
                } )
        | exception Failure _ -> invalid "value out of range"
    end
  | _ -> invalid "malformed log line"

(* ------------------------------------------------------------------ *)
(* the single-writer advisory lock *)

let lock_path dir = Filename.concat dir "cache.lock"

let pid_alive pid =
  if pid <= 0 then false
  else
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception _ -> true (* EPERM and friends: someone is there *)

let read_small_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        Some (really_input_string ic (min 64 (in_channel_length ic))))

let acquire_lock t dir =
  let path = lock_path dir in
  if Faults.fires "stale-lock" then begin
    (* plant a lock left behind by a dead process *)
    let oc = open_out path in
    output_string oc "0";
    close_out oc
  end;
  (match read_small_file path with
   | None -> ()
   | Some content ->
     let owner =
       if dec (String.trim content) then int_of_string (String.trim content)
       else -1 (* malformed lock: treat as stale *)
     in
     if owner = Unix.getpid () then ()
     else if pid_alive owner then
       raise
         (Cache_error
            (Printf.sprintf
               "%s: cache is in use by running process %d (remove the \
                lock file if that process is gone)"
               path owner))
     else begin
       (try Sys.remove path with Sys_error _ -> ());
       note_stale_lock t
     end);
  let oc = open_out path in
  output_string oc (string_of_int (Unix.getpid ()));
  close_out oc

let release_lock dir =
  let path = lock_path dir in
  match read_small_file path with
  | Some content when String.trim content = string_of_int (Unix.getpid ())
    ->
    (try Sys.remove path with Sys_error _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* writing *)

let flip_one_char s =
  if s = "" then s
  else begin
    let b = Bytes.of_string s in
    let i = Bytes.length b / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Bytes.to_string b
  end

let append_line t line =
  match t.log with
  | None -> ()
  | Some oc -> (
    (* a failed write (disk full, injected) degrades to memory-only for
       this entry instead of killing the run *)
    match
      let line =
        if Faults.fires "flip-append" then flip_one_char line else line
      in
      if Faults.fires "torn-append" then begin
        (* half the line, no newline: exactly what a crash mid-write
           leaves behind *)
        output_string oc (String.sub line 0 (String.length line / 2));
        flush oc
      end
      else if Faults.fires "fail-append" then
        raise (Faults.Injected "fail-append")
      else begin
        output_string oc line;
        output_char oc '\n';
        flush oc
      end
    with
    | () -> ()
    | exception _ -> note_write_error t)

let add t key entry =
  touch t key entry;
  append_line t (seal_line (entry_to_line key entry))

let in_memory ?(mem_capacity = default_capacity) () =
  {
    tbl = Hashtbl.create 1024;
    order = Queue.create ();
    stamp = 0;
    known = 0;
    capacity = max 1 mem_capacity;
    log = None;
    dir = None;
    quarantined = 0;
    write_errors = 0;
    stale_locks = 0;
  }

(* ------------------------------------------------------------------ *)
(* replay and compaction *)

(* stream every valid (key, payload) of [path] in file order; a legacy
   (v1/v2) header makes every data line invalid by construction, so the
   stream is empty for those logs *)
let iter_valid_lines path f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let legacy =
        match input_line ic with
        | h -> h = magic_v1 || h = magic_v2
        | exception End_of_file -> false
      in
      try
        while true do
          let line = input_line ic in
          if (not legacy) && line <> "" then
            match unseal_line line with
            | None -> ()
            | Some payload -> (
              match entry_of_line payload with
              | Ok (key, e) -> f key payload e
              | Error _ -> ())
        done
      with End_of_file -> ())

(* Rewrite [path] as a clean v3 log: one line per key, last value wins,
   corruption scrubbed.  Atomic: temp file + rename. *)
let rewrite_log path =
  let order = ref [] in
  let latest : (string, string) Hashtbl.t = Hashtbl.create 1024 in
  iter_valid_lines path (fun key payload _e ->
      if not (Hashtbl.mem latest key) then order := key :: !order;
      Hashtbl.replace latest key payload);
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  output_string oc magic;
  output_char oc '\n';
  List.iter
    (fun key ->
      output_string oc (seal_line (Hashtbl.find latest key));
      output_char oc '\n')
    (List.rev !order);
  close_out oc;
  if Faults.fires "compact-crash" then begin
    (try Sys.remove tmp with Sys_error _ -> ());
    raise (Faults.Injected "compact-crash")
  end;
  Sys.rename tmp path

let log_file dir = Filename.concat dir "results.log"

let open_append path =
  open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path

let compact t =
  match (t.dir, t.log) with
  | Some dir, Some oc ->
    Obs.Metrics.incr m_compactions;
    Obs.Trace.with_span ~cat:"rcache" "rcache.compact" (fun () ->
        let path = log_file dir in
        (* close before rename so no buffered bytes chase the old inode *)
        flush oc;
        close_out_noerr oc;
        t.log <- None;
        Fun.protect
          ~finally:(fun () -> t.log <- Some (open_append path))
          (fun () -> rewrite_log path))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* absorbing another cache's log — the merge primitive of distributed
   sweeps: every worker evaluates into its own cache directory, and the
   coordinator folds the per-worker logs into the primary store at the
   end.  Read-only on the donor; checksum + semantic validation per
   line; last donor line per key wins; keys the recipient already holds
   are left untouched (results are content-addressed and deterministic,
   so a collision carries the same measurement).  The absorbed appends
   are folded into one clean log by the existing atomic compact
   (temp file + rename), so a crash mid-absorb leaves a valid log. *)

type absorb_stats = { absorbed : int; duplicates : int; rejected : int }

let absorb_raw t donor_dir =
  let zero = { absorbed = 0; duplicates = 0; rejected = 0 } in
  if not (Sys.file_exists donor_dir) then zero
  else if not (Sys.is_directory donor_dir) then
    raise (Cache_error (donor_dir ^ ": not a directory"))
  else begin
    (* refuse a donor a live process is still writing; a lock left by a
       dead worker (kill -9 mid-shard) is exactly the expected case and
       does not block the merge *)
    (match read_small_file (lock_path donor_dir) with
     | Some content ->
       let owner =
         if dec (String.trim content) then int_of_string (String.trim content)
         else -1
       in
       if owner <> Unix.getpid () && pid_alive owner then
         raise
           (Cache_error
              (Printf.sprintf
                 "%s: donor cache is in use by running process %d"
                 donor_dir owner))
     | None -> ());
    let path = log_file donor_dir in
    if not (Sys.file_exists path) then zero
    else begin
      (* stream the donor log once: checksummed-line + semantic
         validation, last value per key wins, rejects counted (a legacy
         v1/v2 donor rejects every line, as open_dir would) *)
      let rejected = ref 0 in
      let order = ref [] in
      let latest : (string, entry) Hashtbl.t = Hashtbl.create 1024 in
      let ic =
        try open_in path
        with Sys_error e -> raise (Cache_error ("cannot open donor log: " ^ e))
      in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let legacy =
            match input_line ic with
            | h when h = magic -> false
            | h when h = magic_v1 || h = magic_v2 -> true
            | h ->
              raise
                (Cache_error
                   (Printf.sprintf "%s: not a result cache (bad header %S)"
                      path h))
            | exception End_of_file -> false
          in
          try
            while true do
              let line = input_line ic in
              if line <> "" then
                if legacy then incr rejected
                else
                  match unseal_line line with
                  | None -> incr rejected
                  | Some payload -> (
                    match entry_of_line payload with
                    | Ok (key, e) ->
                      if not (Hashtbl.mem latest key) then
                        order := key :: !order;
                      Hashtbl.replace latest key e
                    | Error _ -> incr rejected)
            done
          with End_of_file -> ());
      let absorbed = ref 0 and duplicates = ref 0 in
      List.iter
        (fun key ->
          if Hashtbl.mem t.tbl key then incr duplicates
          else begin
            add t key (Hashtbl.find latest key);
            incr absorbed
          end)
        (List.rev !order);
      (* fold the absorbed appends into one clean log, atomically *)
      if !absorbed > 0 then compact t;
      Obs.Metrics.incr ~by:!absorbed m_absorbed;
      Obs.Metrics.incr ~by:!duplicates m_absorb_dups;
      Obs.Metrics.incr ~by:!rejected m_absorb_rejected;
      { absorbed = !absorbed; duplicates = !duplicates;
        rejected = !rejected }
    end
  end

let absorb t donor_dir =
  Obs.span_with ~cat:"rcache" "rcache.absorb"
    ~end_args:(fun s ->
      [
        ("absorbed", Obs.Trace.Int s.absorbed);
        ("duplicates", Obs.Trace.Int s.duplicates);
        ("rejected", Obs.Trace.Int s.rejected);
      ])
    (fun () -> absorb_raw t donor_dir)

let open_dir_raw ?(mem_capacity = default_capacity) dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      raise (Cache_error (dir ^ ": not a directory"))
  end
  else begin
    match Sys.mkdir dir 0o755 with
    | () -> ()
    | exception Sys_error e ->
      raise (Cache_error ("cannot create cache directory: " ^ e))
  end;
  let t = { (in_memory ~mem_capacity ()) with dir = Some dir } in
  acquire_lock t dir;
  match
    let path = log_file dir in
    let legacy = ref false in
    let fresh = not (Sys.file_exists path) in
    if not fresh then begin
    let ic =
      try open_in path
      with Sys_error e -> raise (Cache_error ("cannot open log: " ^ e))
    in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        (match input_line ic with
         | h when h = magic -> ()
         | h when h = magic_v1 || h = magic_v2 ->
           (* legacy lines carry no IR digest: nothing survives, every
              data line is quarantined and the log rewritten fresh *)
           legacy := true
         | h
           when String.length h < String.length magic
                && (String.starts_with ~prefix:h magic
                   || String.starts_with ~prefix:h magic_v1) ->
           (* a header torn by a crash during cache creation *)
           note_quarantined t
         | h ->
           raise
             (Cache_error
                (Printf.sprintf "%s: not a result cache (bad header %S)"
                   path h))
         | exception End_of_file -> () (* empty file: treat as fresh *));
        try
          while true do
            let line = input_line ic in
            if line <> "" then
              if !legacy then note_quarantined t
              else
                match unseal_line line with
                | None -> note_quarantined t
                | Some payload -> (
                  match entry_of_line payload with
                  | Ok (key, e) -> touch t key e
                  | Error _ -> note_quarantined t)
          done
        with End_of_file -> ())
  end;
    (* self-heal: a log that quarantined anything — including every line
       of a legacy v1/v2 log — is scrubbed (also re-terminating any torn
       tail, so later appends cannot glue onto it); a legacy header is
       replaced even when its log held no lines *)
    if (not fresh) && (!legacy || t.quarantined > 0) then
      rewrite_log path;
    let oc = open_append path in
    if
      fresh
      || (Unix.fstat (Unix.descr_of_out_channel oc)).Unix.st_size = 0
    then begin
      output_string oc magic;
      output_char oc '\n';
      flush oc
    end;
    t.log <- Some oc
  with
  | () -> t
  | exception e ->
    (* do not leave the lock behind on a failed open *)
    release_lock dir;
    raise e

(* opening is a span: replay of a big log is one of the visible stalls
   at startup, and the end args say how much was recovered *)
let open_dir ?mem_capacity dir =
  Obs.span_with ~cat:"rcache" "rcache.open"
    ~end_args:(fun t ->
      [
        ("entries", Obs.Trace.Int t.known);
        ("quarantined", Obs.Trace.Int t.quarantined);
      ])
    (fun () -> open_dir_raw ?mem_capacity dir)

let resident t = Hashtbl.length t.tbl
let known t = t.known
let quarantined t = t.quarantined
let write_errors t = t.write_errors
let stale_locks_broken t = t.stale_locks

let close t =
  (match t.log with
   | None -> ()
   | Some oc -> ( try close_out oc with Sys_error _ -> ()));
  t.log <- None;
  match t.dir with None -> () | Some dir -> release_lock dir
