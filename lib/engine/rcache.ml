(* Append-only persistent result store with a bounded LRU in front.

   Log format (one record per line, header first):
     mira-rescache 1
     ok|<key>|<cycles>|<code_size>|<c0,c1,...>
     fail|<key>
   The last line for a key wins, so re-recording is just appending. *)

type entry =
  | Measured of { cycles : int; code_size : int; counters : int array }
  | Failure

(* LRU bookkeeping: every touch pushes (key, stamp) and records the stamp
   as the key's newest; eviction pops until it finds a pair whose stamp is
   still current (stale pairs are skipped). *)
type t = {
  tbl : (string, entry * int) Hashtbl.t;
  order : (string * int) Queue.t;
  mutable stamp : int;
  mutable known : int;
  capacity : int;
  log : out_channel option;
}

let magic = "mira-rescache 1"
let default_capacity = 262_144

let touch t key entry =
  t.stamp <- t.stamp + 1;
  if not (Hashtbl.mem t.tbl key) then t.known <- t.known + 1;
  Hashtbl.replace t.tbl key (entry, t.stamp);
  Queue.add (key, t.stamp) t.order;
  while Hashtbl.length t.tbl > t.capacity do
    match Queue.take_opt t.order with
    | None -> Hashtbl.reset t.tbl (* unreachable: order covers tbl *)
    | Some (k, s) -> (
      match Hashtbl.find_opt t.tbl k with
      | Some (_, s') when s' = s -> Hashtbl.remove t.tbl k
      | _ -> () (* stale pair *))
  done

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some (e, _) ->
    touch t key e;
    Some e

let entry_to_line key = function
  | Measured { cycles; code_size; counters } ->
    Printf.sprintf "ok|%s|%d|%d|%s" key cycles code_size
      (String.concat "," (List.map string_of_int (Array.to_list counters)))
  | Failure -> Printf.sprintf "fail|%s" key

let entry_of_line line =
  match String.split_on_char '|' line with
  | [ "fail"; key ] -> (key, Failure)
  | [ "ok"; key; cycles; code_size; counters ] ->
    let counters =
      if counters = "" then [||]
      else
        String.split_on_char ',' counters
        |> List.map int_of_string |> Array.of_list
    in
    ( key,
      Measured
        {
          cycles = int_of_string cycles;
          code_size = int_of_string code_size;
          counters;
        } )
  | _ -> failwith (Printf.sprintf "Rcache: malformed log line %S" line)

let add t key entry =
  touch t key entry;
  match t.log with
  | None -> ()
  | Some oc ->
    output_string oc (entry_to_line key entry);
    output_char oc '\n';
    flush oc

let in_memory ?(mem_capacity = default_capacity) () =
  {
    tbl = Hashtbl.create 1024;
    order = Queue.create ();
    stamp = 0;
    known = 0;
    capacity = max 1 mem_capacity;
    log = None;
  }

let open_dir ?(mem_capacity = default_capacity) dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir "results.log" in
  let fresh = not (Sys.file_exists path) in
  let t = { (in_memory ~mem_capacity ()) with log = None } in
  if not fresh then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        (match input_line ic with
         | header when header = magic -> ()
         | header ->
           failwith
             (Printf.sprintf "Rcache: %s: bad header %S" path header)
         | exception End_of_file -> ());
        try
          while true do
            let line = input_line ic in
            if line <> "" then
              (* a torn line (crash mid-append) must not poison the
                 store: drop it and keep replaying *)
              match entry_of_line line with
              | key, e -> touch t key e
              | exception Failure _ -> ()
          done
        with End_of_file -> ())
  end;
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  if fresh then begin
    output_string oc magic;
    output_char oc '\n';
    flush oc
  end;
  { t with log = Some oc }

let resident t = Hashtbl.length t.tbl
let known t = t.known

let close t =
  match t.log with
  | None -> ()
  | Some oc -> ( try close_out oc with Sys_error _ -> ())
