(** Coordinator/worker orchestration for distributed sweeps.

    One coordinator owns a sweep of [n] items, cut into {!Shard}s; any
    number of workers connect over a Unix-domain socket, each pulling
    shards, evaluating them with its own full evaluation stack (engine,
    pool, caches, per-shard {!Journal} checkpoints in its own
    directory) and streaming per-shard cost vectors back.  The
    coordinator:

    - plans shards and assigns each a {e home} worker slot; a worker
      drains its home queue first and then {e steals} from the longest
      other queue, so a skewed shard cannot strand the fleet;
    - detects worker death by connection loss and {e re-queues} the
      dead worker's in-flight shard (at the front of its home queue, so
      a rejoining worker with the same journal directory resumes it
      from its checkpoint rather than recomputing);
    - writes a run manifest ({!Shard.write_manifest}) before serving,
      so the sweep is reproducible and resumable as a whole;
    - assembles the full cost vector — bit-identical to a
      single-process sweep, because every item's cost is deterministic
      and positions are fixed by the shard map.

    The wire protocol is deliberately tiny: length-prefixed frames
    (8 hex digits, then that many payload bytes) carrying
    ['|']-separated fields.  Workers speak
    [hello -> need -> (shard ... done)* -> fin]; a [hello] whose job
    key does not match the coordinator's is rejected, so a worker
    started with different sweep inputs can never contribute wrong
    numbers.

    [sweep_local] runs the whole arrangement in one command: it forks
    [workers] local worker processes (respawning dead ones against a
    budget, degrading to in-process evaluation when none can be kept
    alive), serves them, merges the per-worker result caches into a
    primary cache via {!Rcache.absorb}, and returns the costs.

    Fault injection: workers consult the [dist-worker-exit] point
    (occurrence = shard id) at the start of a shard's first attempt and
    die right after journaling its first chunk when it fires.

    Everything is instrumented through {!Obs}: [dist.*] counters
    (shards served, steals, re-queues, worker deaths, respawns, merged
    entries) and spans around serving, per-shard work and the merge.

    {b Run telemetry.}  The coordinator mints a {e run id} per
    invocation, records it in the manifest and returns it to every
    worker in the hello reply ([ok|<id>]); workers stamp it on their
    traces ({!Obs.Trace.set_run}) and shard spans, so the scattered
    telemetry of one run is correlatable after the fact.  While serving,
    the coordinator maintains [<dir>/rollup.json] (schema
    [icc-rollup/1], refreshed at most twice a second, atomically
    replaced): per-shard progress read from the worker journals,
    orchestration counts, and the merged per-worker metrics exports.
    Workers write [<worker dir>/metrics.jsonl] after every shard, and —
    when tracing is on — [sweep_local] children write their own
    crash-safe [<worker dir>/trace-<pid>.json] on the coordinator's
    trace epoch, which {!Obs.Merge} (via [miracc trace-merge]) stitches
    into one Chrome trace.  {!survey} rebuilds the rollup view cold from
    the run directory alone. *)

(** everything the coordinator observed while serving one sweep *)
type stats = {
  mutable run_id : string;      (** the run id minted for this invocation *)
  mutable workers_seen : int;   (** distinct worker names that said hello *)
  mutable shards_served : int;  (** shard grants, including re-serves *)
  mutable steals : int;         (** grants filled from another home's queue *)
  mutable requeues : int;       (** in-flight shards returned by a death *)
  mutable worker_deaths : int;  (** connections lost before [fin] *)
  mutable respawns : int;       (** local workers respawned ([sweep_local]) *)
  mutable serial_fallbacks : int;
      (** times the coordinator had to evaluate remaining shards itself
          because no worker could be kept alive ([sweep_local]) *)
  mutable absorbed : int;       (** cache entries merged from worker caches *)
  mutable absorb_duplicates : int;
  mutable absorb_rejected : int;
}

(** protocol/setup failures: socket unusable, job-key rejection,
    malformed frame.  (Worker {e death} is never an error — it is
    survived and counted.) *)
exception Dist_error of string

(** the identity and shape of one distributed sweep; [job] must bind
    everything the costs depend on (program, configuration, sequence
    list, fuel, evaluation version) — workers are validated against it *)
type spec = {
  job : string;        (** digest of the sweep's inputs *)
  n : int;             (** number of items *)
  chunk_size : int;    (** journal checkpoint granularity within a shard *)
  shards : int;        (** shards to plan (clamped to [n]) *)
}

(** [serve ~socket ~dir ~workers spec] — run the coordinator until
    every shard is complete.  [socket] is the Unix-domain path to
    listen on (an existing file is replaced); [dir] is the run
    directory ([manifest.json] lands there, created if missing);
    [workers] is the home-slot count used for shard homing (usually the
    expected worker count; more workers than slots simply share).
    [meta] is extra manifest metadata.  Returns the coordinator stats
    and the assembled costs.  Workers that connect after completion are
    told [fin] during the drain; the listener is removed on return.
    @raise Dist_error if the socket cannot be created
    @raise Invalid_argument if [workers <= 0] *)
val serve :
  socket:string ->
  dir:string ->
  workers:int ->
  ?meta:(string * string) list ->
  spec ->
  stats * float array

(** [work ~socket ~dir spec ~eval ()] — the worker loop: connect, say
    hello, then pull shards until [fin].  Each shard [s] is evaluated
    through a checkpointed {!Journal.run} at
    [dir/shard-<id>.journal] (journal key = {!Shard.key}), calling
    [eval lo hi] per chunk with {e global} item indices; a worker
    killed mid-shard and restarted with the same [dir] resumes from the
    journal.  [name] labels the worker (default [w<pid>]); [slot], when
    [>= 0], requests a home queue — give a rejoining worker its old
    slot so it is offered its own half-journaled shard first.  Returns
    the number of shards this worker completed.

    The worker's metrics registry is exported to [metrics_path]
    (default [dir/metrics.jsonl]) after every completed shard and at
    [fin] — atomically, so the coordinator's live rollup can read it at
    any moment.  If the hello reply carries a run id it is installed
    with {!Obs.Trace.set_run} before any shard span is emitted.
    @raise Dist_error if the coordinator is unreachable or rejects the
    job key *)
val work :
  ?name:string ->
  ?slot:int ->
  ?metrics_path:string ->
  socket:string ->
  dir:string ->
  spec ->
  eval:(int -> int -> float array) ->
  unit ->
  int

(** [sweep_local ~workers ~dir spec ~make_eval] — the one-command local
    mode: fork [workers] worker processes (each calls
    [make_eval ~worker_dir] {e after} the fork, so caches and engines
    are created in the child), serve them, respawn dead workers up to
    [max_respawns] times, and fall back to evaluating remaining shards
    in-process when no worker survives.  [cache], when given, receives
    every worker cache via {!Rcache.absorb} at the end (the merge stats
    land in the returned {!stats}); by convention a worker's cache
    lives at [<worker_dir>/cache] — [make_eval] should put it there to
    get merged.  [tstore], when given, likewise absorbs every worker
    trace store from [<worker_dir>/tstore] via {!Tstore.absorb}
    (counted in the [tstore.*] metrics; an unmergeable donor is skipped
    with a warning, costing warm-start only).  Worker directories are
    [dir/workers/w<i>] and are kept, so a re-run resumes journals.
    @raise Invalid_argument if [workers <= 0] *)
val sweep_local :
  workers:int ->
  dir:string ->
  ?max_respawns:int ->
  ?cache:Rcache.t ->
  ?tstore:Tstore.t ->
  ?meta:(string * string) list ->
  spec ->
  make_eval:(worker_dir:string -> int -> int -> float array) ->
  stats * float array

(** the worker-cache directory absorbed for worker slot [i] of a local
    sweep — exposed so callers can point a resumed run at the same
    layout *)
val worker_dir : dir:string -> int -> string

(** [survey ~dir] — rebuild the run's rollup view cold, from the run
    directory alone: the manifest names the shards and their journal
    keys, the worker journals under [dir/workers/*/] give per-shard
    chunk progress (torn tails counted, never fatal), the worker
    [metrics.jsonl] exports feed the merged metrics, and — since
    orchestration counts and timings live only in the coordinator — the
    last [rollup.json] it left behind fills those in when present.
    [None] when [dir] has no readable manifest.  Read-only and
    lock-free: safe on a run another process is still serving. *)
val survey : dir:string -> Obs.Rollup.input option

(** [trace_sources ~dir] — the [(label, path)] trace files of a run, in
    merge order: any [trace*.json] directly in [dir] (labelled
    [coordinator]) first, then each worker directory's [trace*.json]
    (labelled by worker, [+k]-suffixed when a respawned slot left
    several).  Feed straight to {!Obs.Merge.merge_files}. *)
val trace_sources : dir:string -> (string * string) list
