(** The pass-compilation trie: a memo table over single pass
    applications, keyed by (input-IR digest, pass).

    A sequence sweep walks a trie whose nodes are IR states and whose
    edges are passes; evaluating 88k sequences naively re-applies every
    shared prefix once per sequence.  This table collapses that walk:
    [apply] returns the memoized (result, result digest) when the same
    pass was already applied to an IR with the same printed form, so
    each distinct (state, pass) edge is compiled exactly once.

    Soundness rests on passes being deterministic functions of the
    program value.  The printed IR alone is NOT that value: the
    printer omits each function's fresh-name counters
    ([nregs]/[nlabels], read by passes that mint fresh registers or
    labels), each global's element type and initializers ([gelt] is
    rewritten by the packing pass based on [ginit]), and the program's
    [main] — two states printing identically can diverge downstream.
    [digest] therefore hashes the printed IR together with all of that
    hidden state; with that, the digest determines pass behaviour and
    the memoized program behaves identically under every later pass
    and the simulator as the one [Passes.Pass.apply] would have
    rebuilt.

    Materialized IRs are the memory cost, so a bounded LRU (same
    touch/stamp discipline as {!Rcache}) caps residency; an evicted
    edge is simply recompiled on the next walk.  Hits, misses and
    evictions are counted per trie and mirrored into the metrics
    registry as [engine.trie_*]. *)

type t

val default_capacity : int

(** [create ()] builds an empty trie holding at most [capacity]
    memoized results (default {!default_capacity}). *)
val create : ?capacity:int -> unit -> t

(** hex MD5 of a program's printed IR plus the printer-omitted state
    (fresh-name counters, global element types and initializers,
    [main]) — the node identity.  (Engine's [ir_digest] is this
    function.) *)
val digest : Mira.Ir.program -> string

(** [apply t p ~digest pass] is [Passes.Pass.apply pass p] together
    with the result's digest, memoized.  [digest] must be [digest p]. *)
val apply :
  t -> Mira.Ir.program -> digest:string -> Passes.Pass.t ->
  Mira.Ir.program * string

(** left-to-right [apply] over a sequence: one trie edge per pass *)
val apply_sequence :
  t -> Mira.Ir.program -> digest:string -> Passes.Pass.t list ->
  Mira.Ir.program * string

val hits : t -> int
val misses : t -> int
val evictions : t -> int

(** memoized results currently resident *)
val resident : t -> int
