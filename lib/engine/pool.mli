(** A [Unix.fork]-based worker pool for embarrassingly parallel batches.

    [map ~jobs f tasks] applies [f] to every task and returns the outcomes
    in task order, so parallel runs are indistinguishable from serial ones
    as long as [f] is deterministic.  With [jobs <= 1] (or a single task)
    everything runs in the calling process and no processes are forked.

    Failure semantics:
    - [f] raising is an ordinary, deterministic failure: the exception
      text is captured and the task is {e not} retried;
    - a worker process dying (signal, [exit], OOM) loses its in-flight
      task; the task is retried on a fresh worker up to [retries] times.
      A task that keeps killing workers is {e poison}: it is retired as
      [Crashed] (and counted in {!health.poisoned}) instead of taking
      the pool down with endless respawns;
    - a task running past [task_timeout] seconds gets its worker killed
      and is reported as [Timed_out] without retry (a deterministic
      computation would only time out again);
    - respawning a dead worker is retried with exponential backoff
      (starting at [respawn_backoff] seconds, doubling, capped at 1 s)
      against a budget of [max_respawns] spawn attempts per [map] call.
      When the budget is exhausted — or no worker can be forked at all —
      the pool {e degrades to serial execution} in the calling process
      for the remaining (non-poison) tasks rather than failing the
      batch.

    Every degradation event is recorded in the caller-supplied
    {!health} record, so the engine can report how the run actually
    went.

    Workers are forked once per [map] call and fed tasks on demand over
    pipes (self-scheduling), so an expensive task does not hold up the
    queue behind it.  [schedule], when given, is a permutation of the
    task indices fixing the {e dispatch} order (the engine passes a
    prefix-locality order so cache-warm tasks run back to back); it
    never affects the results, which stay indexed by task.

    Fault-injection points consulted (see {!Faults}): [worker-crash] and
    [worker-hang] in the worker (occurrence = task index), [spawn-fail]
    around every fork. *)

type 'b outcome =
  | Done of 'b
  | Failed of string  (** [f] raised; the exception text *)
  | Crashed           (** worker died repeatedly *)
  | Timed_out

(** counters of everything that went wrong (and was survived) during
    [map] calls; aggregated across calls when the same record is passed
    to each *)
type health = {
  mutable respawns : int;       (** workers respawned after a death *)
  mutable spawn_failures : int; (** fork attempts that failed *)
  mutable crashed_workers : int;(** workers that died uncommanded *)
  mutable timeouts : int;       (** tasks killed for exceeding the timeout *)
  mutable poisoned : int;       (** tasks retired for crashing [> retries] workers *)
  mutable serial_fallbacks : int;(** times the pool degraded to in-process serial *)
}

val empty_health : unit -> health

(** all-zero? *)
val is_healthy : health -> bool

(** one-line rendering of the non-zero counters *)
val pp_health : Format.formatter -> health -> unit

val default_task_timeout : float
val default_max_respawns : int
val default_respawn_backoff : float

(** @raise Invalid_argument if [retries < 0], [max_respawns < 0], or
    [schedule] is not a permutation of the task indices *)
val map :
  ?jobs:int ->
  ?task_timeout:float ->
  ?retries:int ->
  ?health:health ->
  ?max_respawns:int ->
  ?respawn_backoff:float ->
  ?schedule:int array ->
  ('a -> 'b) ->
  'a array ->
  'b outcome array
