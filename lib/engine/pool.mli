(** A [Unix.fork]-based worker pool for embarrassingly parallel batches.

    [map ~jobs f tasks] applies [f] to every task and returns the outcomes
    in task order, so parallel runs are indistinguishable from serial ones
    as long as [f] is deterministic.  With [jobs <= 1] (or a single task)
    everything runs in the calling process and no processes are forked.

    Failure semantics:
    - [f] raising is an ordinary, deterministic failure: the exception
      text is captured and the task is {e not} retried;
    - a worker process dying (signal, [exit], OOM) loses its in-flight
      task; the task is retried on a fresh worker up to [retries] times,
      then reported as [Crashed];
    - a task running past [task_timeout] seconds gets its worker killed
      and is reported as [Timed_out] without retry (a deterministic
      computation would only time out again).

    Workers are forked once per [map] call and fed tasks on demand over
    pipes (self-scheduling), so an expensive task does not hold up the
    queue behind it. *)

type 'b outcome =
  | Done of 'b
  | Failed of string  (** [f] raised; the exception text *)
  | Crashed           (** worker died repeatedly *)
  | Timed_out

val default_task_timeout : float

(** @raise Invalid_argument if [retries < 0] *)
val map :
  ?jobs:int ->
  ?task_timeout:float ->
  ?retries:int ->
  ('a -> 'b) ->
  'a array ->
  'b outcome array
