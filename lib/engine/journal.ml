(* Chunked sweep journal: Rcache's checksummed-line discipline applied
   to "chunks k of this sweep are done, with these costs".  Costs are
   printed as %h hex floats (lossless round-trip, including infinity),
   so a resumed sweep reproduces an uninterrupted one bit for bit.

   Format 2 puts the chunk total next to the key in the header
   (mira-journal 2|<key>|<total>), so progress reporting — the
   coordinator of a distributed sweep, `miracc sweep-status` — reads
   "chunks done / total" straight from the file via [describe] instead
   of re-deriving the chunking from the sweep inputs.  A v1 journal has
   no total; it is discarded like any other stale journal. *)

let magic = "mira-journal 2"

(* observability: checkpoint lifecycle.  Chunks replayed from disk vs
   evaluated fresh tell a resume-vs-cold story in one table; each fresh
   chunk is a span so sweeps read as a sequence of checkpoints in the
   trace.  Discarded journals (stale key, alien file) used to vanish
   silently; now they are counted and warned about, since a discard
   means a sweep someone checkpointed is about to be recomputed. *)
let m_recorded = Obs.Metrics.counter "journal.chunks_recorded"
let m_reused = Obs.Metrics.counter "journal.chunks_reused"
let m_quarantined = Obs.Metrics.counter "journal.quarantined"
let m_discarded = Obs.Metrics.counter "journal.discarded"
let m_torn_tail = Obs.Metrics.counter "journal.torn_tail"
let chunk_ms = Obs.Metrics.histogram "journal.chunk_ms"

type t = {
  path : string;
  header : string;
  chunks : (int, float array) Hashtbl.t;
  mutable quarantined : int;
  mutable oc : out_channel option;
}

type description = { key : string; total : int; done_chunks : int; torn : int }

let dec s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let header_of ~key ~total = Printf.sprintf "%s|%s|%d" magic key total

(* the inverse of [header_of]; the key itself may contain '|'-free hex
   only in practice, but parse defensively from both ends *)
let parse_header line =
  if not (String.starts_with ~prefix:(magic ^ "|") line) then None
  else
    let rest = String.sub line (String.length magic + 1)
        (String.length line - String.length magic - 1)
    in
    match String.rindex_opt rest '|' with
    | None -> None
    | Some i ->
      let key = String.sub rest 0 i in
      let total = String.sub rest (i + 1) (String.length rest - i - 1) in
      if key <> "" && dec total then Some (key, int_of_string total)
      else None

let payload_of_chunk idx costs =
  Printf.sprintf "chunk|%d|%s" idx
    (String.concat ","
       (List.map (Printf.sprintf "%h") (Array.to_list costs)))

let chunk_of_payload payload =
  match String.split_on_char '|' payload with
  | [ "chunk"; idx; costs ] when dec idx -> (
    match
      ( int_of_string idx,
        if costs = "" then [||]
        else
          Array.of_list
            (List.map float_of_string (String.split_on_char ',' costs)) )
    with
    | idx, costs -> Some (idx, costs)
    | exception _ -> None)
  | _ -> None

(* a stale or alien journal is never resumed — but it is no longer
   discarded in silence: the warning names the file so an operator can
   tell "fresh experiment" from "I pointed two different sweeps at the
   same journal path" *)
let note_discarded ~path ~why =
  Obs.Metrics.incr m_discarded;
  Obs.Trace.instant ~cat:"journal" "journal.discarded";
  Printf.eprintf "journal: discarding %s (%s); the sweep restarts from \
                  scratch\n%!"
    path why

let open_ ~path ~key ~total =
  let header = header_of ~key ~total in
  let t =
    {
      path;
      header;
      chunks = Hashtbl.create 64;
      quarantined = 0;
      oc = None;
    }
  in
  let resumable =
    Sys.file_exists path
    &&
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | h when h = header ->
          (try
             while true do
               let line = input_line ic in
               if line <> "" then
                 match
                   Option.bind (Rcache.unseal_line line) chunk_of_payload
                 with
                 | Some (idx, costs) -> Hashtbl.replace t.chunks idx costs
                 | None ->
                   t.quarantined <- t.quarantined + 1;
                   Obs.Metrics.incr m_quarantined
             done
           with End_of_file -> ());
          true
        | h ->
          (* different key/total or alien file: start over, loudly *)
          note_discarded ~path
            ~why:
              (if parse_header h <> None then "journal for a different sweep"
               else "not a sweep journal");
          false
        | exception End_of_file -> false)
  in
  if resumable && t.quarantined = 0 then
    t.oc <-
      Some (open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path)
  else begin
    (* fresh start — or scrub: rewrite the valid chunks so a torn tail
       cannot glue onto the next append *)
    let oc = open_out path in
    output_string oc header;
    output_char oc '\n';
    Hashtbl.fold (fun idx costs acc -> (idx, costs) :: acc) t.chunks []
    |> List.sort compare
    |> List.iter (fun (idx, costs) ->
           output_string oc (Rcache.seal_line (payload_of_chunk idx costs));
           output_char oc '\n');
    flush oc;
    t.oc <- Some oc
  end;
  t

let find t idx = Hashtbl.find_opt t.chunks idx

let record t idx costs =
  Hashtbl.replace t.chunks idx costs;
  match t.oc with
  | None -> ()
  | Some oc ->
    let line = Rcache.seal_line (payload_of_chunk idx costs) in
    if Faults.fires ~index:idx "sweep-torn" then
      output_string oc (String.sub line 0 (String.length line / 2))
    else begin
      output_string oc line;
      output_char oc '\n'
    end;
    flush oc

let quarantined t = t.quarantined

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    (try close_out oc with Sys_error _ -> ());
    t.oc <- None

let remove path = if Sys.file_exists path then Sys.remove path

(* progress without resuming: header + count of validly journaled
   chunks.  Read-only, lock-free — safe to call on a journal another
   process is appending to (at worst the count is one chunk behind).
   A line that fails the checksum or does not parse as a chunk — a
   worker killed mid-append leaves exactly one such torn tail — is
   counted in [torn] (and in the journal.torn_tail metric) instead of
   failing the description: a progress report over a crashed run is the
   main reason this function exists. *)
let describe ~path =
  if not (Sys.file_exists path) then None
  else
    let ic = try Some (open_in path) with Sys_error _ -> None in
    Option.bind ic @@ fun ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> None
        | h -> (
          match parse_header h with
          | None -> None
          | Some (key, total) ->
            let seen = Hashtbl.create 16 in
            let torn = ref 0 in
            (try
               while true do
                 let line = input_line ic in
                 if line <> "" then
                   match
                     Option.bind (Rcache.unseal_line line) chunk_of_payload
                   with
                   | Some (idx, _) -> Hashtbl.replace seen idx ()
                   | None ->
                     incr torn;
                     Obs.Metrics.incr m_torn_tail
               done
             with End_of_file -> ());
            Some
              { key; total; done_chunks = Hashtbl.length seen; torn = !torn }))

(* the chunking parameters are part of the identity of the sweep *)
let derived_key ~key ~chunk_size ~n =
  Digest.to_hex
    (Digest.string (Printf.sprintf "%s\x00%d\x00%d" key chunk_size n))

let run ?on_chunk ~path ~key ~chunk_size ~n eval =
  if chunk_size <= 0 then invalid_arg "Journal.run: chunk_size must be > 0";
  if n < 0 then invalid_arg "Journal.run: n must be >= 0";
  let key = derived_key ~key ~chunk_size ~n in
  let nchunks = (n + chunk_size - 1) / chunk_size in
  let t = open_ ~path ~key ~total:nchunks in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () ->
      let out = Array.make n nan in
      for c = 0 to nchunks - 1 do
        let lo = c * chunk_size in
        let hi = min n (lo + chunk_size) in
        let costs =
          match find t c with
          | Some costs when Array.length costs = hi - lo ->
            Obs.Metrics.incr m_reused;
            Obs.Trace.instant ~cat:"journal"
              ~args:[ ("chunk", Obs.Trace.Int c) ]
              "journal.chunk-reused";
            costs
          | _ ->
            let costs =
              Obs.span_with ~cat:"journal" ~hist:chunk_ms "journal.chunk"
                ~end_args:(fun _ ->
                  [ ("chunk", Obs.Trace.Int c); ("lo", Obs.Trace.Int lo);
                    ("hi", Obs.Trace.Int hi) ])
                (fun () -> eval lo hi)
            in
            if Array.length costs <> hi - lo then
              invalid_arg "Journal.run: eval returned the wrong length";
            record t c costs;
            Obs.Metrics.incr m_recorded;
            (* simulate kill -9 between chunks, for the resume tests *)
            if Faults.fires ~index:c "sweep-crash" then Unix._exit 21;
            (match on_chunk with Some f -> f c | None -> ());
            costs
        in
        Array.blit costs 0 out lo (hi - lo)
      done;
      out)
