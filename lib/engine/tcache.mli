(** Bounded in-memory cache of generated event traces
    ({!Mach.Mtrace.t}), keyed by (compiled-IR digest, fuel) — the two
    inputs the config-independent event stream depends on.  The machine
    config deliberately never enters the key: one resident trace prices
    every config via {!Mach.Replay}.

    This is the trace-once/model-many complement to the engine's
    sim-dedup layer: Rcache's sim entries dedup *results* per
    (ir, config, fuel); this layer caches the *trace*, so pricing known
    code on a new config costs one model fold instead of a semantic
    re-execution.

    Traces are one word per dynamic event, so the budget is total
    retained words (default {!default_capacity_words} = 8M, 64 MiB of
    events); eviction is LRU.  A single trace larger than the whole
    budget is generated, returned, and not retained. *)

type t

(** default retention budget, in trace words *)
val default_capacity_words : int

(** [?store] attaches a durable {!Tstore} tier: memory misses consult
    the store before generating, and fresh generations are written
    through, so a warm store replays grids across runs and processes
    without re-executing semantics.  The caller keeps ownership of the
    store (and closes it). *)
val create : ?capacity_words:int -> ?store:Tstore.t -> unit -> t

(** the cached trace for (ir_digest, fuel), refreshing its LRU position *)
val find : t -> ir_digest:string -> fuel:int -> Mach.Mtrace.t option

(** [find_or_generate t ~ir_digest ~fuel gen] returns the cached trace
    or calls [gen] at most once, retaining the result (budget
    permitting).  With a [store] attached, memory misses consult the
    store first (a store hit skips [gen]) and a fresh generation is
    written through.  [gen] must produce the trace of the compiled
    program [ir_digest] digests, at [fuel] — the cache trusts the
    caller's keying, as Rcache does. *)
val find_or_generate :
  t -> ir_digest:string -> fuel:int -> (unit -> Mach.Mtrace.t) -> Mach.Mtrace.t

(** the attached durable tier, if any *)
val store : t -> Tstore.t option

(** {2 Statistics} (also mirrored into the Obs metrics registry:
    [tcache.hits] / [tcache.misses] / [tcache.evictions] counters and
    the capacity-pressure gauges [tcache.resident_words] /
    [tcache.uncached]) *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int

(** traces generated but too large to retain *)
val uncached : t -> int

(** entries currently resident *)
val resident : t -> int

(** total retained words *)
val resident_words : t -> int

val capacity_words : t -> int
