(* Shard planning + run-manifest capture (see shard.mli).  Pure
   arithmetic plus two best-effort `git` probes; nothing here touches
   the socket layer, so Dist and the CLI can both reuse it. *)

type t = { id : int; lo : int; hi : int }

let plan ~n ~shards =
  if n < 0 then invalid_arg "Shard.plan: n must be >= 0";
  if shards <= 0 then invalid_arg "Shard.plan: shards must be > 0";
  let shards = min shards (max 1 n) in
  if n = 0 then [||]
  else begin
    (* balanced contiguous ranges: the first [n mod shards] shards get
       one extra item, so sizes differ by at most one *)
    let base = n / shards and rem = n mod shards in
    let lo = ref 0 in
    Array.init shards (fun id ->
        let size = base + if id < rem then 1 else 0 in
        let s = { id; lo = !lo; hi = !lo + size } in
        lo := !lo + size;
        s)
  end

let key ~job s =
  Digest.to_hex
    (Digest.string (Printf.sprintf "shard\x00%s\x00%d\x00%d\x00%d" job s.id s.lo s.hi))

(* ------------------------------------------------------------------ *)
(* git provenance, best effort: a sweep run outside a checkout (CI
   sandbox, cram) still gets a manifest, just with unknown provenance *)

let command_output cmd =
  match Unix.open_process_in (cmd ^ " 2>/dev/null") with
  | exception _ -> None
  | ic ->
    let buf = Buffer.create 256 in
    (try
       while true do
         Buffer.add_channel buf ic 1
       done
     with End_of_file -> ());
    (match Unix.close_process_in ic with
     | Unix.WEXITED 0 -> Some (Buffer.contents buf)
     | _ | (exception _) -> None)

let git_revision () =
  match command_output "git rev-parse HEAD" with
  | Some out when String.trim out <> "" -> String.trim out
  | _ -> "unknown"

let git_dirty_digest () =
  match command_output "git status --porcelain" with
  | None -> "unknown"
  | Some status when String.trim status = "" -> "clean"
  | Some _ -> (
    match command_output "git diff HEAD" with
    | Some diff -> Digest.to_hex (Digest.string diff)
    | None -> "unknown")

(* ------------------------------------------------------------------ *)
(* the manifest *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_manifest ~path ~run ~job ~n ~chunk_size ~meta plan =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let p fmt = Printf.fprintf oc fmt in
      p "{\n";
      p "  \"schema\": \"icc-dist-manifest/1\",\n";
      p "  \"run\": \"%s\",\n" (json_escape run);
      p "  \"git_rev\": \"%s\",\n" (json_escape (git_revision ()));
      p "  \"git_dirty\": \"%s\",\n" (json_escape (git_dirty_digest ()));
      p "  \"job\": \"%s\",\n" (json_escape job);
      p "  \"n\": %d,\n" n;
      p "  \"chunk_size\": %d,\n" chunk_size;
      p "  \"shards\": %d,\n" (Array.length plan);
      List.iter
        (fun (k, v) -> p "  \"%s\": \"%s\",\n" (json_escape k) (json_escape v))
        meta;
      p "  \"shard_map\": [\n";
      Array.iteri
        (fun i s ->
          p "    {\"id\": %d, \"lo\": %d, \"hi\": %d, \"journal_key\": \"%s\"}%s\n"
            s.id s.lo s.hi (key ~job s)
            (if i = Array.length plan - 1 then "" else ","))
        plan;
      p "  ]\n";
      p "}\n")
