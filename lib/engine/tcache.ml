(* Bounded in-memory store of generated event traces, keyed by
   (compiled-IR digest, fuel) — exactly what the config-independent
   event stream depends on; the machine config never enters the key,
   which is the whole point: one resident trace prices every config.

   Sits alongside the sim-dedup layer: Rcache's sim entries dedup
   *results* per (ir, config, fuel), this caches the *trace* so a new
   config against known code costs one model fold instead of a full
   semantic re-execution.

   Traces are big (one word per dynamic event), so the budget is total
   retained words, not entry count.  Eviction is LRU via the same
   stamp-queue discipline Rcache uses: each touch pushes a (key, stamp)
   marker; stale markers (stamp no longer current) are skipped when the
   budget forces eviction. *)

module Mtrace = Mach.Mtrace

type slot = { tr : Mtrace.t; words : int; mutable stamp : int }

type t = {
  tbl : (string, slot) Hashtbl.t;
  order : (string * int) Queue.t;  (* touch markers, oldest first *)
  mutable clock : int;
  mutable resident_words : int;
  capacity_words : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable uncached : int;  (* traces generated but too big to retain *)
  store : Tstore.t option; (* durable tier: miss -> store -> generate *)
}

(* 8M words = 64 MiB of events on a 64-bit host; a few hundred traces
   of the benchmark workloads' size. *)
let default_capacity_words = 8 * 1024 * 1024

let m_hits = Obs.Metrics.counter "tcache.hits"
let m_misses = Obs.Metrics.counter "tcache.misses"
let m_evictions = Obs.Metrics.counter "tcache.evictions"

(* capacity-pressure signals: how full the budget is and how often it
   is blown entirely (hits/misses/evictions alone cannot distinguish a
   tight budget from cold traffic) *)
let g_resident_words = Obs.Metrics.gauge "tcache.resident_words"
let g_uncached = Obs.Metrics.gauge "tcache.uncached"

let create ?(capacity_words = default_capacity_words) ?store () =
  {
    tbl = Hashtbl.create 64;
    order = Queue.create ();
    clock = 0;
    resident_words = 0;
    capacity_words = max 1 capacity_words;
    hits = 0;
    misses = 0;
    evictions = 0;
    uncached = 0;
    store;
  }

let key ~ir_digest ~fuel = ir_digest ^ "\x00" ^ string_of_int fuel

(* Retained footprint of a trace, in words: the event buffer (its full
   capacity, not just the meaningful prefix) plus the per-signature
   columns (uses array + row, dst, u0, u1 — about five words each). *)
let words_of (tr : Mtrace.t) =
  Array.length tr.Mtrace.events + (5 * Array.length tr.Mtrace.sig_dst)

let touch t key slot =
  t.clock <- t.clock + 1;
  slot.stamp <- t.clock;
  Queue.push (key, t.clock) t.order

let rec evict_to_fit t =
  if t.resident_words > t.capacity_words && not (Queue.is_empty t.order)
  then begin
    let k, stamp = Queue.pop t.order in
    (match Hashtbl.find_opt t.tbl k with
     | Some slot when slot.stamp = stamp ->
       (* current marker: this really is the least recently used entry *)
       Hashtbl.remove t.tbl k;
       t.resident_words <- t.resident_words - slot.words;
       Obs.Metrics.set g_resident_words (float_of_int t.resident_words);
       t.evictions <- t.evictions + 1;
       Obs.Metrics.incr m_evictions
     | _ -> ());  (* stale marker or already evicted: skip *)
    evict_to_fit t
  end

let find t ~ir_digest ~fuel =
  match Hashtbl.find_opt t.tbl (key ~ir_digest ~fuel) with
  | Some slot ->
    t.hits <- t.hits + 1;
    Obs.Metrics.incr m_hits;
    touch t (key ~ir_digest ~fuel) slot;
    Some slot.tr
  | None -> None

let find_or_generate t ~ir_digest ~fuel gen =
  let k = key ~ir_digest ~fuel in
  match Hashtbl.find_opt t.tbl k with
  | Some slot ->
    t.hits <- t.hits + 1;
    Obs.Metrics.incr m_hits;
    touch t k slot;
    slot.tr
  | None ->
    t.misses <- t.misses + 1;
    Obs.Metrics.incr m_misses;
    (* the durable tier answers memory misses before [gen]; a fresh
       generation is written through so later runs (and absorbed
       workers) find it *)
    let tr =
      match t.store with
      | None -> gen ()
      | Some store -> (
        match Tstore.find store ~ir_digest ~fuel with
        | Some tr -> tr
        | None ->
          let tr = gen () in
          Tstore.add store ~ir_digest ~fuel tr;
          tr)
    in
    let words = words_of tr in
    if words <= t.capacity_words then begin
      (* insert first, then shrink: the newest entry is never the LRU *)
      let slot = { tr; words; stamp = 0 } in
      Hashtbl.replace t.tbl k slot;
      t.resident_words <- t.resident_words + words;
      Obs.Metrics.set g_resident_words (float_of_int t.resident_words);
      touch t k slot;
      evict_to_fit t
    end
    else begin
      (* a trace bigger than the whole budget would evict everything
         and still not fit — hand it back unretained *)
      t.uncached <- t.uncached + 1;
      Obs.Metrics.set g_uncached (float_of_int t.uncached)
    end;
    tr

let store t = t.store
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let uncached t = t.uncached
let resident t = Hashtbl.length t.tbl
let resident_words t = t.resident_words
let capacity_words t = t.capacity_words
