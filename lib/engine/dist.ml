(* Coordinator/worker orchestration for distributed sweeps (see
   dist.mli).  Deliberately minimal machinery: one Unix-domain listener,
   a select loop, length-prefixed frames of '|'-separated fields, and
   per-home shard queues with steal-from-the-back rebalancing.  Worker
   death is an expected event, not an error: the connection loss
   re-queues the in-flight shard at the front of its home queue, so a
   respawned worker with the same directory resumes it from the shard
   journal instead of recomputing it. *)

type stats = {
  mutable run_id : string;
  mutable workers_seen : int;
  mutable shards_served : int;
  mutable steals : int;
  mutable requeues : int;
  mutable worker_deaths : int;
  mutable respawns : int;
  mutable serial_fallbacks : int;
  mutable absorbed : int;
  mutable absorb_duplicates : int;
  mutable absorb_rejected : int;
}

exception Dist_error of string

type spec = { job : string; n : int; chunk_size : int; shards : int }

(* observability: the whole orchestration story in counters — how many
   grants, how many were steals, how much work a death put back, how
   often the local mode had to respawn or give up on processes *)
let m_workers = Obs.Metrics.counter "dist.workers"
let m_served = Obs.Metrics.counter "dist.shards_served"
let m_steals = Obs.Metrics.counter "dist.steals"
let m_requeues = Obs.Metrics.counter "dist.requeues"
let m_deaths = Obs.Metrics.counter "dist.worker_deaths"
let m_respawns = Obs.Metrics.counter "dist.respawns"
let m_serial = Obs.Metrics.counter "dist.serial_fallbacks"
let shard_ms = Obs.Metrics.histogram "dist.shard_ms"

let new_stats () =
  {
    run_id = "";
    workers_seen = 0;
    shards_served = 0;
    steals = 0;
    requeues = 0;
    worker_deaths = 0;
    respawns = 0;
    serial_fallbacks = 0;
    absorbed = 0;
    absorb_duplicates = 0;
    absorb_rejected = 0;
  }

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let worker_dir ~dir i =
  Filename.concat (Filename.concat dir "workers") (Printf.sprintf "w%d" i)

let serial_dir dir = Filename.concat (Filename.concat dir "workers") "serial"

(* the run id: a fresh digest over the job key, wall clock and pid —
   unique per coordinator invocation, stable for its whole lifetime.
   It is recorded in the manifest, stamped on every process's trace
   ({!Obs.Trace.set_run}) and returned to workers in the hello reply. *)
let mint_run spec =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "run\x00%s\x00%d\x00%.9f\x00%d" spec.job spec.n
          (Unix.gettimeofday ()) (Unix.getpid ())))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let worker_subdirs dir =
  let wroot = Filename.concat dir "workers" in
  match Sys.readdir wroot with
  | exception Sys_error _ -> []
  | arr ->
    Array.to_list arr
    |> List.filter (fun d ->
           try Sys.is_directory (Filename.concat wroot d)
           with Sys_error _ -> false)
    |> List.sort compare

(* ------------------------------------------------------------------ *)
(* framing: 8 hex digits of payload length, then the payload.  Frames
   are small (the largest is a done message: one hex float per item of
   one shard), so blocking writes are fine on both sides. *)

let max_frame = 1 lsl 24

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let send_frame fd payload =
  write_all fd (Printf.sprintf "%08x%s" (String.length payload) payload)

let is_hex s =
  String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

(* blocking read of exactly [n] bytes; None on clean EOF before the
   first byte, raises on EOF mid-read *)
let read_exact fd n =
  let b = Bytes.create n in
  let off = ref 0 in
  (try
     while !off < n do
       match Unix.read fd b !off (n - !off) with
       | 0 -> raise Exit
       | k -> off := !off + k
     done
   with Exit -> ());
  if !off = 0 then None
  else if !off < n then raise (Dist_error "connection closed mid-frame")
  else Some (Bytes.to_string b)

(* worker side: blocking frame read; None on clean EOF *)
let recv_frame fd =
  match read_exact fd 8 with
  | None -> None
  | Some lenh ->
    if not (is_hex lenh) then raise (Dist_error "malformed frame length");
    let len = int_of_string ("0x" ^ lenh) in
    if len > max_frame then raise (Dist_error "oversized frame");
    if len = 0 then Some ""
    else (
      match read_exact fd len with
      | None -> raise (Dist_error "connection closed mid-frame")
      | Some p -> Some p)

(* costs travel as %h hex floats: lossless round-trip, including
   infinity, so the distributed sweep is bit-identical to a serial one *)
let hex_costs costs =
  String.concat " " (List.map (Printf.sprintf "%h") (Array.to_list costs))

let costs_of_hex s =
  if String.trim s = "" then [||]
  else Array.of_list (List.map float_of_string (String.split_on_char ' ' s))

(* ------------------------------------------------------------------ *)
(* coordinator *)

type conn = {
  fd : Unix.file_descr;
  mutable rbuf : string;          (* bytes received, not yet framed *)
  mutable greeted : bool;
  mutable wname : string;         (* the name the worker announced *)
  mutable home : int;
  mutable inflight : Shard.t option;
  mutable granted : float;        (* when the in-flight shard was sent *)
  mutable parked : bool;          (* a [need] awaiting work *)
  mutable finished : bool;        (* [fin] sent *)
}

type state = {
  spec : spec;
  run : string;                   (* the minted run id *)
  total : int;                    (* shard count *)
  queues : Shard.t list array;    (* per home slot, front = next *)
  results : float array option array;
  mutable completed : int;
  mutable shard_log : (int * string * float) list;
      (* (shard id, completing worker, grant-to-done secs), first
         completion only — feeds the rollup's per-shard throughput *)
  mutable conns : conn list;
  st : stats;
}

let listen_on socket =
  mkdir_p (Filename.dirname socket);
  (try if Sys.file_exists socket then Sys.remove socket with Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX socket);
     Unix.listen fd 64
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with _ -> ());
     raise
       (Dist_error
          (Printf.sprintf "cannot listen on %s: %s" socket
             (Unix.error_message e))));
  fd

let queue_pop_front st h =
  match st.queues.(h) with
  | s :: rest ->
    st.queues.(h) <- rest;
    Some s
  | [] -> None

(* steal from the back of the longest queue, leaving early (home) shards
   with their home — the thief takes the work its owner would reach last *)
let queue_steal st =
  let best = ref (-1) and best_len = ref 0 in
  Array.iteri
    (fun h q ->
      let l = List.length q in
      if l > !best_len then begin
        best := h;
        best_len := l
      end)
    st.queues;
  if !best < 0 then None
  else begin
    let rec split acc = function
      | [ s ] -> (List.rev acc, s)
      | x :: rest -> split (x :: acc) rest
      | [] -> assert false
    in
    let front, s = split [] st.queues.(!best) in
    st.queues.(!best) <- front;
    Some s
  end

(* drop/unpark/grant are mutually recursive: a failed send drops the
   connection, a drop with an in-flight shard re-queues it and wakes
   parked connections, waking a parked connection sends it a frame.
   Every entry point guards on membership in [st.conns], so cascaded
   drops during an [unpark] sweep are counted exactly once. *)
let rec drop_conn st c ~death =
  if List.memq c st.conns then begin
    st.conns <- List.filter (fun c' -> c' != c) st.conns;
    (try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ());
    if death && c.greeted && not c.finished then begin
      st.st.worker_deaths <- st.st.worker_deaths + 1;
      Obs.Metrics.incr m_deaths;
      (match c.inflight with
       | Some s ->
         (* front of the home queue: a respawned worker with the same
            directory picks it straight back up, resuming its journal *)
         st.queues.(c.home) <- s :: st.queues.(c.home);
         st.st.requeues <- st.st.requeues + 1;
         Obs.Metrics.incr m_requeues;
         Obs.Trace.instant ~cat:"dist"
           ~args:[ ("shard", Obs.Trace.Int s.Shard.id) ]
           "dist.requeue"
       | None -> ());
      c.inflight <- None;
      unpark st
    end
  end

and unpark st =
  List.iter
    (fun c ->
      if c.parked && not c.finished && List.memq c st.conns then grant st c)
    st.conns

and safe_send st c payload =
  try send_frame c.fd payload
  with Unix.Unix_error (_, _, _) | Sys_error _ -> drop_conn st c ~death:true

and grant st c =
  let give s ~stolen =
    st.st.shards_served <- st.st.shards_served + 1;
    Obs.Metrics.incr m_served;
    if stolen then begin
      st.st.steals <- st.st.steals + 1;
      Obs.Metrics.incr m_steals;
      Obs.Trace.instant ~cat:"dist"
        ~args:[ ("shard", Obs.Trace.Int s.Shard.id) ]
        "dist.steal"
    end;
    (* in-flight before the send: if the send fails, the drop re-queues *)
    c.inflight <- Some s;
    c.granted <- Unix.gettimeofday ();
    c.parked <- false;
    safe_send st c
      (Printf.sprintf "shard|%d|%d|%d" s.Shard.id s.Shard.lo s.Shard.hi)
  in
  match queue_pop_front st c.home with
  | Some s -> give s ~stolen:false
  | None -> (
    match queue_steal st with
    | Some s -> give s ~stolen:true
    | None ->
      if st.completed >= st.total then begin
        c.parked <- false;
        c.finished <- true;
        safe_send st c "fin"
      end
      else
        (* everything is in flight elsewhere; answer when a shard comes
           back (completion -> fin, or a death re-queues it) *)
        c.parked <- true)

let handle_message st c payload =
  match String.split_on_char '|' payload with
  | [ "hello"; name; slot; job; n; cs ] ->
    if
      job <> st.spec.job
      || n <> string_of_int st.spec.n
      || cs <> string_of_int st.spec.chunk_size
    then begin
      safe_send st c "reject|job key mismatch (different sweep inputs)";
      drop_conn st c ~death:false
    end
    else begin
      c.greeted <- true;
      c.wname <- name;
      st.st.workers_seen <- st.st.workers_seen + 1;
      Obs.Metrics.incr m_workers;
      let homes = Array.length st.queues in
      c.home <-
        (match int_of_string_opt slot with
         | Some s when s >= 0 -> s mod homes
         | _ -> (st.st.workers_seen - 1) mod homes);
      (* the reply carries the run id: that is how the correlation id
         crosses the process boundary to every worker's telemetry *)
      safe_send st c ("ok|" ^ st.run)
    end
  | [ "need" ] when c.greeted -> grant st c
  | [ "done"; id; costs ] when c.greeted -> (
    match int_of_string_opt id with
    | Some id when id >= 0 && id < st.total -> (
      let costs = try costs_of_hex costs with Failure _ -> [||] in
      match c.inflight with
      | Some s
        when s.Shard.id = id && Array.length costs = s.Shard.hi - s.Shard.lo
        ->
        c.inflight <- None;
        if st.results.(id) = None then begin
          st.results.(id) <- Some costs;
          st.shard_log <-
            (id, c.wname, Unix.gettimeofday () -. c.granted) :: st.shard_log;
          st.completed <- st.completed + 1;
          if st.completed >= st.total then unpark st
        end
      | _ ->
        (* a done for a shard this connection does not hold, or of the
           wrong size: the worker is confused — drop it, re-queuing
           whatever it really held *)
        drop_conn st c ~death:true)
    | _ -> drop_conn st c ~death:true)
  | _ -> drop_conn st c ~death:true

(* cut buffered bytes into frames; a malformed frame is a dead worker *)
let pump st c =
  let continue = ref true in
  while !continue do
    let buf = c.rbuf in
    if String.length buf < 8 then continue := false
    else begin
      let lenh = String.sub buf 0 8 in
      if not (is_hex lenh) then begin
        drop_conn st c ~death:true;
        continue := false
      end
      else
        let len = int_of_string ("0x" ^ lenh) in
        if len > max_frame then begin
          drop_conn st c ~death:true;
          continue := false
        end
        else if String.length buf < 8 + len then continue := false
        else begin
          let payload = String.sub buf 8 len in
          c.rbuf <- String.sub buf (8 + len) (String.length buf - 8 - len);
          handle_message st c payload;
          if not (List.memq c st.conns) then continue := false
        end
    end
  done

let read_conn st c =
  let b = Bytes.create 8192 in
  match Unix.read c.fd b 0 8192 with
  | 0 -> drop_conn st c ~death:true
  | k ->
    c.rbuf <- c.rbuf ^ Bytes.sub_string b 0 k;
    pump st c
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    drop_conn st c ~death:true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* ------------------------------------------------------------------ *)
(* run telemetry: journal scanning + rollup building

   The coordinator and a cold `miracc sweep-status` both want the same
   view: per-shard chunks done, read straight from whatever journals the
   workers left under <dir>/workers/ (home runs, stolen shards, serial
   fallback — all of them), validated against each shard's derived
   journal key so an alien or stale journal never inflates progress. *)

type shard_scan = { sworker : string; sdone : int; storn : int }

let scan_worker_journals ~dir ~job ~chunk_size (plan : Shard.t array) =
  let wroot = Filename.concat dir "workers" in
  let subdirs = worker_subdirs dir in
  Array.map
    (fun (s : Shard.t) ->
      let expect =
        Journal.derived_key ~key:(Shard.key ~job s) ~chunk_size
          ~n:(s.Shard.hi - s.Shard.lo)
      in
      let acc = ref { sworker = ""; sdone = 0; storn = 0 } in
      List.iter
        (fun w ->
          let path =
            Filename.concat (Filename.concat wroot w)
              (Printf.sprintf "shard-%d.journal" s.Shard.id)
          in
          match Journal.describe ~path with
          | Some d when d.Journal.key = expect ->
            let a = !acc in
            (* several journals can exist for one shard (death + steal):
               the most advanced one is the shard's real progress *)
            acc :=
              {
                sworker =
                  (if d.Journal.done_chunks > a.sdone || a.sworker = "" then w
                   else a.sworker);
                sdone = max a.sdone d.Journal.done_chunks;
                storn = a.storn + d.Journal.torn;
              }
          | _ -> ())
        subdirs;
      !acc)
    plan

let worker_metrics_docs ~dir =
  let wroot = Filename.concat dir "workers" in
  List.filter_map
    (fun w ->
      let p = Filename.concat (Filename.concat wroot w) "metrics.jsonl" in
      match read_file p with
      | text -> Some text
      | exception _ -> None)
    (worker_subdirs dir)

let rollup_of_state ~dir ~t0 (st : state) (plan : Shard.t array) =
  let scans =
    scan_worker_journals ~dir ~job:st.spec.job ~chunk_size:st.spec.chunk_size
      plan
  in
  let shards =
    Array.to_list
      (Array.mapi
         (fun i (s : Shard.t) ->
           let scan = scans.(i) in
           let total =
             (s.Shard.hi - s.Shard.lo + st.spec.chunk_size - 1)
             / st.spec.chunk_size
           in
           let finished = st.results.(i) <> None in
           let logged =
             List.find_opt (fun (id, _, _) -> id = s.Shard.id) st.shard_log
           in
           {
             Obs.Rollup.shard = s.Shard.id;
             worker =
               (match logged with
                | Some (_, w, _) -> w
                | None -> scan.sworker);
             chunks_total = total;
             chunks_done = (if finished then total else min scan.sdone total);
             torn = scan.storn;
             secs = (match logged with Some (_, _, t) -> t | None -> 0.0);
           })
         plan)
  in
  {
    Obs.Rollup.run = st.run;
    job = st.spec.job;
    n = st.spec.n;
    chunk_size = st.spec.chunk_size;
    elapsed_s = Unix.gettimeofday () -. t0;
    workers_seen = st.st.workers_seen;
    shards_served = st.st.shards_served;
    steals = st.st.steals;
    requeues = st.st.requeues;
    worker_deaths = st.st.worker_deaths;
    respawns = st.st.respawns;
    serial_fallbacks = st.st.serial_fallbacks;
    absorbed = st.st.absorbed;
    absorb_duplicates = st.st.absorb_duplicates;
    absorb_rejected = st.st.absorb_rejected;
    shards;
    metrics_docs = Obs.Metrics.to_jsonl () :: worker_metrics_docs ~dir;
  }

(* best effort: a rollup that cannot be written must never hurt the
   sweep it describes *)
let write_rollup ~dir ~t0 st plan =
  try
    Obs.Rollup.write
      ~path:(Filename.concat dir "rollup.json")
      (rollup_of_state ~dir ~t0 st plan)
  with Sys_error _ | Unix.Unix_error (_, _, _) -> ()

let serve_core ~listener ~socket ~dir ~homes ?(meta = []) ?(tick = fun _ -> ())
    ?run spec =
  if homes <= 0 then invalid_arg "Dist.serve: workers must be > 0";
  mkdir_p dir;
  let run = match run with Some r -> r | None -> mint_run spec in
  let t0 = Unix.gettimeofday () in
  (* correlate this process's own telemetry with the run before any
     span of the serve loop is emitted *)
  Obs.Trace.set_run run;
  let plan = Shard.plan ~n:spec.n ~shards:spec.shards in
  Shard.write_manifest
    ~path:(Filename.concat dir "manifest.json")
    ~run ~job:spec.job ~n:spec.n ~chunk_size:spec.chunk_size ~meta plan;
  let total = Array.length plan in
  let st =
    {
      spec;
      run;
      total;
      queues = Array.make homes [];
      results = Array.make total None;
      completed = 0;
      shard_log = [];
      conns = [];
      st = new_stats ();
    }
  in
  st.st.run_id <- run;
  (* home assignment: shard id mod homes, appended in index order so
     each home queue runs front-to-back in sweep order *)
  for i = total - 1 downto 0 do
    let h = i mod homes in
    st.queues.(h) <- plan.(i) :: st.queues.(h)
  done;
  let prev_sigpipe =
    (* a worker dying mid-send must surface as EPIPE, not kill us *)
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ())
        st.conns;
      st.conns <- [];
      (try Unix.close listener with Unix.Unix_error (_, _, _) -> ());
      (try if Sys.file_exists socket then Sys.remove socket
       with Sys_error _ -> ());
      match prev_sigpipe with
      | Some h -> ignore (Sys.signal Sys.sigpipe h)
      | None -> ())
    (fun () ->
      let drain_deadline = ref None in
      let finished () =
        if st.completed < st.total then false
        else begin
          (* completion reached: give connected workers a bounded
             window to ask for (and receive) their fin *)
          (match !drain_deadline with
           | None -> drain_deadline := Some (Unix.gettimeofday () +. 5.0)
           | Some _ -> ());
          st.conns = [] || Unix.gettimeofday () > Option.get !drain_deadline
        end
      in
      let last_rollup = ref 0.0 in
      while not (finished ()) do
        tick st;
        (* the live rollup: refreshed at most twice a second, atomically
           replaced, so `sweep-status --follow` always reads a coherent
           document while the run is in flight *)
        let nowt = Unix.gettimeofday () in
        if nowt -. !last_rollup > 0.5 then begin
          last_rollup := nowt;
          write_rollup ~dir ~t0 st plan
        end;
        let fds = listener :: List.map (fun c -> c.fd) st.conns in
        match Unix.select fds [] [] 0.05 with
        | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd = listener then (
                match Unix.accept listener with
                | cfd, _ ->
                  st.conns <-
                    {
                      fd = cfd;
                      rbuf = "";
                      greeted = false;
                      wname = "";
                      home = 0;
                      inflight = None;
                      granted = 0.0;
                      parked = false;
                      finished = false;
                    }
                    :: st.conns
                | exception Unix.Unix_error (_, _, _) -> ())
              else
                match List.find_opt (fun c -> c.fd = fd) st.conns with
                | Some c -> (
                  try read_conn st c
                  with Dist_error _ -> drop_conn st c ~death:true)
                | None -> ())
            readable
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      write_rollup ~dir ~t0 st plan;
      let costs = Array.make spec.n nan in
      Array.iteri
        (fun i s ->
          match st.results.(i) with
          | Some c -> Array.blit c 0 costs s.Shard.lo (s.Shard.hi - s.Shard.lo)
          | None -> assert false)
        plan;
      (st.st, costs))

let serve ~socket ~dir ~workers ?meta spec =
  if workers <= 0 then invalid_arg "Dist.serve: workers must be > 0";
  let listener = listen_on socket in
  Obs.span_with ~cat:"dist" "dist.serve"
    ~end_args:(fun ((s : stats), _) ->
      [
        ("workers", Obs.Trace.Int s.workers_seen);
        ("shards", Obs.Trace.Int s.shards_served);
        ("steals", Obs.Trace.Int s.steals);
        ("requeues", Obs.Trace.Int s.requeues);
      ])
    (fun () -> serve_core ~listener ~socket ~dir ~homes:workers ?meta spec)

(* ------------------------------------------------------------------ *)
(* worker *)

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec try_connect attempts =
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempts > 0 ->
      Unix.sleepf 0.1;
      try_connect (attempts - 1)
    | exception Unix.Unix_error (e, _, _) ->
      raise
        (Dist_error
           (Printf.sprintf "cannot reach coordinator at %s: %s" socket
              (Unix.error_message e)))
  in
  (match try_connect 100 with
   | () -> ()
   | exception e ->
     (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
     raise e);
  fd

(* run one granted shard through a checkpointed journal; [eval] gets
   global item indices.  The dist-worker-exit fault (occurrence = shard
   id) is consulted only when the shard journal shows no progress — the
   shard's first attempt — and kills this process right after the first
   chunk is journaled, so the injected death always leaves a resumable
   checkpoint behind. *)
let run_shard ~dir ~spec ~eval (s : Shard.t) =
  let path = Filename.concat dir (Printf.sprintf "shard-%d.journal" s.id) in
  let fresh =
    match Journal.describe ~path with
    | Some d -> d.done_chunks = 0
    | None -> true
  in
  let on_chunk =
    if fresh && Faults.fires ~index:s.id "dist-worker-exit" then
      Some (fun (_ : int) -> Unix._exit 21)
    else None
  in
  Obs.span_with ~cat:"dist" ~hist:shard_ms "dist.shard"
    ~end_args:(fun _ ->
      let base =
        [
          ("shard", Obs.Trace.Int s.id);
          ("lo", Obs.Trace.Int s.lo);
          ("hi", Obs.Trace.Int s.hi);
        ]
      in
      (* the shared run id on every shard span: a merged trace filters
         to one run by arg, not by guessing from file layout *)
      match Obs.Trace.run_id () with
      | Some r -> ("run", Obs.Trace.Str r) :: base
      | None -> base)
    (fun () ->
      Journal.run ?on_chunk ~path ~key:(Shard.key ~job:spec.job s)
        ~chunk_size:spec.chunk_size ~n:(s.hi - s.lo) (fun a b ->
          eval (s.lo + a) (s.lo + b)))

let work ?(name = Printf.sprintf "w%d" (Unix.getpid ())) ?(slot = -1)
    ?metrics_path ~socket ~dir spec ~eval () =
  mkdir_p dir;
  let metrics_path =
    match metrics_path with
    | Some p -> p
    | None -> Filename.concat dir "metrics.jsonl"
  in
  (* the worker's metrics export, refreshed after every shard so a crash
     loses at most one shard's worth of counters; atomic via rename so a
     live rollup read never sees a torn file *)
  let write_metrics () =
    try
      let tmp = metrics_path ^ ".tmp" in
      let oc = open_out tmp in
      output_string oc (Obs.Metrics.to_jsonl ());
      close_out oc;
      Sys.rename tmp metrics_path
    with Sys_error _ -> ()
  in
  let fd = connect socket in
  Fun.protect
    ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      send_frame fd
        (Printf.sprintf "hello|%s|%d|%s|%d|%d" name slot spec.job spec.n
           spec.chunk_size);
      (match recv_frame fd with
       | Some "ok" -> ()
       | Some p when String.starts_with ~prefix:"ok|" p ->
         (* the coordinator's minted run id: from here on this worker's
            traces and spans carry the shared correlation id *)
         Obs.Trace.set_run (String.sub p 3 (String.length p - 3))
       | Some p when String.starts_with ~prefix:"reject|" p ->
         raise
           (Dist_error
              ("coordinator rejected worker: "
              ^ String.sub p 7 (String.length p - 7)))
       | Some _ -> raise (Dist_error "unexpected reply to hello")
       | None -> raise (Dist_error "coordinator hung up during hello"));
      let completed = ref 0 in
      let running = ref true in
      while !running do
        send_frame fd "need";
        match recv_frame fd with
        | Some "fin" | None -> running := false
        | Some p -> (
          match String.split_on_char '|' p with
          | [ "shard"; id; lo; hi ] -> (
            match
              (int_of_string_opt id, int_of_string_opt lo, int_of_string_opt hi)
            with
            | Some id, Some lo, Some hi ->
              let s = { Shard.id; lo; hi } in
              let costs = run_shard ~dir ~spec ~eval s in
              send_frame fd (Printf.sprintf "done|%d|%s" id (hex_costs costs));
              incr completed;
              write_metrics ()
            | _ -> raise (Dist_error "malformed shard grant"))
          | _ -> raise (Dist_error ("unexpected message: " ^ p)))
      done;
      write_metrics ();
      !completed)

(* ------------------------------------------------------------------ *)
(* one-command local mode *)

let absorb_worker_caches ~cache ~dirs st =
  match cache with
  | None -> ()
  | Some c ->
    List.iter
      (fun wdir ->
        let donor = Filename.concat wdir "cache" in
        if Sys.file_exists donor then
          match Rcache.absorb c donor with
          | (a : Rcache.absorb_stats) ->
            st.absorbed <- st.absorbed + a.Rcache.absorbed;
            st.absorb_duplicates <- st.absorb_duplicates + a.Rcache.duplicates;
            st.absorb_rejected <- st.absorb_rejected + a.Rcache.rejected
          | exception Rcache.Cache_error msg ->
            (* the sweep's results are already in hand; a donor cache
               too mangled to merge costs warm-start, not correctness *)
            Printf.eprintf "dist: skipping unmergeable worker cache %s: %s\n%!"
              donor msg)
      dirs

(* same merge discipline for the workers' trace stores: donors at
   <worker_dir>/tstore, counted by Tstore's own obs metrics (the result
   stats record stays about result caches) *)
let absorb_worker_tstores ~tstore ~dirs =
  match tstore with
  | None -> ()
  | Some ts ->
    List.iter
      (fun wdir ->
        let donor = Filename.concat wdir "tstore" in
        if Sys.file_exists donor then
          match Tstore.absorb ts donor with
          | (_ : Tstore.absorb_stats) -> ()
          | exception Tstore.Store_error msg ->
            (* a donor store too mangled to merge costs warm-start on
               the next grid replay, not correctness *)
            Printf.eprintf
              "dist: skipping unmergeable worker trace store %s: %s\n%!"
              donor msg)
      dirs

let sweep_local ~workers ~dir ?(max_respawns = 2) ?cache ?tstore ?meta spec
    ~make_eval =
  if workers <= 0 then invalid_arg "Dist.sweep_local: workers must be > 0";
  mkdir_p dir;
  let socket = Filename.concat dir "coord.sock" in
  let listener = listen_on socket in
  let pids = Array.make workers None in
  let respawn_budget = ref max_respawns in
  let spawn i =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      (try Unix.close listener with Unix.Unix_error (_, _, _) -> ());
      let cpid = Unix.getpid () in
      let wdir = worker_dir ~dir i in
      mkdir_p wdir;
      (* when the parent is tracing, each worker writes its own
         crash-safe trace file (pid-suffixed: a respawn in the same slot
         must not clobber its predecessor's evidence), on the parent's
         epoch so `trace-merge` needs no rebasing.  Otherwise the plain
         fork isolation is enough. *)
      (if Obs.Trace.enabled () then
         match
           open_out
             (Filename.concat wdir (Printf.sprintf "trace-%d.json" cpid))
         with
         | oc -> Obs.Trace.stream_after_fork ~pid:cpid oc
         | exception Sys_error _ -> Obs.Trace.on_fork ~pid:cpid
       else Obs.Trace.on_fork ~pid:cpid);
      let code =
        try
          let eval = make_eval ~worker_dir:wdir in
          let _ =
            work ~name:(Printf.sprintf "w%d" i) ~slot:i ~socket ~dir:wdir spec
              ~eval ()
          in
          0
        with
        | Dist_error msg ->
          Printf.eprintf "dist worker %d: %s\n%!" i msg;
          20
        | e ->
          Printf.eprintf "dist worker %d: %s\n%!" i (Printexc.to_string e);
          20
      in
      Obs.Trace.finish ();
      Unix._exit code
    | pid -> pids.(i) <- Some pid
    | exception Unix.Unix_error (_, _, _) -> pids.(i) <- None
  in
  let serial_done = ref false in
  (* in-process last resort: evaluate what is left through the same
     journaled path a worker would use, so resume and bit-identity hold *)
  let serial_fallback st =
    if not !serial_done then begin
      serial_done := true;
      st.st.serial_fallbacks <- st.st.serial_fallbacks + 1;
      Obs.Metrics.incr m_serial;
      let wdir = serial_dir dir in
      mkdir_p wdir;
      let eval = make_eval ~worker_dir:wdir in
      Array.iteri
        (fun h q ->
          st.queues.(h) <- [];
          List.iter
            (fun (s : Shard.t) ->
              let costs = run_shard ~dir:wdir ~spec ~eval s in
              if st.results.(s.Shard.id) = None then begin
                st.results.(s.Shard.id) <- Some costs;
                st.completed <- st.completed + 1
              end)
            q)
        st.queues
    end
  in
  let tick st =
    Array.iteri
      (fun i -> function
        | Some pid -> (
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> ()
          | _, _ | (exception Unix.Unix_error (_, _, _)) ->
            pids.(i) <- None;
            if st.completed < st.total && !respawn_budget > 0 then begin
              decr respawn_budget;
              st.st.respawns <- st.st.respawns + 1;
              Obs.Metrics.incr m_respawns;
              spawn i
            end)
        | None -> ())
      pids;
    (* nobody left to do the work: either burn respawn budget bringing a
       worker back, or finish the sweep in this process *)
    if st.completed < st.total && Array.for_all (( = ) None) pids
       && st.conns = []
    then
      if !respawn_budget > 0 then begin
        decr respawn_budget;
        st.st.respawns <- st.st.respawns + 1;
        Obs.Metrics.incr m_respawns;
        spawn 0
      end
      else serial_fallback st
  in
  let stats, costs =
    Obs.span_with ~cat:"dist" "dist.sweep_local"
      ~end_args:(fun ((s : stats), _) ->
        [
          ("workers", Obs.Trace.Int s.workers_seen);
          ("shards", Obs.Trace.Int s.shards_served);
          ("steals", Obs.Trace.Int s.steals);
          ("requeues", Obs.Trace.Int s.requeues);
          ("deaths", Obs.Trace.Int s.worker_deaths);
          ("respawns", Obs.Trace.Int s.respawns);
        ])
      (fun () ->
        Fun.protect
          ~finally:(fun () ->
            Array.iteri
              (fun i -> function
                | Some pid ->
                  (try Unix.kill pid Sys.sigkill
                   with Unix.Unix_error (_, _, _) -> ());
                  (try ignore (Unix.waitpid [] pid)
                   with Unix.Unix_error (_, _, _) -> ());
                  pids.(i) <- None
                | None -> ())
              pids)
          (fun () ->
            (* mint (and trace-announce) the run id before the first
               fork: a child forked earlier would inherit — and its
               trace file would announce — whatever run this process
               served last *)
            let run = mint_run spec in
            Obs.Trace.set_run run;
            for i = 0 to workers - 1 do
              spawn i
            done;
            let r =
              serve_core ~listener ~socket ~dir ~homes:workers ?meta ~tick
                ~run spec
            in
            (* the fleet got fin (or EOF); reap everyone before merging
               caches.  A worker that never managed to connect is still
               in its retry loop — give stragglers a short grace, then
               kill: the sweep is already complete *)
            let deadline = Unix.gettimeofday () +. 2.0 in
            let rec reap () =
              Array.iteri
                (fun i -> function
                  | Some pid -> (
                    match Unix.waitpid [ Unix.WNOHANG ] pid with
                    | 0, _ ->
                      if Unix.gettimeofday () > deadline then begin
                        (try Unix.kill pid Sys.sigkill
                         with Unix.Unix_error (_, _, _) -> ());
                        (try ignore (Unix.waitpid [] pid)
                         with Unix.Unix_error (_, _, _) -> ());
                        pids.(i) <- None
                      end
                    | _, _ | (exception Unix.Unix_error (_, _, _)) ->
                      pids.(i) <- None)
                  | None -> ())
                pids;
              if Array.exists (( <> ) None) pids then begin
                Unix.sleepf 0.02;
                reap ()
              end
            in
            reap ();
            r))
  in
  let dirs =
    List.init workers (fun i -> worker_dir ~dir i) @ [ serial_dir dir ]
  in
  absorb_worker_caches ~cache ~dirs stats;
  absorb_worker_tstores ~tstore ~dirs;
  (stats, costs)

(* ------------------------------------------------------------------ *)
(* cold reads: reconstruct the run view from the directory alone

   `miracc sweep-status` and `trace-merge` must work with no coordinator
   alive — on a finished run, a crashed one, or one still in flight in
   another process.  Everything below is read-only. *)

type manifest = {
  m_run : string;
  m_job : string;
  m_n : int;
  m_chunk_size : int;
  m_plan : Shard.t array;
}

let read_manifest ~path =
  match read_file path with
  | exception _ -> None
  | text -> (
    let str = Obs.Jscan.str_field and num = Obs.Jscan.num_field in
    match (str text "job", num text "n", num text "chunk_size") with
    | Some job, Some n, Some cs ->
      let plan =
        String.split_on_char '\n' text
        |> List.filter_map (fun line ->
               if Obs.Jscan.str_field line "journal_key" = None then None
               else
                 match
                   (num line "id", num line "lo", num line "hi")
                 with
                 | Some id, Some lo, Some hi ->
                   Some
                     {
                       Shard.id = int_of_float id;
                       lo = int_of_float lo;
                       hi = int_of_float hi;
                     }
                 | _ -> None)
        |> Array.of_list
      in
      Some
        {
          m_run = Option.value ~default:"" (str text "run");
          m_job = job;
          m_n = int_of_float n;
          m_chunk_size = int_of_float cs;
          m_plan = plan;
        }
    | _ -> None)

let survey ~dir =
  match read_manifest ~path:(Filename.concat dir "manifest.json") with
  | None -> None
  | Some m ->
    let scans =
      scan_worker_journals ~dir ~job:m.m_job ~chunk_size:m.m_chunk_size m.m_plan
    in
    (* the coordinator-only facts (orchestration counts, elapsed time,
       per-shard grant timings) are not recoverable from journals; lift
       them from the live rollup the coordinator left behind, if any *)
    let rollup =
      match read_file (Filename.concat dir "rollup.json") with
      | text -> Some text
      | exception _ -> None
    in
    let rint key =
      match rollup with
      | Some t -> (
        match Obs.Jscan.num_field t key with
        | Some v -> int_of_float v
        | None -> 0)
      | None -> 0
    in
    let rollup_shards =
      match rollup with
      | None -> []
      | Some t ->
        String.split_on_char '\n' t
        |> List.filter_map (fun line ->
               match
                 ( Obs.Jscan.num_field line "shard",
                   Obs.Jscan.num_field line "secs" )
               with
               | Some id, Some secs ->
                 Some
                   ( int_of_float id,
                     ( Option.value ~default:""
                         (Obs.Jscan.str_field line "worker"),
                       secs ) )
               | _ -> None)
    in
    let shards =
      Array.to_list
        (Array.mapi
           (fun i (s : Shard.t) ->
             let scan = scans.(i) in
             let total =
               (s.Shard.hi - s.Shard.lo + m.m_chunk_size - 1) / m.m_chunk_size
             in
             let logged = List.assoc_opt s.Shard.id rollup_shards in
             {
               Obs.Rollup.shard = s.Shard.id;
               worker =
                 (if scan.sworker <> "" then scan.sworker
                  else match logged with Some (w, _) -> w | None -> "");
               chunks_total = total;
               chunks_done = min scan.sdone total;
               torn = scan.storn;
               secs = (match logged with Some (_, t) -> t | None -> 0.0);
             })
           m.m_plan)
    in
    Some
      {
        Obs.Rollup.run = m.m_run;
        job = m.m_job;
        n = m.m_n;
        chunk_size = m.m_chunk_size;
        elapsed_s =
          (match rollup with
           | Some t ->
             Option.value ~default:0.0 (Obs.Jscan.num_field t "elapsed_s")
           | None -> 0.0);
        workers_seen = rint "workers_seen";
        shards_served = rint "shards_served";
        steals = rint "steals";
        requeues = rint "requeues";
        worker_deaths = rint "worker_deaths";
        respawns = rint "respawns";
        serial_fallbacks = rint "serial_fallbacks";
        absorbed = rint "absorbed";
        absorb_duplicates = rint "absorb_duplicates";
        absorb_rejected = rint "absorb_rejected";
        shards;
        metrics_docs = worker_metrics_docs ~dir;
      }

let trace_sources ~dir =
  let json_traces d =
    match Sys.readdir d with
    | exception Sys_error _ -> []
    | arr ->
      Array.to_list arr
      |> List.filter (fun f ->
             String.starts_with ~prefix:"trace" f
             && Filename.check_suffix f ".json")
      |> List.sort compare
      |> List.map (Filename.concat d)
  in
  let label base = function
    | 0 -> base
    | k -> Printf.sprintf "%s+%d" base k
  in
  let coord =
    List.mapi (fun k p -> (label "coordinator" k, p)) (json_traces dir)
  in
  let wroot = Filename.concat dir "workers" in
  let workers =
    List.concat_map
      (fun w ->
        List.mapi
          (fun k p -> (label w k, p))
          (json_traces (Filename.concat wroot w)))
      (worker_subdirs dir)
  in
  coord @ workers
