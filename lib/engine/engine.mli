(** The batched, parallel, cache-backed sequence-evaluation service.

    Every experiment reduces to one operation — "compile program [p]
    under sequence [s] and measure it on the simulated machine" — and
    this module is the single path for it.  It adds, over calling the
    simulator directly:

    - a content-addressed persistent cache ({!Rcache}) keyed by the IR
      digest, the pass sequence, the machine configuration digest, the
      simulation fuel and the pass-set version, so identical evaluations
      are never simulated twice, within or across runs;
    - a pass-compilation trie ({!Pctrie}) memoizing single pass
      applications by (input-IR digest, pass), so a sweep compiles each
      distinct sequence {e prefix} once instead of once per sequence;
    - a simulation-dedup layer keying simulator runs by (compiled-IR
      digest, machine config, fuel): sequences that converge to
      identical code — no-op tails, commuting passes, fixpoints — are
      simulated exactly once, and the (program, sequence) entry is
      filled from the shared result.  Dedup entries live in the same
      Rcache, so convergence is remembered across runs.  Both layers
      are on by default and disabled together by [create ~share:false]
      (the [--no-share] differential baseline: outcomes are identical
      either way, only the work changes);
    - a bounded trace cache ({!Tcache}) keyed by (compiled-IR digest,
      fuel) — config deliberately absent — used when the trace engine
      is selected ([Mach.Sim.default_engine := Trace]): the
      config-independent event trace is generated once and replayed per
      machine config, so re-measuring known code on a new config costs
      one model fold instead of a semantic re-execution;
    - a [Unix.fork] worker pool ({!Pool}) for batches, with per-task
      timeouts and crash retries, returning results in task order so a
      parallel run is bit-identical to a serial one.  With sharing on,
      misses are compiled in the parent in prefix-lexicographic order
      (the trie's LRU walks one subtree at a time) and only distinct
      compiled programs are dispatched, in that same prefix-local
      order;
    - a stats surface (evaluations / hits / misses / dedup hits /
      simulations / trie traffic / failures / wall-time) printable as a
      table.

    Failures (trap, divergence) are first-class cached results with cost
    [infinity]: a known-broken sequence loses every comparison without
    being re-simulated.  Worker crashes and timeouts also cost
    [infinity] but are {e not} cached, since they may not reproduce. *)

(* the submodules, re-exported: the library is wrapped, so this is the
   public path to the result store, the worker pool, the fault-injection
   layer and the sweep journal *)
module Rcache = Rcache
module Pool = Pool
module Faults = Faults
module Journal = Journal
module Pctrie = Pctrie
module Tcache = Tcache
module Tstore = Tstore
module Grid = Grid
module Shard = Shard
module Dist = Dist

type outcome = {
  cost : float;             (** cycles, or [infinity] on failure *)
  cycles : int option;
  code_size : int option;
  counters : int array option;  (** full bank, {!Mach.Counters.all} order *)
  from_cache : bool;
}

type stats = {
  mutable evals : int;     (** evaluations requested *)
  mutable hits : int;      (** served from the (program, sequence) cache *)
  mutable sims : int;      (** simulator runs actually executed *)
  mutable dedup_hits : int;
      (** misses whose simulation was shared with another sequence that
          compiled to identical code (in-batch or via a persisted sim
          entry) instead of running the simulator *)
  mutable failures : int;  (** evaluations that trapped / diverged / died *)
  mutable wall : float;    (** seconds spent inside the engine *)
}

type t

(** [create config] builds an engine for one machine configuration.
    [jobs] bounds the worker pool for batch calls (default 1 = serial);
    [cache] plugs in a result store (default: a fresh in-memory one);
    [fuel] is the simulator step budget and is part of the cache key.
    [share] (default true) enables the compilation trie and the
    simulation-dedup layer; [trie_capacity] bounds the trie's LRU of
    materialized IRs (default {!Pctrie.default_capacity}).
    [tcache] plugs in a trace cache (default: a fresh one) — engines for
    different configs of the same architecture grid should share one, so
    each program is traced once for the whole grid.  [tstore] attaches a
    persistent trace store as the default trace cache's durable tier
    (ignored when an explicit [tcache] is given — wire the store into
    that cache instead); the caller keeps ownership and closes it. *)
val create :
  ?jobs:int ->
  ?cache:Rcache.t ->
  ?fuel:int ->
  ?task_timeout:float ->
  ?retries:int ->
  ?max_respawns:int ->
  ?respawn_backoff:float ->
  ?share:bool ->
  ?trie_capacity:int ->
  ?tcache:Tcache.t ->
  ?tstore:Tstore.t ->
  Mach.Config.t ->
  t

val config : t -> Mach.Config.t
val jobs : t -> int
val cache : t -> Rcache.t

(** the engine's trace cache (consulted only under the trace engine) *)
val tcache : t -> Tcache.t

(** is prefix sharing / simulation dedup enabled? *)
val share : t -> bool

(** the engine's compilation trie, [None] when sharing is off *)
val trie : t -> Pctrie.t option

(** hex digest of a program ({!Pctrie.digest}: printed IR plus the
    printer-omitted state): the program part of cache keys *)
val ir_digest : Mira.Ir.program -> string

(** the full cache key of (program, sequence) under this engine *)
val key : t -> Mira.Ir.program -> Passes.Pass.t list -> string

(** evaluate one sequence (serial: never forks) *)
val eval : t -> Mira.Ir.program -> Passes.Pass.t list -> outcome

(** Evaluate a batch, in parallel when [jobs > 1].  Results are in input
    order; duplicate sequences are simulated once. *)
val eval_batch : t -> Mira.Ir.program -> Passes.Pass.t list list -> outcome array

(** like {!eval_batch} over (program, sequence) pairs — one pool run for
    work spanning several programs (knowledge-base builds, tournament
    candidate scoring) *)
val eval_many : t -> (Mira.Ir.program * Passes.Pass.t list) list -> outcome array

(** just the costs of {!eval_batch} *)
val costs : t -> Mira.Ir.program -> Passes.Pass.t list list -> float array

(** a cost oracle for the sequential search strategies
    ({!Search.Strategies.eval}-compatible); the program digest is
    computed once *)
val evaluator : t -> Mira.Ir.program -> Passes.Pass.t list -> float

val stats : t -> stats
val reset_stats : t -> unit

(** Everything the run survived rather than died of: worker respawns and
    fork failures, crashed/hung workers, poisoned tasks, degradations to
    serial execution, quarantined cache lines, absorbed write errors,
    broken stale locks.  All zero on a clean run. *)
type health = {
  respawns : int;
  spawn_failures : int;
  crashed_workers : int;
  timeouts : int;
  poisoned : int;
  serial_fallbacks : int;
  cache_quarantined : int;
  cache_write_errors : int;
  stale_locks_broken : int;
}

val health : t -> health

(** no degradation events at all? *)
val healthy : t -> bool

(** one-line report: ["engine health: ok"] or the non-zero counters *)
val pp_health : Format.formatter -> t -> unit

(** hits / evals, in [0,1]; 0 when nothing was evaluated *)
val hit_rate : t -> float

(** the printable stats table; [wall] line omitted when [wall:false]
    (e.g. under cram, where timings are not reproducible) *)
val pp_stats : ?wall:bool -> Format.formatter -> t -> unit
