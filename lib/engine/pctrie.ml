(* Memoized single-pass compilation keyed by (input-IR digest, pass).
   See the .mli for the soundness argument; the LRU follows Rcache's
   touch/stamp discipline so eviction is O(1) amortized. *)

module Ir = Mira.Ir
module Pass = Passes.Pass

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type t = {
  tbl : (string, (Ir.program * string) * int) Hashtbl.t;
  order : (string * int) Queue.t;
  mutable stamp : int;
  capacity : int;
  stats : stats;
}

let default_capacity = 4096

(* mirrored into the global registry so `--metrics` shows trie traffic
   next to the engine's eval/hit/miss counters *)
let m_hits = Obs.Metrics.counter "engine.trie_hits"
let m_misses = Obs.Metrics.counter "engine.trie_misses"
let m_evictions = Obs.Metrics.counter "engine.trie_evictions"

let create ?(capacity = default_capacity) () =
  {
    tbl = Hashtbl.create 1024;
    order = Queue.create ();
    stamp = 0;
    capacity = max 1 capacity;
    stats = { hits = 0; misses = 0; evictions = 0 };
  }

(* The printed form is not the whole program value: it omits each
   function's fresh-name counters ([nregs]/[nlabels], read by passes
   that mint fresh registers or labels, e.g. inline and strength
   reduction), each global's element type and initializers ([gelt] is
   rewritten by the packing pass based on [ginit]), and [main].  Two
   states printing identically can therefore still diverge under later
   passes or the simulator, so the node identity folds all of that
   hidden state in alongside the text. *)
let digest (p : Ir.program) =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Ir.to_string p);
  Buffer.add_string b "\x00main=";
  Buffer.add_string b p.Ir.main;
  List.iter
    (fun (g : Ir.global) ->
      Buffer.add_string b
        (Printf.sprintf "\x00%s:%s:" g.Ir.gname
           (match g.Ir.gelt with
            | Ir.EltInt -> "i"
            | Ir.EltInt32 -> "i32"
            | Ir.EltFloat -> "f"));
      Array.iter
        (fun v -> Buffer.add_string b (Printf.sprintf "%h," v))
        g.Ir.ginit)
    p.Ir.globals;
  Ir.SMap.iter
    (fun name (f : Ir.func) ->
      Buffer.add_string b
        (Printf.sprintf "\x00%s=%d,%d" name f.Ir.nregs f.Ir.nlabels))
    p.Ir.funcs;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* digests are fixed-width hex, so '|' cannot occur in either part *)
let edge_key d pass = d ^ "|" ^ Pass.name pass

let touch t key v =
  t.stamp <- t.stamp + 1;
  Hashtbl.replace t.tbl key (v, t.stamp);
  Queue.add (key, t.stamp) t.order;
  while Hashtbl.length t.tbl > t.capacity do
    match Queue.take_opt t.order with
    | None -> Hashtbl.reset t.tbl (* unreachable: order covers tbl *)
    | Some (k, s) -> (
      match Hashtbl.find_opt t.tbl k with
      | Some (_, s') when s' = s ->
        Hashtbl.remove t.tbl k;
        t.stats.evictions <- t.stats.evictions + 1;
        Obs.Metrics.incr m_evictions
      | _ -> () (* stale pair *))
  done

let apply t p ~digest:d pass =
  let k = edge_key d pass in
  match Hashtbl.find_opt t.tbl k with
  | Some (v, _) ->
    t.stats.hits <- t.stats.hits + 1;
    Obs.Metrics.incr m_hits;
    touch t k v;
    v
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    Obs.Metrics.incr m_misses;
    let p' = Pass.apply pass p in
    let v = (p', digest p') in
    touch t k v;
    v

let apply_sequence t p ~digest seq =
  List.fold_left (fun (p, d) pass -> apply t p ~digest:d pass) (p, digest) seq

let hits t = t.stats.hits
let misses t = t.stats.misses
let evictions t = t.stats.evictions
let resident t = Hashtbl.length t.tbl
