(** Shard planning and run-manifest capture for distributed sweeps.

    A sweep over [n] items is cut into contiguous shards — the unit the
    coordinator serves to workers, steals between them, and re-queues
    when a worker dies.  Within a shard the worker checkpoints at
    {!Journal} chunk granularity, so the two levels compose: shards are
    the distribution unit, chunks the crash-recovery unit.

    The manifest ([manifest.json] in the run directory) captures
    everything needed to reproduce or resume the run as a whole: the
    git revision and a digest of the uncommitted diff, the job key (the
    digest binding program, configuration, sequence list, fuel and
    chunking), the shard map, and each shard's journal key.  This is
    the mir-slurm [runscript.sh] discipline: a sweep's output is
    meaningless unless the exact tree that produced it is named. *)

type t = { id : int; lo : int; hi : int }

(** [plan ~n ~shards] cuts [0..n-1] into at most [shards] contiguous,
    balanced, non-empty shards in index order (fewer when [n < shards];
    empty when [n = 0]).
    @raise Invalid_argument if [n < 0] or [shards <= 0] *)
val plan : n:int -> shards:int -> t array

(** the shard's journal key: binds the job key and the shard's identity
    (id, bounds), so a journal can never resume a different shard *)
val key : job:string -> t -> string

(** [git_revision ()] — the current commit hash, or ["unknown"] outside
    a git checkout *)
val git_revision : unit -> string

(** [git_dirty_digest ()] — ["clean"] when the tree matches HEAD, the
    MD5 of [git diff HEAD] when it does not, ["unknown"] outside a git
    checkout.  Byte-exact reproducibility needs rev {e and} diff. *)
val git_dirty_digest : unit -> string

(** [write_manifest ~path ~run ~job ~n ~chunk_size ~meta plan] writes
    the run manifest as JSON: schema, the run id [run] (the correlation
    id every process of the run stamps on its telemetry), git
    provenance, job key, sweep shape, caller metadata (config name,
    sampling seed, ...), and the shard map with per-shard journal
    keys. *)
val write_manifest :
  path:string ->
  run:string ->
  job:string ->
  n:int ->
  chunk_size:int ->
  meta:(string * string) list ->
  t array ->
  unit
