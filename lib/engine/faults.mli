(** Seeded, deterministic fault injection for the evaluation engine.

    The pool, the result cache, the journal and the bench harness consult
    named {e injection points}; an installed plan decides, purely from the
    point name and an occurrence number, whether the fault fires.  No
    randomness, no wall-clock: the same plan against the same run injects
    the same faults, so every failure mode is a reproducible test.

    A plan is parsed from a spec string of comma-separated directives:

    {v point@occ          fire at occurrence occ (0-based)
point@occ=ARG      same, with an integer argument
point@occ+         fire at occ and every later occurrence
point@*            fire at every occurrence v}

    The occurrence number is either supplied by the caller (e.g. the
    pool passes the {e task index}, so ["worker-crash@3"] means "the
    worker running task 3 dies", on every attempt) or counted per point
    (e.g. ["torn-append@5"] tears the sixth cache append of the
    process).

    Known points:
    - ["worker-crash"] — pool worker [_exit]s instead of running the
      task (occurrence = task index);
    - ["worker-hang"] — pool worker sleeps [ARG] seconds (default 3600)
      before running the task (occurrence = task index);
    - ["spawn-fail"] — forking a pool worker raises (occurrence =
      spawn attempt, counted);
    - ["torn-append"] — a cache append writes only half the line and no
      newline, as a crash mid-write would (counted);
    - ["flip-append"] — a cache append writes the line with one bit
      flipped, as silent media corruption would (counted);
    - ["fail-append"] — a cache append raises mid-write, as a full disk
      would (counted);
    - ["stale-lock"] — a cache lock acquisition finds a lock file left
      by a dead process (counted);
    - ["compact-crash"] — log compaction dies after writing the
      temporary file, before the atomic rename (counted);
    - ["sweep-crash"] — a checkpointed sweep [_exit]s right after
      journaling a chunk, like [kill -9] (occurrence = chunk index);
    - ["sweep-torn"] — a journal chunk record is torn mid-write
      (occurrence = chunk index);
    - ["dist-worker-exit"] — a distributed-sweep worker [_exit]s
      mid-shard, right after journaling the shard's first chunk
      (occurrence = shard id; consulted only on the shard's {e first}
      attempt, so a worker that rejoins and resumes the shard from its
      journal survives);
    - ["tstore-write"] — a trace-store append is torn mid-payload (the
      entry header and roughly half the payload bytes reach the disk,
      with no terminator), as a crash mid-write would (counted). *)

(** raised {e by} injected faults that surface as exceptions
    ([spawn-fail], [fail-append], [compact-crash]) *)
exception Injected of string

type plan

(** what a fired directive carries *)
type hit = { arg : int option }

(** the empty plan: nothing ever fires *)
val none : plan

val parse : string -> (plan, string) result

(** @raise Invalid_argument on a malformed spec *)
val parse_exn : string -> plan

(** install a plan process-wide (replacing any previous one) and reset
    all occurrence counters.  Forked children inherit the plan. *)
val install : plan -> unit

(** remove the installed plan (equivalent to [install none]) *)
val clear : unit -> unit

(** is any plan with at least one directive installed? *)
val active : unit -> bool

(** parse and install the [MIRA_FAULTS] environment variable, if set.
    @raise Invalid_argument if it is set but malformed *)
val install_from_env : unit -> unit

(** [consult ?index point] — does a directive for [point] fire at this
    occurrence?  With [~index] the caller names the occurrence (and no
    state changes); without, a per-point counter supplies it (and is
    incremented).  Returns the directive's argument on fire.  With no
    active plan this is a single branch. *)
val consult : ?index:int -> string -> hit option

(** [consult] as a boolean *)
val fires : ?index:int -> string -> bool

(** install [plan], run the thunk, always restore the previous plan and
    counters — for tests *)
val with_plan : plan -> (unit -> 'a) -> 'a
