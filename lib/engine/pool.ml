(* Unix.fork worker pool.  Parent and each worker share two pipes: tasks
   flow down as marshalled [task] values, results come back as marshalled
   [(index, result)] pairs.  Each worker has at most one task in flight,
   so one buffered channel read per select wakeup is complete and no
   result can hide in a channel buffer behind another. *)

type 'b outcome =
  | Done of 'b
  | Failed of string
  | Crashed
  | Timed_out

let default_task_timeout = 300.0

type 'a task_msg = Task of int * 'a | Stop

(* what a worker sends back; exceptions are caught in the worker so that
   only a real process death looks like a crash to the parent *)
type 'b reply = int * ('b, string) result

type 'b worker = {
  pid : int;
  to_w : out_channel;
  from_w : in_channel;
  from_fd : Unix.file_descr;
  mutable inflight : (int * float) option;  (* task index, start time *)
}

let serial_map f tasks =
  Array.map
    (fun t ->
      match f t with
      | v -> Done v
      | exception e -> Failed (Printexc.to_string e))
    tasks

let spawn_worker (f : 'a -> 'b) : 'b worker =
  (* the child must not replay the parent's buffered output *)
  flush stdout;
  flush stderr;
  let task_r, task_w = Unix.pipe ~cloexec:false () in
  let res_r, res_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
    Unix.close task_w;
    Unix.close res_r;
    let ic = Unix.in_channel_of_descr task_r in
    let oc = Unix.out_channel_of_descr res_w in
    let rec loop () =
      match (input_value ic : _ task_msg) with
      | Stop -> ()
      | Task (i, t) ->
        let r =
          match f t with
          | v -> Ok v
          | exception e -> Error (Printexc.to_string e)
        in
        output_value oc ((i, r) : _ reply);
        flush oc;
        loop ()
    in
    (try loop () with _ -> ());
    (* _exit: skip at_exit handlers and inherited buffer flushes *)
    (try flush oc with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close task_r;
    Unix.close res_w;
    {
      pid;
      to_w = Unix.out_channel_of_descr task_w;
      from_w = Unix.in_channel_of_descr res_r;
      from_fd = res_r;
      inflight = None;
    }

let dispose_worker w =
  (* _noerr: a plain close_out that fails to flush (worker already gone,
     EPIPE) leaves the channel open, and the runtime's exit-time flush of
     open channels would then raise SIGPIPE after our handler is restored *)
  close_out_noerr w.to_w;
  close_in_noerr w.from_w;
  try ignore (Unix.waitpid [] w.pid) with _ -> ()

let kill_worker w =
  (try Unix.kill w.pid Sys.sigkill with _ -> ());
  dispose_worker w

(* send a task; false if the worker is already dead (EPIPE) *)
let send w msg =
  match
    output_value w.to_w msg;
    flush w.to_w
  with
  | () -> true
  | exception _ -> false

let parallel_map ~jobs ~task_timeout ~retries f tasks =
  let n = Array.length tasks in
  let results = Array.make n Crashed in
  let attempts = Array.make n 0 in
  let pending = Queue.create () in
  for i = 0 to n - 1 do
    Queue.add i pending
  done;
  let open_slots = ref n in  (* tasks not yet resolved *)
  let workers = ref [] in
  let prev_sigpipe =
    (* a worker dying mid-send must surface as EPIPE, not kill the parent *)
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter kill_worker !workers;
      match prev_sigpipe with
      | Some h -> ignore (Sys.signal Sys.sigpipe h)
      | None -> ())
    (fun () ->
      (* feed the next pending task to [w]; retire idle workers *)
      let rec feed w =
        match Queue.take_opt pending with
        | None ->
          ignore (send w Stop);
          w.inflight <- None
        | Some i ->
          if send w (Task (i, tasks.(i))) then
            w.inflight <- Some (i, Unix.gettimeofday ())
          else begin
            (* died between tasks: nothing was in flight, just respawn *)
            Queue.push i pending;
            workers := List.filter (fun x -> x != w) !workers;
            dispose_worker w;
            let w' = spawn_worker f in
            workers := w' :: !workers;
            feed w'
          end
      in
      (* the in-flight task of a dead/killed worker: retry or record *)
      let lost w verdict =
        (match w.inflight with
         | None -> ()
         | Some (i, _) ->
           if verdict = Crashed && attempts.(i) <= retries then
             Queue.push i pending
           else begin
             results.(i) <- verdict;
             decr open_slots
           end);
        workers := List.filter (fun x -> x != w) !workers;
        dispose_worker w;
        if not (Queue.is_empty pending) then begin
          let w' = spawn_worker f in
          workers := w' :: !workers;
          feed w'
        end
      in
      workers := List.init (min jobs (max 1 n)) (fun _ -> spawn_worker f);
      List.iter feed !workers;
      while !open_slots > 0 do
        let busy = List.filter (fun w -> w.inflight <> None) !workers in
        if busy = [] then
          (* all workers retired yet tasks unresolved: every respawn path
             failed; give the remaining tasks up as crashed *)
          Queue.iter
            (fun i ->
              results.(i) <- Crashed;
              decr open_slots)
            pending
          |> fun () -> Queue.clear pending
        else begin
          let fds = List.map (fun w -> w.from_fd) busy in
          let readable, _, _ =
            try Unix.select fds [] [] 0.2
            with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
          in
          List.iter
            (fun fd ->
              let w = List.find (fun w -> w.from_fd = fd) busy in
              match (input_value w.from_w : _ reply) with
              | i, r ->
                attempts.(i) <- attempts.(i) + 1;
                results.(i) <-
                  (match r with Ok v -> Done v | Error e -> Failed e);
                decr open_slots;
                w.inflight <- None;
                feed w
              | exception (End_of_file | Sys_error _) ->
                (match w.inflight with
                 | Some (i, _) -> attempts.(i) <- attempts.(i) + 1
                 | None -> ());
                lost w Crashed)
            readable;
          (* timeouts, checked on every wakeup *)
          let now = Unix.gettimeofday () in
          List.iter
            (fun w ->
              match w.inflight with
              | Some (_, t0) when now -. t0 > task_timeout ->
                (try Unix.kill w.pid Sys.sigkill with _ -> ());
                lost w Timed_out
              | _ -> ())
            (List.filter (fun w -> w.inflight <> None) !workers)
        end
      done;
      List.iter
        (fun w -> if w.inflight = None then ignore (send w Stop))
        !workers;
      results)

let map ?(jobs = 1) ?(task_timeout = default_task_timeout) ?(retries = 1) f
    tasks =
  if retries < 0 then invalid_arg "Pool.map: retries must be >= 0";
  if jobs <= 1 || Array.length tasks <= 1 then serial_map f tasks
  else parallel_map ~jobs ~task_timeout ~retries f tasks
