(* Unix.fork worker pool.  Parent and each worker share two pipes: tasks
   flow down as marshalled [task] values, results come back as marshalled
   [(index, result)] pairs.  Each worker has at most one task in flight,
   so one buffered channel read per select wakeup is complete and no
   result can hide in a channel buffer behind another.

   Self-healing: dead workers are respawned with exponential backoff
   against a per-call budget; tasks that keep killing workers are
   poisoned (retired as Crashed) instead of being retried forever; and
   when no worker can be (re)spawned at all the remaining tasks run
   serially in the parent.  Everything survived is counted in the
   caller's [health] record. *)

type 'b outcome =
  | Done of 'b
  | Failed of string
  | Crashed
  | Timed_out

type health = {
  mutable respawns : int;
  mutable spawn_failures : int;
  mutable crashed_workers : int;
  mutable timeouts : int;
  mutable poisoned : int;
  mutable serial_fallbacks : int;
}

let empty_health () =
  {
    respawns = 0;
    spawn_failures = 0;
    crashed_workers = 0;
    timeouts = 0;
    poisoned = 0;
    serial_fallbacks = 0;
  }

let is_healthy h =
  h.respawns = 0 && h.spawn_failures = 0 && h.crashed_workers = 0
  && h.timeouts = 0 && h.poisoned = 0 && h.serial_fallbacks = 0

let pp_health ppf h =
  if is_healthy h then Fmt.pf ppf "ok"
  else begin
    let fields =
      [
        ("respawns", h.respawns);
        ("spawn-failures", h.spawn_failures);
        ("crashed-workers", h.crashed_workers);
        ("timeouts", h.timeouts);
        ("poisoned-tasks", h.poisoned);
        ("serial-fallbacks", h.serial_fallbacks);
      ]
      |> List.filter (fun (_, v) -> v > 0)
    in
    Fmt.pf ppf "degraded (%s)"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) fields))
  end

let default_task_timeout = 300.0
let default_max_respawns = 8
let default_respawn_backoff = 0.05

type 'a task_msg = Task of int * 'a | Stop

(* What a worker sends back; exceptions are caught in the worker so that
   only a real process death looks like a crash to the parent.  The
   third component is the worker's span batch: trace events accumulated
   while running the task (empty when tracing is off), replayed into the
   parent's trace with the worker's pid — that is how worker spans land
   in the one trace file with correct pids. *)
type 'b reply = int * ('b, string) result * Obs.Trace.event array

(* pool observability: task-lifecycle counters mirror every [health]
   increment into the global metrics registry, so `--metrics` reports
   restarts / poison tasks / fallbacks across all pools in one table *)
let m_tasks = Obs.Metrics.counter "pool.tasks"
let m_respawns = Obs.Metrics.counter "pool.respawns"
let m_spawn_failures = Obs.Metrics.counter "pool.spawn_failures"
let m_crashed = Obs.Metrics.counter "pool.crashed_workers"
let m_timeouts = Obs.Metrics.counter "pool.timeouts"
let m_poisoned = Obs.Metrics.counter "pool.poisoned"
let m_serial_fallbacks = Obs.Metrics.counter "pool.serial_fallbacks"
let task_ms = Obs.Metrics.histogram "pool.task_ms"

let note_respawn h =
  h.respawns <- h.respawns + 1;
  Obs.Metrics.incr m_respawns;
  Obs.Trace.instant ~cat:"pool" "pool.respawn"

let note_spawn_failure h =
  h.spawn_failures <- h.spawn_failures + 1;
  Obs.Metrics.incr m_spawn_failures

let note_crashed h =
  h.crashed_workers <- h.crashed_workers + 1;
  Obs.Metrics.incr m_crashed;
  Obs.Trace.instant ~cat:"pool" "pool.worker-crash"

let note_timeout h =
  h.timeouts <- h.timeouts + 1;
  Obs.Metrics.incr m_timeouts;
  Obs.Trace.instant ~cat:"pool" "pool.task-timeout"

let note_poisoned h =
  h.poisoned <- h.poisoned + 1;
  Obs.Metrics.incr m_poisoned;
  Obs.Trace.instant ~cat:"pool" "pool.task-poisoned"

let note_serial_fallback h =
  h.serial_fallbacks <- h.serial_fallbacks + 1;
  Obs.Metrics.incr m_serial_fallbacks;
  Obs.Trace.instant ~cat:"pool" "pool.serial-fallback"

let run_task f t i =
  Obs.span_with ~cat:"pool" ~hist:task_ms "pool.task"
    ~end_args:(fun _ -> [ ("task", Obs.Trace.Int i) ])
    (fun () -> f t)

type 'b worker = {
  pid : int;
  to_w : out_channel;
  from_w : in_channel;
  from_fd : Unix.file_descr;
  mutable inflight : (int * float) option;  (* task index, start time *)
}

let run_one f tasks i =
  match run_task f tasks.(i) i with
  | v -> Done v
  | exception e -> Failed (Printexc.to_string e)

let serial_map ~schedule f tasks =
  match schedule with
  | None -> Array.init (Array.length tasks) (run_one f tasks)
  | Some order ->
    (* same results; only the execution order follows the schedule *)
    let results = Array.make (Array.length tasks) Crashed in
    Array.iter (fun i -> results.(i) <- run_one f tasks i) order;
    results

let spawn_worker (f : 'a -> 'b) : 'b worker =
  if Faults.fires "spawn-fail" then raise (Faults.Injected "spawn-fail");
  (* the child must not replay the parent's buffered output *)
  flush stdout;
  flush stderr;
  let task_r, task_w = Unix.pipe ~cloexec:false () in
  let res_r, res_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
    Unix.close task_w;
    Unix.close res_r;
    (* worker-side tracing: a private memory buffer stamped with this
       worker's pid; each reply carries the events drained since the
       previous one *)
    Obs.Trace.on_fork ~pid:(Unix.getpid ());
    let ic = Unix.in_channel_of_descr task_r in
    let oc = Unix.out_channel_of_descr res_w in
    let rec loop () =
      match (input_value ic : _ task_msg) with
      | Stop -> ()
      | Task (i, t) ->
        (* injection points: die or wedge on a named task index *)
        if Faults.fires ~index:i "worker-crash" then Unix._exit 13;
        (match Faults.consult ~index:i "worker-hang" with
         | Some h ->
           Unix.sleepf (float_of_int (Option.value h.Faults.arg ~default:3600))
         | None -> ());
        let r =
          match run_task f t i with
          | v -> Ok v
          | exception e -> Error (Printexc.to_string e)
        in
        output_value oc ((i, r, Obs.Trace.drain ()) : _ reply);
        flush oc;
        loop ()
    in
    (try loop () with _ -> ());
    (* _exit: skip at_exit handlers and inherited buffer flushes *)
    (try flush oc with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close task_r;
    Unix.close res_w;
    {
      pid;
      to_w = Unix.out_channel_of_descr task_w;
      from_w = Unix.in_channel_of_descr res_r;
      from_fd = res_r;
      inflight = None;
    }

let dispose_worker w =
  (* _noerr: a plain close_out that fails to flush (worker already gone,
     EPIPE) leaves the channel open, and the runtime's exit-time flush of
     open channels would then raise SIGPIPE after our handler is restored *)
  close_out_noerr w.to_w;
  close_in_noerr w.from_w;
  try ignore (Unix.waitpid [] w.pid) with _ -> ()

let kill_worker w =
  (try Unix.kill w.pid Sys.sigkill with _ -> ());
  dispose_worker w

(* send a task; false if the worker is already dead (EPIPE) *)
let send w msg =
  match
    output_value w.to_w msg;
    flush w.to_w
  with
  | () -> true
  | exception _ -> false

let parallel_map ~jobs ~task_timeout ~retries ~health ~max_respawns
    ~backoff ~schedule f tasks =
  let n = Array.length tasks in
  let results = Array.make n Crashed in
  let crashes = Array.make n 0 in  (* workers each task has killed *)
  let pending = Queue.create () in
  (match schedule with
   | None ->
     for i = 0 to n - 1 do
       Queue.add i pending
     done
   | Some order -> Array.iter (fun i -> Queue.add i pending) order);
  let open_slots = ref n in  (* tasks not yet resolved *)
  let workers = ref [] in
  let respawn_budget = ref max_respawns in
  let prev_sigpipe =
    (* a worker dying mid-send must surface as EPIPE, not kill the parent *)
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter kill_worker !workers;
      match prev_sigpipe with
      | Some h -> ignore (Sys.signal Sys.sigpipe h)
      | None -> ())
    (fun () ->
      let resolve i o =
        results.(i) <- o;
        decr open_slots
      in
      (* last resort: no worker can be (re)spawned — run what is left in
         this process, skipping poison tasks, instead of failing *)
      let serial_fallback () =
        if not (Queue.is_empty pending) then begin
          note_serial_fallback health;
          Queue.iter
            (fun i ->
              if crashes.(i) > retries then begin
                note_poisoned health;
                resolve i Crashed
              end
              else
                resolve i
                  (match run_task f tasks.(i) i with
                   | v -> Done v
                   | exception e -> Failed (Printexc.to_string e)))
            pending;
          Queue.clear pending
        end
      in
      (* a replacement worker, with exponential backoff across failed
         fork attempts, against the per-call budget *)
      let respawn () =
        let rec go delay =
          if !respawn_budget <= 0 then None
          else begin
            decr respawn_budget;
            match spawn_worker f with
            | w ->
              note_respawn health;
              Some w
            | exception _ ->
              note_spawn_failure health;
              if !respawn_budget > 0 then Unix.sleepf delay;
              go (Float.min 1.0 (delay *. 2.0))
          end
        in
        go backoff
      in
      let drop_worker w = workers := List.filter (fun x -> x != w) !workers in
      (* feed the next pending task to [w]; retire idle workers *)
      let rec feed w =
        match Queue.take_opt pending with
        | None ->
          ignore (send w Stop);
          w.inflight <- None
        | Some i ->
          if send w (Task (i, tasks.(i))) then
            w.inflight <- Some (i, Unix.gettimeofday ())
          else begin
            (* died between tasks: nothing was in flight, just respawn *)
            Queue.push i pending;
            drop_worker w;
            dispose_worker w;
            note_crashed health;
            match respawn () with
            | Some w' ->
              workers := w' :: !workers;
              feed w'
            | None -> if !workers = [] then serial_fallback ()
          end
      in
      (* the in-flight task of a dead/killed worker: retry, poison, or
         record the verdict *)
      let lost w verdict =
        (match (w.inflight, verdict) with
         | None, _ -> ()
         | Some (i, _), Crashed ->
           crashes.(i) <- crashes.(i) + 1;
           if crashes.(i) <= retries then Queue.push i pending
           else begin
             (* poison: this task has now killed retries+1 workers *)
             note_poisoned health;
             resolve i Crashed
           end
         | Some (i, _), v -> resolve i v);
        drop_worker w;
        dispose_worker w;
        if not (Queue.is_empty pending) then
          match respawn () with
          | Some w' ->
            workers := w' :: !workers;
            feed w'
          | None -> if !workers = [] then serial_fallback ()
      in
      (* initial spawns: tolerate partial failure; with zero workers the
         whole batch runs serially *)
      for _ = 1 to min jobs (max 1 n) do
        match spawn_worker f with
        | w -> workers := w :: !workers
        | exception _ -> note_spawn_failure health
      done;
      if !workers = [] then serial_fallback ()
      else List.iter feed !workers;
      while !open_slots > 0 do
        let busy = List.filter (fun w -> w.inflight <> None) !workers in
        if busy = [] then
          (* all workers retired yet tasks unresolved: finish serially *)
          serial_fallback ()
        else begin
          let fds = List.map (fun w -> w.from_fd) busy in
          let readable, _, _ =
            try Unix.select fds [] [] 0.2
            with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
          in
          List.iter
            (fun fd ->
              let w = List.find (fun w -> w.from_fd = fd) busy in
              match (input_value w.from_w : _ reply) with
              | i, r, spans ->
                Obs.Trace.emit_events spans;
                resolve i
                  (match r with Ok v -> Done v | Error e -> Failed e);
                w.inflight <- None;
                feed w
              | exception (End_of_file | Sys_error _) ->
                note_crashed health;
                lost w Crashed)
            readable;
          (* timeouts, checked on every wakeup *)
          let now = Unix.gettimeofday () in
          List.iter
            (fun w ->
              match w.inflight with
              | Some (_, t0) when now -. t0 > task_timeout ->
                (try Unix.kill w.pid Sys.sigkill with _ -> ());
                note_timeout health;
                lost w Timed_out
              | _ -> ())
            (List.filter (fun w -> w.inflight <> None) !workers)
        end
      done;
      List.iter
        (fun w -> if w.inflight = None then ignore (send w Stop))
        !workers;
      results)

let map ?(jobs = 1) ?(task_timeout = default_task_timeout) ?(retries = 1)
    ?health ?(max_respawns = default_max_respawns)
    ?(respawn_backoff = default_respawn_backoff) ?schedule f tasks =
  if retries < 0 then invalid_arg "Pool.map: retries must be >= 0";
  if max_respawns < 0 then invalid_arg "Pool.map: max_respawns must be >= 0";
  (match schedule with
   | None -> ()
   | Some order ->
     let n = Array.length tasks in
     let bad () =
       invalid_arg "Pool.map: schedule must be a permutation of the tasks"
     in
     if Array.length order <> n then bad ();
     let seen = Array.make (max 1 n) false in
     Array.iter
       (fun i ->
         if i < 0 || i >= n || seen.(i) then bad ();
         seen.(i) <- true)
       order);
  let health =
    match health with Some h -> h | None -> empty_health ()
  in
  Obs.Metrics.incr ~by:(Array.length tasks) m_tasks;
  let go () =
    if jobs <= 1 || Array.length tasks <= 1 then serial_map ~schedule f tasks
    else
      parallel_map ~jobs ~task_timeout ~retries ~health ~max_respawns
        ~backoff:respawn_backoff ~schedule f tasks
  in
  if not (Obs.Trace.enabled ()) then go ()
  else
    Obs.Trace.with_span ~cat:"pool"
      ~args:
        [
          ("tasks", Obs.Trace.Int (Array.length tasks));
          ("jobs", Obs.Trace.Int jobs);
        ]
      "pool.batch" go
