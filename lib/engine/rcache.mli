(** Persistent, content-addressed store of sequence-evaluation results.

    Keys are hex digests computed by {!Engine} from (IR digest, pass
    sequence, machine configuration, pass-set version); values are the
    measured cycles, code size and full performance-counter vector — or
    the recorded fact that the evaluation failed (trapped / diverged),
    so known-broken sequences are never re-simulated either.

    Persistence is an append-only line-oriented log ([results.log]
    inside the cache directory), flushed on every write.  Format v3
    protects every record with a checksum: a line is
    [<sum>|<payload>] where [<sum>] is the first 8 hex characters of
    the payload's MD5, and every payload carries the digest of the
    compiled (post-pipeline) IR the measurement came from — the handle
    the engine's simulation-dedup layer keys on.  At replay, a line
    whose checksum or payload does not validate — torn by a crash,
    bit-flipped by the medium, semantically out of range — is
    {e quarantined}: counted, dropped, never fatal; the remaining
    entries survive.  Re-recording a key appends a newer line (last
    line wins on load).  Whenever replay quarantined anything the log
    is rewritten in place via {!compact} — the store is self-healing.
    Legacy v1/v2 logs carry no IR digest, so they cannot be promoted:
    every line is quarantined and the log rewritten as an empty v3
    store (entries are re-measured on demand).

    A single-writer advisory lock ([cache.lock], holding the writer's
    pid) guards the directory: opening a cache locked by a live process
    raises {!Cache_error}; a lock left by a dead process is broken
    silently (and counted).

    A bounded LRU sits in front so an arbitrarily large log cannot
    exhaust memory; evicted entries are still on disk and reappear on
    reopen. *)

type entry =
  | Measured of {
      ir_digest : string;  (** hex digest of the compiled IR measured *)
      cycles : int;
      code_size : int;
      counters : int array;
    }
  | Failure of { ir_digest : string }
      (** trapped or diverged: cost is infinity, reproducibly *)

(** environmental failures of {!open_dir} — the directory cannot be
    created or read, the file is not a result cache, or another live
    process holds the lock.  (Content corruption is never an error: it
    is quarantined.) *)
exception Cache_error of string

type t

(** [open_dir dir] loads (or creates) the cache persisted under [dir],
    taking the single-writer lock.
    @raise Cache_error as documented above *)
val open_dir : ?mem_capacity:int -> string -> t

(** a purely in-memory cache (no directory, nothing persisted) *)
val in_memory : ?mem_capacity:int -> unit -> t

val find : t -> string -> entry option

(** Record (and persist) the entry for a key, replacing any older
    value.  A failed disk write (e.g. full disk) is counted in
    {!write_errors} and the entry kept in memory; it never raises. *)
val add : t -> string -> entry -> unit

(** Rewrite the log as one checksummed line per live key (last-wins
    collapsed, corruption scrubbed) — atomically: the new log is built
    as a temporary file in the same directory and [rename]d over the
    old, so a crash mid-compaction leaves the previous log intact. *)
val compact : t -> unit

(** what {!absorb} did: new keys imported, keys the recipient already
    held (left untouched), donor lines failing checksum or semantic
    validation *)
type absorb_stats = { absorbed : int; duplicates : int; rejected : int }

(** [absorb t donor_dir] imports the result log persisted under
    [donor_dir] into [t] — the merge primitive of distributed sweeps,
    where every worker evaluates into its own cache directory and the
    coordinator folds the per-worker logs into the primary store.

    Read-only on the donor (no donor lock is taken, nothing there is
    modified); every line is checksum- and semantically validated, the
    last donor line per key wins, and keys already present in [t]'s
    resident set are skipped (results are content-addressed and
    deterministic, so a collision carries the same measurement).  After
    importing anything, [t]'s log is rewritten through the existing
    atomic {!compact} (temp file + rename), so a crash mid-absorb
    leaves a valid log.  A missing donor directory or log absorbs
    nothing; a donor held by a {e live} process raises — a lock left
    by a dead worker does not block the merge.
    @raise Cache_error if the donor is locked by a running process,
    unreadable, or not a result cache *)
val absorb : t -> string -> absorb_stats

(** entries currently resident in memory *)
val resident : t -> int

(** total entries ever loaded/added this session (monotone) *)
val known : t -> int

(** corrupt log lines dropped at replay this session *)
val quarantined : t -> int

(** disk appends that failed and were absorbed *)
val write_errors : t -> int

(** stale (dead-owner) locks broken at open *)
val stale_locks_broken : t -> int

(** release the lock and close the log *)
val close : t -> unit

(** {2 Checksummed-line discipline}

    Exposed for {!Journal} (which journals sweep progress through the
    same crash-safe format) and for tests that build corrupt logs. *)

(** [seal_line payload] is [<sum>|<payload>] *)
val seal_line : string -> string

(** checksum validation: the payload, or [None] on any mismatch *)
val unseal_line : string -> string option

(** Parse (and semantically validate) a log-line payload.  Rejects, with
    a reason: unknown shapes (including digest-less v1/v2 lines), empty
    keys, malformed IR digests, non-decimal or negative cycles / code
    size / counter values, junk after the counter list. *)
val entry_of_line : string -> (string * entry, string) result

(** the inverse of {!entry_of_line} *)
val entry_to_line : string -> entry -> string
