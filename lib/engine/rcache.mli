(** Persistent, content-addressed store of sequence-evaluation results.

    Keys are hex digests computed by {!Engine} from (IR digest, pass
    sequence, machine configuration, pass-set version); values are the
    measured cycles, code size and full performance-counter vector — or
    the recorded fact that the evaluation failed (trapped / diverged),
    so known-broken sequences are never re-simulated either.

    Persistence is an append-only line-oriented log ([results.log] inside
    the cache directory), flushed on every write: concurrent readers see
    a prefix, a crash loses at most the unflushed tail, and re-recording
    a key simply appends a newer line (last line wins on load).  A
    bounded LRU sits in front so an arbitrarily large log cannot exhaust
    memory; evicted entries are still on disk and reappear on reopen. *)

type entry =
  | Measured of { cycles : int; code_size : int; counters : int array }
  | Failure  (** trapped or diverged: cost is infinity, reproducibly *)

type t

(** [open_dir dir] loads (or creates) the cache persisted under [dir].
    @raise Sys_error when [dir] cannot be created or the log not opened
    @raise Failure on a corrupt log file *)
val open_dir : ?mem_capacity:int -> string -> t

(** a purely in-memory cache (no directory, nothing persisted) *)
val in_memory : ?mem_capacity:int -> unit -> t

val find : t -> string -> entry option

(** record (and persist) the entry for a key, replacing any older value *)
val add : t -> string -> entry -> unit

(** entries currently resident in memory *)
val resident : t -> int

(** total entries ever loaded/added this session (monotone) *)
val known : t -> int

val close : t -> unit
