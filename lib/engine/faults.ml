(* Deterministic fault injection: a process-global plan of
   (point, occurrence, arg) directives consulted by name.  Decisions are
   a pure function of (point, occurrence number), so a fixed plan makes
   every failure mode reproducible.  See faults.mli for the spec
   grammar and the catalogue of points. *)

exception Injected of string

type occurrence = Nth of int | From of int | Every

type directive = { point : string; occ : occurrence; arg : int option }

type plan = directive list

type hit = { arg : int option }

let none : plan = []

(* the catalogue; parse rejects unknown names so a typo in a spec fails
   loudly instead of silently injecting nothing *)
let known_points =
  [
    "worker-crash"; "worker-hang"; "spawn-fail"; "torn-append";
    "flip-append"; "fail-append"; "stale-lock"; "compact-crash";
    "sweep-crash"; "sweep-torn"; "dist-worker-exit"; "tstore-write";
  ]

let parse_directive tok =
  let ( let* ) = Result.bind in
  let* point, rest =
    match String.index_opt tok '@' with
    | None -> Error (Printf.sprintf "directive %S: missing '@occurrence'" tok)
    | Some i ->
      Ok
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
  in
  let* () =
    if List.mem point known_points then Ok ()
    else
      Error
        (Printf.sprintf "unknown injection point %S (known: %s)" point
           (String.concat ", " known_points))
  in
  let* occ_s, arg =
    match String.index_opt rest '=' with
    | None -> Ok (rest, None)
    | Some i -> (
      let a = String.sub rest (i + 1) (String.length rest - i - 1) in
      match int_of_string_opt a with
      | Some v -> Ok (String.sub rest 0 i, Some v)
      | None -> Error (Printf.sprintf "directive %S: bad argument %S" tok a))
  in
  let* occ =
    match occ_s with
    | "*" -> Ok Every
    | s when String.length s > 1 && s.[String.length s - 1] = '+' -> (
      match int_of_string_opt (String.sub s 0 (String.length s - 1)) with
      | Some n when n >= 0 -> Ok (From n)
      | _ -> Error (Printf.sprintf "directive %S: bad occurrence %S" tok s))
    | s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> Ok (Nth n)
      | _ -> Error (Printf.sprintf "directive %S: bad occurrence %S" tok s))
  in
  Ok { point; occ; arg }

let parse spec =
  let toks =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if toks = [] then Error "empty fault spec"
  else
    List.fold_left
      (fun acc tok ->
        match (acc, parse_directive tok) with
        | Error _, _ -> acc
        | Ok ds, Ok d -> Ok (d :: ds)
        | Ok _, Error e -> Error e)
      (Ok []) toks
    |> Result.map List.rev

let parse_exn spec =
  match parse spec with
  | Ok p -> p
  | Error e -> invalid_arg ("Faults.parse: " ^ e)

let plan : plan ref = ref []
let counts : (string, int) Hashtbl.t = Hashtbl.create 8

let install p =
  plan := p;
  Hashtbl.reset counts

let clear () = install []
let active () = !plan <> []

let install_from_env () =
  match Sys.getenv_opt "MIRA_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> install (parse_exn spec)

let matches n = function
  | Every -> true
  | Nth k -> n = k
  | From k -> n >= k

let consult ?index point =
  match !plan with
  | [] -> None
  | directives ->
    let n =
      match index with
      | Some i -> i
      | None ->
        let c = Option.value (Hashtbl.find_opt counts point) ~default:0 in
        Hashtbl.replace counts point (c + 1);
        c
    in
    List.find_map
      (fun d ->
        if d.point = point && matches n d.occ then Some { arg = d.arg }
        else None)
      directives

let fires ?index point = consult ?index point <> None

let with_plan p f =
  let saved_plan = !plan in
  let saved_counts = Hashtbl.copy counts in
  install p;
  Fun.protect
    ~finally:(fun () ->
      plan := saved_plan;
      Hashtbl.reset counts;
      Hashtbl.iter (Hashtbl.replace counts) saved_counts)
    f
