(** Parallel architecture-grid replay: {!Mach.Sim.run_grid} lifted into
    the engine layer, with the configs priced by {!Pool} workers and the
    trace served through the {!Tcache} / {!Tstore} tiers.

    Bit-identical to the serial path by construction: the trace is
    fetched once in the parent, workers each fold one config's machine
    model over it (inherited by fork), and any worker failure falls
    back to an in-parent replay of that config. *)

(** Price [p] against [configs].  The trace comes from [tcache] when
    given (consulting its durable {!Tstore} tier and writing fresh
    generations through), else from a direct {!Mach.Mtrace.generate}.
    [jobs] > 1 forks that many {!Pool} workers over the configs
    (default 1 = in-process, serial).
    @raise Mira.Interp.Trap on runtime errors
    @raise Mira.Interp.Out_of_fuel when the step budget is exhausted *)
val run_grid :
  ?jobs:int ->
  ?fuel:int ->
  ?tcache:Tcache.t ->
  configs:Mach.Config.t array ->
  Mira.Ir.program ->
  Mach.Sim.result array

(** replay an already-generated trace over [configs], parallelizing as
    {!run_grid} does; re-raises a non-[Finished] trace's exception *)
val replay_grid :
  ?jobs:int ->
  configs:Mach.Config.t array ->
  Mach.Mtrace.t ->
  Mach.Sim.result array
