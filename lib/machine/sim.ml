module Ir = Mira.Ir
module Interp = Mira.Interp

(* Cycle-level machine simulator.

   Execution semantics come from the shared engine (Mira.Interp); this
   module attaches hooks that account time and hardware events:

   - simple integer ALU ops are bundled [issue_width] per cycle (a static
     in-order multiple-issue model, VLIW-flavoured for the c6713 preset);
   - multiplies, divides and FP ops cost their configured latencies;
   - loads/stores go through the L1D/L2 hierarchy (write-allocate,
     write-back; dirty evictions from L1 generate L2 write traffic);
   - conditional branches consult a bimodal predictor keyed by branch site;
     mispredictions pay the pipeline-flush penalty;
   - calls pay a fixed linkage overhead.

   The model is deterministic: same program + config => same cycle count,
   which the experiments rely on (DESIGN.md, decision 2). *)

type result = {
  cycles : int;
  counters : Counters.bank;
  ret : Interp.value;
  output : string;
  steps : int;
}

type state = {
  cfg : Config.t;
  bank : Counters.bank;
  l1 : Cache.t;
  l2 : Cache.t;
  bp : Predictor.t;
  mutable cycles : int;
  mutable bundle : int;      (* simple ops issued in the current cycle *)
  mutable bundle_id : int;   (* serial number of the current bundle *)
  mutable stamps : int array; (* register -> bundle id of its last write *)
}

let mk_state cfg =
  {
    cfg;
    bank = Counters.make ();
    l1 = Cache.make cfg.Config.l1;
    l2 = Cache.make cfg.Config.l2;
    bp = Predictor.make ~size:cfg.Config.predictor_size ();
    cycles = 0;
    bundle = 0;
    bundle_id = 1;
    stamps = Array.make 256 0;
  }

let ensure_stamp st r =
  if r >= Array.length st.stamps then begin
    let n = Array.make (max (r + 1) (2 * Array.length st.stamps)) 0 in
    Array.blit st.stamps 0 n 0 (Array.length st.stamps);
    st.stamps <- n
  end

let close_bundle st =
  if st.bundle > 0 then st.cycles <- st.cycles + 1;
  st.bundle <- 0;
  st.bundle_id <- st.bundle_id + 1

(* Issue a simple single-cycle op into the current bundle.  The issue model
   is dependence-limited static multiple-issue (VLIW-flavoured): an op that
   reads a register written earlier in the *same* bundle cannot pack with
   its producer and starts a new cycle.  This is what makes scalar cleanup
   (copy propagation, CSE, dead movs) worth real cycles: shorter dependence
   chains pack tighter. *)
let issue_simple st ~(uses : int list) ~(def : int option) =
  let dep =
    List.exists
      (fun r -> r < Array.length st.stamps && st.stamps.(r) = st.bundle_id)
      uses
  in
  if dep then close_bundle st;
  st.bundle <- st.bundle + 1;
  (match def with
   | Some d ->
     ensure_stamp st d;
     st.stamps.(d) <- st.bundle_id
   | None -> ());
  if st.bundle >= st.cfg.Config.issue_width then close_bundle st

(* a long-latency or serializing op closes the current bundle *)
let issue_long st lat =
  close_bundle st;
  st.cycles <- st.cycles + lat

let mem_access st ~write addr =
  let b = st.bank in
  Counters.incr b Counters.L1_TCA;
  let o1 = Cache.access st.l1 ~addr ~write in
  let lat = ref st.cfg.Config.l1_lat in
  (if not o1.Cache.hit then begin
     Counters.incr b Counters.L1_TCM;
     Counters.incr b (if write then Counters.L1_STM else Counters.L1_LDM);
     Counters.incr b Counters.L2_TCA;
     let o2 = Cache.access st.l2 ~addr ~write:false in
     lat := !lat + st.cfg.Config.l2_lat;
     if not o2.Cache.hit then begin
       Counters.incr b Counters.L2_TCM;
       Counters.incr b (if write then Counters.L2_STM else Counters.L2_LDM);
       lat := !lat + st.cfg.Config.mem_lat
     end;
     (* dirty line displaced from L1 is written into L2 *)
     match o1.Cache.writeback with
     | Some wb_addr ->
       Counters.incr b Counters.L2_TCA;
       let o2w = Cache.access st.l2 ~addr:wb_addr ~write:true in
       if not o2w.Cache.hit then begin
         Counters.incr b Counters.L2_TCM;
         Counters.incr b Counters.L2_STM
       end
     | None -> ()
   end);
  issue_long st !lat

let on_instr st (i : Ir.instr) =
  let b = st.bank in
  Counters.incr b Counters.TOT_INS;
  match i with
  | Ir.Bin (op, _, _, _) -> begin
    Counters.incr b Counters.INT_INS;
    match op with
    | Ir.Mul ->
      Counters.incr b Counters.MUL_INS;
      issue_long st st.cfg.Config.lat_mul
    | Ir.Div | Ir.Rem ->
      Counters.incr b Counters.DIV_INS;
      issue_long st st.cfg.Config.lat_div
    | _ -> issue_simple st ~uses:(Ir.uses_of i) ~def:(Ir.def_of i)
  end
  | Ir.Fbin (op, _, _, _) -> begin
    Counters.incr b Counters.FP_INS;
    match op with
    | Ir.FAdd | Ir.FSub -> issue_long st st.cfg.Config.lat_fadd
    | Ir.FMul -> issue_long st st.cfg.Config.lat_fmul
    | Ir.FDiv -> issue_long st st.cfg.Config.lat_fdiv
  end
  | Ir.Fcmp _ ->
    Counters.incr b Counters.FP_INS;
    issue_long st st.cfg.Config.lat_fadd
  | Ir.Icmp _ | Ir.Not _ | Ir.Mov _ | Ir.Alen _ ->
    Counters.incr b Counters.INT_INS;
    issue_simple st ~uses:(Ir.uses_of i) ~def:(Ir.def_of i)
  | Ir.I2f _ | Ir.F2i _ ->
    Counters.incr b Counters.FP_INS;
    issue_long st st.cfg.Config.lat_fadd
  | Ir.Load _ ->
    (* address arithmetic is folded into the access latency *)
    Counters.incr b Counters.LD_INS
  | Ir.Store _ -> Counters.incr b Counters.SR_INS
  | Ir.Call _ ->
    Counters.incr b Counters.CALL_INS;
    issue_long st st.cfg.Config.call_overhead
  | Ir.Print _ -> issue_long st st.cfg.Config.print_cost

let on_branch st site taken =
  let b = st.bank in
  Counters.incr b Counters.BR_INS;
  if taken then Counters.incr b Counters.BR_TKN;
  let mis = Predictor.update st.bp site ~taken in
  let cost =
    st.cfg.Config.branch_cost
    + if mis then st.cfg.Config.mispredict_penalty else 0
  in
  if mis then Counters.incr b Counters.BR_MSP;
  issue_long st cost

let hooks_of st : Interp.hooks =
  {
    Interp.on_instr = (fun i -> on_instr st i);
    on_load = (fun addr -> mem_access st ~write:false addr);
    on_store = (fun addr -> mem_access st ~write:true addr);
    on_branch = (fun site taken -> on_branch st site taken);
    on_jump = (fun () -> issue_long st st.cfg.Config.jump_cost);
  }

let default_fuel = 200_000_000

(* Observability: every simulated execution is a span — "flatsim.run" or
   "refsim.run" — whose end event carries cycles, steps and the full
   counter-bank snapshot; wall time lands in sim.execute_ms (the
   histogram `run --profile` reads) and cycle counts in sim.cycles. *)
let execute_ms = Obs.Metrics.histogram "sim.execute_ms"
let cycles_hist = Obs.Metrics.histogram ~unit_:"cycles" "sim.cycles"
let ref_runs = Obs.Metrics.counter "sim.runs.ref"
let flat_runs = Obs.Metrics.counter "sim.runs.flat"
let trace_runs = Obs.Metrics.counter "sim.runs.trace"

let result_args (r : result) =
  ("cycles", Obs.Trace.Int r.cycles)
  :: ("steps", Obs.Trace.Int r.steps)
  :: List.map
       (fun (n, v) -> (n, Obs.Trace.Int v))
       (Counters.to_assoc r.counters)

type engine = Ref | Flat | Trace

(* The flat engine is bit-identical to the hooked reference interpreter
   (the differential tests enforce it), so it is the default everywhere;
   [Ref] remains forcible for oracle runs and A/B debugging, and [Trace]
   splits the run into Mtrace generation + Replay (same results again,
   three-way-enforced) so repeated runs of one program across configs
   amortize the semantics. *)
let default_engine = ref Flat

let engine_of_string = function
  | "ref" -> Some Ref
  | "flat" -> Some Flat
  | "trace" -> Some Trace
  | _ -> None

let engine_name = function Ref -> "ref" | Flat -> "flat" | Trace -> "trace"

(* Reference path: the hooked interpreter over the program AST. *)
let run_ref ~config ~fuel (p : Ir.program) : result =
  Obs.Metrics.incr ref_runs;
  let go () =
    let st = mk_state config in
    let r = Interp.run ~fuel ~hooks:(hooks_of st) p in
    (* drain the trailing partially-filled bundle *)
    if st.bundle > 0 then st.cycles <- st.cycles + 1;
    Counters.set st.bank Counters.TOT_CYC st.cycles;
    {
      cycles = st.cycles;
      counters = st.bank;
      ret = r.Interp.ret;
      output = r.Interp.output;
      steps = r.Interp.steps;
    }
  in
  let r =
    Obs.span_with ~cat:"sim" ~hist:execute_ms "refsim.run"
      ~end_args:result_args go
  in
  Obs.Metrics.observe cycles_hist (float_of_int r.cycles);
  r

let run_flatsim ~config ~fuel dp : result =
  let go () =
    let r = Flatsim.run ~config ~fuel dp in
    {
      cycles = r.Flatsim.cycles;
      counters = r.Flatsim.counters;
      ret = r.Flatsim.ret;
      output = r.Flatsim.output;
      steps = r.Flatsim.steps;
    }
  in
  Obs.Metrics.incr flat_runs;
  let r =
    Obs.span_with ~cat:"flatsim" ~hist:execute_ms "flatsim.run"
      ~end_args:result_args go
  in
  Obs.Metrics.observe cycles_hist (float_of_int r.cycles);
  r

(* Flat path: decode once (a "decode" span of its own), run the fused
   loop under a "flatsim" span. *)
let run_flat ~config ~fuel (p : Ir.program) : result =
  run_flatsim ~config ~fuel (Mira.Decode.decode p)

let of_flatsim (r : Flatsim.result) : result =
  {
    cycles = r.Flatsim.cycles;
    counters = r.Flatsim.counters;
    ret = r.Flatsim.ret;
    output = r.Flatsim.output;
    steps = r.Flatsim.steps;
  }

(* Trace path: generate the config-independent event trace, then replay
   the machine model over it.  Mtrace/Replay carry their own spans and
   histograms; this wrapper keeps sim.execute_ms / sim.cycles comparable
   across engines. *)
let run_trace ~config ~fuel (p : Ir.program) : result =
  Obs.Metrics.incr trace_runs;
  let go () =
    let tr = Mtrace.generate ~fuel (Mira.Decode.decode p) in
    of_flatsim (Replay.run ~config tr)
  in
  let r =
    Obs.span_with ~cat:"sim" ~hist:execute_ms "tracesim.run"
      ~end_args:result_args go
  in
  Obs.Metrics.observe cycles_hist (float_of_int r.cycles);
  r

(* Run [p] on the simulated machine.  Raises the engine's exceptions
   (Trap, Out_of_fuel) like the plain interpreter. *)
let run ?engine ?(config = Config.default) ?(fuel = default_fuel)
    (p : Ir.program) : result =
  match
    match engine with Some e -> e | None -> !default_engine
  with
  | Ref -> run_ref ~config ~fuel p
  | Flat -> run_flat ~config ~fuel p
  | Trace -> run_trace ~config ~fuel p

(* Price one program against a whole architecture grid: one semantic
   execution (trace generation), one model replay per config, all model
   states advancing side by side in a single pass over the trace. *)
let run_grid ?(fuel = default_fuel) ~(configs : Config.t array)
    (p : Ir.program) : result array =
  let tr = Mtrace.generate ~fuel (Mira.Decode.decode p) in
  Array.map of_flatsim (Replay.run_grid ~configs tr)

(* run a pre-decoded program (callers that execute the same program many
   times, e.g. the benchmarks, pay the decode cost once) *)
let run_decoded ?(config = Config.default) ?(fuel = default_fuel) dp : result =
  run_flatsim ~config ~fuel dp

(* Outcome of a run for callers that must react to the failure mode:
   a fuel-exhausted sequence will exhaust fuel again on retry, while a
   trap may be specific to the optimization under test. *)
type outcome = Cycles of int | Trapped of string | Exhausted

let cycles_of ?engine ?config ?fuel p : outcome =
  match run ?engine ?config ?fuel p with
  | r -> Cycles r.cycles
  | exception Interp.Trap m -> Trapped m
  | exception Interp.Out_of_fuel -> Exhausted

let speedup ~(base : result) ~(opt : result) : float =
  float_of_int base.cycles /. float_of_int (max 1 opt.cycles)
