(** Bimodal branch predictor: a table of 2-bit saturating counters indexed
    by branch-site id, initialized weakly-taken. *)

type t = {
  table : int array;
  mask : int;  (** [size - 1] when [size] is a power of two, else -1 *)
  mutable lookups : int;
  mutable mispredicts : int;
}

(** [make ~size ()] creates a predictor with [size] counters (default
    1024).  Raises [Invalid_argument] if [size <= 0]. *)
val make : ?size:int -> unit -> t

val reset : t -> unit

(** current prediction for a branch site (no state change) *)
val predict : t -> int -> bool

(** record the outcome of a branch at [site]; returns [true] when the
    prediction was wrong.  Updates the statistics and the counter. *)
val update : t -> int -> taken:bool -> bool
