module Interp = Mira.Interp
module D = Mira.Decode

(* Trace-once half of the trace-once/model-many split (see DESIGN.md
   "Trace-once, model-many").  This is Flatsim's dispatch loop with the
   config-dependent accounting calls replaced by event emission: one run
   of a decoded program records everything the machine model consumes —
   instruction-class retirements with their use-arrays, load/store byte
   addresses, branch sites with taken bits, call/print/jump serializers
   — as one packed int per event, in the exact order Flatsim's fused
   loop would have fed its model.  Replay folds that stream through the
   same model code (Flatsim's exported internals) once per config.

   Nothing here reads Config.t: the dynamic instruction and memory
   reference stream of a program is a property of the program alone, so
   one trace prices any architecture grid.  The config-independent
   counters (TOT_INS, LD_INS, ..., BR_TKN) are accumulated into [base]
   at generation time and copied into every replay's bank, leaving only
   the config-dependent ones (TOT_CYC, BR_MSP, cache counters) to the
   replay pass.

   The execution arms mirror Flatsim.exec line for line; in particular
   every event is emitted at the point Flatsim would have charged it, so
   a trapping run leaves exactly the prefix of events the fused loop
   would have accounted before the trap. *)

(* ------------------------------------------------------------------ *)
(* Event encoding: one int per word, tag in the low 2 bits.

     tag 0 (simple)  payload = (issue-signature id << 8) | (run - 1):
                     a run of [run] consecutive simple-issue events whose
                     signature ids are id, id+1, ...  Signature ids are
                     assigned in static code order, so straight-line
                     stretches of simple ops — the common case — coalesce
                     into one word.  A run never spans another event.
     tag 1 (long)    payload = ((run - 1) << 3) | latency class (cls_*
                     below): a run of [run] consecutive long-latency
                     events of one class — FP-heavy straight-line code
                     produces them — which the replay folds in O(1)
                     (one bundle drain, then pure cycle arithmetic).
                     A run never spans another event.
     tag 2 (mem)     payload = (byte address << 1) | write
     tag 3 (branch)  payload = (site id << 1) | taken                  *)

let tag_simple = 0
let tag_long = 1
let tag_mem = 2
let tag_branch = 3

(* run length per simple word: 8 bits (runs longer than this split) *)
let run_bits = 8
let run_max = 1 lsl run_bits

(* class field width of a long word; run length lives above it *)
let cls_bits = 3
let lrun_max = 1 lsl 20

(* latency classes for tag_long events, in Config.t terms *)
let cls_mul = 0 (* lat_mul *)
let cls_div = 1 (* lat_div *)
let cls_fadd = 2 (* lat_fadd: FP add/sub/cmp, conversions *)
let cls_fmul = 3 (* lat_fmul *)
let cls_fdiv = 4 (* lat_fdiv *)
let cls_call = 5 (* call_overhead *)
let cls_print = 6 (* print_cost *)
let cls_jump = 7 (* jump_cost: Jmp / Ret *)
let cls_count = 8

type outcome = Finished | Trapped of string | Exhausted

type t = {
  events : int array; (* packed words; only [0, n) is meaningful *)
  n : int;
  sig_uses : int array array; (* issue signature id -> registers read *)
  sig_dst : int array; (* issue signature id -> defined register *)
  (* sig_uses flattened into two scalar columns for the replay's
     dependence check (simple-issue ops read at most two registers).
     Missing uses point at the sentinel stamp slot [max_reg + 1], which
     is never written and so never matches a live bundle id. *)
  sig_u0 : int array;
  sig_u1 : int array;
  max_reg : int; (* largest register id in the sig tables *)
  base : Counters.bank; (* config-independent counters *)
  outcome : outcome;
  ret : Interp.value; (* VUndef unless Finished *)
  output : string; (* printed output up to the end / trap *)
  steps : int;
}

let words tr = Array.sub tr.events 0 tr.n
let bytes tr = tr.n * 8

let outcome_repr = function
  | Finished -> "finished"
  | Trapped m -> Printf.sprintf "trap %S" m
  | Exhausted -> "out of fuel"

(* ------------------------------------------------------------------ *)
(* Generation state *)

type gt = {
  mutable ev : int array;
  mutable n : int;
  (* pending run of consecutive simple events, not yet written out:
     start signature id (-1 = none) and length so far *)
  mutable run_sid : int;
  mutable run_len : int;
  (* pending run of consecutive same-class long events (-1 = none).
     At most one of the two run kinds is pending at any moment: each
     emitter flushes the other kind before extending its own. *)
  mutable lrun_cls : int;
  mutable lrun_len : int;
  base : Counters.bank;
  (* per function, per pc: issue-signature id of a simple-issue op, -1
     otherwise.  Built once per generation from the static code; gives
     the hot loop an O(1) signature lookup and the trace a side table
     replays index into. *)
  sigmap : int array array;
  sig_uses : int array array;
  sig_dst : int array;
  max_reg : int;
}

let[@inline] emit (g : gt) w =
  let n = g.n in
  if n = Array.length g.ev then begin
    let bigger = Array.make (2 * n) 0 in
    Array.blit g.ev 0 bigger 0 n;
    g.ev <- bigger
  end;
  Array.unsafe_set g.ev n w;
  g.n <- n + 1

let[@inline] flush_run (g : gt) =
  if g.run_sid >= 0 then begin
    emit g
      ((((g.run_sid lsl run_bits) lor (g.run_len - 1)) lsl 2) lor tag_simple);
    g.run_sid <- -1;
    g.run_len <- 0
  end

let[@inline] flush_lrun (g : gt) =
  if g.lrun_cls >= 0 then begin
    emit g
      (((((g.lrun_len - 1) lsl cls_bits) lor g.lrun_cls) lsl 2) lor tag_long);
    g.lrun_cls <- -1;
    g.lrun_len <- 0
  end

(* signature ids follow static code order, so a straight-line stretch of
   simple ops presents consecutive ids — extend the pending run; any
   other event (or a control transfer landing elsewhere) breaks it *)
let[@inline] emit_simple g sid =
  flush_lrun g;
  if g.run_sid >= 0 && sid = g.run_sid + g.run_len && g.run_len < run_max
  then g.run_len <- g.run_len + 1
  else begin
    flush_run g;
    g.run_sid <- sid;
    g.run_len <- 1
  end

let[@inline] emit_long g cls =
  if g.lrun_cls = cls && g.lrun_len < lrun_max then
    g.lrun_len <- g.lrun_len + 1
  else begin
    flush_run g;
    flush_lrun g;
    g.lrun_cls <- cls;
    g.lrun_len <- 1
  end

let[@inline] emit_mem g ~write addr =
  flush_run g;
  flush_lrun g;
  emit g ((((addr lsl 1) lor if write then 1 else 0) lsl 2) lor tag_mem)

let[@inline] emit_branch g site taken =
  flush_run g;
  flush_lrun g;
  emit g ((((site lsl 1) lor if taken then 1 else 0) lsl 2) lor tag_branch)

let is_simple (op : D.op) =
  match op with
  | D.OAdd | D.OSub | D.OAnd | D.OOr | D.OXor | D.OShl | D.OShr | D.OIeq
  | D.OIne | D.OIlt | D.OIle | D.OIgt | D.OIge | D.ONot | D.OMov | D.OAlen ->
    true
  | _ -> false

let mk_gt (dp : D.t) : gt =
  let nsig = ref 0 in
  Array.iter
    (fun (df : D.dfunc) ->
      Array.iter (fun di -> if is_simple di.D.op then incr nsig) df.D.code)
    dp.D.funcs;
  let sig_uses = Array.make (max 1 !nsig) [||] in
  let sig_dst = Array.make (max 1 !nsig) (-1) in
  let next = ref 0 in
  (* the largest register id any recorded signature can present; lets
     the replay pre-size its stamp tables and skip per-event checks *)
  let max_reg = ref 0 in
  let sigmap =
    Array.map
      (fun (df : D.dfunc) ->
        Array.map
          (fun di ->
            if is_simple di.D.op then begin
              let id = !next in
              incr next;
              sig_uses.(id) <- di.D.uses;
              sig_dst.(id) <- di.D.dst;
              if di.D.dst > !max_reg then max_reg := di.D.dst;
              Array.iter
                (fun r -> if r > !max_reg then max_reg := r)
                di.D.uses;
              id
            end
            else -1)
          df.D.code)
      dp.D.funcs
  in
  {
    ev = Array.make 4096 0;
    n = 0;
    run_sid = -1;
    run_len = 0;
    lrun_cls = -1;
    lrun_len = 0;
    base = Counters.make ();
    sigmap;
    sig_uses;
    sig_dst;
    max_reg = !max_reg;
  }

(* raw counter slots, as in Flatsim (only the config-independent ones) *)
let c_tot_ins = Counters.to_index Counters.TOT_INS
let c_ld_ins = Counters.to_index Counters.LD_INS
let c_sr_ins = Counters.to_index Counters.SR_INS
let c_br_ins = Counters.to_index Counters.BR_INS
let c_br_tkn = Counters.to_index Counters.BR_TKN
let c_fp_ins = Counters.to_index Counters.FP_INS
let c_int_ins = Counters.to_index Counters.INT_INS
let c_mul_ins = Counters.to_index Counters.MUL_INS
let c_div_ins = Counters.to_index Counters.DIV_INS
let c_call_ins = Counters.to_index Counters.CALL_INS

let[@inline] bump (b : Counters.bank) i =
  Array.unsafe_set b i (Array.unsafe_get b i + 1)

(* ------------------------------------------------------------------ *)
(* The dispatch loop: Flatsim.exec with accounting replaced by events.
   A semantics change in Decode.exec / Flatsim.exec needs a mirror
   change here (the differential tests catch divergence). *)

let rec exec (rt : D.rt) (g : gt) (fr : D.frame) (sigrow : int array) : unit =
  let code = fr.D.df.D.code in
  let bank = g.base in
  let pc = ref fr.D.df.D.entry_pc in
  let running = ref true in
  while !running do
    let at = !pc in
    let di = Array.unsafe_get code at in
    rt.D.fuel <- rt.D.fuel - 1;
    rt.D.steps <- rt.D.steps + 1;
    if rt.D.fuel <= 0 then raise Interp.Out_of_fuel;
    incr pc;
    match di.D.op with
    | D.OAdd ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      D.set_int fr di.D.dst (a + b)
    | D.OSub ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      D.set_int fr di.D.dst (a - b)
    | D.OMul ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      bump bank c_mul_ins;
      emit_long g cls_mul;
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      D.set_int fr di.D.dst (a * b)
    | D.ODiv ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      bump bank c_div_ins;
      emit_long g cls_div;
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      if b = 0 then D.trap "division by zero" else D.set_int fr di.D.dst (a / b)
    | D.ORem ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      bump bank c_div_ins;
      emit_long g cls_div;
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      if b = 0 then D.trap "remainder by zero"
      else D.set_int fr di.D.dst (a mod b)
    | D.OAnd ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      D.set_int fr di.D.dst (a land b)
    | D.OOr ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      D.set_int fr di.D.dst (a lor b)
    | D.OXor ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      D.set_int fr di.D.dst (a lxor b)
    | D.OShl ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      if D.shift_ok b then D.set_int fr di.D.dst (a lsl b)
      else D.trap "shift count %d" b
    | D.OShr ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      let b = D.geti rt fr di.D.bk di.D.b in
      let a = D.geti rt fr di.D.ak di.D.a in
      if D.shift_ok b then D.set_int fr di.D.dst (a asr b)
      else D.trap "shift count %d" b
    | D.OFAdd ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      emit_long g cls_fadd;
      let b = D.getf rt fr di.D.bk di.D.b in
      let a = D.getf rt fr di.D.ak di.D.a in
      D.set_flt fr di.D.dst (a +. b)
    | D.OFSub ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      emit_long g cls_fadd;
      let b = D.getf rt fr di.D.bk di.D.b in
      let a = D.getf rt fr di.D.ak di.D.a in
      D.set_flt fr di.D.dst (a -. b)
    | D.OFMul ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      emit_long g cls_fmul;
      let b = D.getf rt fr di.D.bk di.D.b in
      let a = D.getf rt fr di.D.ak di.D.a in
      D.set_flt fr di.D.dst (a *. b)
    | D.OFDiv ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      emit_long g cls_fdiv;
      let b = D.getf rt fr di.D.bk di.D.b in
      let a = D.getf rt fr di.D.ak di.D.a in
      D.set_flt fr di.D.dst (a /. b)
    | D.OIeq ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      D.do_icmp rt fr di 0
    | D.OIne ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      D.do_icmp rt fr di 1
    | D.OIlt ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      D.do_icmp rt fr di 2
    | D.OIle ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      D.do_icmp rt fr di 3
    | D.OIgt ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      D.do_icmp rt fr di 4
    | D.OIge ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      D.do_icmp rt fr di 5
    | D.OFeq ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      emit_long g cls_fadd;
      D.do_fcmp rt fr di 0
    | D.OFne ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      emit_long g cls_fadd;
      D.do_fcmp rt fr di 1
    | D.OFlt ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      emit_long g cls_fadd;
      D.do_fcmp rt fr di 2
    | D.OFle ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      emit_long g cls_fadd;
      D.do_fcmp rt fr di 3
    | D.OFgt ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      emit_long g cls_fadd;
      D.do_fcmp rt fr di 4
    | D.OFge ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      emit_long g cls_fadd;
      D.do_fcmp rt fr di 5
    | D.ONot ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      let x = D.getb rt fr di.D.ak di.D.a in
      D.set_bool fr di.D.dst (not x)
    | D.OMov ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      D.eval_any rt fr di.D.ak di.D.a;
      D.set_scratch rt fr di.D.dst
    | D.OI2f ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      emit_long g cls_fadd;
      let a = D.geti rt fr di.D.ak di.D.a in
      D.set_flt fr di.D.dst (float_of_int a)
    | D.OF2i ->
      bump bank c_tot_ins;
      bump bank c_fp_ins;
      emit_long g cls_fadd;
      let f = D.getf rt fr di.D.ak di.D.a in
      if Float.is_nan f || Float.abs f > 4.6e18 then
        D.trap "float-to-int overflow on %g" f
      else D.set_int fr di.D.dst (int_of_float f)
    | D.OLoad ->
      bump bank c_tot_ins;
      bump bank c_ld_ins;
      let ix = D.geti rt fr di.D.bk di.D.b in
      let a = D.geta rt fr di.D.ak di.D.a in
      let len = D.arr_len a in
      if ix < 0 || ix >= len then
        D.trap "load out of bounds: index %d, length %d" ix len;
      emit_mem g ~write:false (a.Interp.base + (ix * a.Interp.esize));
      (match a.Interp.payload with
      | Interp.IA x -> D.set_int fr di.D.dst (Array.unsafe_get x ix)
      | Interp.FA x -> D.set_flt fr di.D.dst (Array.unsafe_get x ix))
    | D.OStore ->
      bump bank c_tot_ins;
      bump bank c_sr_ins;
      D.eval_any rt fr di.D.ck di.D.c;
      let vtag = rt.D.s_tag in
      let vi = rt.D.s_int and vf = rt.D.s_flt in
      let ix = D.geti rt fr di.D.bk di.D.b in
      let a = D.geta rt fr di.D.ak di.D.a in
      let len = D.arr_len a in
      if ix < 0 || ix >= len then
        D.trap "store out of bounds: index %d, length %d" ix len;
      (* the cache sees the store before the element-type check, exactly
         like the reference's on_store hook *)
      emit_mem g ~write:true (a.Interp.base + (ix * a.Interp.esize));
      (match a.Interp.payload with
      | Interp.IA x ->
        if vtag = 1 then
          Array.unsafe_set x ix
            (if a.Interp.mask32 then vi land 0xFFFFFFFF else vi)
        else D.trap "storing non-int into int array"
      | Interp.FA x ->
        if vtag = 2 then Array.unsafe_set x ix vf
        else D.trap "storing non-float into float array")
    | D.OAlen ->
      bump bank c_tot_ins;
      bump bank c_int_ins;
      emit_simple g (Array.unsafe_get sigrow at);
      let a = D.geta rt fr di.D.ak di.D.a in
      D.set_int fr di.D.dst (D.arr_len a)
    | D.OCall ->
      bump bank c_tot_ins;
      bump bank c_call_ins;
      emit_long g cls_call;
      let args = di.D.args in
      let nargs = Array.length args / 2 in
      for j = 0 to nargs - 1 do
        D.eval_any rt fr
          (Array.unsafe_get args (2 * j))
          (Array.unsafe_get args ((2 * j) + 1));
        D.save_arg rt j
      done;
      if di.D.callee < 0 then D.trap "call to unknown function %s" di.D.sname;
      do_call rt g di.D.callee nargs;
      if di.D.dst >= 0 then D.set_scratch rt fr di.D.dst
    | D.OPrint ->
      bump bank c_tot_ins;
      emit_long g cls_print;
      D.eval_any rt fr di.D.ak di.D.a;
      Buffer.add_string rt.D.buf
        (match rt.D.s_tag with
        | 1 -> string_of_int rt.D.s_int
        | 2 -> Printf.sprintf "%.6g" rt.D.s_flt
        | 3 -> if rt.D.s_int <> 0 then "true" else "false"
        | _ -> "<array>");
      Buffer.add_char rt.D.buf '\n'
    | D.OJmp ->
      emit_long g cls_jump;
      pc := di.D.dst
    | D.OBr ->
      (* condition evaluates (and may trap) before any branch
         accounting, like the reference's [as_bool] before on_branch *)
      let taken = D.getb rt fr di.D.ak di.D.a in
      bump bank c_br_ins;
      if taken then bump bank c_br_tkn;
      emit_branch g di.D.c taken;
      pc := if taken then di.D.dst else di.D.b
    | D.ORetN ->
      emit_long g cls_jump;
      rt.D.s_tag <- 0;
      running := false
    | D.ORetV ->
      (* on_jump fires before the return operand is evaluated *)
      emit_long g cls_jump;
      D.eval_any rt fr di.D.ak di.D.a;
      running := false
    | D.OBadLabel ->
      raise
        (Invalid_argument
           (Printf.sprintf "Ir.find_block: no block %d in %s" di.D.a
              fr.D.df.D.fname))
  done

and do_call (rt : D.rt) (g : gt) fidx nargs : unit =
  let df = rt.D.dp.D.funcs.(fidx) in
  if nargs <> Array.length df.D.params then
    D.trap "arity mismatch calling %s" df.D.fname;
  let fr = D.new_frame rt.D.dp fidx in
  D.bind_params rt fr nargs;
  let saved_sp = rt.D.sp in
  fr.D.locals <- D.alloc_locals rt df;
  exec rt g fr g.sigmap.(fidx);
  rt.D.sp <- saved_sp

(* ------------------------------------------------------------------ *)

let generate_ms = Obs.Metrics.histogram "trace.generate_ms"
let generates = Obs.Metrics.counter "trace.generates"

let bytes_per_instr =
  Obs.Metrics.histogram ~unit_:"B/instr" "trace.bytes_per_instr"

let generate ?(fuel = 200_000_000) (dp : D.t) : t =
  Obs.Metrics.incr generates;
  let go () =
    let rt = D.make_rt ~fuel dp in
    let g = mk_gt dp in
    if dp.D.main_idx < 0 then
      D.trap "call to unknown function %s" dp.D.main_name;
    let outcome, ret =
      match do_call rt g dp.D.main_idx 0 with
      | () -> (Finished, (D.result_of rt).Interp.ret)
      | exception Interp.Trap m -> (Trapped m, Interp.VUndef)
      | exception Interp.Out_of_fuel -> (Exhausted, Interp.VUndef)
    in
    (* a pending run (simple or long — never both) was accounted before
       the stop — write it *)
    flush_run g;
    flush_lrun g;
    let sentinel = g.max_reg + 1 in
    let nsig = Array.length g.sig_uses in
    let sig_u0 = Array.make nsig sentinel in
    let sig_u1 = Array.make nsig sentinel in
    Array.iteri
      (fun i u ->
        assert (Array.length u <= 2);
        if Array.length u >= 1 then sig_u0.(i) <- u.(0);
        if Array.length u >= 2 then sig_u1.(i) <- u.(1))
      g.sig_uses;
    {
      events = g.ev;
      n = g.n;
      sig_uses = g.sig_uses;
      sig_dst = g.sig_dst;
      sig_u0;
      sig_u1;
      max_reg = g.max_reg;
      base = g.base;
      outcome;
      ret;
      output = Buffer.contents rt.D.buf;
      steps = rt.D.steps;
    }
  in
  let tr =
    Obs.span_with ~cat:"trace" ~hist:generate_ms "mtrace.generate"
      ~end_args:(fun (tr : t) ->
        [
          ("events", Obs.Trace.Int tr.n);
          ("bytes", Obs.Trace.Int (bytes tr));
          ("steps", Obs.Trace.Int tr.steps);
          ("outcome", Obs.Trace.Str (outcome_repr tr.outcome));
        ])
      go
  in
  Obs.Metrics.observe bytes_per_instr
    (float_of_int (bytes tr) /. float_of_int (max 1 tr.steps));
  tr

let generate_program ?fuel (p : Mira.Ir.program) : t =
  generate ?fuel (D.decode p)

(* ------------------------------------------------------------------ *)
(* Serialization: the compact on-disk form Engine.Tstore persists.

   Event words are delta-coded per tag — the stream interleaves tags,
   but values within one tag are strongly autocorrelated (a striding
   load's addresses, a loop's branch site, a repeated simple run word),
   so each word stores the zigzagged difference from the previous value
   of the *same* tag.  The first byte of a word packs the tag into its
   low 2 bits next to 5 payload bits and a continuation bit; subsequent
   bytes are plain 7-bit LEB128.  Loop-dominated traces therefore
   encode almost every word in one byte, far under the 8 bytes/word of
   the in-memory array.  The remaining record fields (sig tables, base
   counters, outcome, ret, output, steps) are varint/zigzag-coded after
   the event section; [sig_uses] is not stored — it is reconstructed
   exactly from the flattened columns and the sentinel [max_reg + 1].

   The payload carries no checksum: framing, integrity and versioning
   belong to the store (Tstore seals each entry with an MD5 prefix).
   [decode] still validates structurally — version byte, tags, bounds,
   exact consumption — so a logically corrupt but checksum-valid entry
   is reported as an error, never a crash. *)

let codec_version = 1

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let put_varint b v =
  let rec go v =
    if v land lnot 0x7f = 0 then Buffer.add_char b (Char.chr v)
    else (
      Buffer.add_char b (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7))
  in
  if v < 0 then invalid_arg "Mtrace.put_varint: negative";
  go v

let zigzag i = (i lsl 1) lxor (i asr 62)
let unzigzag v = (v lsr 1) lxor (-(v land 1))
let put_zigzag b i = put_varint b (zigzag i)

(* one event word: [cont:1][payload:5][tag:2], then LEB128 chunks *)
let put_event b tag zz =
  let lo = zz land 0x1f and rest = zz lsr 5 in
  if rest = 0 then Buffer.add_char b (Char.chr ((lo lsl 2) lor tag))
  else (
    Buffer.add_char b (Char.chr (0x80 lor (lo lsl 2) lor tag));
    put_varint b rest)

let put_string b s =
  put_varint b (String.length s);
  Buffer.add_string b s

let put_float b f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff))
  done

let put_value b (v : Interp.value) =
  match v with
  | Interp.VUndef -> Buffer.add_char b '\000'
  | Interp.VInt i ->
    Buffer.add_char b '\001';
    put_zigzag b i
  | Interp.VFloat f ->
    Buffer.add_char b '\002';
    put_float b f
  | Interp.VBool x ->
    Buffer.add_char b '\003';
    Buffer.add_char b (if x then '\001' else '\000')
  | Interp.VArr a ->
    Buffer.add_char b '\004';
    (match a.Interp.payload with
    | Interp.IA ia ->
      Buffer.add_char b '\000';
      put_varint b (Array.length ia);
      Array.iter (put_zigzag b) ia
    | Interp.FA fa ->
      Buffer.add_char b '\001';
      put_varint b (Array.length fa);
      Array.iter (put_float b) fa);
    put_varint b a.Interp.base;
    put_varint b a.Interp.esize;
    Buffer.add_char b (if a.Interp.mask32 then '\001' else '\000')

let encode (tr : t) : string =
  let b = Buffer.create (tr.n + 256) in
  Buffer.add_char b (Char.chr codec_version);
  put_varint b tr.n;
  let last = Array.make 4 0 in
  for i = 0 to tr.n - 1 do
    let w = tr.events.(i) in
    let tag = w land 3 and v = w lsr 2 in
    put_event b tag (zigzag (v - last.(tag)));
    last.(tag) <- v
  done;
  let nsig = Array.length tr.sig_dst in
  put_varint b nsig;
  for i = 0 to nsig - 1 do
    put_zigzag b tr.sig_dst.(i);
    put_varint b tr.sig_u0.(i);
    put_varint b tr.sig_u1.(i)
  done;
  put_varint b tr.max_reg;
  put_varint b (Array.length tr.base);
  Array.iter (put_varint b) tr.base;
  (match tr.outcome with
  | Finished -> Buffer.add_char b '\000'
  | Trapped m ->
    Buffer.add_char b '\001';
    put_string b m
  | Exhausted -> Buffer.add_char b '\002');
  put_value b tr.ret;
  put_string b tr.output;
  put_varint b tr.steps;
  Buffer.contents b

(* decoding reads from (s, pos); every primitive bounds-checks *)

type rd = { s : string; mutable pos : int }

let rd_byte r =
  if r.pos >= String.length r.s then corrupt "truncated at %d" r.pos;
  let c = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  c

let rd_varint r =
  let rec go shift acc =
    if shift > 62 then corrupt "varint overflow at %d" r.pos;
    let c = rd_byte r in
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let rd_zigzag r = unzigzag (rd_varint r)

let rd_event r =
  let c = rd_byte r in
  let tag = c land 3 and lo = (c lsr 2) land 0x1f in
  let zz = if c land 0x80 = 0 then lo else lo lor (rd_varint r lsl 5) in
  (tag, unzigzag zz)

let rd_string r =
  let len = rd_varint r in
  if r.pos + len > String.length r.s then corrupt "string overruns at %d" r.pos;
  let s = String.sub r.s r.pos len in
  r.pos <- r.pos + len;
  s

let rd_float r =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor !bits (Int64.shift_left (Int64.of_int (rd_byte r)) (8 * i))
  done;
  Int64.float_of_bits !bits

let rd_value r : Interp.value =
  match rd_byte r with
  | 0 -> Interp.VUndef
  | 1 -> Interp.VInt (rd_zigzag r)
  | 2 -> Interp.VFloat (rd_float r)
  | 3 -> Interp.VBool (rd_byte r <> 0)
  | 4 ->
    let payload =
      match rd_byte r with
      | 0 -> Interp.IA (Array.init (rd_varint r) (fun _ -> rd_zigzag r))
      | 1 -> Interp.FA (Array.init (rd_varint r) (fun _ -> rd_float r))
      | k -> corrupt "bad array payload kind %d" k
    in
    let base = rd_varint r in
    let esize = rd_varint r in
    let mask32 = rd_byte r <> 0 in
    Interp.VArr { Interp.payload; base; esize; mask32 }
  | k -> corrupt "bad value tag %d" k

let decode (s : string) : (t, string) result =
  try
    let r = { s; pos = 0 } in
    (match rd_byte r with
    | v when v = codec_version -> ()
    | v -> corrupt "codec version %d (want %d)" v codec_version);
    let n = rd_varint r in
    let events = Array.make n 0 in
    let last = Array.make 4 0 in
    for i = 0 to n - 1 do
      let tag, d = rd_event r in
      let v = last.(tag) + d in
      if v < 0 then corrupt "negative payload at event %d" i;
      last.(tag) <- v;
      events.(i) <- (v lsl 2) lor tag
    done;
    let nsig = rd_varint r in
    let sig_dst = Array.make nsig 0 in
    let sig_u0 = Array.make nsig 0 in
    let sig_u1 = Array.make nsig 0 in
    for i = 0 to nsig - 1 do
      sig_dst.(i) <- rd_zigzag r;
      sig_u0.(i) <- rd_varint r;
      sig_u1.(i) <- rd_varint r
    done;
    let max_reg = rd_varint r in
    let sentinel = max_reg + 1 in
    let sig_uses =
      Array.init nsig (fun i ->
          if sig_u0.(i) = sentinel then [||]
          else if sig_u1.(i) = sentinel then [| sig_u0.(i) |]
          else [| sig_u0.(i); sig_u1.(i) |])
    in
    let nbank = rd_varint r in
    let base = Array.init nbank (fun _ -> rd_varint r) in
    let outcome =
      match rd_byte r with
      | 0 -> Finished
      | 1 -> Trapped (rd_string r)
      | 2 -> Exhausted
      | k -> corrupt "bad outcome tag %d" k
    in
    let ret = rd_value r in
    let output = rd_string r in
    let steps = rd_varint r in
    if r.pos <> String.length s then
      corrupt "%d trailing bytes" (String.length s - r.pos);
    Ok
      {
        events;
        n;
        sig_uses;
        sig_dst;
        sig_u0;
        sig_u1;
        max_reg;
        base;
        outcome;
        ret;
        output;
        steps;
      }
  with Corrupt m -> Error m

(* bit-exact trace equality (floats compared by bit pattern); the
   events *capacity* is allowed to differ — only [0, n) is meaningful *)
let equal (a : t) (b : t) =
  let feq x y = Int64.bits_of_float x = Int64.bits_of_float y in
  let veq (x : Interp.value) (y : Interp.value) =
    match (x, y) with
    | Interp.VFloat f, Interp.VFloat g -> feq f g
    | Interp.VArr u, Interp.VArr v -> (
      u.Interp.base = v.Interp.base
      && u.Interp.esize = v.Interp.esize
      && u.Interp.mask32 = v.Interp.mask32
      &&
      match (u.Interp.payload, v.Interp.payload) with
      | Interp.IA p, Interp.IA q -> p = q
      | Interp.FA p, Interp.FA q ->
        Array.length p = Array.length q
        && Array.for_all2 feq p q
      | _ -> false)
    | _ -> x = y
  in
  a.n = b.n
  && (let rec same i = i >= a.n || (a.events.(i) = b.events.(i) && same (i + 1)) in
      same 0)
  && a.sig_uses = b.sig_uses
  && a.sig_dst = b.sig_dst
  && a.sig_u0 = b.sig_u0
  && a.sig_u1 = b.sig_u1
  && a.max_reg = b.max_reg
  && a.base = b.base
  && a.outcome = b.outcome
  && veq a.ret b.ret
  && a.output = b.output
  && a.steps = b.steps
