module Interp = Mira.Interp

(* Model-many half of the trace-once/model-many split: fold a recorded
   event stream (Mtrace) through the config-dependent machine model.
   The accounting code is Flatsim's own exported internals — issue_simple
   / issue_long / mem_access / branch / finish over the same mt state —
   so agreement with the fused simulator is structural, not mirrored.

   Per event the replay does one array read, a 2-bit tag dispatch and
   the model call; no operand evaluation, no register files, no fuel or
   steps bookkeeping, and no config-independent counter bumps (those sit
   pre-accumulated in the trace's base bank and are merged at the end).
   That is what makes pricing a grid of configs against one trace cheap:
   the semantics ran once, at generation time. *)

(* per-config latency table indexed by Mtrace.cls_*; keep in sync with
   the class list there (cls_count pins the length) *)
let lat_table (mt : Flatsim.mt) : int array =
  let t =
    [|
      mt.Flatsim.lat_mul;
      mt.Flatsim.lat_div;
      mt.Flatsim.lat_fadd;
      mt.Flatsim.lat_fmul;
      mt.Flatsim.lat_fdiv;
      mt.Flatsim.call_overhead;
      mt.Flatsim.print_cost;
      mt.Flatsim.jump_cost;
    |]
  in
  assert (Array.length t = Mtrace.cls_count);
  t

(* establish the replay-fold precondition: stamps cover every register
   id the trace's signatures can present, plus the sentinel slot at
   [max_reg + 1] absent uses point at (Flatsim.issue_simple_pre) *)
let presize_stamps (tr : Mtrace.t) (mt : Flatsim.mt) =
  if tr.Mtrace.max_reg + 1 >= Array.length mt.Flatsim.stamps then
    mt.Flatsim.stamps <- Array.make (tr.Mtrace.max_reg + 2) 0

(* replay the event stream into one model state; the fold loop itself is
   hosted in Flatsim's compilation unit so the model calls inline *)
let fold_events (tr : Mtrace.t) (mt : Flatsim.mt) (lat : int array) : unit =
  Flatsim.replay_events mt ~events:tr.Mtrace.events ~n:tr.Mtrace.n
    ~sig_u0:tr.Mtrace.sig_u0 ~sig_u1:tr.Mtrace.sig_u1
    ~sig_dst:tr.Mtrace.sig_dst ~lat

(* the trace's base bank holds exactly the counters the replay never
   touches, so a plain elementwise add composes the full bank *)
let merge_base (base : Counters.bank) (bank : Counters.bank) : unit =
  for i = 0 to Array.length bank - 1 do
    Array.unsafe_set bank i (Array.unsafe_get bank i + Array.unsafe_get base i)
  done

let reraise_outcome (tr : Mtrace.t) =
  match tr.Mtrace.outcome with
  | Mtrace.Trapped m -> raise (Interp.Trap m)
  | Mtrace.Exhausted -> raise Interp.Out_of_fuel
  | Mtrace.Finished -> ()

let finish_result (tr : Mtrace.t) (mt : Flatsim.mt) : Flatsim.result =
  Flatsim.finish mt;
  merge_base tr.Mtrace.base mt.Flatsim.bank;
  {
    Flatsim.cycles = mt.Flatsim.cycles;
    counters = mt.Flatsim.bank;
    ret = tr.Mtrace.ret;
    output = tr.Mtrace.output;
    steps = tr.Mtrace.steps;
  }

(* ------------------------------------------------------------------ *)

let config_ms = Obs.Metrics.histogram "replay.config_ms"
let grid_ms = Obs.Metrics.histogram "replay.grid_ms"
let runs = Obs.Metrics.counter "replay.runs"

let run ~(config : Config.t) (tr : Mtrace.t) : Flatsim.result =
  reraise_outcome tr;
  Obs.Metrics.incr runs;
  Obs.span_with ~cat:"trace" ~hist:config_ms "replay.run"
    ~end_args:(fun (r : Flatsim.result) ->
      [
        ("config", Obs.Trace.Str config.Config.name);
        ("events", Obs.Trace.Int tr.Mtrace.n);
        ("cycles", Obs.Trace.Int r.Flatsim.cycles);
      ])
    (fun () ->
      let mt = Flatsim.mk_mt config in
      presize_stamps tr mt;
      fold_events tr mt (lat_table mt);
      finish_result tr mt)

(* Price every config on the grid against the one trace: the semantics
   ran once, at generation time, and each config costs one sequential
   model fold over the event stream (see Flatsim.replay_events_grid for
   why sequential-per-config beats an interleaved fan-out). *)
let run_grid ~(configs : Config.t array) (tr : Mtrace.t) :
    Flatsim.result array =
  reraise_outcome tr;
  Obs.Metrics.incr runs ~by:(Array.length configs);
  Obs.span_with ~cat:"trace" ~hist:grid_ms "replay.run_grid"
    ~end_args:(fun (_ : Flatsim.result array) ->
      [
        ("configs", Obs.Trace.Int (Array.length configs));
        ("events", Obs.Trace.Int tr.Mtrace.n);
      ])
    (fun () ->
      let mts = Array.map Flatsim.mk_mt configs in
      Array.iter (presize_stamps tr) mts;
      let lats = Array.map lat_table mts in
      Flatsim.replay_events_grid mts ~events:tr.Mtrace.events ~n:tr.Mtrace.n
        ~sig_u0:tr.Mtrace.sig_u0 ~sig_u1:tr.Mtrace.sig_u1
        ~sig_dst:tr.Mtrace.sig_dst ~lats;
      Array.map (finish_result tr) mts)
