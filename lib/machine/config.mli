(** Machine-model parameters and the three preset targets that stand in
    for the paper's hardware. *)

type t = {
  name : string;
  issue_width : int;         (** simple ALU ops retired per cycle *)
  lat_mul : int;
  lat_div : int;
  lat_fadd : int;
  lat_fmul : int;
  lat_fdiv : int;
  branch_cost : int;         (** baseline cost of a conditional branch *)
  jump_cost : int;           (** unconditional jump / return *)
  mispredict_penalty : int;
  call_overhead : int;       (** per dynamic call (frame + linkage) *)
  print_cost : int;
  l1 : Cache.config;
  l1_lat : int;              (** load-to-use latency on an L1 hit *)
  l2 : Cache.config;
  l2_lat : int;              (** extra cycles on an L1 miss that hits L2 *)
  mem_lat : int;             (** extra cycles on an L2 miss *)
  predictor_size : int;
}

(** the AMD-Opteron-flavoured target of the Fig. 3/4 experiments *)
val amd_like : t

(** the TI-C6713-flavoured 8-wide VLIW target of the Fig. 2 experiments *)
val c6713_like : t

(** a narrow in-order embedded target *)
val embedded : t

(** [amd_like] *)
val default : t

val all : t list
val by_name : string -> t option

(** canonical hex digest over {e every} field, for evaluation-cache keys:
    two configs share a digest iff they are parameter-identical *)
val digest : t -> string

(** named feature vector describing the target, for models that adapt
    across architectures (paper Sec. III-B) *)
val features : t -> (string * float) list
