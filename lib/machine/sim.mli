(** Cycle-level machine simulator.

    Semantics come from the shared execution engine ({!Mira.Interp});
    this module attaches hooks that account time and hardware events:
    dependence-limited multiple issue for simple ALU ops, configured
    latencies for multiplies/divides/FP, an L1D/L2 hierarchy for memory
    accesses, a bimodal predictor for conditional branches, and fixed
    linkage overheads for calls.  Deterministic: same program and config
    always give the same cycle count. *)

type result = {
  cycles : int;
  counters : Counters.bank;
  ret : Mira.Interp.value;
  output : string;
  steps : int;   (** dynamic instructions incl. terminators *)
}

val default_fuel : int

(** Which execution engine carries out the run.  All three are
    bit-identical (same results, traps, steps, cycles and counters —
    enforced by the three-way differential tests); [Flat] pre-decodes
    the program into flat bytecode ({!Mira.Decode}) and runs the fused
    loop ({!Flatsim}), roughly an order of magnitude faster than [Ref],
    the original hooked interpreter kept as the semantics oracle.
    [Trace] splits the run into {!Mtrace} generation (config-independent
    event trace) + {!Replay} (machine model folded over the trace) — the
    same result again, but repeated pricing of one program across
    machine configs amortizes the semantic execution. *)
type engine = Ref | Flat | Trace

(** engine used when {!run} is not given [?engine]; starts as [Flat] *)
val default_engine : engine ref

val engine_of_string : string -> engine option
val engine_name : engine -> string

(** Run a program on the simulated machine.
    @raise Mira.Interp.Trap on runtime errors
    @raise Mira.Interp.Out_of_fuel when the step budget is exhausted *)
val run :
  ?engine:engine -> ?config:Config.t -> ?fuel:int -> Mira.Ir.program -> result

(** run an already-decoded program on the flat engine (decode once,
    measure many) *)
val run_decoded : ?config:Config.t -> ?fuel:int -> Mira.Decode.t -> result

(** Price one program against an architecture grid: one semantic
    execution ({!Mtrace.generate}), then {!Replay.run_grid} over the
    configs.  [run_grid ~configs:[|c|] p] agrees bit-for-bit with
    [run ~config:c p] on any engine.
    @raise Mira.Interp.Trap on runtime errors
    @raise Mira.Interp.Out_of_fuel when the step budget is exhausted *)
val run_grid :
  ?fuel:int -> configs:Config.t array -> Mira.Ir.program -> result array

(** convert a {!Flatsim.result} (also what {!Replay.run} produces) —
    for callers that drive {!Replay} themselves, e.g. the engine's
    parallel grid and trace-store paths *)
val of_flatsim : Flatsim.result -> result

(** How a measured run ended.  [Trapped] and [Exhausted] are distinct on
    purpose: fuel exhaustion is deterministic, so search strategies can
    drop such a sequence instead of re-trying it, while a trap may be
    specific to the optimization under test. *)
type outcome = Cycles of int | Trapped of string | Exhausted

val cycles_of :
  ?engine:engine -> ?config:Config.t -> ?fuel:int -> Mira.Ir.program -> outcome

(** [speedup ~base ~opt] = base cycles / opt cycles *)
val speedup : base:result -> opt:result -> float
