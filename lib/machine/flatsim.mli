(** Cycle-level simulation of a pre-decoded program.

    The flat counterpart of {!Sim}: instead of hanging five closure
    hooks off the reference interpreter, this module runs its own
    dispatch loop over {!Mira.Decode} bytecode with the timing and
    counter accounting fused directly into every opcode arm — no hook
    dispatch, no boxed values, no per-instruction [uses_of] allocation
    (the decoder precomputed the use arrays the issue model needs).

    The model itself is {e identical} to {!Sim}'s: same bundle issue
    rules, same cache hierarchy and predictor state evolution, same
    counter increments in the same order, and the accounting fires at
    the same points relative to operand evaluation as the reference
    hooks (e.g. an instruction's class counters are charged before its
    operands can trap, a store's cache access happens before its
    element-type check).  The differential tests compare cycles and the
    full counter bank against {!Sim} run with the reference engine.

    The dispatch loop mirrors [Decode.exec]; a semantics change there
    needs a mirror change here. *)

type result = {
  cycles : int;
  counters : Counters.bank;
  ret : Mira.Interp.value;
  output : string;
  steps : int;
}

(** Run a decoded program on the simulated machine.
    @raise Mira.Interp.Trap on runtime errors
    @raise Mira.Interp.Out_of_fuel when the step budget is exhausted *)
val run : config:Config.t -> fuel:int -> Mira.Decode.t -> result

(** {2 Machine-model internals}

    Exposed so that {!Replay} folds a recorded event trace through the
    {e same} accounting code this module's fused loop runs — one
    implementation of the issue model, memory hierarchy and predictor,
    shared by both engines, so bit-identity is structural rather than
    maintained by mirroring. *)

(** timing state; machine parameters pre-extracted from {!Config.t} so
    the hot loop reads flat record fields *)
type mt = {
  bank : Counters.bank;
  l1 : Cache.t;
  l2 : Cache.t;
  bp : Predictor.t;
  mutable cycles : int;
  mutable bundle : int;       (** simple ops issued in the current cycle *)
  mutable bundle_id : int;    (** serial number of the current bundle *)
  mutable stamps : int array; (** register -> bundle id of its last write *)
  issue_width : int;
  lat_mul : int;
  lat_div : int;
  lat_fadd : int;
  lat_fmul : int;
  lat_fdiv : int;
  branch_cost : int;
  jump_cost : int;
  mispredict_penalty : int;
  call_overhead : int;
  print_cost : int;
  l1_lat : int;
  l2_lat : int;
  mem_lat : int;
}

(** fresh model state (cold caches, weakly-taken predictor) for a config *)
val mk_mt : Config.t -> mt

(** issue a simple single-cycle op given the registers it reads and the
    register it defines (the decoder's precomputed [uses]/[dst]) *)
val issue_simple : mt -> int array -> int -> unit

(** a long-latency or serializing op: close the bundle, pay [lat] *)
val issue_long : mt -> int -> unit

(** one access through the L1D/L2 hierarchy, bumping the cache counters
    and paying the config's latencies *)
val mem_access : mt -> write:bool -> int -> unit

(** config-dependent half of a conditional branch: predictor update,
    BR_MSP on a miss, branch cost (+ penalty).  BR_INS/BR_TKN are the
    caller's, being config-independent. *)
val branch : mt -> int -> taken:bool -> unit

(** drain the trailing partially-filled bundle and pin TOT_CYC *)
val finish : mt -> unit

(** {2 Trace-replay fold loops}

    {!Replay}'s hot loops, hosted in this compilation unit so the
    per-event model calls above are direct and inlinable without
    flambda.  [events.(0 .. n-1)] are {!Mtrace}-packed words; [lat] maps
    a latency class ([Mtrace.cls_*]) to the config's latency.
    [sig_u0]/[sig_u1]/[sig_dst] are the trace's flattened signature
    columns; the caller must pre-size the mt's [stamps] past every
    register id they hold (see [Mtrace.max_reg]). *)

val replay_events :
  mt ->
  events:int array ->
  n:int ->
  sig_u0:int array ->
  sig_u1:int array ->
  sig_dst:int array ->
  lat:int array ->
  unit

(** one sequential {!replay_events} fold per config ([lats] is
    per-config) — keeps each config's model state hot for the whole
    pass, which measures faster than an interleaved fan-out *)
val replay_events_grid :
  mt array ->
  events:int array ->
  n:int ->
  sig_u0:int array ->
  sig_u1:int array ->
  sig_dst:int array ->
  lats:int array array ->
  unit
