(** Cycle-level simulation of a pre-decoded program.

    The flat counterpart of {!Sim}: instead of hanging five closure
    hooks off the reference interpreter, this module runs its own
    dispatch loop over {!Mira.Decode} bytecode with the timing and
    counter accounting fused directly into every opcode arm — no hook
    dispatch, no boxed values, no per-instruction [uses_of] allocation
    (the decoder precomputed the use arrays the issue model needs).

    The model itself is {e identical} to {!Sim}'s: same bundle issue
    rules, same cache hierarchy and predictor state evolution, same
    counter increments in the same order, and the accounting fires at
    the same points relative to operand evaluation as the reference
    hooks (e.g. an instruction's class counters are charged before its
    operands can trap, a store's cache access happens before its
    element-type check).  The differential tests compare cycles and the
    full counter bank against {!Sim} run with the reference engine.

    The dispatch loop mirrors [Decode.exec]; a semantics change there
    needs a mirror change here. *)

type result = {
  cycles : int;
  counters : Counters.bank;
  ret : Mira.Interp.value;
  output : string;
  steps : int;
}

(** Run a decoded program on the simulated machine.
    @raise Mira.Interp.Trap on runtime errors
    @raise Mira.Interp.Out_of_fuel when the step budget is exhausted *)
val run : config:Config.t -> fuel:int -> Mira.Decode.t -> result
