(* Machine model parameters.  Three presets stand in for the paper's
   hardware: [amd_like] for the Opteron used in the performance-counter
   experiments (Figs. 3-4), [c6713_like] for the TI VLIW DSP used in the
   optimization-space experiments (Fig. 2), and [embedded] as a small
   third target for cross-architecture experiments. *)

type t = {
  name : string;
  issue_width : int;        (* simple ALU ops retired per cycle *)
  lat_mul : int;
  lat_div : int;
  lat_fadd : int;
  lat_fmul : int;
  lat_fdiv : int;
  branch_cost : int;        (* baseline cost of a conditional branch *)
  jump_cost : int;          (* unconditional jump *)
  mispredict_penalty : int;
  call_overhead : int;      (* per dynamic call (frame + linkage) *)
  print_cost : int;
  l1 : Cache.config;
  l1_lat : int;             (* load-to-use on L1 hit *)
  l2 : Cache.config;
  l2_lat : int;             (* extra cycles on L1 miss, L2 hit *)
  mem_lat : int;            (* extra cycles on L2 miss *)
  predictor_size : int;
}

let kib n = n * 1024

let amd_like =
  {
    name = "amd-like";
    issue_width = 3;
    lat_mul = 3;
    lat_div = 20;
    lat_fadd = 4;
    lat_fmul = 4;
    lat_fdiv = 16;
    branch_cost = 1;
    jump_cost = 1;
    mispredict_penalty = 12;
    call_overhead = 10;
    print_cost = 40;
    l1 = { Cache.size_bytes = kib 16; assoc = 2; line_bytes = 64 };
    l1_lat = 3;
    l2 = { Cache.size_bytes = kib 256; assoc = 8; line_bytes = 64 };
    l2_lat = 12;
    mem_lat = 120;
    predictor_size = 2048;
  }

let c6713_like =
  {
    name = "c6713-like";
    issue_width = 8;              (* 8-wide VLIW *)
    lat_mul = 2;
    lat_div = 32;                 (* no hardware divider: emulated *)
    lat_fadd = 4;
    lat_fmul = 4;
    lat_fdiv = 28;
    branch_cost = 1;
    jump_cost = 1;
    mispredict_penalty = 5;       (* shallow pipeline, but no predictor *)
    call_overhead = 14;
    print_cost = 40;
    l1 = { Cache.size_bytes = kib 4; assoc = 2; line_bytes = 32 };
    l1_lat = 1;
    l2 = { Cache.size_bytes = kib 64; assoc = 4; line_bytes = 64 };
    l2_lat = 8;
    mem_lat = 60;
    predictor_size = 1;           (* static prediction: one shared counter *)
  }

let embedded =
  {
    name = "embedded";
    issue_width = 1;
    lat_mul = 4;
    lat_div = 34;
    lat_fadd = 8;
    lat_fmul = 8;
    lat_fdiv = 40;
    branch_cost = 1;
    jump_cost = 1;
    mispredict_penalty = 3;
    call_overhead = 6;
    print_cost = 40;
    l1 = { Cache.size_bytes = kib 8; assoc = 1; line_bytes = 32 };
    l1_lat = 1;
    l2 = { Cache.size_bytes = kib 32; assoc = 4; line_bytes = 32 };
    l2_lat = 6;
    mem_lat = 40;
    predictor_size = 256;
  }

let default = amd_like

let all = [ amd_like; c6713_like; embedded ]

let by_name n = List.find_opt (fun c -> c.name = n) all

(* Canonical digest of every parameter that affects a measurement, used
   by the evaluation engine's cache keys.  Field order is fixed; any new
   field must be appended here or two different machines could share
   cached results. *)
let digest (c : t) : string =
  let cache_cfg (k : Cache.config) =
    Printf.sprintf "%d/%d/%d" k.Cache.size_bytes k.Cache.assoc
      k.Cache.line_bytes
  in
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [
            c.name;
            string_of_int c.issue_width;
            string_of_int c.lat_mul;
            string_of_int c.lat_div;
            string_of_int c.lat_fadd;
            string_of_int c.lat_fmul;
            string_of_int c.lat_fdiv;
            string_of_int c.branch_cost;
            string_of_int c.jump_cost;
            string_of_int c.mispredict_penalty;
            string_of_int c.call_overhead;
            string_of_int c.print_cost;
            cache_cfg c.l1;
            string_of_int c.l1_lat;
            cache_cfg c.l2;
            string_of_int c.l2_lat;
            string_of_int c.mem_lat;
            string_of_int c.predictor_size;
          ]))

(* feature vector describing the target architecture, used by models that
   adapt across machines (Sec. III-B "architecture characterization") *)
let features (c : t) : (string * float) list =
  [
    ("issue_width", float_of_int c.issue_width);
    ("lat_mul", float_of_int c.lat_mul);
    ("lat_div", float_of_int c.lat_div);
    ("lat_fdiv", float_of_int c.lat_fdiv);
    ("mispredict_penalty", float_of_int c.mispredict_penalty);
    ("call_overhead", float_of_int c.call_overhead);
    ("l1_kib", float_of_int c.l1.Cache.size_bytes /. 1024.);
    ("l1_assoc", float_of_int c.l1.Cache.assoc);
    ("l1_line", float_of_int c.l1.Cache.line_bytes);
    ("l1_lat", float_of_int c.l1_lat);
    ("l2_kib", float_of_int c.l2.Cache.size_bytes /. 1024.);
    ("l2_lat", float_of_int c.l2_lat);
    ("mem_lat", float_of_int c.mem_lat);
    ("predictor_size", float_of_int c.predictor_size);
  ]
