(* Bimodal branch predictor: a table of 2-bit saturating counters indexed by
   branch-site id.  Counters start weakly-taken (2), matching the usual
   backward-taken bias of loop branches. *)

type t = {
  table : int array;
  mask : int;  (* size - 1 when size is a power of two, else -1 *)
  mutable lookups : int;
  mutable mispredicts : int;
}

let make ?(size = 1024) () =
  if size <= 0 then invalid_arg "Predictor.make: size must be positive";
  let mask = if size land (size - 1) = 0 then size - 1 else -1 in
  { table = Array.make size 2; mask; lookups = 0; mispredicts = 0 }

let reset t =
  Array.fill t.table 0 (Array.length t.table) 2;
  t.lookups <- 0;
  t.mispredicts <- 0

(* site ids are non-negative (Interp.build_sites numbering), so the
   mask equals the mod for power-of-two tables without the hardware
   divide — the predictor runs once per dynamic conditional branch *)
let[@inline] slot t site =
  if t.mask >= 0 then site land t.mask
  else begin
    let n = Array.length t.table in
    let i = site mod n in
    if i < 0 then i + n else i
  end

let predict t site = t.table.(slot t site) >= 2

(* record the outcome; returns whether the prediction was wrong *)
let update t site ~(taken : bool) : bool =
  t.lookups <- t.lookups + 1;
  let i = slot t site in
  let v = Array.unsafe_get t.table i in
  let predicted = v >= 2 in
  let mis = predicted <> taken in
  if mis then t.mispredicts <- t.mispredicts + 1;
  Array.unsafe_set t.table i
    (if taken then (if v < 3 then v + 1 else 3)
     else if v > 0 then v - 1
     else 0);
  mis
